// Regression diff for two smrp.bench.v1 JSON reports (DESIGN.md §9).
//
//   bench_diff [--threshold R] [--metrics m1,m2] [--series GLOB]
//              <baseline.json> <candidate.json>
//
// Compares the summary statistics of every series present in BOTH files
// (series only one side carries are listed, never judged — benches grow
// series over time) and fails when any watched metric drifts by more than
// the relative threshold:
//
//   delta = (candidate - baseline) / |baseline|
//
// A zero baseline against a non-zero candidate counts as infinite drift.
// Watched metrics default to mean and p99; `--series` scopes the check to
// series whose name matches a shell-style glob (obs::expect::glob_match,
// the same matcher trace_report's --runs uses). The default threshold of
// 0.25 suits deterministic series; loosen it for wall-clock-like ones.
//
// Exit codes: 0 within threshold, 1 drift detected, 2 usage/parse error.
// CI diffs freshly-regenerated bench JSON against the committed baseline,
// so a silent perf or behaviour regression fails the build with a table
// naming the series that moved.
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "eval/table.hpp"
#include "obs/expect/offline.hpp"

namespace {

using smrp::eval::Table;

// ---------------------------------------------------------------------------
// Minimal recursive JSON reader: just enough for the bench schema (objects,
// strings, numbers, bools, null; arrays tolerated and skipped). Throws
// std::runtime_error with an offset on malformed input.

struct JsonValue {
  enum class Kind { kObject, kString, kNumber, kBool, kNull } kind =
      Kind::kNull;
  std::map<std::string, JsonValue> object;
  std::string string;
  double number = 0.0;
  bool boolean = false;

  [[nodiscard]] const JsonValue* get(const std::string& key) const {
    const auto it = object.find(key);
    return it != object.end() ? &it->second : nullptr;
  }
};

class JsonReader {
 public:
  explicit JsonReader(std::string text) : text_(std::move(text)) {}

  JsonValue parse() {
    JsonValue value = parse_value();
    skip_space();
    if (pos_ != text_.size()) fail("trailing characters");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error(what + " at offset " + std::to_string(pos_));
  }
  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }
  void skip_space() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }
  bool literal(const char* word) {
    const std::size_t n = std::char_traits<char>::length(word);
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue parse_value() {
    skip_space();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.string = parse_string();
        return v;
      }
      default: {
        JsonValue v;
        if (literal("true")) {
          v.kind = JsonValue::Kind::kBool;
          v.boolean = true;
        } else if (literal("false")) {
          v.kind = JsonValue::Kind::kBool;
        } else if (literal("null")) {
          v.kind = JsonValue::Kind::kNull;
        } else {
          v.kind = JsonValue::Kind::kNumber;
          v.number = parse_number();
        }
        return v;
      }
    }
  }

  JsonValue parse_object() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    expect('{');
    skip_space();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_space();
      std::string key = parse_string();
      skip_space();
      expect(':');
      v.object.emplace(std::move(key), parse_value());
      skip_space();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  /// Arrays do not appear in the bench schema; parse and discard the
  /// elements so a future schema addition cannot break the diff.
  JsonValue parse_array() {
    expect('[');
    skip_space();
    if (peek() == ']') {
      ++pos_;
      return JsonValue{};
    }
    while (true) {
      parse_value();
      skip_space();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue{};
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'u':
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          pos_ += 4;  // bench strings are ASCII; keep the placeholder
          out += '?';
          break;
        default: fail("bad escape");
      }
    }
    fail("unterminated string");
  }

  double parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    try {
      return std::stod(text_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("malformed number");
    }
  }

  std::string text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------

/// Per-series summary statistics lifted out of one report.
using SeriesTable = std::map<std::string, std::map<std::string, double>>;

struct BenchReport {
  std::string experiment;
  SeriesTable series;
};

BenchReport load_report(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  JsonValue root = JsonReader(buffer.str()).parse();

  const JsonValue* schema = root.get("schema");
  if (schema == nullptr || schema->string != "smrp.bench.v1") {
    throw std::runtime_error(path + ": not an smrp.bench.v1 report");
  }
  BenchReport report;
  if (const JsonValue* experiment = root.get("experiment")) {
    report.experiment = experiment->string;
  }
  const JsonValue* series = root.get("series");
  if (series == nullptr || series->kind != JsonValue::Kind::kObject) {
    throw std::runtime_error(path + ": missing series object");
  }
  for (const auto& [name, stats] : series->object) {
    if (stats.kind != JsonValue::Kind::kObject) continue;
    auto& row = report.series[name];
    for (const auto& [metric, value] : stats.object) {
      if (value.kind == JsonValue::Kind::kNumber) row[metric] = value.number;
    }
  }
  return report;
}

std::vector<std::string> split_commas(const std::string& text) {
  std::vector<std::string> out;
  std::string part;
  std::istringstream in(text);
  while (std::getline(in, part, ',')) {
    if (!part.empty()) out.push_back(part);
  }
  return out;
}

std::string percent(double delta) {
  if (std::isinf(delta)) return delta > 0 ? "+inf" : "-inf";
  std::string text = Table::fixed(100.0 * delta, 1) + "%";
  if (delta > 0) text = "+" + text;
  return text;
}

}  // namespace

int main(int argc, char** argv) {
  const auto usage = [] {
    std::cerr << "usage: bench_diff [--threshold R] [--metrics m1,m2]"
                 " [--series GLOB] <baseline.json> <candidate.json>\n";
    return 2;
  };
  double threshold = 0.25;
  std::vector<std::string> metrics{"mean", "p99"};
  std::string series_glob;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threshold") {
      if (++i >= argc) return usage();
      char* end = nullptr;
      threshold = std::strtod(argv[i], &end);
      if (end == argv[i] || *end != '\0' || threshold <= 0.0) {
        std::cerr << "bench_diff: --threshold needs a positive number\n";
        return 2;
      }
    } else if (arg == "--metrics") {
      if (++i >= argc) return usage();
      metrics = split_commas(argv[i]);
      if (metrics.empty()) return usage();
    } else if (arg == "--series") {
      if (++i >= argc) return usage();
      series_glob = argv[i];
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 2) return usage();

  BenchReport baseline;
  BenchReport candidate;
  try {
    baseline = load_report(paths[0]);
    candidate = load_report(paths[1]);
  } catch (const std::exception& e) {
    std::cerr << "bench_diff: " << e.what() << "\n";
    return 2;
  }
  if (!baseline.experiment.empty() &&
      baseline.experiment != candidate.experiment) {
    std::cerr << "bench_diff: experiments differ (" << baseline.experiment
              << " vs " << candidate.experiment << ")\n";
    return 2;
  }

  Table table({"series", "metric", "baseline", "candidate", "delta", "ok"});
  int compared = 0;
  int drifted = 0;
  int baseline_only = 0;
  for (const auto& [name, base_stats] : baseline.series) {
    if (!series_glob.empty() &&
        !smrp::obs::expect::glob_match(series_glob, name)) {
      continue;
    }
    const auto cand_it = candidate.series.find(name);
    if (cand_it == candidate.series.end()) {
      ++baseline_only;
      continue;
    }
    for (const std::string& metric : metrics) {
      const auto base_it = base_stats.find(metric);
      const auto cand_stat = cand_it->second.find(metric);
      if (base_it == base_stats.end() ||
          cand_stat == cand_it->second.end()) {
        continue;  // e.g. a null (non-finite) stat on either side
      }
      const double base = base_it->second;
      const double cand = cand_stat->second;
      double delta = 0.0;
      if (base != 0.0) {
        delta = (cand - base) / std::fabs(base);
      } else if (cand != 0.0) {
        delta = std::numeric_limits<double>::infinity();
      }
      const bool ok = std::fabs(delta) <= threshold;
      ++compared;
      if (!ok) ++drifted;
      // Passing rows stay out of the table unless something failed later;
      // print only drifting rows to keep CI logs scannable.
      if (!ok) {
        table.add_row({name, metric, Table::fixed(base, 4),
                       Table::fixed(cand, 4), percent(delta), "DRIFT"});
      }
    }
  }
  int candidate_only = 0;
  for (const auto& [name, stats] : candidate.series) {
    if (!series_glob.empty() &&
        !smrp::obs::expect::glob_match(series_glob, name)) {
      continue;
    }
    if (baseline.series.find(name) == baseline.series.end()) {
      ++candidate_only;
    }
  }

  std::cout << "bench_diff: " << compared << " metric comparisons, "
            << drifted << " over the " << Table::fixed(100.0 * threshold, 0)
            << "% threshold";
  if (baseline_only > 0) {
    std::cout << "; " << baseline_only << " series only in baseline";
  }
  if (candidate_only > 0) {
    std::cout << "; " << candidate_only << " series only in candidate";
  }
  std::cout << "\n";
  if (compared == 0) {
    std::cerr << "bench_diff: no comparable series"
              << (series_glob.empty() ? ""
                                      : " matching \"" + series_glob + "\"")
              << "\n";
    return 2;
  }
  if (drifted > 0) {
    std::cout << table.render();
    return 1;
  }
  return 0;
}
