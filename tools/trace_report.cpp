// Offline renderer for the telemetry JSONL traces the benches and the
// scenario scripting layer export (DESIGN.md §8): validates every line
// against the flat schema, reassembles the causal span tree, and prints —
// per run section — a per-repair-episode latency table (detection →
// ring search/backoff → graft → total service interruption, with the
// in-protocol convergence skew when the trace carries convergence spans)
// plus the registry's counters and distributions. `--samples` appends a
// per-gauge envelope table of the sampler's periodic snapshots.
//
//   trace_report [--samples] <trace.jsonl>
//   trace_report --expect <rules|core> [--runs <glob>] <trace.jsonl>
//
// The second form replays the trace through the protocol-expectations
// checker (DESIGN.md §12) instead of rendering the episode report: it
// prints a per-rule pass/violation table per run section and exits 1 on
// any violation. `--runs` filters sections by their meta "run" label
// (shell-style glob) — e.g. scope the SMRP core ruleset to the smrp
// halves of an A/B bench trace.
//
// Exit codes: 0 ok, 1 malformed trace (line number on stderr) or expect
// violations, 2 usage. CI runs a seeded chaos soak through this binary,
// so a schema drift in the exporter fails the build instead of silently
// corrupting analyses.
#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "eval/table.hpp"
#include "obs/expect/offline.hpp"

namespace {

using smrp::eval::Table;

/// One parsed JSONL line: flat string/number fields (the whole schema).
struct LineObject {
  std::map<std::string, std::string> strings;
  std::map<std::string, double> numbers;

  [[nodiscard]] const std::string* str(const std::string& key) const {
    const auto it = strings.find(key);
    return it != strings.end() ? &it->second : nullptr;
  }
  [[nodiscard]] std::optional<double> num(const std::string& key) const {
    const auto it = numbers.find(key);
    if (it == numbers.end()) return std::nullopt;
    return it->second;
  }
};

/// Strict parser for the exporter's subset of JSON: one object per line,
/// string keys, string-or-number values, no nesting. Returns false with a
/// diagnostic on anything else — unterminated strings, bad escapes,
/// malformed numbers, duplicate keys, trailing garbage.
class LineParser {
 public:
  explicit LineParser(const std::string& line) : text_(line) {}

  bool parse(LineObject& out, std::string& error) {
    skip_space();
    if (!consume('{')) return fail(error, "expected '{'");
    skip_space();
    if (consume('}')) return finish(error);
    while (true) {
      std::string key;
      if (!parse_string(key, error)) return false;
      skip_space();
      if (!consume(':')) return fail(error, "expected ':' after key");
      skip_space();
      if (out.strings.count(key) != 0 || out.numbers.count(key) != 0) {
        return fail(error, "duplicate key \"" + key + "\"");
      }
      if (peek() == '"') {
        std::string value;
        if (!parse_string(value, error)) return false;
        out.strings.emplace(key, std::move(value));
      } else {
        double value = 0.0;
        if (!parse_number(value, error)) return false;
        out.numbers.emplace(key, value);
      }
      skip_space();
      if (consume(',')) {
        skip_space();
        continue;
      }
      if (consume('}')) return finish(error);
      return fail(error, "expected ',' or '}'");
    }
  }

 private:
  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }
  bool consume(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }
  void skip_space() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t')) {
      ++pos_;
    }
  }
  bool fail(std::string& error, const std::string& what) const {
    error = what + " at column " + std::to_string(pos_ + 1);
    return false;
  }
  bool finish(std::string& error) {
    skip_space();
    if (pos_ != text_.size()) return fail(error, "trailing characters");
    return true;
  }

  bool parse_string(std::string& out, std::string& error) {
    if (!consume('"')) return fail(error, "expected '\"'");
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail(error, "truncated \\u");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            if (!std::isxdigit(static_cast<unsigned char>(h))) {
              return fail(error, "bad \\u escape");
            }
            code = code * 16 +
                   static_cast<unsigned>(
                       h <= '9' ? h - '0' : (h | 0x20) - 'a' + 10);
          }
          if (code > 0x7f) return fail(error, "non-ASCII \\u escape");
          out += static_cast<char>(code);
          break;
        }
        default:
          return fail(error, std::string("bad escape '\\") + esc + "'");
      }
    }
    return fail(error, "unterminated string");
  }

  bool parse_number(double& out, std::string& error) {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (consume('.')) {
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (pos_ == start) return fail(error, "expected a value");
    try {
      std::size_t used = 0;
      out = std::stod(text_.substr(start, pos_ - start), &used);
      if (used != pos_ - start) return fail(error, "malformed number");
    } catch (const std::exception&) {
      return fail(error, "malformed number");
    }
    return true;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

struct SpanRow {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;
  std::string kind;
  std::int64_t node = -1;
  double start = 0.0;
  double end = 0.0;
  std::string status;
  std::map<std::string, double> attrs;

  [[nodiscard]] double attr(const std::string& key, double fallback) const {
    const auto it = attrs.find(key);
    return it != attrs.end() ? it->second : fallback;
  }
};

struct HistRow {
  std::uint64_t count = 0;
  double sum = 0.0, mean = 0.0, p50 = 0.0, p90 = 0.0, p99 = 0.0, max = 0.0;
};

/// One periodic gauge snapshot row (the sampler's `sample` records).
struct SampleRow {
  double t = 0.0;
  std::string name;
  double value = 0.0;
};

/// One `meta`-delimited section of the file (one instrumented run).
struct RunSection {
  std::string label;
  double at = 0.0;
  std::uint64_t declared_spans = 0;
  /// Declared event count; absent in traces from before the event stream.
  std::optional<std::uint64_t> declared_events;
  /// Declared sample count; absent in traces from before the sampler.
  std::optional<std::uint64_t> declared_samples;
  std::uint64_t events = 0;
  std::vector<SpanRow> spans;
  std::vector<SampleRow> samples;
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;  ///< final value per gauge
  std::map<std::string, HistRow> hists;
};

[[noreturn]] void malformed(int line, const std::string& what) {
  std::cerr << "trace_report: line " << line << ": " << what << "\n";
  std::exit(1);
}

double require_num(const LineObject& obj, const char* key, int line) {
  const auto v = obj.num(key);
  if (!v) malformed(line, std::string("missing numeric field \"") + key + "\"");
  return *v;
}

const std::string& require_str(const LineObject& obj, const char* key,
                               int line) {
  const std::string* v = obj.str(key);
  if (v == nullptr) {
    malformed(line, std::string("missing string field \"") + key + "\"");
  }
  return *v;
}

std::string ms(double v) { return Table::fixed(v, 1); }

void render_run(const RunSection& run, bool show_samples) {
  std::cout << "run \"" << run.label << "\" (snapshot at " << ms(run.at)
            << " ms): " << run.spans.size() << " spans\n";
  if (run.declared_spans != run.spans.size()) {
    malformed(0, "meta declared " + std::to_string(run.declared_spans) +
                     " spans but section carries " +
                     std::to_string(run.spans.size()));
  }
  if (run.declared_events && *run.declared_events != run.events) {
    malformed(0, "meta declared " + std::to_string(*run.declared_events) +
                     " events but section carries " +
                     std::to_string(run.events));
  }
  if (run.declared_samples && *run.declared_samples != run.samples.size()) {
    malformed(0, "meta declared " + std::to_string(*run.declared_samples) +
                     " samples but section carries " +
                     std::to_string(run.samples.size()));
  }

  // Reassemble the causal structure: children grouped under each outage.
  std::map<std::uint64_t, const SpanRow*> by_id;
  for (const SpanRow& s : run.spans) by_id[s.id] = &s;
  std::map<std::uint64_t, std::vector<const SpanRow*>> children;
  for (const SpanRow& s : run.spans) {
    if (s.parent == 0) continue;
    if (by_id.find(s.parent) == by_id.end()) {
      malformed(0, "span " + std::to_string(s.id) + " references missing parent " +
                       std::to_string(s.parent));
    }
    children[s.parent].push_back(&s);
  }

  Table episodes({"node", "t0 (ms)", "detect (ms)", "repairs", "rings",
                  "search (ms)", "graft (ms)", "total (ms)", "skew (ms)",
                  "status"});
  int outages = 0;
  int ok_outages = 0;
  int confirmed = 0;
  std::vector<double> skews;
  double total_interruption = 0.0;
  for (const SpanRow& s : run.spans) {
    if (s.kind != "outage") continue;
    ++outages;
    int repairs = 0;
    int rings = 0;
    double search_ms = 0.0;
    double graft_ms = 0.0;
    const SpanRow* convergence = nullptr;
    for (const SpanRow* child : children[s.id]) {
      if (child->kind == "repair") {
        ++repairs;
        rings += static_cast<int>(child->attr("rings", 0.0));
        search_ms += child->end - child->start;
      } else if (child->kind == "graft" || child->kind == "fallback") {
        graft_ms += child->end - child->start;
      } else if (child->kind == "convergence") {
        convergence = child;
      }
    }
    const double lost_at = s.attr("service_lost_at", s.start);
    const double total = s.attr("total_ms", s.end - lost_at);
    if (s.status == "ok") {
      total_interruption += total;
      ++ok_outages;
      if (convergence != nullptr) ++confirmed;
    }
    std::string skew = "-";
    if (convergence != nullptr) {
      const double skew_ms = convergence->attr(
          "skew_ms", convergence->attr("detected_ms", total) - total);
      skews.push_back(skew_ms);
      skew = ms(skew_ms);
    }
    episodes.add_row({std::to_string(s.node), ms(s.start),
                      ms(s.attr("silence_ms", s.start - lost_at)),
                      std::to_string(repairs), std::to_string(rings),
                      ms(search_ms), ms(graft_ms), ms(total), skew, s.status});
  }
  if (outages > 0) {
    std::cout << "\n  repair episodes (" << outages
              << " outages, total interruption " << ms(total_interruption)
              << " ms over closed episodes):\n"
              << episodes.render();
  } else {
    std::cout << "  no outage episodes recorded\n";
  }

  // In-protocol convergence coverage (DESIGN.md §13): how many restored
  // outages the source confirmed from protocol messages alone, and how far
  // the honest clock lagged the omniscient one.
  if (ok_outages > 0 && !skews.empty()) {
    std::sort(skews.begin(), skews.end());
    const double median = skews[skews.size() / 2];
    std::cout << "\n  convergence: " << confirmed << "/" << ok_outages
              << " restored outages confirmed in-protocol, median skew "
              << ms(median) << " ms (max " << ms(skews.back()) << " ms)\n";
  }

  if (!run.hists.empty()) {
    Table hists({"histogram", "count", "mean", "p50", "p90", "p99", "max"});
    for (const auto& [name, h] : run.hists) {
      hists.add_row({name, std::to_string(h.count), ms(h.mean), ms(h.p50),
                     ms(h.p90), ms(h.p99), ms(h.max)});
    }
    std::cout << "\n  distributions:\n" << hists.render();
  }

  // Headline counters: protocol + recovery, and sim-layer aggregates.
  std::uint64_t tx = 0, rx = 0, drop = 0;
  Table counters({"counter", "value"});
  bool any_counter = false;
  for (const auto& [name, value] : run.counters) {
    if (name.rfind("smrp.sim.tx.", 0) == 0) {
      tx += value;
    } else if (name.rfind("smrp.sim.rx.", 0) == 0) {
      rx += value;
    } else if (name.rfind("smrp.sim.drop.", 0) == 0) {
      drop += value;
    } else if (name.rfind("smrp.proto.", 0) == 0 ||
               name.rfind("smrp.recovery.", 0) == 0) {
      counters.add_row({name, std::to_string(value)});
      any_counter = true;
    }
  }
  if (tx + rx + drop > 0) {
    counters.add_row({"smrp.sim.{tx,rx,drop}.* (total)",
                      std::to_string(tx) + "/" + std::to_string(rx) + "/" +
                          std::to_string(drop)});
    any_counter = true;
  }
  if (any_counter) std::cout << "\n  counters:\n" << counters.render();

  // Routing-oracle summary: one line turning the smrp.routing.* counters
  // into the hit rate the cache design is judged by.
  const auto routing = [&run](const char* name) -> std::uint64_t {
    const auto it = run.counters.find(std::string("smrp.routing.") + name);
    return it != run.counters.end() ? it->second : 0;
  };
  const std::uint64_t lookups = routing("lookups");
  if (lookups > 0) {
    const std::uint64_t hits = routing("cache_hit");
    const std::uint64_t misses = routing("cache_miss");
    if (hits + misses != lookups) {
      malformed(0, "routing cache counters do not balance: " +
                       std::to_string(hits) + " hits + " +
                       std::to_string(misses) + " misses != " +
                       std::to_string(lookups) + " lookups");
    }
    std::cout << "\n  routing cache: " << lookups << " lookups, "
              << Table::fixed(100.0 * static_cast<double>(hits) /
                                  static_cast<double>(lookups),
                              1)
              << "% hit rate (" << hits << " hits, " << misses
              << " misses: " << routing("cache_incremental")
              << " incremental, " << routing("cache_fallback")
              << " full runs), " << routing("invalidations")
              << " invalidations";
    // Resident snapshot footprint, when the run carries the gauges.
    const auto count_it = run.gauges.find("smrp.routing.snapshot_count");
    const auto bytes_it = run.gauges.find("smrp.routing.snapshot_bytes");
    if (count_it != run.gauges.end() || bytes_it != run.gauges.end()) {
      std::cout << "; "
                << (count_it != run.gauges.end()
                        ? static_cast<std::uint64_t>(count_it->second)
                        : 0)
                << " snapshots resident";
      if (bytes_it != run.gauges.end()) {
        std::cout << " (~"
                  << Table::fixed(bytes_it->second / (1024.0 * 1024.0), 1)
                  << " MiB)";
      }
    }
    std::cout << "\n";
  }

  // Periodic gauge samples (opt-in: the raw rows are a time series, so the
  // default report compresses each gauge to its envelope).
  if (show_samples && !run.samples.empty()) {
    struct SampleSummary {
      std::uint64_t count = 0;
      double first_t = 0.0, last_t = 0.0;
      double first = 0.0, last = 0.0, min = 0.0, max = 0.0;
    };
    std::map<std::string, SampleSummary> by_name;
    for (const SampleRow& sample : run.samples) {
      auto [it, inserted] = by_name.emplace(sample.name, SampleSummary{});
      SampleSummary& s = it->second;
      if (inserted) {
        s.first_t = sample.t;
        s.first = s.min = s.max = sample.value;
      }
      ++s.count;
      s.last_t = sample.t;
      s.last = sample.value;
      s.min = std::min(s.min, sample.value);
      s.max = std::max(s.max, sample.value);
    }
    Table samples({"gauge", "samples", "t0 (ms)", "t1 (ms)", "first", "last",
                   "min", "max"});
    for (const auto& [name, s] : by_name) {
      samples.add_row({name, std::to_string(s.count), ms(s.first_t),
                       ms(s.last_t), ms(s.first), ms(s.last), ms(s.min),
                       ms(s.max)});
    }
    std::cout << "\n  gauge samples (" << run.samples.size() << " rows):\n"
              << samples.render();
  }
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const auto usage = [] {
    std::cerr << "usage: trace_report [--expect <rules|core>] "
                 "[--runs <glob>] [--samples] <trace.jsonl>\n";
    return 2;
  };
  std::string expect_rules;
  std::string runs_filter;
  std::string path;
  bool show_samples = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--expect") {
      if (++i >= argc) return usage();
      expect_rules = argv[i];
    } else if (arg == "--runs") {
      if (++i >= argc) return usage();
      runs_filter = argv[i];
    } else if (arg == "--samples") {
      show_samples = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else if (path.empty()) {
      path = arg;
    } else {
      return usage();
    }
  }
  if (path.empty()) return usage();
  std::ifstream in(path);
  if (!in) {
    std::cerr << "trace_report: cannot open " << path << "\n";
    return 2;
  }

  std::vector<RunSection> runs;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) malformed(line_no, "empty line");
    LineObject obj;
    std::string error;
    LineParser parser(line);
    if (!parser.parse(obj, error)) malformed(line_no, error);
    const std::string& type = require_str(obj, "type", line_no);
    if (type == "meta") {
      const double version = require_num(obj, "version", line_no);
      if (version != 1.0) {
        malformed(line_no, "unsupported trace version " + ms(version));
      }
      RunSection run;
      run.label = require_str(obj, "run", line_no);
      run.at = require_num(obj, "at", line_no);
      run.declared_spans =
          static_cast<std::uint64_t>(require_num(obj, "spans", line_no));
      if (const auto events = obj.num("events")) {
        run.declared_events = static_cast<std::uint64_t>(*events);
      }
      if (const auto samples = obj.num("samples")) {
        run.declared_samples = static_cast<std::uint64_t>(*samples);
      }
      runs.push_back(std::move(run));
      continue;
    }
    if (runs.empty()) malformed(line_no, "record before any meta line");
    RunSection& run = runs.back();
    if (type == "span") {
      SpanRow span;
      span.id = static_cast<std::uint64_t>(require_num(obj, "id", line_no));
      span.parent =
          static_cast<std::uint64_t>(require_num(obj, "parent", line_no));
      span.kind = require_str(obj, "kind", line_no);
      span.node = static_cast<std::int64_t>(require_num(obj, "node", line_no));
      span.start = require_num(obj, "start", line_no);
      span.end = require_num(obj, "end", line_no);
      span.status = require_str(obj, "status", line_no);
      if (span.id == 0) malformed(line_no, "span id 0 is reserved");
      if (span.end + 1e-9 < span.start) {
        malformed(line_no, "span ends before it starts");
      }
      for (const auto& [key, value] : obj.numbers) {
        if (key == "id" || key == "parent" || key == "node" ||
            key == "start" || key == "end") {
          continue;
        }
        span.attrs.emplace(key, value);
      }
      run.spans.push_back(std::move(span));
    } else if (type == "event") {
      require_str(obj, "kind", line_no);
      require_num(obj, "node", line_no);
      require_num(obj, "t", line_no);
      ++run.events;
    } else if (type == "counter") {
      run.counters[require_str(obj, "name", line_no)] =
          static_cast<std::uint64_t>(require_num(obj, "value", line_no));
    } else if (type == "gauge") {
      require_num(obj, "max", line_no);  // schema check
      run.gauges[require_str(obj, "name", line_no)] =
          require_num(obj, "value", line_no);
    } else if (type == "sample") {
      SampleRow sample;
      sample.t = require_num(obj, "t", line_no);
      sample.name = require_str(obj, "name", line_no);
      sample.value = require_num(obj, "value", line_no);
      run.samples.push_back(std::move(sample));
    } else if (type == "hist") {
      HistRow h;
      h.count = static_cast<std::uint64_t>(require_num(obj, "count", line_no));
      h.sum = require_num(obj, "sum", line_no);
      h.mean = require_num(obj, "mean", line_no);
      h.p50 = require_num(obj, "p50", line_no);
      h.p90 = require_num(obj, "p90", line_no);
      h.p99 = require_num(obj, "p99", line_no);
      h.max = require_num(obj, "max", line_no);
      run.hists[require_str(obj, "name", line_no)] = h;
    } else {
      malformed(line_no, "unknown record type \"" + type + "\"");
    }
  }
  if (runs.empty()) {
    std::cerr << "trace_report: no runs in " << path << "\n";
    return 1;
  }
  for (const RunSection& run : runs) {
    if (run.declared_events && *run.declared_events != run.events) {
      malformed(0, "meta declared " + std::to_string(*run.declared_events) +
                       " events but section \"" + run.label + "\" carries " +
                       std::to_string(run.events));
    }
  }

  if (!expect_rules.empty()) {
    // Expectation mode: the strict schema pass above already validated the
    // file; now replay it through the same checker the simulation taps
    // online and render the per-rule tables.
    try {
      const smrp::obs::expect::RuleSet rules =
          smrp::obs::expect::RuleSet::load(expect_rules);
      const smrp::obs::expect::OfflineResult result =
          smrp::obs::expect::check_file(path, rules, runs_filter);
      if (result.runs.empty()) {
        std::cerr << "trace_report: no run sections match \"" << runs_filter
                  << "\"\n";
        return 1;
      }
      for (const smrp::obs::expect::RunExpectation& r : result.runs) {
        std::cout << "run \"" << r.run << "\"\n" << r.report.render() << "\n";
      }
      return result.ok() ? 0 : 1;
    } catch (const std::exception& e) {
      std::cerr << "trace_report: " << e.what() << "\n";
      return 2;
    }
  }

  for (const RunSection& run : runs) render_run(run, show_samples);
  return 0;
}
