#include "multicast/metrics.hpp"

#include <algorithm>

namespace smrp::mcast {

std::vector<std::pair<LinkId, int>> link_sharing(const MulticastTree& tree) {
  std::vector<std::pair<LinkId, int>> out;
  for (const NodeId n : tree.on_tree_nodes()) {
    if (n == tree.source()) continue;
    // N_L of the link toward the upstream equals N_R of the downstream node.
    out.emplace_back(tree.parent_link(n), tree.subtree_members(n));
  }
  std::sort(out.begin(), out.end());
  return out;
}

TreeMetrics measure(const MulticastTree& tree) {
  TreeMetrics m;
  m.total_cost = tree.total_cost();

  const std::vector<NodeId> members = tree.members();
  double delay_sum = 0.0;
  double hop_sum = 0.0;
  double shr_sum = 0.0;
  for (const NodeId r : members) {
    const double d = tree.delay_to_source(r);
    delay_sum += d;
    hop_sum += tree.hops_to_source(r);
    shr_sum += tree.shr(r);
    m.max_member_delay = std::max(m.max_member_delay, d);
  }
  if (!members.empty()) {
    const auto count = static_cast<double>(members.size());
    m.mean_member_delay = delay_sum / count;
    m.mean_member_hops = hop_sum / count;
    m.mean_member_shr = shr_sum / count;
  }

  const auto sharing = link_sharing(tree);
  m.tree_link_count = static_cast<int>(sharing.size());
  double share_sum = 0.0;
  for (const auto& [link, n_l] : sharing) {
    share_sum += n_l;
    m.max_link_sharing = std::max(m.max_link_sharing, n_l);
  }
  if (!sharing.empty()) {
    m.mean_link_sharing = share_sum / static_cast<double>(sharing.size());
  }
  return m;
}

}  // namespace smrp::mcast
