#include "multicast/tree.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <stdexcept>

namespace smrp::mcast {

MulticastTree::MulticastTree(const Graph& graph, NodeId source)
    : graph_(&graph), source_(source) {
  if (!graph.valid_node(source)) throw std::out_of_range("bad source");
  const auto nodes = static_cast<std::size_t>(graph.node_count());
  role_.assign(nodes, NodeRole::kOffTree);
  parent_.assign(nodes, kNoNode);
  parent_link_.assign(nodes, kNoLink);
  n_members_.assign(nodes, 0);
  shr_.assign(nodes, 0);
  first_child_.assign(nodes, kNoNode);
  last_child_.assign(nodes, kNoNode);
  next_sibling_.assign(nodes, kNoNode);
  role_[static_cast<std::size_t>(source_)] =
      NodeRole::kRelay;  // the source forwards but is not a receiver
  on_tree_count_ = 1;
}

void MulticastTree::check_node(NodeId n) const {
  if (!graph_->valid_node(n)) throw std::out_of_range("bad node id");
}

void MulticastTree::append_child(NodeId parent, NodeId child) {
  const auto p = static_cast<std::size_t>(parent);
  const auto c = static_cast<std::size_t>(child);
  next_sibling_[c] = kNoNode;
  if (first_child_[p] == kNoNode) {
    first_child_[p] = child;
  } else {
    next_sibling_[static_cast<std::size_t>(last_child_[p])] = child;
  }
  last_child_[p] = child;
}

void MulticastTree::unlink_child(NodeId parent, NodeId child) {
  const auto p = static_cast<std::size_t>(parent);
  NodeId prev = kNoNode;
  for (NodeId cur = first_child_[p]; cur != kNoNode;
       cur = next_sibling_[static_cast<std::size_t>(cur)]) {
    if (cur == child) {
      const NodeId next = next_sibling_[static_cast<std::size_t>(child)];
      if (prev == kNoNode) {
        first_child_[p] = next;
      } else {
        next_sibling_[static_cast<std::size_t>(prev)] = next;
      }
      if (last_child_[p] == child) last_child_[p] = prev;
      next_sibling_[static_cast<std::size_t>(child)] = kNoNode;
      return;
    }
    prev = cur;
  }
}

void MulticastTree::clear_node(NodeId n) {
  const auto i = static_cast<std::size_t>(n);
  role_[i] = NodeRole::kOffTree;
  parent_[i] = kNoNode;
  parent_link_[i] = kNoLink;
  n_members_[i] = 0;
  shr_[i] = 0;
  first_child_[i] = kNoNode;
  last_child_[i] = kNoNode;
  next_sibling_[i] = kNoNode;
}

int MulticastTree::shr(NodeId n) const {
  check_node(n);
  if (role_[static_cast<std::size_t>(n)] == NodeRole::kOffTree) {
    throw std::invalid_argument("SHR queried for off-tree node");
  }
  return shr_[static_cast<std::size_t>(n)];
}

std::vector<NodeId> MulticastTree::members() const {
  std::vector<NodeId> out;
  out.reserve(static_cast<std::size_t>(member_count_));
  for (NodeId n = 0; n < graph_->node_count(); ++n) {
    if (is_member(n)) out.push_back(n);
  }
  return out;
}

std::vector<NodeId> MulticastTree::on_tree_nodes() const {
  std::vector<NodeId> out;
  out.reserve(static_cast<std::size_t>(on_tree_count_));
  for (NodeId n = 0; n < graph_->node_count(); ++n) {
    if (on_tree(n)) out.push_back(n);
  }
  return out;
}

std::vector<NodeId> MulticastTree::path_to_source(NodeId n) const {
  std::vector<NodeId> out;
  if (!on_tree(n)) return out;
  for (NodeId cur = n; cur != kNoNode;
       cur = parent_[static_cast<std::size_t>(cur)]) {
    out.push_back(cur);
  }
  return out;
}

double MulticastTree::delay_to_source(NodeId n) const {
  if (!on_tree(n)) throw std::invalid_argument("off-tree node has no delay");
  double total = 0.0;
  for (NodeId cur = n; cur != source_;
       cur = parent_[static_cast<std::size_t>(cur)]) {
    total += graph_->link(parent_link_[static_cast<std::size_t>(cur)]).weight;
  }
  return total;
}

int MulticastTree::hops_to_source(NodeId n) const {
  if (!on_tree(n)) throw std::invalid_argument("off-tree node has no path");
  int hops = 0;
  for (NodeId cur = n; cur != source_;
       cur = parent_[static_cast<std::size_t>(cur)]) {
    ++hops;
  }
  return hops;
}

bool MulticastTree::is_ancestor_or_self(NodeId ancestor, NodeId n) const {
  if (!on_tree(n) || !on_tree(ancestor)) return false;
  for (NodeId cur = n; cur != kNoNode;
       cur = parent_[static_cast<std::size_t>(cur)]) {
    if (cur == ancestor) return true;
  }
  return false;
}

int MulticastTree::shr_excluding_subtree(NodeId merge_candidate,
                                         NodeId member) const {
  if (!on_tree(merge_candidate)) {
    throw std::invalid_argument("merge candidate must be on-tree");
  }
  const int moving = subtree_members(member);
  // Same path-sum bound as recompute_shr: accumulate wide, fail loudly
  // rather than wrap on degenerate deep chains.
  std::int64_t total = 0;
  for (NodeId cur = merge_candidate; cur != source_;
       cur = parent_[static_cast<std::size_t>(cur)]) {
    int contribution = n_members_[static_cast<std::size_t>(cur)];
    // Nodes that currently serve `member`'s subtree would lose its members
    // once the subtree moves away; discount them (§3.2.3 adjustment).
    if (is_ancestor_or_self(cur, member)) contribution -= moving;
    total += contribution;
  }
  if (total > std::numeric_limits<int>::max()) {
    throw std::overflow_error("SHR exceeds int range");
  }
  return static_cast<int>(total);
}

std::vector<LinkId> MulticastTree::tree_links() const {
  std::vector<LinkId> out;
  for (NodeId n = 0; n < graph_->node_count(); ++n) {
    if (on_tree(n) && n != source_) {
      out.push_back(parent_link_[static_cast<std::size_t>(n)]);
    }
  }
  return out;
}

double MulticastTree::total_cost() const {
  double total = 0.0;
  for (const LinkId link : tree_links()) total += graph_->link(link).weight;
  return total;
}

std::vector<char> MulticastTree::surviving_after_link(LinkId failed_link) const {
  std::vector<char> alive(static_cast<std::size_t>(graph_->node_count()), 0);
  // BFS downward from the source, stopping at the failed link.
  std::vector<NodeId> stack{source_};
  alive[static_cast<std::size_t>(source_)] = 1;
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    for (const NodeId child : children(n)) {
      if (parent_link_[static_cast<std::size_t>(child)] == failed_link) {
        continue;
      }
      alive[static_cast<std::size_t>(child)] = 1;
      stack.push_back(child);
    }
  }
  return alive;
}

std::vector<char> MulticastTree::surviving_after_node(NodeId failed_node) const {
  std::vector<char> alive(static_cast<std::size_t>(graph_->node_count()), 0);
  if (failed_node == source_) return alive;  // source loss kills the session
  std::vector<NodeId> stack{source_};
  alive[static_cast<std::size_t>(source_)] = 1;
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    for (const NodeId child : children(n)) {
      if (child == failed_node) continue;
      alive[static_cast<std::size_t>(child)] = 1;
      stack.push_back(child);
    }
  }
  return alive;
}

void MulticastTree::add_member_count_upward(NodeId from, int delta) {
  for (NodeId cur = from; cur != kNoNode;
       cur = parent_[static_cast<std::size_t>(cur)]) {
    n_members_[static_cast<std::size_t>(cur)] += delta;
  }
}

void MulticastTree::recompute_shr() {
  // Top-down pass: SHR(S,S)=0; SHR(S,R)=SHR(S,R_u)+N_R (Eq. 2). SHR is
  // bounded by depth × members, which can pass 2^31 on a degenerate
  // deep-chain session at 100k-node scale — accumulate wide and refuse to
  // store a wrapped value (int keeps the on-wire/protocol width).
  shr_[static_cast<std::size_t>(source_)] = 0;
  std::vector<NodeId> stack{source_};
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    for (const NodeId child : children(n)) {
      const std::int64_t wide =
          static_cast<std::int64_t>(shr_[static_cast<std::size_t>(n)]) +
          n_members_[static_cast<std::size_t>(child)];
      if (wide > std::numeric_limits<int>::max()) {
        throw std::overflow_error("SHR exceeds int range");
      }
      shr_[static_cast<std::size_t>(child)] = static_cast<int>(wide);
      stack.push_back(child);
    }
  }
}

void MulticastTree::graft(NodeId member, const std::vector<NodeId>& path) {
  if (path.empty() || path.front() != member) {
    throw std::invalid_argument("graft path must start at the joining member");
  }
  const NodeId merge = path.back();
  if (!on_tree(merge)) {
    throw std::invalid_argument("graft path must end at an on-tree node");
  }
  if (path.size() == 1) {
    // Member is already an on-tree node (relay or the source); it simply
    // becomes a receiver as well.
    check_node(member);
    if (member == source_) {
      throw std::invalid_argument("source cannot join as a member");
    }
    if (role_[static_cast<std::size_t>(member)] == NodeRole::kMember) {
      return;  // idempotent
    }
    role_[static_cast<std::size_t>(member)] = NodeRole::kMember;
    ++member_count_;
    add_member_count_upward(member, +1);
    recompute_shr();
    return;
  }
  // Intermediate nodes (everything but the merge node) must be off-tree,
  // adjacent pairwise, and free of duplicates.
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    if (on_tree(path[i])) {
      throw std::invalid_argument("graft path crosses the tree early");
    }
    if (!graph_->link_between(path[i], path[i + 1])) {
      throw std::invalid_argument("graft path has non-adjacent hop");
    }
    for (std::size_t j = i + 1; j < path.size(); ++j) {
      if (path[i] == path[j]) {
        throw std::invalid_argument("graft path repeats a node");
      }
    }
  }
  // Wire up parent pointers from the member toward the merge node.
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const auto node = static_cast<std::size_t>(path[i]);
    role_[node] = (path[i] == member) ? NodeRole::kMember : NodeRole::kRelay;
    parent_[node] = path[i + 1];
    parent_link_[node] = *graph_->link_between(path[i], path[i + 1]);
    n_members_[node] = 1;  // exactly the new member below (or at) this node
    append_child(path[i + 1], path[i]);
    ++on_tree_count_;
  }
  ++member_count_;
  add_member_count_upward(merge, +1);
  recompute_shr();
}

void MulticastTree::detach_from_parent(NodeId n) {
  const auto i = static_cast<std::size_t>(n);
  if (parent_[i] == kNoNode) return;
  unlink_child(parent_[i], n);
  parent_[i] = kNoNode;
  parent_link_[i] = kNoLink;
}

void MulticastTree::prune_upward_from(NodeId n) {
  // Remove now-useless relays: nodes with no members beneath and no
  // children, walking upward until a still-useful node (or the source).
  NodeId cur = n;
  while (cur != source_ && cur != kNoNode) {
    const auto i = static_cast<std::size_t>(cur);
    if (n_members_[i] > 0 || first_child_[i] != kNoNode ||
        role_[i] == NodeRole::kMember) {
      break;
    }
    const NodeId up = parent_[i];
    detach_from_parent(cur);
    clear_node(cur);
    --on_tree_count_;
    cur = up;
  }
}

void MulticastTree::leave(NodeId member) {
  check_node(member);
  const auto i = static_cast<std::size_t>(member);
  if (role_[i] != NodeRole::kMember) {
    throw std::invalid_argument("leave() by a non-member");
  }
  role_[i] = NodeRole::kRelay;
  --member_count_;
  add_member_count_upward(member, -1);
  prune_upward_from(member);
  recompute_shr();
}

void MulticastTree::move_subtree(NodeId node,
                                 const std::vector<NodeId>& path) {
  if (!on_tree(node) || node == source_) {
    throw std::invalid_argument("can only move an on-tree non-source node");
  }
  if (path.empty() || path.front() != node) {
    throw std::invalid_argument("move path must start at the moving node");
  }
  const NodeId merge = path.back();
  if (!on_tree(merge)) {
    throw std::invalid_argument("move path must end at an on-tree node");
  }
  if (is_ancestor_or_self(node, merge)) {
    throw std::invalid_argument("cannot merge into the moving subtree");
  }
  for (std::size_t i = 1; i + 1 < path.size(); ++i) {
    if (on_tree(path[i])) {
      throw std::invalid_argument("move path crosses the tree early");
    }
  }
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    if (!graph_->link_between(path[i], path[i + 1])) {
      throw std::invalid_argument("move path has non-adjacent hop");
    }
    for (std::size_t j = i + 1; j < path.size(); ++j) {
      if (path[i] == path[j]) {
        throw std::invalid_argument("move path repeats a node");
      }
    }
  }

  const int moving_members = n_members_[static_cast<std::size_t>(node)];

  // 1. Detach from the old upstream and retire its contribution. Pruning
  //    of the old chain is deferred until the new path is in place (§3.2.3
  //    sets up the new path before releasing the old one) — otherwise an
  //    old-chain ancestor that is also the new merge node could be pruned
  //    out from under the re-attachment.
  const NodeId old_parent = parent_[static_cast<std::size_t>(node)];
  add_member_count_upward(node, -moving_members);
  n_members_[static_cast<std::size_t>(node)] =
      moving_members;  // restore own count
  detach_from_parent(node);

  // 2. Re-attach along the new path.
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const auto cur = static_cast<std::size_t>(path[i]);
    if (i > 0) {
      role_[cur] = NodeRole::kRelay;
      ++on_tree_count_;
    }
    parent_[cur] = path[i + 1];
    parent_link_[cur] = *graph_->link_between(path[i], path[i + 1]);
    if (i > 0) n_members_[cur] = moving_members;
    append_child(path[i + 1], path[i]);
  }
  add_member_count_upward(merge, +moving_members);

  // 3. Release the old path.
  if (old_parent != kNoNode) prune_upward_from(old_parent);
  recompute_shr();
}

std::vector<NodeId> MulticastTree::sever(LinkId failed_link) {
  std::vector<NodeId> lost_members;
  // Locate the downstream endpoint: the on-tree node whose parent link is
  // the failed one.
  NodeId downstream = kNoNode;
  for (NodeId n = 0; n < graph_->node_count(); ++n) {
    if (on_tree(n) &&
        parent_link_[static_cast<std::size_t>(n)] == failed_link) {
      downstream = n;
      break;
    }
  }
  if (downstream == kNoNode) return lost_members;

  const NodeId upstream = parent_[static_cast<std::size_t>(downstream)];
  const int dropped_members =
      n_members_[static_cast<std::size_t>(downstream)];

  // Collect and clear the disconnected component (subtree of `downstream`).
  std::vector<NodeId> stack{downstream};
  detach_from_parent(downstream);
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    if (role_[static_cast<std::size_t>(n)] == NodeRole::kMember) {
      lost_members.push_back(n);
      --member_count_;
    }
    for (const NodeId child : children(n)) stack.push_back(child);
    clear_node(n);  // off-tree, no parent, no children
    --on_tree_count_;
  }

  // Retire the dropped members' contribution upstream, prune any relay
  // chain left dangling, and refresh SHR.
  if (upstream != kNoNode) {
    add_member_count_upward(upstream, -dropped_members);
    prune_upward_from(upstream);
  }
  recompute_shr();
  std::sort(lost_members.begin(), lost_members.end());
  return lost_members;
}

std::vector<NodeId> MulticastTree::sever_node(NodeId failed_node) {
  std::vector<NodeId> lost_members;
  if (!on_tree(failed_node)) return lost_members;

  const NodeId upstream = parent_[static_cast<std::size_t>(failed_node)];
  const int dropped_members =
      n_members_[static_cast<std::size_t>(failed_node)];

  std::vector<NodeId> stack{failed_node};
  detach_from_parent(failed_node);
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    if (role_[static_cast<std::size_t>(n)] == NodeRole::kMember) {
      if (n != failed_node) lost_members.push_back(n);
      --member_count_;
    }
    for (const NodeId child : children(n)) stack.push_back(child);
    clear_node(n);
    --on_tree_count_;
  }

  if (failed_node == source_) return lost_members;  // session is gone
  if (upstream != kNoNode) {
    add_member_count_upward(upstream, -dropped_members);
    prune_upward_from(upstream);
  }
  recompute_shr();
  std::sort(lost_members.begin(), lost_members.end());
  return lost_members;
}

void MulticastTree::validate() const {
  const int n_nodes = graph_->node_count();
  int members_seen = 0;
  int on_tree_seen = 0;

  // Reachability from the source via children links, plus structural
  // soundness of the intrusive sibling encoding.
  std::vector<char> reached(static_cast<std::size_t>(n_nodes), 0);
  std::vector<NodeId> stack{source_};
  reached[static_cast<std::size_t>(source_)] = 1;
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    NodeId last_seen = kNoNode;
    for (const NodeId child : children(n)) {
      last_seen = child;
      if (parent_[static_cast<std::size_t>(child)] != n) {
        throw std::logic_error("child/parent pointer mismatch");
      }
      const LinkId link = parent_link_[static_cast<std::size_t>(child)];
      const auto expect = graph_->link_between(child, n);
      if (!expect || *expect != link) {
        throw std::logic_error("parent_link does not match the graph");
      }
      if (reached[static_cast<std::size_t>(child)]) {
        throw std::logic_error("cycle or duplicate child in tree");
      }
      reached[static_cast<std::size_t>(child)] = 1;
      stack.push_back(child);
    }
    if (last_child_[static_cast<std::size_t>(n)] != last_seen) {
      throw std::logic_error("last_child out of sync with sibling chain");
    }
  }

  // Per-node recomputation of N_R from scratch.
  std::vector<int> derived_members(static_cast<std::size_t>(n_nodes), 0);
  // Post-order accumulation: iterate nodes, push each member/leaf count up.
  for (NodeId n = 0; n < n_nodes; ++n) {
    const auto i = static_cast<std::size_t>(n);
    if (role_[i] == NodeRole::kOffTree) {
      if (parent_[i] != kNoNode || first_child_[i] != kNoNode ||
          n_members_[i] != 0) {
        throw std::logic_error("off-tree node carries tree state");
      }
      continue;
    }
    ++on_tree_seen;
    if (!reached[i]) {
      throw std::logic_error("on-tree node unreachable from source");
    }
    if (role_[i] == NodeRole::kMember) {
      ++members_seen;
      for (NodeId cur = n; cur != kNoNode;
           cur = parent_[static_cast<std::size_t>(cur)]) {
        ++derived_members[static_cast<std::size_t>(cur)];
      }
    }
    if (n != source_ && role_[i] == NodeRole::kRelay &&
        first_child_[i] == kNoNode) {
      throw std::logic_error("useless leaf relay was not pruned");
    }
  }
  if (members_seen != member_count_) {
    throw std::logic_error("member_count_ out of sync");
  }
  if (on_tree_seen != on_tree_count_) {
    throw std::logic_error("on_tree_count_ out of sync");
  }
  for (NodeId n = 0; n < n_nodes; ++n) {
    const auto i = static_cast<std::size_t>(n);
    if (role_[i] == NodeRole::kOffTree) continue;
    if (n_members_[i] != derived_members[i]) {
      throw std::logic_error("N_R out of sync with membership");
    }
    // SHR via Eq. 1 directly: sum of N over path nodes except the source.
    int direct = 0;
    for (NodeId cur = n; cur != source_;
         cur = parent_[static_cast<std::size_t>(cur)]) {
      direct += derived_members[static_cast<std::size_t>(cur)];
    }
    if (shr_[i] != direct) {
      throw std::logic_error("SHR out of sync with Eq. 1");
    }
  }
}

}  // namespace smrp::mcast
