// Graphviz (DOT) rendering of topologies and multicast trees, for
// debugging and for figures: tree links are drawn bold, members filled,
// the source double-circled. Pipe through `dot -Tsvg` to visualise.
#pragma once

#include <ostream>
#include <string>

#include "multicast/tree.hpp"

namespace smrp::mcast {

struct DotOptions {
  bool include_weights = true;     ///< label links with their weights
  bool include_off_tree = true;    ///< draw nodes/links outside the tree
  std::string graph_name = "smrp";
};

/// Render the bare topology.
void to_dot(const net::Graph& graph, std::ostream& out,
            const DotOptions& options = {});

/// Render the topology with the session overlaid.
void to_dot(const MulticastTree& tree, std::ostream& out,
            const DotOptions& options = {});

/// Convenience: DOT text as a string.
[[nodiscard]] std::string to_dot_string(const MulticastTree& tree,
                                        const DotOptions& options = {});

}  // namespace smrp::mcast
