#include "multicast/dot_export.hpp"

#include <iomanip>
#include <sstream>

namespace smrp::mcast {

namespace {

void emit_header(std::ostream& out, const DotOptions& options) {
  out << "graph " << options.graph_name << " {\n"
      << "  layout=neato;\n  overlap=false;\n  node [shape=circle];\n";
}

void emit_link(std::ostream& out, const net::Link& link, bool on_tree,
               const DotOptions& options) {
  out << "  " << link.a << " -- " << link.b << " [";
  if (options.include_weights) {
    out << "label=\"" << std::setprecision(3) << link.weight << "\"";
  }
  if (on_tree) {
    out << (options.include_weights ? ", " : "")
        << "penwidth=2.5, color=\"#1f78b4\"";
  } else {
    out << (options.include_weights ? ", " : "") << "color=\"#bbbbbb\"";
  }
  out << "];\n";
}

}  // namespace

void to_dot(const net::Graph& graph, std::ostream& out,
            const DotOptions& options) {
  emit_header(out, options);
  for (net::NodeId n = 0; n < graph.node_count(); ++n) {
    out << "  " << n << ";\n";
  }
  for (const net::Link& link : graph.links()) {
    emit_link(out, link, false, options);
  }
  out << "}\n";
}

void to_dot(const MulticastTree& tree, std::ostream& out,
            const DotOptions& options) {
  const net::Graph& graph = tree.graph();
  emit_header(out, options);

  for (net::NodeId n = 0; n < graph.node_count(); ++n) {
    if (!options.include_off_tree && !tree.on_tree(n)) continue;
    out << "  " << n << " [";
    if (n == tree.source()) {
      out << "shape=doublecircle, style=filled, fillcolor=\"#ffd92f\"";
    } else if (tree.is_member(n)) {
      out << "style=filled, fillcolor=\"#a6d854\"";
    } else if (tree.on_tree(n)) {
      out << "style=filled, fillcolor=\"#e5f5e0\"";
    } else {
      out << "color=\"#cccccc\", fontcolor=\"#999999\"";
    }
    out << "];\n";
  }

  // Mark tree links once for O(1) lookup.
  std::vector<char> on_tree_link(
      static_cast<std::size_t>(graph.link_count()), 0);
  for (const net::LinkId l : tree.tree_links()) {
    on_tree_link[static_cast<std::size_t>(l)] = 1;
  }
  for (net::LinkId l = 0; l < graph.link_count(); ++l) {
    const bool on_tree = on_tree_link[static_cast<std::size_t>(l)] != 0;
    if (!options.include_off_tree && !on_tree) continue;
    const net::Link& link = graph.link(l);
    if (!options.include_off_tree &&
        (!tree.on_tree(link.a) || !tree.on_tree(link.b))) {
      continue;
    }
    emit_link(out, link, on_tree, options);
  }
  out << "}\n";
}

std::string to_dot_string(const MulticastTree& tree,
                          const DotOptions& options) {
  std::ostringstream out;
  to_dot(tree, out, options);
  return out.str();
}

}  // namespace smrp::mcast
