// Whole-tree measurements used by the evaluation harness and the examples:
// the paper's tree cost and end-to-end delay metrics (§4.2) plus sharing
// statistics that make the SMRP-vs-SPF structural difference visible.
#pragma once

#include <vector>

#include "multicast/tree.hpp"

namespace smrp::mcast {

struct TreeMetrics {
  double total_cost = 0.0;       ///< Cost_T: Σ link weights on the tree
  int tree_link_count = 0;       ///< number of links carrying the session
  double mean_member_delay = 0;  ///< mean D(S,R) over members
  double max_member_delay = 0;   ///< max D(S,R) over members
  double mean_member_hops = 0;   ///< mean hop count over members
  double mean_member_shr = 0;    ///< mean SHR(S,R) over members
  int max_link_sharing = 0;      ///< max N_L over tree links
  double mean_link_sharing = 0;  ///< mean N_L over tree links
};

/// Compute all metrics in one pass over the tree.
[[nodiscard]] TreeMetrics measure(const MulticastTree& tree);

/// N_L for every tree link (the per-link member count of Eq. 1), as pairs
/// (link id, N_L), ascending by link id.
[[nodiscard]] std::vector<std::pair<LinkId, int>> link_sharing(
    const MulticastTree& tree);

}  // namespace smrp::mcast
