// Multicast delivery-tree state shared by SMRP and the SPF baseline.
//
// The tree is rooted at the source S. Every on-tree node R carries the
// paper's per-node data structure (§3.2.1):
//   * N_R        — number of members in the subtree rooted at R,
//   * SHR(S,R)   — the sharing metric, maintained via Eq. 2:
//                  SHR(S,R) = SHR(S,R_u) + N_R, with SHR(S,S) = 0.
// Because N_{L(R,R_u)} = N_R (all members below R use the link to R's
// upstream), Eq. 2 is equivalent to the link-sum definition of Eq. 1; the
// test suite checks that equivalence as an invariant.
//
// Storage is struct-of-arrays (DESIGN.md §14): one flat array per field
// instead of one NodeState struct per node, with the child lists encoded
// intrusively as first-child/next-sibling chains inside two more arrays.
// A session costs eight flat allocations total — no per-node child
// vectors — which is what lets thousands of concurrent sessions share one
// topology without a per-session allocation storm. Child iteration order
// is append order (and detachment preserves it), exactly the order the
// legacy per-node vectors produced; the differential suite pins that.
#pragma once

#include <iterator>
#include <vector>

#include "net/graph.hpp"

namespace smrp::mcast {

using net::Graph;
using net::LinkId;
using net::NodeId;
using net::kNoLink;
using net::kNoNode;

/// Role of a node with respect to one multicast session.
enum class NodeRole : unsigned char {
  kOffTree,  ///< not part of the session
  kRelay,    ///< forwards traffic but is not itself a receiver
  kMember,   ///< a receiver (may also forward to children)
};

/// Rooted multicast tree over a fixed substrate graph.
///
/// Mutations (`graft`, `leave`, `move_subtree`) keep N_R and SHR(S,R)
/// consistent incrementally; `validate()` re-derives everything from first
/// principles and throws on any mismatch, which the property tests exploit.
class MulticastTree {
 public:
  /// Lightweight forward range over one node's children (no allocation):
  /// walks the intrusive next-sibling chain in append order.
  class ChildRange {
   public:
    class iterator {
     public:
      using iterator_category = std::forward_iterator_tag;
      using value_type = NodeId;
      using difference_type = std::ptrdiff_t;
      using pointer = const NodeId*;
      using reference = NodeId;

      iterator() = default;
      iterator(const std::vector<NodeId>* next_sibling, NodeId at) noexcept
          : next_sibling_(next_sibling), at_(at) {}

      [[nodiscard]] NodeId operator*() const noexcept { return at_; }
      iterator& operator++() noexcept {
        at_ = (*next_sibling_)[static_cast<std::size_t>(at_)];
        return *this;
      }
      iterator operator++(int) noexcept {
        iterator old = *this;
        ++*this;
        return old;
      }
      [[nodiscard]] bool operator==(const iterator& o) const noexcept {
        return at_ == o.at_;
      }
      [[nodiscard]] bool operator!=(const iterator& o) const noexcept {
        return at_ != o.at_;
      }

     private:
      const std::vector<NodeId>* next_sibling_ = nullptr;
      NodeId at_ = kNoNode;
    };

    ChildRange(const std::vector<NodeId>* next_sibling, NodeId first) noexcept
        : next_sibling_(next_sibling), first_(first) {}

    [[nodiscard]] iterator begin() const noexcept {
      return {next_sibling_, first_};
    }
    [[nodiscard]] iterator end() const noexcept {
      return {next_sibling_, kNoNode};
    }
    [[nodiscard]] bool empty() const noexcept { return first_ == kNoNode; }
    /// O(children) chain walk.
    [[nodiscard]] std::size_t size() const noexcept {
      std::size_t n = 0;
      for (const NodeId child : *this) {
        (void)child;
        ++n;
      }
      return n;
    }
    /// Materialized copy, for call sites that need random access.
    [[nodiscard]] std::vector<NodeId> to_vector() const {
      return {begin(), end()};
    }

   private:
    const std::vector<NodeId>* next_sibling_;
    NodeId first_;
  };

  MulticastTree(const Graph& graph, NodeId source);

  [[nodiscard]] NodeId source() const noexcept { return source_; }
  [[nodiscard]] const Graph& graph() const noexcept { return *graph_; }

  // -- Queries ------------------------------------------------------------

  [[nodiscard]] bool on_tree(NodeId n) const {
    return role(n) != NodeRole::kOffTree;
  }
  [[nodiscard]] bool is_member(NodeId n) const {
    return role(n) == NodeRole::kMember;
  }
  [[nodiscard]] NodeRole role(NodeId n) const {
    check_node(n);
    return role_[static_cast<std::size_t>(n)];
  }

  /// Upstream (toward-source) neighbor; kNoNode for the source / off-tree.
  [[nodiscard]] NodeId parent(NodeId n) const {
    check_node(n);
    return parent_[static_cast<std::size_t>(n)];
  }
  [[nodiscard]] LinkId parent_link(NodeId n) const {
    check_node(n);
    return parent_link_[static_cast<std::size_t>(n)];
  }
  [[nodiscard]] ChildRange children(NodeId n) const {
    check_node(n);
    return {&next_sibling_, first_child_[static_cast<std::size_t>(n)]};
  }

  /// N_R: members in the subtree rooted at `n` (counting `n` itself if it
  /// is a member). 0 for off-tree nodes.
  [[nodiscard]] int subtree_members(NodeId n) const {
    check_node(n);
    return n_members_[static_cast<std::size_t>(n)];
  }

  /// SHR(S,R) per Eq. 2. 0 for the source; throws for off-tree nodes.
  [[nodiscard]] int shr(NodeId n) const;

  /// SHR(S,`merge_candidate`) as it would read if the members currently in
  /// `member`'s subtree were removed from `member`'s present path — the
  /// adjustment §3.2.3 requires before comparing paths during reshaping.
  [[nodiscard]] int shr_excluding_subtree(NodeId merge_candidate,
                                          NodeId member) const;

  /// All current members, ascending by id.
  [[nodiscard]] std::vector<NodeId> members() const;
  [[nodiscard]] int member_count() const noexcept { return member_count_; }

  /// All on-tree nodes, ascending by id (includes the source).
  [[nodiscard]] std::vector<NodeId> on_tree_nodes() const;
  [[nodiscard]] int on_tree_count() const noexcept { return on_tree_count_; }

  /// On-tree node sequence n → … → source. Empty if off-tree.
  [[nodiscard]] std::vector<NodeId> path_to_source(NodeId n) const;

  /// Sum of link weights along the on-tree path n → source (the paper's
  /// end-to-end delay D(S,R)). Throws if off-tree.
  [[nodiscard]] double delay_to_source(NodeId n) const;
  [[nodiscard]] int hops_to_source(NodeId n) const;

  /// True iff `ancestor` lies on `n`'s path to the source (or equals `n`).
  [[nodiscard]] bool is_ancestor_or_self(NodeId ancestor, NodeId n) const;

  /// Links currently carrying the session.
  [[nodiscard]] std::vector<LinkId> tree_links() const;

  /// Total tree cost: Σ link weights over tree links (paper's Cost_T).
  [[nodiscard]] double total_cost() const;

  /// Per-node survival flags after `failed_link` dies: flag[n] is true iff
  /// n is on-tree and its on-tree path to the source avoids the link.
  [[nodiscard]] std::vector<char> surviving_after_link(LinkId failed_link) const;

  /// Same for a failed node (the node itself does not survive).
  [[nodiscard]] std::vector<char> surviving_after_node(NodeId failed_node) const;

  // -- Mutations ----------------------------------------------------------

  /// Join `member` along `path_to_merge`: node sequence
  /// member → … → merge-node, whose last element must already be on-tree
  /// and all others off-tree (a join of an already-on-tree node passes the
  /// single-element path {member}). Consecutive nodes must be adjacent.
  void graft(NodeId member, const std::vector<NodeId>& path_to_merge);

  /// Leave: clears the member flag, prunes now-useless relay chains.
  void leave(NodeId member);

  /// Reshaping support: detach the subtree rooted at `node` from its old
  /// upstream path and re-attach it along `path_to_merge`
  /// (node → … → merge-node; same contract as graft(), except intermediate
  /// nodes must also be outside `node`'s own subtree). Keeps all of
  /// `node`'s descendants attached below it.
  void move_subtree(NodeId node, const std::vector<NodeId>& path_to_merge);

  /// Persistent-failure surgery: drop the entire component disconnected by
  /// `failed_link` from the tree (its nodes become off-tree; in the real
  /// protocol their soft state times out). Returns the members that lost
  /// service, ascending by id. No-op (empty result) if the link is not a
  /// tree link.
  std::vector<NodeId> sever(LinkId failed_link);

  /// Same for an incapacitated node: the node and its whole subtree leave
  /// the tree. Returns the members that lost service and can still seek
  /// recovery — i.e. excluding the dead node itself. No-op for off-tree
  /// nodes; severing the source clears the entire session.
  std::vector<NodeId> sever_node(NodeId failed_node);

  /// Full invariant re-derivation; throws std::logic_error on any breakage.
  void validate() const;

 private:
  void check_node(NodeId n) const;

  /// Append `child` at the tail of `parent`'s intrusive child list —
  /// the same position legacy push_back gave it.
  void append_child(NodeId parent, NodeId child);
  /// Unlink `child` from `parent`'s list, preserving sibling order.
  void unlink_child(NodeId parent, NodeId child);
  /// Reset every per-node field of `n` to the off-tree default.
  void clear_node(NodeId n);

  void add_member_count_upward(NodeId from, int delta);
  void prune_upward_from(NodeId n);
  void detach_from_parent(NodeId n);
  void recompute_shr();

  const Graph* graph_;
  NodeId source_;
  int member_count_ = 0;
  int on_tree_count_ = 0;

  // Struct-of-arrays node state, all sized to graph_->node_count().
  std::vector<NodeRole> role_;
  std::vector<NodeId> parent_;
  std::vector<LinkId> parent_link_;
  std::vector<int> n_members_;  ///< N_R
  std::vector<int> shr_;        ///< SHR(S,R)
  std::vector<NodeId> first_child_;
  std::vector<NodeId> last_child_;   ///< O(1) append at the tail
  std::vector<NodeId> next_sibling_;
};

}  // namespace smrp::mcast
