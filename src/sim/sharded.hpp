// Sharded conservative parallel DES (DESIGN.md §15): N per-shard timing
// wheels advancing in lockstep barrier windows of width equal to the
// lookahead — the minimum latency of any link that crosses a shard
// boundary. Within a window [W, W + L) every shard fires its own events
// independently (no shared state, one thread per shard at most); any send
// whose destination another shard owns is queued on a per-(src, dst) pair
// queue with its precomputed arrival time, which conservativeness
// guarantees is ≥ W + L, i.e. beyond the window every shard is currently
// draining. At the barrier the coordinator drains the queues
// single-threaded in (when, src_shard, seq) order and schedules the
// arrivals on the owning shards, so the whole run is bit-deterministic
// for a fixed shard count — regardless of worker-thread count — and a
// 1-shard facade degrades to the exact sequential wheel (pure
// delegation, byte-identical including telemetry).
//
// The shard unit is the transit-stub domain (hier::make_shard_plan maps
// domains onto shards, pinning the transit core to shard 0); the plan
// type lives here so sim stays free of hier dependencies.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace smrp::sim {

/// Node → shard ownership map. Shard indices are dense in [0, shards).
struct ShardPlan {
  int shards = 1;
  /// Owning shard per node id; empty means "everything on shard 0".
  std::vector<int> shard_of;
};

/// Generic plan builder: nodes are grouped (group = transit-stub domain in
/// the hier wiring; group 0 is pinned to shard 0, which also makes it the
/// control shard), the effective shard count is clamped to the number of
/// groups, and the remaining groups are assigned longest-processing-time
/// greedily — sorted by (size desc, id asc), each to the least-loaded
/// shard — so the assignment is deterministic and balanced. Throws
/// std::invalid_argument on a negative group id.
[[nodiscard]] ShardPlan build_shard_plan(const std::vector<int>& group_of_node,
                                         int shards);

/// K timing wheels plus the barrier-window coordinator. With one shard
/// every call is pure delegation to the underlying Simulator — the
/// sequential wheel's behaviour, byte for byte. With K > 1 the facade
/// clock advances window by window; schedule()/cancel() address the
/// control shard (shard 0), node-scoped work goes through shard(s)
/// directly (ShardedSimNetwork routes by ownership).
class ShardedSimulator {
 public:
  /// `lookahead` is the barrier-window width; +inf (the default) means
  /// "no cross-shard coupling" and lets a window run to the target time.
  /// Must be > 0 when shards > 1.
  explicit ShardedSimulator(
      int shards, Time lookahead = std::numeric_limits<Time>::infinity());
  ~ShardedSimulator();

  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;

  [[nodiscard]] int shard_count() const noexcept {
    return static_cast<int>(shards_.size());
  }
  [[nodiscard]] Simulator& shard(int s) { return *shards_[s]; }
  [[nodiscard]] const Simulator& shard(int s) const { return *shards_[s]; }

  [[nodiscard]] Time lookahead() const noexcept { return lookahead_; }
  void set_lookahead(Time lookahead);

  /// Worker threads used per window, clamped to [1, shard_count()]. 1 (or
  /// one shard) runs windows inline on the caller; more spin up a
  /// persistent pool. Call between runs only. Any value yields identical
  /// results — threads only change who executes a shard's window.
  void set_threads(int threads);
  [[nodiscard]] int threads() const noexcept { return threads_; }

  // -- Simulator-compatible facade ------------------------------------
  [[nodiscard]] Time now() const noexcept {
    return shard_count() == 1 ? shards_[0]->now() : facade_now_;
  }
  EventId schedule(Time delay, EventAction action);
  EventId schedule_at(Time when, EventAction action);
  void cancel(EventId id);
  std::size_t run_until(Time until);
  std::size_t run_all(std::size_t max_events = 10'000'000);
  [[nodiscard]] bool idle() const noexcept;
  [[nodiscard]] std::size_t processed() const noexcept;
  [[nodiscard]] std::size_t pending() const noexcept;

  /// Summed event-pool occupancy across shards (the sharded counterpart
  /// of Simulator::pool_stats(); the alloc-hook test asserts the sum
  /// invariant against the per-shard stats).
  [[nodiscard]] Simulator::PoolStats pool_stats() const noexcept;

  /// Run `action` at the first window barrier at or after `when`, with
  /// every shard settled strictly before the barrier time —
  /// single-threaded, so it may safely touch any shard (fault injection,
  /// measurements). Barriers are derived from event times only, so the
  /// execution point is deterministic. With one shard this is an ordinary
  /// shard-0 event at `when`. Actions queued at the same time run in
  /// submission order.
  void schedule_global(Time when, std::function<void()> action);

  /// Coordinator hook run single-threaded after every window join, before
  /// the next window launches (ShardedSimNetwork drains its cross-shard
  /// queues here). The argument is the window end = next window start.
  void set_barrier_hook(std::function<void(Time)> hook) {
    barrier_hook_ = std::move(hook);
  }

  /// Barrier windows executed and idle shard-windows (a shard that had no
  /// event to fire inside a window) — the parallel efficiency story.
  /// Always 0 with one shard (no windows, pure delegation).
  [[nodiscard]] std::uint64_t windows() const noexcept { return windows_; }
  [[nodiscard]] std::uint64_t stalls() const noexcept { return stalls_; }

  /// With one shard: attach `telemetry` straight to the underlying wheel
  /// (byte-identical to the sequential simulator). With K > 1: register
  /// the facade counters (`smrp.sim.shard_windows`, `.shard_stalls`) on
  /// `telemetry` and give every shard a private bundle (sampling armed to
  /// match) so worker threads never share a registry; merge_telemetry()
  /// folds the shard bundles back into `telemetry` after the run.
  void set_telemetry(obs::Telemetry* telemetry);

  /// Per-shard bundle (K > 1 after set_telemetry; null otherwise). The
  /// network layer attaches each shard's SimNetwork to this same bundle.
  [[nodiscard]] obs::Telemetry* shard_telemetry(int s) noexcept;

  /// Fold every shard bundle into the facade telemetry: counters and
  /// histograms summed under their own names, gauges renamed
  /// `<name>.shard<k>`, samples appended in (t, name) order. Idempotent
  /// per run (the bundles are drained); no-op with one shard.
  void merge_telemetry();

 private:
  struct GlobalAction {
    Time when;
    std::uint64_t seq;
    std::function<void()> fn;
  };

  std::size_t run_windows(Time target, std::size_t max_events);
  void run_window(Time bound);
  void worker_loop();
  void stop_pool();

  std::vector<std::unique_ptr<Simulator>> shards_;
  Time lookahead_;
  Time window_start_ = 0.0;
  Time facade_now_ = 0.0;
  std::uint64_t windows_ = 0;
  std::uint64_t stalls_ = 0;
  std::vector<GlobalAction> globals_;  ///< min-heap on (when, seq)
  std::uint64_t next_global_seq_ = 1;
  std::function<void(Time)> barrier_hook_;
  std::vector<std::size_t> window_fired_;

  // Worker pool (threads_ > 1 and K > 1 only): coordinator publishes a
  // round under mu_, workers claim shard indices from an atomic counter,
  // the last one out signals done. All shard state crosses threads via
  // the mutex, so the scheme is race-free by construction (TSan-checked).
  int threads_ = 1;
  std::vector<std::thread> pool_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::uint64_t round_ = 0;
  Time round_bound_ = 0.0;
  std::atomic<int> next_shard_{0};
  int running_workers_ = 0;
  bool stop_pool_ = false;

  obs::Telemetry* telemetry_ = nullptr;
  std::vector<std::unique_ptr<obs::Telemetry>> shard_telemetry_;
  obs::Counter* windows_counter_ = nullptr;
  obs::Counter* stalls_counter_ = nullptr;
};

/// The sharded data plane: one SimNetwork per shard over the shared
/// graph, wired to a ShardedSimulator it owns. Sends whose destination
/// lives on another shard ride the per-(src, dst) pair queues (written
/// only by the source shard's worker inside a window, drained only by
/// the coordinator at the barrier — SPSC without locks); everything else
/// is the plain SimNetwork fast path. Failure state (link/node up,
/// loss probability) is replicated to every shard so in-flight checks
/// agree; mutate it before the run or from a schedule_global action.
///
/// Transient loss draws come from per-shard RNG streams: a fixed shard
/// count reproduces bit-identically across runs and thread counts, but
/// the loss *pattern* differs from the sequential wheel's single stream
/// (differential tests against shards=1 therefore run lossless).
class ShardedSimNetwork final : public CrossShardRouter {
 public:
  ShardedSimNetwork(const net::Graph& graph, ShardPlan plan,
                    NetworkConfig config = {});

  [[nodiscard]] ShardedSimulator& sim() noexcept { return sim_; }
  [[nodiscard]] const net::Graph& graph() const noexcept { return *graph_; }
  [[nodiscard]] int shard_count() const noexcept {
    return sim_.shard_count();
  }
  [[nodiscard]] int shard_of(NodeId node) const {
    return plan_.shard_of[static_cast<std::size_t>(node)];
  }
  [[nodiscard]] SimNetwork& network(int s) { return *net_[s]; }
  [[nodiscard]] Simulator& simulator(int s) { return sim_.shard(s); }
  /// The wheel that owns `node` — schedule node-scoped timers here.
  [[nodiscard]] Simulator& simulator_of(NodeId node) {
    return sim_.shard(shard_of(node));
  }

  /// Minimum latency over links whose endpoints live on different shards
  /// (+inf with one shard / no crossing links) — the window width.
  [[nodiscard]] Time lookahead() const noexcept { return sim_.lookahead(); }

  // -- SimNetwork-compatible facade, routed by ownership ---------------
  void set_handler(NodeId node, SimNetwork::Handler handler);
  bool send(NodeId from, NodeId to, Message message);
  int broadcast(NodeId from, const Message& message);
  void set_link_up(LinkId link, bool up);
  [[nodiscard]] bool link_up(LinkId link) const;
  void set_node_up(NodeId node, bool up);
  [[nodiscard]] bool node_up(NodeId node) const;
  void set_loss_probability(double p);
  [[nodiscard]] Time link_latency(LinkId link) const;

  [[nodiscard]] std::uint64_t messages_sent() const noexcept;
  [[nodiscard]] std::uint64_t messages_delivered() const noexcept;
  [[nodiscard]] std::uint64_t messages_dropped() const noexcept;
  /// Messages that crossed a shard boundary (0 with one shard).
  [[nodiscard]] std::uint64_t cross_messages() const noexcept {
    return cross_messages_;
  }

  /// Summed envelope-pool occupancy across shard networks.
  [[nodiscard]] SimNetwork::PoolStats pool_stats() const noexcept;

  /// One shard: attach to the single network + wheel (byte-identical to
  /// the sequential pair). K > 1: facade counters (including
  /// `smrp.sim.shard_cross_msgs`) on `telemetry`, per-shard bundles on
  /// the shard networks; call merge_telemetry() after the run.
  void set_telemetry(obs::Telemetry* telemetry);
  void merge_telemetry();

  // CrossShardRouter (called by shard networks; not for external use).
  [[nodiscard]] bool is_remote(int src_shard, NodeId to) const noexcept override {
    return plan_.shard_of[static_cast<std::size_t>(to)] != src_shard;
  }
  void enqueue(int src_shard, NodeId from, NodeId to, LinkId link, Time when,
               const Message& message) override;

 private:
  struct CrossMsg {
    Time when;
    int src_shard;
    std::uint64_t seq;  ///< enqueue order within the (src, dst) pair
    NodeId from;
    NodeId to;
    LinkId link;
    Message message;
  };

  void drain(Time window_end);

  ShardPlan plan_;
  const net::Graph* graph_;
  ShardedSimulator sim_;
  std::vector<std::unique_ptr<SimNetwork>> net_;
  std::vector<std::vector<CrossMsg>> queues_;  ///< [src * K + dst]
  std::vector<CrossMsg> drain_buf_;
  std::uint64_t cross_messages_ = 0;
  obs::Counter* cross_counter_ = nullptr;
};

}  // namespace smrp::sim
