// Deterministic chaos layer for the simulator: a FaultPlan is a seeded,
// replayable schedule of failure processes — link flaps, permanent cuts,
// node crash/restarts, transient-loss bursts, k-cut partitions — and a
// ChaosController arms it against a SimNetwork. Scripted plans drive
// repeatable drills (tests, benches); the randomized mode generates soak
// scenarios from a single Rng so any run reproduces bit-for-bit from its
// seed. The protocol layers never see the plan: faults manifest only as
// the link/node/loss state changes the paper's failure model describes.
#pragma once

#include <string>
#include <vector>

#include "net/graph.hpp"
#include "net/rng.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace smrp::sim {

/// One primitive network-state change at a fixed simulated time. Compound
/// faults (a flap, a crash/restart, a burst, a partition) expand into
/// several actions at plan-build time, so the controller replays a flat,
/// time-ordered list.
struct FaultAction {
  enum class Kind {
    kLinkDown,
    kLinkUp,
    kNodeDown,
    kNodeUp,
    kSetLoss,
  };
  Time at = 0.0;
  Kind kind = Kind::kLinkDown;
  net::LinkId link = net::kNoLink;
  net::NodeId node = net::kNoNode;
  double loss_probability = 0.0;  ///< kSetLoss only
};

/// A deterministic fault schedule with a builder API for scripted drills
/// and a randomized generator for soak tests.
class FaultPlan {
 public:
  // -- Builder (scripted drills) ------------------------------------------

  /// Permanent link cut at `at`.
  FaultPlan& cut_link(Time at, net::LinkId link);

  /// Link flap: down at `at`, back up after `hold` ms.
  FaultPlan& flap_link(Time at, net::LinkId link, Time hold);

  /// Permanent node crash at `at`.
  FaultPlan& crash_node(Time at, net::NodeId node);

  /// Node crash at `at`, restart after `downtime` ms.
  FaultPlan& crash_restart(Time at, net::NodeId node, Time downtime);

  /// Raise the transient-loss probability to `probability` over
  /// [at, at + duration), then restore `base_probability`.
  FaultPlan& loss_burst(Time at, Time duration, double probability,
                        double base_probability = 0.0);

  /// Shared-risk link group failure: every link in `group` fails
  /// atomically at `at` — one fault, no intermediate state another event
  /// can observe — and heals together after `heal_after` ms
  /// (`heal_after` <= 0 means permanent). Models fiber-conduit / line-card
  /// faults where several logical links share one physical risk.
  FaultPlan& srlg_cut(Time at, const std::vector<net::LinkId>& group,
                      Time heal_after = 0.0);

  /// k-cut partition: every link in `cut` goes down at `at`; all heal
  /// together after `heal_after` ms (`heal_after` <= 0 means permanent).
  /// The special case of srlg_cut where the group is a node-set boundary
  /// (see boundary_links).
  FaultPlan& partition(Time at, const std::vector<net::LinkId>& cut,
                       Time heal_after);

  // -- Randomized soak mode -----------------------------------------------

  struct RandomParams {
    int link_flaps = 20;       ///< transient link down/up pairs
    int link_cuts = 0;         ///< permanent cuts (connectivity-preserving)
    int node_restarts = 2;     ///< crash/restart pairs
    int loss_bursts = 1;       ///< transient loss windows
    Time start = 500.0;        ///< first fault no earlier than this
    Time window = 10'000.0;    ///< faults uniform over [start, start+window)
    Time min_hold = 200.0;     ///< shortest flap hold / node downtime
    Time max_hold = 1'500.0;   ///< longest flap hold / node downtime
    Time burst_duration = 1'000.0;
    double burst_loss = 0.10;
    double base_loss = 0.0;    ///< loss level restored after each burst
    /// Nodes that must never crash (e.g. the multicast source).
    std::vector<net::NodeId> protected_nodes;
  };

  /// Generate a soak plan. All randomness is drawn from `rng`, so the plan
  /// is a pure function of (graph, params, seed). Permanent cuts are only
  /// placed where the remaining graph stays connected; crash victims are
  /// drawn from the non-protected nodes.
  static FaultPlan randomized(const net::Graph& g, const RandomParams& params,
                              net::Rng& rng);

  // -- Introspection ------------------------------------------------------

  [[nodiscard]] const std::vector<FaultAction>& actions() const noexcept {
    return actions_;
  }
  /// Number of faults (compound events, not primitive actions).
  [[nodiscard]] int fault_count() const noexcept { return faults_; }
  /// Time of the last scheduled action: after this instant no further
  /// injected state change occurs and every transient fault has healed.
  [[nodiscard]] Time quiescent_time() const noexcept;
  /// Human-readable drill listing (one line per fault), for logs/examples.
  [[nodiscard]] std::string describe() const;

 private:
  FaultPlan& add(FaultAction action);

  std::vector<FaultAction> actions_;
  int faults_ = 0;
};

/// Boundary links of a node set: the links with exactly one endpoint in
/// `side`. Feeding them to FaultPlan::partition isolates `side` from the
/// rest of the network (a k-cut).
[[nodiscard]] std::vector<net::LinkId> boundary_links(
    const net::Graph& g, const std::vector<net::NodeId>& side);

/// Arms a FaultPlan against a SimNetwork: schedules every action on the
/// simulator and records what was applied. The controller outlives the
/// scheduled events, so keep it alive for the whole run.
class ChaosController {
 public:
  ChaosController(Simulator& simulator, SimNetwork& network, FaultPlan plan);

  /// Schedule every action. Call once, before the clock passes the first
  /// action time.
  void arm();

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }
  [[nodiscard]] int actions_applied() const noexcept { return applied_; }
  /// True once every scheduled action has fired.
  [[nodiscard]] bool quiescent() const noexcept {
    return armed_ && applied_ == static_cast<int>(plan_.actions().size());
  }
  [[nodiscard]] Time quiescent_time() const noexcept {
    return plan_.quiescent_time();
  }
  /// Chronological record of applied actions, human-readable.
  [[nodiscard]] const std::vector<std::string>& log() const noexcept {
    return log_;
  }

 private:
  void apply(const FaultAction& action);

  Simulator* simulator_;
  SimNetwork* network_;
  FaultPlan plan_;
  bool armed_ = false;
  int applied_ = 0;
  std::vector<std::string> log_;
};

}  // namespace smrp::sim
