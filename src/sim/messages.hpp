// Wire messages exchanged by the simulated protocols. One central variant
// keeps hop-by-hop delivery type-safe; each protocol handles the subset it
// understands and ignores the rest.
#pragma once

#include <cstdint>
#include <utility>
#include <variant>
#include <vector>

#include "net/graph.hpp"

namespace smrp::sim {

using net::LinkId;
using net::NodeId;

// ---- Unicast routing (OSPF-lite, src/routing) ------------------------------

/// Neighbor liveness probe, sent periodically on every up link.
struct HelloMsg {};

/// Link-state advertisement: the origin's current view of its own alive
/// adjacencies, flooded network-wide with a sequence number.
struct LsaMsg {
  NodeId origin = net::kNoNode;
  std::uint64_t seq = 0;
  /// (neighbor, weight) pairs for every adjacency the origin considers up.
  std::vector<std::pair<NodeId, double>> adjacencies;
};

// ---- Multicast session control (SMRP + PIM-like baseline) ------------------

/// Explicit join travelling member → … → merge node along a precomputed
/// graft (SMRP) or hop-by-hop toward the source (PIM mode, empty path).
struct JoinReqMsg {
  NodeId member = net::kNoNode;
  /// Explicit graft (member first). Empty for routed (PIM-style) joins.
  std::vector<NodeId> path;
  std::size_t hop_index = 0;  ///< position of the *sender* within path
};

/// Confirmation sent back down when a join reaches an on-tree node.
struct JoinAckMsg {
  NodeId member = net::kNoNode;
};

/// Explicit prune travelling upstream from a departing member.
struct LeaveReqMsg {
  NodeId member = net::kNoNode;
};

/// Periodic downstream-state refresh a child sends its parent: keeps the
/// child's soft state alive and reports N_child so the parent can maintain
/// the per-interface member counts of §3.2.1.
struct StateRefreshMsg {
  int subtree_members = 0;  ///< N of the sending child
  /// Convergence-detection wave (DESIGN.md §13), piggybacked upward: the
  /// instant since which the sender's whole subtree has been quiet, or
  /// negative (routing::kNotQuiet) while anything below is still active.
  double conv_quiet_since = -1.0;
};

/// Periodic upstream-state message a parent sends each child: carries the
/// parent's SHR(S, parent), letting the child compute its own SHR via
/// Eq. 2, plus implicit tree-liveness (a silent parent is a dead parent).
struct ShrUpdateMsg {
  int shr_upstream = 0;  ///< SHR(S, parent)
  /// Convergence-detection verdict propagated downward from the source:
  /// true while the source considers the tree converged (DESIGN.md §13).
  bool conv_converged = false;
};

/// Multicast payload, fanned out source → children → … → members.
struct DataMsg {
  std::uint64_t seq = 0;
};

// ---- SMRP local repair (expanding-ring search) ------------------------------

/// Repair probe flooded with a TTL by a node whose upstream died.
struct RepairQueryMsg {
  NodeId initiator = net::kNoNode;
  std::uint64_t nonce = 0;  ///< dedupes retransmissions across rings
  int ttl = 0;
  /// Nodes visited so far, initiator first (the response retraces it).
  std::vector<NodeId> visited;
};

/// Positive answer from an on-tree node whose own upstream is alive.
struct RepairRespMsg {
  NodeId responder = net::kNoNode;
  std::uint64_t nonce = 0;
  int shr = 0;
  /// initiator → … → responder (the graft the initiator may install).
  std::vector<NodeId> path;
  std::size_t hop_index = 0;  ///< sender's position while retracing back
};

using Message =
    std::variant<HelloMsg, LsaMsg, JoinReqMsg, JoinAckMsg, LeaveReqMsg,
                 StateRefreshMsg, ShrUpdateMsg, DataMsg, RepairQueryMsg,
                 RepairRespMsg>;

}  // namespace smrp::sim
