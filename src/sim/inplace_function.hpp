// Small-buffer-optimized move-only callable for the event core. Every
// protocol timer capture in the tree ([this], [this, n], the network's
// pooled-envelope hops) fits the inline buffer, so scheduling an event
// performs no heap allocation. Oversized or over-aligned captures fall
// back to a heap box (counted by the simulator's pool stats) instead of
// failing to compile, so the scheduler API stays unconditional.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace smrp::sim {

/// Move-only `void()` callable with `Capacity` bytes of inline storage.
template <std::size_t Capacity>
class InplaceFunction {
 public:
  InplaceFunction() noexcept = default;

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, InplaceFunction> &&
                std::is_invocable_r_v<void, D&>>>
  InplaceFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    constexpr bool kInline = sizeof(D) <= Capacity &&
                             alignof(D) <= alignof(std::max_align_t) &&
                             std::is_nothrow_move_constructible_v<D>;
    if constexpr (kInline) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      invoke_ = [](void* s) { (*static_cast<D*>(s))(); };
      manage_ = [](void* dst, void* src) {
        if (src != nullptr) {  // relocate src -> dst
          ::new (dst) D(std::move(*static_cast<D*>(src)));
          static_cast<D*>(src)->~D();
        } else {
          static_cast<D*>(dst)->~D();
        }
      };
    } else {
      ::new (static_cast<void*>(storage_))
          D*(new D(std::forward<F>(f)));
      invoke_ = [](void* s) { (**static_cast<D**>(s))(); };
      manage_ = [](void* dst, void* src) {
        if (src != nullptr) {
          ::new (dst) D*(*static_cast<D**>(src));
        } else {
          delete *static_cast<D**>(dst);
        }
      };
      heap_ = true;
    }
  }

  InplaceFunction(InplaceFunction&& other) noexcept { steal(other); }

  InplaceFunction& operator=(InplaceFunction&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }

  InplaceFunction(const InplaceFunction&) = delete;
  InplaceFunction& operator=(const InplaceFunction&) = delete;

  ~InplaceFunction() { reset(); }

  void operator()() { invoke_(storage_); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return invoke_ != nullptr;
  }

  /// True when the callable overflowed the inline buffer (the slow path
  /// the allocation-counting tests pin to zero on protocol workloads).
  [[nodiscard]] bool uses_heap() const noexcept { return heap_; }

  void reset() noexcept {
    if (manage_ != nullptr) manage_(storage_, nullptr);
    invoke_ = nullptr;
    manage_ = nullptr;
    heap_ = false;
  }

 private:
  void steal(InplaceFunction& other) noexcept {
    if (other.manage_ != nullptr) other.manage_(storage_, other.storage_);
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    heap_ = other.heap_;
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
    other.heap_ = false;
  }

  alignas(std::max_align_t) unsigned char storage_[Capacity];
  void (*invoke_)(void*) = nullptr;
  /// Relocates storage (src != nullptr) or destroys it (src == nullptr).
  void (*manage_)(void* dst, void* src) = nullptr;
  bool heap_ = false;
};

}  // namespace smrp::sim
