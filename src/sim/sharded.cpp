#include "sim/sharded.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "obs/telemetry.hpp"

namespace smrp::sim {

// ---------------------------------------------------------------------------
// Plan builder

ShardPlan build_shard_plan(const std::vector<int>& group_of_node, int shards) {
  ShardPlan plan;
  plan.shard_of.assign(group_of_node.size(), 0);
  if (group_of_node.empty() || shards <= 1) return plan;

  int max_group = 0;
  for (const int g : group_of_node) {
    if (g < 0) throw std::invalid_argument("negative group id");
    max_group = std::max(max_group, g);
  }
  std::vector<std::int64_t> group_size(
      static_cast<std::size_t>(max_group) + 1, 0);
  for (const int g : group_of_node) ++group_size[static_cast<std::size_t>(g)];

  // Empty groups own nothing and must not dilute the clamp (a topology
  // with gaps in its domain numbering still shards by what exists).
  int populated = 0;
  for (const std::int64_t size : group_size) populated += size > 0 ? 1 : 0;
  plan.shards = std::min(shards, std::max(populated, 1));
  if (plan.shards <= 1) {
    plan.shards = 1;
    return plan;
  }

  // Group 0 (the transit core in the hier wiring) is pinned to shard 0 —
  // the control shard — and pre-loads it; every other populated group is
  // placed longest-first on the least-loaded shard. Ties break toward the
  // lower group id / lower shard index, so the plan is deterministic.
  std::vector<int> order;
  for (int g = 1; g <= max_group; ++g) {
    if (group_size[static_cast<std::size_t>(g)] > 0) order.push_back(g);
  }
  std::sort(order.begin(), order.end(), [&](int lhs, int rhs) {
    const std::int64_t ls = group_size[static_cast<std::size_t>(lhs)];
    const std::int64_t rs = group_size[static_cast<std::size_t>(rhs)];
    if (ls != rs) return ls > rs;
    return lhs < rhs;
  });
  std::vector<std::int64_t> load(static_cast<std::size_t>(plan.shards), 0);
  load[0] = group_size[0];
  std::vector<int> shard_of_group(static_cast<std::size_t>(max_group) + 1, 0);
  for (const int g : order) {
    const auto best = std::min_element(load.begin(), load.end());
    shard_of_group[static_cast<std::size_t>(g)] =
        static_cast<int>(best - load.begin());
    *best += group_size[static_cast<std::size_t>(g)];
  }
  for (std::size_t n = 0; n < group_of_node.size(); ++n) {
    plan.shard_of[n] =
        shard_of_group[static_cast<std::size_t>(group_of_node[n])];
  }
  return plan;
}

// ---------------------------------------------------------------------------
// ShardedSimulator

namespace {

/// Min-heap order on (when, seq) for the global-action queue.
struct GlobalLater {
  bool operator()(const auto& a, const auto& b) const noexcept {
    if (a.when != b.when) return a.when > b.when;
    return a.seq > b.seq;
  }
};

}  // namespace

ShardedSimulator::ShardedSimulator(int shards, Time lookahead)
    : lookahead_(lookahead) {
  if (shards < 1) throw std::invalid_argument("shard count must be >= 1");
  shards_.reserve(static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<Simulator>());
  }
  window_fired_.assign(static_cast<std::size_t>(shards), 0);
  set_lookahead(lookahead);
}

ShardedSimulator::~ShardedSimulator() { stop_pool(); }

void ShardedSimulator::set_lookahead(Time lookahead) {
  if (std::isnan(lookahead) ||
      (shard_count() > 1 && !(lookahead > 0.0))) {
    throw std::invalid_argument("lookahead must be > 0 with multiple shards");
  }
  lookahead_ = lookahead;
}

void ShardedSimulator::set_threads(int threads) {
  threads = std::clamp(threads, 1, shard_count());
  if (threads == threads_) return;
  stop_pool();
  threads_ = threads;
  if (threads_ <= 1) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_pool_ = false;
    running_workers_ = 0;
  }
  pool_.reserve(static_cast<std::size_t>(threads_));
  for (int i = 0; i < threads_; ++i) {
    pool_.emplace_back([this] { worker_loop(); });
  }
}

void ShardedSimulator::stop_pool() {
  if (pool_.empty()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_pool_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : pool_) t.join();
  pool_.clear();
}

void ShardedSimulator::worker_loop() {
  std::uint64_t seen_round = 0;
  for (;;) {
    Time bound;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock,
                    [&] { return stop_pool_ || round_ != seen_round; });
      if (stop_pool_) return;
      seen_round = round_;
      bound = round_bound_;
    }
    const int k = shard_count();
    for (;;) {
      const int s = next_shard_.fetch_add(1, std::memory_order_relaxed);
      if (s >= k) break;
      window_fired_[static_cast<std::size_t>(s)] =
          shards_[static_cast<std::size_t>(s)]->run_before(bound);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--running_workers_ == 0) cv_done_.notify_all();
    }
  }
}

void ShardedSimulator::run_window(Time bound) {
  if (pool_.empty()) {
    for (int s = 0; s < shard_count(); ++s) {
      window_fired_[static_cast<std::size_t>(s)] =
          shards_[static_cast<std::size_t>(s)]->run_before(bound);
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    round_bound_ = bound;
    next_shard_.store(0, std::memory_order_relaxed);
    running_workers_ = static_cast<int>(pool_.size());
    ++round_;
  }
  cv_work_.notify_all();
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [&] { return running_workers_ == 0; });
}

EventId ShardedSimulator::schedule(Time delay, EventAction action) {
  if (shard_count() == 1) {
    return shards_[0]->schedule(delay, std::move(action));
  }
  if (std::isnan(delay) || delay < 0.0) {
    throw std::invalid_argument("event delay must be a number >= 0");
  }
  return schedule_at(facade_now_ + delay, std::move(action));
}

EventId ShardedSimulator::schedule_at(Time when, EventAction action) {
  if (shard_count() > 1 && !(when >= facade_now_)) {
    throw std::invalid_argument(
        "event time must be finite and not in the past");
  }
  return shards_[0]->schedule_at(when, std::move(action));
}

void ShardedSimulator::cancel(EventId id) { shards_[0]->cancel(id); }

void ShardedSimulator::schedule_global(Time when,
                                       std::function<void()> action) {
  if (!action) throw std::invalid_argument("empty action");
  if (!std::isfinite(when) || when < now()) {
    throw std::invalid_argument(
        "global action time must be finite and not in the past");
  }
  if (shard_count() == 1) {
    shards_[0]->schedule_at(when, [fn = std::move(action)] { fn(); });
    return;
  }
  globals_.push_back(GlobalAction{when, next_global_seq_++, std::move(action)});
  std::push_heap(globals_.begin(), globals_.end(), GlobalLater{});
}

std::size_t ShardedSimulator::run_windows(Time target,
                                          std::size_t max_events) {
  std::size_t fired_total = 0;
  while (fired_total < max_events) {
    // Drain any cross-shard traffic queued outside a window (pre-run
    // facade sends, global actions) so it participates in the horizon.
    if (barrier_hook_) barrier_hook_(window_start_);

    Time horizon = std::numeric_limits<Time>::infinity();
    for (const auto& shard : shards_) {
      horizon = std::min(horizon, shard->next_event_when());
    }
    if (!globals_.empty()) horizon = std::min(horizon, globals_.front().when);
    if (horizon == std::numeric_limits<Time>::infinity() || horizon > target) {
      break;
    }
    facade_now_ = std::max(facade_now_, horizon);

    // Global actions due at the window start run first, single-threaded,
    // with every shard settled strictly before `horizon`; then loop so
    // whatever they scheduled or reconfigured reshapes the horizon.
    if (!globals_.empty() && globals_.front().when <= horizon) {
      while (!globals_.empty() && globals_.front().when <= horizon) {
        std::pop_heap(globals_.begin(), globals_.end(), GlobalLater{});
        GlobalAction g = std::move(globals_.back());
        globals_.pop_back();
        g.fn();
      }
      continue;
    }

    // Window [horizon, bound): every cross-shard arrival produced inside
    // is ≥ horizon + lookahead ≥ bound, so the shards are independent.
    // nextafter keeps run_until's inclusive contract: events exactly at
    // `target` fire, events beyond it wait. A pending global action also
    // clamps the window — it must observe the world as of its own time,
    // ahead of any same-or-later event (its `when` is > horizon here, so
    // progress is preserved).
    Time bound =
        std::min(horizon + lookahead_,
                 std::nextafter(target, std::numeric_limits<Time>::infinity()));
    if (!globals_.empty()) bound = std::min(bound, globals_.front().when);
    run_window(bound);
    ++windows_;
    if (windows_counter_ != nullptr) windows_counter_->add(1);
    for (int s = 0; s < shard_count(); ++s) {
      const std::size_t fired = window_fired_[static_cast<std::size_t>(s)];
      fired_total += fired;
      if (fired == 0) {
        ++stalls_;
        if (stalls_counter_ != nullptr) stalls_counter_->add(1);
      }
    }
    window_start_ = std::max(window_start_, bound);
  }
  return fired_total;
}

std::size_t ShardedSimulator::run_until(Time until) {
  if (shard_count() == 1) return shards_[0]->run_until(until);
  const std::size_t fired =
      run_windows(until, std::numeric_limits<std::size_t>::max());
  facade_now_ = std::max(facade_now_, until);
  return fired;
}

std::size_t ShardedSimulator::run_all(std::size_t max_events) {
  if (shard_count() == 1) return shards_[0]->run_all(max_events);
  // The runaway backstop is checked at window granularity, so slightly
  // more than max_events may fire (the tail window completes).
  const std::size_t fired =
      run_windows(std::numeric_limits<Time>::infinity(), max_events);
  for (const auto& shard : shards_) {
    facade_now_ = std::max(facade_now_, shard->now());
  }
  return fired;
}

bool ShardedSimulator::idle() const noexcept {
  if (!globals_.empty()) return false;
  for (const auto& shard : shards_) {
    if (!shard->idle()) return false;
  }
  return true;
}

std::size_t ShardedSimulator::processed() const noexcept {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->processed();
  return total;
}

std::size_t ShardedSimulator::pending() const noexcept {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->pending();
  return total;
}

Simulator::PoolStats ShardedSimulator::pool_stats() const noexcept {
  Simulator::PoolStats total;
  for (const auto& shard : shards_) {
    const Simulator::PoolStats s = shard->pool_stats();
    total.slots += s.slots;
    total.free_slots += s.free_slots;
    total.heap_actions += s.heap_actions;
  }
  return total;
}

void ShardedSimulator::set_telemetry(obs::Telemetry* telemetry) {
  telemetry_ = telemetry;
  if (shard_count() == 1) {
    shards_[0]->set_telemetry(telemetry);
    return;
  }
  for (const auto& shard : shards_) shard->set_telemetry(nullptr);
  shard_telemetry_.clear();
  windows_counter_ = nullptr;
  stalls_counter_ = nullptr;
  if (telemetry == nullptr) return;
  windows_counter_ = &telemetry->metrics.counter("smrp.sim.shard_windows");
  stalls_counter_ = &telemetry->metrics.counter("smrp.sim.shard_stalls");
  shard_telemetry_.reserve(shards_.size());
  for (const auto& shard : shards_) {
    auto bundle = std::make_unique<obs::Telemetry>();
    if (telemetry->sampling_enabled()) {
      bundle->enable_sampling(telemetry->sample_period());
    }
    shard->set_telemetry(bundle.get());
    shard_telemetry_.push_back(std::move(bundle));
  }
}

obs::Telemetry* ShardedSimulator::shard_telemetry(int s) noexcept {
  if (shard_count() == 1 ||
      static_cast<std::size_t>(s) >= shard_telemetry_.size()) {
    return nullptr;
  }
  return shard_telemetry_[static_cast<std::size_t>(s)].get();
}

void ShardedSimulator::merge_telemetry() {
  if (shard_count() == 1 || telemetry_ == nullptr ||
      shard_telemetry_.empty()) {
    return;
  }
  // Detach first: the bundles die with this merge, and the shards cache
  // instrument handles into them.
  for (const auto& shard : shards_) shard->set_telemetry(nullptr);
  for (int s = 0; s < shard_count(); ++s) {
    telemetry_->absorb_shard(*shard_telemetry_[static_cast<std::size_t>(s)],
                             s);
  }
  shard_telemetry_.clear();
}

// ---------------------------------------------------------------------------
// ShardedSimNetwork

ShardedSimNetwork::ShardedSimNetwork(const net::Graph& graph, ShardPlan plan,
                                     NetworkConfig config)
    : plan_(std::move(plan)), graph_(&graph), sim_(plan_.shards) {
  const auto nodes = static_cast<std::size_t>(graph.node_count());
  if (plan_.shard_of.empty()) plan_.shard_of.assign(nodes, 0);
  if (plan_.shard_of.size() != nodes) {
    throw std::invalid_argument("shard plan does not cover the graph");
  }
  for (const int s : plan_.shard_of) {
    if (s < 0 || s >= plan_.shards) {
      throw std::invalid_argument("shard plan entry out of range");
    }
  }
  const int k = plan_.shards;
  net_.reserve(static_cast<std::size_t>(k));
  for (int s = 0; s < k; ++s) {
    NetworkConfig shard_config = config;
    // Independent per-shard loss streams (shard 0 keeps the caller's seed,
    // so one shard is byte-identical to the sequential network).
    shard_config.loss_seed =
        config.loss_seed +
        0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(s);
    net_.push_back(
        std::make_unique<SimNetwork>(sim_.shard(s), graph, shard_config));
    if (k > 1) net_.back()->set_cross_shard(this, s);
  }
  if (k > 1) {
    queues_.resize(static_cast<std::size_t>(k) * static_cast<std::size_t>(k));
    Time lookahead = std::numeric_limits<Time>::infinity();
    for (net::LinkId l = 0; l < graph.link_count(); ++l) {
      const net::Link& link = graph.link(l);
      if (shard_of(link.a) != shard_of(link.b)) {
        lookahead = std::min(lookahead, net_[0]->link_latency(l));
      }
    }
    sim_.set_lookahead(lookahead);
    sim_.set_barrier_hook([this](Time window_end) { drain(window_end); });
  }
}

void ShardedSimNetwork::set_handler(NodeId node, SimNetwork::Handler handler) {
  if (!graph_->valid_node(node)) throw std::out_of_range("bad node");
  net_[static_cast<std::size_t>(shard_of(node))]->set_handler(
      node, std::move(handler));
}

bool ShardedSimNetwork::send(NodeId from, NodeId to, Message message) {
  if (!graph_->valid_node(from)) throw std::out_of_range("bad node");
  return net_[static_cast<std::size_t>(shard_of(from))]->send(
      from, to, std::move(message));
}

int ShardedSimNetwork::broadcast(NodeId from, const Message& message) {
  if (!graph_->valid_node(from)) throw std::out_of_range("bad node");
  return net_[static_cast<std::size_t>(shard_of(from))]->broadcast(from,
                                                                   message);
}

void ShardedSimNetwork::set_link_up(LinkId link, bool up) {
  for (const auto& net : net_) net->set_link_up(link, up);
}

bool ShardedSimNetwork::link_up(LinkId link) const {
  return net_[0]->link_up(link);
}

void ShardedSimNetwork::set_node_up(NodeId node, bool up) {
  for (const auto& net : net_) net->set_node_up(node, up);
}

bool ShardedSimNetwork::node_up(NodeId node) const {
  return net_[0]->node_up(node);
}

void ShardedSimNetwork::set_loss_probability(double p) {
  for (const auto& net : net_) net->set_loss_probability(p);
}

Time ShardedSimNetwork::link_latency(LinkId link) const {
  return net_[0]->link_latency(link);
}

std::uint64_t ShardedSimNetwork::messages_sent() const noexcept {
  std::uint64_t total = 0;
  for (const auto& net : net_) total += net->messages_sent();
  return total;
}

std::uint64_t ShardedSimNetwork::messages_delivered() const noexcept {
  std::uint64_t total = 0;
  for (const auto& net : net_) total += net->messages_delivered();
  return total;
}

std::uint64_t ShardedSimNetwork::messages_dropped() const noexcept {
  std::uint64_t total = 0;
  for (const auto& net : net_) total += net->messages_dropped();
  return total;
}

SimNetwork::PoolStats ShardedSimNetwork::pool_stats() const noexcept {
  SimNetwork::PoolStats total;
  for (const auto& net : net_) {
    const SimNetwork::PoolStats s = net->pool_stats();
    total.envelopes += s.envelopes;
    total.free += s.free;
  }
  return total;
}

void ShardedSimNetwork::set_telemetry(obs::Telemetry* telemetry) {
  if (shard_count() == 1) {
    sim_.set_telemetry(telemetry);
    net_[0]->set_telemetry(telemetry);
    return;
  }
  sim_.set_telemetry(telemetry);
  cross_counter_ = nullptr;
  for (int s = 0; s < shard_count(); ++s) {
    net_[static_cast<std::size_t>(s)]->set_telemetry(sim_.shard_telemetry(s));
  }
  if (telemetry != nullptr) {
    cross_counter_ = &telemetry->metrics.counter("smrp.sim.shard_cross_msgs");
  }
}

void ShardedSimNetwork::merge_telemetry() {
  if (shard_count() > 1) {
    // The shard bundles die inside sim_.merge_telemetry(); detach the
    // networks' cached handles first.
    for (const auto& net : net_) net->set_telemetry(nullptr);
  }
  sim_.merge_telemetry();
}

void ShardedSimNetwork::enqueue(int src_shard, NodeId from, NodeId to,
                                LinkId link, Time when,
                                const Message& message) {
  auto& queue = queues_[static_cast<std::size_t>(src_shard) *
                            static_cast<std::size_t>(plan_.shards) +
                        static_cast<std::size_t>(shard_of(to))];
  queue.push_back(
      CrossMsg{when, src_shard, queue.size(), from, to, link, message});
}

void ShardedSimNetwork::drain(Time /*window_end*/) {
  const int k = plan_.shards;
  for (int dst = 0; dst < k; ++dst) {
    drain_buf_.clear();
    for (int src = 0; src < k; ++src) {
      auto& queue = queues_[static_cast<std::size_t>(src) *
                                static_cast<std::size_t>(k) +
                            static_cast<std::size_t>(dst)];
      for (CrossMsg& msg : queue) drain_buf_.push_back(std::move(msg));
      queue.clear();
    }
    if (drain_buf_.empty()) continue;
    // The determinism rule: arrivals are admitted to the destination
    // wheel in (when, src_shard, seq) order, so the sequence numbers they
    // draw — and every FIFO tie-break downstream — are independent of
    // which worker thread ran which shard.
    std::sort(drain_buf_.begin(), drain_buf_.end(),
              [](const CrossMsg& a, const CrossMsg& b) {
                if (a.when != b.when) return a.when < b.when;
                if (a.src_shard != b.src_shard) {
                  return a.src_shard < b.src_shard;
                }
                return a.seq < b.seq;
              });
    for (const CrossMsg& msg : drain_buf_) {
      net_[static_cast<std::size_t>(dst)]->deliver_at(
          msg.from, msg.to, msg.link, msg.when, msg.message);
    }
    cross_messages_ += drain_buf_.size();
    if (cross_counter_ != nullptr) {
      cross_counter_->add(drain_buf_.size());
    }
  }
}

}  // namespace smrp::sim
