// The pre-timing-wheel event core, kept verbatim as the differential
// oracle: a binary heap of (time, id, std::function) entries with a
// pending-id set for cancellation. tests/sim/test_simulator_differential
// drives this and the production wheel through identical scripts and
// asserts bit-identical firing order; bench_micro and bench_sim_core
// measure the wheel's speedup against it. Not used on any production
// path — include it only from tests and benches.
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <stdexcept>
#include <unordered_set>
#include <vector>

namespace smrp::sim {

/// Simulated time in milliseconds (mirrors Simulator's contract).
class ReferenceSimulator {
 public:
  using Time = double;
  using EventId = std::uint64_t;

  [[nodiscard]] Time now() const noexcept { return now_; }

  EventId schedule(Time delay, std::function<void()> action) {
    if (std::isnan(delay) || delay < 0.0) {
      throw std::invalid_argument("negative delay");
    }
    return schedule_at(now_ + delay, std::move(action));
  }

  EventId schedule_at(Time when, std::function<void()> action) {
    if (!std::isfinite(when) || when < now_) {
      throw std::invalid_argument("cannot schedule in the past");
    }
    if (!action) throw std::invalid_argument("empty action");
    const EventId id = next_id_++;
    queue_.push(Entry{when, id, std::move(action)});
    pending_ids_.insert(id);
    ++live_pending_;
    return id;
  }

  void cancel(EventId id) {
    const auto it = pending_ids_.find(id);
    if (it == pending_ids_.end()) return;  // fired, cancelled, or unknown
    pending_ids_.erase(it);
    --live_pending_;
    if (queue_.size() > 64 && queue_.size() > 2 * live_pending_) compact();
  }

  std::size_t run_until(Time until) {
    std::size_t fired = 0;
    while (fire_next(until)) ++fired;
    if (now_ < until) now_ = until;
    return fired;
  }

  std::size_t run_all(std::size_t max_events = 10'000'000) {
    std::size_t fired = 0;
    while (fired < max_events &&
           fire_next(std::numeric_limits<Time>::infinity())) {
      ++fired;
    }
    return fired;
  }

  [[nodiscard]] bool idle() const noexcept { return live_pending_ == 0; }
  [[nodiscard]] std::size_t processed() const noexcept { return processed_; }
  [[nodiscard]] std::size_t pending() const noexcept { return live_pending_; }
  [[nodiscard]] std::size_t queue_depth() const noexcept {
    return queue_.size();
  }

 private:
  struct Entry {
    Time when;
    EventId id;
    std::function<void()> action;
    bool operator>(const Entry& other) const noexcept {
      if (when != other.when) return when > other.when;
      return id > other.id;  // FIFO among simultaneous events
    }
  };

  void compact() {
    std::vector<Entry> live;
    live.reserve(live_pending_);
    while (!queue_.empty()) {
      Entry entry = std::move(const_cast<Entry&>(queue_.top()));
      queue_.pop();
      if (pending_ids_.count(entry.id) > 0) live.push_back(std::move(entry));
    }
    queue_ = decltype(queue_)(std::greater<Entry>{}, std::move(live));
  }

  bool fire_next(Time limit) {
    while (!queue_.empty()) {
      const Entry& top = queue_.top();
      if (top.when > limit) return false;
      if (pending_ids_.find(top.id) == pending_ids_.end()) {
        queue_.pop();  // cancelled: skip without advancing the clock
        continue;
      }
      Entry entry = std::move(const_cast<Entry&>(top));
      queue_.pop();
      pending_ids_.erase(entry.id);
      now_ = entry.when;
      --live_pending_;
      ++processed_;
      entry.action();
      return true;
    }
    return false;
  }

  Time now_ = 0.0;
  EventId next_id_ = 1;
  std::size_t processed_ = 0;
  std::size_t live_pending_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue_;
  std::unordered_set<EventId> pending_ids_;
};

}  // namespace smrp::sim
