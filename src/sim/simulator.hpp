// Discrete-event simulation core (the ns-2 stand-in): a clock plus an
// ordered event queue. Events fire in (time, insertion-order) order, so a
// run is fully deterministic for a given schedule of calls.
//
// Internally this is a hierarchical timing wheel over a slab-allocated
// event pool (DESIGN.md §11): a near wheel of fixed-width buckets covers
// the next ~second of simulated time, a far overflow heap holds everything
// beyond the horizon and cascades into the wheel as the cursor advances,
// and a tiny ready heap totally orders the single bucket being drained.
// Events live in a freelist arena; EventId is a generation-tagged slot
// index, so cancel() is an O(1) unlink (wheel residents) or an O(1) dead
// mark (heap residents, compacted when they dominate) with no id set and
// no per-event allocation. Firing order is bit-identical to a plain
// (time, id) binary heap — tests/sim/test_simulator_differential.cpp
// proves it against the retained reference implementation.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "sim/inplace_function.hpp"

namespace smrp::obs {
class Counter;
class Gauge;
class Histogram;
struct Telemetry;
}  // namespace smrp::obs

namespace smrp::sim {

/// Simulated time in milliseconds.
using Time = double;

/// Generation-tagged pool handle: the low 32 bits hold slot_index + 1 (so
/// the zero id stays invalid / kNoEvent), the high 32 bits the slot's
/// generation when the event was scheduled. A fired or cancelled event
/// frees its slot and bumps the generation, so stale ids fail the tag
/// check and cancel() on them is a harmless O(1) no-op.
using EventId = std::uint64_t;
inline constexpr EventId kNoEvent = 0;

/// Scheduled actions are stored inline in the event pool: 64 bytes of
/// small-buffer storage covers every timer capture in the tree, so the
/// steady-state schedule/fire path performs zero heap allocations.
using EventAction = InplaceFunction<64>;

class Simulator {
 public:
  Simulator();

  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Schedule `action` to run `delay` ms from now. `delay` must be finite
  /// and ≥ 0 (NaN or negative throws std::invalid_argument).
  EventId schedule(Time delay, EventAction action);

  /// Schedule `action` at absolute time `when`. `when` must be finite and
  /// ≥ now (NaN, ±inf, or the past throws std::invalid_argument — a NaN
  /// used to corrupt the queue ordering silently).
  EventId schedule_at(Time when, EventAction action);

  /// Cancel a pending event; cancelling an already-fired or unknown id is
  /// a harmless no-op.
  void cancel(EventId id);

  /// Run events until the queue empties or the clock passes `until`.
  /// Events scheduled exactly at `until` still run. Returns the number of
  /// events processed by this call.
  std::size_t run_until(Time until);

  /// Run every event with `when` strictly before `bound` (half-open — the
  /// window primitive of the sharded mode, DESIGN.md §15). Unlike
  /// run_until this never drags the clock or the wheel cursor to `bound`:
  /// the clock stays at the last fired event, so a later schedule_at() of
  /// a cross-shard arrival ≥ `bound` is always valid. Returns the number
  /// of events processed.
  std::size_t run_before(Time bound);

  /// Fire time of the earliest live pending event, or +inf when idle.
  /// Pure observation apart from pruning cancelled heap heads (which can
  /// never fire anyway); used by the sharded coordinator to skip windows
  /// with no work.
  [[nodiscard]] Time next_event_when();

  /// Run everything (with a safety cap to catch runaway schedules).
  std::size_t run_all(std::size_t max_events = 10'000'000);

  [[nodiscard]] bool idle() const noexcept { return live_pending_ == 0; }
  [[nodiscard]] std::size_t processed() const noexcept { return processed_; }
  [[nodiscard]] std::size_t pending() const noexcept { return live_pending_; }

  /// Queue entries currently held, live *and* cancelled-but-not-yet-freed.
  /// Wheel-resident events are unlinked (and their slot freed) the moment
  /// they are cancelled; heap residents are dead-marked and compacted once
  /// they dominate, so this stays within a small factor of pending() even
  /// under schedule/cancel churn that never lets the clock reach the
  /// cancelled events (long chaos runs do exactly that).
  [[nodiscard]] std::size_t queue_depth() const noexcept {
    return near_count_ + far_.size() + ready_.size();
  }

  /// Event-pool occupancy, for tests and capacity planning. The slab only
  /// ever grows to the peak number of simultaneously pending events;
  /// heap_actions counts SBO overflows (captures larger than EventAction's
  /// inline buffer) and stays 0 on every protocol workload.
  struct PoolStats {
    std::size_t slots = 0;        ///< slab capacity (peak concurrent events)
    std::size_t free_slots = 0;   ///< slots on the freelist right now
    std::uint64_t heap_actions = 0;  ///< actions that overflowed the SBO
  };
  [[nodiscard]] PoolStats pool_stats() const noexcept {
    return PoolStats{slots_.size(), free_count_, heap_actions_};
  }

  /// Attach (or detach with nullptr) the telemetry bundle; not owned.
  /// Records per-event clock advances (`smrp.sim.event_gap_ms` — the event
  /// loop's stall distribution), the live/heap queue depths, the event
  /// count, and the pool gauges (`smrp.sim.pool_events{,_free}`,
  /// `smrp.sim.pool_action_heap`). Pure observation: attaching never
  /// changes a run's outcome.
  void set_telemetry(obs::Telemetry* telemetry);

 private:
  // Wheel geometry: 2048 buckets of 0.5 ms give a ~1 s near horizon —
  // wide enough that every soft-state refresh, backoff ring, and in-flight
  // hop lands in the wheel, while chaos plans and long reshape timers
  // overflow to the far heap. The bucket width is a power of two so
  // tick = floor(when · 2) is exact in floating point and therefore
  // monotone in `when` (the ordering proof relies on it).
  static constexpr std::uint64_t kWheelBuckets = 2048;
  static constexpr std::uint64_t kWheelMask = kWheelBuckets - 1;
  static constexpr double kTicksPerMs = 2.0;  // bucket width 0.5 ms
  static constexpr std::uint32_t kNull = 0xffffffffu;

  enum class State : std::uint8_t {
    kFree,   ///< on the freelist
    kWheel,  ///< linked into a near-wheel bucket
    kReady,  ///< referenced by the ready heap (current bucket, total order)
    kFar,    ///< referenced by the far overflow heap
    kDead,   ///< cancelled while heap-resident; freed when popped/compacted
  };

  struct Event {
    Time when = 0.0;
    std::uint64_t seq = 0;  ///< schedule order, the FIFO tie-break
    EventAction action;
    std::uint32_t generation = 0;
    State state = State::kFree;
    std::uint32_t prev = kNull;  ///< wheel bucket back-link
    std::uint32_t next = kNull;  ///< wheel bucket / freelist forward link
  };

  /// Heap entry for ready_/far_: ordering key plus the slot it points at.
  struct HeapEntry {
    Time when;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  static std::uint64_t tick_of(Time when) noexcept {
    return static_cast<std::uint64_t>(when * kTicksPerMs);
  }
  static EventId make_id(std::uint32_t slot, std::uint32_t generation) {
    return (static_cast<EventId>(generation) << 32) |
           static_cast<EventId>(slot + 1);
  }

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);
  void place(std::uint32_t slot);
  void unlink_from_wheel(std::uint32_t slot);
  void push_heap_entry(std::vector<HeapEntry>& heap, std::uint32_t slot);
  void pop_heap_entry(std::vector<HeapEntry>& heap);
  void drain_bucket(std::uint32_t bucket);
  void pull_far();
  [[nodiscard]] std::uint64_t next_occupied_tick() const;
  bool advance();
  bool fire_next(Time limit);
  void compact();

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  std::size_t processed_ = 0;
  std::size_t live_pending_ = 0;

  // Event pool: slab + freelist (stable indices, recycled slots).
  std::vector<Event> slots_;
  std::uint32_t free_head_ = kNull;
  std::size_t free_count_ = 0;
  std::uint64_t heap_actions_ = 0;

  // Near wheel: per-bucket doubly-linked slot lists plus an occupancy
  // bitmap for O(buckets/64) next-bucket scans.
  std::uint64_t cursor_tick_ = 0;  ///< all events are at tick ≥ cursor
  std::size_t near_count_ = 0;
  std::array<std::uint32_t, kWheelBuckets> bucket_head_;
  std::array<std::uint64_t, kWheelBuckets / 64> occupied_{};

  // Ready heap (the bucket being drained, totally ordered) and far
  // overflow heap (beyond the wheel horizon), both min-heaps on (when, seq).
  std::vector<HeapEntry> ready_;
  std::vector<HeapEntry> far_;

  // Telemetry handles, cached at attach time (null when detached).
  obs::Telemetry* telemetry_ = nullptr;
  obs::Counter* events_counter_ = nullptr;
  obs::Gauge* depth_gauge_ = nullptr;
  obs::Histogram* gap_hist_ = nullptr;
  obs::Gauge* pool_slots_gauge_ = nullptr;
  obs::Gauge* pool_free_gauge_ = nullptr;
  obs::Counter* pool_heap_counter_ = nullptr;
};

}  // namespace smrp::sim
