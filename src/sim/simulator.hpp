// Discrete-event simulation core (the ns-2 stand-in): a clock plus an
// ordered event queue. Events fire in (time, insertion-order) order, so a
// run is fully deterministic for a given schedule of calls.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <unordered_set>

namespace smrp::obs {
class Counter;
class Gauge;
class Histogram;
struct Telemetry;
}  // namespace smrp::obs

namespace smrp::sim {

/// Simulated time in milliseconds.
using Time = double;

using EventId = std::uint64_t;
inline constexpr EventId kNoEvent = 0;

class Simulator {
 public:
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Schedule `action` to run `delay` ms from now (delay ≥ 0).
  EventId schedule(Time delay, std::function<void()> action);

  /// Schedule `action` at absolute time `when` (≥ now).
  EventId schedule_at(Time when, std::function<void()> action);

  /// Cancel a pending event; cancelling an already-fired or unknown id is
  /// a harmless no-op.
  void cancel(EventId id);

  /// Run events until the queue empties or the clock passes `until`.
  /// Events scheduled exactly at `until` still run. Returns the number of
  /// events processed by this call.
  std::size_t run_until(Time until);

  /// Run everything (with a safety cap to catch runaway schedules).
  std::size_t run_all(std::size_t max_events = 10'000'000);

  [[nodiscard]] bool idle() const noexcept { return live_pending_ == 0; }
  [[nodiscard]] std::size_t processed() const noexcept { return processed_; }
  [[nodiscard]] std::size_t pending() const noexcept { return live_pending_; }

  /// Heap entries currently held, live *and* cancelled-but-not-yet-pruned.
  /// Compaction keeps this within a small factor of pending(), so memory
  /// stays bounded even under schedule/cancel churn that never lets the
  /// clock reach the cancelled events (long chaos runs do exactly that).
  [[nodiscard]] std::size_t queue_depth() const noexcept {
    return queue_.size();
  }

  /// Attach (or detach with nullptr) the telemetry bundle; not owned.
  /// Records per-event clock advances (`smrp.sim.event_gap_ms` — the event
  /// loop's stall distribution), the live/heap queue depths, and the event
  /// count. Pure observation: attaching never changes a run's outcome.
  void set_telemetry(obs::Telemetry* telemetry);

 private:
  struct Entry {
    Time when;
    EventId id;
    std::function<void()> action;
    bool operator>(const Entry& other) const noexcept {
      if (when != other.when) return when > other.when;
      return id > other.id;  // FIFO among simultaneous events
    }
  };

  bool fire_next(Time limit);
  void compact();

  Time now_ = 0.0;
  EventId next_id_ = 1;
  std::size_t processed_ = 0;
  std::size_t live_pending_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue_;
  std::unordered_set<EventId> pending_ids_;
  // Telemetry handles, cached at attach time (null when detached).
  obs::Telemetry* telemetry_ = nullptr;
  obs::Counter* events_counter_ = nullptr;
  obs::Gauge* depth_gauge_ = nullptr;
  obs::Histogram* gap_hist_ = nullptr;
};

}  // namespace smrp::sim
