#include "sim/trace.hpp"

namespace smrp::sim {

std::string_view message_name(const Message& message) {
  struct Visitor {
    std::string_view operator()(const HelloMsg&) const { return "HELLO"; }
    std::string_view operator()(const LsaMsg&) const { return "LSA"; }
    std::string_view operator()(const JoinReqMsg&) const { return "JOIN_REQ"; }
    std::string_view operator()(const JoinAckMsg&) const { return "JOIN_ACK"; }
    std::string_view operator()(const LeaveReqMsg&) const {
      return "LEAVE_REQ";
    }
    std::string_view operator()(const StateRefreshMsg&) const {
      return "STATE_REFRESH";
    }
    std::string_view operator()(const ShrUpdateMsg&) const {
      return "SHR_UPDATE";
    }
    std::string_view operator()(const DataMsg&) const { return "DATA"; }
    std::string_view operator()(const RepairQueryMsg&) const {
      return "REPAIR_QUERY";
    }
    std::string_view operator()(const RepairRespMsg&) const {
      return "REPAIR_RESP";
    }
  };
  return std::visit(Visitor{}, message);
}

namespace {

const char* kind_name(TraceKind kind) {
  switch (kind) {
    case TraceKind::kSend:
      return "send";
    case TraceKind::kDeliver:
      return "recv";
    case TraceKind::kDrop:
      return "drop";
  }
  return "?";
}

}  // namespace

void Tracer::print(std::ostream& out) const {
  for (const TraceEvent& e : events_) {
    out << e.at << "ms " << kind_name(e.kind) << " " << e.from << "->" << e.to
        << " " << e.message << "\n";
  }
}

std::size_t Tracer::count_retained(std::string_view name,
                                   TraceKind kind) const {
  std::size_t n = 0;
  for (const TraceEvent& e : events_) {
    if (e.kind == kind && e.message == name) ++n;
  }
  return n;
}

}  // namespace smrp::sim
