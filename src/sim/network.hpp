// Simulated network data plane: hop-by-hop delivery between adjacent
// nodes with per-link propagation delay and up/down state for links and
// nodes (the persistent failures the paper studies).
//
// In-flight messages ride pooled envelopes: a send moves its Message into
// a recycled slab slot and the scheduled delivery closure carries only the
// slot index (plus to/link), so the dispatch path performs no per-hop heap
// allocation and a broadcast shares one refcounted envelope across every
// admitted neighbor instead of copying the payload per hop.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <variant>
#include <vector>

#include "net/graph.hpp"
#include "net/rng.hpp"
#include "sim/messages.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace smrp::sim {

struct NetworkConfig {
  /// Milliseconds of propagation per unit of link weight.
  double propagation_per_weight = 0.01;
  /// Fixed per-hop processing/transmission overhead in ms.
  double hop_overhead = 0.05;
  /// Probability that any single transmission is lost (transient loss on
  /// top of the persistent failures; exercises soft-state robustness).
  double loss_probability = 0.0;
  /// Seed for the deterministic loss process.
  std::uint64_t loss_seed = 0x10551055ULL;
};

/// Cross-shard egress hook for the sharded mode (DESIGN.md §15). When a
/// SimNetwork is one shard of a ShardedSimNetwork, sends whose destination
/// another shard owns are handed to the router (with the precomputed
/// arrival time) instead of being scheduled locally; the coordinator
/// drains the queues at window barriers via deliver_at() on the owning
/// shard's network.
class CrossShardRouter {
 public:
  virtual ~CrossShardRouter() = default;
  /// True when `to` is owned by a shard other than `src_shard`.
  [[nodiscard]] virtual bool is_remote(int src_shard,
                                       NodeId to) const noexcept = 0;
  /// Queue one cross-shard hop; `when` is the absolute arrival time
  /// (send time + link latency, so ≥ window start + lookahead).
  virtual void enqueue(int src_shard, NodeId from, NodeId to, LinkId link,
                       Time when, const Message& message) = 0;
};

class SimNetwork {
 public:
  using Handler = std::function<void(NodeId from, const Message&)>;

  SimNetwork(Simulator& simulator, const net::Graph& graph,
             NetworkConfig config = {});

  [[nodiscard]] const net::Graph& graph() const noexcept { return *graph_; }
  [[nodiscard]] Simulator& simulator() noexcept { return *simulator_; }

  /// Install the receive handler for a node (replaces any previous one).
  void set_handler(NodeId node, Handler handler);

  /// Send to an adjacent node. Returns false (and drops the message) when
  /// the nodes are not adjacent or the sender is down. A message already
  /// in flight is lost if the link or either endpoint is down at delivery
  /// time — exactly how a persistent cut manifests.
  bool send(NodeId from, NodeId to, Message message);

  /// Broadcast to every neighbor of `from`. Returns messages admitted.
  /// All admitted copies share one pooled envelope (receivers see the
  /// same payload by const reference). A down sender emits nothing and
  /// counts a single batch drop — not one per neighbor, which used to
  /// skew the `smrp.sim.drop.*` counters under node failure.
  int broadcast(NodeId from, const Message& message);

  void set_link_up(LinkId link, bool up);
  [[nodiscard]] bool link_up(LinkId link) const;
  void set_node_up(NodeId node, bool up);
  [[nodiscard]] bool node_up(NodeId node) const;

  /// Change the transient-loss probability at runtime (loss bursts in
  /// chaos plans). Must stay in [0, 1); the loss RNG stream is unaffected,
  /// so a run remains deterministic for a given schedule of calls.
  void set_loss_probability(double p);
  [[nodiscard]] double loss_probability() const noexcept {
    return config_.loss_probability;
  }

  /// Delivery latency for one hop over `link`.
  [[nodiscard]] Time link_latency(LinkId link) const;

  /// Attach (or detach with nullptr) an event tracer; not owned.
  void set_tracer(Tracer* tracer) noexcept { tracer_ = tracer; }

  /// Attach (or detach with nullptr) the cross-shard egress router; not
  /// owned. `my_shard` is this network's shard index, passed back on every
  /// router call so one router instance can serve all shards.
  void set_cross_shard(CrossShardRouter* router, int my_shard) noexcept {
    router_ = router;
    shard_index_ = my_shard;
  }

  /// Ingress side of a cross-shard hop: materialise the message on this
  /// (destination) shard and schedule its delivery at the absolute arrival
  /// time the sender computed. Called by the sharded coordinator at window
  /// barriers, in deterministic (when, src_shard, seq) order; the tx
  /// accounting already happened on the sending shard.
  void deliver_at(NodeId from, NodeId to, LinkId link, Time when,
                  const Message& message);

  /// Attach (or detach with nullptr) the telemetry bundle; not owned.
  /// Maintains per-message-type tx/rx/drop counters in the registry
  /// (`smrp.sim.{tx,rx,drop}.<MESSAGE>` — the registry-side home of the
  /// counts the Tracer tallies), the per-hop latency distribution
  /// `smrp.sim.hop_latency_ms`, and the envelope-pool gauges
  /// `smrp.sim.pool_envelopes{,_free}`. Pure observation.
  void set_telemetry(obs::Telemetry* telemetry);

  [[nodiscard]] std::uint64_t messages_sent() const noexcept { return sent_; }
  [[nodiscard]] std::uint64_t messages_delivered() const noexcept {
    return delivered_;
  }
  [[nodiscard]] std::uint64_t messages_dropped() const noexcept {
    return dropped_;
  }

  /// Envelope-pool occupancy (capacity grows to the peak in-flight count
  /// and is then recycled forever; the steady state allocates nothing).
  struct PoolStats {
    std::size_t envelopes = 0;  ///< slab capacity (peak in-flight messages)
    std::size_t free = 0;       ///< slots on the freelist right now
  };
  [[nodiscard]] PoolStats pool_stats() const noexcept {
    return PoolStats{envelopes_.size(), free_envelopes_};
  }

 private:
  static constexpr std::size_t kMessageTypes =
      std::variant_size_v<Message>;
  static constexpr std::uint32_t kNoEnvelope = 0xffffffffu;

  /// One in-flight payload, shared by every delivery scheduled for it.
  /// Slots live in a deque (stable addresses across pool growth, so a
  /// handler's `const Message&` survives reentrant sends) and are
  /// recycled through a freelist; reassigning the same Message
  /// alternative into a recycled slot reuses its vector capacity.
  struct Envelope {
    Message message = HelloMsg{};
    NodeId from = net::kNoNode;
    std::uint32_t refs = 0;
    std::uint32_t next_free = kNoEnvelope;
  };

  std::uint32_t acquire_envelope();
  void release_envelope(std::uint32_t index);
  /// Record tx bookkeeping and schedule the hop (envelope ref already
  /// counted by the caller).
  void deliver_later(std::uint32_t envelope, NodeId to, LinkId link);
  void deliver(std::uint32_t envelope, NodeId to, LinkId link);
  void count_message(TraceKind kind, const Message& message) noexcept;
  void trace(TraceKind kind, NodeId from, NodeId to, const Message& message);

  Simulator* simulator_;
  const net::Graph* graph_;
  NetworkConfig config_;
  std::vector<Handler> handlers_;
  std::vector<char> link_up_;
  std::vector<char> node_up_;
  net::Rng loss_rng_;
  Tracer* tracer_ = nullptr;
  CrossShardRouter* router_ = nullptr;
  int shard_index_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
  std::deque<Envelope> envelopes_;
  std::uint32_t free_envelope_head_ = kNoEnvelope;
  std::size_t free_envelopes_ = 0;
  // Telemetry handles, cached at attach time: [kind][variant index].
  obs::Telemetry* telemetry_ = nullptr;
  std::array<std::array<obs::Counter*, kMessageTypes>, 3> msg_counters_{};
  obs::Histogram* hop_latency_hist_ = nullptr;
  obs::Gauge* pool_envelopes_gauge_ = nullptr;
  obs::Gauge* pool_free_gauge_ = nullptr;
};

}  // namespace smrp::sim
