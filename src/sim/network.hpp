// Simulated network data plane: hop-by-hop delivery between adjacent
// nodes with per-link propagation delay and up/down state for links and
// nodes (the persistent failures the paper studies).
#pragma once

#include <array>
#include <functional>
#include <variant>
#include <vector>

#include "net/graph.hpp"
#include "net/rng.hpp"
#include "sim/messages.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace smrp::sim {

struct NetworkConfig {
  /// Milliseconds of propagation per unit of link weight.
  double propagation_per_weight = 0.01;
  /// Fixed per-hop processing/transmission overhead in ms.
  double hop_overhead = 0.05;
  /// Probability that any single transmission is lost (transient loss on
  /// top of the persistent failures; exercises soft-state robustness).
  double loss_probability = 0.0;
  /// Seed for the deterministic loss process.
  std::uint64_t loss_seed = 0x10551055ULL;
};

class SimNetwork {
 public:
  using Handler = std::function<void(NodeId from, const Message&)>;

  SimNetwork(Simulator& simulator, const net::Graph& graph,
             NetworkConfig config = {});

  [[nodiscard]] const net::Graph& graph() const noexcept { return *graph_; }
  [[nodiscard]] Simulator& simulator() noexcept { return *simulator_; }

  /// Install the receive handler for a node (replaces any previous one).
  void set_handler(NodeId node, Handler handler);

  /// Send to an adjacent node. Returns false (and drops the message) when
  /// the nodes are not adjacent or the sender is down. A message already
  /// in flight is lost if the link or either endpoint is down at delivery
  /// time — exactly how a persistent cut manifests.
  bool send(NodeId from, NodeId to, Message message);

  /// Broadcast to every neighbor of `from`. Returns messages admitted.
  int broadcast(NodeId from, const Message& message);

  void set_link_up(LinkId link, bool up);
  [[nodiscard]] bool link_up(LinkId link) const;
  void set_node_up(NodeId node, bool up);
  [[nodiscard]] bool node_up(NodeId node) const;

  /// Change the transient-loss probability at runtime (loss bursts in
  /// chaos plans). Must stay in [0, 1); the loss RNG stream is unaffected,
  /// so a run remains deterministic for a given schedule of calls.
  void set_loss_probability(double p);
  [[nodiscard]] double loss_probability() const noexcept {
    return config_.loss_probability;
  }

  /// Delivery latency for one hop over `link`.
  [[nodiscard]] Time link_latency(LinkId link) const;

  /// Attach (or detach with nullptr) an event tracer; not owned.
  void set_tracer(Tracer* tracer) noexcept { tracer_ = tracer; }

  /// Attach (or detach with nullptr) the telemetry bundle; not owned.
  /// Maintains per-message-type tx/rx/drop counters in the registry
  /// (`smrp.sim.{tx,rx,drop}.<MESSAGE>` — the registry-side home of the
  /// counts the Tracer tallies) plus the per-hop latency distribution
  /// `smrp.sim.hop_latency_ms`. Pure observation.
  void set_telemetry(obs::Telemetry* telemetry);

  [[nodiscard]] std::uint64_t messages_sent() const noexcept { return sent_; }
  [[nodiscard]] std::uint64_t messages_delivered() const noexcept {
    return delivered_;
  }
  [[nodiscard]] std::uint64_t messages_dropped() const noexcept {
    return dropped_;
  }

 private:
  static constexpr std::size_t kMessageTypes =
      std::variant_size_v<Message>;

  void count_message(TraceKind kind, const Message& message) noexcept;

  Simulator* simulator_;
  const net::Graph* graph_;
  NetworkConfig config_;
  std::vector<Handler> handlers_;
  std::vector<char> link_up_;
  std::vector<char> node_up_;
  net::Rng loss_rng_;
  Tracer* tracer_ = nullptr;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
  // Telemetry handles, cached at attach time: [kind][variant index].
  obs::Telemetry* telemetry_ = nullptr;
  std::array<std::array<obs::Counter*, kMessageTypes>, 3> msg_counters_{};
  obs::Histogram* hop_latency_hist_ = nullptr;
};

}  // namespace smrp::sim
