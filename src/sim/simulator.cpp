#include "sim/simulator.hpp"

#include <stdexcept>
#include <utility>
#include <vector>

#include "obs/telemetry.hpp"

namespace smrp::sim {

void Simulator::set_telemetry(obs::Telemetry* telemetry) {
  telemetry_ = telemetry;
  if (telemetry == nullptr) {
    events_counter_ = nullptr;
    depth_gauge_ = nullptr;
    gap_hist_ = nullptr;
    return;
  }
  events_counter_ = &telemetry->metrics.counter("smrp.sim.events");
  depth_gauge_ = &telemetry->metrics.gauge("smrp.sim.queue_depth");
  gap_hist_ = &telemetry->metrics.histogram("smrp.sim.event_gap_ms");
}

EventId Simulator::schedule(Time delay, std::function<void()> action) {
  if (delay < 0.0) throw std::invalid_argument("negative delay");
  return schedule_at(now_ + delay, std::move(action));
}

EventId Simulator::schedule_at(Time when, std::function<void()> action) {
  if (when < now_) throw std::invalid_argument("cannot schedule in the past");
  if (!action) throw std::invalid_argument("empty action");
  const EventId id = next_id_++;
  queue_.push(Entry{when, id, std::move(action)});
  pending_ids_.insert(id);
  ++live_pending_;
  return id;
}

void Simulator::cancel(EventId id) {
  const auto it = pending_ids_.find(id);
  if (it == pending_ids_.end()) return;  // fired, cancelled, or unknown
  pending_ids_.erase(it);
  --live_pending_;
  // Cancelled entries stay in the heap (their id is simply no longer
  // pending) and are skipped when popped. Without pruning, a workload that
  // keeps scheduling-and-cancelling far-future events — timer wheels,
  // retry backoff, chaos plans — grows the heap without bound, so compact
  // once dead entries dominate.
  if (queue_.size() > 64 && queue_.size() > 2 * live_pending_) compact();
}

void Simulator::compact() {
  std::vector<Entry> live;
  live.reserve(live_pending_);
  while (!queue_.empty()) {
    Entry entry = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    if (pending_ids_.count(entry.id) > 0) live.push_back(std::move(entry));
  }
  queue_ = decltype(queue_)(std::greater<Entry>{}, std::move(live));
}

bool Simulator::fire_next(Time limit) {
  while (!queue_.empty()) {
    const Entry& top = queue_.top();
    if (top.when > limit) return false;
    if (pending_ids_.find(top.id) == pending_ids_.end()) {
      queue_.pop();  // cancelled: skip without advancing the clock
      continue;
    }
    // Move out before popping so the action may schedule/cancel freely.
    Entry entry = std::move(const_cast<Entry&>(top));
    queue_.pop();
    pending_ids_.erase(entry.id);
    if (telemetry_ != nullptr) {
      gap_hist_->record(entry.when - now_);
      depth_gauge_->set(static_cast<double>(live_pending_));
      events_counter_->add(1);
    }
    now_ = entry.when;
    --live_pending_;
    ++processed_;
    entry.action();
    return true;
  }
  return false;
}

std::size_t Simulator::run_until(Time until) {
  std::size_t fired = 0;
  while (fire_next(until)) ++fired;
  if (now_ < until) now_ = until;
  return fired;
}

std::size_t Simulator::run_all(std::size_t max_events) {
  std::size_t fired = 0;
  while (fired < max_events &&
         fire_next(std::numeric_limits<Time>::infinity())) {
    ++fired;
  }
  return fired;
}

}  // namespace smrp::sim
