#include "sim/simulator.hpp"

#include <stdexcept>
#include <utility>

namespace smrp::sim {

EventId Simulator::schedule(Time delay, std::function<void()> action) {
  if (delay < 0.0) throw std::invalid_argument("negative delay");
  return schedule_at(now_ + delay, std::move(action));
}

EventId Simulator::schedule_at(Time when, std::function<void()> action) {
  if (when < now_) throw std::invalid_argument("cannot schedule in the past");
  if (!action) throw std::invalid_argument("empty action");
  const EventId id = next_id_++;
  queue_.push(Entry{when, id, std::move(action)});
  pending_ids_.insert(id);
  ++live_pending_;
  return id;
}

void Simulator::cancel(EventId id) {
  const auto it = pending_ids_.find(id);
  if (it == pending_ids_.end()) return;  // fired, cancelled, or unknown
  pending_ids_.erase(it);
  cancelled_.insert(id);
  --live_pending_;
}

bool Simulator::fire_next(Time limit) {
  while (!queue_.empty()) {
    const Entry& top = queue_.top();
    if (top.when > limit) return false;
    if (cancelled_.erase(top.id) > 0) {
      queue_.pop();  // skip cancelled without advancing the clock
      continue;
    }
    // Move out before popping so the action may schedule/cancel freely.
    Entry entry = std::move(const_cast<Entry&>(top));
    queue_.pop();
    pending_ids_.erase(entry.id);
    now_ = entry.when;
    --live_pending_;
    ++processed_;
    entry.action();
    return true;
  }
  return false;
}

std::size_t Simulator::run_until(Time until) {
  std::size_t fired = 0;
  while (fire_next(until)) ++fired;
  if (now_ < until) now_ = until;
  return fired;
}

std::size_t Simulator::run_all(std::size_t max_events) {
  std::size_t fired = 0;
  while (fired < max_events &&
         fire_next(std::numeric_limits<Time>::infinity())) {
    ++fired;
  }
  return fired;
}

}  // namespace smrp::sim
