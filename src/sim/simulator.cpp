#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "obs/telemetry.hpp"

namespace smrp::sim {

namespace {

/// Min-heap order on (when, seq): std::*_heap build a max-heap, so the
/// comparator is the reverse of the firing order.
struct HeapLater {
  bool operator()(const auto& a, const auto& b) const noexcept {
    if (a.when != b.when) return a.when > b.when;
    return a.seq > b.seq;
  }
};

}  // namespace

Simulator::Simulator() { bucket_head_.fill(kNull); }

void Simulator::set_telemetry(obs::Telemetry* telemetry) {
  telemetry_ = telemetry;
  if (telemetry == nullptr) {
    events_counter_ = nullptr;
    depth_gauge_ = nullptr;
    gap_hist_ = nullptr;
    pool_slots_gauge_ = nullptr;
    pool_free_gauge_ = nullptr;
    pool_heap_counter_ = nullptr;
    return;
  }
  events_counter_ = &telemetry->metrics.counter("smrp.sim.events");
  depth_gauge_ = &telemetry->metrics.gauge("smrp.sim.queue_depth");
  gap_hist_ = &telemetry->metrics.histogram("smrp.sim.event_gap_ms");
  pool_slots_gauge_ = &telemetry->metrics.gauge("smrp.sim.pool_events");
  pool_free_gauge_ = &telemetry->metrics.gauge("smrp.sim.pool_events_free");
  pool_heap_counter_ = &telemetry->metrics.counter("smrp.sim.pool_action_heap");
}

EventId Simulator::schedule(Time delay, EventAction action) {
  if (std::isnan(delay) || delay < 0.0) {
    throw std::invalid_argument("event delay must be a number >= 0");
  }
  return schedule_at(now_ + delay, std::move(action));
}

EventId Simulator::schedule_at(Time when, EventAction action) {
  if (!std::isfinite(when) || when < now_) {
    throw std::invalid_argument(
        "event time must be finite and not in the past");
  }
  if (!action) throw std::invalid_argument("empty action");
  const std::uint32_t slot = acquire_slot();
  Event& ev = slots_[slot];
  ev.when = when;
  ev.seq = next_seq_++;
  ev.action = std::move(action);
  if (ev.action.uses_heap()) {
    ++heap_actions_;
    if (pool_heap_counter_ != nullptr) pool_heap_counter_->add(1);
  }
  place(slot);
  ++live_pending_;
  return make_id(slot, ev.generation);
}

std::uint32_t Simulator::acquire_slot() {
  if (free_head_ != kNull) {
    const std::uint32_t slot = free_head_;
    free_head_ = slots_[slot].next;
    --free_count_;
    return slot;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Simulator::release_slot(std::uint32_t slot) {
  Event& ev = slots_[slot];
  ev.action.reset();  // drop captures now, not at slab destruction
  ++ev.generation;    // invalidates every outstanding id for this slot
  ev.state = State::kFree;
  ev.prev = kNull;
  ev.next = free_head_;
  free_head_ = slot;
  ++free_count_;
}

void Simulator::place(std::uint32_t slot) {
  Event& ev = slots_[slot];
  const std::uint64_t t = tick_of(ev.when);
  if (t <= cursor_tick_) {
    // At or behind the bucket being drained: join its total order directly.
    ev.state = State::kReady;
    push_heap_entry(ready_, slot);
  } else if (t - cursor_tick_ < kWheelBuckets) {
    ev.state = State::kWheel;
    const auto bucket = static_cast<std::uint32_t>(t & kWheelMask);
    const std::uint32_t head = bucket_head_[bucket];
    ev.prev = kNull;
    ev.next = head;
    if (head != kNull) slots_[head].prev = slot;
    bucket_head_[bucket] = slot;
    occupied_[bucket >> 6] |= std::uint64_t{1} << (bucket & 63);
    ++near_count_;
  } else {
    ev.state = State::kFar;
    push_heap_entry(far_, slot);
  }
}

void Simulator::push_heap_entry(std::vector<HeapEntry>& heap,
                                std::uint32_t slot) {
  const Event& ev = slots_[slot];
  heap.push_back(HeapEntry{ev.when, ev.seq, slot});
  std::push_heap(heap.begin(), heap.end(), HeapLater{});
}

void Simulator::pop_heap_entry(std::vector<HeapEntry>& heap) {
  std::pop_heap(heap.begin(), heap.end(), HeapLater{});
  heap.pop_back();
}

void Simulator::unlink_from_wheel(std::uint32_t slot) {
  Event& ev = slots_[slot];
  const auto bucket =
      static_cast<std::uint32_t>(tick_of(ev.when) & kWheelMask);
  if (ev.prev != kNull) {
    slots_[ev.prev].next = ev.next;
  } else {
    bucket_head_[bucket] = ev.next;
  }
  if (ev.next != kNull) slots_[ev.next].prev = ev.prev;
  if (bucket_head_[bucket] == kNull) {
    occupied_[bucket >> 6] &= ~(std::uint64_t{1} << (bucket & 63));
  }
  --near_count_;
}

void Simulator::cancel(EventId id) {
  const auto raw = static_cast<std::uint32_t>(id & 0xffffffffu);
  if (raw == 0 || raw > slots_.size()) return;  // kNoEvent or unknown
  const std::uint32_t slot = raw - 1;
  Event& ev = slots_[slot];
  if (ev.generation != static_cast<std::uint32_t>(id >> 32)) {
    return;  // stale id: the event fired or was cancelled already
  }
  switch (ev.state) {
    case State::kWheel:
      // O(1): unlink from the bucket list and recycle the slot now.
      unlink_from_wheel(slot);
      release_slot(slot);
      --live_pending_;
      break;
    case State::kReady:
    case State::kFar:
      // Heap residents cannot be removed in O(1); mark dead and let the
      // pop path (or compaction, once the dead dominate) free the slot.
      ev.state = State::kDead;
      --live_pending_;
      if (queue_depth() > 64 && queue_depth() > 2 * live_pending_) compact();
      break;
    default:
      break;  // kFree/kDead cannot carry a matching generation
  }
}

void Simulator::compact() {
  for (std::vector<HeapEntry>* heap : {&ready_, &far_}) {
    auto dead = std::remove_if(
        heap->begin(), heap->end(), [this](const HeapEntry& e) {
          if (slots_[e.slot].state != State::kDead) return false;
          release_slot(e.slot);
          return true;
        });
    if (dead == heap->end()) continue;
    heap->erase(dead, heap->end());
    std::make_heap(heap->begin(), heap->end(), HeapLater{});
  }
}

void Simulator::drain_bucket(std::uint32_t bucket) {
  std::uint32_t slot = bucket_head_[bucket];
  bucket_head_[bucket] = kNull;
  occupied_[bucket >> 6] &= ~(std::uint64_t{1} << (bucket & 63));
  while (slot != kNull) {
    Event& ev = slots_[slot];
    const std::uint32_t next = ev.next;
    ev.state = State::kReady;
    ev.prev = kNull;
    ev.next = kNull;
    push_heap_entry(ready_, slot);
    --near_count_;
    slot = next;
  }
}

void Simulator::pull_far() {
  // Cascade newly eligible far events into the window [cursor, horizon).
  while (!far_.empty()) {
    const HeapEntry top = far_.front();
    Event& ev = slots_[top.slot];
    if (ev.state == State::kDead) {
      pop_heap_entry(far_);
      release_slot(top.slot);
      continue;
    }
    const std::uint64_t t = tick_of(top.when);
    if (t >= cursor_tick_ + kWheelBuckets) break;  // still beyond horizon
    pop_heap_entry(far_);
    if (t <= cursor_tick_) {
      ev.state = State::kReady;
      ready_.push_back(top);
      std::push_heap(ready_.begin(), ready_.end(), HeapLater{});
    } else {
      ev.state = State::kWheel;
      const auto bucket = static_cast<std::uint32_t>(t & kWheelMask);
      const std::uint32_t head = bucket_head_[bucket];
      ev.prev = kNull;
      ev.next = head;
      if (head != kNull) slots_[head].prev = top.slot;
      bucket_head_[bucket] = top.slot;
      occupied_[bucket >> 6] |= std::uint64_t{1} << (bucket & 63);
      ++near_count_;
    }
  }
}

std::uint64_t Simulator::next_occupied_tick() const {
  // Circular bitmap scan for the first occupied bucket strictly after the
  // cursor; the caller guarantees near_count_ > 0, so a hit exists within
  // one revolution. Wheel ticks live in (cursor, cursor + kWheelBuckets),
  // so circular distance from the cursor recovers the absolute tick.
  const auto start =
      static_cast<std::uint32_t>((cursor_tick_ + 1) & kWheelMask);
  std::uint32_t word = start >> 6;
  std::uint64_t bits = occupied_[word] & (~std::uint64_t{0} << (start & 63));
  for (std::uint32_t scanned = 0;; ++scanned) {
    if (bits != 0) {
      const auto bucket = static_cast<std::uint32_t>(
          (word << 6) + static_cast<std::uint32_t>(__builtin_ctzll(bits)));
      const std::uint64_t dist =
          ((bucket - start) & kWheelMask) + 1;  // ≥ 1 past the cursor
      return cursor_tick_ + dist;
    }
    word = (word + 1) & ((kWheelBuckets >> 6) - 1);
    bits = occupied_[word];
    if (scanned > (kWheelBuckets >> 6)) break;  // unreachable by invariant
  }
  return cursor_tick_ + 1;
}

bool Simulator::advance() {
  // Called with ready_ empty: slide the window to the next occupied
  // bucket (or jump it straight to the far heap's head when the wheel is
  // empty) and refill the ready heap.
  for (;;) {
    if (near_count_ == 0) {
      while (!far_.empty() &&
             slots_[far_.front().slot].state == State::kDead) {
        const std::uint32_t slot = far_.front().slot;
        pop_heap_entry(far_);
        release_slot(slot);
      }
      if (far_.empty()) return false;
      cursor_tick_ = tick_of(far_.front().when);
    } else {
      cursor_tick_ = next_occupied_tick();
    }
    pull_far();
    drain_bucket(static_cast<std::uint32_t>(cursor_tick_ & kWheelMask));
    if (!ready_.empty()) return true;
  }
}

bool Simulator::fire_next(Time limit) {
  for (;;) {
    if (ready_.empty() && !advance()) return false;
    const HeapEntry top = ready_.front();
    Event& ev = slots_[top.slot];
    if (ev.state == State::kDead) {
      pop_heap_entry(ready_);
      release_slot(top.slot);
      continue;
    }
    if (top.when > limit) return false;
    pop_heap_entry(ready_);
    // Move the action out and free the slot *before* invoking, so the
    // action may schedule/cancel freely (including reusing this slot) and
    // a cancel of the firing id is a no-op, exactly as before.
    EventAction action = std::move(ev.action);
    release_slot(top.slot);
    if (telemetry_ != nullptr) {
      gap_hist_->record(top.when - now_);
      depth_gauge_->set(static_cast<double>(live_pending_));
      events_counter_->add(1);
      pool_slots_gauge_->set(static_cast<double>(slots_.size()));
      pool_free_gauge_->set(static_cast<double>(free_count_));
      // Gauges above are current as of this event; snapshot them if a
      // sampling period boundary passed (no-op unless enabled).
      telemetry_->maybe_sample(top.when);
    }
    now_ = top.when;
    --live_pending_;
    ++processed_;
    action();
    return true;
  }
}

std::size_t Simulator::run_until(Time until) {
  std::size_t fired = 0;
  while (fire_next(until)) ++fired;
  if (now_ < until) now_ = until;
  // With nothing queued ahead of the cursor, drag it up to the clock so
  // post-gap schedules land in the wheel instead of the far heap.
  if (ready_.empty() && near_count_ == 0 && std::isfinite(now_)) {
    cursor_tick_ = std::max(cursor_tick_, tick_of(now_));
  }
  return fired;
}

std::size_t Simulator::run_before(Time bound) {
  // fire_next's limit is inclusive; the largest double below `bound` makes
  // it exclusive. nextafter(inf, -inf) is the max finite double, so an
  // unbounded window degrades to run-everything as intended.
  const Time limit =
      std::nextafter(bound, -std::numeric_limits<Time>::infinity());
  std::size_t fired = 0;
  while (fire_next(limit)) ++fired;
  return fired;
}

Time Simulator::next_event_when() {
  // The ready heap (current bucket, plus anything scheduled at or behind
  // the cursor) always holds the global minimum when it is non-empty:
  // wheel residents are at strictly later ticks and far residents beyond
  // the horizon, and tick_of is monotone in `when`.
  while (!ready_.empty()) {
    const HeapEntry top = ready_.front();
    if (slots_[top.slot].state != State::kDead) return top.when;
    pop_heap_entry(ready_);
    release_slot(top.slot);
  }
  if (near_count_ > 0) {
    // Wheel-resident cancels unlink eagerly, so the bucket list is all
    // live; the next occupied bucket holds one revolution only.
    const std::uint64_t tick = next_occupied_tick();
    const auto bucket = static_cast<std::uint32_t>(tick & kWheelMask);
    Time best = std::numeric_limits<Time>::infinity();
    for (std::uint32_t slot = bucket_head_[bucket]; slot != kNull;
         slot = slots_[slot].next) {
      best = std::min(best, slots_[slot].when);
    }
    return best;
  }
  while (!far_.empty()) {
    const HeapEntry top = far_.front();
    if (slots_[top.slot].state != State::kDead) return top.when;
    pop_heap_entry(far_);
    release_slot(top.slot);
  }
  return std::numeric_limits<Time>::infinity();
}

std::size_t Simulator::run_all(std::size_t max_events) {
  std::size_t fired = 0;
  while (fired < max_events &&
         fire_next(std::numeric_limits<Time>::infinity())) {
    ++fired;
  }
  return fired;
}

}  // namespace smrp::sim
