#include "sim/network.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/telemetry.hpp"

namespace smrp::sim {

namespace {

/// Default-constructed instance of each Message alternative, so attach
/// time can resolve every per-type counter name up front.
template <std::size_t... Is>
Message message_prototype(std::size_t index, std::index_sequence<Is...>) {
  Message out = HelloMsg{};
  ((index == Is
        ? (out = std::variant_alternative_t<Is, Message>{}, 0)
        : 0),
   ...);
  return out;
}

}  // namespace

void SimNetwork::set_telemetry(obs::Telemetry* telemetry) {
  telemetry_ = telemetry;
  if (telemetry == nullptr) {
    msg_counters_ = {};
    hop_latency_hist_ = nullptr;
    pool_envelopes_gauge_ = nullptr;
    pool_free_gauge_ = nullptr;
    return;
  }
  static constexpr const char* kKindNames[3] = {"tx", "rx", "drop"};
  for (std::size_t type = 0; type < kMessageTypes; ++type) {
    const Message prototype = message_prototype(
        type, std::make_index_sequence<kMessageTypes>{});
    const std::string suffix(message_name(prototype));
    for (std::size_t kind = 0; kind < 3; ++kind) {
      msg_counters_[kind][type] = &telemetry->metrics.counter(
          "smrp.sim." + std::string(kKindNames[kind]) + "." + suffix);
    }
  }
  hop_latency_hist_ =
      &telemetry->metrics.histogram("smrp.sim.hop_latency_ms");
  pool_envelopes_gauge_ =
      &telemetry->metrics.gauge("smrp.sim.pool_envelopes");
  pool_free_gauge_ =
      &telemetry->metrics.gauge("smrp.sim.pool_envelopes_free");
}

void SimNetwork::count_message(TraceKind kind, const Message& message) noexcept {
  if (telemetry_ == nullptr) return;
  msg_counters_[static_cast<std::size_t>(kind)][message.index()]->add(1);
}

void SimNetwork::trace(TraceKind kind, NodeId from, NodeId to,
                       const Message& message) {
  count_message(kind, message);
  if (tracer_ != nullptr) {
    tracer_->record(
        TraceEvent{simulator_->now(), kind, from, to, message_name(message)});
  }
}

SimNetwork::SimNetwork(Simulator& simulator, const net::Graph& graph,
                       NetworkConfig config)
    : simulator_(&simulator),
      graph_(&graph),
      config_(config),
      handlers_(static_cast<std::size_t>(graph.node_count())),
      link_up_(static_cast<std::size_t>(graph.link_count()), 1),
      node_up_(static_cast<std::size_t>(graph.node_count()), 1),
      loss_rng_(config.loss_seed) {
  if (config_.propagation_per_weight < 0.0 || config_.hop_overhead < 0.0) {
    throw std::invalid_argument("negative latency parameters");
  }
  if (config_.loss_probability < 0.0 || config_.loss_probability >= 1.0) {
    throw std::invalid_argument("loss probability must be in [0, 1)");
  }
}

void SimNetwork::set_handler(NodeId node, Handler handler) {
  if (!graph_->valid_node(node)) throw std::out_of_range("bad node");
  handlers_[static_cast<std::size_t>(node)] = std::move(handler);
}

Time SimNetwork::link_latency(LinkId link) const {
  return config_.hop_overhead +
         config_.propagation_per_weight * graph_->link(link).weight;
}

std::uint32_t SimNetwork::acquire_envelope() {
  if (free_envelope_head_ != kNoEnvelope) {
    const std::uint32_t index = free_envelope_head_;
    free_envelope_head_ = envelopes_[index].next_free;
    --free_envelopes_;
    envelopes_[index].refs = 1;
    return index;
  }
  envelopes_.emplace_back();
  envelopes_.back().refs = 1;
  return static_cast<std::uint32_t>(envelopes_.size() - 1);
}

void SimNetwork::release_envelope(std::uint32_t index) {
  Envelope& envelope = envelopes_[index];
  if (--envelope.refs != 0) return;
  envelope.next_free = free_envelope_head_;
  free_envelope_head_ = index;
  ++free_envelopes_;
}

void SimNetwork::deliver_later(std::uint32_t envelope, NodeId to,
                               LinkId link) {
  if (hop_latency_hist_ != nullptr) {
    hop_latency_hist_->record(link_latency(link));
    pool_envelopes_gauge_->set(static_cast<double>(envelopes_.size()));
    pool_free_gauge_->set(static_cast<double>(free_envelopes_));
  }
  simulator_->schedule(link_latency(link), [this, envelope, to, link] {
    deliver(envelope, to, link);
  });
}

void SimNetwork::deliver(std::uint32_t envelope, NodeId to, LinkId link) {
  Envelope& e = envelopes_[envelope];
  const NodeId from = e.from;
  // Persistent failures kill in-flight traffic too: the message is lost
  // unless the link and both endpoints are up on arrival.
  if (!link_up(link) || !node_up(from) || !node_up(to) ||
      !handlers_[static_cast<std::size_t>(to)]) {
    ++dropped_;
    trace(TraceKind::kDrop, from, to, e.message);
    release_envelope(envelope);
    return;
  }
  ++delivered_;
  trace(TraceKind::kDeliver, from, to, e.message);
  // The handler may send (and thus grow the pool) reentrantly; envelope
  // storage is a deque, so the payload reference it holds stays valid.
  handlers_[static_cast<std::size_t>(to)](from, e.message);
  release_envelope(envelope);
}

bool SimNetwork::send(NodeId from, NodeId to, Message message) {
  const auto link = graph_->link_between(from, to);
  if (!link || !node_up(from)) {
    ++dropped_;
    trace(TraceKind::kDrop, from, to, message);
    return false;
  }
  ++sent_;
  trace(TraceKind::kSend, from, to, message);
  if (config_.loss_probability > 0.0 &&
      loss_rng_.uniform() < config_.loss_probability) {
    ++dropped_;  // transient loss: vanishes on the wire
    trace(TraceKind::kDrop, from, to, message);
    return true;
  }
  if (router_ != nullptr && router_->is_remote(shard_index_, to)) {
    // Cross-shard hop: the destination's wheel belongs to another thread,
    // so hand the (already tx-accounted) message to the router with its
    // arrival time; the barrier drain schedules it over there.
    if (hop_latency_hist_ != nullptr) {
      hop_latency_hist_->record(link_latency(*link));
    }
    router_->enqueue(shard_index_, from, to, *link,
                     simulator_->now() + link_latency(*link),
                     std::move(message));
    return true;
  }
  const std::uint32_t envelope = acquire_envelope();
  Envelope& e = envelopes_[envelope];
  e.message = std::move(message);
  e.from = from;
  deliver_later(envelope, to, *link);
  return true;
}

void SimNetwork::deliver_at(NodeId from, NodeId to, LinkId link, Time when,
                            const Message& message) {
  const std::uint32_t envelope = acquire_envelope();
  Envelope& e = envelopes_[envelope];
  e.message = message;
  e.from = from;
  if (pool_envelopes_gauge_ != nullptr) {
    pool_envelopes_gauge_->set(static_cast<double>(envelopes_.size()));
    pool_free_gauge_->set(static_cast<double>(free_envelopes_));
  }
  // Inside a run the conservative window bound guarantees `when` is ahead
  // of this shard's clock. Sends issued *between* runs, though, carry the
  // source shard's (possibly lagging) clock, so clamp to local now —
  // "as soon as possible, never earlier than computed".
  simulator_->schedule_at(std::max(when, simulator_->now()),
                          [this, envelope, to, link] {
    deliver(envelope, to, link);
  });
}

int SimNetwork::broadcast(NodeId from, const Message& message) {
  if (!node_up(from)) {
    // A down node emits nothing: short-circuit the whole fan-out and
    // count one batch drop instead of one per neighbor.
    ++dropped_;
    trace(TraceKind::kDrop, from, net::kNoNode, message);
    return 0;
  }
  std::uint32_t envelope = kNoEnvelope;
  int admitted = 0;
  for (const net::Adjacency& adj : graph_->neighbors(from)) {
    ++sent_;
    trace(TraceKind::kSend, from, adj.neighbor, message);
    if (config_.loss_probability > 0.0 &&
        loss_rng_.uniform() < config_.loss_probability) {
      ++dropped_;  // transient loss: vanishes on the wire
      trace(TraceKind::kDrop, from, adj.neighbor, message);
      continue;
    }
    if (router_ != nullptr && router_->is_remote(shard_index_, adj.neighbor)) {
      // Envelope sharing stops at the shard boundary: remote hops copy
      // into the router queue, local hops keep sharing one envelope.
      if (hop_latency_hist_ != nullptr) {
        hop_latency_hist_->record(link_latency(adj.link));
      }
      router_->enqueue(shard_index_, from, adj.neighbor, adj.link,
                       simulator_->now() + link_latency(adj.link), message);
      ++admitted;
      continue;
    }
    if (envelope == kNoEnvelope) {
      envelope = acquire_envelope();
      Envelope& e = envelopes_[envelope];
      e.message = message;  // the one copy the whole fan-out shares
      e.from = from;
    } else {
      ++envelopes_[envelope].refs;
    }
    deliver_later(envelope, adj.neighbor, adj.link);
    ++admitted;
  }
  return admitted;
}

void SimNetwork::set_loss_probability(double p) {
  if (p < 0.0 || p >= 1.0) {
    throw std::invalid_argument("loss probability must be in [0, 1)");
  }
  config_.loss_probability = p;
}

void SimNetwork::set_link_up(LinkId link, bool up) {
  if (link < 0 || link >= graph_->link_count()) {
    throw std::out_of_range("bad link");
  }
  link_up_[static_cast<std::size_t>(link)] = up ? 1 : 0;
}

bool SimNetwork::link_up(LinkId link) const {
  return link >= 0 && link < graph_->link_count() &&
         link_up_[static_cast<std::size_t>(link)] != 0;
}

void SimNetwork::set_node_up(NodeId node, bool up) {
  if (!graph_->valid_node(node)) throw std::out_of_range("bad node");
  node_up_[static_cast<std::size_t>(node)] = up ? 1 : 0;
}

bool SimNetwork::node_up(NodeId node) const {
  return graph_->valid_node(node) &&
         node_up_[static_cast<std::size_t>(node)] != 0;
}

}  // namespace smrp::sim
