#include "sim/fault_injection.hpp"

#include <algorithm>
#include <queue>
#include <sstream>
#include <stdexcept>

namespace smrp::sim {

namespace {

void require_nonnegative(Time t, const char* what) {
  if (t < 0.0) throw std::invalid_argument(std::string(what) + " must be >= 0");
}

}  // namespace

FaultPlan& FaultPlan::add(FaultAction action) {
  require_nonnegative(action.at, "fault time");
  actions_.push_back(action);
  return *this;
}

FaultPlan& FaultPlan::cut_link(Time at, net::LinkId link) {
  ++faults_;
  return add({at, FaultAction::Kind::kLinkDown, link, net::kNoNode, 0.0});
}

FaultPlan& FaultPlan::flap_link(Time at, net::LinkId link, Time hold) {
  require_nonnegative(hold, "flap hold");
  ++faults_;
  add({at, FaultAction::Kind::kLinkDown, link, net::kNoNode, 0.0});
  return add({at + hold, FaultAction::Kind::kLinkUp, link, net::kNoNode, 0.0});
}

FaultPlan& FaultPlan::crash_node(Time at, net::NodeId node) {
  ++faults_;
  return add({at, FaultAction::Kind::kNodeDown, net::kNoLink, node, 0.0});
}

FaultPlan& FaultPlan::crash_restart(Time at, net::NodeId node, Time downtime) {
  require_nonnegative(downtime, "downtime");
  ++faults_;
  add({at, FaultAction::Kind::kNodeDown, net::kNoLink, node, 0.0});
  return add({at + downtime, FaultAction::Kind::kNodeUp, net::kNoLink, node,
              0.0});
}

FaultPlan& FaultPlan::loss_burst(Time at, Time duration, double probability,
                                 double base_probability) {
  require_nonnegative(duration, "burst duration");
  if (probability < 0.0 || probability >= 1.0 || base_probability < 0.0 ||
      base_probability >= 1.0) {
    throw std::invalid_argument("loss probability must be in [0, 1)");
  }
  ++faults_;
  add({at, FaultAction::Kind::kSetLoss, net::kNoLink, net::kNoNode,
       probability});
  return add({at + duration, FaultAction::Kind::kSetLoss, net::kNoLink,
              net::kNoNode, base_probability});
}

FaultPlan& FaultPlan::srlg_cut(Time at, const std::vector<net::LinkId>& group,
                               Time heal_after) {
  if (group.empty()) throw std::invalid_argument("empty link group");
  ++faults_;
  for (const net::LinkId l : group) {
    add({at, FaultAction::Kind::kLinkDown, l, net::kNoNode, 0.0});
  }
  if (heal_after > 0.0) {
    for (const net::LinkId l : group) {
      add({at + heal_after, FaultAction::Kind::kLinkUp, l, net::kNoNode, 0.0});
    }
  }
  return *this;
}

FaultPlan& FaultPlan::partition(Time at, const std::vector<net::LinkId>& cut,
                                Time heal_after) {
  if (cut.empty()) throw std::invalid_argument("empty partition cut");
  return srlg_cut(at, cut, heal_after);
}

Time FaultPlan::quiescent_time() const noexcept {
  Time last = 0.0;
  for (const FaultAction& a : actions_) last = std::max(last, a.at);
  return last;
}

namespace {

/// Connectivity of the graph with a set of links removed (cumulative cut
/// feasibility for the randomized generator).
bool connected_without_links(const net::Graph& g,
                             const std::vector<char>& link_dead) {
  if (g.node_count() == 0) return true;
  std::vector<char> seen(static_cast<std::size_t>(g.node_count()), 0);
  std::queue<net::NodeId> frontier;
  frontier.push(0);
  seen[0] = 1;
  int reached = 1;
  while (!frontier.empty()) {
    const net::NodeId u = frontier.front();
    frontier.pop();
    for (const net::Adjacency& adj : g.neighbors(u)) {
      if (link_dead[static_cast<std::size_t>(adj.link)] != 0) continue;
      if (seen[static_cast<std::size_t>(adj.neighbor)] != 0) continue;
      seen[static_cast<std::size_t>(adj.neighbor)] = 1;
      ++reached;
      frontier.push(adj.neighbor);
    }
  }
  return reached == g.node_count();
}

}  // namespace

FaultPlan FaultPlan::randomized(const net::Graph& g,
                                const RandomParams& params, net::Rng& rng) {
  if (params.min_hold > params.max_hold) {
    throw std::invalid_argument("min_hold exceeds max_hold");
  }
  if (g.link_count() == 0) throw std::invalid_argument("graph has no links");
  FaultPlan plan;
  const auto fault_time = [&] {
    return params.start + rng.uniform() * params.window;
  };
  const auto hold_time = [&] {
    return rng.uniform(params.min_hold, params.max_hold);
  };

  // Permanent cuts first, so later flaps can hit any link while the cut
  // set alone keeps the graph connected.
  std::vector<char> cut(static_cast<std::size_t>(g.link_count()), 0);
  int placed_cuts = 0;
  int attempts = 0;
  while (placed_cuts < params.link_cuts && attempts < 64 * params.link_cuts) {
    ++attempts;
    const auto l = static_cast<net::LinkId>(
        rng.below(static_cast<std::uint64_t>(g.link_count())));
    if (cut[static_cast<std::size_t>(l)] != 0) continue;
    cut[static_cast<std::size_t>(l)] = 1;
    if (!connected_without_links(g, cut)) {
      cut[static_cast<std::size_t>(l)] = 0;  // would strand someone
      continue;
    }
    plan.cut_link(fault_time(), l);
    ++placed_cuts;
  }

  for (int i = 0; i < params.link_flaps; ++i) {
    const auto l = static_cast<net::LinkId>(
        rng.below(static_cast<std::uint64_t>(g.link_count())));
    plan.flap_link(fault_time(), l, hold_time());
  }

  std::vector<net::NodeId> crashable;
  for (net::NodeId n = 0; n < g.node_count(); ++n) {
    if (std::find(params.protected_nodes.begin(), params.protected_nodes.end(),
                  n) == params.protected_nodes.end()) {
      crashable.push_back(n);
    }
  }
  if (params.node_restarts > 0 && crashable.empty()) {
    throw std::invalid_argument("every node is protected from crashes");
  }
  for (int i = 0; i < params.node_restarts; ++i) {
    const net::NodeId victim = crashable[rng.below(crashable.size())];
    plan.crash_restart(fault_time(), victim, hold_time());
  }

  for (int i = 0; i < params.loss_bursts; ++i) {
    plan.loss_burst(fault_time(), params.burst_duration, params.burst_loss,
                    params.base_loss);
  }
  return plan;
}

std::vector<net::LinkId> boundary_links(const net::Graph& g,
                                        const std::vector<net::NodeId>& side) {
  std::vector<char> inside(static_cast<std::size_t>(g.node_count()), 0);
  for (const net::NodeId n : side) {
    if (!g.valid_node(n)) throw std::out_of_range("bad partition node");
    inside[static_cast<std::size_t>(n)] = 1;
  }
  std::vector<net::LinkId> cut;
  for (net::LinkId l = 0; l < g.link_count(); ++l) {
    const net::Link& link = g.link(l);
    if (inside[static_cast<std::size_t>(link.a)] !=
        inside[static_cast<std::size_t>(link.b)]) {
      cut.push_back(l);
    }
  }
  return cut;
}

std::string FaultPlan::describe() const {
  std::ostringstream out;
  std::vector<FaultAction> ordered = actions_;
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const FaultAction& a, const FaultAction& b) {
                     return a.at < b.at;
                   });
  for (const FaultAction& a : ordered) {
    out << "t=" << a.at << "ms ";
    switch (a.kind) {
      case FaultAction::Kind::kLinkDown:
        out << "link " << a.link << " down";
        break;
      case FaultAction::Kind::kLinkUp:
        out << "link " << a.link << " up";
        break;
      case FaultAction::Kind::kNodeDown:
        out << "node " << a.node << " down";
        break;
      case FaultAction::Kind::kNodeUp:
        out << "node " << a.node << " up";
        break;
      case FaultAction::Kind::kSetLoss:
        out << "loss probability -> " << a.loss_probability;
        break;
    }
    out << "\n";
  }
  return out.str();
}

ChaosController::ChaosController(Simulator& simulator, SimNetwork& network,
                                 FaultPlan plan)
    : simulator_(&simulator), network_(&network), plan_(std::move(plan)) {
  // Validate ids eagerly so a bad plan fails at construction, not mid-run.
  const net::Graph& g = network.graph();
  for (const FaultAction& a : plan_.actions()) {
    switch (a.kind) {
      case FaultAction::Kind::kLinkDown:
      case FaultAction::Kind::kLinkUp:
        if (a.link < 0 || a.link >= g.link_count()) {
          throw std::out_of_range("fault plan references a bad link");
        }
        break;
      case FaultAction::Kind::kNodeDown:
      case FaultAction::Kind::kNodeUp:
        if (!g.valid_node(a.node)) {
          throw std::out_of_range("fault plan references a bad node");
        }
        break;
      case FaultAction::Kind::kSetLoss:
        break;
    }
  }
}

void ChaosController::arm() {
  if (armed_) throw std::logic_error("chaos plan already armed");
  armed_ = true;
  for (const FaultAction& action : plan_.actions()) {
    if (action.at < simulator_->now()) {
      throw std::logic_error("fault plan action is already in the past");
    }
    simulator_->schedule_at(action.at, [this, action] { apply(action); });
  }
}

void ChaosController::apply(const FaultAction& action) {
  std::ostringstream line;
  line << "t=" << simulator_->now() << "ms ";
  switch (action.kind) {
    case FaultAction::Kind::kLinkDown:
      network_->set_link_up(action.link, false);
      line << "link " << action.link << " down";
      break;
    case FaultAction::Kind::kLinkUp:
      network_->set_link_up(action.link, true);
      line << "link " << action.link << " up";
      break;
    case FaultAction::Kind::kNodeDown:
      network_->set_node_up(action.node, false);
      line << "node " << action.node << " down";
      break;
    case FaultAction::Kind::kNodeUp:
      network_->set_node_up(action.node, true);
      line << "node " << action.node << " up";
      break;
    case FaultAction::Kind::kSetLoss:
      network_->set_loss_probability(action.loss_probability);
      line << "loss probability -> " << action.loss_probability;
      break;
  }
  ++applied_;
  log_.push_back(line.str());
}

}  // namespace smrp::sim
