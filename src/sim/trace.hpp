// Observability for the simulated network: a tracer receives one event
// per transmission outcome, with a bounded in-memory log and stream
// rendering. Used by the examples' verbose modes and by tests asserting
// on protocol message flow.
#pragma once

#include <deque>
#include <ostream>
#include <string_view>

#include "sim/messages.hpp"
#include "sim/simulator.hpp"

namespace smrp::sim {

/// Human-readable tag of a wire message.
[[nodiscard]] std::string_view message_name(const Message& message);

enum class TraceKind : unsigned char {
  kSend,     ///< admitted into the network
  kDeliver,  ///< handed to the receiver
  kDrop,     ///< lost (down component, transient loss, or no handler)
};

struct TraceEvent {
  Time at = 0.0;
  TraceKind kind = TraceKind::kSend;
  NodeId from = net::kNoNode;
  NodeId to = net::kNoNode;
  std::string_view message;  ///< message_name() of the payload
};

/// Bounded event log. Attach with SimNetwork::set_tracer().
class Tracer {
 public:
  explicit Tracer(std::size_t capacity = 4096) : capacity_(capacity) {}

  void record(const TraceEvent& event) {
    ++counts_[static_cast<std::size_t>(event.kind)];
    events_.push_back(event);
    if (events_.size() > capacity_) events_.pop_front();
  }

  [[nodiscard]] const std::deque<TraceEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::uint64_t count(TraceKind kind) const noexcept {
    return counts_[static_cast<std::size_t>(kind)];
  }
  /// Reset the tracer to its initial state: drops the retained window AND
  /// the lifetime counters, so count() starts from zero again.
  void clear() noexcept {
    events_.clear();
    counts_[0] = counts_[1] = counts_[2] = 0;
  }

  /// Render the retained window, one event per line.
  void print(std::ostream& out) const;

  /// Number of retained events whose message tag equals `name`.
  [[nodiscard]] std::size_t count_retained(std::string_view name,
                                           TraceKind kind) const;

 private:
  std::size_t capacity_;
  std::deque<TraceEvent> events_;
  std::uint64_t counts_[3] = {0, 0, 0};
};

}  // namespace smrp::sim
