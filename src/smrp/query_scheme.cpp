#include "smrp/query_scheme.hpp"

#include <algorithm>
#include <memory>

#include "net/paths.hpp"

namespace smrp::proto {

std::vector<JoinCandidate> enumerate_query_candidates(
    const Graph& g, const MulticastTree& tree, NodeId joiner,
    double spf_delay, double d_thresh, net::RoutingOracle* oracle) {
  // Callers without a shared oracle get a throwaway one: the relay trees
  // below are still cached across this call's neighbor loop.
  std::unique_ptr<net::RoutingOracle> owned_oracle;
  if (oracle == nullptr) {
    owned_oracle = std::make_unique<net::RoutingOracle>(g);
    oracle = owned_oracle.get();
  }

  std::vector<JoinCandidate> out;
  if (tree.on_tree(joiner)) {
    JoinCandidate self;
    self.merge_node = joiner;
    self.graft = {joiner};
    self.total_delay = tree.delay_to_source(joiner);
    self.shr = tree.shr(joiner);
    self.within_bound =
        self.total_delay <= (1.0 + d_thresh) * spf_delay + 1e-9;
    out.push_back(std::move(self));
    return out;
  }

  for (const net::Adjacency& adj : g.neighbors(joiner)) {
    const NodeId relay = adj.neighbor;
    std::vector<NodeId> graft{joiner};
    double graft_delay = g.link(adj.link).weight;

    if (!tree.on_tree(relay)) {
      // The relay forwards the query along its own shortest path to the
      // source until the first on-tree node answers. Relays are shared
      // between neighboring joiners and across joins, so the cached tree
      // pays for itself quickly.
      const net::RoutingOracle::TreePtr cached = oracle->spf(relay);
      const net::ShortestPathTree& relay_spf = *cached;
      if (!relay_spf.reachable(tree.source())) continue;
      const std::vector<NodeId> to_source =
          relay_spf.path_from_source(tree.source());  // relay → … → source
      bool usable = true;
      for (const NodeId hop : to_source) {
        if (hop == joiner) {  // query looped back through the member
          usable = false;
          break;
        }
        graft.push_back(hop);
        if (tree.on_tree(hop)) break;  // first on-tree node answers
      }
      if (!usable || !tree.on_tree(graft.back())) continue;
      graft_delay = net::path_weight(g, graft);
    } else {
      graft.push_back(relay);
    }

    // Intermediate hops must be off-tree (they are: the walk stops at the
    // first on-tree node), and the graft must be loop-free.
    std::vector<NodeId> sorted = graft;
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
      continue;
    }

    JoinCandidate c;
    c.merge_node = graft.back();
    c.graft_delay = graft_delay;
    c.total_delay = graft_delay + tree.delay_to_source(c.merge_node);
    c.shr = tree.shr(c.merge_node);
    c.within_bound = c.total_delay <= (1.0 + d_thresh) * spf_delay + 1e-9;
    c.graft = std::move(graft);
    out.push_back(std::move(c));
  }
  return out;
}

std::optional<Selection> select_join_path_via_query(const Graph& g,
                                                    const MulticastTree& tree,
                                                    NodeId joiner,
                                                    double spf_delay,
                                                    const SmrpConfig& config,
                                                    net::RoutingOracle* oracle) {
  return select_path(
      enumerate_query_candidates(g, tree, joiner, spf_delay, config.d_thresh,
                                 oracle),
      spf_delay, config);
}

}  // namespace smrp::proto
