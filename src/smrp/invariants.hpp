// Always-on correctness auditing for the distributed protocol: an
// InvariantChecker inspects a DistributedSession (through its public
// observability surface only — no privileged state) and reports every
// violated invariant as a human-readable string. Two strictness levels:
//
//  * audit() — safe at ANY simulated time, including mid-churn and
//    mid-chaos: structural sanity (parent/child adjacency, a rooted
//    source, bounded dedup state, non-negative SHR). Transient parent
//    cycles are tolerated here — duplicate suppression keeps data from
//    circulating them, so they starve and self-heal — but they are a hard
//    violation in the quiescent audit.
//  * audit_quiescent(t) — the paper's steady-state contract, checked once
//    every injected fault has healed at time `t` and the protocol has had
//    service_restoration_bound() ms to settle: no parent cycles at all, no
//    orphaned on-tree nodes, parent/child agreement, SHR consistent with
//    the analytic tree (Eq. 2), and *eventual service* — every member the
//    surviving topology still connects to the source receives fresh data.
#pragma once

#include <string>
#include <vector>

#include "routing/link_state.hpp"
#include "smrp/distributed.hpp"

namespace smrp::proto {

struct InvariantReport {
  std::vector<std::string> violations;
  [[nodiscard]] bool ok() const noexcept { return violations.empty(); }
  /// Newline-joined violations (empty string when ok).
  [[nodiscard]] std::string to_string() const;
};

class InvariantChecker {
 public:
  InvariantChecker(const DistributedSession& session,
                   const sim::SimNetwork& network);

  /// Invariants that hold at every instant, even mid-repair.
  [[nodiscard]] InvariantReport audit() const;

  /// Strict steady-state audit. `quiescent_since` is the sim time the last
  /// injected fault healed; call it only after the protocol has had
  /// service_restoration_bound() ms past that instant to settle.
  [[nodiscard]] InvariantReport audit_quiescent(sim::Time quiescent_since) const;

 private:
  /// Nodes reachable from the source over up links and up nodes.
  [[nodiscard]] std::vector<char> up_component() const;
  void check_structure(InvariantReport& report) const;
  void check_cycles(InvariantReport& report, bool allow_stale_cycles) const;

  const DistributedSession* session_;
  const sim::SimNetwork* network_;
};

/// Conservative upper bound (ms) on the time from "last fault healed" to
/// "every member still connected to the source receives data again",
/// assuming the hardened repair path: failure detection, the full
/// expanding-ring schedule with backoff and jitter, the routed-join
/// fallback, IGP reconvergence for stranded members, and soft-state /
/// SHR re-propagation across the tree depth. Computable from the configs
/// and the topology alone — tests use it to decide when audit_quiescent
/// is fair to run.
[[nodiscard]] sim::Time service_restoration_bound(
    const SessionConfig& session, const routing::RoutingConfig& routing,
    const net::Graph& graph);

}  // namespace smrp::proto
