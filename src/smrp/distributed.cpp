#include "smrp/distributed.hpp"

#include <algorithm>
#include <stdexcept>

#include "smrp/path_selection.hpp"

namespace smrp::proto {

DistributedSession::DistributedSession(sim::Simulator& simulator,
                                       sim::SimNetwork& network,
                                       routing::LinkStateRouting& routing,
                                       net::NodeId source,
                                       SessionConfig config)
    : simulator_(&simulator),
      network_(&network),
      routing_(&routing),
      source_(source),
      config_(config),
      oracle_(std::make_unique<net::RoutingOracle>(network.graph())),
      jitter_rng_(config.jitter_seed),
      conv_detector_(config.convergence) {
  if (!network.graph().valid_node(source)) {
    throw std::out_of_range("bad source");
  }
  agents_.resize(static_cast<std::size_t>(network.graph().node_count()));
}

DistributedSession::AgentState& DistributedSession::agent(net::NodeId n) {
  return agents_[static_cast<std::size_t>(n)];
}

const DistributedSession::AgentState& DistributedSession::agent(
    net::NodeId n) const {
  return agents_[static_cast<std::size_t>(n)];
}

bool DistributedSession::is_member(net::NodeId n) const {
  return agent(n).is_member;
}

bool DistributedSession::on_tree(net::NodeId n) const {
  return agent(n).on_tree;
}

net::NodeId DistributedSession::parent_of(net::NodeId n) const {
  return agent(n).parent;
}

std::vector<net::NodeId> DistributedSession::children_of(net::NodeId n) const {
  std::vector<net::NodeId> out;
  out.reserve(agent(n).children.size());
  for (const auto& [child, info] : agent(n).children) out.push_back(child);
  return out;
}

bool DistributedSession::is_repairing(net::NodeId n) const {
  return agent(n).repairing;
}

bool DistributedSession::is_stranded(net::NodeId n) const {
  return agent(n).stranded;
}

std::size_t DistributedSession::seen_nonce_count(net::NodeId n) const {
  return agent(n).seen_nonces.size();
}

Time DistributedSession::last_data_at(net::NodeId n) const {
  return agent(n).last_data;
}

int DistributedSession::local_member_count(const AgentState& s) const {
  int n = s.is_member ? 1 : 0;
  for (const auto& [child, info] : s.children) n += info.subtree_members;
  return n;
}

int DistributedSession::believed_shr(net::NodeId n) const {
  const AgentState& s = agent(n);
  if (n == source_) return 0;
  return s.shr_upstream + local_member_count(s);
}

bool DistributedSession::upstream_alive(net::NodeId n) const {
  if (n == source_) return true;
  const AgentState& s = agent(n);
  if (!s.on_tree) return false;
  return s.last_data >= 0.0 &&
         simulator_->now() - s.last_data <= config_.upstream_timeout;
}

net::ExclusionSet DistributedSession::down_components() const {
  net::ExclusionSet down(network_->graph());
  for (net::LinkId l = 0; l < network_->graph().link_count(); ++l) {
    if (!network_->link_up(l)) down.ban_link(l);
  }
  for (net::NodeId v = 0; v < network_->graph().node_count(); ++v) {
    if (!network_->node_up(v)) down.ban_node(v);
  }
  return down;
}

void DistributedSession::attach_telemetry(obs::Telemetry* telemetry) {
  telemetry_ = telemetry;
  oracle_->attach_telemetry(telemetry);
  node_obs_.assign(agents_.size(), NodeObs{});
  conv_pending_.clear();
  if (telemetry == nullptr) {
    c_watchdog_ = c_rings_ = c_fallbacks_ = c_stranded_ = c_routed_joins_ =
        c_repairs_started_ = c_repairs_completed_ = c_reshapes_ =
            c_conv_detections_ = c_conv_adaptive_fallbacks_ = nullptr;
    h_outage_ms_ = h_rings_ = h_join_ms_ = h_conv_skew_ = nullptr;
    g_conv_converged_ = g_conv_quiet_ms_ = nullptr;
    return;
  }
  obs::MetricsRegistry& m = telemetry->metrics;
  c_watchdog_ = &m.counter("smrp.proto.watchdog_fired");
  c_rings_ = &m.counter("smrp.proto.repair.rings");
  c_fallbacks_ = &m.counter("smrp.proto.repair.fallbacks");
  c_stranded_ = &m.counter("smrp.proto.repair.stranded");
  c_routed_joins_ = &m.counter("smrp.proto.routed_joins");
  c_repairs_started_ = &m.counter("smrp.proto.repairs_started");
  c_repairs_completed_ = &m.counter("smrp.proto.repairs_completed");
  c_reshapes_ = &m.counter("smrp.proto.reshapes");
  h_outage_ms_ = &m.histogram("smrp.proto.outage_ms");
  h_rings_ = &m.histogram(
      "smrp.proto.repair.rings_per_episode",
      {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0});
  h_join_ms_ = &m.histogram("smrp.proto.join_latency_ms");
  c_conv_detections_ = &m.counter("smrp.convergence.detections");
  c_conv_adaptive_fallbacks_ =
      &m.counter("smrp.convergence.adaptive_fallbacks");
  g_conv_converged_ = &m.gauge("smrp.convergence.converged");
  g_conv_quiet_ms_ = &m.gauge("smrp.convergence.quiet_ms");
  h_conv_skew_ = &m.histogram("smrp.convergence.skew_ms");
}

void DistributedSession::tl_open_outage(net::NodeId n) {
  if (telemetry_ == nullptr) return;
  NodeObs& t = node_obs_[static_cast<std::size_t>(n)];
  if (t.outage != obs::kNoSpan) return;
  const Time now = simulator_->now();
  t.outage = telemetry_->spans.open("outage", n, now);
  // The interruption clock starts at the last payload actually delivered,
  // not at detection: total = end - service_lost_at then equals the
  // payload-to-payload gap an external observer of the stream measures.
  telemetry_->spans.attr(t.outage, "service_lost_at",
                         t.last_payload >= 0.0 ? t.last_payload : now);
  telemetry_->spans.attr(t.outage, "silence_ms",
                         t.last_payload >= 0.0 ? now - t.last_payload : 0.0);
}

void DistributedSession::tl_on_data(net::NodeId n) {
  if (telemetry_ == nullptr) return;
  NodeObs& t = node_obs_[static_cast<std::size_t>(n)];
  const Time now = simulator_->now();
  obs::SpanCollector& spans = telemetry_->spans;
  if (t.ring != obs::kNoSpan) {
    // Payload raced the ring search: the upstream healed under the repair.
    spans.close(t.ring, now, obs::SpanStatus::kOk);
    t.ring = obs::kNoSpan;
  }
  if (t.repair != obs::kNoSpan) {
    spans.attr(t.repair, "rings", t.rings_episode);
    spans.close(t.repair, now, obs::SpanStatus::kOk);
    h_rings_->record(t.rings_episode);
    t.repair = obs::kNoSpan;
  }
  if (t.graft != obs::kNoSpan) {
    spans.close(t.graft, now, obs::SpanStatus::kOk);
    t.graft = obs::kNoSpan;
  }
  if (t.fallback != obs::kNoSpan) {
    spans.close(t.fallback, now, obs::SpanStatus::kOk);
    t.fallback = obs::kNoSpan;
  }
  if (t.rejoin != obs::kNoSpan) {
    spans.close(t.rejoin, now, obs::SpanStatus::kOk);
    t.rejoin = obs::kNoSpan;
  }
  if (t.outage != obs::kNoSpan) {
    const obs::Span* span = spans.find(t.outage);
    const double* lost_at =
        span != nullptr ? span->attr("service_lost_at") : nullptr;
    // Copy out of the attrs vector before attr() below may reallocate it.
    const double lost = lost_at != nullptr ? *lost_at : now;
    const double total = now - lost;
    spans.attr(t.outage, "total_ms", total);
    spans.close(t.outage, now, obs::SpanStatus::kOk);
    h_outage_ms_->record(total);
    if (config_.convergence.enabled) {
      // The oracle says the episode is over; the in-protocol end is the
      // source's next convergence detection, which confirms this entry
      // with a `convergence` span (skew = how far detection lagged).
      conv_pending_.push_back(PendingOutage{n, t.outage, lost, now, total});
    }
    t.outage = obs::kNoSpan;
  }
  if (t.join != obs::kNoSpan) {
    const obs::Span* span = spans.find(t.join);
    if (span != nullptr) h_join_ms_->record(now - span->start);
    spans.close(t.join, now, obs::SpanStatus::kOk);
    t.join = obs::kNoSpan;
  }
  if (t.reshape != obs::kNoSpan) {
    spans.close(t.reshape, now, obs::SpanStatus::kOk);
    t.reshape = obs::kNoSpan;
  }
  t.rings_episode = 0;
  t.last_payload = now;
}

void DistributedSession::tl_on_restart(net::NodeId n, bool was_member) {
  if (telemetry_ == nullptr) return;
  NodeObs& t = node_obs_[static_cast<std::size_t>(n)];
  const Time now = simulator_->now();
  obs::SpanCollector& spans = telemetry_->spans;
  // In-flight repair machinery died with the node's RAM.
  if (t.ring != obs::kNoSpan) {
    spans.close(t.ring, now, obs::SpanStatus::kFailed);
    t.ring = obs::kNoSpan;
  }
  if (t.repair != obs::kNoSpan) {
    spans.attr(t.repair, "rings", t.rings_episode);
    spans.close(t.repair, now, obs::SpanStatus::kFailed);
    h_rings_->record(t.rings_episode);
    t.repair = obs::kNoSpan;
  }
  if (t.graft != obs::kNoSpan) {
    spans.close(t.graft, now, obs::SpanStatus::kFailed);
    t.graft = obs::kNoSpan;
  }
  if (t.fallback != obs::kNoSpan) {
    spans.close(t.fallback, now, obs::SpanStatus::kFailed);
    t.fallback = obs::kNoSpan;
  }
  if (t.rejoin != obs::kNoSpan) {
    spans.close(t.rejoin, now, obs::SpanStatus::kFailed);
    t.rejoin = obs::kNoSpan;
  }
  if (t.reshape != obs::kNoSpan) {
    spans.close(t.reshape, now, obs::SpanStatus::kSuperseded);
    t.reshape = obs::kNoSpan;
  }
  t.rings_episode = 0;
  if (was_member) {
    // A member's outage persists across the crash (it is the SAME loss of
    // service as far as the application is concerned) — keep it open, or
    // open it now if the crash itself is what cut the service.
    if (t.last_payload >= 0.0) tl_open_outage(n);
  } else if (t.outage != obs::kNoSpan) {
    // A pure relay restarts with no state and no duty to recover.
    spans.close(t.outage, now, obs::SpanStatus::kSuperseded);
    t.outage = obs::kNoSpan;
  }
}

void DistributedSession::tl_on_prune(net::NodeId n) {
  if (telemetry_ == nullptr) return;
  NodeObs& t = node_obs_[static_cast<std::size_t>(n)];
  const Time now = simulator_->now();
  obs::SpanCollector& spans = telemetry_->spans;
  // Off the tree by choice: open episodes are moot, not failed.
  if (t.repair != obs::kNoSpan) {
    spans.attr(t.repair, "rings", t.rings_episode);
    h_rings_->record(t.rings_episode);
  }
  for (obs::SpanId* id : {&t.ring, &t.repair, &t.graft, &t.fallback, &t.rejoin,
                          &t.join, &t.reshape, &t.outage}) {
    if (*id == obs::kNoSpan) continue;
    spans.close(*id, now, obs::SpanStatus::kSuperseded);
    *id = obs::kNoSpan;
  }
  t.rings_episode = 0;
}

void DistributedSession::tl_open_rejoin(net::NodeId n) {
  if (telemetry_ == nullptr) return;
  NodeObs& t = node_obs_[static_cast<std::size_t>(n)];
  // Only a leg of an ongoing outage: a fresh member's first join has its
  // own join span, and there is no outage to hang a rejoin under.
  if (t.outage == obs::kNoSpan) return;
  if (t.rejoin != obs::kNoSpan) return;  // one routed attempt at a time
  t.rejoin = telemetry_->spans.open("rejoin", n, simulator_->now(), t.outage);
}

void DistributedSession::tl_event_forward(net::NodeId n, std::uint64_t seq,
                                          bool on_tree, bool from_parent) {
  if (telemetry_ == nullptr) return;
  NodeObs& t = node_obs_[static_cast<std::size_t>(n)];
  // Observational tree-membership epoch: bumped when the forwarding
  // node's parent changed since its last forward.
  const net::NodeId parent = agent(n).parent;
  if (parent != t.last_parent) {
    t.last_parent = parent;
    ++t.epoch;
  }
  telemetry_->events.record("forward", n, simulator_->now(),
                            {{"seq", static_cast<double>(seq)},
                             {"on_tree", on_tree ? 1.0 : 0.0},
                             {"from_parent", from_parent ? 1.0 : 0.0},
                             {"epoch", static_cast<double>(t.epoch)}});
}

void DistributedSession::tl_event_deliver(net::NodeId n, std::uint64_t seq) {
  if (telemetry_ == nullptr) return;
  telemetry_->events.record("deliver", n, simulator_->now(),
                            {{"seq", static_cast<double>(seq)}});
}

void DistributedSession::start() {
  if (started_) throw std::logic_error("session already started");
  started_ = true;
  agent(source_).on_tree = true;
  pump_data();
  // Stagger per-node maintenance so timers do not fire in lockstep.
  for (net::NodeId n = 0; n < network_->graph().node_count(); ++n) {
    const Time phase =
        config_.refresh_interval * (0.1 + 0.8 * (n % 17) / 17.0);
    simulator_->schedule(phase, [this, n] { maintenance(n); });
  }
}

void DistributedSession::pump_data() {
  AgentState& s = agent(source_);
  sim::DataMsg data;
  data.seq = ++data_seq_;
  s.last_data = simulator_->now();
  s.last_seq = data.seq;
  bool forwarded = false;
  for (const auto& [child, info] : s.children) {
    network_->send(source_, child, data);
    forwarded = true;
  }
  if (forwarded) tl_event_forward(source_, data.seq, true, true);
  simulator_->schedule(config_.data_interval, [this] { pump_data(); });
}

void DistributedSession::join(net::NodeId member) {
  if (member == source_) {
    throw std::invalid_argument("source cannot join its own session");
  }
  AgentState& s = agent(member);
  if (s.is_member) return;
  s.is_member = true;
  if (telemetry_ != nullptr) {
    NodeObs& t = node_obs_[static_cast<std::size_t>(member)];
    if (t.join == obs::kNoSpan) {
      // Closed by the first payload consumed as a member.
      t.join = telemetry_->spans.open("join", member, simulator_->now());
    }
  }
  if (s.on_tree) return;  // relay upgrading in place
  initiate_join(member);
}

void DistributedSession::initiate_join(net::NodeId member) {
  AgentState& s = agent(member);
  s.stranded = false;
  // A (re)join issued while the member's service is down is the rejoin
  // leg of that outage (crash-restart, post-partition); no-op otherwise.
  tl_open_rejoin(member);

  if (config_.mode == SessionConfig::Mode::kPimSpf) {
    s.on_tree = true;
    send_routed_join(member);
    return;
  }

  // SMRP join: the member (assumed to know the topology, §3.2.2) runs the
  // selection criterion against the *distributed* tree state — merge
  // nodes' SHR values as the protocol currently believes them — over the
  // live topology (failed components excluded).
  const auto snapshot = snapshot_tree();
  const net::ExclusionSet down = down_components();
  if (down.node_banned(source_) || down.node_banned(member)) {
    s.on_tree = true;
    send_routed_join(member);  // nothing to compute against a dead source
    return;
  }
  const net::RoutingOracle::TreePtr spf = oracle_->spf(source_, down);
  const double spf_delay = spf->dist[static_cast<std::size_t>(member)];
  if (!snapshot || spf_delay == net::kInfinity) {
    // Degenerate fallback: routed join (also used mid-churn).
    s.on_tree = true;
    send_routed_join(member);
    return;
  }
  const auto selection = select_path(
      enumerate_candidates(network_->graph(), *snapshot, member, spf_delay,
                           config_.smrp, std::nullopt, &down, oracle_.get()),
      spf_delay, config_.smrp);
  s.on_tree = true;
  if (!selection) {
    send_routed_join(member);
    return;
  }
  send_join_along(member, selection->chosen.graft);
}

void DistributedSession::restart_agent(net::NodeId n) {
  AgentState& s = agent(n);
  const bool was_member = s.is_member;
  tl_on_restart(n, was_member);
  if (telemetry_ != nullptr) {
    telemetry_->events.record("restart", n, simulator_->now(),
                              {{"member", was_member ? 1.0 : 0.0}});
  }
  s = AgentState{};
  s.is_member = was_member;
  if (n == source_) {
    s.on_tree = true;  // the source anchors the tree by definition
    return;
  }
  if (was_member) initiate_join(n);
}

void DistributedSession::send_join_along(net::NodeId member,
                                         const std::vector<net::NodeId>& path) {
  if (path.size() < 2) return;  // joined in place
  AgentState& s = agent(member);
  s.parent = path[1];
  sim::JoinReqMsg msg;
  msg.member = member;
  msg.path = path;
  msg.hop_index = 0;
  network_->send(member, path[1], msg);
}

void DistributedSession::send_routed_join(net::NodeId from_member) {
  const net::NodeId hop = routing_->next_hop(from_member, source_);
  if (hop == net::kNoNode) return;  // retried by maintenance
  if (telemetry_ != nullptr) c_routed_joins_->add(1);
  agent(from_member).parent = hop;
  sim::JoinReqMsg msg;
  msg.member = from_member;
  msg.hop_index = static_cast<std::size_t>(config_.join_ttl);
  network_->send(from_member, hop, msg);
}

void DistributedSession::leave(net::NodeId member) {
  AgentState& s = agent(member);
  if (!s.is_member) return;
  s.is_member = false;
  if (telemetry_ != nullptr) {
    const Time now = simulator_->now();
    NodeObs& t = node_obs_[static_cast<std::size_t>(member)];
    if (t.join != obs::kNoSpan) {
      // Left before the first payload arrived: the join is moot.
      telemetry_->spans.close(t.join, now, obs::SpanStatus::kSuperseded);
      t.join = obs::kNoSpan;
    }
    // Leaves are instantaneous at the member; the span records the event.
    telemetry_->spans.close(telemetry_->spans.open("leave", member, now), now,
                            obs::SpanStatus::kOk);
  }
  prune_self_if_useless(member);
}

void DistributedSession::prune_self_if_useless(net::NodeId n) {
  AgentState& s = agent(n);
  if (n == source_ || !s.on_tree) return;
  if (s.is_member || !s.children.empty()) return;
  tl_on_prune(n);
  const net::NodeId up = s.parent;
  s.on_tree = false;
  s.parent = net::kNoNode;
  s.shr_upstream = 0;
  s.last_upstream = -1.0;
  s.last_data = -1.0;
  s.repairing = false;
  s.stranded = false;
  s.shr_baseline = -1;
  s.ticks_since_reshape_check = 0;
  if (up != net::kNoNode) {
    network_->send(n, up, sim::LeaveReqMsg{n});
  }
}

void DistributedSession::maintenance(net::NodeId n) {
  simulator_->schedule(config_.refresh_interval,
                       [this, n] { maintenance(n); });
  AgentState& s = agent(n);
  if (!network_->node_up(n)) {
    s.observed_down = true;
    return;
  }
  if (s.observed_down) {
    s.observed_down = false;
    if (config_.hardened) {
      // First tick after a crash-restart: wipe and (if a member) rejoin
      // rather than trusting pre-crash parent/children pointers.
      restart_agent(n);
      return;
    }
  }
  const Time now = simulator_->now();

  // Expire silent children.
  for (auto it = s.children.begin(); it != s.children.end();) {
    if (now - it->second.last_refresh > config_.state_timeout) {
      it = s.children.erase(it);
    } else {
      ++it;
    }
  }

  if (!s.on_tree) return;

  // Convergence wave (DESIGN.md §13): fold the local quiescence latch
  // with the children's piggybacked reports; the source runs the
  // detector over the root aggregate. Pure computation on protocol
  // state, so it cannot perturb the seeded run.
  const double conv_agg = config_.convergence.enabled
                              ? conv_subtree_quiet_since(n, now)
                              : routing::kNotQuiet;
  if (n == source_ && config_.convergence.enabled) conv_step(conv_agg, now);

  // Parent-facing soft state + liveness.
  if (n != source_ && s.parent != net::kNoNode) {
    sim::StateRefreshMsg refresh;
    refresh.subtree_members = local_member_count(s);
    refresh.conv_quiet_since = conv_agg;  // the wave rides the refresh
    network_->send(n, s.parent, refresh);
    const bool upstream_dead =
        s.last_upstream >= 0.0
            ? now - s.last_upstream > config_.upstream_timeout
            : false;
    const bool data_dead =
        s.last_data >= 0.0 && now - s.last_data > config_.upstream_timeout;
    const bool in_grace = config_.hardened && now <= s.repair_grace;
    if ((upstream_dead || data_dead) && !in_grace) {
      react_to_dead_upstream(n);
    }
  }

  // Child-facing SHR propagation (Eq. 2 downstream push); the source's
  // convergence verdict rides along so adaptive reshaping can gate on it.
  const int own_shr = believed_shr(n);
  for (const auto& [child, info] : s.children) {
    sim::ShrUpdateMsg update;
    update.shr_upstream = own_shr;
    update.conv_converged = s.conv_converged;
    network_->send(n, child, update);
  }

  // Tree reshaping (§3.2.3), members only, while service is healthy.
  if (config_.mode == SessionConfig::Mode::kSmrp &&
      config_.smrp.enable_reshaping && s.is_member && upstream_alive(n) &&
      n != source_ && !s.repairing) {
    if (s.shr_baseline < 0) s.shr_baseline = believed_shr(n);
    const bool condition_one =
        believed_shr(n) - s.shr_baseline >= config_.smrp.reshape_shr_delta;
    // Adaptive triggers: the periodic (Condition II) reshape waits for
    // the source's convergence verdict instead of firing blind on the
    // tick counter — re-optimising a tree that is still being repaired
    // wastes grafts. The counter keeps accruing, so the reshape fires at
    // the first converged tick past the threshold.
    ++s.ticks_since_reshape_check;
    const bool condition_two =
        s.ticks_since_reshape_check >= config_.reshape_every_ticks &&
        (!config_.adaptive_triggers || s.conv_converged);
    if (condition_one || condition_two) {
      s.ticks_since_reshape_check = 0;
      if (!attempt_reshape(n)) {
        // Selection declined: re-anchor the Condition-I reference so the
        // same growth does not retrigger every tick.
        s.shr_baseline = believed_shr(n);
      }
    }
  }

  prune_self_if_useless(n);
}

bool DistributedSession::attempt_reshape(net::NodeId n) {
  AgentState& s = agent(n);
  const auto snapshot = snapshot_tree();
  if (!snapshot || !snapshot->is_member(n)) return false;
  const net::NodeId up = snapshot->parent(n);
  if (up == net::kNoNode) return false;

  // Reshaping decisions respect the live topology: failed links/nodes
  // (known network-wide once the IGP has flooded them) are unusable.
  const net::ExclusionSet down = down_components();
  if (down.node_banned(n) || down.node_banned(source_)) return false;

  const net::RoutingOracle::TreePtr spf = oracle_->spf(source_, down);
  const double spf_delay = spf->dist[static_cast<std::size_t>(n)];
  if (spf_delay == net::kInfinity) return false;

  const std::vector<JoinCandidate> candidates =
      enumerate_candidates(network_->graph(), *snapshot, n, spf_delay,
                           config_.smrp, n, &down, oracle_.get());
  const int current_shr = snapshot->shr_excluding_subtree(up, n);
  const double current_delay = snapshot->delay_to_source(n);

  const JoinCandidate* best = nullptr;
  for (const JoinCandidate& c : candidates) {
    if (!c.within_bound) continue;
    if (best == nullptr || c.shr < best->shr ||
        (c.shr == best->shr && c.total_delay < best->total_delay)) {
      best = &c;
    }
  }
  if (best == nullptr) return false;
  const bool better =
      best->shr < current_shr ||
      (best->shr == current_shr && best->total_delay + 1e-9 < current_delay);
  if (!better) return false;
  if (best->merge_node == up && best->graft.size() == 2) return false;
  // Guard against stale relays: the snapshot may omit soft-state remnants
  // that are still on-tree in reality; routing the new branch through one
  // could close a cycle. Decline and let soft state clean up first.
  for (std::size_t i = 1; i + 1 < best->graft.size(); ++i) {
    if (agent(best->graft[i]).on_tree) return false;
  }

  // Make-before-break: install the new branch, then release the old one.
  const net::NodeId old_parent = s.parent;
  send_join_along(n, best->graft);
  if (old_parent != net::kNoNode && old_parent != s.parent) {
    network_->send(n, old_parent, sim::LeaveReqMsg{n});
  }
  s.shr_baseline = -1;  // re-anchor once the new SHR propagates
  ++reshapes_performed_;
  if (telemetry_ != nullptr) {
    c_reshapes_->add(1);
    const Time now = simulator_->now();
    NodeObs& t = node_obs_[static_cast<std::size_t>(n)];
    if (t.reshape != obs::kNoSpan) {
      telemetry_->spans.close(t.reshape, now, obs::SpanStatus::kSuperseded);
    }
    // Closed by the first payload over the new branch.
    t.reshape = telemetry_->spans.open("reshape", n, now);
    telemetry_->spans.attr(t.reshape, "old_parent",
                           static_cast<double>(old_parent));
    telemetry_->spans.attr(t.reshape, "new_parent",
                           static_cast<double>(s.parent));
  }
  return true;
}

bool DistributedSession::conv_routing_quiet(net::NodeId n, Time now) const {
  if (routing_->spf_pending(n)) return false;
  const Time lsa = routing_->last_lsa_activity(n);
  return lsa < 0.0 || now - lsa >= config_.convergence.lsa_quiet;
}

bool DistributedSession::conv_locally_quiet(net::NodeId n, Time now) const {
  if (!conv_routing_quiet(n, now)) return false;
  const AgentState& s = agent(n);
  // Repair machinery idle: an in-flight ring search, a stranded wait, or
  // a graft still inside its grace window all mean restoration work is
  // pending here.
  if (s.repairing || s.stranded) return false;
  if (now <= s.repair_grace) return false;
  // Data-plane service: a member off the tree is by definition unserved,
  // and an on-tree node must have a parent and payloads fresher than the
  // silence the watchdog would fire on.
  if (s.is_member && !s.on_tree) return false;
  if (s.on_tree && n != source_) {
    if (s.parent == net::kNoNode) return false;
    if (s.last_data < 0.0 || now - s.last_data > watchdog_window()) {
      return false;
    }
  }
  return true;
}

double DistributedSession::conv_subtree_quiet_since(net::NodeId n, Time now) {
  AgentState& s = agent(n);
  double agg = s.conv_local.update(conv_locally_quiet(n, now), now);
  for (const auto& [child, info] : s.children) {
    if (agg < 0.0) break;  // already poisoned
    if (info.conv_report_at < 0.0 ||
        now - info.conv_report_at > config_.convergence.report_timeout) {
      // A child that never reported or went silent cannot vouch for its
      // subtree: assume the worst until it speaks again.
      return routing::kNotQuiet;
    }
    agg = routing::combine_quiet_since(agg, info.conv_quiet_since);
  }
  return agg;
}

void DistributedSession::conv_step(double aggregate_quiet_since, Time now) {
  const std::optional<routing::Detection> detection =
      conv_detector_.step(aggregate_quiet_since, now);
  agent(source_).conv_converged = conv_detector_.converged();
  if (telemetry_ == nullptr) {
    if (detection) conv_pending_.clear();  // always empty when detached
    return;
  }
  g_conv_converged_->set(conv_detector_.converged() ? 1.0 : 0.0);
  g_conv_quiet_ms_->set(aggregate_quiet_since >= 0.0
                            ? now - aggregate_quiet_since
                            : -1.0);
  if (!detection) return;
  c_conv_detections_->add(1);
  // The first detection at/after an episode's restore instant is the
  // source's honest announcement that the episode is over: a
  // `convergence` span covers restore → detection under the outage, so
  // detected_ms >= total_ms (never-early) holds by construction.
  for (const PendingOutage& p : conv_pending_) {
    const double detected_ms = now - p.lost_at;
    const double skew = detected_ms - p.total_ms;
    obs::SpanCollector& spans = telemetry_->spans;
    const obs::SpanId span =
        spans.open("convergence", p.node, p.restored_at, p.outage);
    spans.attr(span, "epoch", static_cast<double>(detection->epoch));
    spans.attr(span, "total_ms", p.total_ms);
    spans.attr(span, "detected_ms", detected_ms);
    spans.attr(span, "skew_ms", skew);
    spans.close(span, now, obs::SpanStatus::kOk);
    h_conv_skew_->record(skew);
  }
  conv_pending_.clear();
}

void DistributedSession::react_to_dead_upstream(net::NodeId n) {
  AgentState& s = agent(n);
  tl_open_outage(n);  // detection instant; idempotent while already open
  if (config_.mode == SessionConfig::Mode::kSmrp) {
    if (config_.hardened && s.stranded) {
      // Partition give-up: stop flooding repair rings into a dead
      // partition; rejoin as soon as the IGP re-learns a route to the
      // source (the heal signal).
      if (routing_->has_route(n, source_)) {
        s.stranded = false;
        tl_open_rejoin(n);
        send_routed_join(n);
      }
    } else {
      start_repair(n);
    }
  } else if (s.is_member || !s.children.empty()) {
    tl_open_rejoin(n);
    send_routed_join(n);  // PIM: keep re-joining toward the source
  }
}

Time DistributedSession::watchdog_window() const noexcept {
  return std::max(config_.data_timeout, 3.0 * config_.data_interval);
}

void DistributedSession::data_watchdog(net::NodeId n) {
  AgentState& s = agent(n);
  s.watchdog_armed = false;
  if (!config_.hardened || n == source_) return;
  if (!network_->node_up(n) || !s.on_tree || s.parent == net::kNoNode) return;
  if (s.last_data < 0.0) return;
  const Time now = simulator_->now();
  const Time silent = now - s.last_data;
  if (silent + 1e-9 < watchdog_window()) {
    // Data arrived since arming: sleep out the remainder of the window.
    s.watchdog_armed = true;
    simulator_->schedule(watchdog_window() - silent,
                         [this, n] { data_watchdog(n); });
    return;
  }
  // A served node has gone silent for several payload intervals: the
  // upstream is dead in the data plane. React now instead of waiting for
  // the (much longer) control-plane timeout — this is what makes the
  // local detour fast relative to routed re-joins gated on IGP
  // reconvergence. Re-armed by the next real payload.
  if (now <= s.repair_grace || s.repairing || s.stranded) return;
  if (telemetry_ != nullptr) c_watchdog_->add(1);
  react_to_dead_upstream(n);
}

void DistributedSession::start_repair(net::NodeId n) {
  AgentState& s = agent(n);
  if (s.repairing) return;
  s.repairing = true;
  // Hardened: the ring budget persists across failed episodes — only real
  // data resets it — so a neighborhood where grafts keep "succeeding"
  // without restoring service escalates to the routed fallback instead of
  // re-flooding ring 1 forever. Legacy restarts every episode from 1.
  if (!config_.hardened) s.repair_ttl = 1;
  s.repair_ring = 0;
  ++repairs_started_;
  if (telemetry_ != nullptr) {
    c_repairs_started_->add(1);
    tl_open_outage(n);
    const Time now = simulator_->now();
    obs::SpanCollector& spans = telemetry_->spans;
    NodeObs& t = node_obs_[static_cast<std::size_t>(n)];
    // A graft/fallback leg that never restored service is what brought us
    // back here: it failed.
    if (t.graft != obs::kNoSpan) {
      spans.close(t.graft, now, obs::SpanStatus::kFailed);
      t.graft = obs::kNoSpan;
    }
    if (t.fallback != obs::kNoSpan) {
      spans.close(t.fallback, now, obs::SpanStatus::kFailed);
      t.fallback = obs::kNoSpan;
    }
    if (t.repair != obs::kNoSpan) {  // defensive; episodes close on exit
      spans.close(t.repair, now, obs::SpanStatus::kSuperseded);
    }
    if (t.rejoin != obs::kNoSpan) {
      // The local repair takes over from a routed attempt that never
      // delivered.
      spans.close(t.rejoin, now, obs::SpanStatus::kSuperseded);
      t.rejoin = obs::kNoSpan;
    }
    t.rings_episode = 0;
    // Span count == repairs_started(): opened nowhere else.
    t.repair = spans.open("repair", n, now, t.outage);
    spans.attr(t.repair, "ttl_start", s.repair_ttl);
  }
  fire_repair_ring(n);
}

void DistributedSession::repair_give_up(net::NodeId n, bool adaptive) {
  AgentState& s = agent(n);
  s.repairing = false;
  const obs::SpanStatus status =
      adaptive ? obs::SpanStatus::kSuperseded : obs::SpanStatus::kFailed;
  NodeObs* t = nullptr;
  if (telemetry_ != nullptr) {
    t = &node_obs_[static_cast<std::size_t>(n)];
    const Time now = simulator_->now();
    obs::SpanCollector& spans = telemetry_->spans;
    if (t->ring != obs::kNoSpan) {
      spans.close(t->ring, now, status);
      t->ring = obs::kNoSpan;
    }
    if (t->repair != obs::kNoSpan) {
      // Ring budget exhausted without an adoptable response — or, on the
      // adaptive trigger, cut short because the routed detour came alive.
      spans.attr(t->repair, "rings", t->rings_episode);
      if (adaptive) spans.attr(t->repair, "adaptive", 1.0);
      spans.close(t->repair, now, status);
      h_rings_->record(t->rings_episode);
      t->repair = obs::kNoSpan;
      t->rings_episode = 0;
    }
  }
  if (!config_.hardened) return;  // legacy: give up; maintenance retries
  // Repair deadline hit: no on-tree node with live service inside the
  // ring budget, so the detour — if one exists at all — is not local.
  // Fall back to a routed (global) join; if even the IGP has no route,
  // the source sits in another partition: go stranded and let
  // maintenance rejoin once routing heals.
  if (routing_->has_route(n, source_)) {
    if (t != nullptr) {
      c_fallbacks_->add(1);
      if (adaptive) c_conv_adaptive_fallbacks_->add(1);
      t->fallback = telemetry_->spans.open("fallback", n,
                                           simulator_->now(), t->outage);
      if (adaptive) telemetry_->spans.attr(t->fallback, "adaptive", 1.0);
    }
    send_routed_join(n);
    // Give the routed join one detection window to deliver data before
    // maintenance opens another repair episode.
    s.repair_grace = simulator_->now() + config_.upstream_timeout;
  } else {
    if (t != nullptr) {
      c_stranded_->add(1);
      if (t->outage != obs::kNoSpan) {
        telemetry_->spans.attr(t->outage, "stranded", 1.0);
      }
    }
    s.stranded = true;
  }
}

void DistributedSession::fire_repair_ring(net::NodeId n) {
  AgentState& s = agent(n);
  if (!s.repairing) return;
  if (!config_.mutations.ignore_ring_budget &&
      s.repair_ttl > config_.max_repair_ttl) {
    repair_give_up(n, /*adaptive=*/false);
    return;
  }
  // Adaptive trigger (opt-in): the ring search exists because unicast
  // routing is too slow to trust mid-failure — but once the local control
  // plane has quiesced AND re-learned a route to the source, a routed
  // join is one RTT while the next ring is a wider flood plus backoff.
  // Abort the escalation and take the global detour now instead of
  // burning the rest of the budget. Requires one unanswered ring so a
  // genuinely local detour still wins the race it is built to win.
  if (config_.adaptive_triggers && config_.hardened && s.repair_ring >= 1 &&
      conv_routing_quiet(n, simulator_->now()) &&
      routing_->has_route(n, source_)) {
    repair_give_up(n, /*adaptive=*/true);
    return;
  }
  sim::RepairQueryMsg query;
  query.initiator = n;
  query.nonce = ++nonce_counter_;
  query.ttl = s.repair_ttl;
  query.visited = {n};
  s.repair_nonce = query.nonce;
  if (telemetry_ != nullptr) {
    const Time now = simulator_->now();
    obs::SpanCollector& spans = telemetry_->spans;
    NodeObs& t = node_obs_[static_cast<std::size_t>(n)];
    if (t.ring != obs::kNoSpan) {
      // The previous ring's pacing ran out unanswered.
      spans.close(t.ring, now, obs::SpanStatus::kFailed);
    }
    t.ring = spans.open("ring", n, now, t.repair);
    spans.attr(t.ring, "ttl", s.repair_ttl);
    spans.attr(t.ring, "ttl_cap", config_.max_repair_ttl);
    spans.attr(t.ring, "ring", s.repair_ring);
    c_rings_->add(1);
    ++t.rings_episode;
  }
  network_->broadcast(n, query);
  // Clamp far above any real budget: only the ignore_ring_budget mutation
  // can reach it, and it must widen forever without overflowing.
  s.repair_ttl = s.repair_ttl >= (1 << 20) ? (1 << 20) : s.repair_ttl * 2;
  Time pacing = config_.repair_retry;
  if (config_.hardened) {
    // Exponential backoff gives ring k time proportional to its radius
    // before the next (wider) flood; deterministic jitter decorrelates
    // the retry storms of neighbors that lost the same upstream.
    for (int ring = 0; ring < s.repair_ring; ++ring) {
      pacing *= config_.repair_backoff;
    }
    pacing *= 1.0 + config_.repair_jitter * (2.0 * jitter_rng_.uniform() - 1.0);
  }
  ++s.repair_ring;
  if (telemetry_ != nullptr) {
    telemetry_->spans.attr(node_obs_[static_cast<std::size_t>(n)].ring,
                           "pacing_ms", pacing);
  }
  simulator_->schedule(pacing, [this, n] { fire_repair_ring(n); });
}

bool DistributedSession::handle(net::NodeId at, net::NodeId from,
                                const sim::Message& message) {
  if (const auto* join_msg = std::get_if<sim::JoinReqMsg>(&message)) {
    on_join(at, from, *join_msg);
    return true;
  }
  if (std::holds_alternative<sim::LeaveReqMsg>(message)) {
    on_leave(at, from);
    return true;
  }
  if (const auto* refresh = std::get_if<sim::StateRefreshMsg>(&message)) {
    on_refresh(at, from, *refresh);
    return true;
  }
  if (const auto* shr = std::get_if<sim::ShrUpdateMsg>(&message)) {
    on_shr_update(at, from, *shr);
    return true;
  }
  if (const auto* data = std::get_if<sim::DataMsg>(&message)) {
    on_data(at, from, *data);
    return true;
  }
  if (const auto* query = std::get_if<sim::RepairQueryMsg>(&message)) {
    on_repair_query(at, from, *query);
    return true;
  }
  if (const auto* resp = std::get_if<sim::RepairRespMsg>(&message)) {
    on_repair_resp(at, from, *resp);
    return true;
  }
  return false;
}

void DistributedSession::on_join(net::NodeId at, net::NodeId from,
                                 const sim::JoinReqMsg& msg) {
  AgentState& s = agent(at);
  // Register the sender as a child (idempotent refresh).
  ChildInfo& child = s.children[from];
  child.last_refresh = simulator_->now();
  child.subtree_members = std::max(child.subtree_members, 1);

  if (!msg.path.empty()) {
    // Explicit graft travelling member → … → merge node.
    const auto it = std::find(msg.path.begin(), msg.path.end(), at);
    if (it == msg.path.end()) return;  // stray
    const auto index = static_cast<std::size_t>(it - msg.path.begin());
    if (index + 1 >= msg.path.size()) return;  // merge point reached
    if (s.on_tree && (!config_.hardened || upstream_alive(at))) {
      // Graft hit served tree early: stop. The legacy protocol stops at
      // ANY on-tree hop — anchoring branches at service-dead nodes, which
      // can weld repair grafts into persistent parent cycles (the exact
      // livelock the chaos soak reproduces). Hardened: only a hop with
      // live service terminates the graft; a dead one falls through and
      // re-anchors itself along the path toward the live responder.
      return;
    }
    if (s.on_tree && s.parent != net::kNoNode &&
        s.parent != msg.path[index + 1]) {
      network_->send(at, s.parent, sim::LeaveReqMsg{at});
    }
    s.on_tree = true;
    s.parent = msg.path[index + 1];
    sim::JoinReqMsg forward = msg;
    forward.hop_index = index;
    network_->send(at, s.parent, forward);
    return;
  }

  // Routed (PIM-style) join toward the source.
  if (at == source_) return;
  if (s.on_tree && upstream_alive(at)) return;  // already served
  const auto ttl = msg.hop_index;
  if (ttl == 0) return;
  const net::NodeId hop = routing_->next_hop(at, source_);
  if (hop == net::kNoNode || hop == from) return;
  if (s.on_tree && s.parent != hop && s.parent != net::kNoNode) {
    // Unicast routing moved: switch upstream, prune the old branch.
    network_->send(at, s.parent, sim::LeaveReqMsg{at});
  }
  s.on_tree = true;
  s.parent = hop;
  sim::JoinReqMsg forward = msg;
  forward.hop_index = ttl - 1;
  network_->send(at, hop, forward);
}

void DistributedSession::on_leave(net::NodeId at, net::NodeId from) {
  AgentState& s = agent(at);
  s.children.erase(from);
  prune_self_if_useless(at);
}

void DistributedSession::on_refresh(net::NodeId at, net::NodeId from,
                                    const sim::StateRefreshMsg& msg) {
  AgentState& s = agent(at);
  const auto it = s.children.find(from);
  if (it == s.children.end()) {
    // Refresh from an unknown child re-adopts it (soft state recovers
    // from message loss).
    if (s.on_tree) {
      ChildInfo info{simulator_->now(), msg.subtree_members};
      info.conv_quiet_since = msg.conv_quiet_since;
      info.conv_report_at = simulator_->now();
      s.children[from] = info;
    }
    return;
  }
  it->second.last_refresh = simulator_->now();
  it->second.subtree_members = msg.subtree_members;
  it->second.conv_quiet_since = msg.conv_quiet_since;
  it->second.conv_report_at = simulator_->now();
}

void DistributedSession::on_shr_update(net::NodeId at, net::NodeId from,
                                       const sim::ShrUpdateMsg& msg) {
  AgentState& s = agent(at);
  if (s.parent != from) return;  // stale upstream
  s.shr_upstream = msg.shr_upstream;
  s.conv_converged = msg.conv_converged;
  s.last_upstream = simulator_->now();
}

void DistributedSession::on_data(net::NodeId at, net::NodeId from,
                                 const sim::DataMsg& msg) {
  AgentState& s = agent(at);
  if (!s.on_tree || s.parent != from) {  // not my upstream
    if (!config_.mutations.forward_off_tree) return;
    // MUTATION (tests only): accept anyway and flood to every neighbor.
    // Per-seq dedup keeps the flood finite; the forward event it emits
    // carries on_tree/from_parent ground truth, so the forward-* rules in
    // the core ruleset must catch this.
    if (msg.seq <= s.last_seq) return;
    s.last_seq = msg.seq;
    bool flooded = false;
    for (const net::Adjacency& adj : network_->graph().neighbors(at)) {
      if (adj.neighbor == from) continue;
      network_->send(at, adj.neighbor, msg);
      flooded = true;
    }
    if (flooded) tl_event_forward(at, msg.seq, s.on_tree, false);
    return;
  }
  if (msg.seq <= s.last_seq) return;  // duplicate suppression
  s.last_seq = msg.seq;
  s.last_data = simulator_->now();
  s.last_upstream = simulator_->now();
  s.stranded = false;  // service is back; no longer cut off
  s.repair_ttl = 1;    // genuine service resets the ring escalation
  s.repair_ring = 0;
  s.repair_grace = -1.0;
  if (config_.hardened && !s.watchdog_armed) {
    s.watchdog_armed = true;
    simulator_->schedule(watchdog_window(), [this, at] { data_watchdog(at); });
  }
  if (s.repairing) {
    // Service is back (e.g. upstream healed itself): stop repairing.
    s.repairing = false;
    ++repairs_completed_;
    if (telemetry_ != nullptr) c_repairs_completed_->add(1);
  }
  tl_on_data(at);
  if (s.is_member) tl_event_deliver(at, msg.seq);
  bool forwarded = false;
  for (const auto& [child, info] : s.children) {
    if (child != from) {
      network_->send(at, child, msg);
      forwarded = true;
    }
  }
  // Ground truth at send time: the guard above admitted only on-tree,
  // from-parent payloads, which is exactly what the forward-* rules check.
  if (forwarded) tl_event_forward(at, msg.seq, s.on_tree, true);
}

void DistributedSession::on_repair_query(net::NodeId at, net::NodeId from,
                                         sim::RepairQueryMsg msg) {
  AgentState& s = agent(at);
  if (!s.seen_nonces.insert(msg.nonce).second) return;  // duplicate
  s.nonce_order.push_back(msg.nonce);
  while (s.nonce_order.size() > kSeenNonceCap) {
    // Duplicates of a nonce arrive within one ring's flood, so a FIFO
    // window this deep dedupes everything that can still arrive while
    // keeping per-node state bounded on long chaos runs.
    s.seen_nonces.erase(s.nonce_order.front());
    s.nonce_order.pop_front();
  }
  if (std::find(msg.visited.begin(), msg.visited.end(), at) !=
      msg.visited.end()) {
    return;
  }

  const bool can_serve = s.on_tree && upstream_alive(at) &&
                         at != msg.initiator;
  if (can_serve) {
    sim::RepairRespMsg resp;
    resp.responder = at;
    resp.nonce = msg.nonce;
    resp.shr = believed_shr(at);
    resp.path = msg.visited;
    resp.path.push_back(at);
    resp.hop_index = resp.path.size() - 1;
    // Retrace toward the initiator.
    network_->send(at, resp.path[resp.hop_index - 1], resp);
    return;
  }
  if (msg.ttl <= 1) return;
  msg.ttl -= 1;
  msg.visited.push_back(at);
  for (const net::Adjacency& adj : network_->graph().neighbors(at)) {
    if (adj.neighbor == from) continue;
    network_->send(at, adj.neighbor, msg);
  }
}

void DistributedSession::on_repair_resp(net::NodeId at,
                                        net::NodeId /*from*/,
                                        const sim::RepairRespMsg& msg) {
  if (msg.path.empty()) return;
  if (at != msg.path.front()) {
    // Relay hop: keep retracing toward the initiator.
    const auto it = std::find(msg.path.begin(), msg.path.end(), at);
    if (it == msg.path.end() || it == msg.path.begin()) return;
    const auto index = static_cast<std::size_t>(it - msg.path.begin());
    sim::RepairRespMsg forward = msg;
    forward.hop_index = index;
    network_->send(at, msg.path[index - 1], forward);
    return;
  }
  // Initiator: adopt the first response (nearest ring).
  AgentState& s = agent(at);
  if (!s.repairing || msg.nonce != s.repair_nonce) return;
  s.repairing = false;
  ++repairs_completed_;
  if (telemetry_ != nullptr) {
    c_repairs_completed_->add(1);
    const Time now = simulator_->now();
    obs::SpanCollector& spans = telemetry_->spans;
    NodeObs& t = node_obs_[static_cast<std::size_t>(at)];
    if (t.ring != obs::kNoSpan) {
      spans.attr(t.ring, "answered", 1.0);
      spans.close(t.ring, now, obs::SpanStatus::kOk);
      t.ring = obs::kNoSpan;
    }
    if (t.repair != obs::kNoSpan) {
      spans.attr(t.repair, "rings", t.rings_episode);
      spans.attr(t.repair, "responder",
                 static_cast<double>(msg.responder));
      spans.attr(t.repair, "graft_hops",
                 static_cast<double>(msg.path.size() - 1));
      spans.close(t.repair, now, obs::SpanStatus::kOk);
      h_rings_->record(t.rings_episode);
      t.repair = obs::kNoSpan;
      t.rings_episode = 0;
    }
    if (t.graft != obs::kNoSpan) {  // a prior graft never delivered
      spans.close(t.graft, now, obs::SpanStatus::kSuperseded);
    }
    // Adoption → first payload through the new branch.
    t.graft = spans.open("graft", at, now, t.outage);
    spans.attr(t.graft, "responder", static_cast<double>(msg.responder));
  }
  // Install the graft at → … → responder. JoinReq along the path wires
  // the interior and registers us at the responder.
  send_join_along(at, msg.path);
  s.last_upstream = simulator_->now();
  if (config_.hardened) {
    // Let the graft settle before re-declaring the upstream dead, but do
    // NOT fake data freshness: a node that merely grafted must not serve
    // other repairs as if it were receiving — that optimism lets two dead
    // nodes resuscitate each other forever (zombie repair cycles, found
    // by the chaos soak).
    s.repair_grace = simulator_->now() + config_.upstream_timeout;
  } else {
    s.last_data = simulator_->now();  // legacy optimism
  }
}

std::optional<mcast::MulticastTree> DistributedSession::snapshot_tree() const {
  const net::Graph& g = network_->graph();
  mcast::MulticastTree tree(g, source_);
  std::vector<net::NodeId> members;
  for (net::NodeId n = 0; n < g.node_count(); ++n) {
    if (agent(n).is_member) members.push_back(n);
  }
  // Graft shorter chains first so later ones can stop at existing nodes.
  std::vector<std::vector<net::NodeId>> chains;
  for (const net::NodeId m : members) {
    std::vector<net::NodeId> chain;
    net::NodeId cur = m;
    int guard = 0;
    while (cur != net::kNoNode && cur != source_) {
      chain.push_back(cur);
      cur = agent(cur).parent;
      if (++guard > g.node_count()) return std::nullopt;  // cycle mid-churn
    }
    if (cur == net::kNoNode) return std::nullopt;  // orphaned member
    chain.push_back(source_);
    chains.push_back(std::move(chain));
  }
  std::sort(chains.begin(), chains.end(),
            [](const auto& a, const auto& b) { return a.size() < b.size(); });
  for (const auto& chain : chains) {
    const net::NodeId m = chain.front();
    if (tree.on_tree(m)) {
      tree.graft(m, {m});
      continue;
    }
    std::vector<net::NodeId> graft;
    for (const net::NodeId n : chain) {
      graft.push_back(n);
      if (tree.on_tree(n)) break;
    }
    // Adjacent-hop validation happens inside graft(); inconsistent chains
    // (e.g. parent pointers across down links mid-repair) abort.
    try {
      tree.graft(m, graft);
    } catch (const std::exception&) {
      return std::nullopt;
    }
  }
  return tree;
}

}  // namespace smrp::proto
