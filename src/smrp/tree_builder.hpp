// Centralised (full-topology-knowledge) SMRP engine: drives the shared
// MulticastTree through member joins/leaves using the §3.2.2 selection
// criterion and applies the §3.2.3 tree-reshaping rules.
//
// This is the engine the evaluation uses; `smrp::sim` hosts the distributed
// message-passing realisation of the same protocol and the tests check the
// two agree on the trees they build.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "multicast/tree.hpp"
#include "net/routing_oracle.hpp"
#include "net/shortest_path.hpp"
#include "smrp/config.hpp"
#include "smrp/path_selection.hpp"

namespace smrp::proto {

/// Result of one join() call.
struct JoinOutcome {
  bool joined = false;
  bool used_fallback = false;   ///< no candidate met the D_thresh bound
  NodeId merge_node = net::kNoNode;
  double total_delay = 0.0;     ///< member's tree delay right after joining
  int reshapes_triggered = 0;   ///< Condition-I switches caused by this join
};

/// True iff `graft` (member → … → merge) only re-walks `member`'s current
/// upstream tree edges, i.e. applying it as a subtree move would rebuild
/// the attachment unchanged. Reshaping uses this to recognise a no-op
/// candidate — single- or multi-hop — instead of churning move_subtree.
[[nodiscard]] bool graft_rewalks_attachment(const MulticastTree& tree,
                                            NodeId member,
                                            const std::vector<NodeId>& graft);

class SmrpTreeBuilder {
 public:
  /// `oracle`, when given, serves every SPF this builder (and downstream
  /// recovery acting on its tree) needs; it must outlive the builder and
  /// be bound to `g`. Without one the builder owns a private oracle.
  SmrpTreeBuilder(const Graph& g, NodeId source, SmrpConfig config = {},
                  net::RoutingOracle* oracle = nullptr);

  /// Join per the Path Selection Criterion, then run Condition-I reshaping.
  JoinOutcome join(NodeId member);

  /// Join along an externally selected graft (member → … → merge node),
  /// e.g. one produced by the §3.3.1 query scheme; runs the same post-join
  /// bookkeeping and Condition-I reshaping as join(). An empty graft or
  /// one whose endpoint is not on-tree is rejected (joined = false), the
  /// same way recovery rejects a restoration path that never reaches the
  /// tree.
  JoinOutcome join_along(NodeId member, const std::vector<NodeId>& graft);

  /// Leave per §3.2.2 (prune upward). SHR values only shrink on departure,
  /// so Condition I stays quiet; Condition II (reshape_pass) picks up the
  /// newly attractive positions.
  void leave(NodeId member);

  /// Condition II: every member re-runs path selection once (ascending id
  /// order, emulating independent periodic timers). Returns the number of
  /// members that switched paths.
  int reshape_pass();

  /// Run reshape passes until quiescent (or `max_passes`). Returns total
  /// number of switches.
  int reshape_to_fixpoint(int max_passes = 10);

  [[nodiscard]] const MulticastTree& tree() const noexcept { return tree_; }
  [[nodiscard]] const Graph& graph() const noexcept { return *g_; }
  [[nodiscard]] const SmrpConfig& config() const noexcept { return config_; }

  /// The routing oracle this builder's searches go through (shared or
  /// owned). Non-const: lookups mutate the cache.
  [[nodiscard]] net::RoutingOracle& oracle() const noexcept { return *oracle_; }

  /// D_SPF(S, n): the underlying unicast shortest-path delay.
  [[nodiscard]] double spf_delay(NodeId n) const;

  [[nodiscard]] int fallback_join_count() const noexcept {
    return fallback_joins_;
  }
  [[nodiscard]] int total_reshapes() const noexcept { return reshape_count_; }

 private:
  /// Re-run selection for `member` (as a subtree move); switch if strictly
  /// better. Returns true if the member moved.
  bool try_reshape(NodeId member);

  /// Condition I: sweep members whose SHR grew ≥ config.reshape_shr_delta
  /// since their last (re)join; bounded by max_reshapes_per_event.
  int condition_one_sweep();

  void record_baseline(NodeId member);

  const Graph* g_;
  SmrpConfig config_;
  MulticastTree tree_;
  /// Owned fallback when no shared oracle was injected. unique_ptr (not
  /// value): RoutingOracle holds a mutex and is immovable.
  std::unique_ptr<net::RoutingOracle> owned_oracle_;
  net::RoutingOracle* oracle_;
  net::RoutingOracle::TreePtr spf_from_source_;
  /// SHR(S,R) observed at R's last join/reshape (Condition I reference).
  std::vector<int> shr_baseline_;
  int fallback_joins_ = 0;
  int reshape_count_ = 0;
};

}  // namespace smrp::proto
