// Tunables of the Survivable Multicast Routing Protocol.
#pragma once

namespace smrp::proto {

/// How join-candidate grafts are generated (paper footnote 4 only says
/// "the shortest one"; the two readings below differ in candidate-set
/// size and are compared by bench_ablation_graft_mode).
enum class GraftMode {
  /// For each on-tree node R, the shortest graft that touches the tree
  /// only at R (other on-tree nodes excluded from the graft's interior).
  /// This is what the paper's Figure-4 walkthrough enumerates (e.g. the
  /// G→B→S candidate merging at the source) and is the default.
  kAvoidTree,
  /// For each on-tree node R, the plain shortest path NR→R; R is a valid
  /// merge only if that path meets the tree first at R. Smaller candidate
  /// set — a path crossing the tree early really merges at the earlier
  /// node. Less dispersal, lower cost/delay penalty.
  kFirstHit,
};

struct SmrpConfig {
  /// Candidate-graft generation strategy.
  GraftMode graft_mode = GraftMode::kAvoidTree;

  /// The paper's D_thresh: a candidate path is admissible iff its delay is
  /// at most (1 + d_thresh) × the SPF delay from the source (§3.2.2).
  double d_thresh = 0.3;

  /// Reshaping Condition I (§3.2.3): a node whose SHR grew by at least this
  /// much since its last (re)join attempts a new path selection. The
  /// paper's Figure 5 walkthrough triggers on a growth of 2.
  int reshape_shr_delta = 2;

  /// Master switch for reshaping (Conditions I and II); the ablation bench
  /// turns it off.
  bool enable_reshaping = true;

  /// Upper bound on cascading Condition-I reshapes processed after one
  /// membership event, guarding against oscillation.
  int max_reshapes_per_event = 8;

  /// If no candidate satisfies the D_thresh bound (possible on sparse
  /// graphs), fall back to the minimum-delay candidate instead of refusing
  /// the join. Fallbacks are counted in the join statistics.
  bool fallback_when_infeasible = true;
};

}  // namespace smrp::proto
