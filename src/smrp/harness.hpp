// Convenience wiring for full-stack simulations: event core + network +
// link-state unicast routing + one multicast session, with the standard
// demux order (routing first, session second). Used by the integration
// tests, the restoration-time bench, and the failure-drill example.
#pragma once

#include <memory>

#include "routing/link_state.hpp"
#include "smrp/distributed.hpp"

namespace smrp::proto {

class SimulationHarness {
 public:
  SimulationHarness(const net::Graph& graph, net::NodeId source,
                    SessionConfig session_config = {},
                    routing::RoutingConfig routing_config = {},
                    sim::NetworkConfig network_config = {})
      : simulator_(std::make_unique<sim::Simulator>()),
        network_(std::make_unique<sim::SimNetwork>(*simulator_, graph,
                                                   network_config)),
        routing_(std::make_unique<routing::LinkStateRouting>(
            *simulator_, *network_, routing_config)),
        session_(std::make_unique<DistributedSession>(
            *simulator_, *network_, *routing_, source, session_config)) {
    for (net::NodeId n = 0; n < graph.node_count(); ++n) {
      network_->set_handler(n, [this, n](net::NodeId from,
                                         const sim::Message& message) {
        if (routing_->handle(n, from, message)) return;
        session_->handle(n, from, message);
      });
    }
  }

  /// Start routing (pre-converged) and the session data pump.
  void start() {
    routing_->start();
    session_->start();
  }

  /// Attach (or detach with nullptr) one telemetry bundle to every layer:
  /// simulator event-loop metrics, network per-message counters, and the
  /// session's episode spans. Attach before start() for complete traces;
  /// attaching never changes simulation outcomes.
  void attach_telemetry(obs::Telemetry* telemetry) {
    simulator_->set_telemetry(telemetry);
    network_->set_telemetry(telemetry);
    session_->attach_telemetry(telemetry);
  }

  /// Schedule a persistent link failure at absolute time `when`.
  void fail_link_at(net::LinkId link, sim::Time when) {
    simulator_->schedule_at(when,
                            [this, link] { network_->set_link_up(link, false); });
  }

  /// Schedule a link repair at absolute time `when`.
  void restore_link_at(net::LinkId link, sim::Time when) {
    simulator_->schedule_at(when,
                            [this, link] { network_->set_link_up(link, true); });
  }

  [[nodiscard]] sim::Simulator& simulator() noexcept { return *simulator_; }
  [[nodiscard]] sim::SimNetwork& network() noexcept { return *network_; }
  [[nodiscard]] routing::LinkStateRouting& routing() noexcept {
    return *routing_;
  }
  [[nodiscard]] DistributedSession& session() noexcept { return *session_; }

 private:
  std::unique_ptr<sim::Simulator> simulator_;
  std::unique_ptr<sim::SimNetwork> network_;
  std::unique_ptr<routing::LinkStateRouting> routing_;
  std::unique_ptr<DistributedSession> session_;
};

}  // namespace smrp::proto
