#include "smrp/recovery.hpp"

#include <stdexcept>

namespace smrp::proto {

LinkId worst_case_failure_link(const MulticastTree& tree, NodeId member) {
  const std::vector<NodeId> path = tree.path_to_source(member);
  if (path.size() < 2) {
    throw std::invalid_argument(
        "worst-case failure needs an on-tree non-source member");
  }
  // path runs member → … → child-of-source → source; the incident link of
  // the source is the parent link of the penultimate entry.
  return tree.parent_link(path[path.size() - 2]);
}

NodeId worst_case_failure_node(const MulticastTree& tree, NodeId member) {
  const std::vector<NodeId> path = tree.path_to_source(member);
  if (path.size() < 2) {
    throw std::invalid_argument(
        "worst-case failure needs an on-tree non-source member");
  }
  return path[path.size() - 2];  // the source's child on the member's path
}

namespace {

std::vector<char> survivors_after(const MulticastTree& tree,
                                  const Failure& failure) {
  return failure.kind == Failure::Kind::kLink
             ? tree.surviving_after_link(failure.link)
             : tree.surviving_after_node(failure.node);
}

net::ExclusionSet exclusion_for(const net::Graph& g, const Failure& failure) {
  net::ExclusionSet excluded(g);
  if (failure.kind == Failure::Kind::kLink) {
    excluded.ban_link(failure.link);
  } else {
    excluded.ban_node(failure.node);
  }
  return excluded;
}

RecoveryOutcome init_outcome(const MulticastTree& tree, NodeId member,
                             const Failure& failure,
                             const std::vector<char>& survivors) {
  RecoveryOutcome out;
  out.member = member;
  out.failed_link = failure.link;
  out.failed_node = failure.node;
  if (!tree.is_member(member)) {
    throw std::invalid_argument("recovery is initiated by a member");
  }
  if (failure.kind == Failure::Kind::kNode && failure.node == member) {
    throw std::invalid_argument("the failed node cannot recover itself");
  }
  if (survivors[static_cast<std::size_t>(member)] != 0) {
    // The failure did not touch this member's path.
    out.disconnected = false;
    out.recovered = true;
    out.reattach_node = member;
    out.new_delay = tree.delay_to_source(member);
    return out;
  }
  out.disconnected = true;
  return out;
}

}  // namespace

RecoveryOutcome local_detour_recovery(const Graph& g,
                                      const MulticastTree& tree,
                                      NodeId member, const Failure& failure) {
  const std::vector<char> survivors = survivors_after(tree, failure);
  RecoveryOutcome out = init_outcome(tree, member, failure, survivors);
  if (!out.disconnected) return out;

  const net::ExclusionSet excluded = exclusion_for(g, failure);
  // Survivors absorb the search: a restoration path never crosses one
  // surviving node on the way to another, so the path it yields is exactly
  // the set of new links brought into the tree.
  const net::ShortestPathTree search =
      net::dijkstra_absorbing(g, member, survivors, excluded);

  NodeId best = net::kNoNode;
  for (NodeId n = 0; n < g.node_count(); ++n) {
    if (survivors[static_cast<std::size_t>(n)] == 0) continue;
    if (!search.reachable(n)) continue;
    if (best == net::kNoNode ||
        search.dist[static_cast<std::size_t>(n)] <
            search.dist[static_cast<std::size_t>(best)]) {
      best = n;
    }
  }
  if (best == net::kNoNode) return out;  // recovered stays false

  out.recovered = true;
  out.reattach_node = best;
  out.restoration_path = search.path_from_source(best);  // member → … → best
  out.recovery_distance = search.dist[static_cast<std::size_t>(best)];
  out.recovery_hops = search.hops[static_cast<std::size_t>(best)];
  out.new_delay = out.recovery_distance + tree.delay_to_source(best);
  return out;
}

RecoveryOutcome local_detour_recovery(const Graph& g,
                                      const MulticastTree& tree,
                                      NodeId member, LinkId failed_link) {
  return local_detour_recovery(g, tree, member, Failure::of_link(failed_link));
}

RecoveryOutcome global_detour_recovery(const Graph& g,
                                       const MulticastTree& tree,
                                       NodeId member, const Failure& failure) {
  const std::vector<char> survivors = survivors_after(tree, failure);
  RecoveryOutcome out = init_outcome(tree, member, failure, survivors);
  if (!out.disconnected) return out;

  const net::ExclusionSet excluded = exclusion_for(g, failure);
  // The reconverged unicast routing gives the member a new shortest path
  // toward the source; a PIM-style join travels along it and grafts at the
  // first router that is already on the surviving tree.
  const net::ShortestPathTree spf = net::dijkstra(g, member, excluded);
  if (!spf.reachable(tree.source())) return out;

  const std::vector<NodeId> path = spf.path_from_source(tree.source());
  double distance = 0.0;
  int hops = 0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const NodeId next = path[i + 1];
    distance += g.link(*g.link_between(path[i], next)).weight;
    ++hops;
    out.restoration_path.push_back(path[i]);
    if (survivors[static_cast<std::size_t>(next)] != 0) {
      out.restoration_path.push_back(next);
      out.recovered = true;
      out.reattach_node = next;
      out.recovery_distance = distance;
      out.recovery_hops = hops;
      out.new_delay = distance + tree.delay_to_source(next);
      return out;
    }
  }
  // The walk always terminates at the source, which survives by definition,
  // so reaching here means the path list was empty.
  out.restoration_path.clear();
  return out;
}

RecoveryOutcome global_detour_recovery(const Graph& g,
                                       const MulticastTree& tree,
                                       NodeId member, LinkId failed_link) {
  return global_detour_recovery(g, tree, member,
                                Failure::of_link(failed_link));
}

SessionRepairReport repair_session(const Graph& g, MulticastTree& tree,
                                   const Failure& failure,
                                   DetourPolicy policy,
                                   const net::ExclusionSet* already_failed) {
  SessionRepairReport report;
  std::vector<NodeId> lost =
      failure.kind == Failure::Kind::kLink
          ? tree.sever(failure.link)
          : tree.sever_node(failure.node);
  report.disconnected_members = static_cast<int>(lost.size());

  const auto recover_one = [&](NodeId member) {
    // Temporarily mark the node a member of the current tree? No — after
    // sever it is off-tree; run the detour search directly against the
    // surviving tree: every on-tree node survives by construction now.
    net::ExclusionSet excluded = [&] {
      net::ExclusionSet e =
          already_failed != nullptr ? *already_failed : net::ExclusionSet(g);
      if (failure.kind == Failure::Kind::kLink) {
        e.ban_link(failure.link);
      } else {
        e.ban_node(failure.node);
      }
      return e;
    }();
    std::vector<char> on_tree(static_cast<std::size_t>(g.node_count()), 0);
    for (const NodeId n : tree.on_tree_nodes()) {
      on_tree[static_cast<std::size_t>(n)] = 1;
    }
    RecoveryOutcome out;
    out.member = member;
    out.failed_link = failure.link;
    out.failed_node = failure.node;
    out.disconnected = true;
    if (policy == DetourPolicy::kLocal) {
      const net::ShortestPathTree search =
          net::dijkstra_absorbing(g, member, on_tree, excluded);
      NodeId best = net::kNoNode;
      for (const NodeId n : tree.on_tree_nodes()) {
        if (!search.reachable(n)) continue;
        if (best == net::kNoNode ||
            search.dist[static_cast<std::size_t>(n)] <
                search.dist[static_cast<std::size_t>(best)]) {
          best = n;
        }
      }
      if (best == net::kNoNode) return out;
      out.recovered = true;
      out.reattach_node = best;
      out.restoration_path = search.path_from_source(best);
      out.recovery_distance = search.dist[static_cast<std::size_t>(best)];
      out.recovery_hops = search.hops[static_cast<std::size_t>(best)];
    } else {
      const net::ShortestPathTree spf = net::dijkstra(g, member, excluded);
      if (!spf.reachable(tree.source())) return out;
      const std::vector<NodeId> path = spf.path_from_source(tree.source());
      double distance = 0.0;
      int hops = 0;
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        distance += g.link(*g.link_between(path[i], path[i + 1])).weight;
        ++hops;
        out.restoration_path.push_back(path[i]);
        if (on_tree[static_cast<std::size_t>(path[i + 1])] != 0) {
          out.restoration_path.push_back(path[i + 1]);
          out.recovered = true;
          out.reattach_node = path[i + 1];
          out.recovery_distance = distance;
          out.recovery_hops = hops;
          break;
        }
      }
      if (!out.recovered) out.restoration_path.clear();
    }
    if (out.recovered) {
      out.new_delay =
          out.recovery_distance + tree.delay_to_source(out.reattach_node);
    }
    return out;
  };

  // Nearest-first repair: shorter detours finish first and then assist.
  std::vector<char> pending(static_cast<std::size_t>(g.node_count()), 0);
  for (const NodeId m : lost) pending[static_cast<std::size_t>(m)] = 1;
  int remaining = report.disconnected_members;
  while (remaining > 0) {
    // Pre-pass: members whose node a previous repair already pulled back
    // on-tree simply rejoin in place.
    for (const NodeId m : lost) {
      if (!pending[static_cast<std::size_t>(m)]) continue;
      if (tree.on_tree(m)) {
        tree.graft(m, {m});
        pending[static_cast<std::size_t>(m)] = 0;
        --remaining;
        ++report.repaired_members;
      }
    }
    if (remaining == 0) break;

    RecoveryOutcome best;
    bool found = false;
    for (const NodeId m : lost) {
      if (!pending[static_cast<std::size_t>(m)]) continue;
      RecoveryOutcome out = recover_one(m);
      if (!out.recovered) continue;
      if (!found || out.recovery_distance < best.recovery_distance) {
        best = std::move(out);
        found = true;
      }
    }
    if (!found) {
      // Whoever is left is physically cut off.
      report.unrecoverable_members = remaining;
      break;
    }
    apply_recovery(tree, best);
    pending[static_cast<std::size_t>(best.member)] = 0;
    --remaining;
    ++report.repaired_members;
    report.total_recovery_distance += best.recovery_distance;
    report.total_recovery_hops += best.recovery_hops;
    report.outcomes.push_back(std::move(best));
  }
  return report;
}

void apply_recovery(MulticastTree& tree, const RecoveryOutcome& outcome) {
  if (!outcome.recovered) {
    throw std::invalid_argument("cannot apply an unsuccessful recovery");
  }
  if (!outcome.disconnected) return;  // nothing to change
  if (outcome.restoration_path.empty()) {
    throw std::logic_error("apply_recovery: empty restoration path");
  }
  // A previous member's repair may already have pulled part of this
  // member's restoration path back onto the tree (neighbor-assisted
  // recovery); graft only up to the first node that is on-tree by now.
  if (tree.on_tree(outcome.member)) {
    tree.graft(outcome.member, {outcome.member});
    return;
  }
  std::vector<NodeId> graft;
  for (const NodeId n : outcome.restoration_path) {
    graft.push_back(n);
    if (tree.on_tree(n)) break;
  }
  if (!tree.on_tree(graft.back())) {
    throw std::logic_error("restoration path never reaches the tree");
  }
  tree.graft(outcome.member, graft);
}

}  // namespace smrp::proto
