#include "smrp/recovery.hpp"

#include <memory>
#include <stdexcept>

namespace smrp::proto {

LinkId worst_case_failure_link(const MulticastTree& tree, NodeId member) {
  const std::vector<NodeId> path = tree.path_to_source(member);
  if (path.size() < 2) {
    throw std::invalid_argument(
        "worst-case failure needs an on-tree non-source member");
  }
  // path runs member → … → child-of-source → source; the incident link of
  // the source is the parent link of the penultimate entry.
  return tree.parent_link(path[path.size() - 2]);
}

NodeId worst_case_failure_node(const MulticastTree& tree, NodeId member) {
  const std::vector<NodeId> path = tree.path_to_source(member);
  if (path.size() < 2) {
    throw std::invalid_argument(
        "worst-case failure needs an on-tree non-source member");
  }
  return path[path.size() - 2];  // the source's child on the member's path
}

namespace {

std::vector<char> survivors_after(const MulticastTree& tree,
                                  const Failure& failure) {
  return failure.kind == Failure::Kind::kLink
             ? tree.surviving_after_link(failure.link)
             : tree.surviving_after_node(failure.node);
}

net::ExclusionSet exclusion_for(const net::Graph& g, const Failure& failure) {
  net::ExclusionSet excluded(g);
  if (failure.kind == Failure::Kind::kLink) {
    excluded.ban_link(failure.link);
  } else {
    excluded.ban_node(failure.node);
  }
  return excluded;
}

/// Callers without a shared oracle get a throwaway one: results are
/// bit-identical either way, the shared one just reuses buffers/caches.
net::RoutingOracle* ensure_oracle(const net::Graph& g,
                                  net::RoutingOracle* oracle,
                                  std::unique_ptr<net::RoutingOracle>& owned) {
  if (oracle != nullptr) return oracle;
  owned = std::make_unique<net::RoutingOracle>(g);
  return owned.get();
}

RecoveryOutcome init_outcome(const MulticastTree& tree, NodeId member,
                             const Failure& failure,
                             const std::vector<char>& survivors) {
  RecoveryOutcome out;
  out.member = member;
  out.failed_link = failure.link;
  out.failed_node = failure.node;
  if (!tree.is_member(member)) {
    throw std::invalid_argument("recovery is initiated by a member");
  }
  if (failure.kind == Failure::Kind::kNode && failure.node == member) {
    throw std::invalid_argument("the failed node cannot recover itself");
  }
  if (survivors[static_cast<std::size_t>(member)] != 0) {
    // The failure did not touch this member's path.
    out.disconnected = false;
    out.recovered = true;
    out.reattach_node = member;
    out.new_delay = tree.delay_to_source(member);
    return out;
  }
  out.disconnected = true;
  return out;
}

}  // namespace

RecoveryOutcome local_detour_recovery(const Graph& g,
                                      const MulticastTree& tree,
                                      NodeId member, const Failure& failure,
                                      net::RoutingOracle* oracle) {
  const std::vector<char> survivors = survivors_after(tree, failure);
  RecoveryOutcome out = init_outcome(tree, member, failure, survivors);
  if (!out.disconnected) return out;

  const net::ExclusionSet excluded = exclusion_for(g, failure);
  std::unique_ptr<net::RoutingOracle> owned;
  oracle = ensure_oracle(g, oracle, owned);
  // Survivors absorb the search: a restoration path never crosses one
  // surviving node on the way to another, so the path it yields is exactly
  // the set of new links brought into the tree.
  net::DetourSearch detour;
  detour.compute(*oracle, member, survivors, excluded);
  if (!detour.found()) return out;  // recovered stays false

  const NodeId best = detour.best_target();
  const net::ShortestPathTree& search = detour.search();
  out.recovered = true;
  out.reattach_node = best;
  out.restoration_path = search.path_from_source(best);  // member → … → best
  out.recovery_distance = search.dist[static_cast<std::size_t>(best)];
  out.recovery_hops = search.hops[static_cast<std::size_t>(best)];
  out.new_delay = out.recovery_distance + tree.delay_to_source(best);
  return out;
}

RecoveryOutcome local_detour_recovery(const Graph& g,
                                      const MulticastTree& tree,
                                      NodeId member, LinkId failed_link) {
  return local_detour_recovery(g, tree, member, Failure::of_link(failed_link));
}

RecoveryOutcome global_detour_recovery(const Graph& g,
                                       const MulticastTree& tree,
                                       NodeId member, const Failure& failure,
                                       net::RoutingOracle* oracle) {
  const std::vector<char> survivors = survivors_after(tree, failure);
  RecoveryOutcome out = init_outcome(tree, member, failure, survivors);
  if (!out.disconnected) return out;

  const net::ExclusionSet excluded = exclusion_for(g, failure);
  std::unique_ptr<net::RoutingOracle> owned;
  oracle = ensure_oracle(g, oracle, owned);
  // The reconverged unicast routing gives the member a new shortest path
  // toward the source; a PIM-style join travels along it and grafts at the
  // first router that is already on the surviving tree. Cacheable — the
  // search depends on the topology and failure only, not the tree.
  const net::RoutingOracle::TreePtr spf_tree = oracle->spf(member, excluded);
  const net::ShortestPathTree& spf = *spf_tree;
  if (!spf.reachable(tree.source())) return out;

  const std::vector<NodeId> path = spf.path_from_source(tree.source());
  double distance = 0.0;
  int hops = 0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const NodeId next = path[i + 1];
    distance += g.link(*g.link_between(path[i], next)).weight;
    ++hops;
    out.restoration_path.push_back(path[i]);
    if (survivors[static_cast<std::size_t>(next)] != 0) {
      out.restoration_path.push_back(next);
      out.recovered = true;
      out.reattach_node = next;
      out.recovery_distance = distance;
      out.recovery_hops = hops;
      out.new_delay = distance + tree.delay_to_source(next);
      return out;
    }
  }
  // The walk always terminates at the source, which survives by definition,
  // so reaching here means the path list was empty.
  out.restoration_path.clear();
  return out;
}

RecoveryOutcome global_detour_recovery(const Graph& g,
                                       const MulticastTree& tree,
                                       NodeId member, LinkId failed_link) {
  return global_detour_recovery(g, tree, member,
                                Failure::of_link(failed_link));
}

SessionRepairReport repair_session(const Graph& g, MulticastTree& tree,
                                   const Failure& failure,
                                   DetourPolicy policy,
                                   const net::ExclusionSet* already_failed,
                                   obs::Telemetry* telemetry,
                                   net::RoutingOracle* oracle) {
  // Per-member searches below go through the oracle; callers repairing
  // many failures in sequence pass theirs in so the workspace pool and
  // the SPF cache survive across repairs (each new failure is then one
  // extra ban over a cached exclusion — the incremental-repair case).
  std::unique_ptr<net::RoutingOracle> owned;
  oracle = ensure_oracle(g, oracle, owned);
  SessionRepairReport report;
  std::vector<NodeId> lost =
      failure.kind == Failure::Kind::kLink
          ? tree.sever(failure.link)
          : tree.sever_node(failure.node);
  report.disconnected_members = static_cast<int>(lost.size());

  net::ExclusionSet excluded =
      already_failed != nullptr ? *already_failed : net::ExclusionSet(g);
  if (failure.kind == Failure::Kind::kLink) {
    excluded.ban_link(failure.link);
  } else {
    excluded.ban_node(failure.node);
  }

  // The surviving tree as flags, kept in lockstep with every graft below.
  // After sever, every on-tree node survives by construction.
  std::vector<char> on_tree(static_cast<std::size_t>(g.node_count()), 0);
  for (const NodeId n : tree.on_tree_nodes()) {
    on_tree[static_cast<std::size_t>(n)] = 1;
  }

  // One search per lost member for the whole repair, not one per member
  // per round (the old O(lost² · Dijkstra) pattern). kLocal holds a
  // DetourSearch — the shared incremental nearest-target mechanism: when
  // a repair grafts new nodes, a cached member only improves via one of
  // those nodes (any path invalidated by the graft has a grafted node
  // strictly earlier on it, which the delta scan considers), so updating
  // against the delta is exact. kGlobal's SPF ignores the tree entirely:
  // one cached oracle tree, re-walked against the current on-tree flags
  // each round.
  struct Candidate {
    bool computed = false;
    net::DetourSearch detour;          ///< kLocal: absorbing search + best
    net::RoutingOracle::TreePtr spf;   ///< kGlobal: cached post-failure SPF
    RecoveryOutcome outcome;
  };
  std::vector<Candidate> cache(lost.size());

  const auto adopt_local = [&](Candidate& c, NodeId reattach) {
    const net::ShortestPathTree& search = c.detour.search();
    c.outcome.recovered = true;
    c.outcome.reattach_node = reattach;
    c.outcome.restoration_path = search.path_from_source(reattach);
    c.outcome.recovery_distance =
        search.dist[static_cast<std::size_t>(reattach)];
    c.outcome.recovery_hops = search.hops[static_cast<std::size_t>(reattach)];
    c.outcome.new_delay =
        c.outcome.recovery_distance + tree.delay_to_source(reattach);
  };

  const auto walk_global = [&](Candidate& c) {
    c.outcome.recovered = false;
    c.outcome.restoration_path.clear();
    if (!c.spf->reachable(tree.source())) return;
    const std::vector<NodeId> path = c.spf->path_from_source(tree.source());
    double distance = 0.0;
    int hops = 0;
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      distance += g.link(*g.link_between(path[i], path[i + 1])).weight;
      ++hops;
      c.outcome.restoration_path.push_back(path[i]);
      if (on_tree[static_cast<std::size_t>(path[i + 1])] != 0) {
        c.outcome.restoration_path.push_back(path[i + 1]);
        c.outcome.recovered = true;
        c.outcome.reattach_node = path[i + 1];
        c.outcome.recovery_distance = distance;
        c.outcome.recovery_hops = hops;
        c.outcome.new_delay = distance + tree.delay_to_source(path[i + 1]);
        return;
      }
    }
    c.outcome.restoration_path.clear();
  };

  const auto compute = [&](Candidate& c, NodeId member) {
    c.computed = true;
    c.outcome = RecoveryOutcome{};
    c.outcome.member = member;
    c.outcome.failed_link = failure.link;
    c.outcome.failed_node = failure.node;
    c.outcome.disconnected = true;
    if (policy == DetourPolicy::kLocal) {
      c.detour.compute(*oracle, member, on_tree, excluded);
      if (c.detour.found()) adopt_local(c, c.detour.best_target());
    } else {
      c.spf = oracle->spf(member, excluded);
      walk_global(c);
    }
  };

  const auto refresh = [&](Candidate& c, const std::vector<NodeId>& delta) {
    if (policy == DetourPolicy::kGlobal) {
      walk_global(c);
      return;
    }
    c.detour.add_targets(delta);
    if (c.detour.found() &&
        (!c.outcome.recovered ||
         c.detour.best_target() != c.outcome.reattach_node)) {
      adopt_local(c, c.detour.best_target());
    }
  };

  // Nearest-first repair: shorter detours finish first and then assist.
  std::vector<char> pending(static_cast<std::size_t>(g.node_count()), 0);
  for (const NodeId m : lost) pending[static_cast<std::size_t>(m)] = 1;
  int remaining = report.disconnected_members;
  std::vector<NodeId> delta;  // nodes the last applied repair grafted
  while (remaining > 0) {
    // Pre-pass: members whose node a previous repair already pulled back
    // on-tree simply rejoin in place.
    for (const NodeId m : lost) {
      if (!pending[static_cast<std::size_t>(m)]) continue;
      if (tree.on_tree(m)) {
        tree.graft(m, {m});
        pending[static_cast<std::size_t>(m)] = 0;
        --remaining;
        ++report.repaired_members;
      }
    }
    if (remaining == 0) break;

    std::size_t best_index = lost.size();
    for (std::size_t i = 0; i < lost.size(); ++i) {
      if (!pending[static_cast<std::size_t>(lost[i])]) continue;
      Candidate& c = cache[i];
      if (!c.computed) {
        compute(c, lost[i]);
      } else if (!delta.empty()) {
        refresh(c, delta);
      }
      if (!c.outcome.recovered) continue;
      if (best_index == lost.size() ||
          c.outcome.recovery_distance <
              cache[best_index].outcome.recovery_distance) {
        best_index = i;
      }
    }
    if (best_index == lost.size()) {
      // Whoever is left is physically cut off.
      report.unrecoverable_members = remaining;
      break;
    }
    RecoveryOutcome best = cache[best_index].outcome;
    delta.clear();
    for (const NodeId n : best.restoration_path) {
      if (tree.on_tree(n)) break;
      delta.push_back(n);
    }
    apply_recovery(tree, best);
    for (const NodeId n : delta) on_tree[static_cast<std::size_t>(n)] = 1;
    pending[static_cast<std::size_t>(best.member)] = 0;
    --remaining;
    ++report.repaired_members;
    report.total_recovery_distance += best.recovery_distance;
    report.total_recovery_hops += best.recovery_hops;
    report.outcomes.push_back(std::move(best));
  }
  if (telemetry != nullptr) {
    obs::MetricsRegistry& m = telemetry->metrics;
    m.counter("smrp.recovery.disconnected")
        .add(static_cast<std::uint64_t>(report.disconnected_members));
    m.counter("smrp.recovery.repaired")
        .add(static_cast<std::uint64_t>(report.repaired_members));
    m.counter("smrp.recovery.unrecoverable")
        .add(static_cast<std::uint64_t>(report.unrecoverable_members));
    obs::Histogram& rd_weight = m.histogram("smrp.recovery.rd_weight");
    obs::Histogram& rd_hops = m.histogram(
        "smrp.recovery.rd_hops",
        {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0});
    for (const RecoveryOutcome& outcome : report.outcomes) {
      rd_weight.record(outcome.recovery_distance);
      rd_hops.record(outcome.recovery_hops);
    }
  }
  return report;
}

void apply_recovery(MulticastTree& tree, const RecoveryOutcome& outcome) {
  if (!outcome.recovered) {
    throw std::invalid_argument("cannot apply an unsuccessful recovery");
  }
  if (!outcome.disconnected) return;  // nothing to change
  if (outcome.restoration_path.empty()) {
    throw std::logic_error("apply_recovery: empty restoration path");
  }
  // A previous member's repair may already have pulled part of this
  // member's restoration path back onto the tree (neighbor-assisted
  // recovery); graft only up to the first node that is on-tree by now.
  if (tree.on_tree(outcome.member)) {
    tree.graft(outcome.member, {outcome.member});
    return;
  }
  std::vector<NodeId> graft;
  for (const NodeId n : outcome.restoration_path) {
    graft.push_back(n);
    if (tree.on_tree(n)) break;
  }
  if (!tree.on_tree(graft.back())) {
    throw std::logic_error("restoration path never reaches the tree");
  }
  tree.graft(outcome.member, graft);
}

}  // namespace smrp::proto
