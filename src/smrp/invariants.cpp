#include "smrp/invariants.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <sstream>

namespace smrp::proto {

namespace {

std::string describe(net::NodeId n) {
  return "node " + std::to_string(n);
}

}  // namespace

std::string InvariantReport::to_string() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < violations.size(); ++i) {
    if (i != 0) out << "\n";
    out << violations[i];
  }
  return out.str();
}

InvariantChecker::InvariantChecker(const DistributedSession& session,
                                   const sim::SimNetwork& network)
    : session_(&session), network_(&network) {}

std::vector<char> InvariantChecker::up_component() const {
  const net::Graph& g = network_->graph();
  std::vector<char> in(static_cast<std::size_t>(g.node_count()), 0);
  const net::NodeId source = session_->source();
  if (!network_->node_up(source)) return in;
  std::queue<net::NodeId> frontier;
  frontier.push(source);
  in[static_cast<std::size_t>(source)] = 1;
  while (!frontier.empty()) {
    const net::NodeId u = frontier.front();
    frontier.pop();
    for (const net::Adjacency& adj : g.neighbors(u)) {
      if (!network_->link_up(adj.link) || !network_->node_up(adj.neighbor)) {
        continue;
      }
      if (in[static_cast<std::size_t>(adj.neighbor)] != 0) continue;
      in[static_cast<std::size_t>(adj.neighbor)] = 1;
      frontier.push(adj.neighbor);
    }
  }
  return in;
}

void InvariantChecker::check_structure(InvariantReport& report) const {
  const net::Graph& g = network_->graph();
  const net::NodeId source = session_->source();
  if (session_->parent_of(source) != net::kNoNode) {
    report.violations.push_back("source claims a parent");
  }
  for (net::NodeId n = 0; n < g.node_count(); ++n) {
    const net::NodeId parent = session_->parent_of(n);
    if (parent != net::kNoNode) {
      if (!session_->on_tree(n)) {
        report.violations.push_back(describe(n) +
                                    " has a parent but is not on-tree");
      }
      if (!g.valid_node(parent) || !g.link_between(n, parent)) {
        report.violations.push_back(describe(n) + " parent " +
                                    std::to_string(parent) +
                                    " is not a graph neighbor");
      }
    }
    for (const net::NodeId child : session_->children_of(n)) {
      if (!g.valid_node(child) || !g.link_between(n, child)) {
        report.violations.push_back(describe(n) + " child " +
                                    std::to_string(child) +
                                    " is not a graph neighbor");
      }
    }
    if (session_->seen_nonce_count(n) > DistributedSession::kSeenNonceCap) {
      report.violations.push_back(
          describe(n) + " holds " +
          std::to_string(session_->seen_nonce_count(n)) +
          " repair nonces (cap " +
          std::to_string(DistributedSession::kSeenNonceCap) + ")");
    }
    if (session_->on_tree(n) && session_->believed_shr(n) < 0) {
      report.violations.push_back(describe(n) + " believes a negative SHR (" +
                                  std::to_string(session_->believed_shr(n)) +
                                  ")");
    }
  }
}

void InvariantChecker::check_cycles(InvariantReport& report,
                                    bool allow_stale_cycles) const {
  const net::Graph& g = network_->graph();
  // Walk every parent chain; colour nodes by walk so each chain is O(V)
  // and a back-edge into the current walk is a cycle.
  const auto count = static_cast<std::size_t>(g.node_count());
  std::vector<int> visited_in(count, -1);
  std::vector<char> cleared(count, 0);
  for (net::NodeId start = 0; start < g.node_count(); ++start) {
    net::NodeId cur = start;
    while (cur != net::kNoNode && cleared[static_cast<std::size_t>(cur)] == 0) {
      if (visited_in[static_cast<std::size_t>(cur)] == start) {
        if (!allow_stale_cycles) {
          report.violations.push_back("parent cycle through " + describe(cur));
        }
        break;
      }
      visited_in[static_cast<std::size_t>(cur)] = start;
      cur = session_->parent_of(cur);
    }
    // Everything touched this walk either reached the chain's end or the
    // cycle has been reported; never walk it again.
    cur = start;
    while (cur != net::kNoNode && cleared[static_cast<std::size_t>(cur)] == 0) {
      cleared[static_cast<std::size_t>(cur)] = 1;
      cur = session_->parent_of(cur);
    }
  }
}

InvariantReport InvariantChecker::audit() const {
  InvariantReport report;
  check_structure(report);
  check_cycles(report, /*allow_stale_cycles=*/true);
  return report;
}

InvariantReport InvariantChecker::audit_quiescent(
    sim::Time quiescent_since) const {
  InvariantReport report;
  check_structure(report);
  check_cycles(report, /*allow_stale_cycles=*/false);

  const net::Graph& g = network_->graph();
  const net::NodeId source = session_->source();
  const std::vector<char> reachable = up_component();
  const auto in_component = [&](net::NodeId n) {
    return reachable[static_cast<std::size_t>(n)] != 0;
  };

  if (!network_->node_up(source)) {
    // Source permanently dead: nothing further is owed to anyone.
    return report;
  }

  const auto snapshot = session_->snapshot_tree();

  for (net::NodeId n = 0; n < g.node_count(); ++n) {
    if (!in_component(n)) continue;  // physically cut off: allowed dark

    // Every member the surviving topology still connects to the source
    // must be on-tree with a live parent chain ending at the source.
    const bool must_serve = session_->is_member(n);
    if (must_serve && !session_->on_tree(n)) {
      report.violations.push_back(describe(n) +
                                  " is a reachable member but off-tree");
      continue;
    }
    if (!session_->on_tree(n)) continue;

    if (session_->is_stranded(n)) {
      report.violations.push_back(describe(n) +
                                  " is stranded despite a live path");
    }

    // Parent chain: every hop up, every link up, terminating at the source.
    net::NodeId cur = n;
    int guard = 0;
    bool chain_ok = true;
    while (cur != source) {
      const net::NodeId parent = session_->parent_of(cur);
      if (parent == net::kNoNode) {
        report.violations.push_back(describe(n) + " chain orphans at " +
                                    describe(cur));
        chain_ok = false;
        break;
      }
      const auto link = g.link_between(cur, parent);
      if (!link || !network_->link_up(*link) || !network_->node_up(parent)) {
        report.violations.push_back(describe(n) + " chain crosses a dead " +
                                    "hop at " + describe(cur));
        chain_ok = false;
        break;
      }
      // Agreement child -> parent: the parent must know about us.
      const std::vector<net::NodeId> kids = session_->children_of(parent);
      if (std::find(kids.begin(), kids.end(), cur) == kids.end()) {
        report.violations.push_back(describe(parent) +
                                    " does not list its child " +
                                    describe(cur));
        chain_ok = false;
        break;
      }
      cur = parent;
      if (++guard > g.node_count()) {
        chain_ok = false;  // cycle, already reported by check_cycles
        break;
      }
    }

    // Agreement parent -> child: everyone we forward to claims us upstream.
    for (const net::NodeId child : session_->children_of(n)) {
      if (!network_->node_up(child)) {
        report.violations.push_back(describe(n) + " retains dead child " +
                                    describe(child));
        continue;
      }
      if (session_->parent_of(child) != n) {
        report.violations.push_back(describe(n) + " lists child " +
                                    describe(child) +
                                    " which claims a different parent");
      }
    }

    // Eventual service: fresh data since the network went quiescent.
    if (must_serve && chain_ok) {
      const sim::Time last = session_->last_data_at(n);
      if (last < quiescent_since) {
        report.violations.push_back(
            describe(n) + " has received no data since quiescence (last at " +
            std::to_string(last) + "ms)");
      }
    }

    // SHR within bounds and consistent with Eq. 2 on the analytic tree.
    if (snapshot && snapshot->on_tree(n) && chain_ok) {
      const int believed = session_->believed_shr(n);
      const int exact = snapshot->shr(n);
      if (believed != exact) {
        report.violations.push_back(
            describe(n) + " believes SHR " + std::to_string(believed) +
            " but the tree computes " + std::to_string(exact));
      }
    }
  }
  if (!snapshot) {
    report.violations.push_back(
        "distributed state has no consistent tree snapshot at quiescence");
  }
  return report;
}

sim::Time service_restoration_bound(const SessionConfig& session,
                                    const routing::RoutingConfig& routing,
                                    const net::Graph& graph) {
  // Failure detection: the upstream timeout plus up to two maintenance
  // ticks of scheduling skew (staggered timers, restart observation).
  const sim::Time detect =
      session.upstream_timeout + 2.0 * session.refresh_interval;

  // Full expanding-ring schedule: TTL doubles per ring, pacing grows by
  // repair_backoff per ring plus jitter headroom.
  int rings = 1;
  for (int ttl = 1; ttl * 2 <= session.max_repair_ttl; ttl *= 2) ++rings;
  sim::Time ring_wait = 0.0;
  sim::Time pacing = session.repair_retry * (1.0 + session.repair_jitter);
  for (int r = 0; r < rings; ++r) {
    ring_wait += pacing;
    pacing *= session.repair_backoff;
  }

  // IGP reconvergence after the last topology change: neighbour death
  // detection, LSA reflooding (ticks alongside HELLOs), SPF hold-down.
  const sim::Time igp_reconverge =
      routing.dead_interval + 2.0 * routing.hello_interval + routing.spf_delay;

  // Soft-state and SHR re-propagation travel one hop per refresh tick, in
  // both directions, across at most the network depth.
  const sim::Time state_converge =
      2.0 * graph.node_count() * session.refresh_interval +
      session.state_timeout;

  // Repairs can cascade: a member may graft below a subtree whose own head
  // is still repairing, or the routed-join fallback may itself race the
  // IGP. Three full detect-and-repair rounds cover every cascade seen in
  // practice with a comfortable margin; 1.5x is engineering slack on top.
  return 1.5 * (igp_reconverge + 3.0 * (detect + ring_wait) + state_converge);
}

}  // namespace smrp::proto
