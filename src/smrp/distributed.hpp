// Distributed, message-passing realisation of the multicast session on the
// discrete-event simulator: soft-state join/prune, SHR maintenance via
// periodic parent/child exchanges (§3.2.1), data forwarding, failure
// detection, and the two recovery styles under comparison —
//   * SMRP mode: expanding-ring local repair to the nearest on-tree node
//     that still receives data (the local detour),
//   * PIM mode: periodic routed joins toward the source that can only heal
//     after the unicast link-state routing reconverges (the global
//     detour), reproducing the ICNP'00 observation the paper builds on.
//
// The centralised engine (`SmrpTreeBuilder`) is the reference; tests check
// that, in a quiescent network, the distributed protocol converges to a
// tree whose member service (delay, structure) matches a valid tree and
// that its SHR values agree with Eq. 2.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "multicast/tree.hpp"
#include "net/rng.hpp"
#include "net/routing_oracle.hpp"
#include "net/shortest_path.hpp"
#include "obs/telemetry.hpp"
#include "routing/convergence.hpp"
#include "routing/link_state.hpp"
#include "sim/network.hpp"
#include "smrp/config.hpp"
#include "smrp/flat_map.hpp"

namespace smrp::proto {

using sim::Time;

struct SessionConfig {
  SmrpConfig smrp;                  ///< path-selection knobs (SMRP mode)
  Time refresh_interval = 100.0;    ///< soft-state + SHR exchange cadence (ms)
  Time state_timeout = 350.0;       ///< child state expires after this silence
  Time upstream_timeout = 350.0;    ///< upstream declared dead after this
  Time data_interval = 25.0;        ///< source payload cadence
  Time repair_retry = 80.0;         ///< base expanding-ring pacing (SMRP)
  int max_repair_ttl = 16;          ///< ring search cap
  int join_ttl = 64;                ///< hop budget for routed (PIM) joins
  /// Hardened repair path (chaos survival): exponential backoff with
  /// jitter between repair rings, fallback from the exhausted ring search
  /// to a routed (global) join, crash-restart re-join, and partition-aware
  /// stranding with automatic rejoin once the IGP heals. `false` reverts
  /// to the pre-hardening behaviour (fixed pacing, silent give-up) and
  /// exists for A/B comparison in the chaos regression suite.
  bool hardened = true;
  double repair_backoff = 2.0;  ///< ring-pacing multiplier per ring
  double repair_jitter = 0.25;  ///< ± fraction of pacing jitter per ring
  std::uint64_t jitter_seed = 0xc4a05c4a05ULL;  ///< repair-jitter RNG seed
  /// Hardened data-plane failure detection: payloads arrive every
  /// data_interval, so this much silence on a previously served node
  /// triggers repair immediately — well before the control-plane
  /// upstream_timeout and (unlike the PIM detour) before unicast routing
  /// reconverges. Clamped to at least 3 * data_interval so slow pumps do
  /// not false-trigger; transient loss must kill that many consecutive
  /// payloads to cause a spurious (and harmless) repair.
  Time data_timeout = 150.0;
  /// Condition II cadence: a member re-runs path selection every this
  /// many maintenance ticks (§3.2.3's periodic timer). Condition I fires
  /// on SHR growth per SmrpConfig::reshape_shr_delta. Both honour
  /// smrp.enable_reshaping.
  int reshape_every_ticks = 10;
  /// In-protocol convergence detection (DESIGN.md §13): every on-tree
  /// node piggybacks a termination-detection wave on the refresh traffic
  /// it already sends, and the source detects — from protocol messages
  /// alone — when restoration has completed. Pure observation unless
  /// adaptive_triggers is set; disabling it only stops the wave fields
  /// from being computed.
  routing::ConvergenceConfig convergence;
  /// Opt-in adaptive triggers driven by the detection machinery instead
  /// of fixed timers: a repairing node whose local control plane has
  /// quiesced and re-learned a route to the source aborts the ring
  /// escalation for an immediate routed fallback, and the periodic
  /// (Condition II) reshape waits for the source's converged verdict.
  /// Off by default — the baseline keeps the timer behaviour for A/B.
  bool adaptive_triggers = false;
  enum class Mode { kSmrp, kPimSpf } mode = Mode::kSmrp;
  /// Test-only protocol mutations for the expectations gate: each one
  /// breaks exactly one safety property the core ruleset (obs/expect)
  /// must catch under chaos. Never enable outside tests.
  struct Mutations {
    /// Drop the on-tree/from-parent acceptance guard: any node that hears
    /// a payload floods it to all its neighbors (dedup by seq only).
    bool forward_off_tree = false;
    /// Ignore max_repair_ttl: the expanding-ring search keeps widening
    /// forever instead of failing over to the routed join.
    bool ignore_ring_budget = false;
  } mutations;
};

/// One multicast session: hosts the per-node protocol agents.
class DistributedSession {
 public:
  DistributedSession(sim::Simulator& simulator, sim::SimNetwork& network,
                     routing::LinkStateRouting& routing, net::NodeId source,
                     SessionConfig config = {});

  /// Bring the source online and start the data pump + maintenance timers.
  void start();

  /// Issue a join for `member` now (protocol messages flow from here on).
  void join(net::NodeId member);

  /// Issue a leave for `member` now.
  void leave(net::NodeId member);

  /// Demux entry point; returns true if the message belonged to this
  /// session (routing messages return false).
  bool handle(net::NodeId at, net::NodeId from, const sim::Message& message);

  // -- Observability ---------------------------------------------------------

  [[nodiscard]] net::NodeId source() const noexcept { return source_; }
  [[nodiscard]] const SessionConfig& config() const noexcept { return config_; }
  [[nodiscard]] bool is_member(net::NodeId n) const;
  [[nodiscard]] bool on_tree(net::NodeId n) const;
  [[nodiscard]] net::NodeId parent_of(net::NodeId n) const;
  /// Children `n` currently believes it forwards to, ascending by id.
  [[nodiscard]] std::vector<net::NodeId> children_of(net::NodeId n) const;
  /// Whether `n` has an expanding-ring repair in flight.
  [[nodiscard]] bool is_repairing(net::NodeId n) const;
  /// Whether `n` gave up repairing because the source looks partitioned
  /// away (it rejoins automatically once routing re-learns a path).
  [[nodiscard]] bool is_stranded(net::NodeId n) const;
  /// Repair-nonce dedup entries held at `n` (bounded by kSeenNonceCap).
  [[nodiscard]] std::size_t seen_nonce_count(net::NodeId n) const;
  /// Time of the last payload seen at `n` (< 0 if none yet).
  [[nodiscard]] Time last_data_at(net::NodeId n) const;
  /// SHR(S, n) as the distributed state currently believes.
  [[nodiscard]] int believed_shr(net::NodeId n) const;

  /// Cap on per-node repair-nonce dedup state. Without a cap, every repair
  /// query ever seen stays resident — unbounded memory on long chaos runs.
  static constexpr std::size_t kSeenNonceCap = 256;

  /// Build an analytic MulticastTree from the distributed state (members'
  /// parent chains). Returns nullopt while the state is inconsistent
  /// (mid-churn cycles or orphaned members).
  [[nodiscard]] std::optional<mcast::MulticastTree> snapshot_tree() const;

  [[nodiscard]] int repairs_started() const noexcept { return repairs_started_; }
  [[nodiscard]] int repairs_completed() const noexcept {
    return repairs_completed_;
  }
  [[nodiscard]] int reshapes_performed() const noexcept {
    return reshapes_performed_;
  }

  /// Source-side in-protocol convergence verdict (DESIGN.md §13): whether
  /// the source currently believes the tree has converged, judged purely
  /// from the piggybacked detection wave.
  [[nodiscard]] bool convergence_detected() const noexcept {
    return conv_detector_.converged();
  }
  /// Detection epochs declared by the source so far.
  [[nodiscard]] std::uint64_t convergence_detections() const noexcept {
    return conv_detector_.detections();
  }

  /// Attach (or detach with nullptr) the telemetry bundle; not owned.
  /// Opens causal episode spans for every service interruption —
  ///   outage (per-node loss of payload service)
  ///     └─ repair (one expanding-ring episode; count == repairs_started())
  ///         └─ ring (one TTL-limited query flood)
  ///     └─ graft | fallback (the leg that restored service)
  /// plus join/leave/reshape spans and the `smrp.proto.*` metrics.
  /// Telemetry is pure observation: it never touches protocol state, the
  /// event queue, or any RNG, so runs are bit-identical attached or not.
  void attach_telemetry(obs::Telemetry* telemetry);

  struct ChildInfo {
    Time last_refresh = 0.0;
    int subtree_members = 0;
    /// Convergence wave (DESIGN.md §13): the child's reported subtree
    /// quiet-since and when that report arrived (< 0 before the first —
    /// an unreported child cannot vouch for its subtree).
    double conv_quiet_since = routing::kNotQuiet;
    Time conv_report_at = -1.0;
  };

  struct AgentState {
    bool is_member = false;
    bool on_tree = false;
    net::NodeId parent = net::kNoNode;
    /// Child table, ascending by node id (iteration order is part of the
    /// determinism contract). Flat storage: one vector per agent instead
    /// of one red-black node per child — see flat_map.hpp.
    FlatMap<net::NodeId, ChildInfo> children;
    int shr_upstream = 0;       ///< SHR(S, parent) learned from ShrUpdate
    Time last_upstream = -1.0;  ///< last ShrUpdate from the parent
    Time last_data = -1.0;      ///< last payload forwarded/consumed here
    std::uint64_t last_seq = 0;
    // SMRP repair machinery.
    bool repairing = false;
    std::uint64_t repair_nonce = 0;
    int repair_ttl = 1;
    int repair_ring = 0;  ///< rings fired this repair; drives the backoff
    /// Gave up on repair because the source is unreachable even by the
    /// IGP; cleared when data returns or a route reappears.
    bool stranded = false;
    /// Set while the node is down so the first maintenance tick after a
    /// restart can tell "just rebooted" from "always up".
    bool observed_down = false;
    /// Until this time, a freshly installed graft/fallback join is given
    /// the benefit of the doubt: dead-upstream detection is suppressed so
    /// the new branch can settle — WITHOUT faking data freshness, which
    /// would let service-dead nodes answer repair queries and weld grafts
    /// into zombie cycles.
    Time repair_grace = -1.0;
    /// A data-silence watchdog event is pending for this node.
    bool watchdog_armed = false;
    /// Recent repair nonces, dedup set + FIFO eviction order (bounded by
    /// kSeenNonceCap; duplicates arrive close together in time).
    std::set<std::uint64_t> seen_nonces;
    std::deque<std::uint64_t> nonce_order;
    // Reshaping state (§3.2.3).
    int shr_baseline = -1;  ///< SHR at last (re)join; Condition I reference
    int ticks_since_reshape_check = 0;
    // Convergence detection (DESIGN.md §13).
    routing::QuietTracker conv_local;  ///< local quiescence latch
    /// Source verdict propagated down via ShrUpdate (set directly by the
    /// detector at the source itself); gates adaptive reshaping.
    bool conv_converged = false;
  };

  /// Test-only backdoor: direct mutable access to a node's raw protocol
  /// state so the invariant checker's negative suite can craft each
  /// violation it claims to detect (tests/smrp/test_invariants.cpp).
  /// Never called by the protocol.
  [[nodiscard]] AgentState& agent_state_for_tests(net::NodeId n) {
    return agent(n);
  }

 private:
  /// Telemetry-side shadow state, deliberately OUTSIDE AgentState: a
  /// crash-restart wipes the agent's soft state, but the observer must
  /// keep its open spans (the outage spans the crash caused) and the
  /// pre-crash payload clock so interruption totals match what an
  /// external gap measurement over the payload stream would report.
  struct NodeObs {
    obs::SpanId outage = obs::kNoSpan;
    obs::SpanId repair = obs::kNoSpan;
    obs::SpanId ring = obs::kNoSpan;
    obs::SpanId graft = obs::kNoSpan;
    obs::SpanId fallback = obs::kNoSpan;
    obs::SpanId join = obs::kNoSpan;
    obs::SpanId reshape = obs::kNoSpan;
    /// Rejoin leg of an outage: a crash-restart / stranded / PIM routed
    /// re-join issued while the node's service is down.
    obs::SpanId rejoin = obs::kNoSpan;
    double last_payload = -1.0;  ///< survives crashes, unlike last_data
    int rings_episode = 0;
    /// Observational tree-membership epoch: bumped whenever the node's
    /// parent is seen to differ from the last forward; stamped on forward
    /// events so a trace consumer can correlate forwards with tree
    /// generations.
    std::uint64_t epoch = 0;
    net::NodeId last_parent = net::kNoNode;
  };

  [[nodiscard]] AgentState& agent(net::NodeId n);
  [[nodiscard]] const AgentState& agent(net::NodeId n) const;

  // -- Telemetry hooks (all no-ops when telemetry_ == nullptr) ---------------

  /// Open the per-node outage span if none is open; stamps
  /// `service_lost_at` with the last payload time so total interruption
  /// can be reconstructed payload-to-payload.
  void tl_open_outage(net::NodeId n);
  /// Payload accepted at `n`: service is (re)stored, so close every open
  /// episode span bottom-up and advance the payload clock.
  void tl_on_data(net::NodeId n);
  /// Crash-restart at `n`: in-flight repair machinery died with the node.
  void tl_on_restart(net::NodeId n, bool was_member);
  /// `n` pruned itself off the tree: open episodes are moot, not failed.
  void tl_on_prune(net::NodeId n);
  /// A routed (re)join issued while `n`'s service is down: open the
  /// rejoin leg under the outage span (idempotent while one is open).
  void tl_open_rejoin(net::NodeId n);
  /// Record a `forward` event: `n` sent payload `seq` to `to`. `on_tree`
  /// and `from_parent` are ground truth at send time; the checker's
  /// forward-* rules require both.
  void tl_event_forward(net::NodeId n, std::uint64_t seq, bool on_tree,
                        bool from_parent);
  /// Record a `deliver` event: member `n` accepted payload `seq`.
  void tl_event_deliver(net::NodeId n, std::uint64_t seq);

  /// Members in the subtree rooted here, per current child reports.
  [[nodiscard]] int local_member_count(const AgentState& s) const;

  /// "Connected to the source" in the data-plane sense.
  [[nodiscard]] bool upstream_alive(net::NodeId n) const;

  void pump_data();
  void maintenance(net::NodeId n);
  /// Run the mode-appropriate join machinery for `member` (assumes the
  /// member flag is already set); shared by join(), crash-restart re-join,
  /// and the post-partition rejoin.
  void initiate_join(net::NodeId member);
  /// Crash semantics: wipe the agent's protocol soft state (a rebooted
  /// router has lost its RAM), keep application-level membership, and
  /// rejoin if the node was a member.
  void restart_agent(net::NodeId n);
  void send_join_along(net::NodeId member, const std::vector<net::NodeId>& path);
  void send_routed_join(net::NodeId from_member);
  /// Mode-appropriate reaction to a dead upstream: expanding-ring repair
  /// or stranded-rejoin (SMRP), periodic routed re-join (PIM). Shared by
  /// the maintenance tick and the data-silence watchdog.
  void react_to_dead_upstream(net::NodeId n);
  /// Hardened fast failure detection: fires data_timeout after the last
  /// payload; silence on a served node starts repair without waiting for
  /// the control-plane upstream_timeout.
  void data_watchdog(net::NodeId n);
  [[nodiscard]] Time watchdog_window() const noexcept;
  void start_repair(net::NodeId n);
  void fire_repair_ring(net::NodeId n);
  /// Shared tail of the ring search: close the repair episode and either
  /// fall back to a routed join or go stranded. `adaptive` marks the
  /// convergence-triggered early abort (spans close superseded, not
  /// failed — the search was cut short, it did not exhaust its budget).
  void repair_give_up(net::NodeId n, bool adaptive);

  // -- Convergence detection (DESIGN.md §13) ---------------------------------

  /// Local quiescence predicate at `n`: control plane settled (no pending
  /// SPF, no recent LSA churn), repair machinery idle, graft grace over,
  /// and — on served paths — the data-plane watchdog fed.
  [[nodiscard]] bool conv_locally_quiet(net::NodeId n, Time now) const;
  /// Control-plane half of the predicate, which is also what the adaptive
  /// fallback needs: unicast routing around `n` has settled.
  [[nodiscard]] bool conv_routing_quiet(net::NodeId n, Time now) const;
  /// Fold `n`'s own quiet latch (updated here) with its children's
  /// piggybacked reports; silent or never-reporting children poison it.
  [[nodiscard]] double conv_subtree_quiet_since(net::NodeId n, Time now);
  /// Source-side detector step plus telemetry: on detection, confirm
  /// every restored outage episode awaiting its honest end.
  void conv_step(double aggregate_quiet_since, Time now);
  /// Re-run path selection for member `n` against the current distributed
  /// state; switch upstream (make-before-break) when strictly better.
  bool attempt_reshape(net::NodeId n);
  /// Currently failed links/nodes as an exclusion set (IGP knowledge).
  [[nodiscard]] net::ExclusionSet down_components() const;
  void prune_self_if_useless(net::NodeId n);

  void on_join(net::NodeId at, net::NodeId from, const sim::JoinReqMsg& msg);
  void on_leave(net::NodeId at, net::NodeId from);
  void on_refresh(net::NodeId at, net::NodeId from,
                  const sim::StateRefreshMsg& msg);
  void on_shr_update(net::NodeId at, net::NodeId from,
                     const sim::ShrUpdateMsg& msg);
  void on_data(net::NodeId at, net::NodeId from, const sim::DataMsg& msg);
  void on_repair_query(net::NodeId at, net::NodeId from,
                       sim::RepairQueryMsg msg);
  void on_repair_resp(net::NodeId at, net::NodeId from,
                      const sim::RepairRespMsg& msg);

  sim::Simulator* simulator_;
  sim::SimNetwork* network_;
  routing::LinkStateRouting* routing_;
  net::NodeId source_;
  SessionConfig config_;
  /// Shared SPF service for routed-join fallbacks and reshape decisions.
  /// Down components are expressed as ExclusionSets, so the same cached
  /// tree serves every agent seeing the same failure state. unique_ptr:
  /// the oracle holds a mutex and is immovable.
  const std::unique_ptr<net::RoutingOracle> oracle_;
  net::Rng jitter_rng_;
  /// Source-side detector over the root aggregate of the piggybacked
  /// wave. Runs whether or not telemetry is attached (adaptive triggers
  /// act on it), but is pure computation on protocol state — no events,
  /// no randomness — so bit-identity across attach states holds.
  routing::ConvergenceDetector conv_detector_;
  /// Restored outage episodes awaiting the source's next detection (the
  /// episode's honest, in-protocol end). Telemetry-only bookkeeping:
  /// populated solely while a telemetry bundle is attached.
  struct PendingOutage {
    net::NodeId node = net::kNoNode;
    obs::SpanId outage = obs::kNoSpan;
    double lost_at = 0.0;     ///< service_lost_at of the outage span
    double restored_at = 0.0; ///< when the payload gap closed (oracle end)
    double total_ms = 0.0;    ///< oracle interruption total
  };
  std::vector<PendingOutage> conv_pending_;
  std::vector<AgentState> agents_;
  std::uint64_t data_seq_ = 0;
  std::uint64_t nonce_counter_ = 0;
  int repairs_started_ = 0;
  int repairs_completed_ = 0;
  int reshapes_performed_ = 0;
  bool started_ = false;
  // Telemetry handles, cached at attach time (no hot-path map lookups).
  obs::Telemetry* telemetry_ = nullptr;
  std::vector<NodeObs> node_obs_;
  obs::Counter* c_watchdog_ = nullptr;
  obs::Counter* c_rings_ = nullptr;
  obs::Counter* c_fallbacks_ = nullptr;
  obs::Counter* c_stranded_ = nullptr;
  obs::Counter* c_routed_joins_ = nullptr;
  obs::Counter* c_repairs_started_ = nullptr;
  obs::Counter* c_repairs_completed_ = nullptr;
  obs::Counter* c_reshapes_ = nullptr;
  obs::Histogram* h_outage_ms_ = nullptr;
  obs::Histogram* h_rings_ = nullptr;
  obs::Histogram* h_join_ms_ = nullptr;
  obs::Counter* c_conv_detections_ = nullptr;
  obs::Counter* c_conv_adaptive_fallbacks_ = nullptr;
  obs::Gauge* g_conv_converged_ = nullptr;
  obs::Gauge* g_conv_quiet_ms_ = nullptr;
  obs::Histogram* h_conv_skew_ = nullptr;
};

}  // namespace smrp::proto
