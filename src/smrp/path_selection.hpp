// SMRP path selection (§3.2.2): enumerate one candidate per possible merge
// node and apply the Path Selection Criterion —
//   minimise SHR(S, merge) subject to D(S,NR) ≤ (1 + D_thresh)·D_SPF(S,NR),
// ties broken by the shorter path.
#pragma once

#include <optional>
#include <vector>

#include "multicast/tree.hpp"
#include "net/routing_oracle.hpp"
#include "net/shortest_path.hpp"
#include "smrp/config.hpp"

namespace smrp::proto {

using mcast::MulticastTree;
using net::Graph;
using net::LinkId;
using net::NodeId;

/// One admissible way for a joining/reshaping node to reach the tree.
struct JoinCandidate {
  NodeId merge_node = net::kNoNode;
  /// Graft node sequence: joining node → … → merge node (merge included).
  std::vector<NodeId> graft;
  double graft_delay = 0.0;  ///< weight of the graft only
  double total_delay = 0.0;  ///< graft + on-tree delay of the merge node
  int shr = 0;               ///< SHR(S, merge), adjusted during reshaping
  bool within_bound = false; ///< satisfies the D_thresh constraint
};

/// Outcome of running the selection criterion.
struct Selection {
  JoinCandidate chosen;
  bool used_fallback = false;    ///< no candidate met the bound
  int candidate_count = 0;       ///< candidates enumerated (all, even inadmissible)
  double spf_delay = 0.0;        ///< D_SPF(S, NR), the bound's baseline
};

/// Enumerate candidates for `joiner` per `config.graft_mode` (one per
/// admissible on-tree merge node; a graft never crosses the tree before
/// its merge node). If `reshaping_member` is set, candidates are computed
/// for moving that member's subtree: its descendants are banned from
/// grafts and from the merge set, and SHR values are adjusted per §3.2.3.
/// `unusable` optionally carries failed links/nodes that grafts must
/// avoid (e.g. from the unicast routing's link-state database).
/// `oracle`, when provided, serves the searches: first-hit enumerations
/// hit its SPF-tree cache, absorbing enumerations lease its pooled
/// workspaces; without one a local workspace runs everything fresh.
[[nodiscard]] std::vector<JoinCandidate> enumerate_candidates(
    const Graph& g, const MulticastTree& tree, NodeId joiner,
    double spf_delay, const SmrpConfig& config,
    std::optional<NodeId> reshaping_member = std::nullopt,
    const net::ExclusionSet* unusable = nullptr,
    net::RoutingOracle* oracle = nullptr);

/// Apply the Path Selection Criterion to `candidates`. Returns nullopt when
/// the candidate list is empty or (with fallback disabled) nothing meets
/// the delay bound.
[[nodiscard]] std::optional<Selection> select_path(
    std::vector<JoinCandidate> candidates, double spf_delay,
    const SmrpConfig& config);

/// Convenience: enumerate + select for a fresh join of `joiner`.
[[nodiscard]] std::optional<Selection> select_join_path(
    const Graph& g, const MulticastTree& tree, NodeId joiner,
    double spf_delay, const SmrpConfig& config,
    net::RoutingOracle* oracle = nullptr);

}  // namespace smrp::proto
