#include "smrp/tree_builder.hpp"

#include <stdexcept>

namespace smrp::proto {

bool graft_rewalks_attachment(const MulticastTree& tree, NodeId member,
                              const std::vector<NodeId>& graft) {
  if (graft.empty() || graft.front() != member) return false;
  NodeId cur = member;
  for (std::size_t i = 1; i < graft.size(); ++i) {
    if (!tree.on_tree(cur) || tree.parent(cur) != graft[i]) return false;
    cur = graft[i];
  }
  return graft.size() > 1;
}

SmrpTreeBuilder::SmrpTreeBuilder(const Graph& g, NodeId source,
                                 SmrpConfig config, net::RoutingOracle* oracle)
    : g_(&g),
      config_(config),
      tree_(g, source),
      owned_oracle_(oracle == nullptr
                        ? std::make_unique<net::RoutingOracle>(g)
                        : nullptr),
      oracle_(oracle != nullptr ? oracle : owned_oracle_.get()),
      spf_from_source_(oracle_->spf(source)),
      shr_baseline_(static_cast<std::size_t>(g.node_count()), -1) {}

double SmrpTreeBuilder::spf_delay(NodeId n) const {
  if (!g_->valid_node(n)) throw std::out_of_range("bad node");
  return spf_from_source_->dist[static_cast<std::size_t>(n)];
}

void SmrpTreeBuilder::record_baseline(NodeId member) {
  shr_baseline_[static_cast<std::size_t>(member)] = tree_.shr(member);
}

JoinOutcome SmrpTreeBuilder::join(NodeId member) {
  JoinOutcome outcome;
  if (member == tree_.source()) {
    throw std::invalid_argument("the source cannot join its own session");
  }
  if (tree_.is_member(member)) {
    outcome.joined = true;  // idempotent re-join
    outcome.merge_node = member;
    outcome.total_delay = tree_.delay_to_source(member);
    return outcome;
  }
  const double spf = spf_delay(member);
  if (spf == net::kInfinity) return outcome;  // unreachable from the source

  const std::optional<Selection> selection =
      select_join_path(*g_, tree_, member, spf, config_, oracle_);
  if (!selection) return outcome;

  tree_.graft(member, selection->chosen.graft);
  record_baseline(member);

  outcome.joined = true;
  outcome.used_fallback = selection->used_fallback;
  outcome.merge_node = selection->chosen.merge_node;
  outcome.total_delay = tree_.delay_to_source(member);
  if (selection->used_fallback) ++fallback_joins_;

  if (config_.enable_reshaping) {
    outcome.reshapes_triggered = condition_one_sweep();
  }
  return outcome;
}

JoinOutcome SmrpTreeBuilder::join_along(NodeId member,
                                        const std::vector<NodeId>& graft) {
  JoinOutcome outcome;
  if (tree_.is_member(member)) {
    outcome.joined = true;
    outcome.merge_node = member;
    outcome.total_delay = tree_.delay_to_source(member);
    return outcome;
  }
  // Externally supplied grafts (query scheme, scripted scenarios) are
  // unvalidated input: an empty graft or one that never reaches the tree
  // is a failed join, not UB — mirroring the restoration-path guard in
  // apply_recovery().
  if (graft.empty() || !tree_.on_tree(graft.back())) return outcome;
  tree_.graft(member, graft);
  record_baseline(member);
  outcome.joined = true;
  outcome.merge_node = graft.back();
  outcome.total_delay = tree_.delay_to_source(member);
  if (config_.enable_reshaping) {
    outcome.reshapes_triggered = condition_one_sweep();
  }
  return outcome;
}

void SmrpTreeBuilder::leave(NodeId member) {
  tree_.leave(member);
  shr_baseline_[static_cast<std::size_t>(member)] = -1;
}

bool SmrpTreeBuilder::try_reshape(NodeId member) {
  if (!tree_.is_member(member)) return false;
  const NodeId up = tree_.parent(member);
  if (up == net::kNoNode) return false;

  const double spf = spf_delay(member);
  std::vector<JoinCandidate> candidates = enumerate_candidates(
      *g_, tree_, member, spf, config_, member, nullptr, oracle_);

  // The comparison baseline: the member's current merge point is its
  // upstream node; adjust its SHR exactly as candidate SHRs are adjusted
  // (§3.2.3: "the value of SHR may be inaccurate and should be adjusted
  // before the path comparison is made").
  const int current_shr = tree_.shr_excluding_subtree(up, member);
  const double current_delay = tree_.delay_to_source(member);

  const JoinCandidate* best = nullptr;
  for (const JoinCandidate& c : candidates) {
    if (!c.within_bound) continue;
    if (best == nullptr || c.shr < best->shr ||
        (c.shr == best->shr && c.total_delay < best->total_delay)) {
      best = &c;
    }
  }
  if (best == nullptr) return false;
  const bool better =
      best->shr < current_shr ||
      (best->shr == current_shr && best->total_delay + 1e-9 < current_delay);
  if (!better) return false;
  // A candidate that merely re-walks the current attachment — whether the
  // single upstream edge or a multi-hop graft retracing the member's
  // existing relay chain — is a no-op; moving along it would churn
  // move_subtree without changing the tree.
  if (graft_rewalks_attachment(tree_, member, best->graft)) return false;

  tree_.move_subtree(member, best->graft);
  record_baseline(member);
  ++reshape_count_;
  return true;
}

int SmrpTreeBuilder::condition_one_sweep() {
  int switches = 0;
  bool progressed = true;
  while (progressed && switches < config_.max_reshapes_per_event) {
    progressed = false;
    for (const NodeId member : tree_.members()) {
      const int baseline = shr_baseline_[static_cast<std::size_t>(member)];
      if (baseline < 0) continue;
      if (tree_.shr(member) - baseline < config_.reshape_shr_delta) continue;
      if (try_reshape(member)) {
        ++switches;
        progressed = true;
        if (switches >= config_.max_reshapes_per_event) break;
      } else {
        // Selection declined to move: reset the reference so the same
        // growth does not retrigger a no-op scan on every later join.
        record_baseline(member);
      }
    }
  }
  return switches;
}

int SmrpTreeBuilder::reshape_pass() {
  int switches = 0;
  for (const NodeId member : tree_.members()) {
    if (try_reshape(member)) ++switches;
  }
  return switches;
}

int SmrpTreeBuilder::reshape_to_fixpoint(int max_passes) {
  int total = 0;
  for (int pass = 0; pass < max_passes; ++pass) {
    const int switches = reshape_pass();
    total += switches;
    if (switches == 0) break;
  }
  return total;
}

}  // namespace smrp::proto
