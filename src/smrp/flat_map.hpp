// Sorted flat map for small per-agent tables (DESIGN.md §14).
//
// A distributed agent's child table holds a handful of entries (node
// degree-bounded) but there is one per on-tree node per session, so the
// red-black-tree std::map — three pointers plus a color per entry, one
// heap allocation per child — dominated AgentState's footprint at scale.
// This keeps the entries in one contiguous, key-sorted vector: iteration
// order is ascending by key exactly like std::map (the engine's message
// send order, and therefore telemetry byte-determinism, depends on it),
// and lookup is a binary search that in practice beats pointer chasing
// at these sizes.
//
// Deliberately a subset of the std::map interface — just what the agents
// and their tests use. Pointer/iterator stability across mutation is NOT
// provided (vector semantics); no current caller holds references across
// a mutation.
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

namespace smrp::proto {

template <typename Key, typename Value>
class FlatMap {
 public:
  using value_type = std::pair<Key, Value>;
  using iterator = typename std::vector<value_type>::iterator;
  using const_iterator = typename std::vector<value_type>::const_iterator;

  [[nodiscard]] iterator begin() noexcept { return entries_.begin(); }
  [[nodiscard]] iterator end() noexcept { return entries_.end(); }
  [[nodiscard]] const_iterator begin() const noexcept {
    return entries_.begin();
  }
  [[nodiscard]] const_iterator end() const noexcept { return entries_.end(); }

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }

  [[nodiscard]] iterator find(const Key& key) {
    const iterator it = lower_bound(key);
    return (it != entries_.end() && it->first == key) ? it : entries_.end();
  }
  [[nodiscard]] const_iterator find(const Key& key) const {
    const const_iterator it = lower_bound(key);
    return (it != entries_.end() && it->first == key) ? it : entries_.end();
  }
  [[nodiscard]] std::size_t count(const Key& key) const {
    return find(key) != entries_.end() ? 1 : 0;
  }

  /// std::map semantics: default-constructs the value on first access.
  Value& operator[](const Key& key) {
    iterator it = lower_bound(key);
    if (it == entries_.end() || it->first != key) {
      it = entries_.insert(it, value_type{key, Value{}});
    }
    return it->second;
  }

  std::size_t erase(const Key& key) {
    const iterator it = find(key);
    if (it == entries_.end()) return 0;
    entries_.erase(it);
    return 1;
  }
  iterator erase(iterator pos) { return entries_.erase(pos); }

  void clear() noexcept { entries_.clear(); }

 private:
  [[nodiscard]] iterator lower_bound(const Key& key) {
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const value_type& e, const Key& k) { return e.first < k; });
  }
  [[nodiscard]] const_iterator lower_bound(const Key& key) const {
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const value_type& e, const Key& k) { return e.first < k; });
  }

  std::vector<value_type> entries_;
};

}  // namespace smrp::proto
