#include "smrp/path_selection.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

namespace smrp::proto {

std::vector<JoinCandidate> enumerate_candidates(
    const Graph& g, const MulticastTree& tree, NodeId joiner,
    double spf_delay, const SmrpConfig& config,
    std::optional<NodeId> reshaping_member,
    const net::ExclusionSet* unusable, net::RoutingOracle* oracle) {
  // Callers without a shared oracle get a throwaway one; both graft
  // modes below then go through its workspace pool / SPF cache.
  std::unique_ptr<net::RoutingOracle> owned_oracle;
  if (oracle == nullptr) {
    owned_oracle = std::make_unique<net::RoutingOracle>(g);
    oracle = owned_oracle.get();
  }

  std::vector<JoinCandidate> out;
  const double d_thresh = config.d_thresh;

  const bool reshaping = reshaping_member.has_value();
  if (reshaping && *reshaping_member != joiner) {
    throw std::invalid_argument("reshaping joiner must be the member itself");
  }

  if (!reshaping && tree.on_tree(joiner)) {
    // A relay (or other on-tree node) becoming a receiver joins in place:
    // it already has an on-tree path to the source.
    JoinCandidate self;
    self.merge_node = joiner;
    self.graft = {joiner};
    self.graft_delay = 0.0;
    self.total_delay = tree.delay_to_source(joiner);
    self.shr = tree.shr(joiner);
    self.within_bound =
        self.total_delay <= (1.0 + d_thresh) * spf_delay + 1e-9;
    out.push_back(std::move(self));
    return out;
  }

  // During reshaping, the member's own subtree is banned outright —
  // merging below itself would create a cycle, and descendants move along
  // with the member.
  net::ExclusionSet excluded = unusable != nullptr ? *unusable
                                                   : net::ExclusionSet(g);
  std::vector<char> merge_allowed(static_cast<std::size_t>(g.node_count()), 0);
  for (const NodeId n : tree.on_tree_nodes()) {
    if (reshaping && tree.is_ancestor_or_self(joiner, n)) {
      if (n != joiner) excluded.ban_node(n);
      continue;
    }
    merge_allowed[static_cast<std::size_t>(n)] = 1;
  }

  const auto bound_check = [&](double total) {
    return total <= (1.0 + d_thresh) * spf_delay + 1e-9;
  };
  const auto push_candidate = [&](NodeId merge,
                                  const net::ShortestPathTree& search) {
    JoinCandidate c;
    c.merge_node = merge;
    // The Dijkstra source is the joiner, so this runs joiner → … → merge.
    c.graft = search.path_from_source(merge);
    c.graft_delay = search.dist[static_cast<std::size_t>(merge)];
    c.total_delay = c.graft_delay + tree.delay_to_source(merge);
    c.shr = reshaping ? tree.shr_excluding_subtree(merge, joiner)
                      : tree.shr(merge);
    c.within_bound = bound_check(c.total_delay);
    out.push_back(std::move(c));
  };

  if (config.graft_mode == GraftMode::kAvoidTree) {
    // Every admissible merge node absorbs the search, so each reached one
    // gets the shortest graft that meets the tree only there. The search
    // depends on the tree state (the absorbing flags), so it is never
    // cached — the oracle only contributes its pooled workspace.
    net::ShortestPathTree grafts;
    {
      const net::RoutingOracle::WorkspaceLease lease = oracle->workspace();
      lease->run_absorbing_into(g, joiner, merge_allowed, excluded, grafts);
    }
    for (const NodeId merge : tree.on_tree_nodes()) {
      if (!merge_allowed[static_cast<std::size_t>(merge)]) continue;
      if (!grafts.reachable(merge)) continue;
      push_candidate(merge, grafts);
    }
  } else {
    // kFirstHit: plain shortest paths from the joiner; an on-tree node is
    // a valid merge only if the joiner's shortest path to it meets the
    // tree there first (otherwise the path would really merge earlier).
    // Tree-independent, so the oracle caches it by (joiner, exclusions).
    const net::RoutingOracle::TreePtr cached = oracle->spf(joiner, excluded);
    const net::ShortestPathTree& spf = *cached;
    for (const NodeId merge : tree.on_tree_nodes()) {
      if (!merge_allowed[static_cast<std::size_t>(merge)]) continue;
      if (!spf.reachable(merge)) continue;
      bool first_hit = true;
      for (NodeId cur = spf.parent[static_cast<std::size_t>(merge)];
           cur != net::kNoNode && cur != joiner;
           cur = spf.parent[static_cast<std::size_t>(cur)]) {
        if (tree.on_tree(cur)) {
          first_hit = false;
          break;
        }
      }
      if (first_hit) push_candidate(merge, spf);
    }
  }
  return out;
}

std::optional<Selection> select_path(std::vector<JoinCandidate> candidates,
                                     double spf_delay,
                                     const SmrpConfig& config) {
  if (candidates.empty()) return std::nullopt;

  const auto better_within = [](const JoinCandidate& a,
                                const JoinCandidate& b) {
    if (a.shr != b.shr) return a.shr < b.shr;
    if (a.total_delay != b.total_delay) return a.total_delay < b.total_delay;
    return a.merge_node < b.merge_node;
  };
  const auto better_fallback = [](const JoinCandidate& a,
                                  const JoinCandidate& b) {
    if (a.total_delay != b.total_delay) return a.total_delay < b.total_delay;
    return a.merge_node < b.merge_node;
  };

  Selection sel;
  sel.candidate_count = static_cast<int>(candidates.size());
  sel.spf_delay = spf_delay;

  const JoinCandidate* best = nullptr;
  for (const JoinCandidate& c : candidates) {
    if (!c.within_bound) continue;
    if (best == nullptr || better_within(c, *best)) best = &c;
  }
  if (best == nullptr) {
    if (!config.fallback_when_infeasible) return std::nullopt;
    for (const JoinCandidate& c : candidates) {
      if (best == nullptr || better_fallback(c, *best)) best = &c;
    }
    sel.used_fallback = true;
  }
  sel.chosen = *best;
  return sel;
}

std::optional<Selection> select_join_path(const Graph& g,
                                          const MulticastTree& tree,
                                          NodeId joiner, double spf_delay,
                                          const SmrpConfig& config,
                                          net::RoutingOracle* oracle) {
  return select_path(
      enumerate_candidates(g, tree, joiner, spf_delay, config, std::nullopt,
                           nullptr, oracle),
      spf_delay, config);
}

}  // namespace smrp::proto
