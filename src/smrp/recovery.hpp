// Failure recovery policies compared in the paper (§4.3.1):
//
//  * Local detour  — the SMRP policy: the disconnected member reconnects to
//    the *nearest* on-tree node whose own path to the source survived.
//  * Global detour — the SPF/PIM policy: after unicast reconvergence the
//    member re-joins along the new shortest path toward the source,
//    stopping at the first surviving on-tree node (PIM join semantics).
//
// The recovery distance RD_R counts only the *new* links brought into the
// tree, measured in link weight (the paper's Fig. 1 computes RD_D = 2 from
// a delay-2 link); hop counts are reported alongside.
#pragma once

#include <vector>

#include "multicast/tree.hpp"
#include "net/routing_oracle.hpp"
#include "net/shortest_path.hpp"
#include "obs/telemetry.hpp"

namespace smrp::proto {

using mcast::MulticastTree;
using net::Graph;
using net::LinkId;
using net::NodeId;

/// A persistent failure: a cut link or an incapacitated node (§1 treats
/// both as the failure model).
struct Failure {
  enum class Kind { kLink, kNode };
  Kind kind = Kind::kLink;
  LinkId link = net::kNoLink;
  NodeId node = net::kNoNode;

  static Failure of_link(LinkId l) { return Failure{Kind::kLink, l, net::kNoNode}; }
  static Failure of_node(NodeId n) { return Failure{Kind::kNode, net::kNoLink, n}; }
};

struct RecoveryOutcome {
  NodeId member = net::kNoNode;
  LinkId failed_link = net::kNoLink;
  NodeId failed_node = net::kNoNode;
  /// False when the failure did not actually disconnect this member (its
  /// RD is then 0 by definition).
  bool disconnected = false;
  /// True when a reconnection path exists.
  bool recovered = false;
  NodeId reattach_node = net::kNoNode;
  /// member → … → reattach node; exactly the new links brought in.
  std::vector<NodeId> restoration_path;
  double recovery_distance = 0.0;  ///< RD_R in link weight
  int recovery_hops = 0;           ///< RD_R in hops
  double new_delay = 0.0;          ///< member's end-to-end delay afterwards
};

/// The paper's worst-case failure for member R: the incident link of the
/// source on R's on-tree path (failing it disables the largest portion of
/// R's branch). Throws if R is not on-tree.
[[nodiscard]] LinkId worst_case_failure_link(const MulticastTree& tree,
                                             NodeId member);

/// The worst-case node failure for member R: the source's on-tree child
/// on R's path (the node whose loss disables the largest portion of R's
/// branch). May be R itself when R sits next to the source.
[[nodiscard]] NodeId worst_case_failure_node(const MulticastTree& tree,
                                             NodeId member);

/// SMRP recovery: reconnect to the nearest surviving on-tree node, routing
/// around the failure. `oracle`, when given, serves the search from its
/// workspace pool; repeated sweeps stop reallocating the search buffers.
[[nodiscard]] RecoveryOutcome local_detour_recovery(
    const Graph& g, const MulticastTree& tree, NodeId member,
    const Failure& failure, net::RoutingOracle* oracle = nullptr);
[[nodiscard]] RecoveryOutcome local_detour_recovery(const Graph& g,
                                                    const MulticastTree& tree,
                                                    NodeId member,
                                                    LinkId failed_link);

/// SPF/PIM recovery: follow the post-failure shortest path toward the
/// source, grafting at the first surviving on-tree node along it. The
/// member's post-failure SPF is cacheable, so `oracle` serves it from the
/// shared cache (incrementally repaired on the failure's one extra ban).
[[nodiscard]] RecoveryOutcome global_detour_recovery(
    const Graph& g, const MulticastTree& tree, NodeId member,
    const Failure& failure, net::RoutingOracle* oracle = nullptr);
[[nodiscard]] RecoveryOutcome global_detour_recovery(const Graph& g,
                                                     const MulticastTree& tree,
                                                     NodeId member,
                                                     LinkId failed_link);

/// Apply a recovery outcome to `tree` (graft the restoration path onto the
/// surviving structure after detaching the failed branch); used by the
/// examples and integration tests to verify the repaired tree is valid.
void apply_recovery(MulticastTree& tree, const RecoveryOutcome& outcome);

/// Recovery style for whole-session repair.
enum class DetourPolicy { kLocal, kGlobal };

/// Report of repairing every member a failure disconnected.
struct SessionRepairReport {
  int disconnected_members = 0;
  int repaired_members = 0;
  int unrecoverable_members = 0;
  double total_recovery_distance = 0.0;
  int total_recovery_hops = 0;
  std::vector<RecoveryOutcome> outcomes;  ///< in repair order
};

/// Repair the whole session in place after `failure`: sever the dead
/// branch, then reconnect the lost members nearest-first (a member whose
/// detour is shorter completes earlier, and its restored branch can then
/// assist the others — the neighbor-assisted recovery of §1). The tree is
/// left valid and failure-free; unrecoverable members (physically cut
/// off) are dropped from the session and counted.
/// `already_failed` carries earlier persistent failures that restoration
/// paths must also avoid (multi-failure scenarios).
/// `telemetry`, when given, folds the repair into the registry: one
/// `smrp.recovery.rd_weight` / `smrp.recovery.rd_hops` sample per detour
/// actually computed (RD_R as §4.3.1 defines it — new links only; members
/// that rejoin in place contribute no sample) plus disconnection counters.
/// `oracle`, when given, serves every search in the repair: the kGlobal
/// per-member SPFs hit the shared cache (incrementally repaired when this
/// failure is one extra ban over a cached exclusion) and the kLocal
/// detour searches lease pooled workspaces.
SessionRepairReport repair_session(
    const Graph& g, MulticastTree& tree, const Failure& failure,
    DetourPolicy policy = DetourPolicy::kLocal,
    const net::ExclusionSet* already_failed = nullptr,
    obs::Telemetry* telemetry = nullptr,
    net::RoutingOracle* oracle = nullptr);

}  // namespace smrp::proto
