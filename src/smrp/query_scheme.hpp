// §3.3.1 query scheme: joining without global topology knowledge.
//
// The new member asks each physical neighbor to relay a query along that
// neighbor's shortest path toward the source; the first on-tree node the
// query meets answers with its SHR. The member then applies the normal
// selection criterion over this (reduced) candidate set. The paper notes
// the scheme "does not guarantee to obtain SHR for all on-tree nodes and
// the selected multicast path may not be optimal" — bench_ablation_query
// quantifies that degradation.
#pragma once

#include <optional>

#include "smrp/path_selection.hpp"

namespace smrp::proto {

/// Candidates discoverable through one round of neighbor-relayed queries.
/// `oracle`, when given, serves the per-relay SPF trees from the shared
/// cache (one entry per relay, reused across joins and between members
/// sharing relays) instead of a fresh Dijkstra per relay per query.
[[nodiscard]] std::vector<JoinCandidate> enumerate_query_candidates(
    const Graph& g, const MulticastTree& tree, NodeId joiner,
    double spf_delay, double d_thresh, net::RoutingOracle* oracle = nullptr);

/// Join selection restricted to query-discovered candidates.
[[nodiscard]] std::optional<Selection> select_join_path_via_query(
    const Graph& g, const MulticastTree& tree, NodeId joiner,
    double spf_delay, const SmrpConfig& config,
    net::RoutingOracle* oracle = nullptr);

}  // namespace smrp::proto
