// Proactive-protection comparator inspired by Médard et al. [16]
// ("Redundant Trees for Preplanned Recovery …"): every member maintains a
// working (blue) SPF path plus a protection (red) path that is
// link-and-interior-node disjoint from its blue path whenever the graph
// permits. On a failure hitting the blue path, the member switches to the
// red tree instantly — zero recovery distance — at roughly double the
// resource cost, the trade-off the paper's related-work section contrasts
// SMRP against.
//
// This is a per-member disjoint-path heuristic, not Médard's full
// vertex-redundant construction (which needs global 2-connectivity
// analysis; the paper itself calls it impractical for large networks).
// Members whose red path cannot be made disjoint are reported unprotected.
#pragma once

#include <memory>

#include "multicast/tree.hpp"
#include "net/routing_oracle.hpp"
#include "net/shortest_path.hpp"

namespace smrp::baseline {

using mcast::MulticastTree;
using net::Graph;
using net::LinkId;
using net::NodeId;

class DualTreeBuilder {
 public:
  /// `oracle`, when given, serves the blue source tree and every red
  /// disjoint-path search from the shared cache (red exclusions repeat
  /// whenever members share blue paths); must outlive the builder.
  DualTreeBuilder(const Graph& g, NodeId source,
                  net::RoutingOracle* oracle = nullptr);

  /// Join both trees. Returns false only if the member is unreachable.
  bool join(NodeId member);

  [[nodiscard]] const MulticastTree& blue() const noexcept { return blue_; }
  [[nodiscard]] const MulticastTree& red() const noexcept { return red_; }

  /// True when the member's *realised* red tree path is link-disjoint
  /// from its blue tree path — which guarantees the member survives any
  /// single link failure via an instant switch.
  [[nodiscard]] bool is_protected(NodeId member) const;

  /// True when `member` still reaches the source on the blue or the red
  /// tree after `failed_link` dies.
  [[nodiscard]] bool survives_link(NodeId member, LinkId failed_link) const;

  /// Combined resource usage of both trees.
  [[nodiscard]] double combined_cost() const {
    return blue_.total_cost() + red_.total_cost();
  }

 private:
  const Graph* g_;
  MulticastTree blue_;
  MulticastTree red_;
  std::unique_ptr<net::RoutingOracle> owned_oracle_;
  net::RoutingOracle* oracle_;
  net::RoutingOracle::TreePtr spf_from_source_;
  std::vector<char> protected_;
};

}  // namespace smrp::baseline
