// Cost-minimising multicast baseline: the incremental Takahashi–Matsuyama
// Steiner-tree heuristic — each joining member grafts along the shortest
// path to the *nearest point of the existing tree* rather than toward the
// source. The paper (§4.2, citing Wei & Estrin) expects its conclusions to
// carry over to such cost-minimising protocols; bench_ablation_steiner
// checks that claim on this implementation.
#pragma once

#include "multicast/tree.hpp"
#include "net/shortest_path.hpp"

namespace smrp::baseline {

using mcast::MulticastTree;
using net::Graph;
using net::NodeId;

class SteinerTreeBuilder {
 public:
  SteinerTreeBuilder(const Graph& g, NodeId source);

  /// Graft along the member's shortest path to the nearest on-tree node.
  /// Returns false only if the member cannot reach the tree.
  bool join(NodeId member);

  void leave(NodeId member);

  [[nodiscard]] const MulticastTree& tree() const noexcept { return tree_; }
  [[nodiscard]] const Graph& graph() const noexcept { return *g_; }

 private:
  const Graph* g_;
  MulticastTree tree_;
};

}  // namespace smrp::baseline
