// Cost-minimising multicast baseline: the incremental Takahashi–Matsuyama
// Steiner-tree heuristic — each joining member grafts along the shortest
// path to the *nearest point of the existing tree* rather than toward the
// source. The paper (§4.2, citing Wei & Estrin) expects its conclusions to
// carry over to such cost-minimising protocols; bench_ablation_steiner
// checks that claim on this implementation.
#pragma once

#include <memory>

#include "multicast/tree.hpp"
#include "net/routing_oracle.hpp"
#include "net/shortest_path.hpp"

namespace smrp::baseline {

using mcast::MulticastTree;
using net::Graph;
using net::NodeId;

class SteinerTreeBuilder {
 public:
  /// `oracle`, when given, leases the per-join absorbing searches from
  /// its workspace pool (they depend on the tree state, so they are
  /// pooled rather than cached); must outlive the builder.
  SteinerTreeBuilder(const Graph& g, NodeId source,
                     net::RoutingOracle* oracle = nullptr);

  /// Graft along the member's shortest path to the nearest on-tree node.
  /// Returns false only if the member cannot reach the tree.
  bool join(NodeId member);

  void leave(NodeId member);

  [[nodiscard]] const MulticastTree& tree() const noexcept { return tree_; }
  [[nodiscard]] const Graph& graph() const noexcept { return *g_; }

 private:
  const Graph* g_;
  MulticastTree tree_;
  std::unique_ptr<net::RoutingOracle> owned_oracle_;
  net::RoutingOracle* oracle_;
  // Per-join search state, reused so joins stop allocating SPF buffers.
  std::vector<char> absorbing_;
  net::ShortestPathTree search_;
};

}  // namespace smrp::baseline
