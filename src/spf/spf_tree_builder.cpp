#include "spf/spf_tree_builder.hpp"

#include <algorithm>
#include <stdexcept>

namespace smrp::baseline {

SpfTreeBuilder::SpfTreeBuilder(const Graph& g, NodeId source,
                               net::RoutingOracle* oracle)
    : g_(&g),
      tree_(g, source),
      owned_oracle_(oracle == nullptr ? std::make_unique<net::RoutingOracle>(g)
                                      : nullptr),
      spf_from_source_(
          (oracle != nullptr ? oracle : owned_oracle_.get())->spf(source)) {}

double SpfTreeBuilder::spf_delay(NodeId n) const {
  if (!g_->valid_node(n)) throw std::out_of_range("bad node");
  return spf_from_source_->dist[static_cast<std::size_t>(n)];
}

bool SpfTreeBuilder::join(NodeId member) {
  if (member == tree_.source()) {
    throw std::invalid_argument("the source cannot join its own session");
  }
  if (tree_.is_member(member)) return true;
  if (!spf_from_source_->reachable(member)) return false;

  if (tree_.on_tree(member)) {
    tree_.graft(member, {member});
    return true;
  }
  // Walk from the member toward the source along the SPF tree; the join
  // stops at the first on-tree router.
  std::vector<NodeId> graft;
  for (NodeId cur = member;;
       cur = spf_from_source_->parent[static_cast<std::size_t>(cur)]) {
    graft.push_back(cur);
    if (tree_.on_tree(cur)) break;
  }
  tree_.graft(member, graft);
  return true;
}

void SpfTreeBuilder::leave(NodeId member) { tree_.leave(member); }

}  // namespace smrp::baseline
