// Baseline SPF-based multicast tree construction, modelling what MOSPF /
// PIM build on top of the unicast routing protocol: every member is
// connected along the shortest path between itself and the source, joins
// travelling hop-by-hop toward the source and grafting at the first router
// that is already on the tree (RFC 2362 semantics).
#pragma once

#include <memory>

#include "multicast/tree.hpp"
#include "net/routing_oracle.hpp"
#include "net/shortest_path.hpp"

namespace smrp::baseline {

using mcast::MulticastTree;
using net::Graph;
using net::NodeId;

class SpfTreeBuilder {
 public:
  /// `oracle`, when given, shares the source SPF tree with every other
  /// consumer instead of running a private Dijkstra; must outlive the
  /// builder and be bound to `g`.
  SpfTreeBuilder(const Graph& g, NodeId source,
                 net::RoutingOracle* oracle = nullptr);

  /// Join along the member's shortest path toward the source. Returns
  /// false only if the member is unreachable.
  bool join(NodeId member);

  void leave(NodeId member);

  [[nodiscard]] const MulticastTree& tree() const noexcept { return tree_; }
  [[nodiscard]] const Graph& graph() const noexcept { return *g_; }

  /// D_SPF(S, n), the paper's denominator for the delay-bound criterion.
  [[nodiscard]] double spf_delay(NodeId n) const;

 private:
  const Graph* g_;
  MulticastTree tree_;
  std::unique_ptr<net::RoutingOracle> owned_oracle_;
  // One consistent SPF tree rooted at the source: all joins follow it, so
  // the union of member paths is loop-free by construction (as with a
  // converged link-state unicast routing underlay). A shared snapshot
  // from the oracle's cache.
  net::RoutingOracle::TreePtr spf_from_source_;
};

}  // namespace smrp::baseline
