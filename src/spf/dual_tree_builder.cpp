#include "spf/dual_tree_builder.hpp"

#include <stdexcept>

#include "net/paths.hpp"

namespace smrp::baseline {

DualTreeBuilder::DualTreeBuilder(const Graph& g, NodeId source,
                                 net::RoutingOracle* oracle)
    : g_(&g),
      blue_(g, source),
      red_(g, source),
      owned_oracle_(oracle == nullptr ? std::make_unique<net::RoutingOracle>(g)
                                      : nullptr),
      oracle_(oracle != nullptr ? oracle : owned_oracle_.get()),
      spf_from_source_(oracle_->spf(source)),
      protected_(static_cast<std::size_t>(g.node_count()), 0) {}

bool DualTreeBuilder::join(NodeId member) {
  if (member == blue_.source()) {
    throw std::invalid_argument("the source cannot join its own session");
  }
  if (blue_.is_member(member)) return true;
  if (!spf_from_source_->reachable(member)) return false;

  // Blue: plain SPF join (PIM semantics along the source-rooted SPF tree).
  if (blue_.on_tree(member)) {
    blue_.graft(member, {member});
  } else {
    std::vector<NodeId> graft;
    for (NodeId cur = member;;
         cur = spf_from_source_->parent[static_cast<std::size_t>(cur)]) {
      graft.push_back(cur);
      if (blue_.on_tree(cur)) break;
    }
    blue_.graft(member, graft);
  }

  // Red: shortest path to the source avoiding the member's blue path
  // (links and interior nodes), grafted onto the red tree at its first
  // intersection. Falls back to the unconstrained path when the graph is
  // not 2-connected around this member.
  const std::vector<NodeId> blue_path = blue_.path_to_source(member);
  net::ExclusionSet excluded(*g_);
  for (std::size_t i = 1; i + 1 < blue_path.size(); ++i) {
    excluded.ban_node(blue_path[i]);
  }
  for (std::size_t i = 0; i + 1 < blue_path.size(); ++i) {
    if (const auto link = g_->link_between(blue_path[i], blue_path[i + 1])) {
      excluded.ban_link(*link);
    }
  }
  net::RoutingOracle::TreePtr red_search = oracle_->spf(member, excluded);
  if (!red_search->reachable(blue_.source())) {
    red_search = oracle_->spf(member);
  }

  if (!red_.is_member(member)) {
    if (red_.on_tree(member)) {
      red_.graft(member, {member});
    } else {
      const std::vector<NodeId> to_source =
          red_search->path_from_source(blue_.source());
      std::vector<NodeId> graft;
      for (const NodeId hop : to_source) {
        graft.push_back(hop);
        if (red_.on_tree(hop)) break;
      }
      red_.graft(member, graft);
    }
  }

  // Protection is judged on the *realised* trees: grafting onto existing
  // red branches (shared with other members) can reintroduce overlap, so
  // the computed disjoint path alone is not a guarantee.
  const auto blue_links = net::path_links(*g_, blue_path);
  const auto red_links =
      net::path_links(*g_, red_.path_to_source(member));
  bool disjoint = true;
  for (const LinkId bl : blue_links) {
    for (const LinkId rl : red_links) {
      if (bl == rl) {
        disjoint = false;
        break;
      }
    }
    if (!disjoint) break;
  }
  protected_[static_cast<std::size_t>(member)] = disjoint ? 1 : 0;
  return true;
}

bool DualTreeBuilder::is_protected(NodeId member) const {
  return protected_[static_cast<std::size_t>(member)] != 0;
}

bool DualTreeBuilder::survives_link(NodeId member, LinkId failed_link) const {
  if (!blue_.is_member(member)) {
    throw std::invalid_argument("not a member");
  }
  const auto blue_alive = blue_.surviving_after_link(failed_link);
  if (blue_alive[static_cast<std::size_t>(member)]) return true;
  const auto red_alive = red_.surviving_after_link(failed_link);
  return red_alive[static_cast<std::size_t>(member)] != 0;
}

}  // namespace smrp::baseline
