#include "spf/steiner_tree_builder.hpp"

#include <stdexcept>

namespace smrp::baseline {

SteinerTreeBuilder::SteinerTreeBuilder(const Graph& g, NodeId source,
                                       net::RoutingOracle* oracle)
    : g_(&g),
      tree_(g, source),
      owned_oracle_(oracle == nullptr ? std::make_unique<net::RoutingOracle>(g)
                                      : nullptr),
      oracle_(oracle != nullptr ? oracle : owned_oracle_.get()) {}

bool SteinerTreeBuilder::join(NodeId member) {
  if (member == tree_.source()) {
    throw std::invalid_argument("the source cannot join its own session");
  }
  if (tree_.is_member(member)) return true;
  if (tree_.on_tree(member)) {
    tree_.graft(member, {member});
    return true;
  }
  // Nearest point of the current tree (Takahashi–Matsuyama step): run an
  // absorbing search so the graft touches the tree exactly once. The
  // search depends on the tree state, so it leases a pooled workspace
  // (never the cache) and reuses this builder's flag/result buffers.
  absorbing_.assign(static_cast<std::size_t>(g_->node_count()), 0);
  for (const NodeId n : tree_.on_tree_nodes()) {
    absorbing_[static_cast<std::size_t>(n)] = 1;
  }
  {
    const net::RoutingOracle::WorkspaceLease lease = oracle_->workspace();
    lease->run_absorbing_into(*g_, member, absorbing_, net::ExclusionSet{},
                              search_);
  }
  NodeId best = net::kNoNode;
  for (const NodeId n : tree_.on_tree_nodes()) {
    if (!search_.reachable(n)) continue;
    if (best == net::kNoNode ||
        search_.dist[static_cast<std::size_t>(n)] <
            search_.dist[static_cast<std::size_t>(best)]) {
      best = n;
    }
  }
  if (best == net::kNoNode) return false;
  tree_.graft(member, search_.path_from_source(best));
  return true;
}

void SteinerTreeBuilder::leave(NodeId member) { tree_.leave(member); }

}  // namespace smrp::baseline
