#include "spf/steiner_tree_builder.hpp"

#include <stdexcept>

namespace smrp::baseline {

SteinerTreeBuilder::SteinerTreeBuilder(const Graph& g, NodeId source)
    : g_(&g), tree_(g, source) {}

bool SteinerTreeBuilder::join(NodeId member) {
  if (member == tree_.source()) {
    throw std::invalid_argument("the source cannot join its own session");
  }
  if (tree_.is_member(member)) return true;
  if (tree_.on_tree(member)) {
    tree_.graft(member, {member});
    return true;
  }
  // Nearest point of the current tree (Takahashi–Matsuyama step): run an
  // absorbing search so the graft touches the tree exactly once.
  std::vector<char> absorbing(static_cast<std::size_t>(g_->node_count()), 0);
  for (const NodeId n : tree_.on_tree_nodes()) {
    absorbing[static_cast<std::size_t>(n)] = 1;
  }
  const net::ShortestPathTree search =
      net::dijkstra_absorbing(*g_, member, absorbing);
  NodeId best = net::kNoNode;
  for (const NodeId n : tree_.on_tree_nodes()) {
    if (!search.reachable(n)) continue;
    if (best == net::kNoNode ||
        search.dist[static_cast<std::size_t>(n)] <
            search.dist[static_cast<std::size_t>(best)]) {
      best = n;
    }
  }
  if (best == net::kNoNode) return false;
  tree_.graft(member, search.path_from_source(best));
  return true;
}

void SteinerTreeBuilder::leave(NodeId member) { tree_.leave(member); }

}  // namespace smrp::baseline
