// Node-induced subgraph with id translation, used to confine per-domain
// protocol instances (§3.3.3) to their recovery domain.
#pragma once

#include <unordered_map>
#include <vector>

#include "net/graph.hpp"

namespace smrp::hier {

using net::Graph;
using net::LinkId;
using net::NodeId;

class SubgraphView {
 public:
  /// Build the subgraph induced by `global_nodes` (links kept iff both
  /// endpoints are inside). Node order defines the local id mapping.
  SubgraphView(const Graph& parent, std::vector<NodeId> global_nodes);

  [[nodiscard]] const Graph& graph() const noexcept { return graph_; }

  [[nodiscard]] bool contains_global(NodeId global) const {
    return to_local_.count(global) > 0;
  }
  [[nodiscard]] NodeId to_local(NodeId global) const;
  [[nodiscard]] NodeId to_global(NodeId local) const;

  /// Local link corresponding to a parent-graph link, if both endpoints
  /// are inside the view.
  [[nodiscard]] std::optional<LinkId> link_to_local(LinkId global) const;
  [[nodiscard]] LinkId link_to_global(LinkId local) const;

 private:
  Graph graph_;
  std::vector<NodeId> to_global_nodes_;
  std::unordered_map<NodeId, NodeId> to_local_;
  std::vector<LinkId> to_global_links_;
  std::unordered_map<LinkId, LinkId> link_to_local_;
};

}  // namespace smrp::hier
