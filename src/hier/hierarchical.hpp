// Hierarchical recovery architecture (§3.3.3): sub-multicast trees per
// recovery domain on a transit-stub topology. Each stub domain with
// receivers runs its own SMRP instance rooted at the domain's *agent*
// (its gateway-side attachment); the transit core runs a level-2 SMRP
// instance connecting the agents of member domains to the source side.
// A link failure is repaired entirely inside the recovery domain that
// contains the link, so reconfiguration never spills across domains.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "hier/subgraph.hpp"
#include "net/transit_stub.hpp"
#include "smrp/recovery.hpp"
#include "smrp/tree_builder.hpp"

namespace smrp::hier {

using net::DomainId;
using net::TransitStubTopology;

struct HierConfig {
  proto::SmrpConfig smrp;  ///< settings shared by every domain instance
};

/// Outcome of repairing one failed link under the hierarchical scheme.
struct HierRecoveryOutcome {
  bool link_on_tree = false;   ///< failure touched the session at all
  DomainId domain = -1;        ///< recovery domain that owns the failure
  bool recovered = false;
  double recovery_distance = 0.0;  ///< Σ RD over the domain's repairs
  int recovery_hops = 0;
  int disconnected_members = 0;  ///< receivers (or agents) that lost service
  /// Members of *other* domains whose service survived untouched — the
  /// confinement benefit of the architecture.
  int unaffected_members = 0;
};

class HierarchicalSession {
 public:
  /// `source` may be any node; if it lives in a stub domain, that domain's
  /// agent relays traffic to the level-2 tree (paper's A1 case).
  HierarchicalSession(const TransitStubTopology& topology,
                      net::NodeId source, HierConfig config = {});

  /// Join a receiver (it must live in a stub domain). Lazily instantiates
  /// the domain's SMRP instance and pulls the domain's agent into the
  /// level-2 tree.
  void join(net::NodeId member);

  [[nodiscard]] bool is_member(net::NodeId n) const;

  /// End-to-end delay source → member across the domain trees.
  [[nodiscard]] double delay_to_source(net::NodeId member) const;

  /// Total cost across every domain tree.
  [[nodiscard]] double total_cost() const;

  /// Repair the session after `failed_link` dies: the owning domain's
  /// instance performs local-detour recovery for each receiver (or agent)
  /// it lost. Reports the confinement statistics.
  [[nodiscard]] HierRecoveryOutcome recover(net::LinkId failed_link) const;

  /// Domain that owns a link (a stub domain owns its access link).
  [[nodiscard]] DomainId domain_of_link(net::LinkId link) const;

  [[nodiscard]] const TransitStubTopology& topology() const noexcept {
    return *topology_;
  }
  /// The level-2 (transit) SMRP instance.
  [[nodiscard]] const proto::SmrpTreeBuilder& transit_tree() const {
    return *transit_builder_;
  }
  /// The per-domain instance, if instantiated.
  [[nodiscard]] const proto::SmrpTreeBuilder* domain_tree(DomainId d) const;

  /// Id-translation view of a stub domain (nullptr if not instantiated).
  [[nodiscard]] const SubgraphView* domain_view(DomainId d) const {
    return domains_[static_cast<std::size_t>(d)].view.get();
  }
  [[nodiscard]] const SubgraphView& level2_view() const {
    return *transit_view_;
  }

  /// Agent node of a stub domain: the stub-side endpoint of its access
  /// link (the node the gateway connects into).
  [[nodiscard]] net::NodeId agent_of_domain(DomainId d) const;

  [[nodiscard]] int member_count() const noexcept { return member_count_; }

 private:
  struct DomainInstance {
    std::unique_ptr<SubgraphView> view;
    std::unique_ptr<proto::SmrpTreeBuilder> builder;
  };

  DomainInstance& ensure_domain(DomainId d);

  const TransitStubTopology* topology_;
  HierConfig config_;
  net::NodeId source_;
  DomainId source_domain_;
  std::unique_ptr<SubgraphView> transit_view_;
  std::unique_ptr<proto::SmrpTreeBuilder> transit_builder_;
  std::vector<DomainInstance> domains_;
  std::vector<char> member_flags_;
  int member_count_ = 0;
};

}  // namespace smrp::hier
