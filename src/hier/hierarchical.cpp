#include "hier/hierarchical.hpp"

#include <stdexcept>

namespace smrp::hier {

HierarchicalSession::HierarchicalSession(const TransitStubTopology& topology,
                                         net::NodeId source,
                                         HierConfig config)
    : topology_(&topology),
      config_(config),
      source_(source),
      source_domain_(topology.domain_of_node.at(
          static_cast<std::size_t>(source))),
      domains_(static_cast<std::size_t>(topology.domain_count())),
      member_flags_(static_cast<std::size_t>(topology.graph.node_count()), 0) {
  // Level-2 view: the transit core plus every stub domain's agent, so the
  // level-2 tree can terminate at agents (the paper's RD0 with A1..A4).
  std::vector<net::NodeId> level2_nodes = topology.nodes_of_domain[0];
  for (DomainId d = 1; d < topology.domain_count(); ++d) {
    level2_nodes.push_back(agent_of_domain(d));
  }
  transit_view_ = std::make_unique<SubgraphView>(topology.graph,
                                                 std::move(level2_nodes));
  const net::NodeId transit_root =
      source_domain_ == net::kTransitDomain
          ? transit_view_->to_local(source)
          : transit_view_->to_local(agent_of_domain(source_domain_));
  transit_builder_ = std::make_unique<proto::SmrpTreeBuilder>(
      transit_view_->graph(), transit_root, config_.smrp);

  if (source_domain_ != net::kTransitDomain) {
    // The source's own domain instance exists from the start; its agent
    // joins as a member to relay packets out (paper's A1 exception).
    DomainInstance& instance = ensure_domain(source_domain_);
    const net::NodeId agent = agent_of_domain(source_domain_);
    if (agent != source) {
      instance.builder->join(instance.view->to_local(agent));
    }
  }
}

net::NodeId HierarchicalSession::agent_of_domain(DomainId d) const {
  if (d <= 0 || d >= topology_->domain_count()) {
    throw std::out_of_range("bad stub domain");
  }
  // The stub generator wires the access link gateway → first patch node.
  return topology_->nodes_of_domain[static_cast<std::size_t>(d)].front();
}

HierarchicalSession::DomainInstance& HierarchicalSession::ensure_domain(
    DomainId d) {
  DomainInstance& instance = domains_[static_cast<std::size_t>(d)];
  if (instance.builder) return instance;
  instance.view = std::make_unique<SubgraphView>(
      topology_->graph, topology_->nodes_of_domain[static_cast<std::size_t>(d)]);
  const net::NodeId root =
      (d == source_domain_) ? source_ : agent_of_domain(d);
  instance.builder = std::make_unique<proto::SmrpTreeBuilder>(
      instance.view->graph(), instance.view->to_local(root), config_.smrp);
  if (d != source_domain_ && d != net::kTransitDomain) {
    // First use of this domain: pull its agent into the level-2 tree.
    transit_builder_->join(transit_view_->to_local(agent_of_domain(d)));
  }
  return instance;
}

void HierarchicalSession::join(net::NodeId member) {
  if (member == source_) {
    throw std::invalid_argument("source cannot join its own session");
  }
  if (member_flags_[static_cast<std::size_t>(member)]) return;
  const DomainId d =
      topology_->domain_of_node[static_cast<std::size_t>(member)];
  if (d == net::kTransitDomain) {
    transit_builder_->join(transit_view_->to_local(member));
  } else {
    DomainInstance& instance = ensure_domain(d);
    const net::NodeId local = instance.view->to_local(member);
    // The domain root (agent or source) cannot also be a receiver here.
    if (local == instance.builder->tree().source()) {
      throw std::invalid_argument("domain agent cannot join as receiver");
    }
    instance.builder->join(local);
  }
  member_flags_[static_cast<std::size_t>(member)] = 1;
  ++member_count_;
}

bool HierarchicalSession::is_member(net::NodeId n) const {
  return member_flags_[static_cast<std::size_t>(n)] != 0;
}

const proto::SmrpTreeBuilder* HierarchicalSession::domain_tree(
    DomainId d) const {
  return domains_[static_cast<std::size_t>(d)].builder.get();
}

double HierarchicalSession::delay_to_source(net::NodeId member) const {
  if (!is_member(member)) throw std::invalid_argument("not a member");
  const DomainId d =
      topology_->domain_of_node[static_cast<std::size_t>(member)];

  // Source-side delay: source → its agent (zero if the source is transit
  // or the member shares the source's domain).
  double source_side = 0.0;
  if (source_domain_ != net::kTransitDomain && d != source_domain_) {
    const DomainInstance& src_instance =
        domains_[static_cast<std::size_t>(source_domain_)];
    const net::NodeId agent = agent_of_domain(source_domain_);
    if (agent != source_) {
      source_side = src_instance.builder->tree().delay_to_source(
          src_instance.view->to_local(agent));
    }
  }

  if (d == net::kTransitDomain) {
    return source_side + transit_builder_->tree().delay_to_source(
                             transit_view_->to_local(member));
  }
  const DomainInstance& instance = domains_[static_cast<std::size_t>(d)];
  const double intra = instance.builder->tree().delay_to_source(
      instance.view->to_local(member));
  if (d == source_domain_) return intra;  // rooted at the source directly
  const double transit = transit_builder_->tree().delay_to_source(
      transit_view_->to_local(agent_of_domain(d)));
  return source_side + transit + intra;
}

double HierarchicalSession::total_cost() const {
  double total = transit_builder_->tree().total_cost();
  for (const DomainInstance& instance : domains_) {
    if (instance.builder) total += instance.builder->tree().total_cost();
  }
  return total;
}

DomainId HierarchicalSession::domain_of_link(net::LinkId link) const {
  const net::Link& l = topology_->graph.link(link);
  const DomainId da = topology_->domain_of_node[static_cast<std::size_t>(l.a)];
  const DomainId db = topology_->domain_of_node[static_cast<std::size_t>(l.b)];
  // Intra-stub links belong to the stub; everything else (core links and
  // gateway↔agent access links) is repaired at level 2.
  return (da == db) ? da : net::kTransitDomain;
}

HierRecoveryOutcome HierarchicalSession::recover(net::LinkId failed) const {
  HierRecoveryOutcome out;
  out.domain = domain_of_link(failed);

  const bool transit_level = out.domain == net::kTransitDomain;
  const SubgraphView* view = transit_level
                                 ? transit_view_.get()
                                 : domains_[static_cast<std::size_t>(out.domain)]
                                       .view.get();
  const proto::SmrpTreeBuilder* builder =
      transit_level
          ? transit_builder_.get()
          : domains_[static_cast<std::size_t>(out.domain)].builder.get();
  if (view == nullptr || builder == nullptr) {
    out.unaffected_members = member_count_;
    return out;  // failure in a domain without session state
  }
  const auto local_link = view->link_to_local(failed);
  if (!local_link) {
    out.unaffected_members = member_count_;
    return out;
  }
  const mcast::MulticastTree& tree = builder->tree();
  const auto survivors = tree.surviving_after_link(*local_link);

  // Which of this tree's members lost service?
  std::vector<net::NodeId> victims;
  for (const net::NodeId m : tree.members()) {
    if (!survivors[static_cast<std::size_t>(m)]) victims.push_back(m);
  }
  if (victims.empty()) {
    out.unaffected_members = member_count_;
    return out;
  }
  out.link_on_tree = true;
  out.recovered = true;
  for (const net::NodeId victim : victims) {
    // Per-domain detours route through the domain builder's oracle, so
    // the whole victim sweep shares one workspace pool per domain.
    const proto::RecoveryOutcome rec = proto::local_detour_recovery(
        view->graph(), tree, victim, proto::Failure::of_link(*local_link),
        &builder->oracle());
    if (!rec.recovered) {
      out.recovered = false;
      continue;
    }
    out.recovery_distance += rec.recovery_distance;
    out.recovery_hops += rec.recovery_hops;
  }

  // Receivers that actually lost data, network-wide.
  int receivers_lost = 0;
  if (transit_level) {
    for (const net::NodeId local_victim : victims) {
      const net::NodeId global = view->to_global(local_victim);
      const DomainId gd =
          topology_->domain_of_node[static_cast<std::size_t>(global)];
      if (gd == net::kTransitDomain) {
        // A transit-resident receiver.
        if (is_member(global)) ++receivers_lost;
      } else {
        // A disconnected agent starves its whole domain.
        const auto* dt = domain_tree(gd);
        if (dt != nullptr) receivers_lost += dt->tree().member_count();
        // Subtract the agent itself when it is a relay member, not a
        // receiver (the source-domain agent case).
        if (gd == source_domain_ && agent_of_domain(gd) != source_ &&
            !is_member(agent_of_domain(gd))) {
          --receivers_lost;
        }
      }
    }
  } else {
    for (const net::NodeId local_victim : victims) {
      if (is_member(view->to_global(local_victim))) ++receivers_lost;
    }
  }
  out.disconnected_members = receivers_lost;
  out.unaffected_members = member_count_ - receivers_lost;
  return out;
}

}  // namespace smrp::hier
