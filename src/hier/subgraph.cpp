#include "hier/subgraph.hpp"

#include <stdexcept>

namespace smrp::hier {

SubgraphView::SubgraphView(const Graph& parent,
                           std::vector<NodeId> global_nodes)
    : graph_(static_cast<int>(global_nodes.size())),
      to_global_nodes_(std::move(global_nodes)) {
  for (NodeId local = 0; local < static_cast<NodeId>(to_global_nodes_.size());
       ++local) {
    const NodeId global = to_global_nodes_[static_cast<std::size_t>(local)];
    if (!parent.valid_node(global)) throw std::out_of_range("bad node");
    if (!to_local_.emplace(global, local).second) {
      throw std::invalid_argument("duplicate node in subgraph");
    }
  }
  for (LinkId l = 0; l < parent.link_count(); ++l) {
    const net::Link& link = parent.link(l);
    const auto a = to_local_.find(link.a);
    const auto b = to_local_.find(link.b);
    if (a == to_local_.end() || b == to_local_.end()) continue;
    const LinkId local = graph_.add_link(a->second, b->second, link.weight);
    to_global_links_.push_back(l);
    link_to_local_.emplace(l, local);
  }
}

NodeId SubgraphView::to_local(NodeId global) const {
  const auto it = to_local_.find(global);
  if (it == to_local_.end()) throw std::out_of_range("node not in subgraph");
  return it->second;
}

NodeId SubgraphView::to_global(NodeId local) const {
  if (local < 0 || static_cast<std::size_t>(local) >= to_global_nodes_.size()) {
    throw std::out_of_range("bad local node");
  }
  return to_global_nodes_[static_cast<std::size_t>(local)];
}

std::optional<LinkId> SubgraphView::link_to_local(LinkId global) const {
  const auto it = link_to_local_.find(global);
  if (it == link_to_local_.end()) return std::nullopt;
  return it->second;
}

LinkId SubgraphView::link_to_global(LinkId local) const {
  if (local < 0 ||
      static_cast<std::size_t>(local) >= to_global_links_.size()) {
    throw std::out_of_range("bad local link");
  }
  return to_global_links_[static_cast<std::size_t>(local)];
}

}  // namespace smrp::hier
