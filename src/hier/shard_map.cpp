#include "hier/shard_map.hpp"

#include <stdexcept>

namespace smrp::hier {

sim::ShardPlan make_shard_plan(const net::TransitStubTopology& topology,
                               int shards) {
  if (static_cast<net::NodeId>(topology.domain_of_node.size()) !=
      topology.graph.node_count()) {
    throw std::invalid_argument(
        "topology domain map does not cover the graph");
  }
  return sim::build_shard_plan(topology.domain_of_node, shards);
}

}  // namespace smrp::hier
