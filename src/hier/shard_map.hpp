// Transit-stub partition → DES shard plan (DESIGN.md §15). The domain
// structure the hierarchical recovery architecture already maintains is
// exactly the locality the sharded simulator needs: stub domains talk to
// the rest of the world only through their gateway's access link, so a
// shard = a set of whole domains has all its fast-path traffic on-shard
// and the conservative lookahead is the cheapest inter-domain link.
//
// The builder lives in hier (not sim) because sim must stay free of
// topology-generation dependencies; the plan type itself is sim's.
#pragma once

#include "net/transit_stub.hpp"
#include "sim/sharded.hpp"

namespace smrp::hier {

/// Map the topology's domains onto at most `shards` shards: the transit
/// core (domain 0, plus anything the generator left domainless) pins to
/// shard 0 — the control shard, which therefore owns every cross-domain
/// link endpoint on the transit side — and stub domains are packed
/// longest-first onto the least-loaded shard. The effective shard count
/// is clamped to the number of populated domains; shards <= 1 yields the
/// trivial single-shard plan. Deterministic for a given (topology,
/// shards) pair.
[[nodiscard]] sim::ShardPlan make_shard_plan(
    const net::TransitStubTopology& topology, int shards);

}  // namespace smrp::hier
