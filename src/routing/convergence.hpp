// In-protocol convergence detection (DESIGN.md §13): the honest
// counterpart of the harness's omniscient restoration clock. Real routers
// cannot watch payload gaps from above — the only convergence signal they
// can act on is one carried by protocol messages. This module adapts
// Dijkstra–Scholten-style termination detection to SMRP's soft-state
// session tree:
//
//   - every node maintains a *local quiescence* verdict (no pending SPF,
//     no recent LSA churn, no in-flight repair/ring/graft activity,
//     data-plane watchdog fed) and latches the instant it last became
//     quiet (QuietTracker);
//   - each on-tree node folds its children's reported quiet-since values
//     into its own (combine_quiet_since: any non-quiet descendant poisons
//     the subtree; otherwise the *latest* disturbance wins) and piggybacks
//     the aggregate on the periodic StateRefresh it already sends its
//     parent — the detection wave costs zero extra messages;
//   - the source runs a ConvergenceDetector over the root aggregate and
//     *detects* convergence once the whole tree has been quiet for a hold
//     interval, purely from information that arrived in-protocol.
//
// Detection necessarily lags ground truth (reports propagate one refresh
// interval per tree level, and the hold interval adds slack), so
// `detected_ms >= oracle total_ms` — the never-early invariant the core
// expectations ruleset enforces. Everything here is pure computation over
// values the caller feeds in: no simulator events, no randomness, no
// telemetry — so running the detector never perturbs a seeded run, and
// attached/detached telemetry stays bit-identical even when adaptive
// triggers act on the verdict.
#pragma once

#include <cstdint>
#include <optional>

namespace smrp::routing {

/// "Not quiet" sentinel for quiet-since values (valid sim times are
/// non-negative, so any negative value means the subtree is still active).
inline constexpr double kNotQuiet = -1.0;

struct ConvergenceConfig {
  bool enabled = true;  ///< run the detection wave (observation only)
  /// The root aggregate must stay quiet this long (ms) before the source
  /// declares convergence. Absorbs one refresh interval of report jitter.
  double hold = 150.0;
  /// A child report older than this (ms) no longer vouches for its
  /// subtree; the child counts as non-quiet until it reports again.
  double report_timeout = 350.0;
  /// LSA origination/acceptance within this window (ms) means the local
  /// control plane is still churning.
  double lsa_quiet = 100.0;
};

/// Fold two quiet-since values: a non-quiet side poisons the result;
/// otherwise the subtree has only been quiet since its *latest* local
/// disturbance.
[[nodiscard]] inline double combine_quiet_since(double a, double b) {
  if (a < 0.0 || b < 0.0) return kNotQuiet;
  return a > b ? a : b;
}

/// Latches the instant a node last became (and stayed) quiet. Feed it the
/// current verdict of the local quiescence predicate each maintenance
/// tick; it remembers when the current quiet stretch began.
class QuietTracker {
 public:
  /// Update with the predicate's verdict at `now`; returns quiet-since
  /// (kNotQuiet while disturbed).
  double update(bool locally_quiet, double now) {
    if (!locally_quiet) {
      quiet_since_ = kNotQuiet;
    } else if (quiet_since_ < 0.0) {
      quiet_since_ = now;
    }
    return quiet_since_;
  }

  [[nodiscard]] double quiet_since() const noexcept { return quiet_since_; }
  void reset() noexcept { quiet_since_ = kNotQuiet; }

 private:
  double quiet_since_ = kNotQuiet;
};

/// One source-side detection verdict.
struct Detection {
  std::uint64_t epoch = 0;   ///< 1-based count of detections so far
  double at = 0.0;           ///< sim time the source declared convergence
  double quiet_since = 0.0;  ///< root aggregate quiet-since at declaration
};

/// Edge-triggered detector the session source runs over the root
/// aggregate. step() returns a Detection exactly once per convergence
/// epoch: when the aggregate has been quiet for `hold`, and not again
/// until the wave is disturbed. A disturbance is visible either as a
/// non-quiet aggregate or — for churn so brief the subtree re-quiesced
/// between reports — as the aggregate quiet-since timestamp moving: the
/// wave carries *when* quiet began, so a jump is retrospective proof the
/// tree was disturbed even if no report ever said "not quiet".
class ConvergenceDetector {
 public:
  ConvergenceDetector() = default;
  explicit ConvergenceDetector(ConvergenceConfig config) : config_(config) {}

  std::optional<Detection> step(double aggregate_quiet_since, double now) {
    if (aggregate_quiet_since < 0.0 ||
        now - aggregate_quiet_since < config_.hold) {
      converged_ = false;
      return std::nullopt;
    }
    if (converged_ && aggregate_quiet_since == quiet_since_) {
      return std::nullopt;  // already declared this epoch
    }
    converged_ = true;
    quiet_since_ = aggregate_quiet_since;
    ++epoch_;
    return Detection{epoch_, now, aggregate_quiet_since};
  }

  /// Whether the source currently considers the tree converged.
  [[nodiscard]] bool converged() const noexcept { return converged_; }
  /// Detections declared so far (epochs).
  [[nodiscard]] std::uint64_t detections() const noexcept { return epoch_; }
  [[nodiscard]] const ConvergenceConfig& config() const noexcept {
    return config_;
  }

 private:
  ConvergenceConfig config_;
  std::uint64_t epoch_ = 0;
  double quiet_since_ = kNotQuiet;  ///< aggregate behind the last epoch
  bool converged_ = false;
};

/// Upper bound (ms) on detection lag after the network actually settles:
/// reports climb one tree level per refresh interval, a silent child must
/// first age out of report_timeout, and the hold interval caps the tail.
/// Used by tests and soaks to size the post-quiescence run tail.
[[nodiscard]] double convergence_detection_bound(
    const ConvergenceConfig& config, double refresh_interval, int depth);

}  // namespace smrp::routing
