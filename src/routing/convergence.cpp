#include "routing/convergence.hpp"

namespace smrp::routing {

double convergence_detection_bound(const ConvergenceConfig& config,
                                   double refresh_interval, int depth) {
  if (depth < 1) depth = 1;
  // Worst case per level: the child just missed its parent's fold, so its
  // fresh quiet report waits one full refresh interval; stale state at the
  // parent additionally ages out over report_timeout. The source then
  // holds the quiet aggregate for `hold` before declaring, and only
  // declares at its own next maintenance tick (one more interval).
  return config.report_timeout + depth * refresh_interval + config.hold +
         refresh_interval;
}

}  // namespace smrp::routing
