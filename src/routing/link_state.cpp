#include "routing/link_state.hpp"

#include <limits>
#include <queue>

#include "net/shortest_path.hpp"
#include <stdexcept>

namespace smrp::routing {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

LinkStateRouting::LinkStateRouting(sim::Simulator& simulator,
                                   sim::SimNetwork& network,
                                   RoutingConfig config)
    : simulator_(&simulator),
      network_(&network),
      config_(config),
      oracle_(std::make_unique<net::RoutingOracle>(network.graph())) {
  agents_.resize(static_cast<std::size_t>(network.graph().node_count()));
}

std::vector<std::pair<NodeId, double>> LinkStateRouting::alive_adjacencies(
    NodeId n) const {
  const AgentState& agent = agents_[static_cast<std::size_t>(n)];
  std::vector<std::pair<NodeId, double>> out;
  for (const net::Adjacency& adj : network_->graph().neighbors(n)) {
    const auto it = agent.neighbor_up.find(adj.neighbor);
    if (it != agent.neighbor_up.end() && it->second) {
      out.emplace_back(adj.neighbor,
                       network_->graph().link(adj.link).weight);
    }
  }
  return out;
}

void LinkStateRouting::start() {
  if (started_) throw std::logic_error("routing already started");
  started_ = true;
  const net::Graph& g = network_->graph();
  const Time now = simulator_->now();

  // Pre-converged bootstrap: every node believes all of its physical
  // neighbors are alive and holds everyone's initial LSA.
  std::vector<sim::LsaMsg> initial;
  initial.reserve(static_cast<std::size_t>(g.node_count()));
  for (NodeId n = 0; n < g.node_count(); ++n) {
    AgentState& agent = agents_[static_cast<std::size_t>(n)];
    for (const net::Adjacency& adj : g.neighbors(n)) {
      agent.last_hello[adj.neighbor] = now;
      agent.neighbor_up[adj.neighbor] = true;
    }
    sim::LsaMsg lsa;
    lsa.origin = n;
    lsa.seq = 1;
    lsa.adjacencies = alive_adjacencies(n);
    initial.push_back(std::move(lsa));
  }
  for (NodeId n = 0; n < g.node_count(); ++n) {
    AgentState& agent = agents_[static_cast<std::size_t>(n)];
    for (const sim::LsaMsg& lsa : initial) agent.lsdb[lsa.origin] = lsa;
    agent.last_activity = now;
    run_spf(n);
    // Stagger periodic ticks so the fleet does not fire in lockstep.
    const Time phase =
        config_.hello_interval * (0.1 + 0.8 * (n % 13) / 13.0);
    simulator_->schedule(phase, [this, n] { tick(n); });
  }
  last_table_change_ = now;
}

void LinkStateRouting::tick(NodeId n) {
  if (!network_->node_up(n)) {
    // A down node neither probes nor ages; re-check later (it may heal).
    simulator_->schedule(config_.hello_interval, [this, n] { tick(n); });
    return;
  }
  AgentState& agent = agents_[static_cast<std::size_t>(n)];
  const Time now = simulator_->now();

  // Probe every physical adjacency (down links just lose the HELLO).
  network_->broadcast(n, sim::HelloMsg{});

  // Liveness verdicts.
  bool changed = false;
  for (auto& [neighbor, up] : agent.neighbor_up) {
    const bool fresh = now - agent.last_hello[neighbor] <= config_.dead_interval;
    if (up != fresh) {
      up = fresh;
      changed = true;
    }
  }
  if (changed) originate_lsa(n);

  simulator_->schedule(config_.hello_interval, [this, n] { tick(n); });
}

void LinkStateRouting::originate_lsa(NodeId n) {
  AgentState& agent = agents_[static_cast<std::size_t>(n)];
  sim::LsaMsg lsa;
  lsa.origin = n;
  lsa.seq = ++agent.own_seq;
  lsa.adjacencies = alive_adjacencies(n);
  agent.lsdb[n] = lsa;
  agent.last_activity = simulator_->now();
  schedule_spf(n);
  flood(n, lsa, net::kNoNode);
}

void LinkStateRouting::flood(NodeId at, const sim::LsaMsg& lsa,
                             NodeId except) {
  ++floods_;
  for (const net::Adjacency& adj : network_->graph().neighbors(at)) {
    if (adj.neighbor == except) continue;
    network_->send(at, adj.neighbor, lsa);
  }
}

bool LinkStateRouting::handle(NodeId at, NodeId from, const Message& message) {
  if (std::holds_alternative<sim::HelloMsg>(message)) {
    AgentState& agent = agents_[static_cast<std::size_t>(at)];
    agent.last_hello[from] = simulator_->now();
    // A HELLO from a neighbor believed dead revives it immediately.
    auto it = agent.neighbor_up.find(from);
    if (it != agent.neighbor_up.end() && !it->second) {
      it->second = true;
      originate_lsa(at);
    }
    return true;
  }
  if (const auto* lsa = std::get_if<sim::LsaMsg>(&message)) {
    AgentState& agent = agents_[static_cast<std::size_t>(at)];
    const auto it = agent.lsdb.find(lsa->origin);
    if (it != agent.lsdb.end() && it->second.seq >= lsa->seq) {
      return true;  // stale or duplicate: do not re-flood
    }
    agent.lsdb[lsa->origin] = *lsa;
    agent.last_activity = simulator_->now();
    schedule_spf(at);
    flood(at, *lsa, from);
    return true;
  }
  return false;
}

void LinkStateRouting::schedule_spf(NodeId n) {
  AgentState& agent = agents_[static_cast<std::size_t>(n)];
  if (agent.spf_pending) return;
  agent.spf_pending = true;
  simulator_->schedule(config_.spf_delay, [this, n] {
    agents_[static_cast<std::size_t>(n)].spf_pending = false;
    run_spf(n);
  });
}

void LinkStateRouting::run_spf(NodeId n) {
  const net::Graph& g = network_->graph();
  const auto count = static_cast<std::size_t>(g.node_count());
  AgentState& agent = agents_[static_cast<std::size_t>(n)];

  // Build the LSDB view: a directed edge u→v holds iff u's LSA lists v;
  // the SPF uses it only when v's LSA also lists u (two-way check).
  const auto lists = [&](NodeId u, NodeId v) -> double {
    const auto it = agent.lsdb.find(u);
    if (it == agent.lsdb.end()) return kInf;
    for (const auto& [neighbor, weight] : it->second.adjacencies) {
      if (neighbor == v) return weight;
    }
    return kInf;
  };

  std::vector<double> dist(count, kInf);
  std::vector<NodeId> first_hop(count, net::kNoNode);
  using Entry = std::pair<double, NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue;
  dist[static_cast<std::size_t>(n)] = 0.0;
  queue.push({0.0, n});
  std::vector<char> settled(count, 0);
  while (!queue.empty()) {
    const auto [d, u] = queue.top();
    queue.pop();
    if (settled[static_cast<std::size_t>(u)]) continue;
    settled[static_cast<std::size_t>(u)] = 1;
    const auto lsa_it = agent.lsdb.find(u);
    if (lsa_it == agent.lsdb.end()) continue;
    for (const auto& [v, w] : lsa_it->second.adjacencies) {
      if (lists(v, u) == kInf) continue;  // not bidirectional
      const double candidate = d + w;
      if (candidate < dist[static_cast<std::size_t>(v)]) {
        dist[static_cast<std::size_t>(v)] = candidate;
        first_hop[static_cast<std::size_t>(v)] =
            (u == n) ? v : first_hop[static_cast<std::size_t>(u)];
        queue.push({candidate, v});
      }
    }
  }

  if (agent.table != first_hop) {
    agent.table = std::move(first_hop);
    last_table_change_ = simulator_->now();
  }
}

NodeId LinkStateRouting::next_hop(NodeId at, NodeId dst) const {
  if (!network_->graph().valid_node(at) || !network_->graph().valid_node(dst)) {
    return net::kNoNode;
  }
  if (at == dst) return at;
  const AgentState& agent = agents_[static_cast<std::size_t>(at)];
  if (agent.table.empty()) return net::kNoNode;
  return agent.table[static_cast<std::size_t>(dst)];
}

bool LinkStateRouting::converged() const {
  const net::Graph& g = network_->graph();
  // Ground truth: distances over currently-up links and nodes.
  net::ExclusionSet excluded(g);
  for (LinkId l = 0; l < g.link_count(); ++l) {
    if (!network_->link_up(l)) excluded.ban_link(l);
  }
  for (NodeId n = 0; n < g.node_count(); ++n) {
    if (!network_->node_up(n)) excluded.ban_node(n);
  }
  for (NodeId src = 0; src < g.node_count(); ++src) {
    if (!network_->node_up(src)) continue;
    const net::RoutingOracle::TreePtr truth_tree = oracle_->spf(src, excluded);
    const net::ShortestPathTree& truth = *truth_tree;
    for (NodeId dst = 0; dst < g.node_count(); ++dst) {
      if (dst == src || !network_->node_up(dst)) continue;
      if (!truth.reachable(dst)) continue;
      // Follow the next-hop chain; it must reach dst over up links within
      // node_count() hops.
      NodeId cur = src;
      int hops = 0;
      while (cur != dst) {
        const NodeId hop = next_hop(cur, dst);
        if (hop == net::kNoNode || ++hops > g.node_count()) return false;
        const auto link = g.link_between(cur, hop);
        if (!link || !network_->link_up(*link)) return false;
        cur = hop;
      }
    }
  }
  return true;
}

}  // namespace smrp::routing
