// OSPF-lite link-state unicast routing running on the discrete-event
// simulator: periodic HELLOs for neighbor liveness, sequence-numbered LSA
// flooding, and per-node SPF with a hold-down. This is the unicast
// substrate whose (slow) reconvergence dominates PIM failure recovery
// (Wang et al. [25], the paper's motivation) — bench_restoration_time
// measures exactly that effect against SMRP's local detour.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "net/routing_oracle.hpp"
#include "sim/network.hpp"

namespace smrp::routing {

using net::LinkId;
using net::NodeId;
using sim::Message;
using sim::Time;

struct RoutingConfig {
  Time hello_interval = 50.0;  ///< ms between HELLOs on every adjacency
  Time dead_interval = 175.0;  ///< silence before a neighbor is declared dead
  Time spf_delay = 20.0;       ///< hold-down between LSDB change and SPF run
};

/// Hosts one routing agent per node. The surrounding application demuxes
/// incoming sim::Messages: HelloMsg/LsaMsg belong to this protocol.
class LinkStateRouting {
 public:
  LinkStateRouting(sim::Simulator& simulator, sim::SimNetwork& network,
                   RoutingConfig config = {});

  /// Install pre-converged state (full LSDBs and routing tables, as if the
  /// network had been stable for a long time) and start the periodic
  /// HELLO/liveness machinery.
  void start();

  /// Process a message addressed to `at`. Returns true if it was a
  /// routing message (consumed), false otherwise.
  bool handle(NodeId at, NodeId from, const Message& message);

  /// `at`'s current next hop toward `dst`; kNoNode when unknown.
  [[nodiscard]] NodeId next_hop(NodeId at, NodeId dst) const;

  /// Whether `at` currently has any route to `dst`.
  [[nodiscard]] bool has_route(NodeId at, NodeId dst) const {
    return next_hop(at, dst) != net::kNoNode;
  }

  /// Time of the most recent routing-table change anywhere (the paper's
  /// "routing re-stabilisation" instant).
  [[nodiscard]] Time last_table_change() const noexcept {
    return last_table_change_;
  }

  /// Whether `at` has an SPF run scheduled but not yet executed. Part of
  /// the convergence-detection quiescence predicate (DESIGN.md §13):
  /// a node with a pending SPF has not finished reacting to the LSDB.
  [[nodiscard]] bool spf_pending(NodeId at) const {
    return agents_[static_cast<std::size_t>(at)].spf_pending;
  }

  /// Sim time of the last LSA activity `at` saw — its own origination or
  /// an accepted (non-stale) flood; the pre-converged bootstrap counts.
  /// < 0 before start(). Recent activity means the control plane around
  /// `at` is still churning, so `at` cannot claim local quiescence.
  [[nodiscard]] Time last_lsa_activity(NodeId at) const {
    return agents_[static_cast<std::size_t>(at)].last_activity;
  }

  /// Oracle check (tests): every up node's next-hop chain to every
  /// reachable destination makes progress over up links only.
  [[nodiscard]] bool converged() const;

  [[nodiscard]] std::uint64_t lsa_floods() const noexcept { return floods_; }

 private:
  struct AgentState {
    std::map<NodeId, Time> last_hello;   ///< per physical neighbor
    std::map<NodeId, bool> neighbor_up;  ///< current liveness verdict
    std::map<NodeId, sim::LsaMsg> lsdb;  ///< by origin
    std::uint64_t own_seq = 1;
    std::vector<NodeId> table;  ///< next hop per destination
    bool spf_pending = false;
    Time last_activity = -1.0;  ///< last LSA originated or accepted here
  };

  void tick(NodeId n);
  void originate_lsa(NodeId n);
  void flood(NodeId at, const sim::LsaMsg& lsa, NodeId except);
  void schedule_spf(NodeId n);
  void run_spf(NodeId n);
  [[nodiscard]] std::vector<std::pair<NodeId, double>> alive_adjacencies(
      NodeId n) const;

  sim::Simulator* simulator_;
  sim::SimNetwork* network_;
  RoutingConfig config_;
  /// Ground-truth SPF service for converged(): every source shares one
  /// exclusion signature, so repeated convergence checks under the same
  /// failure state hit the cache. const unique_ptr: usable from const
  /// methods (lookups mutate only the oracle's own cache, behind its
  /// mutex), while the oracle itself stays immovable.
  const std::unique_ptr<net::RoutingOracle> oracle_;
  std::vector<AgentState> agents_;
  Time last_table_change_ = 0.0;
  std::uint64_t floods_ = 0;
  bool started_ = false;
};

}  // namespace smrp::routing
