// Causal episode spans: the protocol layers open a span when an episode
// begins (a service outage, a repair episode, one expanding-ring flood, a
// graft installation, a join), attach numeric attributes, and close it
// when the episode resolves. Spans carry sim-time start/end and a parent
// id, so a chaos soak decomposes into waterfalls:
//
//   outage(node 6)
//   ├── repair #1      detection → response adopted
//   │   ├── ring ttl=1
//   │   └── ring ttl=2
//   └── graft          response adopted → first payload
//
// The collector is append-only and purely observational: opening or
// closing a span never schedules simulator work or consumes randomness,
// so telemetry cannot perturb a seeded run.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace smrp::obs {

using SpanId = std::uint64_t;
inline constexpr SpanId kNoSpan = 0;

enum class SpanStatus : unsigned char {
  kOpen,        ///< still in flight
  kOk,          ///< episode resolved
  kFailed,      ///< episode gave up (ring budget exhausted, crash wiped it)
  kSuperseded,  ///< replaced by a newer episode before resolving
  kTruncated,   ///< still open when the run ended (closed by close_open)
};

[[nodiscard]] std::string_view span_status_name(SpanStatus status);
/// Inverse of span_status_name; kOpen on an unknown name.
[[nodiscard]] SpanStatus span_status_from_name(std::string_view name);

struct Span {
  SpanId id = kNoSpan;
  SpanId parent = kNoSpan;
  std::string kind;        ///< e.g. "outage", "repair", "ring", "graft"
  std::int64_t node = -1;  ///< protocol agent the episode belongs to
  double start = 0.0;      ///< sim time (ms)
  double end = -1.0;       ///< sim time (ms); < 0 while open
  SpanStatus status = SpanStatus::kOpen;
  /// Numeric attributes in attachment order (e.g. {"ttl", 4}).
  std::vector<std::pair<std::string, double>> attrs;

  [[nodiscard]] bool open() const noexcept {
    return status == SpanStatus::kOpen;
  }
  /// end - start; meaningless (negative) while open.
  [[nodiscard]] double duration() const noexcept { return end - start; }
  [[nodiscard]] const double* attr(std::string_view key) const noexcept;
};

/// Online tap into the span stream: notified once per span, at close time,
/// when every attribute is final (instrumentation attaches attrs before
/// closing). The expectations checker (obs/expect) evaluates rules here
/// without a post-hoc file pass.
class SpanObserver {
 public:
  virtual ~SpanObserver() = default;
  virtual void on_span_closed(const Span& span) = 0;
};

class SpanCollector {
 public:
  /// Open a span; ids are dense and start at 1. `parent` may be kNoSpan.
  SpanId open(std::string kind, std::int64_t node, double now,
              SpanId parent = kNoSpan);

  /// Attach (or overwrite) a numeric attribute. No-op on unknown ids.
  void attr(SpanId id, std::string key, double value);

  /// Close a span. Closing kNoSpan, an unknown id, or an already-closed
  /// span is a no-op, but the latter is counted in double_closes() so
  /// tests can assert instrumentation discipline.
  void close(SpanId id, double now, SpanStatus status = SpanStatus::kOk);

  /// Close every still-open span as kTruncated (end-of-run flush): the run
  /// ended mid-episode, which exporters record explicitly and the
  /// expectations checker can flag.
  void close_open(double now);

  /// Freeze the collector: later open() calls are ignored (and counted in
  /// late_opens()) so a straggling emitter cannot reopen spans after the
  /// end-of-run flush and corrupt the truncated-span accounting.
  void seal() noexcept { sealed_ = true; }
  [[nodiscard]] bool sealed() const noexcept { return sealed_; }
  /// open() calls rejected after seal(); 0 under correct usage.
  [[nodiscard]] std::uint64_t late_opens() const noexcept {
    return late_opens_;
  }

  /// Attach (or detach with nullptr) a close-time tap; not owned.
  void set_observer(SpanObserver* observer) noexcept { observer_ = observer; }

  [[nodiscard]] const std::vector<Span>& spans() const noexcept {
    return spans_;
  }
  /// Span by id, nullptr when unknown.
  [[nodiscard]] const Span* find(SpanId id) const noexcept;
  [[nodiscard]] std::size_t open_count() const noexcept { return open_; }
  /// Attempts to close an already-closed span; 0 under correct usage.
  [[nodiscard]] std::uint64_t double_closes() const noexcept {
    return double_closes_;
  }
  /// Spans of the given kind (any status).
  [[nodiscard]] std::size_t count(std::string_view kind) const noexcept;

 private:
  std::vector<Span> spans_;
  std::size_t open_ = 0;
  std::uint64_t double_closes_ = 0;
  std::uint64_t late_opens_ = 0;
  bool sealed_ = false;
  SpanObserver* observer_ = nullptr;
};

}  // namespace smrp::obs
