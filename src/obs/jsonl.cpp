#include "obs/jsonl.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <stdexcept>

namespace smrp::obs {

namespace {

/// Round-trip double formatting (%.17g) so a re-export of the same run
/// diffs bit-for-bit. Integral values print without an exponent or
/// trailing zeros because %g trims them.
void append_number(std::string& out, double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out += buffer;
}

void append_number(std::string& out, std::uint64_t value) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%" PRIu64, value);
  out += buffer;
}

void append_string(std::string& out, std::string_view value) {
  out += '"';
  for (const char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

class Line {
 public:
  explicit Line(std::string_view type) {
    text_ = "{\"type\":";
    append_string(text_, type);
  }
  Line& field(std::string_view key, double value) {
    text_ += ',';
    append_string(text_, key);
    text_ += ':';
    append_number(text_, value);
    return *this;
  }
  Line& field(std::string_view key, std::uint64_t value) {
    text_ += ',';
    append_string(text_, key);
    text_ += ':';
    append_number(text_, value);
    return *this;
  }
  Line& field(std::string_view key, std::string_view value) {
    text_ += ',';
    append_string(text_, key);
    text_ += ':';
    append_string(text_, value);
    return *this;
  }
  void emit(std::ostream& out) {
    text_ += "}\n";
    out << text_;
  }

 private:
  std::string text_;
};

}  // namespace

void JsonlSink::write_snapshot(const Telemetry& telemetry, double now,
                               std::string_view run_label) {
  const SpanCollector& spans = telemetry.spans;
  const MetricsRegistry& metrics = telemetry.metrics;

  Line meta("meta");
  meta.field("version", static_cast<std::uint64_t>(kJsonlVersion))
      .field("run", run_label)
      .field("at", now)
      .field("spans", static_cast<std::uint64_t>(spans.spans().size()))
      .field("open_spans", static_cast<std::uint64_t>(spans.open_count()))
      .field("events",
             static_cast<std::uint64_t>(telemetry.events.size()))
      .field("samples",
             static_cast<std::uint64_t>(telemetry.samples().size()));
  meta.emit(*out_);

  for (const Span& span : spans.spans()) {
    // A span still open at export time was cut off by the end of the run:
    // record that explicitly (same status Telemetry::finish would assign)
    // instead of pretending the episode is healthy and in flight.
    Line line("span");
    line.field("id", span.id)
        .field("parent", span.parent)
        .field("kind", span.kind)
        .field("node", static_cast<double>(span.node))
        .field("start", span.start)
        .field("end", span.open() ? now : span.end)
        .field("status", span.open()
                             ? span_status_name(SpanStatus::kTruncated)
                             : span_status_name(span.status));
    for (const auto& [key, value] : span.attrs) line.field(key, value);
    line.emit(*out_);
  }

  for (const Event& event : telemetry.events.events()) {
    Line line("event");
    line.field("kind", event.kind)
        .field("node", static_cast<double>(event.node))
        .field("t", event.t);
    for (const auto& [key, value] : event.attrs) line.field(key, value);
    line.emit(*out_);
  }

  for (const Sample& sample : telemetry.samples()) {
    Line line("sample");
    line.field("t", sample.t)
        .field("name", sample.name)
        .field("value", sample.value);
    line.emit(*out_);
  }

  for (const auto& [name, counter] : metrics.counters()) {
    Line line("counter");
    line.field("name", name).field("value", counter.value());
    line.emit(*out_);
  }
  for (const auto& [name, gauge] : metrics.gauges()) {
    Line line("gauge");
    line.field("name", name)
        .field("value", gauge.value())
        .field("max", gauge.max());
    line.emit(*out_);
  }
  for (const auto& [name, histogram] : metrics.histograms()) {
    const HistogramSummary s = histogram.summary();
    Line line("hist");
    line.field("name", name)
        .field("count", s.count)
        .field("sum", s.sum)
        .field("mean", s.mean)
        .field("stddev", s.stddev)
        .field("min", s.min)
        .field("max", s.max)
        .field("p50", s.p50)
        .field("p90", s.p90)
        .field("p99", s.p99);
    line.emit(*out_);
  }
  out_->flush();
}

void write_jsonl_file(const Telemetry& telemetry, double now,
                      const std::string& path, std::string_view run_label) {
  std::ofstream file(path, std::ios::trunc);
  if (!file) {
    throw std::runtime_error("cannot open telemetry output: " + path);
  }
  JsonlSink sink(file);
  sink.write_snapshot(telemetry, now, run_label);
  if (!file) {
    throw std::runtime_error("failed writing telemetry output: " + path);
  }
}

}  // namespace smrp::obs
