#include "obs/span.hpp"

#include <utility>

namespace smrp::obs {

std::string_view span_status_name(SpanStatus status) {
  switch (status) {
    case SpanStatus::kOpen:
      return "open";
    case SpanStatus::kOk:
      return "ok";
    case SpanStatus::kFailed:
      return "failed";
    case SpanStatus::kSuperseded:
      return "superseded";
    case SpanStatus::kTruncated:
      return "truncated";
  }
  return "?";
}

SpanStatus span_status_from_name(std::string_view name) {
  if (name == "ok") return SpanStatus::kOk;
  if (name == "failed") return SpanStatus::kFailed;
  if (name == "superseded") return SpanStatus::kSuperseded;
  if (name == "truncated") return SpanStatus::kTruncated;
  return SpanStatus::kOpen;
}

const double* Span::attr(std::string_view key) const noexcept {
  for (const auto& [k, v] : attrs) {
    if (k == key) return &v;
  }
  return nullptr;
}

SpanId SpanCollector::open(std::string kind, std::int64_t node, double now,
                           SpanId parent) {
  if (sealed_) {
    ++late_opens_;
    return kNoSpan;
  }
  Span span;
  span.id = static_cast<SpanId>(spans_.size()) + 1;
  span.parent = parent;
  span.kind = std::move(kind);
  span.node = node;
  span.start = now;
  spans_.push_back(std::move(span));
  ++open_;
  return spans_.back().id;
}

void SpanCollector::attr(SpanId id, std::string key, double value) {
  if (id == kNoSpan || id > spans_.size()) return;
  Span& span = spans_[static_cast<std::size_t>(id - 1)];
  for (auto& [k, v] : span.attrs) {
    if (k == key) {
      v = value;
      return;
    }
  }
  span.attrs.emplace_back(std::move(key), value);
}

void SpanCollector::close(SpanId id, double now, SpanStatus status) {
  if (id == kNoSpan || id > spans_.size()) return;
  Span& span = spans_[static_cast<std::size_t>(id - 1)];
  if (!span.open()) {
    ++double_closes_;
    return;
  }
  span.end = now;
  span.status = status == SpanStatus::kOpen ? SpanStatus::kOk : status;
  --open_;
  if (observer_ != nullptr) observer_->on_span_closed(span);
}

void SpanCollector::close_open(double now) {
  for (Span& span : spans_) {
    if (!span.open()) continue;
    span.end = now;
    span.status = SpanStatus::kTruncated;
    --open_;
    if (observer_ != nullptr) observer_->on_span_closed(span);
  }
}

const Span* SpanCollector::find(SpanId id) const noexcept {
  if (id == kNoSpan || id > spans_.size()) return nullptr;
  return &spans_[static_cast<std::size_t>(id - 1)];
}

std::size_t SpanCollector::count(std::string_view kind) const noexcept {
  std::size_t n = 0;
  for (const Span& span : spans_) {
    if (span.kind == kind) ++n;
  }
  return n;
}

}  // namespace smrp::obs
