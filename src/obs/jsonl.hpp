// JSONL trace export: one flat JSON object per line, streamed to any
// ostream. A snapshot section is
//
//   {"type":"meta","version":1,"run":"<label>","at":<ms>,...}
//   {"type":"span","id":1,"parent":0,"kind":"outage","node":6,...}   × N
//   {"type":"event","kind":"forward","node":6,"t":2100,"seq":41,...} × N
//   {"type":"sample","t":500,"name":"smrp.sim.queue_depth","value":3} × N
//   {"type":"counter","name":"smrp.sim.tx.DATA","value":1234}        × N
//   {"type":"gauge","name":"smrp.sim.queue_depth",...}               × N
//   {"type":"hist","name":"smrp.proto.outage_ms","count":9,...}      × N
//
// Every value is a string or a number (span attributes are flattened into
// the span line), so consumers need no recursive JSON parser. Doubles are
// printed with round-trip precision: two exports of the same seeded run
// diff bit-for-bit. The schema (DESIGN.md §8) is validated end-to-end by
// tools/trace_report, which CI runs against a chaos soak.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "obs/telemetry.hpp"

namespace smrp::obs {

inline constexpr int kJsonlVersion = 1;

/// Streams snapshot sections to an ostream it does not own.
class JsonlSink {
 public:
  explicit JsonlSink(std::ostream& out) : out_(&out) {}

  /// Append one full snapshot (meta + all spans + all metrics). `now` is
  /// the sim time of the snapshot; `run_label` distinguishes sections when
  /// several runs share a file (e.g. one bench, many topologies).
  void write_snapshot(const Telemetry& telemetry, double now,
                      std::string_view run_label = "run");

 private:
  std::ostream* out_;
};

/// One-shot convenience: write a single snapshot to `path` (truncating).
/// Throws std::runtime_error when the file cannot be written.
void write_jsonl_file(const Telemetry& telemetry, double now,
                      const std::string& path,
                      std::string_view run_label = "run");

}  // namespace smrp::obs
