// The telemetry bundle every instrumented layer accepts: one metrics
// registry, one span collector, one event log. A layer holds a
// `Telemetry*` that may be null (telemetry detached — the default); all
// instrumentation is behind that null check, and nothing here feeds back
// into simulation state, so attached vs. detached runs are bit-identical
// (asserted by tests/obs/test_telemetry.cpp).
#pragma once

#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace smrp::obs {

struct Telemetry {
  MetricsRegistry metrics;
  SpanCollector spans;
  EventLog events;

  /// End-of-run flush: close anything still open so every exported span
  /// has an end time (status kTruncated marks the ones the run cut off).
  void finish(double now) { spans.close_open(now); }
};

}  // namespace smrp::obs
