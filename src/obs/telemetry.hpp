// The telemetry bundle every instrumented layer accepts: one metrics
// registry, one span collector, one event log. A layer holds a
// `Telemetry*` that may be null (telemetry detached — the default); all
// instrumentation is behind that null check, and nothing here feeds back
// into simulation state, so attached vs. detached runs are bit-identical
// (asserted by tests/obs/test_telemetry.cpp).
//
// Gauges are last-value instruments, so a snapshot alone cannot show how
// queue depth or pool occupancy evolved. enable_sampling(period) arms a
// sim-time sampler: the simulator's event loop calls maybe_sample(now)
// (already inside its telemetry null-check, so sampling costs nothing
// when detached), and whenever `now` crosses the next due time every
// gauge's current value is recorded as a Sample. The JSONL export emits
// them as `sample` records, making the series plottable over time.
// Sampling is pull-based — no simulator events are scheduled — so an
// armed sampler cannot perturb a seeded run.
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace smrp::obs {

/// One periodic gauge observation (`sample` JSONL record).
struct Sample {
  double t = 0.0;      ///< sim time (ms) the snapshot was taken
  std::string name;    ///< gauge name (smrp.<layer>.<name>)
  double value = 0.0;  ///< gauge value at `t`
};

struct Telemetry {
  MetricsRegistry metrics;
  SpanCollector spans;
  EventLog events;

  /// Arm periodic gauge sampling with the given sim-time period (ms).
  /// Ignored when `period_ms` is not positive. The first snapshot is taken
  /// at the first maybe_sample() call at or after `period_ms`.
  void enable_sampling(double period_ms) {
    if (!(period_ms > 0.0)) return;
    sample_period_ = period_ms;
    next_sample_ = period_ms;
  }
  [[nodiscard]] bool sampling_enabled() const noexcept {
    return sample_period_ > 0.0;
  }
  [[nodiscard]] double sample_period() const noexcept {
    return sample_period_;
  }

  /// Take a gauge snapshot if the sampler is armed and due. Called by the
  /// simulator event loop with the event's fire time; snapshots are
  /// stamped at `now` (gauges only change at events, so values between
  /// events are constant and nothing is missed).
  void maybe_sample(double now) {
    if (sample_period_ <= 0.0 || finished_ || now < next_sample_) return;
    take_sample(now);
    // Re-anchor on the grid so a long event gap yields one snapshot, not a
    // burst of identical back-filled ones.
    while (next_sample_ <= now) next_sample_ += sample_period_;
  }

  [[nodiscard]] const std::vector<Sample>& samples() const noexcept {
    return samples_;
  }

  /// Fold one shard's bundle into this (facade) bundle at the end of a
  /// sharded run (DESIGN.md §15): metrics merge via merge_sharded (gauges
  /// arrive as `<name>.shard<k>`), and the shard's gauge samples append
  /// with the same renaming, the whole stream re-sorted by time so the
  /// export stays chronological. Spans and events are not touched — the
  /// sharded DES layers emit none, and protocol-level collectors attach
  /// to the facade bundle directly.
  void absorb_shard(const Telemetry& other, int shard) {
    metrics.merge_sharded(other.metrics, shard);
    if (other.samples_.empty()) return;
    const std::string suffix = ".shard" + std::to_string(shard);
    samples_.reserve(samples_.size() + other.samples_.size());
    for (const Sample& s : other.samples_) {
      samples_.push_back(Sample{s.t, s.name + suffix, s.value});
    }
    std::stable_sort(
        samples_.begin(), samples_.end(),
        [](const Sample& a, const Sample& b) { return a.t < b.t; });
  }

  /// End-of-run flush: close anything still open so every exported span
  /// has an end time (status kTruncated marks the ones the run cut off),
  /// take a final gauge snapshot, and seal the collectors so late
  /// emission cannot corrupt the truncated-span accounting. Idempotent —
  /// only the first call has any effect (exporter convenience paths may
  /// finish a bundle the harness already finished).
  void finish(double now) {
    if (finished_) return;
    if (sample_period_ > 0.0 && last_sample_t_ != now) take_sample(now);
    finished_ = true;
    spans.close_open(now);
    spans.seal();
    events.seal();
  }
  [[nodiscard]] bool finished() const noexcept { return finished_; }

 private:
  void take_sample(double now) {
    for (const auto& [name, gauge] : metrics.gauges()) {
      samples_.push_back(Sample{now, name, gauge.value()});
    }
    last_sample_t_ = now;
  }

  std::vector<Sample> samples_;
  double sample_period_ = 0.0;  ///< <= 0 means sampling disarmed
  double next_sample_ = 0.0;
  double last_sample_t_ = -1.0;
  bool finished_ = false;
};

}  // namespace smrp::obs
