#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace smrp::obs {

std::vector<double> Histogram::default_latency_bounds() {
  return {0.1,   0.25,  0.5,   1.0,    2.5,    5.0,    10.0,   25.0,
          50.0,  100.0, 250.0, 500.0,  1000.0, 2500.0, 5000.0, 10000.0,
          30000.0, 60000.0};
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  if (bounds_.empty()) {
    throw std::invalid_argument("histogram needs at least one bucket bound");
  }
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw std::invalid_argument(
        "histogram bounds must be strictly ascending");
  }
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::record(double value) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double Histogram::stddev() const noexcept {
  if (count_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(count_ - 1));
}

double Histogram::percentile(double q) const noexcept {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count_);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    cumulative += counts_[i];
    if (static_cast<double>(cumulative) < rank) continue;
    // The q-th sample lies in bucket i: interpolate linearly between its
    // lower and upper edges by the sample's position within the bucket.
    const double lower = i == 0 ? min_ : bounds_[i - 1];
    const double upper = i == bounds_.size() ? max_ : bounds_[i];
    const double into =
        (rank - static_cast<double>(cumulative - counts_[i])) /
        static_cast<double>(counts_[i]);
    return std::clamp(lower + into * (upper - lower), min_, max_);
  }
  return max_;
}

HistogramSummary Histogram::summary() const noexcept {
  HistogramSummary s;
  s.count = count_;
  if (count_ == 0) return s;
  s.sum = sum_;
  s.mean = mean_;
  s.stddev = stddev();
  s.min = min_;
  s.max = max_;
  s.p50 = percentile(0.50);
  s.p90 = percentile(0.90);
  s.p99 = percentile(0.99);
  return s;
}

void Histogram::merge(const Histogram& other) {
  if (bounds_ != other.bounds_) {
    throw std::invalid_argument("cannot merge histograms with unequal bounds");
  }
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  // Chan et al. parallel-Welford combination: exact, order-independent.
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  mean_ = (na * mean_ + nb * other.mean_) / (na + nb);
  m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
  count_ += other.count_;
  sum_ += other.sum_;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  if (upper_bounds.empty()) upper_bounds = Histogram::default_latency_bounds();
  return histograms_.emplace(name, Histogram(std::move(upper_bounds)))
      .first->second;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, c] : other.counters_) counters_[name].merge(c);
  for (const auto& [name, g] : other.gauges_) gauges_[name].merge(g);
  for (const auto& [name, h] : other.histograms_) {
    const auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      histograms_.emplace(name, h);
    } else {
      it->second.merge(h);
    }
  }
}

void MetricsRegistry::merge_sharded(const MetricsRegistry& other, int shard) {
  const std::string suffix = ".shard" + std::to_string(shard);
  for (const auto& [name, c] : other.counters_) counters_[name].merge(c);
  for (const auto& [name, g] : other.gauges_) gauges_[name + suffix].merge(g);
  for (const auto& [name, h] : other.histograms_) {
    const auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      histograms_.emplace(name, h);
    } else {
      it->second.merge(h);
    }
  }
}

}  // namespace smrp::obs
