#include "obs/events.hpp"

#include <utility>

namespace smrp::obs {

const double* Event::attr(std::string_view key) const noexcept {
  for (const auto& [k, v] : attrs) {
    if (k == key) return &v;
  }
  return nullptr;
}

void EventLog::record(std::string kind, std::int64_t node, double t,
                      std::vector<std::pair<std::string, double>> attrs) {
  if (sealed_) {
    ++late_records_;
    return;
  }
  Event event;
  event.kind = std::move(kind);
  event.node = node;
  event.t = t;
  event.attrs = std::move(attrs);
  events_.push_back(std::move(event));
  if (observer_ != nullptr) observer_->on_event(events_.back());
}

std::size_t EventLog::count(std::string_view kind) const noexcept {
  std::size_t n = 0;
  for (const Event& event : events_) {
    if (event.kind == kind) ++n;
  }
  return n;
}

}  // namespace smrp::obs
