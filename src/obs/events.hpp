// Point-in-time protocol events, the instantaneous counterpart of the
// episode spans: a payload forwarded by a node, a payload delivered to a
// member, a crash-restart observed. Events carry a kind, the node they
// happened at, the sim time, and flat numeric attributes — exactly the
// vocabulary the expectations checker's per-message rules ("no data is
// forwarded off-tree", "no nonce is delivered twice") need, and nothing
// protocol state could feed back on.
//
// Like spans, the log is append-only and purely observational; recording
// never schedules simulator work or consumes randomness. Emission order
// is preserved both in memory and in the JSONL export, so an online tap
// and an offline replay see the same stream.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace smrp::obs {

struct Event {
  std::string kind;        ///< e.g. "forward", "deliver", "restart"
  std::int64_t node = -1;  ///< protocol agent the event happened at
  double t = 0.0;          ///< sim time (ms)
  /// Numeric attributes in attachment order (e.g. {"seq", 41}).
  std::vector<std::pair<std::string, double>> attrs;

  [[nodiscard]] const double* attr(std::string_view key) const noexcept;
};

/// Online tap into the event stream, notified once per recorded event in
/// emission order.
class EventObserver {
 public:
  virtual ~EventObserver() = default;
  virtual void on_event(const Event& event) = 0;
};

class EventLog {
 public:
  /// Append one event; notifies the observer after the event is stored.
  void record(std::string kind, std::int64_t node, double t,
              std::vector<std::pair<std::string, double>> attrs = {});

  /// Attach (or detach with nullptr) the tap; not owned.
  void set_observer(EventObserver* observer) noexcept { observer_ = observer; }

  /// Freeze the log: later record() calls are ignored (and counted in
  /// late_records()) so emission after the end-of-run flush cannot skew
  /// the exported stream or re-trigger the online tap.
  void seal() noexcept { sealed_ = true; }
  [[nodiscard]] bool sealed() const noexcept { return sealed_; }
  /// record() calls rejected after seal(); 0 under correct usage.
  [[nodiscard]] std::uint64_t late_records() const noexcept {
    return late_records_;
  }

  [[nodiscard]] const std::vector<Event>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  /// Events of the given kind.
  [[nodiscard]] std::size_t count(std::string_view kind) const noexcept;

 private:
  std::vector<Event> events_;
  std::uint64_t late_records_ = 0;
  bool sealed_ = false;
  EventObserver* observer_ = nullptr;
};

}  // namespace smrp::obs
