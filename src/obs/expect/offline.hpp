// Offline expectations: replay a recorded JSONL trace (obs/jsonl.hpp)
// through the same ExpectationChecker the simulation taps online. Span
// judgements are order-independent and events are exported in emission
// order, so checking a run's own export yields a report byte-identical
// to the online one (asserted in tests). A file may hold several run
// sections (one meta line each, e.g. one bench / many topologies); each
// section gets its own checker and its own table.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "obs/expect/checker.hpp"

namespace smrp::obs::expect {

struct RunExpectation {
  std::string run;  ///< the section's meta "run" label
  ExpectReport report;
};

struct OfflineResult {
  std::vector<RunExpectation> runs;  ///< file order, post filter

  [[nodiscard]] bool ok() const noexcept {
    for (const RunExpectation& r : runs) {
      if (!r.report.ok()) return false;
    }
    return true;
  }
  [[nodiscard]] std::uint64_t total_violations() const noexcept {
    std::uint64_t n = 0;
    for (const RunExpectation& r : runs) n += r.report.total_violations();
    return n;
  }
};

/// Shell-style glob over run labels: `*` matches any run, `?` one
/// character. An empty pattern matches everything.
[[nodiscard]] bool glob_match(std::string_view pattern, std::string_view text);

/// Replay recorded JSONL against `rules`. `run_filter` is a glob over the
/// meta "run" labels (empty = check every section); filtered-out sections
/// are skipped entirely. Throws std::runtime_error with a line number on
/// malformed input or when a span/event record precedes any meta line.
[[nodiscard]] OfflineResult check_stream(std::istream& in,
                                         const RuleSet& rules,
                                         std::string_view run_filter = {});

/// check_stream over a file; also throws when the file cannot be opened.
[[nodiscard]] OfflineResult check_file(const std::string& path,
                                       const RuleSet& rules,
                                       std::string_view run_filter = {});

}  // namespace smrp::obs::expect
