#include "obs/expect/offline.hpp"

#include <cstdlib>
#include <fstream>
#include <istream>
#include <memory>
#include <stdexcept>
#include <utility>

namespace smrp::obs::expect {

namespace {

/// One key/value of a flat JSONL record, in file order (order matters:
/// span/event attributes replay in attachment order).
struct Field {
  std::string key;
  bool is_string = false;
  std::string str;
  double num = 0.0;
};

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::runtime_error("line " + std::to_string(line) + ": " + what);
}

/// Minimal parser for the exporter's flat schema: one object per line,
/// string or numeric values only. Lenient about field sets (forward
/// compatible), strict about shape.
std::vector<Field> parse_flat(const std::string& text, std::size_t line) {
  std::vector<Field> fields;
  std::size_t i = 0;
  const auto skip_ws = [&] {
    while (i < text.size() &&
           (text[i] == ' ' || text[i] == '\t' || text[i] == '\r')) {
      ++i;
    }
  };
  const auto expect_char = [&](char c) {
    skip_ws();
    if (i >= text.size() || text[i] != c) {
      fail(line, std::string("expected '") + c + "'");
    }
    ++i;
  };
  const auto parse_string = [&] {
    expect_char('"');
    std::string out;
    while (i < text.size() && text[i] != '"') {
      char c = text[i++];
      if (c == '\\') {
        if (i >= text.size()) fail(line, "dangling escape");
        const char esc = text[i++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'u': {
            if (i + 4 > text.size()) fail(line, "short \\u escape");
            unsigned code = 0;
            for (int k = 0; k < 4; ++k) {
              const char h = text[i++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                fail(line, "bad \\u escape");
              }
            }
            if (code > 0x7f) fail(line, "non-ASCII \\u escape");
            out += static_cast<char>(code);
            break;
          }
          default:
            fail(line, std::string("unknown escape \\") + esc);
        }
      } else {
        out += c;
      }
    }
    if (i >= text.size()) fail(line, "unterminated string");
    ++i;  // closing quote
    return out;
  };

  expect_char('{');
  skip_ws();
  if (i < text.size() && text[i] == '}') {
    ++i;
  } else {
    while (true) {
      Field field;
      field.key = parse_string();
      expect_char(':');
      skip_ws();
      if (i < text.size() && text[i] == '"') {
        field.is_string = true;
        field.str = parse_string();
      } else {
        const std::size_t start = i;
        while (i < text.size() && text[i] != ',' && text[i] != '}') ++i;
        const std::string token = text.substr(start, i - start);
        char* end = nullptr;
        field.num = std::strtod(token.c_str(), &end);
        if (end == token.c_str() || *end != '\0') {
          fail(line, "bad numeric value for " + field.key);
        }
      }
      fields.push_back(std::move(field));
      skip_ws();
      if (i < text.size() && text[i] == ',') {
        ++i;
        continue;
      }
      expect_char('}');
      break;
    }
  }
  skip_ws();
  if (i != text.size()) fail(line, "trailing characters");
  return fields;
}

const Field* find(const std::vector<Field>& fields, std::string_view key) {
  for (const Field& f : fields) {
    if (f.key == key) return &f;
  }
  return nullptr;
}

double require_num(const std::vector<Field>& fields, std::string_view key,
                   std::size_t line) {
  const Field* f = find(fields, key);
  if (f == nullptr || f->is_string) {
    fail(line, "missing numeric field " + std::string(key));
  }
  return f->num;
}

std::string require_str(const std::vector<Field>& fields, std::string_view key,
                        std::size_t line) {
  const Field* f = find(fields, key);
  if (f == nullptr || !f->is_string) {
    fail(line, "missing string field " + std::string(key));
  }
  return f->str;
}

bool is_core_span_key(std::string_view key) {
  return key == "type" || key == "id" || key == "parent" || key == "kind" ||
         key == "node" || key == "start" || key == "end" || key == "status";
}

bool is_core_event_key(std::string_view key) {
  return key == "type" || key == "kind" || key == "node" || key == "t";
}

}  // namespace

bool glob_match(std::string_view pattern, std::string_view text) {
  if (pattern.empty()) return true;
  // Iterative *-backtracking: linear in |pattern| * |text|.
  std::size_t p = 0;
  std::size_t t = 0;
  std::size_t star = std::string_view::npos;
  std::size_t star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      star_t = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

OfflineResult check_stream(std::istream& in, const RuleSet& rules,
                           std::string_view run_filter) {
  OfflineResult result;
  std::unique_ptr<ExpectationChecker> checker;  // null while filtered out
  std::string run_label;
  bool saw_meta = false;
  const auto flush_section = [&] {
    if (checker) {
      result.runs.push_back(RunExpectation{run_label, checker->report()});
      checker.reset();
    }
  };

  std::string text;
  std::size_t line = 0;
  while (std::getline(in, text)) {
    ++line;
    if (text.empty()) continue;
    const std::vector<Field> fields = parse_flat(text, line);
    const std::string type = require_str(fields, "type", line);
    if (type == "meta") {
      flush_section();
      saw_meta = true;
      run_label = require_str(fields, "run", line);
      if (glob_match(run_filter, run_label)) {
        checker = std::make_unique<ExpectationChecker>(rules);
      }
      continue;
    }
    if (!saw_meta && (type == "span" || type == "event")) {
      fail(line, "record before any meta line");
    }
    if (!checker) continue;  // section filtered out
    if (type == "span") {
      Span span;
      span.id = static_cast<SpanId>(require_num(fields, "id", line));
      span.parent = static_cast<SpanId>(require_num(fields, "parent", line));
      span.kind = require_str(fields, "kind", line);
      span.node = static_cast<std::int64_t>(require_num(fields, "node", line));
      span.start = require_num(fields, "start", line);
      span.end = require_num(fields, "end", line);
      span.status = span_status_from_name(require_str(fields, "status", line));
      if (span.status == SpanStatus::kOpen) {
        fail(line, "span with unknown status");  // exporter never writes open
      }
      for (const Field& f : fields) {
        if (f.is_string || is_core_span_key(f.key)) continue;
        span.attrs.emplace_back(f.key, f.num);
      }
      checker->on_span_closed(span);
    } else if (type == "event") {
      Event event;
      event.kind = require_str(fields, "kind", line);
      event.node =
          static_cast<std::int64_t>(require_num(fields, "node", line));
      event.t = require_num(fields, "t", line);
      for (const Field& f : fields) {
        if (f.is_string || is_core_event_key(f.key)) continue;
        event.attrs.emplace_back(f.key, f.num);
      }
      checker->on_event(event);
    }
    // counter/gauge/hist and future record types carry no expectations.
  }
  flush_section();
  return result;
}

OfflineResult check_file(const std::string& path, const RuleSet& rules,
                         std::string_view run_filter) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open trace: " + path);
  return check_stream(in, rules, run_filter);
}

}  // namespace smrp::obs::expect
