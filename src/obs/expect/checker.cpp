#include "obs/expect/checker.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace smrp::obs::expect {

namespace {

std::string format_number(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%g", value);
  return buffer;
}

bool contains(const std::vector<std::string>& haystack,
              std::string_view needle) {
  for (const std::string& s : haystack) {
    if (s == needle) return true;
  }
  return false;
}

/// First-violation ordering: earliest (time, id) wins, so the pick does
/// not depend on whether spans arrived in close order (online) or id
/// order (offline replay).
bool earlier(const Violation& a, const Violation& b) {
  if (a.at != b.at) return a.at < b.at;
  return a.ref < b.ref;
}

void merge_violation(RuleOutcome& outcome, Violation violation) {
  ++outcome.violations;
  if (!outcome.first || earlier(violation, *outcome.first)) {
    outcome.first = std::move(violation);
  }
}

std::string pad_right(std::string text, std::size_t width) {
  if (text.size() < width) text.append(width - text.size(), ' ');
  return text;
}

std::string pad_left(const std::string& text, std::size_t width) {
  if (text.size() >= width) return text;
  return std::string(width - text.size(), ' ') + text;
}

}  // namespace

std::string Violation::to_string() const {
  return "t=" + format_number(at) + " " + (is_event ? "event " : "span ") +
         std::to_string(ref) + " node " + std::to_string(node) + ": " + detail;
}

std::uint64_t ExpectReport::total_violations() const noexcept {
  std::uint64_t n = 0;
  for (const RuleOutcome& outcome : rules) n += outcome.violations;
  return n;
}

std::string ExpectReport::render() const {
  std::size_t name_width = 4;
  for (const RuleOutcome& outcome : rules) {
    name_width = std::max(name_width, outcome.name.size());
  }
  std::string out = "expect: " + std::to_string(rules.size()) + " rules, " +
                    std::to_string(total_violations()) + " violations\n";
  out += "  " + pad_right("rule", name_width) + pad_left("checked", 9) +
         pad_left("violations", 12) + "  first violation\n";
  for (const RuleOutcome& outcome : rules) {
    out += "  " + pad_right(outcome.name, name_width) +
           pad_left(std::to_string(outcome.checked), 9) +
           pad_left(std::to_string(outcome.violations), 12) + "  " +
           (outcome.first ? outcome.first->to_string() : "-") + "\n";
  }
  return out;
}

ExpectationChecker::ExpectationChecker(RuleSet rules)
    : rules_(std::move(rules)), state_(rules_.rules().size()) {}

void ExpectationChecker::attach(Telemetry& telemetry) {
  telemetry.spans.set_observer(this);
  telemetry.events.set_observer(this);
}

void ExpectationChecker::detach(Telemetry& telemetry) {
  telemetry.spans.set_observer(nullptr);
  telemetry.events.set_observer(nullptr);
}

void ExpectationChecker::record_violation(std::size_t index,
                                          Violation violation) {
  RuleState& state = state_[index];
  ++state.violations;
  if (!state.first || earlier(violation, *state.first)) {
    state.first = std::move(violation);
  }
}

void ExpectationChecker::on_span_closed(const Span& span) {
  const std::vector<Rule>& rules = rules_.rules();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    const Rule& rule = rules[i];
    RuleState& state = state_[i];
    switch (rule.check) {
      case Check::kStatus: {
        if (span.kind != rule.subject) break;
        ++state.checked;
        const std::string_view status = span_status_name(span.status);
        if (!contains(rule.allowed, status)) {
          record_violation(i, {span.end, span.id, false, span.node,
                               "status=" + std::string(status)});
        }
        break;
      }
      case Check::kAttrLe: {
        if (span.kind != rule.subject) break;
        ++state.checked;
        const double* value = span.attr(rule.attr);
        if (value == nullptr) {
          record_violation(i, {span.end, span.id, false, span.node,
                               "missing attr " + rule.attr});
          break;
        }
        double cap = rule.cap_value;
        if (!rule.cap_attr.empty()) {
          const double* cap_value = span.attr(rule.cap_attr);
          if (cap_value == nullptr) {
            record_violation(i, {span.end, span.id, false, span.node,
                                 "missing cap attr " + rule.cap_attr});
            break;
          }
          cap = *cap_value;
        }
        if (*value > cap) {
          record_violation(
              i, {span.end, span.id, false, span.node,
                  rule.attr + "=" + format_number(*value) + " exceeds " +
                      (rule.cap_attr.empty() ? "cap" : rule.cap_attr) + "=" +
                      format_number(cap)});
        }
        break;
      }
      case Check::kChild: {
        // Order-independent: count children and remember subjects as they
        // close; the ≥min judgement happens in report(), so a child that
        // closes after its parent (or replays earlier in file order)
        // still counts.
        if (span.parent != kNoSpan && contains(rule.child_kinds, span.kind)) {
          ++state.child_counts[span.parent];
        }
        if (span.kind == rule.subject) {
          state.parents[span.id] =
              ParentSeen{span.end, span.node, span.status == SpanStatus::kOk};
        }
        break;
      }
      case Check::kFlag:
      case Check::kMonotone:
      case Check::kFollows:
        break;  // event rules
    }
  }
}

void ExpectationChecker::on_event(const Event& event) {
  ++event_index_;
  const std::vector<Rule>& rules = rules_.rules();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    const Rule& rule = rules[i];
    RuleState& state = state_[i];
    switch (rule.check) {
      case Check::kFlag: {
        if (event.kind != rule.subject) break;
        ++state.checked;
        const double* value = event.attr(rule.attr);
        if (value == nullptr) {
          record_violation(i, {event.t, event_index_, true, event.node,
                               "missing attr " + rule.attr});
        } else if (*value == 0.0) {
          record_violation(i, {event.t, event_index_, true, event.node,
                               rule.attr + "=0"});
        }
        break;
      }
      case Check::kMonotone: {
        if (event.kind != rule.subject) break;
        ++state.checked;
        const double* value = event.attr(rule.attr);
        if (value == nullptr) {
          record_violation(i, {event.t, event_index_, true, event.node,
                               "missing attr " + rule.attr});
          break;
        }
        const auto it = state.last_value.find(event.node);
        if (it != state.last_value.end() && *value <= it->second) {
          record_violation(
              i, {event.t, event_index_, true, event.node,
                  rule.attr + "=" + format_number(*value) +
                      " does not exceed previous " + format_number(it->second)});
          it->second = std::max(it->second, *value);
        } else {
          state.last_value[event.node] = *value;
        }
        break;
      }
      case Check::kFollows: {
        if (event.kind == rule.follow_kind) state.pending.erase(event.node);
        if (event.kind != rule.subject) break;
        if (!rule.gate_attr.empty()) {
          const double* gate = event.attr(rule.gate_attr);
          if (gate == nullptr || *gate == 0.0) break;  // not this rule's event
        }
        ++state.checked;
        // A newer subject at the same node subsumes the older obligation:
        // the follow event discharges both.
        state.pending[event.node] = PendingFollow{event.t, event_index_};
        break;
      }
      case Check::kStatus:
      case Check::kAttrLe:
      case Check::kChild:
        break;  // span rules
    }
  }
}

ExpectReport ExpectationChecker::report() const {
  ExpectReport report;
  const std::vector<Rule>& rules = rules_.rules();
  report.rules.reserve(rules.size());
  for (std::size_t i = 0; i < rules.size(); ++i) {
    const Rule& rule = rules[i];
    const RuleState& state = state_[i];
    RuleOutcome outcome;
    outcome.name = rule.name;
    outcome.describe = rule.describe();
    outcome.checked = state.checked;
    outcome.violations = state.violations;
    outcome.first = state.first;
    if (rule.check == Check::kChild) {
      // End-of-stream judgement: every ok-closed subject must have
      // accumulated enough matching children by now.
      for (const auto& [id, parent] : state.parents) {
        if (!parent.ok) continue;
        ++outcome.checked;
        const auto counted = state.child_counts.find(id);
        const int have = counted != state.child_counts.end() ? counted->second
                                                             : 0;
        if (have < rule.min_children) {
          merge_violation(outcome,
                          {parent.end, id, false, parent.node,
                           "has " + std::to_string(have) +
                               " matching children, needs " +
                               std::to_string(rule.min_children)});
        }
      }
    } else if (rule.check == Check::kFollows) {
      // Subjects still waiting at end-of-stream never got their follow.
      for (const auto& [node, pending] : state.pending) {
        merge_violation(outcome, {pending.at, pending.ref, true, node,
                                  "no " + rule.follow_kind +
                                      " before end of run"});
      }
    }
    report.rules.push_back(std::move(outcome));
  }
  return report;
}

}  // namespace smrp::obs::expect
