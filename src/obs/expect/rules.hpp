// Declarative protocol expectations over the trace stream (Pip-style,
// NSDI '06): a RuleSet declares what the recorded spans and events MUST
// look like when the protocol behaves, and the checker (obs/expect/
// checker.hpp) validates a run against it — online through a Telemetry
// tap or offline over recorded JSONL. Six predicate shapes cover the
// classic multicast-tree bug catalog:
//
//   status   <span-kind> <allowed,...>   every closed span of this kind
//                                        ends in an allowed status
//                                        (truncated ⇒ cut off mid-episode)
//   child    <span-kind> <min> <kinds,…> every ok-closed span of this kind
//                                        has ≥ min children drawn from the
//                                        listed kinds
//   attr-le  <span-kind> <attr> <cap>    attr ≤ cap on every closed span;
//                                        cap is a number or another attr
//   flag     <event-kind> <attr>         the attr is present and non-zero
//                                        on every event of this kind
//   monotone <event-kind> <attr>         per node, the attr strictly
//                                        increases across events of this
//                                        kind (⇒ no duplicate delivery)
//   follows  <event-kind> <follow-kind> [if <attr>]
//                                        every event of the first kind
//                                        (gated on attr ≠ 0 when given) is
//                                        followed, at the same node, by an
//                                        event of the second kind before
//                                        the run ends
//
// Rules come from the C++ builder API below or from a line-oriented rule
// file (`rule <name> <check> <args…>`, '#' comments); RuleSet::smrp_core()
// is the in-tree SMRP conformance ruleset, whose file form round-trips
// through the parser (asserted in tests).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace smrp::obs::expect {

enum class Check : unsigned char {
  kStatus,
  kChild,
  kAttrLe,
  kFlag,
  kMonotone,
  kFollows,
};

struct Rule {
  Check check = Check::kStatus;
  std::string name;     ///< unique handle, shown in the report table
  std::string subject;  ///< span kind (status/child/attr-le) or event kind
  // kStatus
  std::vector<std::string> allowed;  ///< permitted status names
  // kChild
  std::vector<std::string> child_kinds;
  int min_children = 1;
  // kAttrLe / kFlag / kMonotone: the attribute under test
  std::string attr;
  // kAttrLe cap: `cap_attr` when non-empty, else the literal `cap_value`
  std::string cap_attr;
  double cap_value = 0.0;
  // kFollows
  std::string follow_kind;  ///< event kind that must follow the subject
  std::string gate_attr;    ///< only subject events with this attr != 0

  /// One-line human rendering, identical to the rule-file syntax.
  [[nodiscard]] std::string describe() const;
};

class RuleSet {
 public:
  // -- Builder API ----------------------------------------------------------

  RuleSet& require_status(std::string name, std::string span_kind,
                          std::vector<std::string> allowed);
  RuleSet& require_child(std::string name, std::string span_kind,
                         int min_children, std::vector<std::string> kinds);
  RuleSet& require_attr_le(std::string name, std::string span_kind,
                           std::string attr, std::string cap_attr);
  RuleSet& require_attr_le(std::string name, std::string span_kind,
                           std::string attr, double cap_value);
  RuleSet& require_flag(std::string name, std::string event_kind,
                        std::string attr);
  RuleSet& require_monotone(std::string name, std::string event_kind,
                            std::string attr);
  RuleSet& require_follows(std::string name, std::string event_kind,
                           std::string follow_kind,
                           std::string gate_attr = {});

  // -- Rule files -----------------------------------------------------------

  /// Parse the line-oriented rule format; throws std::invalid_argument
  /// with a line number on syntax errors or duplicate rule names.
  static RuleSet parse(std::istream& in);
  static RuleSet parse_text(std::string_view text);
  /// Load from a file; "core" resolves to the in-tree SMRP ruleset.
  static RuleSet load(const std::string& path_or_core);

  /// The shipped SMRP conformance ruleset (DESIGN.md §12).
  static RuleSet smrp_core();
  /// smrp_core() in rule-file form; parse_text(smrp_core_text()) is
  /// equivalent to smrp_core() (asserted in tests).
  static std::string_view smrp_core_text();

  /// Rule-file rendering of this set (parse round-trip).
  [[nodiscard]] std::string to_text() const;

  [[nodiscard]] const std::vector<Rule>& rules() const noexcept {
    return rules_;
  }
  [[nodiscard]] bool empty() const noexcept { return rules_.empty(); }

 private:
  Rule& add(Check check, std::string name, std::string subject);

  std::vector<Rule> rules_;
};

}  // namespace smrp::obs::expect
