#include "obs/expect/rules.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace smrp::obs::expect {

namespace {

std::string join(const std::vector<std::string>& parts) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += ',';
    out += parts[i];
  }
  return out;
}

std::vector<std::string> split_commas(const std::string& text) {
  std::vector<std::string> out;
  std::string part;
  std::istringstream in(text);
  while (std::getline(in, part, ',')) {
    if (!part.empty()) out.push_back(part);
  }
  return out;
}

/// Formats like the JSONL exporter (%g): integral caps render without a
/// trailing ".0" so describe() round-trips through the parser.
std::string format_number(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%g", value);
  return buffer;
}

[[noreturn]] void fail(int line, const std::string& what) {
  throw std::invalid_argument("rules line " + std::to_string(line) + ": " +
                              what);
}

}  // namespace

std::string Rule::describe() const {
  switch (check) {
    case Check::kStatus:
      return "status " + subject + " " + join(allowed);
    case Check::kChild:
      return "child " + subject + " " + std::to_string(min_children) + " " +
             join(child_kinds);
    case Check::kAttrLe:
      return "attr-le " + subject + " " + attr + " " +
             (cap_attr.empty() ? format_number(cap_value) : cap_attr);
    case Check::kFlag:
      return "flag " + subject + " " + attr;
    case Check::kMonotone:
      return "monotone " + subject + " " + attr;
    case Check::kFollows:
      return "follows " + subject + " " + follow_kind +
             (gate_attr.empty() ? "" : " if " + gate_attr);
  }
  return "?";
}

Rule& RuleSet::add(Check check, std::string name, std::string subject) {
  if (name.empty()) throw std::invalid_argument("rule needs a name");
  if (subject.empty()) throw std::invalid_argument("rule needs a subject");
  for (const Rule& r : rules_) {
    if (r.name == name) {
      throw std::invalid_argument("duplicate rule name: " + name);
    }
  }
  Rule rule;
  rule.check = check;
  rule.name = std::move(name);
  rule.subject = std::move(subject);
  rules_.push_back(std::move(rule));
  return rules_.back();
}

RuleSet& RuleSet::require_status(std::string name, std::string span_kind,
                                 std::vector<std::string> allowed) {
  if (allowed.empty()) {
    throw std::invalid_argument("status rule needs at least one status");
  }
  add(Check::kStatus, std::move(name), std::move(span_kind)).allowed =
      std::move(allowed);
  return *this;
}

RuleSet& RuleSet::require_child(std::string name, std::string span_kind,
                                int min_children,
                                std::vector<std::string> kinds) {
  if (min_children < 1) {
    throw std::invalid_argument("child rule needs min >= 1");
  }
  if (kinds.empty()) {
    throw std::invalid_argument("child rule needs at least one child kind");
  }
  Rule& rule = add(Check::kChild, std::move(name), std::move(span_kind));
  rule.min_children = min_children;
  rule.child_kinds = std::move(kinds);
  return *this;
}

RuleSet& RuleSet::require_attr_le(std::string name, std::string span_kind,
                                  std::string attr, std::string cap_attr) {
  if (attr.empty() || cap_attr.empty()) {
    throw std::invalid_argument("attr-le rule needs an attr and a cap");
  }
  Rule& rule = add(Check::kAttrLe, std::move(name), std::move(span_kind));
  rule.attr = std::move(attr);
  rule.cap_attr = std::move(cap_attr);
  return *this;
}

RuleSet& RuleSet::require_attr_le(std::string name, std::string span_kind,
                                  std::string attr, double cap_value) {
  if (attr.empty()) {
    throw std::invalid_argument("attr-le rule needs an attr");
  }
  Rule& rule = add(Check::kAttrLe, std::move(name), std::move(span_kind));
  rule.attr = std::move(attr);
  rule.cap_value = cap_value;
  return *this;
}

RuleSet& RuleSet::require_flag(std::string name, std::string event_kind,
                               std::string attr) {
  if (attr.empty()) throw std::invalid_argument("flag rule needs an attr");
  add(Check::kFlag, std::move(name), std::move(event_kind)).attr =
      std::move(attr);
  return *this;
}

RuleSet& RuleSet::require_monotone(std::string name, std::string event_kind,
                                   std::string attr) {
  if (attr.empty()) throw std::invalid_argument("monotone rule needs an attr");
  add(Check::kMonotone, std::move(name), std::move(event_kind)).attr =
      std::move(attr);
  return *this;
}

RuleSet& RuleSet::require_follows(std::string name, std::string event_kind,
                                  std::string follow_kind,
                                  std::string gate_attr) {
  if (follow_kind.empty()) {
    throw std::invalid_argument("follows rule needs a follow kind");
  }
  Rule& rule = add(Check::kFollows, std::move(name), std::move(event_kind));
  rule.follow_kind = std::move(follow_kind);
  rule.gate_attr = std::move(gate_attr);
  return *this;
}

RuleSet RuleSet::parse(std::istream& in) {
  RuleSet set;
  std::string raw;
  int line = 0;
  while (std::getline(in, raw)) {
    ++line;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    std::istringstream tokens(raw);
    std::string command;
    if (!(tokens >> command)) continue;  // blank/comment line
    if (command != "rule") fail(line, "expected `rule`, got: " + command);
    std::string name;
    std::string check;
    if (!(tokens >> name >> check)) fail(line, "rule needs a name and a check");
    // Builder preconditions (duplicate names, empty lists) surface with
    // the offending line number.
    const auto guarded = [line](auto&& build) {
      try {
        build();
      } catch (const std::invalid_argument& e) {
        fail(line, e.what());
      }
    };
    if (check == "status") {
      std::string subject;
      std::string allowed;
      if (!(tokens >> subject >> allowed)) {
        fail(line, "status needs a span kind and allowed statuses");
      }
      guarded([&] { set.require_status(name, subject, split_commas(allowed)); });
    } else if (check == "child") {
      std::string subject;
      int min_children = 0;
      std::string kinds;
      if (!(tokens >> subject >> min_children >> kinds)) {
        fail(line, "child needs a span kind, a minimum, and child kinds");
      }
      guarded([&] {
        set.require_child(name, subject, min_children, split_commas(kinds));
      });
    } else if (check == "attr-le") {
      std::string subject;
      std::string attr;
      std::string cap;
      if (!(tokens >> subject >> attr >> cap)) {
        fail(line, "attr-le needs a span kind, an attr, and a cap");
      }
      bool numeric_cap = false;
      double cap_value = 0.0;
      try {
        std::size_t used = 0;
        cap_value = std::stod(cap, &used);
        numeric_cap = used == cap.size();
      } catch (const std::exception&) {
        numeric_cap = false;  // cap names another attribute
      }
      guarded([&] {
        if (numeric_cap) {
          set.require_attr_le(name, subject, attr, cap_value);
        } else {
          set.require_attr_le(name, subject, attr, cap);
        }
      });
    } else if (check == "flag") {
      std::string subject;
      std::string attr;
      if (!(tokens >> subject >> attr)) {
        fail(line, "flag needs an event kind and an attr");
      }
      guarded([&] { set.require_flag(name, subject, attr); });
    } else if (check == "monotone") {
      std::string subject;
      std::string attr;
      if (!(tokens >> subject >> attr)) {
        fail(line, "monotone needs an event kind and an attr");
      }
      guarded([&] { set.require_monotone(name, subject, attr); });
    } else if (check == "follows") {
      std::string subject;
      std::string follow;
      if (!(tokens >> subject >> follow)) {
        fail(line, "follows needs two event kinds");
      }
      std::string keyword;
      std::string gate;
      if (tokens >> keyword) {
        if (keyword != "if" || !(tokens >> gate)) {
          fail(line, "follows tail must be `if <attr>`");
        }
      }
      guarded([&] { set.require_follows(name, subject, follow, gate); });
    } else {
      fail(line, "unknown check: " + check);
    }
    std::string trailing;
    if (tokens >> trailing) fail(line, "trailing token: " + trailing);
  }
  return set;
}

RuleSet RuleSet::parse_text(std::string_view text) {
  std::istringstream in{std::string(text)};
  return parse(in);
}

RuleSet RuleSet::load(const std::string& path_or_core) {
  if (path_or_core == "core") return smrp_core();
  std::ifstream in(path_or_core);
  if (!in) {
    throw std::invalid_argument("cannot open rule file: " + path_or_core);
  }
  return parse(in);
}

std::string_view RuleSet::smrp_core_text() {
  // The SMRP conformance contract (rationale in DESIGN.md §12). Every rule
  // is mutation-tested: the legacy protocol, the forward-everything guard,
  // and the ring-budget-ignoring repair each trip at least one of these
  // under the 50-fault chaos soak, while the hardened protocol passes all.
  return
      "# SMRP core protocol expectations\n"
      "# Every outage must resolve: restored (ok) or mooted by a prune /\n"
      "# relay restart (superseded). A truncated outage is a member still\n"
      "# dark when the run ended.\n"
      "rule outage-resolves status outage ok,superseded\n"
      "# Repair machinery must be resolved by the protocol itself, never\n"
      "# cut off by the end-of-run flush.\n"
      "rule repair-resolves status repair ok,failed,superseded\n"
      "rule ring-resolves status ring ok,failed,superseded\n"
      "# A restored outage must show how: a repair episode, an adopted\n"
      "# graft, a routed fallback, or a crash/stranded rejoin.\n"
      "rule outage-has-recovery child outage 1 repair,graft,fallback,rejoin\n"
      "# Ring searches never exceed the configured cross-episode budget.\n"
      "rule ring-within-budget attr-le ring ttl ttl_cap\n"
      "# Data is forwarded only by on-tree nodes, and only when it arrived\n"
      "# from the forwarder's current parent (or originated at the source).\n"
      "rule forward-on-tree flag forward on_tree\n"
      "rule forward-from-parent flag forward from_parent\n"
      "# No payload nonce is delivered twice to a member: per-member\n"
      "# delivered sequence numbers strictly increase.\n"
      "rule no-duplicate-delivery monotone deliver seq\n"
      "# A crashed member must complete its rejoin: payload delivery must\n"
      "# follow every member restart before the run ends.\n"
      "rule restart-rejoins follows restart deliver if member\n"
      "# Every restored outage must be confirmed in-protocol: the source's\n"
      "# convergence wave (DESIGN.md §13) must declare the tree settled\n"
      "# after the member came back, closing a convergence span under the\n"
      "# outage. Superseded outages (pruned/restarted members) are exempt.\n"
      "rule outage-has-convergence child outage 1 convergence\n"
      "# In-protocol detection can only lag the omniscient restoration\n"
      "# clock, never lead it: the oracle outage duration is a lower bound\n"
      "# on the detected one (skew_ms = detected_ms - total_ms >= 0).\n"
      "rule convergence-never-early attr-le convergence total_ms detected_ms\n";
}

RuleSet RuleSet::smrp_core() { return parse_text(smrp_core_text()); }

std::string RuleSet::to_text() const {
  std::string out;
  for (const Rule& rule : rules_) {
    out += "rule " + rule.name + " " + rule.describe() + "\n";
  }
  return out;
}

}  // namespace smrp::obs::expect
