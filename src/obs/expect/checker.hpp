// Incremental expectations evaluator: implements the SpanObserver /
// EventObserver taps, so rules are checked inside the simulation as
// episodes close and events fire — no post-hoc file pass. The same
// feeding surface replays recorded JSONL (obs/expect/offline.hpp), and
// every judgement is order-independent across the two (first violations
// are picked by (time, id), not arrival order), so an online run and the
// offline replay of its own export produce byte-identical reports.
//
// Memory is bounded by the protocol, not the trace: per-span rules keep
// nothing across spans, per-event rules keep one value per node, and the
// child rule keeps one counter per subject episode.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "obs/expect/rules.hpp"
#include "obs/telemetry.hpp"

namespace smrp::obs::expect {

struct Violation {
  double at = 0.0;        ///< sim time of the violating span end / event
  std::uint64_t ref = 0;  ///< span id, or 1-based event stream index
  bool is_event = false;  ///< ref is an event index, not a span id
  std::int64_t node = -1;
  std::string detail;

  /// "t=<at> span <ref> node <node>: <detail>" (or "event <ref>").
  [[nodiscard]] std::string to_string() const;
};

struct RuleOutcome {
  std::string name;
  std::string describe;
  std::uint64_t checked = 0;     ///< spans/events the rule applied to
  std::uint64_t violations = 0;  ///< how many of them failed it
  std::optional<Violation> first;

  [[nodiscard]] bool ok() const noexcept { return violations == 0; }
};

struct ExpectReport {
  std::vector<RuleOutcome> rules;  ///< declaration order

  [[nodiscard]] std::uint64_t total_violations() const noexcept;
  [[nodiscard]] bool ok() const noexcept { return total_violations() == 0; }
  /// Deterministic per-rule pass/violation table (byte-identical for the
  /// same stream, online or offline).
  [[nodiscard]] std::string render() const;
};

class ExpectationChecker final : public SpanObserver, public EventObserver {
 public:
  explicit ExpectationChecker(RuleSet rules);

  /// Wire this checker into a live telemetry bundle (replaces any prior
  /// observers). Attach before the run starts: spans closed earlier were
  /// never seen. Telemetry::finish() flushes still-open spans through the
  /// tap as `truncated`, so call it before report().
  void attach(Telemetry& telemetry);
  void detach(Telemetry& telemetry);

  // Feeding surface — called by the taps online, by the JSONL replay
  // offline.
  void on_span_closed(const Span& span) override;
  void on_event(const Event& event) override;

  /// Evaluate end-of-stream rules (child counts, unanswered follows) and
  /// return the per-rule table. Does not consume state: feeding more and
  /// calling report() again is allowed.
  [[nodiscard]] ExpectReport report() const;

  [[nodiscard]] const RuleSet& rules() const noexcept { return rules_; }

 private:
  struct ParentSeen {
    double end = 0.0;
    std::int64_t node = -1;
    bool ok = false;  ///< closed kOk (the child rule only binds these)
  };
  struct PendingFollow {
    double at = 0.0;
    std::uint64_t ref = 0;  ///< event index of the waiting subject
  };
  struct RuleState {
    std::uint64_t checked = 0;
    std::uint64_t violations = 0;
    std::optional<Violation> first;
    // kChild: every closed subject span, plus matching-child counts.
    std::map<SpanId, ParentSeen> parents;
    std::map<SpanId, int> child_counts;
    // kMonotone: last value per node.
    std::map<std::int64_t, double> last_value;
    // kFollows: subjects still waiting for their follow event, per node.
    std::map<std::int64_t, PendingFollow> pending;
  };

  void record_violation(std::size_t index, Violation violation);

  RuleSet rules_;
  std::vector<RuleState> state_;
  std::uint64_t event_index_ = 0;  ///< 1-based stream position
};

}  // namespace smrp::obs::expect
