// Zero-dependency metrics substrate for the whole stack: a registry of
// named counters, gauges, and fixed-bucket histograms. Everything here is
// pure observation — recording never allocates on the hot path (handles
// are looked up once and cached by the instrumented layer), never touches
// an RNG, and never schedules work, so attaching a registry to a seeded
// simulation cannot change its outcome.
//
// Histograms carry the repository's single summary implementation: Welford
// moments (the same accumulation eval::RunningStats re-exports) plus
// bucket counts, from which the one shared percentile definition
// interpolates p50/p90/p99. Registries merge, so per-run distributions
// fold into campaign-level ones without re-deriving statistics.
//
// Naming convention: `smrp.<layer>.<name>` (see DESIGN.md §8), e.g.
// `smrp.sim.tx.DATA`, `smrp.proto.outage_ms`, `smrp.recovery.rd_weight`.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace smrp::obs {

/// Monotone event count.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept { value_ += delta; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }
  void merge(const Counter& other) noexcept { value_ += other.value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-value instrument (queue depths, loss levels); remembers its peak.
class Gauge {
 public:
  void set(double value) noexcept {
    if (!seen_ || value > max_) max_ = value;
    seen_ = true;
    value_ = value;
  }
  [[nodiscard]] double value() const noexcept { return value_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  /// Merging gauges keeps the other run's last value and the joint peak.
  void merge(const Gauge& other) noexcept {
    if (!other.seen_) return;
    set(other.max_);
    value_ = other.value_;
  }

 private:
  double value_ = 0.0;
  double max_ = 0.0;
  bool seen_ = false;
};

/// Point-in-time digest of a histogram (what the JSONL snapshot carries).
struct HistogramSummary {
  std::uint64_t count = 0;
  double sum = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1 denominator)
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// Fixed-bucket histogram with exact moments. Buckets are defined by their
/// ascending upper bounds; values above the last bound land in an implicit
/// overflow bucket. Two histograms merge iff their bounds are identical.
class Histogram {
 public:
  /// Default: log-spaced latency buckets in milliseconds (0.1 .. 60 000).
  Histogram() : Histogram(default_latency_bounds()) {}
  explicit Histogram(std::vector<double> upper_bounds);

  void record(double value) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Sample standard deviation; 0 with fewer than two samples.
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ ? max_ : 0.0; }

  /// THE percentile definition (quantile `q` in [0, 1]): find the bucket
  /// holding the q·count-th sample, interpolate linearly inside it, clamp
  /// to the observed [min, max]. Every percentile this repository reports
  /// comes from here.
  [[nodiscard]] double percentile(double q) const noexcept;

  [[nodiscard]] HistogramSummary summary() const noexcept;

  /// Fold `other` into this histogram (same bounds required; throws
  /// std::invalid_argument otherwise). Moments merge exactly.
  void merge(const Histogram& other);

  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  /// Per-bucket counts; size() == bounds().size() + 1 (overflow last).
  [[nodiscard]] const std::vector<std::uint64_t>& bucket_counts()
      const noexcept {
    return counts_;
  }

  [[nodiscard]] static std::vector<double> default_latency_bounds();

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Name-addressed instrument store. Lookup is O(log n) and intended for
/// attach time only: instrumented layers cache the returned references
/// (stable for the registry's lifetime — node-based storage) and record
/// through them. Iteration order is the name order, so snapshots are
/// deterministic.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// First caller fixes the bucket bounds; later callers get the existing
  /// instrument (their bounds argument is ignored). Empty bounds mean the
  /// default latency buckets.
  Histogram& histogram(const std::string& name,
                       std::vector<double> upper_bounds = {});

  /// Fold another run's registry into this one, instrument by instrument.
  void merge(const MetricsRegistry& other);

  /// Fold one shard's registry into this (facade) one, DESIGN.md §15:
  /// counters and histograms are additive and merge under their own
  /// names, but gauges are last-value instruments whose per-shard
  /// identity matters (pool occupancy, queue depth), so each arrives as
  /// `<name>.shard<k>` instead of clobbering its siblings.
  void merge_sharded(const MetricsRegistry& other, int shard);

  [[nodiscard]] const std::map<std::string, Counter>& counters()
      const noexcept {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Gauge>& gauges() const noexcept {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, Histogram>& histograms()
      const noexcept {
    return histograms_;
  }

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace smrp::obs
