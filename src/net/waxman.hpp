// Waxman random-graph topology generation (the model GT-ITM uses and the
// paper's §4.1 describes): nodes scattered uniformly on a plane, link
// probability P(u,v) = α · exp(−d(u,v) / (β·L)) with L the plane diagonal.
//
// α tunes edge density (swept in Fig. 9); β tunes the prevalence of long
// links and is held fixed, following the paper (citing Zegura et al. that a
// target node degree is reachable by tuning α alone).
#pragma once

#include "net/graph.hpp"
#include "net/rng.hpp"

namespace smrp::net {

/// How the generator assigns link weights (delays).
enum class LinkWeightMode {
  kEuclidean,      ///< weight = geometric distance (default; delays ∝ length)
  kUnit,           ///< weight = 1 (pure hop-count experiments)
  kUniformRandom,  ///< weight ~ U[1, 10] (stress non-geometric metrics)
};

struct WaxmanParams {
  int node_count = 100;
  double alpha = 0.2;
  double beta = 0.3;
  double plane_size = 1000.0;  ///< nodes placed uniformly in [0, size)²
  LinkWeightMode weight_mode = LinkWeightMode::kEuclidean;
  /// Full resample attempts before patching connectivity (see generate()).
  int max_resample_attempts = 50;
};

/// Generate one connected Waxman graph. If `max_resample_attempts` samples
/// all come out disconnected (likely for very low α), the last sample is
/// patched by linking nearest nodes of distinct components; the patch count
/// is available via `WaxmanResult::patched_links`.
struct WaxmanResult {
  Graph graph;
  int resamples = 0;      ///< extra full resamples that were needed
  int patched_links = 0;  ///< connectivity-patch links added
};

[[nodiscard]] WaxmanResult generate_waxman(const WaxmanParams& params,
                                           Rng& rng);

/// Convenience: just the graph.
[[nodiscard]] Graph waxman_graph(const WaxmanParams& params, Rng& rng);

}  // namespace smrp::net
