#include "net/paths.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <unordered_set>

namespace smrp::net {

bool is_simple_path(const Graph& g, const std::vector<NodeId>& nodes) {
  std::unordered_set<NodeId> seen;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (!g.valid_node(nodes[i])) return false;
    if (!seen.insert(nodes[i]).second) return false;
    if (i > 0 && !g.link_between(nodes[i - 1], nodes[i])) return false;
  }
  return true;
}

double path_weight(const Graph& g, const std::vector<NodeId>& nodes) {
  double total = 0.0;
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    const auto link = g.link_between(nodes[i - 1], nodes[i]);
    if (!link) throw std::invalid_argument("non-adjacent hop in path");
    total += g.link(*link).weight;
  }
  return total;
}

std::vector<LinkId> path_links(const Graph& g,
                               const std::vector<NodeId>& nodes) {
  std::vector<LinkId> out;
  out.reserve(nodes.empty() ? 0 : nodes.size() - 1);
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    const auto link = g.link_between(nodes[i - 1], nodes[i]);
    if (!link) throw std::invalid_argument("non-adjacent hop in path");
    out.push_back(*link);
  }
  return out;
}

Path make_path(const Graph& g, std::vector<NodeId> nodes) {
  Path p;
  p.weight = path_weight(g, nodes);
  p.nodes = std::move(nodes);
  return p;
}

Path concatenate(const Graph& g, const Path& first, const Path& second) {
  if (first.empty()) return second;
  if (second.empty()) return first;
  if (first.back() != second.front()) {
    throw std::invalid_argument("paths do not share a junction node");
  }
  std::vector<NodeId> nodes = first.nodes;
  nodes.insert(nodes.end(), second.nodes.begin() + 1, second.nodes.end());
  return make_path(g, std::move(nodes));
}

namespace {

struct PathOrder {
  bool operator()(const Path& a, const Path& b) const noexcept {
    if (a.weight != b.weight) return a.weight < b.weight;
    return a.nodes < b.nodes;
  }
};

}  // namespace

std::vector<Path> yen_k_shortest(const Graph& g, NodeId source, NodeId target,
                                 int k) {
  std::vector<Path> result;
  if (k <= 0) return result;
  // One workspace serves the base run and every spur search below.
  DijkstraWorkspace workspace;
  ShortestPathTree base;
  workspace.run_into(g, source, ExclusionSet{}, base);
  if (!base.reachable(target)) return result;
  result.push_back(make_path(g, base.path_from_source(target)));
  ShortestPathTree spur_tree;

  std::set<Path, PathOrder> candidates;
  while (static_cast<int>(result.size()) < k) {
    const Path& previous = result.back();
    // Each prefix of the previous path spawns a spur.
    for (std::size_t i = 0; i + 1 < previous.nodes.size(); ++i) {
      const NodeId spur_node = previous.nodes[i];
      const std::vector<NodeId> root(previous.nodes.begin(),
                                     previous.nodes.begin() +
                                         static_cast<std::ptrdiff_t>(i) + 1);

      ExclusionSet excluded(g);
      // Ban links that would recreate an already-found path with this root.
      for (const Path& found : result) {
        if (found.nodes.size() > i &&
            std::equal(root.begin(), root.end(), found.nodes.begin())) {
          if (const auto link =
                  g.link_between(found.nodes[i], found.nodes[i + 1])) {
            excluded.ban_link(*link);
          }
        }
      }
      // Ban root nodes (except the spur) to keep the path loopless.
      for (std::size_t j = 0; j < i; ++j) excluded.ban_node(root[j]);

      workspace.run_into(g, spur_node, excluded, spur_tree);
      if (!spur_tree.reachable(target)) continue;
      Path spur = make_path(g, spur_tree.path_from_source(target));
      Path total = concatenate(g, make_path(g, root), spur);
      candidates.insert(std::move(total));
    }
    // Drop candidates already emitted.
    while (!candidates.empty() &&
           std::find(result.begin(), result.end(), *candidates.begin()) !=
               result.end()) {
      candidates.erase(candidates.begin());
    }
    if (candidates.empty()) break;
    result.push_back(*candidates.begin());
    candidates.erase(candidates.begin());
  }
  return result;
}

}  // namespace smrp::net
