// Path value type and path-level algorithms (validation, weighing, Yen's
// k-shortest loopless paths). SMRP's join procedure reasons about explicit
// paths, so these helpers are shared across the protocol and the benches.
#pragma once

#include <vector>

#include "net/graph.hpp"
#include "net/shortest_path.hpp"

namespace smrp::net {

/// A simple (loop-free) path as a node sequence. An empty node list means
/// "no path"; a single node is the trivial path of weight 0.
struct Path {
  std::vector<NodeId> nodes;
  double weight = 0.0;

  [[nodiscard]] bool empty() const noexcept { return nodes.empty(); }
  [[nodiscard]] int hop_count() const noexcept {
    return nodes.empty() ? 0 : static_cast<int>(nodes.size()) - 1;
  }
  [[nodiscard]] NodeId front() const { return nodes.front(); }
  [[nodiscard]] NodeId back() const { return nodes.back(); }

  bool operator==(const Path& other) const noexcept {
    return nodes == other.nodes;
  }
};

/// True iff consecutive nodes are adjacent in `g` and no node repeats.
[[nodiscard]] bool is_simple_path(const Graph& g,
                                  const std::vector<NodeId>& nodes);

/// Sum of link weights along the node sequence. Throws if two consecutive
/// nodes are not adjacent.
[[nodiscard]] double path_weight(const Graph& g,
                                 const std::vector<NodeId>& nodes);

/// The links traversed by the node sequence. Throws on non-adjacent hops.
[[nodiscard]] std::vector<LinkId> path_links(const Graph& g,
                                             const std::vector<NodeId>& nodes);

/// Build a Path (nodes + weight) from a node sequence.
[[nodiscard]] Path make_path(const Graph& g, std::vector<NodeId> nodes);

/// Concatenate a→…→m and m→…→b (the junction node appears once).
/// Precondition: first.back() == second.front().
[[nodiscard]] Path concatenate(const Graph& g, const Path& first,
                               const Path& second);

/// Yen's algorithm: up to k shortest loopless paths from `source` to
/// `target`, sorted by weight (then lexicographically for determinism).
[[nodiscard]] std::vector<Path> yen_k_shortest(const Graph& g, NodeId source,
                                               NodeId target, int k);

}  // namespace smrp::net
