// RoutingOracle: the shared, topology-versioned shortest-path service
// every SPF consumer in this codebase goes through (DESIGN.md §10, §16).
//
// The paper's core claim is that restoration speed is bounded by how fast
// a surviving path can be found after a persistent failure. Before the
// oracle, thirteen translation units called the free Dijkstra functions
// and recomputed full single-source SPF from scratch on every join,
// reshape, query, and repair — even with the topology unchanged between
// calls. The oracle centralises those searches behind one cache:
//
//  * Plain SPF trees are cached per (source, exclusion signature) as
//    shared immutable snapshots, invalidated wholesale whenever
//    Graph::topology_version() moves.
//  * On the dominant recovery workload — one extra banned link or node
//    on top of an already-cached exclusion — the cached base tree is
//    repaired incrementally (Ramalingam–Reps-style: only the parent
//    subtree hanging off the failed component is recomputed), falling
//    back to a fresh run when the affected region exceeds a size
//    threshold. Repaired trees are bit-identical to fresh runs (the
//    deterministic tie-break makes the (dist, hops, parent) fixpoint
//    independent of relaxation order; a property test asserts equality).
//  * Tree-state-dependent searches (absorbing candidate enumeration,
//    detour searches) are not cacheable; the oracle serves them from a
//    pool of reusable DijkstraWorkspaces instead.
//
// Concurrency (DESIGN.md §16): ONE oracle is meant to be shared by every
// worker thread that routes over the same topology. The snapshot map is
// lock-striped — Config::stripes independent mutexes, striped by the
// splitmix64 cache key of (source, exclusion signature) — so hits are a
// read-mostly probe of one stripe. Concurrent misses on the same key
// compute ONCE: the first thread installs an in-flight cell and computes
// outside any stripe lock; later arrivals wait on that cell and share the
// winner's snapshot (counted as hits — the computation they were spared).
// Because a snapshot is a pure deterministic function of its key, sharing
// the cache across threads cannot change any result byte — only wall
// time, memory, and the hit/full-run split move with the thread count.
// All computation scratch (full runs, incremental repairs) is pooled, so
// concurrent misses on different keys proceed in parallel. Returned trees
// are shared_ptr<const> snapshots that stay valid across invalidation;
// retired snapshot buffers are recycled through a pool that outlives the
// oracle, so churning caches do not churn the allocator.
//
// Cache management is wall-clock free (LRU over a monotone per-stripe
// tick), so runs remain bit-for-bit reproducible at any thread count.
// attach_telemetry must be called before the oracle is shared across
// threads (the usual attach-then-run discipline); the mirrored counter
// bumps themselves are serialized internally and TSan-clean.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/graph.hpp"
#include "net/shortest_path.hpp"
#include "obs/telemetry.hpp"

namespace smrp::net {

class RoutingOracle {
 public:
  struct Config {
    /// Cached SPF trees kept before LRU eviction. Approximate under
    /// striping: the budget splits evenly across the stripes, each of
    /// which evicts independently (with a small per-stripe floor so an
    /// uneven key hash cannot thrash one stripe while others sit empty).
    std::size_t max_entries = 256;
    /// Incremental repair runs only while the invalidated subtree stays
    /// under this fraction of the node count; larger regions full-rerun
    /// (the delta bookkeeping would cost more than it saves).
    double incremental_max_fraction = 0.5;
    /// Lock stripes over the snapshot map (rounded up to a power of
    /// two, clamped to [1, 256]). 64 keeps same-stripe collisions rare
    /// at any realistic worker count while staying cheap to construct.
    std::size_t stripes = 64;
  };

  using TreePtr = std::shared_ptr<const ShortestPathTree>;

  /// Counters mirrored to telemetry (smrp.routing.*). Invariants:
  /// lookups == cache_hits + cache_misses and
  /// cache_misses == incremental_repairs + full_runs. A lookup that
  /// waits on another thread's in-flight computation of the same key
  /// counts as a hit (it was served a shared snapshot, not a Dijkstra
  /// run), so full_runs never exceeds the number of distinct keys
  /// computed — the dedup guarantee the scale bench reports.
  struct Stats {
    std::uint64_t lookups = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    std::uint64_t incremental_repairs = 0;  ///< misses served by delta repair
    std::uint64_t full_runs = 0;            ///< misses served by full Dijkstra
    std::uint64_t invalidations = 0;        ///< cache flushes on version bumps

    /// Fold another oracle's (or run's) counters into this one — the one
    /// summation every stats consumer shares (multi-oracle benches, the
    /// eval drivers, telemetry folds).
    Stats& operator+=(const Stats& other) noexcept {
      lookups += other.lookups;
      cache_hits += other.cache_hits;
      cache_misses += other.cache_misses;
      incremental_repairs += other.incremental_repairs;
      full_runs += other.full_runs;
      invalidations += other.invalidations;
      return *this;
    }
  };

  /// RAII lease of a pooled DijkstraWorkspace for the uncacheable
  /// (tree-state-dependent) searches; returns the workspace to the pool
  /// on destruction so its buffers are reused by the next lease.
  class WorkspaceLease {
   public:
    WorkspaceLease(WorkspaceLease&& other) noexcept
        : oracle_(other.oracle_), workspace_(std::move(other.workspace_)) {
      other.oracle_ = nullptr;
    }
    WorkspaceLease& operator=(WorkspaceLease&& other) noexcept {
      if (this != &other) {
        release();
        oracle_ = other.oracle_;
        workspace_ = std::move(other.workspace_);
        other.oracle_ = nullptr;
      }
      return *this;
    }
    WorkspaceLease(const WorkspaceLease&) = delete;
    WorkspaceLease& operator=(const WorkspaceLease&) = delete;
    ~WorkspaceLease() { release(); }

    [[nodiscard]] DijkstraWorkspace& operator*() const noexcept {
      return *workspace_;
    }
    [[nodiscard]] DijkstraWorkspace* operator->() const noexcept {
      return workspace_.get();
    }
    [[nodiscard]] DijkstraWorkspace* get() const noexcept {
      return workspace_.get();
    }

   private:
    friend class RoutingOracle;
    WorkspaceLease(RoutingOracle* oracle,
                   std::unique_ptr<DijkstraWorkspace> workspace) noexcept
        : oracle_(oracle), workspace_(std::move(workspace)) {}
    void release() noexcept;

    RoutingOracle* oracle_ = nullptr;
    std::unique_ptr<DijkstraWorkspace> workspace_;
  };

  explicit RoutingOracle(const Graph& g);
  RoutingOracle(const Graph& g, Config config);

  /// Shortest-path tree from `source` over the whole graph / avoiding the
  /// banned components. Served from cache when (source, exclusion
  /// signature) was seen under the current topology version; repaired
  /// incrementally when the exclusion is a cached one plus one extra ban;
  /// concurrent misses on the same key are memoized (one computation,
  /// every caller shares the snapshot). Throws like dijkstra() on a bad
  /// or banned source. Safe to call from any number of threads.
  TreePtr spf(NodeId source);
  TreePtr spf(NodeId source, const ExclusionSet& excluded);

  /// Borrow a workspace from the pool (for absorbing/detour searches).
  [[nodiscard]] WorkspaceLease workspace();

  /// Attach (or detach with nullptr) telemetry; the cache counters are
  /// published as smrp.routing.{lookups,cache_hit,cache_miss,
  /// cache_incremental,cache_fallback,invalidations} and the resident
  /// snapshot footprint as the smrp.routing.{snapshot_count,
  /// snapshot_bytes} gauges. Pure observation — results are bit-identical
  /// attached or detached. Call before sharing the oracle across threads.
  void attach_telemetry(obs::Telemetry* telemetry);

  [[nodiscard]] Stats stats() const;

  /// Ready snapshots currently cached, and their approximate resident
  /// bytes (per-node storage of every cached tree; shared base trees
  /// cached under several keys count once per entry).
  [[nodiscard]] std::uint64_t snapshot_count() const noexcept {
    return snapshot_count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t snapshot_bytes() const noexcept {
    return snapshot_bytes_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const Graph& graph() const noexcept { return *g_; }

  /// Drop every cached tree (the version check does this automatically;
  /// exposed for tests). Lazy: each stripe discards its entries on its
  /// next probe, so invalidation never stalls concurrent readers.
  void invalidate();

 private:
  /// Rendezvous for concurrent misses on one key: the winner computes
  /// the snapshot outside all stripe locks and publishes it here; losers
  /// wait on the cell instead of duplicating the Dijkstra run. The cell
  /// is self-contained (own mutex), so a stripe flush mid-computation
  /// strands no waiter — they still receive the winner's tree.
  struct Cell {
    std::mutex mu;
    std::condition_variable cv;
    TreePtr tree;        ///< set exactly once, under mu
    bool failed = false; ///< winner threw; waiters retry the lookup
  };

  struct Entry {
    NodeId source = kNoNode;
    std::uint64_t signature = 0;
    /// Banned ids (ascending) — exact verification against hash collisions
    /// and the base set for one-extra-ban incremental repair.
    std::vector<NodeId> banned_nodes;
    std::vector<LinkId> banned_links;
    TreePtr tree;  ///< null while the cell's computation is in flight
    std::shared_ptr<Cell> cell;
    std::uint64_t last_used = 0;  ///< monotone LRU tick (no wall clock)
  };

  /// One lock stripe of the snapshot map. seen_version / seen_flush lag
  /// the oracle-wide values until the stripe is next probed; a stale
  /// stripe drops its entries before serving anything.
  struct Stripe {
    std::mutex mu;
    std::unordered_map<std::uint64_t, Entry> entries;
    std::uint64_t seen_version = 0;
    std::uint64_t seen_flush = 0;
    std::uint64_t lru_tick = 0;
  };

  /// Scratch for one cache-miss computation (full run or incremental
  /// repair), leased from a pool so misses on different keys compute
  /// concurrently without allocating.
  struct ComputeScratch {
    DijkstraWorkspace ws;
    std::vector<NodeId> walk;  ///< parent-chain walk buffer
    std::vector<NodeId> affected;
    std::vector<char> affected_flag;
    std::vector<char> settled;
    std::vector<std::pair<double, NodeId>> heap;
  };

  /// Retired-snapshot buffer pool. Shared (not owned) by every snapshot's
  /// deleter, so snapshots handed to callers stay destructible after the
  /// oracle itself is gone; the pool caps its free list so a burst of
  /// evictions cannot pin memory.
  struct TreeRecycler {
    std::mutex mu;
    std::vector<std::unique_ptr<ShortestPathTree>> free_list;
  };

  static std::uint64_t cache_key(NodeId source, std::uint64_t signature) noexcept;

  [[nodiscard]] Stripe& stripe_of(std::uint64_t key) noexcept {
    return stripes_[static_cast<std::size_t>(key) & stripe_mask_];
  }
  /// Must hold stripe.mu. Drop the stripe's entries when the topology
  /// version or flush generation moved since it was last probed.
  void refresh_stripe_locked(Stripe& stripe, std::uint64_t version,
                             std::uint64_t flush);
  /// Detect a topology-version move oracle-wide (bumps `invalidations`
  /// exactly once per transition) and return (version, flush) to probe
  /// stripes with.
  std::pair<std::uint64_t, std::uint64_t> current_epoch();
  /// Entry's ban set equals the request's exactly.
  static bool entry_matches(const Entry& entry, const ExclusionSet& excluded);
  /// Entry's ban set equals the request's minus the one extra ban
  /// (extra_node or extra_link, the other sentinel).
  static bool entry_is_base(const Entry& entry, const ExclusionSet& excluded,
                            NodeId extra_node, LinkId extra_link);
  /// Probe every one-extra-ban base key across the stripes; returns the
  /// base snapshot (and which ban is the extra one) or null. Takes one
  /// stripe lock at a time — never nests them.
  TreePtr find_base(NodeId source, const ExclusionSet& excluded,
                    std::uint64_t version, std::uint64_t flush,
                    NodeId& extra_node, LinkId& extra_link);
  /// Delta-repair `base` for one extra banned component, using leased
  /// scratch only (no oracle locks). Returns null when the affected
  /// region exceeds the threshold (caller falls back to a full run);
  /// returns `base` itself (shared ownership) when the ban does not
  /// touch the cached tree.
  TreePtr repair(const TreePtr& base, const ExclusionSet& excluded,
                 NodeId extra_node, LinkId extra_link, ComputeScratch& scratch);
  /// Full Dijkstra into a recycled snapshot buffer (no oracle locks).
  TreePtr full_run(NodeId source, const ExclusionSet& excluded,
                   ComputeScratch& scratch);

  /// A writable snapshot slot: a recycled buffer when one is pooled, a
  /// fresh allocation otherwise. The returned shared_ptr's deleter hands
  /// the buffer back to recycler_ (capacity intact) on release.
  std::shared_ptr<ShortestPathTree> acquire_tree();

  std::unique_ptr<ComputeScratch> acquire_scratch();
  void release_scratch(std::unique_ptr<ComputeScratch> scratch) noexcept;

  void return_workspace(std::unique_ptr<DijkstraWorkspace> workspace) noexcept;

  /// Approximate resident bytes of one cached snapshot.
  [[nodiscard]] std::uint64_t tree_bytes(const ShortestPathTree& t)
      const noexcept;
  /// Account one published/evicted snapshot and mirror the gauges.
  void snapshots_changed(std::int64_t count_delta, std::int64_t bytes_delta);

  void bump(std::atomic<std::uint64_t>& stat, obs::Counter* counter);

  const Graph* g_;
  Config config_;
  std::size_t stripe_mask_ = 0;
  std::size_t stripe_capacity_ = 0;  ///< max ready entries per stripe

  std::vector<Stripe> stripes_;
  std::atomic<std::uint64_t> seen_version_{0};  ///< last observed topology
  std::atomic<std::uint64_t> flush_gen_{0};     ///< manual invalidate() epoch

  std::mutex pool_mu_;
  std::vector<std::unique_ptr<DijkstraWorkspace>> workspace_pool_;
  std::vector<std::unique_ptr<ComputeScratch>> scratch_pool_;
  std::shared_ptr<TreeRecycler> recycler_;

  // Stats: relaxed atomics — hot-path increments never contend a lock.
  std::atomic<std::uint64_t> n_lookups_{0};
  std::atomic<std::uint64_t> n_hits_{0};
  std::atomic<std::uint64_t> n_misses_{0};
  std::atomic<std::uint64_t> n_incremental_{0};
  std::atomic<std::uint64_t> n_full_{0};
  std::atomic<std::uint64_t> n_invalidations_{0};
  std::atomic<std::uint64_t> snapshot_count_{0};
  std::atomic<std::uint64_t> snapshot_bytes_{0};

  // Telemetry handles, cached at attach time (registry lookups off the
  // hot path). obs instruments are not thread-safe, so mirrored bumps
  // serialize on telemetry_mu_ — only taken when telemetry is attached.
  std::mutex telemetry_mu_;
  obs::Counter* c_lookups_ = nullptr;
  obs::Counter* c_hit_ = nullptr;
  obs::Counter* c_miss_ = nullptr;
  obs::Counter* c_incremental_ = nullptr;
  obs::Counter* c_fallback_ = nullptr;
  obs::Counter* c_invalidations_ = nullptr;
  obs::Gauge* g_snapshot_count_ = nullptr;
  obs::Gauge* g_snapshot_bytes_ = nullptr;
};

/// Incrementally refreshed nearest-target detour search, the shared
/// mechanism behind repair_session's nearest-first repair loop.
///
/// compute() runs one absorbing search from `origin` (targets absorb, so
/// the path it yields crosses no target before its endpoint — exactly the
/// new links a restoration graft brings in) and records the nearest
/// reachable target (ties: lowest id). As the target set grows
/// monotonically — each applied repair pulls grafted nodes back on-tree —
/// add_targets() updates the answer against the delta in O(|delta|): the
/// cached snapshot stays exact because any origin→x path invalidated by
/// the growth crosses an added node strictly earlier on the path, which
/// the delta scan also considers.
class DetourSearch {
 public:
  /// Fresh absorbing search; `targets` flags the absorbing set (sized to
  /// the node count). Uses a workspace leased from `oracle`.
  void compute(RoutingOracle& oracle, NodeId origin,
               const std::vector<char>& targets, const ExclusionSet& excluded);

  /// The target set grew by `added` (already flagged by the caller).
  void add_targets(const std::vector<NodeId>& added);

  [[nodiscard]] bool found() const noexcept { return best_ != kNoNode; }
  [[nodiscard]] NodeId best_target() const noexcept { return best_; }
  /// The underlying search snapshot (valid after compute()).
  [[nodiscard]] const ShortestPathTree& search() const noexcept {
    return search_;
  }

 private:
  void consider(NodeId target) noexcept;

  ShortestPathTree search_;
  NodeId best_ = kNoNode;
};

}  // namespace smrp::net
