// RoutingOracle: the shared, topology-versioned shortest-path service
// every SPF consumer in this codebase goes through (DESIGN.md §10).
//
// The paper's core claim is that restoration speed is bounded by how fast
// a surviving path can be found after a persistent failure. Before the
// oracle, thirteen translation units called the free Dijkstra functions
// and recomputed full single-source SPF from scratch on every join,
// reshape, query, and repair — even with the topology unchanged between
// calls. The oracle centralises those searches behind one cache:
//
//  * Plain SPF trees are cached per (source, exclusion signature) as
//    shared immutable snapshots, invalidated wholesale whenever
//    Graph::topology_version() moves.
//  * On the dominant recovery workload — one extra banned link or node
//    on top of an already-cached exclusion — the cached base tree is
//    repaired incrementally (Ramalingam–Reps-style: only the parent
//    subtree hanging off the failed component is recomputed), falling
//    back to a fresh run when the affected region exceeds a size
//    threshold. Repaired trees are bit-identical to fresh runs (the
//    deterministic tie-break makes the (dist, hops, parent) fixpoint
//    independent of relaxation order; a property test asserts equality).
//  * Tree-state-dependent searches (absorbing candidate enumeration,
//    detour searches) are not cacheable; the oracle serves them from a
//    pool of reusable DijkstraWorkspaces instead.
//
// All public methods are thread-safe behind one mutex; returned trees are
// shared_ptr<const> snapshots that stay valid across later invalidation.
// Cache management is wall-clock free (LRU over a monotone lookup tick),
// so runs remain bit-for-bit reproducible at any thread count.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "net/graph.hpp"
#include "net/shortest_path.hpp"
#include "obs/telemetry.hpp"

namespace smrp::net {

class RoutingOracle {
 public:
  struct Config {
    /// Cached SPF trees kept before LRU eviction.
    std::size_t max_entries = 256;
    /// Incremental repair runs only while the invalidated subtree stays
    /// under this fraction of the node count; larger regions full-rerun
    /// (the delta bookkeeping would cost more than it saves).
    double incremental_max_fraction = 0.5;
  };

  using TreePtr = std::shared_ptr<const ShortestPathTree>;

  /// Counters mirrored to telemetry (smrp.routing.*). Invariants:
  /// lookups == cache_hits + cache_misses and
  /// cache_misses == incremental_repairs + full_runs.
  struct Stats {
    std::uint64_t lookups = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    std::uint64_t incremental_repairs = 0;  ///< misses served by delta repair
    std::uint64_t full_runs = 0;            ///< misses served by full Dijkstra
    std::uint64_t invalidations = 0;        ///< cache flushes on version bumps
  };

  /// RAII lease of a pooled DijkstraWorkspace for the uncacheable
  /// (tree-state-dependent) searches; returns the workspace to the pool
  /// on destruction so its buffers are reused by the next lease.
  class WorkspaceLease {
   public:
    WorkspaceLease(WorkspaceLease&& other) noexcept
        : oracle_(other.oracle_), workspace_(std::move(other.workspace_)) {
      other.oracle_ = nullptr;
    }
    WorkspaceLease& operator=(WorkspaceLease&& other) noexcept {
      if (this != &other) {
        release();
        oracle_ = other.oracle_;
        workspace_ = std::move(other.workspace_);
        other.oracle_ = nullptr;
      }
      return *this;
    }
    WorkspaceLease(const WorkspaceLease&) = delete;
    WorkspaceLease& operator=(const WorkspaceLease&) = delete;
    ~WorkspaceLease() { release(); }

    [[nodiscard]] DijkstraWorkspace& operator*() const noexcept {
      return *workspace_;
    }
    [[nodiscard]] DijkstraWorkspace* operator->() const noexcept {
      return workspace_.get();
    }
    [[nodiscard]] DijkstraWorkspace* get() const noexcept {
      return workspace_.get();
    }

   private:
    friend class RoutingOracle;
    WorkspaceLease(RoutingOracle* oracle,
                   std::unique_ptr<DijkstraWorkspace> workspace) noexcept
        : oracle_(oracle), workspace_(std::move(workspace)) {}
    void release() noexcept;

    RoutingOracle* oracle_ = nullptr;
    std::unique_ptr<DijkstraWorkspace> workspace_;
  };

  explicit RoutingOracle(const Graph& g);
  RoutingOracle(const Graph& g, Config config);

  /// Shortest-path tree from `source` over the whole graph / avoiding the
  /// banned components. Served from cache when (source, exclusion
  /// signature) was seen under the current topology version; repaired
  /// incrementally when the exclusion is a cached one plus one extra ban.
  /// Throws like dijkstra() on a bad or banned source.
  TreePtr spf(NodeId source);
  TreePtr spf(NodeId source, const ExclusionSet& excluded);

  /// Borrow a workspace from the pool (for absorbing/detour searches).
  [[nodiscard]] WorkspaceLease workspace();

  /// Attach (or detach with nullptr) telemetry; the cache counters are
  /// published as smrp.routing.{lookups,cache_hit,cache_miss,
  /// cache_incremental,cache_fallback,invalidations}. Pure observation —
  /// results are bit-identical attached or detached.
  void attach_telemetry(obs::Telemetry* telemetry);

  [[nodiscard]] Stats stats() const;

  [[nodiscard]] const Graph& graph() const noexcept { return *g_; }

  /// Drop every cached tree (the version check does this automatically;
  /// exposed for tests).
  void invalidate();

 private:
  struct Entry {
    NodeId source = kNoNode;
    std::uint64_t signature = 0;
    /// Banned ids (ascending) — exact verification against hash collisions
    /// and the base set for one-extra-ban incremental repair.
    std::vector<NodeId> banned_nodes;
    std::vector<LinkId> banned_links;
    TreePtr tree;
    std::uint64_t last_used = 0;  ///< monotone LRU tick (no wall clock)
  };

  static std::uint64_t cache_key(NodeId source, std::uint64_t signature) noexcept;

  /// Must hold mu_. Flush the cache when the graph version moved.
  void check_version_locked();
  /// Must hold mu_. Entry's ban set equals the request's exactly.
  static bool entry_matches(const Entry& entry, const ExclusionSet& excluded);
  /// Must hold mu_. Entry's ban set equals the request's minus the one
  /// extra ban (extra_node or extra_link, the other sentinel).
  static bool entry_is_base(const Entry& entry, const ExclusionSet& excluded,
                            NodeId extra_node, LinkId extra_link);
  /// Must hold mu_. Delta-repair `base` for one extra banned component.
  /// Returns null when the affected region exceeds the threshold (caller
  /// falls back to a full run); returns base.tree itself when the ban
  /// does not touch the cached tree.
  TreePtr repair_locked(const Entry& base, const ExclusionSet& excluded,
                        NodeId extra_node, LinkId extra_link);
  /// Must hold mu_. Full Dijkstra through the pooled scratch space.
  TreePtr full_run_locked(NodeId source, const ExclusionSet& excluded);
  /// Must hold mu_. Insert + LRU-evict beyond max_entries.
  void insert_locked(NodeId source, const ExclusionSet& excluded, TreePtr tree);

  void return_workspace(std::unique_ptr<DijkstraWorkspace> workspace) noexcept;

  const Graph* g_;
  Config config_;

  mutable std::mutex mu_;
  std::uint64_t cached_version_ = 0;
  std::uint64_t lru_tick_ = 0;
  std::unordered_map<std::uint64_t, Entry> entries_;
  std::vector<std::unique_ptr<DijkstraWorkspace>> pool_;
  DijkstraWorkspace scratch_;  ///< for cache-miss full runs (under mu_)
  // Incremental-repair scratch, reused across repairs (under mu_).
  std::vector<NodeId> walk_;            ///< parent-chain walk buffer
  std::vector<NodeId> affected_;
  std::vector<char> affected_flag_;
  std::vector<char> repair_settled_;
  std::vector<std::pair<double, NodeId>> repair_heap_;

  Stats stats_;
  // Telemetry handles, cached at attach time (registry lookups off the
  // hot path — the idiom DistributedSession established).
  obs::Counter* c_lookups_ = nullptr;
  obs::Counter* c_hit_ = nullptr;
  obs::Counter* c_miss_ = nullptr;
  obs::Counter* c_incremental_ = nullptr;
  obs::Counter* c_fallback_ = nullptr;
  obs::Counter* c_invalidations_ = nullptr;
};

/// Incrementally refreshed nearest-target detour search, the shared
/// mechanism behind repair_session's nearest-first repair loop.
///
/// compute() runs one absorbing search from `origin` (targets absorb, so
/// the path it yields crosses no target before its endpoint — exactly the
/// new links a restoration graft brings in) and records the nearest
/// reachable target (ties: lowest id). As the target set grows
/// monotonically — each applied repair pulls grafted nodes back on-tree —
/// add_targets() updates the answer against the delta in O(|delta|): the
/// cached snapshot stays exact because any origin→x path invalidated by
/// the growth crosses an added node strictly earlier on the path, which
/// the delta scan also considers.
class DetourSearch {
 public:
  /// Fresh absorbing search; `targets` flags the absorbing set (sized to
  /// the node count). Uses a workspace leased from `oracle`.
  void compute(RoutingOracle& oracle, NodeId origin,
               const std::vector<char>& targets, const ExclusionSet& excluded);

  /// The target set grew by `added` (already flagged by the caller).
  void add_targets(const std::vector<NodeId>& added);

  [[nodiscard]] bool found() const noexcept { return best_ != kNoNode; }
  [[nodiscard]] NodeId best_target() const noexcept { return best_; }
  /// The underlying search snapshot (valid after compute()).
  [[nodiscard]] const ShortestPathTree& search() const noexcept {
    return search_;
  }

 private:
  void consider(NodeId target) noexcept;

  ShortestPathTree search_;
  NodeId best_ = kNoNode;
};

}  // namespace smrp::net
