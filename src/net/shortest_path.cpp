#include "net/shortest_path.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace smrp::net {

std::vector<NodeId> ShortestPathTree::path_to_source(NodeId target) const {
  std::vector<NodeId> out;
  if (!reachable(target)) return out;
  for (NodeId n = target; n != kNoNode;
       n = parent[static_cast<std::size_t>(n)]) {
    out.push_back(n);
  }
  return out;
}

std::vector<NodeId> ShortestPathTree::path_from_source(NodeId target) const {
  std::vector<NodeId> out = path_to_source(target);
  std::reverse(out.begin(), out.end());
  return out;
}

std::vector<LinkId> ShortestPathTree::link_path_from_source(
    NodeId target) const {
  std::vector<LinkId> out;
  if (!reachable(target)) return out;
  for (NodeId n = target; parent[static_cast<std::size_t>(n)] != kNoNode;
       n = parent[static_cast<std::size_t>(n)]) {
    out.push_back(parent_link[static_cast<std::size_t>(n)]);
  }
  std::reverse(out.begin(), out.end());
  return out;
}

namespace {

struct QueueEntry {
  double dist;
  NodeId node;
  // Deterministic order: lower distance first, then lower node id, so a
  // rebuilt binary can replay an experiment bit-for-bit.
  bool operator>(const QueueEntry& other) const noexcept {
    if (dist != other.dist) return dist > other.dist;
    return node > other.node;
  }
};

}  // namespace

namespace {

ShortestPathTree dijkstra_impl(const Graph& g, NodeId source,
                               const ExclusionSet& excluded,
                               const std::vector<char>* absorbing);

}  // namespace

ShortestPathTree dijkstra(const Graph& g, NodeId source,
                          const ExclusionSet& excluded) {
  return dijkstra_impl(g, source, excluded, nullptr);
}

ShortestPathTree dijkstra(const Graph& g, NodeId source) {
  return dijkstra(g, source, ExclusionSet{});
}

ShortestPathTree dijkstra_absorbing(const Graph& g, NodeId source,
                                    const std::vector<char>& absorbing,
                                    const ExclusionSet& excluded) {
  if (absorbing.size() != static_cast<std::size_t>(g.node_count())) {
    throw std::invalid_argument("absorbing flags sized incorrectly");
  }
  if (g.valid_node(source) && absorbing[static_cast<std::size_t>(source)]) {
    throw std::invalid_argument("source must not be absorbing");
  }
  return dijkstra_impl(g, source, excluded, &absorbing);
}

namespace {

ShortestPathTree dijkstra_impl(const Graph& g, NodeId source,
                               const ExclusionSet& excluded,
                               const std::vector<char>* absorbing) {
  if (!g.valid_node(source)) throw std::out_of_range("bad source node");
  if (excluded.node_banned(source)) {
    throw std::invalid_argument("source node is banned");
  }

  const auto n = static_cast<std::size_t>(g.node_count());
  ShortestPathTree tree;
  tree.source = source;
  tree.dist.assign(n, kInfinity);
  tree.parent.assign(n, kNoNode);
  tree.parent_link.assign(n, kNoLink);
  tree.hops.assign(n, -1);

  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      queue;
  tree.dist[static_cast<std::size_t>(source)] = 0.0;
  tree.hops[static_cast<std::size_t>(source)] = 0;
  queue.push({0.0, source});

  std::vector<char> settled(n, 0);
  while (!queue.empty()) {
    const QueueEntry top = queue.top();
    queue.pop();
    const auto u = static_cast<std::size_t>(top.node);
    if (settled[u]) continue;
    settled[u] = 1;
    // Absorbing nodes are valid destinations but never relay further.
    if (absorbing != nullptr && (*absorbing)[u] != 0) continue;

    for (const Adjacency& adj : g.neighbors(top.node)) {
      if (excluded.link_banned(adj.link) || excluded.node_banned(adj.neighbor))
        continue;
      const auto v = static_cast<std::size_t>(adj.neighbor);
      if (settled[v]) continue;
      const double candidate = tree.dist[u] + g.link(adj.link).weight;
      // Equal-cost ties prefer fewer hops (an expanding-ring search finds
      // the closer-by-hops node first), then the lower predecessor id for
      // determinism.
      const int candidate_hops = tree.hops[u] + 1;
      const bool better =
          candidate < tree.dist[v] ||
          (candidate == tree.dist[v] &&
           (candidate_hops < tree.hops[v] ||
            (candidate_hops == tree.hops[v] && top.node < tree.parent[v])));
      if (better) {
        tree.dist[v] = candidate;
        tree.parent[v] = top.node;
        tree.parent_link[v] = adj.link;
        tree.hops[v] = tree.hops[u] + 1;
        queue.push({candidate, adj.neighbor});
      }
    }
  }
  return tree;
}

}  // namespace

}  // namespace smrp::net
