#include "net/shortest_path.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>

namespace smrp::net {

std::vector<NodeId> ExclusionSet::banned_nodes() const {
  std::vector<NodeId> out;
  out.reserve(static_cast<std::size_t>(banned_nodes_));
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i] != 0) out.push_back(static_cast<NodeId>(i));
  }
  return out;
}

std::vector<LinkId> ExclusionSet::banned_links() const {
  std::vector<LinkId> out;
  out.reserve(static_cast<std::size_t>(banned_links_));
  for (std::size_t i = 0; i < links_.size(); ++i) {
    if (links_[i] != 0) out.push_back(static_cast<LinkId>(i));
  }
  return out;
}

std::vector<NodeId> ShortestPathTree::path_to_source(NodeId target) const {
  std::vector<NodeId> out;
  if (!reachable(target)) return out;
  for (NodeId n = target; n != kNoNode;
       n = parent[static_cast<std::size_t>(n)]) {
    out.push_back(n);
  }
  return out;
}

std::vector<NodeId> ShortestPathTree::path_from_source(NodeId target) const {
  std::vector<NodeId> out = path_to_source(target);
  std::reverse(out.begin(), out.end());
  return out;
}

std::vector<LinkId> ShortestPathTree::link_path_from_source(
    NodeId target) const {
  std::vector<LinkId> out;
  if (!reachable(target)) return out;
  for (NodeId n = target; parent[static_cast<std::size_t>(n)] != kNoNode;
       n = parent[static_cast<std::size_t>(n)]) {
    out.push_back(parent_link[static_cast<std::size_t>(n)]);
  }
  std::reverse(out.begin(), out.end());
  return out;
}

namespace {

// Deterministic queue order: lower distance first, then lower node id, so
// a rebuilt binary can replay an experiment bit-for-bit. std::pair's
// lexicographic ordering on (dist, node) provides exactly that.
using QueueEntry = std::pair<double, NodeId>;

}  // namespace

void DijkstraWorkspace::run_impl(const Graph& g, NodeId source,
                                 const ExclusionSet& excluded,
                                 const std::vector<char>* absorbing,
                                 ShortestPathTree& tree) {
  if (!g.valid_node(source)) throw std::out_of_range("bad source node");
  if (excluded.node_banned(source)) {
    throw std::invalid_argument("source node is banned");
  }

  const auto n = static_cast<std::size_t>(g.node_count());
  tree.source = source;
  tree.dist.assign(n, kInfinity);
  tree.parent.assign(n, kNoNode);
  tree.parent_link.assign(n, kNoLink);
  tree.hops.assign(n, -1);

  heap_.clear();
  settled_.assign(n, 0);

  const auto heap_greater = std::greater<QueueEntry>{};
  tree.dist[static_cast<std::size_t>(source)] = 0.0;
  tree.hops[static_cast<std::size_t>(source)] = 0;
  heap_.emplace_back(0.0, source);

  while (!heap_.empty()) {
    const QueueEntry top = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), heap_greater);
    heap_.pop_back();
    const auto u = static_cast<std::size_t>(top.second);
    if (settled_[u]) continue;
    settled_[u] = 1;
    // Absorbing nodes are valid destinations but never relay further.
    if (absorbing != nullptr && (*absorbing)[u] != 0) continue;

    for (const Adjacency& adj : g.neighbors(top.second)) {
      if (excluded.link_banned(adj.link) || excluded.node_banned(adj.neighbor))
        continue;
      const auto v = static_cast<std::size_t>(adj.neighbor);
      if (settled_[v]) continue;
      const double candidate = tree.dist[u] + g.link(adj.link).weight;
      // Equal-cost ties prefer fewer hops (an expanding-ring search finds
      // the closer-by-hops node first), then the lower predecessor id for
      // determinism. A node with no predecessor yet (only the source, via
      // zero-weight links) keeps kNoNode explicitly, so the contract does
      // not lean on the sentinel's numeric value.
      const int candidate_hops = tree.hops[u] + 1;
      const bool better =
          candidate < tree.dist[v] ||
          (candidate == tree.dist[v] &&
           (candidate_hops < tree.hops[v] ||
            (candidate_hops == tree.hops[v] && tree.parent[v] != kNoNode &&
             top.second < tree.parent[v])));
      if (better) {
        tree.dist[v] = candidate;
        tree.parent[v] = top.second;
        tree.parent_link[v] = adj.link;
        tree.hops[v] = tree.hops[u] + 1;
        heap_.emplace_back(candidate, adj.neighbor);
        std::push_heap(heap_.begin(), heap_.end(), heap_greater);
      }
    }
  }
}

const ShortestPathTree& DijkstraWorkspace::run(const Graph& g, NodeId source,
                                               const ExclusionSet& excluded) {
  run_into(g, source, excluded, tree_);
  return tree_;
}

const ShortestPathTree& DijkstraWorkspace::run_absorbing(
    const Graph& g, NodeId source, const std::vector<char>& absorbing,
    const ExclusionSet& excluded) {
  run_absorbing_into(g, source, absorbing, excluded, tree_);
  return tree_;
}

void DijkstraWorkspace::run_into(const Graph& g, NodeId source,
                                 const ExclusionSet& excluded,
                                 ShortestPathTree& out) {
  run_impl(g, source, excluded, nullptr, out);
}

void DijkstraWorkspace::run_absorbing_into(const Graph& g, NodeId source,
                                           const std::vector<char>& absorbing,
                                           const ExclusionSet& excluded,
                                           ShortestPathTree& out) {
  if (absorbing.size() != static_cast<std::size_t>(g.node_count())) {
    throw std::invalid_argument("absorbing flags sized incorrectly");
  }
  if (g.valid_node(source) && absorbing[static_cast<std::size_t>(source)]) {
    throw std::invalid_argument("source must not be absorbing");
  }
  run_impl(g, source, excluded, &absorbing, out);
}

ShortestPathTree dijkstra(const Graph& g, NodeId source,
                          const ExclusionSet& excluded) {
  DijkstraWorkspace workspace;
  ShortestPathTree out;
  workspace.run_into(g, source, excluded, out);
  return out;
}

ShortestPathTree dijkstra(const Graph& g, NodeId source) {
  return dijkstra(g, source, ExclusionSet{});
}

ShortestPathTree dijkstra_absorbing(const Graph& g, NodeId source,
                                    const std::vector<char>& absorbing,
                                    const ExclusionSet& excluded) {
  DijkstraWorkspace workspace;
  ShortestPathTree out;
  workspace.run_absorbing_into(g, source, absorbing, excluded, out);
  return out;
}

}  // namespace smrp::net
