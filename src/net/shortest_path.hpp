// Single-source shortest paths (Dijkstra) with optional exclusion of failed
// or forbidden links/nodes. This is the SPF engine underlying both the
// baseline multicast protocol and SMRP's candidate-path enumeration.
#pragma once

#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

#include "net/graph.hpp"

namespace smrp::net {

inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

/// Set of banned nodes and links, e.g. failed components or — during SMRP
/// graft enumeration — the on-tree nodes a candidate must not cross.
class ExclusionSet {
 public:
  ExclusionSet() = default;
  explicit ExclusionSet(const Graph& g)
      : nodes_(static_cast<std::size_t>(g.node_count()), 0),
        links_(static_cast<std::size_t>(g.link_count()), 0) {}

  void ban_node(NodeId n) { at(nodes_, n) = 1; }
  void allow_node(NodeId n) { at(nodes_, n) = 0; }
  void ban_link(LinkId l) { at(links_, l) = 1; }
  void allow_link(LinkId l) { at(links_, l) = 0; }

  [[nodiscard]] bool node_banned(NodeId n) const {
    return n >= 0 && n < static_cast<NodeId>(nodes_.size()) &&
           nodes_[static_cast<std::size_t>(n)] != 0;
  }
  [[nodiscard]] bool link_banned(LinkId l) const {
    return l >= 0 && l < static_cast<LinkId>(links_.size()) &&
           links_[static_cast<std::size_t>(l)] != 0;
  }

  [[nodiscard]] bool empty() const noexcept {
    return nodes_.empty() && links_.empty();
  }

 private:
  template <typename Vec, typename Id>
  static char& at(Vec& v, Id id) {
    if (id < 0) throw std::out_of_range("negative id");
    if (static_cast<std::size_t>(id) >= v.size()) {
      v.resize(static_cast<std::size_t>(id) + 1, 0);
    }
    return v[static_cast<std::size_t>(id)];
  }

  std::vector<char> nodes_;
  std::vector<char> links_;
};

/// Result of one Dijkstra run: per-node distance and predecessor data.
struct ShortestPathTree {
  NodeId source = kNoNode;
  std::vector<double> dist;         ///< kInfinity if unreachable
  std::vector<NodeId> parent;       ///< predecessor toward the source
  std::vector<LinkId> parent_link;  ///< link to the predecessor
  std::vector<int> hops;            ///< hop count from the source

  [[nodiscard]] bool reachable(NodeId n) const {
    return n >= 0 && static_cast<std::size_t>(n) < dist.size() &&
           dist[static_cast<std::size_t>(n)] < kInfinity;
  }

  /// Node sequence source → … → target (empty if unreachable).
  [[nodiscard]] std::vector<NodeId> path_from_source(NodeId target) const;

  /// Node sequence target → … → source (empty if unreachable).
  [[nodiscard]] std::vector<NodeId> path_to_source(NodeId target) const;

  /// Link sequence along source → … → target (empty if unreachable).
  [[nodiscard]] std::vector<LinkId> link_path_from_source(NodeId target) const;
};

/// Reusable scratch space for repeated Dijkstra runs. A single run
/// allocates four result vectors plus the queue and settled flags; hot
/// paths (candidate enumeration, per-member recovery searches) run
/// thousands of searches per trial, so they thread one workspace through
/// and every run after the first reuses the same storage. Results are
/// bit-for-bit identical to the free functions (a property test enforces
/// this). Not thread-safe; use one workspace per thread.
class DijkstraWorkspace {
 public:
  /// Run Dijkstra and return the workspace's internal result tree. The
  /// reference stays valid (and stable) until the next run on this
  /// workspace; callers that need the result to outlive it use run_into.
  const ShortestPathTree& run(const Graph& g, NodeId source,
                              const ExclusionSet& excluded = ExclusionSet{});
  const ShortestPathTree& run_absorbing(
      const Graph& g, NodeId source, const std::vector<char>& absorbing,
      const ExclusionSet& excluded = ExclusionSet{});

  /// Same, but fill a caller-owned tree (reusing its capacity); only the
  /// queue/settled scratch is shared with the workspace.
  void run_into(const Graph& g, NodeId source, const ExclusionSet& excluded,
                ShortestPathTree& out);
  void run_absorbing_into(const Graph& g, NodeId source,
                          const std::vector<char>& absorbing,
                          const ExclusionSet& excluded, ShortestPathTree& out);

 private:
  void run_impl(const Graph& g, NodeId source, const ExclusionSet& excluded,
                const std::vector<char>* absorbing, ShortestPathTree& out);

  ShortestPathTree tree_;                        ///< result of run()
  std::vector<std::pair<double, NodeId>> heap_;  ///< (dist, node) min-heap
  std::vector<char> settled_;
};

/// Dijkstra over the whole graph.
[[nodiscard]] ShortestPathTree dijkstra(const Graph& g, NodeId source);

/// Dijkstra avoiding the given banned nodes/links. The source itself must
/// not be banned. Banned nodes are never relaxed or expanded.
[[nodiscard]] ShortestPathTree dijkstra(const Graph& g, NodeId source,
                                        const ExclusionSet& excluded);

/// Dijkstra where nodes flagged in `absorbing` can be *reached* but never
/// *expanded*. For every absorbing node A this yields the shortest
/// source→A path whose intermediate nodes are all non-absorbing — exactly
/// the "graft that touches the multicast tree only at its merge node"
/// needed by SMRP's candidate enumeration (one run covers all merge
/// candidates). `excluded` is applied on top (e.g. failed links).
/// `absorbing` must be sized to the node count; the source must not be
/// absorbing or banned.
[[nodiscard]] ShortestPathTree dijkstra_absorbing(
    const Graph& g, NodeId source, const std::vector<char>& absorbing,
    const ExclusionSet& excluded = ExclusionSet{});

}  // namespace smrp::net
