// Single-source shortest paths (Dijkstra) with optional exclusion of failed
// or forbidden links/nodes. This is the SPF engine underlying both the
// baseline multicast protocol and SMRP's candidate-path enumeration.
#pragma once

#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

#include "net/graph.hpp"

namespace smrp::net {

inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

/// Set of banned nodes and links, e.g. failed components or — during SMRP
/// graft enumeration — the on-tree nodes a candidate must not cross.
///
/// A set is sized from its Graph at construction; banning an id the graph
/// does not have is a hard error (it would mean the set is being used
/// against a different graph than it was built for — a mismatch the old
/// silent auto-resize used to mask). The default-constructed set is the
/// immutable "no exclusions" value.
///
/// Alongside the flags the set maintains an order-independent 64-bit
/// signature of its banned ids (XOR of per-id hashes), so equal ban sets
/// always hash equal regardless of the ban/allow call sequence that
/// produced them. RoutingOracle keys its SPF-tree cache on it.
class ExclusionSet {
 public:
  ExclusionSet() = default;
  explicit ExclusionSet(const Graph& g)
      : nodes_(static_cast<std::size_t>(g.node_count()), 0),
        links_(static_cast<std::size_t>(g.link_count()), 0) {}

  void ban_node(NodeId n) { set_flag(nodes_, n, 1, mix_node(n), banned_nodes_); }
  void allow_node(NodeId n) { set_flag(nodes_, n, 0, mix_node(n), banned_nodes_); }
  void ban_link(LinkId l) { set_flag(links_, l, 1, mix_link(l), banned_links_); }
  void allow_link(LinkId l) { set_flag(links_, l, 0, mix_link(l), banned_links_); }

  [[nodiscard]] bool node_banned(NodeId n) const {
    return n >= 0 && n < static_cast<NodeId>(nodes_.size()) &&
           nodes_[static_cast<std::size_t>(n)] != 0;
  }
  [[nodiscard]] bool link_banned(LinkId l) const {
    return l >= 0 && l < static_cast<LinkId>(links_.size()) &&
           links_[static_cast<std::size_t>(l)] != 0;
  }

  /// True when nothing is banned.
  [[nodiscard]] bool empty() const noexcept {
    return banned_nodes_ == 0 && banned_links_ == 0;
  }

  [[nodiscard]] int banned_node_count() const noexcept { return banned_nodes_; }
  [[nodiscard]] int banned_link_count() const noexcept { return banned_links_; }

  /// Order-independent hash of the banned id sets; 0 for an empty set.
  [[nodiscard]] std::uint64_t signature() const noexcept { return signature_; }

  /// Banned ids in ascending order (an O(capacity) scan — cache-miss
  /// paths only, never per-relaxation).
  [[nodiscard]] std::vector<NodeId> banned_nodes() const;
  [[nodiscard]] std::vector<LinkId> banned_links() const;

  /// The per-id hashes the signature is built from, exposed so a cache
  /// can derive "this set minus one ban" signatures without copying.
  [[nodiscard]] static std::uint64_t mix_node(NodeId n) noexcept {
    return mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(n)));
  }
  [[nodiscard]] static std::uint64_t mix_link(LinkId l) noexcept {
    return mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(l)) |
               (std::uint64_t{1} << 32));  // tag: link ids hash apart from nodes
  }

 private:
  /// splitmix64 finalizer — avalanches dense small ids into independent bits.
  [[nodiscard]] static std::uint64_t mix(std::uint64_t x) noexcept {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  template <typename Id>
  void set_flag(std::vector<char>& v, Id id, char value, std::uint64_t hash,
                int& count) {
    if (id < 0 || static_cast<std::size_t>(id) >= v.size()) {
      throw std::out_of_range(
          "ExclusionSet id out of range (set built for a different graph?)");
    }
    char& slot = v[static_cast<std::size_t>(id)];
    if (slot == value) return;  // no state change: signature stays put
    slot = value;
    signature_ ^= hash;
    count += value != 0 ? 1 : -1;
  }

  std::vector<char> nodes_;
  std::vector<char> links_;
  std::uint64_t signature_ = 0;
  int banned_nodes_ = 0;
  int banned_links_ = 0;
};

/// Result of one Dijkstra run: per-node distance and predecessor data.
struct ShortestPathTree {
  NodeId source = kNoNode;
  std::vector<double> dist;         ///< kInfinity if unreachable
  std::vector<NodeId> parent;       ///< predecessor toward the source
  std::vector<LinkId> parent_link;  ///< link to the predecessor
  std::vector<std::int32_t> hops;   ///< hop count from the source

  [[nodiscard]] bool reachable(NodeId n) const {
    return n >= 0 && static_cast<std::size_t>(n) < dist.size() &&
           dist[static_cast<std::size_t>(n)] < kInfinity;
  }

  /// Node sequence source → … → target (empty if unreachable).
  [[nodiscard]] std::vector<NodeId> path_from_source(NodeId target) const;

  /// Node sequence target → … → source (empty if unreachable).
  [[nodiscard]] std::vector<NodeId> path_to_source(NodeId target) const;

  /// Link sequence along source → … → target (empty if unreachable).
  [[nodiscard]] std::vector<LinkId> link_path_from_source(NodeId target) const;
};

/// Reusable scratch space for repeated Dijkstra runs. A single run
/// allocates four result vectors plus the queue and settled flags; hot
/// paths (candidate enumeration, per-member recovery searches) run
/// thousands of searches per trial, so they thread one workspace through
/// and every run after the first reuses the same storage. Results are
/// bit-for-bit identical to the free functions (a property test enforces
/// this). Not thread-safe; use one workspace per thread.
class DijkstraWorkspace {
 public:
  /// Run Dijkstra and return the workspace's internal result tree. The
  /// reference stays valid (and stable) until the next run on this
  /// workspace; callers that need the result to outlive it use run_into.
  const ShortestPathTree& run(const Graph& g, NodeId source,
                              const ExclusionSet& excluded = ExclusionSet{});
  const ShortestPathTree& run_absorbing(
      const Graph& g, NodeId source, const std::vector<char>& absorbing,
      const ExclusionSet& excluded = ExclusionSet{});

  /// Same, but fill a caller-owned tree (reusing its capacity); only the
  /// queue/settled scratch is shared with the workspace.
  void run_into(const Graph& g, NodeId source, const ExclusionSet& excluded,
                ShortestPathTree& out);
  void run_absorbing_into(const Graph& g, NodeId source,
                          const std::vector<char>& absorbing,
                          const ExclusionSet& excluded, ShortestPathTree& out);

 private:
  void run_impl(const Graph& g, NodeId source, const ExclusionSet& excluded,
                const std::vector<char>* absorbing, ShortestPathTree& out);

  ShortestPathTree tree_;                        ///< result of run()
  std::vector<std::pair<double, NodeId>> heap_;  ///< (dist, node) min-heap
  std::vector<char> settled_;
};

/// Dijkstra over the whole graph.
[[nodiscard]] ShortestPathTree dijkstra(const Graph& g, NodeId source);

/// Dijkstra avoiding the given banned nodes/links. The source itself must
/// not be banned. Banned nodes are never relaxed or expanded.
[[nodiscard]] ShortestPathTree dijkstra(const Graph& g, NodeId source,
                                        const ExclusionSet& excluded);

/// Dijkstra where nodes flagged in `absorbing` can be *reached* but never
/// *expanded*. For every absorbing node A this yields the shortest
/// source→A path whose intermediate nodes are all non-absorbing — exactly
/// the "graft that touches the multicast tree only at its merge node"
/// needed by SMRP's candidate enumeration (one run covers all merge
/// candidates). `excluded` is applied on top (e.g. failed links).
/// `absorbing` must be sized to the node count; the source must not be
/// absorbing or banned.
[[nodiscard]] ShortestPathTree dijkstra_absorbing(
    const Graph& g, NodeId source, const std::vector<char>& absorbing,
    const ExclusionSet& excluded = ExclusionSet{});

}  // namespace smrp::net
