// Additional random-graph families beyond Waxman, addressing the paper's
// future-work question of how SMRP behaves on more Internet-like
// topologies:
//  * Erdős–Rényi  G(n, p): no locality at all — a control model,
//  * Barabási–Albert preferential attachment: heavy-tailed degrees like
//    real AS-level graphs (a handful of hubs carry most paths, so hub
//    adjacency dominates sharing).
#pragma once

#include "net/graph.hpp"
#include "net/rng.hpp"

namespace smrp::net {

struct ErdosRenyiParams {
  int node_count = 100;
  /// Edge probability. Pick ~target_degree / (n-1).
  double edge_probability = 0.06;
  /// Link weights drawn uniformly from [min_weight, max_weight).
  double min_weight = 1.0;
  double max_weight = 10.0;
  int max_resample_attempts = 50;
};

struct ErdosRenyiResult {
  Graph graph;
  int resamples = 0;
  int patched_links = 0;  ///< connectivity-patch links added
};

/// Connected G(n, p); disconnected samples are retried and finally patched
/// by bridging components with random links (counted in the result).
[[nodiscard]] ErdosRenyiResult generate_erdos_renyi(
    const ErdosRenyiParams& params, Rng& rng);
[[nodiscard]] Graph erdos_renyi_graph(const ErdosRenyiParams& params,
                                      Rng& rng);

struct BarabasiAlbertParams {
  int node_count = 100;
  /// Edges each newcomer attaches with (also the seed-clique size).
  /// Average degree converges to ≈ 2·edges_per_node.
  int edges_per_node = 2;
  double min_weight = 1.0;
  double max_weight = 10.0;
};

/// Preferential-attachment graph (always connected by construction).
[[nodiscard]] Graph barabasi_albert_graph(const BarabasiAlbertParams& params,
                                          Rng& rng);

}  // namespace smrp::net
