// Transit-stub topology generation, the 2-level Internet-like structure the
// paper's hierarchical recovery architecture (§3.3.3) maps onto: a small,
// well-connected transit core with stub domains hanging off transit nodes.
#pragma once

#include <vector>

#include "net/graph.hpp"
#include "net/rng.hpp"
#include "net/waxman.hpp"

namespace smrp::net {

struct TransitStubParams {
  int transit_nodes = 8;        ///< nodes in the (single) transit domain
  int stubs_per_transit = 3;    ///< stub domains attached to each transit node
  int stub_size = 4;            ///< nodes per stub domain
  // Dense defaults: recovery domains need internal path redundancy for
  // intra-domain repair to be possible at all (a tree-shaped domain makes
  // every failure a bridge).
  double transit_alpha = 0.9;   ///< Waxman α inside the transit core
  double stub_alpha = 0.9;      ///< Waxman α inside each stub
  double beta = 0.8;            ///< shared Waxman β
  double plane_size = 1000.0;   ///< transit plane; stubs occupy local patches
  double stub_patch_size = 120.0;
  LinkWeightMode weight_mode = LinkWeightMode::kEuclidean;
};

/// Domain identifier: 0 is the transit core, 1.. are stub domains.
using DomainId = int;
inline constexpr DomainId kTransitDomain = 0;

struct TransitStubTopology {
  Graph graph;
  /// Domain each node belongs to (kTransitDomain for core nodes).
  std::vector<DomainId> domain_of_node;
  /// The transit node each stub domain attaches to, indexed by DomainId
  /// (entry 0 is unused / kNoNode).
  std::vector<NodeId> gateway_of_domain;
  /// All node ids per domain, indexed by DomainId.
  std::vector<std::vector<NodeId>> nodes_of_domain;

  [[nodiscard]] int domain_count() const noexcept {
    return static_cast<int>(nodes_of_domain.size());
  }
};

/// Generate a connected 2-level transit-stub topology. Each stub is an
/// internally connected Waxman patch joined to its gateway transit node by
/// one access link; the transit core is itself a connected Waxman graph.
[[nodiscard]] TransitStubTopology generate_transit_stub(
    const TransitStubParams& params, Rng& rng);

}  // namespace smrp::net
