#include "net/routing_oracle.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>

namespace smrp::net {

namespace {

inline void bump(std::uint64_t& stat, obs::Counter* counter) noexcept {
  ++stat;
  if (counter != nullptr) counter->add(1);
}

/// Every banned id of `entry` is banned in `excluded` too. Combined with
/// an exact size comparison this gives set equality (or equality minus a
/// known element) without materialising the request's id list.
bool nodes_subset(const std::vector<NodeId>& ids, const ExclusionSet& excluded) {
  for (const NodeId id : ids) {
    if (!excluded.node_banned(id)) return false;
  }
  return true;
}

bool links_subset(const std::vector<LinkId>& ids, const ExclusionSet& excluded) {
  for (const LinkId id : ids) {
    if (!excluded.link_banned(id)) return false;
  }
  return true;
}

}  // namespace

void RoutingOracle::WorkspaceLease::release() noexcept {
  if (oracle_ != nullptr && workspace_ != nullptr) {
    oracle_->return_workspace(std::move(workspace_));
  }
  oracle_ = nullptr;
}

RoutingOracle::RoutingOracle(const Graph& g) : RoutingOracle(g, Config{}) {}

RoutingOracle::RoutingOracle(const Graph& g, Config config)
    : g_(&g), config_(config), cached_version_(g.topology_version()) {}

RoutingOracle::TreePtr RoutingOracle::spf(NodeId source) {
  return spf(source, ExclusionSet{});
}

RoutingOracle::TreePtr RoutingOracle::spf(NodeId source,
                                          const ExclusionSet& excluded) {
  // Same preconditions as dijkstra(); checked before anything is counted
  // so a throwing lookup leaves the counters consistent.
  if (!g_->valid_node(source)) throw std::out_of_range("bad source node");
  if (excluded.node_banned(source)) {
    throw std::invalid_argument("source node is banned");
  }

  std::lock_guard<std::mutex> lock(mu_);
  check_version_locked();
  bump(stats_.lookups, c_lookups_);

  const std::uint64_t key = cache_key(source, excluded.signature());
  if (const auto it = entries_.find(key);
      it != entries_.end() && it->second.source == source &&
      entry_matches(it->second, excluded)) {
    it->second.last_used = ++lru_tick_;
    bump(stats_.cache_hits, c_hit_);
    return it->second.tree;
  }
  bump(stats_.cache_misses, c_miss_);

  // One-extra-ban probe: for each banned component, look for a cached
  // tree computed under this exclusion minus that one ban and repair it
  // for the ban. Probe order (nodes ascending, then links ascending) is
  // fixed for determinism, though any base yields the identical tree.
  TreePtr tree;
  if (!excluded.empty()) {
    for (const NodeId x : excluded.banned_nodes()) {
      const auto it = entries_.find(
          cache_key(source, excluded.signature() ^ ExclusionSet::mix_node(x)));
      if (it == entries_.end() || it->second.source != source) continue;
      if (!entry_is_base(it->second, excluded, x, kNoLink)) continue;
      tree = repair_locked(it->second, excluded, x, kNoLink);
      if (tree != nullptr) break;
    }
    if (tree == nullptr) {
      for (const LinkId l : excluded.banned_links()) {
        const auto it = entries_.find(cache_key(
            source, excluded.signature() ^ ExclusionSet::mix_link(l)));
        if (it == entries_.end() || it->second.source != source) continue;
        if (!entry_is_base(it->second, excluded, kNoNode, l)) continue;
        tree = repair_locked(it->second, excluded, kNoNode, l);
        if (tree != nullptr) break;
      }
    }
  }
  if (tree != nullptr) {
    bump(stats_.incremental_repairs, c_incremental_);
  } else {
    tree = full_run_locked(source, excluded);
    bump(stats_.full_runs, c_fallback_);
  }
  insert_locked(source, excluded, tree);
  return tree;
}

RoutingOracle::WorkspaceLease RoutingOracle::workspace() {
  std::unique_ptr<DijkstraWorkspace> ws;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!pool_.empty()) {
      ws = std::move(pool_.back());
      pool_.pop_back();
    }
  }
  if (ws == nullptr) ws = std::make_unique<DijkstraWorkspace>();
  return WorkspaceLease(this, std::move(ws));
}

void RoutingOracle::return_workspace(
    std::unique_ptr<DijkstraWorkspace> workspace) noexcept {
  std::lock_guard<std::mutex> lock(mu_);
  // A small cap keeps the pool from pinning memory after a burst of
  // concurrent leases; beyond it the workspace is simply dropped.
  if (pool_.size() < 32) pool_.push_back(std::move(workspace));
}

void RoutingOracle::attach_telemetry(obs::Telemetry* telemetry) {
  std::lock_guard<std::mutex> lock(mu_);
  if (telemetry == nullptr) {
    c_lookups_ = c_hit_ = c_miss_ = c_incremental_ = c_fallback_ =
        c_invalidations_ = nullptr;
    return;
  }
  obs::MetricsRegistry& m = telemetry->metrics;
  c_lookups_ = &m.counter("smrp.routing.lookups");
  c_hit_ = &m.counter("smrp.routing.cache_hit");
  c_miss_ = &m.counter("smrp.routing.cache_miss");
  c_incremental_ = &m.counter("smrp.routing.cache_incremental");
  c_fallback_ = &m.counter("smrp.routing.cache_fallback");
  c_invalidations_ = &m.counter("smrp.routing.invalidations");
}

RoutingOracle::Stats RoutingOracle::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void RoutingOracle::invalidate() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  cached_version_ = g_->topology_version();
  bump(stats_.invalidations, c_invalidations_);
}

std::uint64_t RoutingOracle::cache_key(NodeId source,
                                       std::uint64_t signature) noexcept {
  // splitmix64 finalizer over (source, signature); collisions are caught
  // by entry_matches / entry_is_base, never trusted.
  std::uint64_t x = signature ^
                    (static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                         source)) *
                     0x9e3779b97f4a7c15ULL);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

void RoutingOracle::check_version_locked() {
  const std::uint64_t current = g_->topology_version();
  if (current == cached_version_) return;
  entries_.clear();
  cached_version_ = current;
  bump(stats_.invalidations, c_invalidations_);
}

bool RoutingOracle::entry_matches(const Entry& entry,
                                  const ExclusionSet& excluded) {
  return static_cast<int>(entry.banned_nodes.size()) ==
             excluded.banned_node_count() &&
         static_cast<int>(entry.banned_links.size()) ==
             excluded.banned_link_count() &&
         nodes_subset(entry.banned_nodes, excluded) &&
         links_subset(entry.banned_links, excluded);
}

bool RoutingOracle::entry_is_base(const Entry& entry,
                                  const ExclusionSet& excluded,
                                  NodeId extra_node, LinkId extra_link) {
  // Subset + exact sizes + "the extra ban is the one element missing"
  // pins the base set to exactly (request minus the extra ban).
  const int want_nodes =
      excluded.banned_node_count() - (extra_node != kNoNode ? 1 : 0);
  const int want_links =
      excluded.banned_link_count() - (extra_link != kNoLink ? 1 : 0);
  if (static_cast<int>(entry.banned_nodes.size()) != want_nodes ||
      static_cast<int>(entry.banned_links.size()) != want_links) {
    return false;
  }
  if (extra_node != kNoNode &&
      std::binary_search(entry.banned_nodes.begin(), entry.banned_nodes.end(),
                         extra_node)) {
    return false;
  }
  if (extra_link != kNoLink &&
      std::binary_search(entry.banned_links.begin(), entry.banned_links.end(),
                         extra_link)) {
    return false;
  }
  return nodes_subset(entry.banned_nodes, excluded) &&
         links_subset(entry.banned_links, excluded);
}

RoutingOracle::TreePtr RoutingOracle::repair_locked(const Entry& base,
                                                    const ExclusionSet& excluded,
                                                    NodeId extra_node,
                                                    LinkId extra_link) {
  const ShortestPathTree& b = *base.tree;
  const auto n = static_cast<std::size_t>(g_->node_count());

  // Root of the invalidated region: the node whose parent edge the ban
  // severed (link failure) or the banned node itself. A ban that does not
  // touch the cached tree changes nothing — the base snapshot is shared.
  NodeId root = kNoNode;
  if (extra_node != kNoNode) {
    if (!b.reachable(extra_node)) return base.tree;
    root = extra_node;
  } else {
    const Link& l = g_->link(extra_link);
    if (b.parent_link[static_cast<std::size_t>(l.a)] == extra_link) {
      root = l.a;
    } else if (b.parent_link[static_cast<std::size_t>(l.b)] == extra_link) {
      root = l.b;
    } else {
      return base.tree;
    }
  }

  // Affected set = the parent-pointer subtree under `root`. Every other
  // node provably keeps identical dist/parent/hops: its base path avoids
  // the banned component, a ban can only lengthen distances, and the
  // tie-break winner set only shrinks (so the lex-min winner survives).
  // Memoised parent-chain walk: 0 unknown, 1 affected, 2 unaffected.
  affected_flag_.assign(n, 0);
  affected_flag_[static_cast<std::size_t>(root)] = 1;
  affected_.clear();
  affected_.push_back(root);
  walk_.clear();
  for (NodeId v = 0; v < static_cast<NodeId>(n); ++v) {
    if (affected_flag_[static_cast<std::size_t>(v)] != 0) continue;
    walk_.clear();
    NodeId cur = v;
    char status = 2;
    while (true) {
      const char f = affected_flag_[static_cast<std::size_t>(cur)];
      if (f != 0) {
        status = f;
        break;
      }
      const NodeId p = b.parent[static_cast<std::size_t>(cur)];
      if (p == kNoNode) break;  // the source, or unreachable: unaffected
      walk_.push_back(cur);
      cur = p;
    }
    for (const NodeId x : walk_) {
      affected_flag_[static_cast<std::size_t>(x)] = status;
      if (status == 1) affected_.push_back(x);
    }
    if (affected_flag_[static_cast<std::size_t>(v)] == 0) {
      affected_flag_[static_cast<std::size_t>(v)] = status;  // v had no parent
    }
  }
  if (static_cast<double>(affected_.size()) >
      config_.incremental_max_fraction * static_cast<double>(n)) {
    return nullptr;  // region too large: delta costs more than it saves
  }

  auto fresh = std::make_shared<ShortestPathTree>(b);
  ShortestPathTree& t = *fresh;
  for (const NodeId v : affected_) {
    const auto i = static_cast<std::size_t>(v);
    t.dist[i] = kInfinity;
    t.parent[i] = kNoNode;
    t.parent_link[i] = kNoLink;
    t.hops[i] = -1;
  }

  repair_settled_.assign(n, 0);
  repair_heap_.clear();
  const auto heap_greater = std::greater<std::pair<double, NodeId>>{};
  // The exact relaxation rule of DijkstraWorkspace::run_impl — candidate
  // ordering (dist, hops, predecessor id) — so the repaired region
  // converges to the identical fixpoint a fresh run would produce.
  const auto relax = [&](NodeId from, LinkId link, NodeId to) {
    const auto fu = static_cast<std::size_t>(from);
    const auto tv = static_cast<std::size_t>(to);
    const double candidate = t.dist[fu] + g_->link(link).weight;
    const int candidate_hops = t.hops[fu] + 1;
    const bool better =
        candidate < t.dist[tv] ||
        (candidate == t.dist[tv] &&
         (candidate_hops < t.hops[tv] ||
          (candidate_hops == t.hops[tv] && t.parent[tv] != kNoNode &&
           from < t.parent[tv])));
    if (better) {
      t.dist[tv] = candidate;
      t.parent[tv] = from;
      t.parent_link[tv] = link;
      t.hops[tv] = candidate_hops;
      repair_heap_.emplace_back(candidate, to);
      std::push_heap(repair_heap_.begin(), repair_heap_.end(), heap_greater);
    }
  };

  // Boundary seeding: every unaffected reachable neighbor offers its
  // final distance into the region. Offers a full run would not have made
  // (from nodes settling after the target) carry strictly larger
  // distances and lose the comparison, so the extra offers are harmless.
  for (const NodeId v : affected_) {
    if (excluded.node_banned(v)) continue;  // the banned node stays cut off
    for (const Adjacency& adj : g_->neighbors(v)) {
      const auto u = static_cast<std::size_t>(adj.neighbor);
      if (affected_flag_[u] == 1) continue;
      if (excluded.link_banned(adj.link) ||
          excluded.node_banned(adj.neighbor)) {
        continue;
      }
      if (t.dist[u] == kInfinity) continue;
      relax(adj.neighbor, adj.link, v);
    }
  }

  // Dijkstra restricted to the affected region.
  while (!repair_heap_.empty()) {
    const std::pair<double, NodeId> top = repair_heap_.front();
    std::pop_heap(repair_heap_.begin(), repair_heap_.end(), heap_greater);
    repair_heap_.pop_back();
    const auto u = static_cast<std::size_t>(top.second);
    if (repair_settled_[u] != 0) continue;
    repair_settled_[u] = 1;
    for (const Adjacency& adj : g_->neighbors(top.second)) {
      const auto v = static_cast<std::size_t>(adj.neighbor);
      if (affected_flag_[v] != 1 || repair_settled_[v] != 0) continue;
      if (excluded.link_banned(adj.link) ||
          excluded.node_banned(adj.neighbor)) {
        continue;
      }
      relax(top.second, adj.link, adj.neighbor);
    }
  }
  return fresh;
}

RoutingOracle::TreePtr RoutingOracle::full_run_locked(
    NodeId source, const ExclusionSet& excluded) {
  auto fresh = std::make_shared<ShortestPathTree>();
  scratch_.run_into(*g_, source, excluded, *fresh);
  return fresh;
}

void RoutingOracle::insert_locked(NodeId source, const ExclusionSet& excluded,
                                  TreePtr tree) {
  Entry entry;
  entry.source = source;
  entry.signature = excluded.signature();
  entry.banned_nodes = excluded.banned_nodes();
  entry.banned_links = excluded.banned_links();
  entry.tree = std::move(tree);
  entry.last_used = ++lru_tick_;
  entries_[cache_key(source, entry.signature)] = std::move(entry);

  while (entries_.size() > config_.max_entries) {
    auto victim = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.last_used < victim->second.last_used) victim = it;
    }
    entries_.erase(victim);
  }
}

void DetourSearch::compute(RoutingOracle& oracle, NodeId origin,
                           const std::vector<char>& targets,
                           const ExclusionSet& excluded) {
  const RoutingOracle::WorkspaceLease lease = oracle.workspace();
  lease->run_absorbing_into(oracle.graph(), origin, targets, excluded,
                            search_);
  best_ = kNoNode;
  const NodeId n = oracle.graph().node_count();
  for (NodeId x = 0; x < n; ++x) {
    if (targets[static_cast<std::size_t>(x)] != 0) consider(x);
  }
}

void DetourSearch::add_targets(const std::vector<NodeId>& added) {
  for (const NodeId x : added) consider(x);
}

void DetourSearch::consider(NodeId target) noexcept {
  if (!search_.reachable(target)) return;
  const double d = search_.dist[static_cast<std::size_t>(target)];
  const bool better =
      best_ == kNoNode || d < search_.dist[static_cast<std::size_t>(best_)] ||
      (d == search_.dist[static_cast<std::size_t>(best_)] && target < best_);
  if (better) best_ = target;
}

}  // namespace smrp::net
