#include "net/routing_oracle.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>
#include <utility>

namespace smrp::net {

namespace {

/// Every banned id of `entry` is banned in `excluded` too. Combined with
/// an exact size comparison this gives set equality (or equality minus a
/// known element) without materialising the request's id list.
bool nodes_subset(const std::vector<NodeId>& ids, const ExclusionSet& excluded) {
  for (const NodeId id : ids) {
    if (!excluded.node_banned(id)) return false;
  }
  return true;
}

bool links_subset(const std::vector<LinkId>& ids, const ExclusionSet& excluded) {
  for (const LinkId id : ids) {
    if (!excluded.link_banned(id)) return false;
  }
  return true;
}

std::size_t round_up_pow2(std::size_t x) {
  std::size_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

}  // namespace

void RoutingOracle::WorkspaceLease::release() noexcept {
  if (oracle_ != nullptr && workspace_ != nullptr) {
    oracle_->return_workspace(std::move(workspace_));
  }
  oracle_ = nullptr;
}

RoutingOracle::RoutingOracle(const Graph& g) : RoutingOracle(g, Config{}) {}

RoutingOracle::RoutingOracle(const Graph& g, Config config)
    : g_(&g),
      config_(config),
      recycler_(std::make_shared<TreeRecycler>()) {
  const std::size_t stripes =
      round_up_pow2(std::clamp<std::size_t>(config_.stripes, 1, 256));
  stripe_mask_ = stripes - 1;
  // The entry cap is approximate under striping: each stripe evicts
  // independently at its share of max_entries, with a floor of 8 so an
  // uneven key hash cannot thrash a popular stripe while others sit
  // empty. (Worst-case resident entries is stripes * floor, reached only
  // when every stripe is saturated.)
  stripe_capacity_ =
      std::max<std::size_t>(8, (config_.max_entries + stripes - 1) / stripes);
  stripes_ = std::vector<Stripe>(stripes);
  const std::uint64_t version = g.topology_version();
  seen_version_.store(version, std::memory_order_relaxed);
  for (Stripe& stripe : stripes_) stripe.seen_version = version;
}

void RoutingOracle::bump(std::atomic<std::uint64_t>& stat,
                         obs::Counter* counter) {
  stat.fetch_add(1, std::memory_order_relaxed);
  if (counter != nullptr) {
    // obs::Counter is not thread-safe; serialize the mirror. Detached
    // telemetry (every concurrent bench/driver path) never takes this.
    std::lock_guard<std::mutex> lock(telemetry_mu_);
    counter->add(1);
  }
}

RoutingOracle::TreePtr RoutingOracle::spf(NodeId source) {
  return spf(source, ExclusionSet{});
}

RoutingOracle::TreePtr RoutingOracle::spf(NodeId source,
                                          const ExclusionSet& excluded) {
  // Same preconditions as dijkstra(); checked before anything is counted
  // so a throwing lookup leaves the counters consistent.
  if (!g_->valid_node(source)) throw std::out_of_range("bad source node");
  if (excluded.node_banned(source)) {
    throw std::invalid_argument("source node is banned");
  }

  const auto [version, flush] = current_epoch();
  const std::uint64_t key = cache_key(source, excluded.signature());
  Stripe& home = stripe_of(key);
  bump(n_lookups_, c_lookups_);

  for (;;) {
    std::shared_ptr<Cell> wait_cell;
    std::shared_ptr<Cell> my_cell;
    {
      std::lock_guard<std::mutex> lock(home.mu);
      refresh_stripe_locked(home, version, flush);
      const auto it = home.entries.find(key);
      if (it != home.entries.end() && it->second.source == source &&
          entry_matches(it->second, excluded)) {
        it->second.last_used = ++home.lru_tick;
        if (it->second.tree != nullptr) {
          bump(n_hits_, c_hit_);
          return it->second.tree;
        }
        wait_cell = it->second.cell;  // in flight: wait outside the lock
      } else {
        // Miss: register the in-flight cell so concurrent lookups of the
        // same key wait for this computation instead of duplicating it.
        my_cell = std::make_shared<Cell>();
        Entry entry;
        entry.source = source;
        entry.signature = excluded.signature();
        entry.banned_nodes = excluded.banned_nodes();
        entry.banned_links = excluded.banned_links();
        entry.cell = my_cell;
        entry.last_used = ++home.lru_tick;
        home.entries[key] = std::move(entry);
      }
    }

    if (wait_cell != nullptr) {
      std::unique_lock<std::mutex> cell_lock(wait_cell->mu);
      wait_cell->cv.wait(cell_lock, [&wait_cell] {
        return wait_cell->tree != nullptr || wait_cell->failed;
      });
      if (wait_cell->failed) continue;  // winner threw; retry the lookup
      // Served the winner's snapshot without running Dijkstra: a hit.
      bump(n_hits_, c_hit_);
      return wait_cell->tree;
    }

    // This thread won the key: compute outside every stripe lock.
    bump(n_misses_, c_miss_);
    TreePtr tree;
    bool incremental = false;
    try {
      std::unique_ptr<ComputeScratch> scratch = acquire_scratch();
      if (!excluded.empty()) {
        NodeId extra_node = kNoNode;
        LinkId extra_link = kNoLink;
        const TreePtr base =
            find_base(source, excluded, version, flush, extra_node, extra_link);
        if (base != nullptr) {
          tree = repair(base, excluded, extra_node, extra_link, *scratch);
        }
      }
      if (tree != nullptr) {
        incremental = true;
      } else {
        tree = full_run(source, excluded, *scratch);
      }
      release_scratch(std::move(scratch));
    } catch (...) {
      {
        std::lock_guard<std::mutex> cell_lock(my_cell->mu);
        my_cell->failed = true;
      }
      my_cell->cv.notify_all();
      std::lock_guard<std::mutex> lock(home.mu);
      const auto it = home.entries.find(key);
      if (it != home.entries.end() && it->second.cell == my_cell) {
        home.entries.erase(it);
      }
      throw;
    }
    bump(incremental ? n_incremental_ : n_full_,
         incremental ? c_incremental_ : c_fallback_);

    // Publish to waiters first (they only need the bytes), then to the
    // stripe (which may meanwhile have been flushed or evicted — then the
    // snapshot is simply not cached, never wrong).
    {
      std::lock_guard<std::mutex> cell_lock(my_cell->mu);
      my_cell->tree = tree;
    }
    my_cell->cv.notify_all();

    std::int64_t count_delta = 0;
    std::int64_t bytes_delta = 0;
    {
      std::lock_guard<std::mutex> lock(home.mu);
      const auto it = home.entries.find(key);
      if (it != home.entries.end() && it->second.cell == my_cell) {
        it->second.tree = tree;
        it->second.last_used = ++home.lru_tick;
        count_delta = 1;
        bytes_delta = static_cast<std::int64_t>(tree_bytes(*tree));
        // LRU-evict ready entries beyond the stripe's share of
        // max_entries; in-flight entries are never evicted (their
        // winner still holds the cell).
        std::size_t ready = 0;
        for (const auto& [k, e] : home.entries) {
          if (e.tree != nullptr) ++ready;
        }
        while (ready > stripe_capacity_) {
          auto victim = home.entries.end();
          for (auto jt = home.entries.begin(); jt != home.entries.end();
               ++jt) {
            if (jt->second.tree == nullptr) continue;
            if (victim == home.entries.end() ||
                jt->second.last_used < victim->second.last_used) {
              victim = jt;
            }
          }
          if (victim == home.entries.end()) break;
          --count_delta;
          bytes_delta -= static_cast<std::int64_t>(tree_bytes(*victim->second.tree));
          home.entries.erase(victim);
          --ready;
        }
      }
    }
    if (count_delta != 0 || bytes_delta != 0) {
      snapshots_changed(count_delta, bytes_delta);
    }
    return tree;
  }
}

RoutingOracle::WorkspaceLease RoutingOracle::workspace() {
  std::unique_ptr<DijkstraWorkspace> ws;
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    if (!workspace_pool_.empty()) {
      ws = std::move(workspace_pool_.back());
      workspace_pool_.pop_back();
    }
  }
  if (ws == nullptr) ws = std::make_unique<DijkstraWorkspace>();
  return WorkspaceLease(this, std::move(ws));
}

void RoutingOracle::return_workspace(
    std::unique_ptr<DijkstraWorkspace> workspace) noexcept {
  std::lock_guard<std::mutex> lock(pool_mu_);
  // A small cap keeps the pool from pinning memory after a burst of
  // concurrent leases; beyond it the workspace is simply dropped.
  if (workspace_pool_.size() < 32) {
    workspace_pool_.push_back(std::move(workspace));
  }
}

std::unique_ptr<RoutingOracle::ComputeScratch> RoutingOracle::acquire_scratch() {
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    if (!scratch_pool_.empty()) {
      std::unique_ptr<ComputeScratch> scratch = std::move(scratch_pool_.back());
      scratch_pool_.pop_back();
      return scratch;
    }
  }
  return std::make_unique<ComputeScratch>();
}

void RoutingOracle::release_scratch(
    std::unique_ptr<ComputeScratch> scratch) noexcept {
  std::lock_guard<std::mutex> lock(pool_mu_);
  if (scratch_pool_.size() < 32) scratch_pool_.push_back(std::move(scratch));
}

std::shared_ptr<ShortestPathTree> RoutingOracle::acquire_tree() {
  std::unique_ptr<ShortestPathTree> buffer;
  {
    std::lock_guard<std::mutex> lock(recycler_->mu);
    if (!recycler_->free_list.empty()) {
      buffer = std::move(recycler_->free_list.back());
      recycler_->free_list.pop_back();
    }
  }
  if (buffer == nullptr) buffer = std::make_unique<ShortestPathTree>();
  // The deleter shares ownership of the recycler (not the oracle), so
  // snapshots handed to callers outlive the oracle safely; released
  // buffers keep their vector capacity for the next snapshot.
  const std::shared_ptr<TreeRecycler> recycler = recycler_;
  return std::shared_ptr<ShortestPathTree>(
      buffer.release(), [recycler](ShortestPathTree* t) {
        std::unique_ptr<ShortestPathTree> owned(t);
        std::lock_guard<std::mutex> lock(recycler->mu);
        if (recycler->free_list.size() < 32) {
          recycler->free_list.push_back(std::move(owned));
        }
      });
}

void RoutingOracle::attach_telemetry(obs::Telemetry* telemetry) {
  std::lock_guard<std::mutex> lock(telemetry_mu_);
  if (telemetry == nullptr) {
    c_lookups_ = c_hit_ = c_miss_ = c_incremental_ = c_fallback_ =
        c_invalidations_ = nullptr;
    g_snapshot_count_ = g_snapshot_bytes_ = nullptr;
    return;
  }
  obs::MetricsRegistry& m = telemetry->metrics;
  c_lookups_ = &m.counter("smrp.routing.lookups");
  c_hit_ = &m.counter("smrp.routing.cache_hit");
  c_miss_ = &m.counter("smrp.routing.cache_miss");
  c_incremental_ = &m.counter("smrp.routing.cache_incremental");
  c_fallback_ = &m.counter("smrp.routing.cache_fallback");
  c_invalidations_ = &m.counter("smrp.routing.invalidations");
  g_snapshot_count_ = &m.gauge("smrp.routing.snapshot_count");
  g_snapshot_bytes_ = &m.gauge("smrp.routing.snapshot_bytes");
  g_snapshot_count_->set(
      static_cast<double>(snapshot_count_.load(std::memory_order_relaxed)));
  g_snapshot_bytes_->set(
      static_cast<double>(snapshot_bytes_.load(std::memory_order_relaxed)));
}

RoutingOracle::Stats RoutingOracle::stats() const {
  Stats s;
  s.lookups = n_lookups_.load(std::memory_order_relaxed);
  s.cache_hits = n_hits_.load(std::memory_order_relaxed);
  s.cache_misses = n_misses_.load(std::memory_order_relaxed);
  s.incremental_repairs = n_incremental_.load(std::memory_order_relaxed);
  s.full_runs = n_full_.load(std::memory_order_relaxed);
  s.invalidations = n_invalidations_.load(std::memory_order_relaxed);
  return s;
}

void RoutingOracle::invalidate() {
  flush_gen_.fetch_add(1, std::memory_order_acq_rel);
  bump(n_invalidations_, c_invalidations_);
}

std::uint64_t RoutingOracle::cache_key(NodeId source,
                                       std::uint64_t signature) noexcept {
  // splitmix64 finalizer over (source, signature); collisions are caught
  // by entry_matches / entry_is_base, never trusted.
  std::uint64_t x = signature ^
                    (static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                         source)) *
                     0x9e3779b97f4a7c15ULL);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::pair<std::uint64_t, std::uint64_t> RoutingOracle::current_epoch() {
  const std::uint64_t version = g_->topology_version();
  std::uint64_t seen = seen_version_.load(std::memory_order_acquire);
  // Exactly one thread wins the transition and accounts the
  // invalidation; stripes drop their stale entries independently, on
  // their next probe, by comparing against `version` directly.
  while (seen != version) {
    if (seen_version_.compare_exchange_weak(seen, version,
                                            std::memory_order_acq_rel)) {
      bump(n_invalidations_, c_invalidations_);
      break;
    }
  }
  return {version, flush_gen_.load(std::memory_order_acquire)};
}

void RoutingOracle::refresh_stripe_locked(Stripe& stripe,
                                          std::uint64_t version,
                                          std::uint64_t flush) {
  if (stripe.seen_version == version && stripe.seen_flush == flush) return;
  std::int64_t dropped = 0;
  std::int64_t bytes = 0;
  for (const auto& [key, entry] : stripe.entries) {
    if (entry.tree != nullptr) {
      ++dropped;
      bytes += static_cast<std::int64_t>(tree_bytes(*entry.tree));
    }
  }
  stripe.entries.clear();
  stripe.seen_version = version;
  stripe.seen_flush = flush;
  if (dropped != 0) snapshots_changed(-dropped, -bytes);
}

bool RoutingOracle::entry_matches(const Entry& entry,
                                  const ExclusionSet& excluded) {
  return static_cast<int>(entry.banned_nodes.size()) ==
             excluded.banned_node_count() &&
         static_cast<int>(entry.banned_links.size()) ==
             excluded.banned_link_count() &&
         nodes_subset(entry.banned_nodes, excluded) &&
         links_subset(entry.banned_links, excluded);
}

bool RoutingOracle::entry_is_base(const Entry& entry,
                                  const ExclusionSet& excluded,
                                  NodeId extra_node, LinkId extra_link) {
  // Subset + exact sizes + "the extra ban is the one element missing"
  // pins the base set to exactly (request minus the extra ban).
  const int want_nodes =
      excluded.banned_node_count() - (extra_node != kNoNode ? 1 : 0);
  const int want_links =
      excluded.banned_link_count() - (extra_link != kNoLink ? 1 : 0);
  if (static_cast<int>(entry.banned_nodes.size()) != want_nodes ||
      static_cast<int>(entry.banned_links.size()) != want_links) {
    return false;
  }
  if (extra_node != kNoNode &&
      std::binary_search(entry.banned_nodes.begin(), entry.banned_nodes.end(),
                         extra_node)) {
    return false;
  }
  if (extra_link != kNoLink &&
      std::binary_search(entry.banned_links.begin(), entry.banned_links.end(),
                         extra_link)) {
    return false;
  }
  return nodes_subset(entry.banned_nodes, excluded) &&
         links_subset(entry.banned_links, excluded);
}

RoutingOracle::TreePtr RoutingOracle::find_base(
    NodeId source, const ExclusionSet& excluded, std::uint64_t version,
    std::uint64_t flush, NodeId& extra_node, LinkId& extra_link) {
  // One-extra-ban probe: for each banned component, look for a cached
  // (ready) tree computed under this exclusion minus that one ban. Probe
  // order (nodes ascending, then links ascending) is fixed for
  // determinism, though any base yields the identical repaired tree.
  // Takes one stripe lock at a time; in-flight bases are skipped rather
  // than waited on (the full run is cheaper than a convoy).
  for (const NodeId x : excluded.banned_nodes()) {
    const std::uint64_t key =
        cache_key(source, excluded.signature() ^ ExclusionSet::mix_node(x));
    Stripe& stripe = stripe_of(key);
    std::lock_guard<std::mutex> lock(stripe.mu);
    refresh_stripe_locked(stripe, version, flush);
    const auto it = stripe.entries.find(key);
    if (it == stripe.entries.end() || it->second.source != source ||
        it->second.tree == nullptr) {
      continue;
    }
    if (!entry_is_base(it->second, excluded, x, kNoLink)) continue;
    it->second.last_used = ++stripe.lru_tick;
    extra_node = x;
    extra_link = kNoLink;
    return it->second.tree;
  }
  for (const LinkId l : excluded.banned_links()) {
    const std::uint64_t key =
        cache_key(source, excluded.signature() ^ ExclusionSet::mix_link(l));
    Stripe& stripe = stripe_of(key);
    std::lock_guard<std::mutex> lock(stripe.mu);
    refresh_stripe_locked(stripe, version, flush);
    const auto it = stripe.entries.find(key);
    if (it == stripe.entries.end() || it->second.source != source ||
        it->second.tree == nullptr) {
      continue;
    }
    if (!entry_is_base(it->second, excluded, kNoNode, l)) continue;
    it->second.last_used = ++stripe.lru_tick;
    extra_node = kNoNode;
    extra_link = l;
    return it->second.tree;
  }
  return nullptr;
}

RoutingOracle::TreePtr RoutingOracle::repair(const TreePtr& base,
                                             const ExclusionSet& excluded,
                                             NodeId extra_node,
                                             LinkId extra_link,
                                             ComputeScratch& cs) {
  const ShortestPathTree& b = *base;
  const auto n = static_cast<std::size_t>(g_->node_count());

  // Root of the invalidated region: the node whose parent edge the ban
  // severed (link failure) or the banned node itself. A ban that does not
  // touch the cached tree changes nothing — the base snapshot is shared
  // (by ownership, so it survives eviction of the base entry).
  NodeId root = kNoNode;
  if (extra_node != kNoNode) {
    if (!b.reachable(extra_node)) return base;
    root = extra_node;
  } else {
    const Link& l = g_->link(extra_link);
    if (b.parent_link[static_cast<std::size_t>(l.a)] == extra_link) {
      root = l.a;
    } else if (b.parent_link[static_cast<std::size_t>(l.b)] == extra_link) {
      root = l.b;
    } else {
      return base;
    }
  }

  // Affected set = the parent-pointer subtree under `root`. Every other
  // node provably keeps identical dist/parent/hops: its base path avoids
  // the banned component, a ban can only lengthen distances, and the
  // tie-break winner set only shrinks (so the lex-min winner survives).
  // Memoised parent-chain walk: 0 unknown, 1 affected, 2 unaffected.
  cs.affected_flag.assign(n, 0);
  cs.affected_flag[static_cast<std::size_t>(root)] = 1;
  cs.affected.clear();
  cs.affected.push_back(root);
  for (NodeId v = 0; v < static_cast<NodeId>(n); ++v) {
    if (cs.affected_flag[static_cast<std::size_t>(v)] != 0) continue;
    cs.walk.clear();
    NodeId cur = v;
    char status = 2;
    while (true) {
      const char f = cs.affected_flag[static_cast<std::size_t>(cur)];
      if (f != 0) {
        status = f;
        break;
      }
      const NodeId p = b.parent[static_cast<std::size_t>(cur)];
      if (p == kNoNode) break;  // the source, or unreachable: unaffected
      cs.walk.push_back(cur);
      cur = p;
    }
    for (const NodeId x : cs.walk) {
      cs.affected_flag[static_cast<std::size_t>(x)] = status;
      if (status == 1) cs.affected.push_back(x);
    }
    if (cs.affected_flag[static_cast<std::size_t>(v)] == 0) {
      cs.affected_flag[static_cast<std::size_t>(v)] = status;  // v had no parent
    }
  }
  if (static_cast<double>(cs.affected.size()) >
      config_.incremental_max_fraction * static_cast<double>(n)) {
    return nullptr;  // region too large: delta costs more than it saves
  }

  std::shared_ptr<ShortestPathTree> fresh = acquire_tree();
  *fresh = b;  // vector assignment reuses the recycled buffer's capacity
  ShortestPathTree& t = *fresh;
  for (const NodeId v : cs.affected) {
    const auto i = static_cast<std::size_t>(v);
    t.dist[i] = kInfinity;
    t.parent[i] = kNoNode;
    t.parent_link[i] = kNoLink;
    t.hops[i] = -1;
  }

  cs.settled.assign(n, 0);
  cs.heap.clear();
  const auto heap_greater = std::greater<std::pair<double, NodeId>>{};
  // The exact relaxation rule of DijkstraWorkspace::run_impl — candidate
  // ordering (dist, hops, predecessor id) — so the repaired region
  // converges to the identical fixpoint a fresh run would produce.
  const auto relax = [&](NodeId from, LinkId link, NodeId to) {
    const auto fu = static_cast<std::size_t>(from);
    const auto tv = static_cast<std::size_t>(to);
    const double candidate = t.dist[fu] + g_->link(link).weight;
    const int candidate_hops = t.hops[fu] + 1;
    const bool better =
        candidate < t.dist[tv] ||
        (candidate == t.dist[tv] &&
         (candidate_hops < t.hops[tv] ||
          (candidate_hops == t.hops[tv] && t.parent[tv] != kNoNode &&
           from < t.parent[tv])));
    if (better) {
      t.dist[tv] = candidate;
      t.parent[tv] = from;
      t.parent_link[tv] = link;
      t.hops[tv] = candidate_hops;
      cs.heap.emplace_back(candidate, to);
      std::push_heap(cs.heap.begin(), cs.heap.end(), heap_greater);
    }
  };

  // Boundary seeding: every unaffected reachable neighbor offers its
  // final distance into the region. Offers a full run would not have made
  // (from nodes settling after the target) carry strictly larger
  // distances and lose the comparison, so the extra offers are harmless.
  for (const NodeId v : cs.affected) {
    if (excluded.node_banned(v)) continue;  // the banned node stays cut off
    for (const Adjacency& adj : g_->neighbors(v)) {
      const auto u = static_cast<std::size_t>(adj.neighbor);
      if (cs.affected_flag[u] == 1) continue;
      if (excluded.link_banned(adj.link) ||
          excluded.node_banned(adj.neighbor)) {
        continue;
      }
      if (t.dist[u] == kInfinity) continue;
      relax(adj.neighbor, adj.link, v);
    }
  }

  // Dijkstra restricted to the affected region.
  while (!cs.heap.empty()) {
    const std::pair<double, NodeId> top = cs.heap.front();
    std::pop_heap(cs.heap.begin(), cs.heap.end(), heap_greater);
    cs.heap.pop_back();
    const auto u = static_cast<std::size_t>(top.second);
    if (cs.settled[u] != 0) continue;
    cs.settled[u] = 1;
    for (const Adjacency& adj : g_->neighbors(top.second)) {
      const auto v = static_cast<std::size_t>(adj.neighbor);
      if (cs.affected_flag[v] != 1 || cs.settled[v] != 0) continue;
      if (excluded.link_banned(adj.link) ||
          excluded.node_banned(adj.neighbor)) {
        continue;
      }
      relax(top.second, adj.link, adj.neighbor);
    }
  }
  return fresh;
}

RoutingOracle::TreePtr RoutingOracle::full_run(NodeId source,
                                               const ExclusionSet& excluded,
                                               ComputeScratch& cs) {
  std::shared_ptr<ShortestPathTree> fresh = acquire_tree();
  cs.ws.run_into(*g_, source, excluded, *fresh);
  return fresh;
}

std::uint64_t RoutingOracle::tree_bytes(const ShortestPathTree& t)
    const noexcept {
  // Approximate resident footprint of one snapshot: the four per-node
  // arrays (dist + parent + parent_link + hops).
  return static_cast<std::uint64_t>(t.dist.size()) *
         (sizeof(double) + sizeof(NodeId) + sizeof(LinkId) +
          sizeof(std::int32_t));
}

void RoutingOracle::snapshots_changed(std::int64_t count_delta,
                                      std::int64_t bytes_delta) {
  const std::uint64_t count =
      snapshot_count_.fetch_add(static_cast<std::uint64_t>(count_delta),
                                std::memory_order_relaxed) +
      static_cast<std::uint64_t>(count_delta);
  const std::uint64_t bytes =
      snapshot_bytes_.fetch_add(static_cast<std::uint64_t>(bytes_delta),
                                std::memory_order_relaxed) +
      static_cast<std::uint64_t>(bytes_delta);
  if (g_snapshot_count_ != nullptr || g_snapshot_bytes_ != nullptr) {
    std::lock_guard<std::mutex> lock(telemetry_mu_);
    if (g_snapshot_count_ != nullptr) {
      g_snapshot_count_->set(static_cast<double>(count));
    }
    if (g_snapshot_bytes_ != nullptr) {
      g_snapshot_bytes_->set(static_cast<double>(bytes));
    }
  }
}

void DetourSearch::compute(RoutingOracle& oracle, NodeId origin,
                           const std::vector<char>& targets,
                           const ExclusionSet& excluded) {
  const RoutingOracle::WorkspaceLease lease = oracle.workspace();
  lease->run_absorbing_into(oracle.graph(), origin, targets, excluded,
                            search_);
  best_ = kNoNode;
  const NodeId n = oracle.graph().node_count();
  for (NodeId x = 0; x < n; ++x) {
    if (targets[static_cast<std::size_t>(x)] != 0) consider(x);
  }
}

void DetourSearch::add_targets(const std::vector<NodeId>& added) {
  for (const NodeId x : added) consider(x);
}

void DetourSearch::consider(NodeId target) noexcept {
  if (!search_.reachable(target)) return;
  const double d = search_.dist[static_cast<std::size_t>(target)];
  const bool better =
      best_ == kNoNode || d < search_.dist[static_cast<std::size_t>(best_)] ||
      (d == search_.dist[static_cast<std::size_t>(best_)] && target < best_);
  if (better) best_ = target;
}

}  // namespace smrp::net
