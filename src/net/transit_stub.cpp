#include "net/transit_stub.hpp"

#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>

namespace smrp::net {

namespace {

/// Copy `sub` into `dest` starting at node id `base`, translating positions
/// by (dx, dy). Returns the positions that were appended.
std::vector<Point> splice_subgraph(Graph& dest, NodeId base, const Graph& sub,
                                   double dx, double dy) {
  for (const Link& l : sub.links()) {
    dest.add_link(base + l.a, base + l.b, l.weight);
  }
  std::vector<Point> moved;
  moved.reserve(static_cast<std::size_t>(sub.node_count()));
  for (const Point& p : sub.positions()) {
    moved.push_back(Point{p.x + dx, p.y + dy});
  }
  return moved;
}

}  // namespace

TransitStubTopology generate_transit_stub(const TransitStubParams& p,
                                          Rng& rng) {
  if (p.transit_nodes < 2) throw std::invalid_argument("need >= 2 transit nodes");
  if (p.stubs_per_transit < 0 || p.stub_size < 1) {
    throw std::invalid_argument("bad stub shape");
  }
  // Size check FIRST, before any generation work: transit × stubs ×
  // stub_size are each int, and a profile past the NodeId range must
  // throw up front — not wrap, and not after minutes of core generation.
  const std::int64_t stub_count_wide =
      static_cast<std::int64_t>(p.transit_nodes) * p.stubs_per_transit;
  const std::int64_t total_nodes_wide =
      p.transit_nodes + stub_count_wide * p.stub_size;
  if (total_nodes_wide > std::numeric_limits<NodeId>::max()) {
    throw std::overflow_error(
        "transit-stub profile exceeds the NodeId range");
  }

  TransitStubTopology topo;

  // 1. Transit core.
  WaxmanParams core_params;
  core_params.node_count = p.transit_nodes;
  core_params.alpha = p.transit_alpha;
  core_params.beta = p.beta;
  core_params.plane_size = p.plane_size;
  core_params.weight_mode = p.weight_mode;
  Graph core = waxman_graph(core_params, rng);

  const int stub_count = static_cast<int>(stub_count_wide);
  const int total_nodes = static_cast<int>(total_nodes_wide);
  topo.graph = Graph(total_nodes);
  std::vector<Point> positions;
  positions.reserve(static_cast<std::size_t>(total_nodes));

  for (const Point& point : core.positions()) positions.push_back(point);
  for (const Link& l : core.links()) {
    topo.graph.add_link(l.a, l.b, l.weight);
  }

  topo.domain_of_node.assign(static_cast<std::size_t>(total_nodes),
                             kTransitDomain);
  topo.gateway_of_domain.push_back(kNoNode);  // entry for the transit domain
  topo.nodes_of_domain.emplace_back();
  for (NodeId n = 0; n < p.transit_nodes; ++n) {
    topo.nodes_of_domain[0].push_back(n);
  }

  // 2. Stub domains: a local Waxman patch near the gateway, plus one access
  //    link from the gateway into the patch.
  NodeId next_node = p.transit_nodes;
  for (NodeId gateway = 0; gateway < p.transit_nodes; ++gateway) {
    for (int s = 0; s < p.stubs_per_transit; ++s) {
      const DomainId domain = static_cast<DomainId>(topo.nodes_of_domain.size());

      Graph patch;
      if (p.stub_size == 1) {
        patch = Graph(1);
        patch.set_positions({Point{p.stub_patch_size / 2, p.stub_patch_size / 2}});
      } else {
        WaxmanParams stub_params;
        stub_params.node_count = p.stub_size;
        stub_params.alpha = p.stub_alpha;
        stub_params.beta = p.beta;
        stub_params.plane_size = p.stub_patch_size;
        stub_params.weight_mode = p.weight_mode;
        patch = waxman_graph(stub_params, rng);
      }

      const Point& gw_pos = positions[static_cast<std::size_t>(gateway)];
      // Offset the patch to sit beside the gateway.
      const double angle = rng.uniform(0.0, 2.0 * std::acos(-1.0));
      const double radius = p.stub_patch_size * 1.5;
      const double dx = gw_pos.x + radius * std::cos(angle);
      const double dy = gw_pos.y + radius * std::sin(angle);

      const NodeId base = next_node;
      std::vector<Point> patch_positions =
          splice_subgraph(topo.graph, base, patch, dx, dy);
      positions.insert(positions.end(), patch_positions.begin(),
                       patch_positions.end());

      topo.nodes_of_domain.emplace_back();
      for (int i = 0; i < p.stub_size; ++i) {
        const NodeId n = base + i;
        topo.domain_of_node[static_cast<std::size_t>(n)] = domain;
        topo.nodes_of_domain.back().push_back(n);
      }
      // Access link gateway -> first patch node.
      const double access_dist =
          euclidean(gw_pos, positions[static_cast<std::size_t>(base)]);
      const double weight = p.weight_mode == LinkWeightMode::kUnit
                                ? 1.0
                                : std::max(access_dist, 1e-6);
      topo.graph.add_link(gateway, base, weight);
      topo.gateway_of_domain.push_back(gateway);

      next_node += p.stub_size;
    }
  }

  topo.graph.set_positions(std::move(positions));
  if (!topo.graph.connected()) {
    throw std::logic_error("transit-stub construction produced a disconnected graph");
  }
  return topo;
}

}  // namespace smrp::net
