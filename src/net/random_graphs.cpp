#include "net/random_graphs.hpp"

#include <stdexcept>
#include <vector>

namespace smrp::net {

namespace {

double draw_weight(double lo, double hi, Rng& rng) {
  if (hi <= lo) return lo;
  return rng.uniform(lo, hi);
}

Graph sample_gnp(const ErdosRenyiParams& p, Rng& rng) {
  Graph g(p.node_count);
  for (NodeId u = 0; u < p.node_count; ++u) {
    for (NodeId v = u + 1; v < p.node_count; ++v) {
      if (rng.uniform() < p.edge_probability) {
        g.add_link(u, v, draw_weight(p.min_weight, p.max_weight, rng));
      }
    }
  }
  return g;
}

/// Bridge components with random links until connected.
int patch_random(Graph& g, double lo, double hi, Rng& rng) {
  int added = 0;
  for (;;) {
    // Component of node 0.
    std::vector<char> in_main(static_cast<std::size_t>(g.node_count()), 0);
    std::vector<NodeId> stack{0};
    in_main[0] = 1;
    while (!stack.empty()) {
      const NodeId n = stack.back();
      stack.pop_back();
      for (const Adjacency& adj : g.neighbors(n)) {
        if (!in_main[static_cast<std::size_t>(adj.neighbor)]) {
          in_main[static_cast<std::size_t>(adj.neighbor)] = 1;
          stack.push_back(adj.neighbor);
        }
      }
    }
    std::vector<NodeId> inside;
    std::vector<NodeId> outside;
    for (NodeId n = 0; n < g.node_count(); ++n) {
      (in_main[static_cast<std::size_t>(n)] ? inside : outside).push_back(n);
    }
    if (outside.empty()) return added;
    const NodeId u = inside[static_cast<std::size_t>(rng.below(inside.size()))];
    const NodeId v =
        outside[static_cast<std::size_t>(rng.below(outside.size()))];
    g.add_link(u, v, draw_weight(lo, hi, rng));
    ++added;
  }
}

}  // namespace

ErdosRenyiResult generate_erdos_renyi(const ErdosRenyiParams& p, Rng& rng) {
  if (p.node_count < 2) throw std::invalid_argument("need >= 2 nodes");
  if (p.edge_probability <= 0.0 || p.edge_probability > 1.0) {
    throw std::invalid_argument("edge probability must be in (0, 1]");
  }
  ErdosRenyiResult result;
  for (int attempt = 0;; ++attempt) {
    result.graph = sample_gnp(p, rng);
    if (result.graph.connected()) return result;
    if (attempt >= p.max_resample_attempts) break;
    ++result.resamples;
  }
  result.patched_links =
      patch_random(result.graph, p.min_weight, p.max_weight, rng);
  return result;
}

Graph erdos_renyi_graph(const ErdosRenyiParams& p, Rng& rng) {
  return generate_erdos_renyi(p, rng).graph;
}

Graph barabasi_albert_graph(const BarabasiAlbertParams& p, Rng& rng) {
  if (p.edges_per_node < 1) throw std::invalid_argument("need m >= 1");
  const int seed_size = p.edges_per_node + 1;
  if (p.node_count < seed_size) {
    throw std::invalid_argument("node count below the seed clique size");
  }
  Graph g(p.node_count);
  // Attachment pool: one entry per link endpoint, so sampling uniformly
  // from it is sampling proportionally to degree.
  std::vector<NodeId> endpoint_pool;

  // Seed: a small clique so every early node has degree > 0.
  for (NodeId u = 0; u < seed_size; ++u) {
    for (NodeId v = u + 1; v < seed_size; ++v) {
      g.add_link(u, v, draw_weight(p.min_weight, p.max_weight, rng));
      endpoint_pool.push_back(u);
      endpoint_pool.push_back(v);
    }
  }

  std::vector<NodeId> attached_to;
  for (NodeId newcomer = seed_size; newcomer < p.node_count; ++newcomer) {
    attached_to.clear();
    int guard = 0;
    while (static_cast<int>(attached_to.size()) < p.edges_per_node &&
           guard++ < 1000) {
      const NodeId target = endpoint_pool[static_cast<std::size_t>(
          rng.below(endpoint_pool.size()))];
      if (target == newcomer || g.link_between(newcomer, target)) continue;
      g.add_link(newcomer, target,
                 draw_weight(p.min_weight, p.max_weight, rng));
      attached_to.push_back(target);
    }
    // Register the new endpoints only after all of this newcomer's
    // attachments, so it cannot preferentially attach to itself. Tracked
    // locally: reading g.neighbors() mid-construction would force a CSR
    // rebuild per newcomer.
    for (const NodeId target : attached_to) {
      endpoint_pool.push_back(newcomer);
      endpoint_pool.push_back(target);
    }
  }
  return g;
}

}  // namespace smrp::net
