#include "net/graph.hpp"

#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace smrp::net {

double euclidean(const Point& p, const Point& q) noexcept {
  const double dx = p.x - q.x;
  const double dy = p.y - q.y;
  return std::sqrt(dx * dx + dy * dy);
}

Graph::Graph(int node_count) {
  if (node_count < 0) throw std::invalid_argument("negative node count");
  node_count_ = node_count;
  degree_.resize(static_cast<std::size_t>(node_count), 0);
}

void Graph::copy_from(const Graph& other) {
  // Copy under the source's CSR lock so a concurrent lazy rebuild in
  // another reader cannot tear the arrays mid-copy.
  std::lock_guard<std::mutex> lock(other.csr_mutex_);
  links_ = other.links_;
  node_count_ = other.node_count_;
  degree_ = other.degree_;
  link_index_ = other.link_index_;
  positions_ = other.positions_;
  topology_version_ = other.topology_version_;
  dup_check_ops_ = other.dup_check_ops_;
  offsets_ = other.offsets_;
  packed_ = other.packed_;
  csr_valid_.store(other.csr_valid_.load(std::memory_order_acquire),
                   std::memory_order_release);
}

void Graph::move_from(Graph&& other) noexcept {
  links_ = std::move(other.links_);
  node_count_ = other.node_count_;
  degree_ = std::move(other.degree_);
  link_index_ = std::move(other.link_index_);
  positions_ = std::move(other.positions_);
  topology_version_ = other.topology_version_;
  dup_check_ops_ = other.dup_check_ops_;
  offsets_ = std::move(other.offsets_);
  packed_ = std::move(other.packed_);
  csr_valid_.store(other.csr_valid_.load(std::memory_order_acquire),
                   std::memory_order_release);
}

Graph::Graph(const Graph& other) { copy_from(other); }

Graph::Graph(Graph&& other) noexcept { move_from(std::move(other)); }

Graph& Graph::operator=(const Graph& other) {
  if (this != &other) copy_from(other);
  return *this;
}

Graph& Graph::operator=(Graph&& other) noexcept {
  if (this != &other) move_from(std::move(other));
  return *this;
}

Graph Graph::from_links(int node_count, std::span<const Link> links) {
  Graph g(node_count);
  g.links_.reserve(links.size());
  g.link_index_.reserve(links.size());
  for (const Link& l : links) {
    if (!g.valid_node(l.a) || !g.valid_node(l.b)) {
      throw std::out_of_range("link endpoint out of range");
    }
    if (l.a == l.b) throw std::invalid_argument("self-loop rejected");
    if (!(l.weight > 0.0)) {
      throw std::invalid_argument("weight must be positive");
    }
    const LinkId id = g.link_count();
    ++g.dup_check_ops_;
    if (!g.link_index_.emplace(endpoint_key(l.a, l.b), id).second) {
      throw std::invalid_argument("parallel link rejected");
    }
    g.links_.push_back(l);
    ++g.degree_[static_cast<std::size_t>(l.a)];
    ++g.degree_[static_cast<std::size_t>(l.b)];
  }
  // Same observable state as the incremental path: Graph(n) starts at
  // version 0 and every add_link bumps once.
  g.topology_version_ = links.size();
  g.rebuild_csr();
  return g;
}

NodeId Graph::add_nodes(int count) {
  if (count <= 0) throw std::invalid_argument("node count must be positive");
  const NodeId first = node_count();
  // NodeId is 32-bit; a runaway generator must fail loudly, not wrap.
  if (static_cast<std::int64_t>(node_count_) + count >
      std::numeric_limits<NodeId>::max()) {
    throw std::overflow_error("node count exceeds NodeId range");
  }
  node_count_ += count;
  degree_.resize(static_cast<std::size_t>(node_count_), 0);
  ++topology_version_;
  mark_csr_stale();
  return first;
}

LinkId Graph::add_link(NodeId a, NodeId b, double weight) {
  if (!valid_node(a) || !valid_node(b)) {
    throw std::out_of_range("link endpoint out of range");
  }
  if (a == b) throw std::invalid_argument("self-loop rejected");
  if (!(weight > 0.0)) throw std::invalid_argument("weight must be positive");

  const LinkId id = link_count();
  ++dup_check_ops_;
  if (!link_index_.emplace(endpoint_key(a, b), id).second) {
    throw std::invalid_argument("parallel link rejected");
  }
  links_.push_back(Link{a, b, weight});
  ++degree_[static_cast<std::size_t>(a)];
  ++degree_[static_cast<std::size_t>(b)];
  ++topology_version_;
  mark_csr_stale();
  return id;
}

void Graph::set_link_weight(LinkId id, double weight) {
  if (id < 0 || id >= link_count()) {
    throw std::out_of_range("link id out of range");
  }
  if (!(weight > 0.0)) throw std::invalid_argument("weight must be positive");
  links_[static_cast<std::size_t>(id)].weight = weight;
  ++topology_version_;
  // Adjacency structure is unchanged: the CSR stays valid.
}

void Graph::rebuild_csr() const {
  std::lock_guard<std::mutex> lock(csr_mutex_);
  if (csr_valid_.load(std::memory_order_relaxed)) return;

  const auto nodes = static_cast<std::size_t>(node_count_);
  offsets_.assign(nodes + 1, 0);
  for (std::size_t n = 0; n < nodes; ++n) {
    offsets_[n + 1] =
        offsets_[n] + static_cast<std::size_t>(degree_[n]);
  }
  packed_.resize(2 * links_.size());

  // Filling in link-id order reproduces the legacy per-node push_back
  // order exactly — the differential suite depends on it.
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (LinkId id = 0; id < link_count(); ++id) {
    const Link& l = links_[static_cast<std::size_t>(id)];
    packed_[cursor[static_cast<std::size_t>(l.a)]++] = Adjacency{l.b, id};
    packed_[cursor[static_cast<std::size_t>(l.b)]++] = Adjacency{l.a, id};
  }
  csr_valid_.store(true, std::memory_order_release);
}

std::optional<LinkId> Graph::link_between(NodeId u, NodeId v) const {
  if (!valid_node(u) || !valid_node(v) || u == v) return std::nullopt;
  const auto it = link_index_.find(endpoint_key(u, v));
  if (it == link_index_.end()) return std::nullopt;
  return it->second;
}

double Graph::average_degree() const noexcept {
  if (node_count() == 0) return 0.0;
  return 2.0 * link_count() / node_count();
}

int Graph::reachable_count_from(NodeId start, LinkId banned_link) const {
  if (!valid_node(start)) {
    throw std::out_of_range("reachable_count_from: invalid start node");
  }
  if (banned_link != kNoLink &&
      (banned_link < 0 || banned_link >= link_count())) {
    throw std::invalid_argument("reachable_count_from: bad banned link id");
  }
  std::vector<char> seen(static_cast<std::size_t>(node_count()), 0);
  std::vector<NodeId> stack{start};
  seen[static_cast<std::size_t>(start)] = 1;
  int reached = 1;
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    for (const Adjacency& adj : neighbors(n)) {
      if (adj.link == banned_link) continue;
      if (!seen[static_cast<std::size_t>(adj.neighbor)]) {
        seen[static_cast<std::size_t>(adj.neighbor)] = 1;
        ++reached;
        stack.push_back(adj.neighbor);
      }
    }
  }
  return reached;
}

int Graph::component_count(LinkId banned_link) const {
  if (banned_link != kNoLink &&
      (banned_link < 0 || banned_link >= link_count())) {
    throw std::invalid_argument("component_count: bad banned link id");
  }
  const auto nodes = static_cast<std::size_t>(node_count());
  std::vector<char> seen(nodes, 0);
  std::vector<NodeId> stack;
  int components = 0;
  for (NodeId root = 0; root < node_count(); ++root) {
    if (seen[static_cast<std::size_t>(root)]) continue;
    ++components;
    seen[static_cast<std::size_t>(root)] = 1;
    stack.push_back(root);
    while (!stack.empty()) {
      const NodeId n = stack.back();
      stack.pop_back();
      for (const Adjacency& adj : neighbors(n)) {
        if (adj.link == banned_link) continue;
        if (!seen[static_cast<std::size_t>(adj.neighbor)]) {
          seen[static_cast<std::size_t>(adj.neighbor)] = 1;
          stack.push_back(adj.neighbor);
        }
      }
    }
  }
  return components;
}

bool Graph::connected() const {
  return node_count() == 0 || component_count(kNoLink) == 1;
}

bool Graph::connected_without(LinkId failed_link) const {
  if (node_count() == 0) return true;
  if (failed_link == kNoLink) return connected();
  return component_count(failed_link) == 1;
}

void Graph::set_positions(std::vector<Point> positions) {
  if (static_cast<int>(positions.size()) != node_count()) {
    throw std::invalid_argument("position count != node count");
  }
  positions_ = std::move(positions);
}

std::string Graph::to_string() const {
  std::ostringstream out;
  out << "Graph{nodes=" << node_count() << ", links=" << link_count()
      << ", avg_degree=" << average_degree() << "}\n";
  for (LinkId id = 0; id < link_count(); ++id) {
    const Link& l = link(id);
    out << "  L" << id << ": " << l.a << " -- " << l.b << " (w=" << l.weight
        << ")\n";
  }
  return out.str();
}

}  // namespace smrp::net
