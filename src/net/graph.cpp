#include "net/graph.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace smrp::net {

double euclidean(const Point& p, const Point& q) noexcept {
  const double dx = p.x - q.x;
  const double dy = p.y - q.y;
  return std::sqrt(dx * dx + dy * dy);
}

Graph::Graph(int node_count) {
  if (node_count < 0) throw std::invalid_argument("negative node count");
  adjacency_.resize(static_cast<std::size_t>(node_count));
}

NodeId Graph::add_nodes(int count) {
  if (count <= 0) throw std::invalid_argument("node count must be positive");
  const NodeId first = node_count();
  adjacency_.resize(adjacency_.size() + static_cast<std::size_t>(count));
  ++topology_version_;
  return first;
}

LinkId Graph::add_link(NodeId a, NodeId b, double weight) {
  if (!valid_node(a) || !valid_node(b)) {
    throw std::out_of_range("link endpoint out of range");
  }
  if (a == b) throw std::invalid_argument("self-loop rejected");
  if (!(weight > 0.0)) throw std::invalid_argument("weight must be positive");
  if (link_between(a, b)) throw std::invalid_argument("parallel link rejected");

  const LinkId id = link_count();
  links_.push_back(Link{a, b, weight});
  adjacency_[static_cast<std::size_t>(a)].push_back(Adjacency{b, id});
  adjacency_[static_cast<std::size_t>(b)].push_back(Adjacency{a, id});
  ++topology_version_;
  return id;
}

void Graph::set_link_weight(LinkId id, double weight) {
  if (id < 0 || id >= link_count()) {
    throw std::out_of_range("link id out of range");
  }
  if (!(weight > 0.0)) throw std::invalid_argument("weight must be positive");
  links_[static_cast<std::size_t>(id)].weight = weight;
  ++topology_version_;
}

std::optional<LinkId> Graph::link_between(NodeId u, NodeId v) const {
  if (!valid_node(u) || !valid_node(v)) return std::nullopt;
  // Scan the smaller adjacency list.
  const NodeId base = degree(u) <= degree(v) ? u : v;
  const NodeId target = base == u ? v : u;
  for (const Adjacency& adj : neighbors(base)) {
    if (adj.neighbor == target) return adj.link;
  }
  return std::nullopt;
}

double Graph::average_degree() const noexcept {
  if (node_count() == 0) return 0.0;
  return 2.0 * link_count() / node_count();
}

bool Graph::reachable_count_from(NodeId start, LinkId banned_link) const {
  if (node_count() == 0) return true;
  std::vector<char> seen(static_cast<std::size_t>(node_count()), 0);
  std::vector<NodeId> stack{start};
  seen[static_cast<std::size_t>(start)] = 1;
  int reached = 1;
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    for (const Adjacency& adj : neighbors(n)) {
      if (adj.link == banned_link) continue;
      if (!seen[static_cast<std::size_t>(adj.neighbor)]) {
        seen[static_cast<std::size_t>(adj.neighbor)] = 1;
        ++reached;
        stack.push_back(adj.neighbor);
      }
    }
  }
  return reached == node_count();
}

bool Graph::connected() const { return reachable_count_from(0, kNoLink); }

bool Graph::connected_without(LinkId failed_link) const {
  return reachable_count_from(0, failed_link);
}

void Graph::set_positions(std::vector<Point> positions) {
  if (static_cast<int>(positions.size()) != node_count()) {
    throw std::invalid_argument("position count != node count");
  }
  positions_ = std::move(positions);
}

std::string Graph::to_string() const {
  std::ostringstream out;
  out << "Graph{nodes=" << node_count() << ", links=" << link_count()
      << ", avg_degree=" << average_degree() << "}\n";
  for (LinkId id = 0; id < link_count(); ++id) {
    const Link& l = link(id);
    out << "  L" << id << ": " << l.a << " -- " << l.b << " (w=" << l.weight
        << ")\n";
  }
  return out.str();
}

}  // namespace smrp::net
