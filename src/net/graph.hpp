// Undirected weighted graph used as the network substrate.
//
// Nodes are dense integer ids [0, node_count). Links are undirected with a
// positive weight which this codebase interprets both as propagation delay
// (the paper's Figure 1 annotates links with delays) and as link cost for
// the tree-cost metric, matching the paper's SPF-on-delay evaluation.
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace smrp::net {

using NodeId = std::int32_t;
using LinkId = std::int32_t;

inline constexpr NodeId kNoNode = -1;
inline constexpr LinkId kNoLink = -1;

/// One undirected link between nodes `a` and `b`.
struct Link {
  NodeId a = kNoNode;
  NodeId b = kNoNode;
  double weight = 1.0;

  /// The endpoint opposite to `from`; `from` must be an endpoint.
  [[nodiscard]] NodeId other(NodeId from) const noexcept {
    assert(from == a || from == b);
    return from == a ? b : a;
  }
};

/// Adjacency entry: neighbor node plus the link leading to it.
struct Adjacency {
  NodeId neighbor = kNoNode;
  LinkId link = kNoLink;
};

/// Optional 2-D coordinates attached to nodes (used by Waxman generation
/// and by benches that report geometric properties).
struct Point {
  double x = 0.0;
  double y = 0.0;
};

[[nodiscard]] double euclidean(const Point& p, const Point& q) noexcept;

/// Undirected weighted multigraph-free graph. Self-loops and parallel links
/// are rejected; weights must be strictly positive.
class Graph {
 public:
  Graph() = default;
  explicit Graph(int node_count);

  /// Append `count` fresh isolated nodes; returns the id of the first one.
  NodeId add_nodes(int count);

  /// Insert an undirected link; returns its id. Precondition: a != b, both
  /// valid, weight > 0, and no link between a and b exists yet.
  LinkId add_link(NodeId a, NodeId b, double weight);

  /// Change an existing link's weight (must stay strictly positive).
  void set_link_weight(LinkId id, double weight);

  /// Monotone counter bumped by every topology mutation (node/link
  /// insertion, weight change). Consumers that cache anything derived
  /// from the topology — RoutingOracle above all — compare this against
  /// the version they computed under and flush when it moved.
  [[nodiscard]] std::uint64_t topology_version() const noexcept {
    return topology_version_;
  }

  [[nodiscard]] int node_count() const noexcept {
    return static_cast<int>(adjacency_.size());
  }
  [[nodiscard]] int link_count() const noexcept {
    return static_cast<int>(links_.size());
  }

  [[nodiscard]] const Link& link(LinkId id) const {
    assert(id >= 0 && id < link_count());
    return links_[static_cast<std::size_t>(id)];
  }

  [[nodiscard]] std::span<const Link> links() const noexcept { return links_; }

  [[nodiscard]] std::span<const Adjacency> neighbors(NodeId n) const {
    assert(valid_node(n));
    return adjacency_[static_cast<std::size_t>(n)];
  }

  [[nodiscard]] int degree(NodeId n) const {
    return static_cast<int>(neighbors(n).size());
  }

  /// Link between u and v if one exists.
  [[nodiscard]] std::optional<LinkId> link_between(NodeId u, NodeId v) const;

  [[nodiscard]] bool valid_node(NodeId n) const noexcept {
    return n >= 0 && n < node_count();
  }

  /// Mean node degree, 2·|E|/|V| (reported under the α axis in Fig. 9).
  [[nodiscard]] double average_degree() const noexcept;

  /// True iff every node can reach every other node.
  [[nodiscard]] bool connected() const;

  /// True iff the graph stays connected after removing `failed_link`.
  [[nodiscard]] bool connected_without(LinkId failed_link) const;

  /// Node coordinates; empty unless a generator attached them.
  [[nodiscard]] std::span<const Point> positions() const noexcept {
    return positions_;
  }
  void set_positions(std::vector<Point> positions);

  /// Human-readable dump, for examples and debugging.
  [[nodiscard]] std::string to_string() const;

 private:
  [[nodiscard]] bool reachable_count_from(NodeId start,
                                          LinkId banned_link) const;

  std::vector<Link> links_;
  std::vector<std::vector<Adjacency>> adjacency_;
  std::vector<Point> positions_;
  std::uint64_t topology_version_ = 0;
};

}  // namespace smrp::net
