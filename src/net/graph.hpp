// Undirected weighted graph used as the network substrate.
//
// Nodes are dense integer ids [0, node_count). Links are undirected with a
// positive weight which this codebase interprets both as propagation delay
// (the paper's Figure 1 annotates links with delays) and as link cost for
// the tree-cost metric, matching the paper's SPF-on-delay evaluation.
//
// Storage is CSR (compressed sparse row): one packed Adjacency array plus
// per-node offsets, rebuilt lazily after a mutation batch (DESIGN.md §14).
// Mutators only append to the link list and bump per-node degrees; the
// first neighbor read after a mutation performs one O(V + E) counting-sort
// rebuild, so bulk construction is linear instead of the old per-node
// vector-of-vectors' allocation storm. Neighbor order within a node is the
// link-insertion order — exactly what the legacy per-node push_back layout
// produced — so every CSR traversal is bit-identical to the old layout.
//
// Duplicate-link detection is a hash of the (min, max) endpoint pair, so
// add_link is O(1) amortized instead of a linear adjacency scan (the old
// behaviour made hub-heavy construction O(Σ deg²)).
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace smrp::net {

using NodeId = std::int32_t;
using LinkId = std::int32_t;

inline constexpr NodeId kNoNode = -1;
inline constexpr LinkId kNoLink = -1;

/// One undirected link between nodes `a` and `b`.
struct Link {
  NodeId a = kNoNode;
  NodeId b = kNoNode;
  double weight = 1.0;

  /// The endpoint opposite to `from`; `from` must be an endpoint.
  [[nodiscard]] NodeId other(NodeId from) const noexcept {
    assert(from == a || from == b);
    return from == a ? b : a;
  }
};

/// Adjacency entry: neighbor node plus the link leading to it.
struct Adjacency {
  NodeId neighbor = kNoNode;
  LinkId link = kNoLink;
};

/// Optional 2-D coordinates attached to nodes (used by Waxman generation
/// and by benches that report geometric properties).
struct Point {
  double x = 0.0;
  double y = 0.0;
};

[[nodiscard]] double euclidean(const Point& p, const Point& q) noexcept;

/// Undirected weighted multigraph-free graph. Self-loops and parallel links
/// are rejected; weights must be strictly positive.
///
/// Thread-safety: mutation is single-threaded; concurrent reads are safe,
/// including the first read after a mutation batch (the lazy CSR rebuild
/// is guarded by a mutex and published with release/acquire ordering).
/// Spans returned by neighbors() stay valid until the next mutation.
class Graph {
 public:
  Graph() = default;
  explicit Graph(int node_count);

  Graph(const Graph& other);
  Graph(Graph&& other) noexcept;
  Graph& operator=(const Graph& other);
  Graph& operator=(Graph&& other) noexcept;

  /// Bulk construction: `node_count` nodes plus all of `links` in one
  /// pass, with the same validation as add_link (and the same resulting
  /// state, topology_version() included), but building the CSR arrays
  /// directly — no lazy-rebuild debt, one O(V + E) pass.
  [[nodiscard]] static Graph from_links(int node_count,
                                        std::span<const Link> links);

  /// Append `count` fresh isolated nodes; returns the id of the first one.
  NodeId add_nodes(int count);

  /// Insert an undirected link; returns its id. Precondition: a != b, both
  /// valid, weight > 0, and no link between a and b exists yet.
  LinkId add_link(NodeId a, NodeId b, double weight);

  /// Change an existing link's weight (must stay strictly positive).
  void set_link_weight(LinkId id, double weight);

  /// Monotone counter bumped by every topology mutation (node/link
  /// insertion, weight change). Consumers that cache anything derived
  /// from the topology — RoutingOracle above all — compare this against
  /// the version they computed under and flush when it moved.
  [[nodiscard]] std::uint64_t topology_version() const noexcept {
    return topology_version_;
  }

  [[nodiscard]] int node_count() const noexcept { return node_count_; }
  [[nodiscard]] int link_count() const noexcept {
    return static_cast<int>(links_.size());
  }

  [[nodiscard]] const Link& link(LinkId id) const {
    assert(id >= 0 && id < link_count());
    return links_[static_cast<std::size_t>(id)];
  }

  [[nodiscard]] std::span<const Link> links() const noexcept { return links_; }

  [[nodiscard]] std::span<const Adjacency> neighbors(NodeId n) const {
    assert(valid_node(n));
    if (!csr_valid_.load(std::memory_order_acquire)) rebuild_csr();
    const std::size_t begin = offsets_[static_cast<std::size_t>(n)];
    const std::size_t end = offsets_[static_cast<std::size_t>(n) + 1];
    return {packed_.data() + begin, end - begin};
  }

  /// O(1): degrees are maintained incrementally, never via the CSR.
  [[nodiscard]] int degree(NodeId n) const {
    assert(valid_node(n));
    return degree_[static_cast<std::size_t>(n)];
  }

  /// Link between u and v if one exists. O(1) via the endpoint hash.
  [[nodiscard]] std::optional<LinkId> link_between(NodeId u, NodeId v) const;

  [[nodiscard]] bool valid_node(NodeId n) const noexcept {
    return n >= 0 && n < node_count();
  }

  /// Mean node degree, 2·|E|/|V| (reported under the α axis in Fig. 9).
  [[nodiscard]] double average_degree() const noexcept;

  /// Number of nodes reachable from `start` (including `start` itself),
  /// optionally treating `banned_link` as failed. Throws std::out_of_range
  /// for an invalid start, std::invalid_argument for a bad link id
  /// (kNoLink means "no ban").
  [[nodiscard]] int reachable_count_from(NodeId start,
                                         LinkId banned_link = kNoLink) const;

  /// Connected components remaining after `banned_link` is removed
  /// (kNoLink = none). 0 for the empty graph. The shared component
  /// machinery behind connected() / connected_without().
  [[nodiscard]] int component_count(LinkId banned_link = kNoLink) const;

  /// True iff every node can reach every other node.
  [[nodiscard]] bool connected() const;

  /// True iff the graph stays connected after removing `failed_link`.
  [[nodiscard]] bool connected_without(LinkId failed_link) const;

  /// Node coordinates; empty unless a generator attached them.
  [[nodiscard]] std::span<const Point> positions() const noexcept {
    return positions_;
  }
  void set_positions(std::vector<Point> positions);

  /// Total hash probes spent on add_link duplicate checks so far — the
  /// operation count the complexity regression test pins (one probe per
  /// insertion; the legacy adjacency scan spent O(deg) comparisons each).
  [[nodiscard]] std::uint64_t duplicate_check_ops() const noexcept {
    return dup_check_ops_;
  }

  /// Human-readable dump, for examples and debugging.
  [[nodiscard]] std::string to_string() const;

 private:
  /// Packed (min, max) endpoint key for the duplicate-link hash.
  [[nodiscard]] static std::uint64_t endpoint_key(NodeId u, NodeId v) noexcept {
    const auto lo = static_cast<std::uint32_t>(u < v ? u : v);
    const auto hi = static_cast<std::uint32_t>(u < v ? v : u);
    return (static_cast<std::uint64_t>(lo) << 32) | hi;
  }

  void rebuild_csr() const;
  void mark_csr_stale() noexcept {
    csr_valid_.store(false, std::memory_order_relaxed);
  }
  void copy_from(const Graph& other);
  void move_from(Graph&& other) noexcept;

  std::vector<Link> links_;
  int node_count_ = 0;
  std::vector<int> degree_;  ///< per-node degree, maintained on add_link
  /// (min, max) endpoint pair -> link id; duplicate check + link_between.
  std::unordered_map<std::uint64_t, LinkId> link_index_;
  std::vector<Point> positions_;
  std::uint64_t topology_version_ = 0;
  std::uint64_t dup_check_ops_ = 0;

  // CSR arrays, rebuilt lazily on first read after a mutation batch.
  mutable std::vector<std::size_t> offsets_;  ///< node_count_ + 1 entries
  mutable std::vector<Adjacency> packed_;     ///< 2 · link_count entries
  mutable std::atomic<bool> csr_valid_{false};
  mutable std::mutex csr_mutex_;
};

}  // namespace smrp::net
