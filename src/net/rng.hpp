// Deterministic pseudo-random number generation for simulations.
//
// Every experiment in this repository derives all of its randomness from a
// single Rng seeded with an explicit 64-bit value, so that any scenario can
// be reproduced exactly from the seed printed by the bench harness.
#pragma once

#include <cstdint>
#include <limits>

namespace smrp::net {

/// SplitMix64: used to expand a single 64-bit seed into the Xoshiro state.
/// Reference: Steele, Lea & Flood, "Fast splittable pseudorandom number
/// generators", OOPSLA 2014.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Xoshiro256** by Blackman & Vigna: fast, high-quality, 256-bit state.
/// Satisfies the C++ UniformRandomBitGenerator requirements.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed = 0x5eed5eed5eedULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift rejection.
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    // Rejection-free fast path is fine for simulation purposes: the modulo
    // bias of a 64-bit source over simulation-sized bounds (< 2^32) is
    // below 2^-32 and irrelevant next to topology sampling noise; we still
    // use the widening-multiply trick to avoid an expensive division.
    const unsigned __int128 product =
        static_cast<unsigned __int128>((*this)()) * bound;
    return static_cast<std::uint64_t>(product >> 64);
  }

  /// Derive an independent child generator (e.g. one per scenario).
  constexpr Rng fork() noexcept {
    const std::uint64_t a = (*this)();
    const std::uint64_t b = (*this)();
    return Rng(a ^ rotl(b, 32));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace smrp::net
