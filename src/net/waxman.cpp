#include "net/waxman.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>
#include <vector>

namespace smrp::net {

namespace {

double link_weight(LinkWeightMode mode, double distance, Rng& rng) {
  switch (mode) {
    case LinkWeightMode::kEuclidean:
      // Clamp away from zero so co-located nodes cannot create zero-weight
      // links (Dijkstra assumes strictly positive weights).
      return std::max(distance, 1e-6);
    case LinkWeightMode::kUnit:
      return 1.0;
    case LinkWeightMode::kUniformRandom:
      return rng.uniform(1.0, 10.0);
  }
  throw std::logic_error("unknown weight mode");
}

Graph sample_once(const WaxmanParams& p, Rng& rng) {
  Graph g(p.node_count);
  std::vector<Point> pos(static_cast<std::size_t>(p.node_count));
  for (auto& point : pos) {
    point = Point{rng.uniform(0.0, p.plane_size), rng.uniform(0.0, p.plane_size)};
  }
  const double diagonal = p.plane_size * std::numbers::sqrt2;
  for (NodeId u = 0; u < p.node_count; ++u) {
    for (NodeId v = u + 1; v < p.node_count; ++v) {
      const double d = euclidean(pos[static_cast<std::size_t>(u)],
                                 pos[static_cast<std::size_t>(v)]);
      const double probability = p.alpha * std::exp(-d / (p.beta * diagonal));
      if (rng.uniform() < probability) {
        g.add_link(u, v, link_weight(p.weight_mode, d, rng));
      }
    }
  }
  g.set_positions(std::move(pos));
  return g;
}

/// Connect all components by repeatedly adding the geometrically shortest
/// link between the component containing node 0 and the rest.
int patch_connectivity(Graph& g, LinkWeightMode mode, Rng& rng) {
  int added = 0;
  const auto positions = g.positions();
  for (;;) {
    // Label the component of node 0.
    std::vector<char> in_main(static_cast<std::size_t>(g.node_count()), 0);
    std::vector<NodeId> stack{0};
    in_main[0] = 1;
    while (!stack.empty()) {
      const NodeId n = stack.back();
      stack.pop_back();
      for (const Adjacency& adj : g.neighbors(n)) {
        if (!in_main[static_cast<std::size_t>(adj.neighbor)]) {
          in_main[static_cast<std::size_t>(adj.neighbor)] = 1;
          stack.push_back(adj.neighbor);
        }
      }
    }
    NodeId best_u = kNoNode;
    NodeId best_v = kNoNode;
    double best_d = std::numeric_limits<double>::infinity();
    for (NodeId u = 0; u < g.node_count(); ++u) {
      if (!in_main[static_cast<std::size_t>(u)]) continue;
      for (NodeId v = 0; v < g.node_count(); ++v) {
        if (in_main[static_cast<std::size_t>(v)]) continue;
        const double d = euclidean(positions[static_cast<std::size_t>(u)],
                                   positions[static_cast<std::size_t>(v)]);
        if (d < best_d) {
          best_d = d;
          best_u = u;
          best_v = v;
        }
      }
    }
    if (best_u == kNoNode) return added;  // already connected
    g.add_link(best_u, best_v, link_weight(mode, best_d, rng));
    ++added;
  }
}

}  // namespace

WaxmanResult generate_waxman(const WaxmanParams& p, Rng& rng) {
  if (p.node_count < 2) throw std::invalid_argument("need >= 2 nodes");
  if (p.alpha <= 0.0 || p.alpha > 1.0) {
    throw std::invalid_argument("alpha must be in (0, 1]");
  }
  if (p.beta <= 0.0 || p.beta > 1.0) {
    throw std::invalid_argument("beta must be in (0, 1]");
  }
  WaxmanResult result;
  for (int attempt = 0;; ++attempt) {
    result.graph = sample_once(p, rng);
    if (result.graph.connected()) return result;
    if (attempt >= p.max_resample_attempts) break;
    ++result.resamples;
  }
  result.patched_links =
      patch_connectivity(result.graph, p.weight_mode, rng);
  return result;
}

Graph waxman_graph(const WaxmanParams& params, Rng& rng) {
  return generate_waxman(params, rng).graph;
}

}  // namespace smrp::net
