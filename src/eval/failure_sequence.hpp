// Multi-failure endurance experiment (an extension in the spirit of the
// paper's "ongoing work" section): a session survives a *sequence* of
// persistent failures, each repaired before the next strikes. The SMRP
// tree repairs via local detours; the SPF baseline re-joins via global
// detours — both against the same accumulated damage.
#pragma once

#include "eval/scenario.hpp"

namespace smrp::eval {

struct FailureSequenceParams {
  ScenarioParams scenario;  ///< topology / group / protocol knobs
  int failures = 5;         ///< successive persistent link failures
};

struct FailureStep {
  net::LinkId failed_link = net::kNoLink;
  int lost_smrp = 0;            ///< members disconnected on the SMRP tree
  int lost_spf = 0;
  double rd_smrp = 0.0;         ///< total repair distance this step
  double rd_spf = 0.0;
  int unrecoverable_smrp = 0;   ///< members permanently cut off
  int unrecoverable_spf = 0;
  double mean_delay_smrp = 0.0; ///< member delay after the repair
  double mean_delay_spf = 0.0;
};

struct FailureSequenceResult {
  std::vector<FailureStep> steps;
  int final_members_smrp = 0;
  int final_members_spf = 0;
  double total_rd_smrp = 0.0;
  double total_rd_spf = 0.0;
};

/// Build both trees, then inject `failures` successive link failures
/// (each drawn uniformly from the links currently carrying either
/// session), repairing both trees after each. All failed links stay down.
[[nodiscard]] FailureSequenceResult run_failure_sequence(
    const FailureSequenceParams& params, net::Rng& rng);

}  // namespace smrp::eval
