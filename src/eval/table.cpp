#include "eval/table.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace smrp::eval {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("table needs headers");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("row width != header width");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  std::ostringstream out;
  const auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << (c == 0 ? "| " : " | ");
      out << cells[c];
      out << std::string(widths[c] - cells[c].size(), ' ');
    }
    out << " |\n";
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  }
  out << "-|\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string Table::fixed(double value, int decimals) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(decimals);
  out << value;
  return out.str();
}

std::string Table::percent(double fraction, int decimals) {
  return fixed(fraction * 100.0, decimals) + "%";
}

std::string Table::with_ci(double mean, double ci_half, int decimals) {
  return fixed(mean, decimals) + " ± " + fixed(ci_half, decimals);
}

std::string Table::percent_with_ci(double mean, double ci_half, int decimals) {
  return fixed(mean * 100.0, decimals) + "% ± " + fixed(ci_half * 100.0, decimals) +
         "%";
}

}  // namespace smrp::eval
