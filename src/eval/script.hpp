// ns-2-style scenario scripting: a small text format that drives a full
// protocol-stack simulation (topology, session mode, timed joins/leaves,
// link/node failures and repairs, service reports) without recompiling.
//
//   # comments and blank lines are ignored
//   topology waxman n=60 alpha=0.2 beta=0.3 seed=7
//   mode smrp            # or: pim
//   dthresh 0.3
//   source 0
//   at 0    join 5
//   at 0    join 9
//   at 1500 fail-link 0 5
//   at 4000 report       # log each member's service freshness
//   at 5000 restore-link 0 5
//   run 8000
//
// Chaos directives (scheduled through the fault-injection layer):
//
//   at 1500 flap-link 0 5 400       # down, back up 400ms later
//   at 2000 crash-node 7 600        # crash, restart 600ms later
//   at 2500 loss-burst 1000 0.15    # 15% loss for 1s (optional base after)
//   at 6000 audit                   # run the invariant checker, log result
//
// Telemetry directives (DESIGN.md §8):
//
//   trace-out drill.jsonl           # stream the telemetry snapshot at end
//   sample-every 250                # periodic gauge samples in the trace
//   at 4000 stats                   # log headline registry counters
//
// Protocol expectations (DESIGN.md §12) and shared-risk link groups:
//
//   expect core                     # or a rule-file path; checked online
//   srlg conduit 0-5 1-5 2-6        # name a link group by endpoints
//   at 3000 srlg-cut conduit 800    # fail it atomically, heal 800ms later
//                                   # (omit the hold for a permanent cut)
//
// `topology` also accepts `erdos n=.. degree=.. seed=..` and
// `ba n=.. m=.. seed=..`. Times are simulated milliseconds.
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "net/graph.hpp"
#include "smrp/distributed.hpp"

namespace smrp::eval {

/// One timed directive.
struct ScriptEvent {
  enum class Kind {
    kJoin,
    kLeave,
    kFailLink,
    kRestoreLink,
    kFailNode,
    kRestoreNode,
    kReport,
    kFlapLink,      ///< transient link down, auto-heal after `hold`
    kCrashRestart,  ///< node crash, auto-restart after `hold`
    kLossBurst,     ///< loss probability `loss` for `hold` ms
    kAudit,         ///< run the invariant checker, log the outcome
    kStats,         ///< log headline telemetry counters at this instant
    kSrlgCut,       ///< fail a named link group atomically
  };
  sim::Time at = 0.0;
  Kind kind = Kind::kReport;
  net::NodeId a = net::kNoNode;  ///< member / node / link endpoint
  net::NodeId b = net::kNoNode;  ///< second link endpoint
  sim::Time hold = 0.0;          ///< flap hold / downtime / burst / heal time
  double loss = 0.0;             ///< kLossBurst probability
  double base_loss = 0.0;        ///< kLossBurst level restored afterwards
  std::string srlg;              ///< kSrlgCut group name
};

/// Parsed, validated scenario.
class ScenarioScript {
 public:
  /// Parse; throws std::invalid_argument with a line number on errors.
  static ScenarioScript parse(std::istream& in);
  static ScenarioScript parse_string(const std::string& text);

  struct RunReport {
    std::vector<std::string> log;  ///< chronological, human-readable
    int members_at_end = 0;
    int starved_members_at_end = 0;  ///< members without fresh data
    int repairs_completed = 0;
    int invariant_violations = 0;  ///< total across `audit` directives
    /// `expect` directive results; -1 when the scenario has no `expect`.
    int expect_violations = -1;
    std::string expect_table;  ///< rendered per-rule table (empty w/o expect)
  };

  /// Build the stack and execute every directive. Deterministic.
  [[nodiscard]] RunReport execute() const;

  [[nodiscard]] const std::vector<ScriptEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] net::NodeId source() const noexcept { return source_; }
  [[nodiscard]] sim::Time run_until() const noexcept { return run_until_; }
  /// JSONL telemetry destination (`trace-out`); empty when not requested.
  [[nodiscard]] const std::string& trace_path() const noexcept {
    return trace_path_;
  }
  /// `expect` rule source ("core" or a file path); empty when absent.
  [[nodiscard]] const std::string& expect_rules() const noexcept {
    return expect_rules_;
  }
  /// Gauge-sampling period (`sample-every`); 0 when not requested.
  [[nodiscard]] double sample_period() const noexcept {
    return sample_period_;
  }

 private:
  // Topology description (generated lazily at execute()).
  enum class Topology { kWaxman, kErdosRenyi, kBarabasiAlbert } topology_ =
      Topology::kWaxman;
  int node_count_ = 60;
  double alpha_ = 0.2;
  double beta_ = 0.3;
  double degree_ = 6.0;
  int ba_m_ = 2;
  std::uint64_t seed_ = 1;

  proto::SessionConfig session_;
  net::NodeId source_ = 0;
  sim::Time run_until_ = 5000.0;
  std::string trace_path_;
  std::string expect_rules_;
  double sample_period_ = 0.0;
  /// Named link groups (`srlg`), endpoint pairs resolved at execute().
  std::map<std::string, std::vector<std::pair<net::NodeId, net::NodeId>>>
      srlgs_;
  std::vector<ScriptEvent> events_;
};

}  // namespace smrp::eval
