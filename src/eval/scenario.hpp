// Scenario generation and execution for the paper's evaluation (§4.1–4.2):
// one scenario = one Waxman topology + one random member set, on which both
// the SPF baseline and SMRP build trees and every member's worst-case
// failure is exercised.
#pragma once

#include <cstdint>
#include <vector>

#include "eval/stats.hpp"
#include "net/rng.hpp"
#include "net/routing_oracle.hpp"
#include "net/waxman.hpp"
#include "smrp/config.hpp"
#include "smrp/recovery.hpp"

namespace smrp::eval {

using net::Graph;
using net::NodeId;

/// Which recovery policy supplies the member's RD on each tree.
enum class RecoveryPolicy { kGlobalDetour, kLocalDetour };

/// Random-graph family a scenario's topology is drawn from (the paper
/// uses Waxman; the others probe its future-work question about more
/// Internet-like graphs).
enum class TopologyModel {
  kWaxman,          ///< GT-ITM's locality model (paper §4.1)
  kErdosRenyi,      ///< G(n,p), no locality — control model
  kBarabasiAlbert,  ///< preferential attachment, heavy-tailed degrees
};

/// Which reference protocol SMRP is compared against.
enum class BaselineKind {
  kSpf,      ///< MOSPF/PIM-style shortest-path tree (the paper's baseline)
  kSteiner,  ///< cost-minimising Takahashi–Matsuyama heuristic (§4.2 claim)
};

/// Which component the worst-case failure takes out (§1 covers both).
enum class FailureModel {
  kWorstCaseLink,  ///< the source's incident link on the member's path
  kWorstCaseNode,  ///< the source's on-tree child on the member's path
};

struct ScenarioParams {
  int node_count = 100;      ///< N
  int group_size = 30;       ///< N_G
  TopologyModel topology = TopologyModel::kWaxman;
  double alpha = 0.2;        ///< Waxman α (edge density)
  double beta = 0.3;         ///< Waxman β (held fixed, §4.1)
  /// Target mean degree for the non-Waxman models (translated into their
  /// native parameters).
  double target_degree = 7.0;
  proto::SmrpConfig smrp;    ///< includes D_thresh
  bool use_query_scheme = false;  ///< §3.3.1 join instead of full topology
  /// Policy measured on the SPF tree (the paper's baseline is the global
  /// detour; the ablation flips this to local).
  RecoveryPolicy spf_policy = RecoveryPolicy::kGlobalDetour;
  /// Policy measured on the SMRP tree.
  RecoveryPolicy smrp_policy = RecoveryPolicy::kLocalDetour;
  /// Worst-case failure model applied per member.
  FailureModel failure_model = FailureModel::kWorstCaseLink;
  /// Reference protocol for the relative metrics.
  BaselineKind baseline = BaselineKind::kSpf;
};

/// One member's worst-case-failure comparison between the two protocols.
struct MemberComparison {
  NodeId member = net::kNoNode;
  bool valid = false;     ///< both trees connected it and both recoveries worked
  double rd_spf = 0.0;    ///< recovery distance on the SPF tree (weight)
  double rd_smrp = 0.0;   ///< recovery distance on the SMRP tree (weight)
  int rd_spf_hops = 0;
  int rd_smrp_hops = 0;
  double delay_spf = 0.0;   ///< D(S,R) on the SPF tree
  double delay_smrp = 0.0;  ///< D(S,R) on the SMRP tree

  /// (RD_SPF − RD_SMRP) / RD_SPF, the paper's RD_R^relative, with RD in
  /// link weight (Fig. 1 semantics).
  [[nodiscard]] double rd_relative() const {
    return rd_spf > 0.0 ? (rd_spf - rd_smrp) / rd_spf : 0.0;
  }
  /// Same with RD counted in new links grafted (restoration effort).
  [[nodiscard]] double rd_relative_hops() const {
    return rd_spf_hops > 0
               ? static_cast<double>(rd_spf_hops - rd_smrp_hops) / rd_spf_hops
               : 0.0;
  }
  /// (D_SMRP − D_SPF) / D_SPF, the paper's D_{S,R}^relative.
  [[nodiscard]] double delay_relative() const {
    return delay_spf > 0.0 ? (delay_smrp - delay_spf) / delay_spf : 0.0;
  }
};

struct ScenarioResult {
  std::uint64_t seed = 0;
  double avg_degree = 0.0;
  double cost_spf = 0.0;
  double cost_smrp = 0.0;
  int fallback_joins = 0;
  int reshape_count = 0;
  std::vector<MemberComparison> members;

  [[nodiscard]] double cost_relative() const {
    return cost_spf > 0.0 ? (cost_smrp - cost_spf) / cost_spf : 0.0;
  }
  /// Scenario-level mean of per-member RD_R^relative over valid members.
  [[nodiscard]] double mean_rd_relative() const;
  [[nodiscard]] double mean_rd_relative_hops() const;
  [[nodiscard]] double mean_delay_relative() const;
  [[nodiscard]] int valid_member_count() const;
};

/// Sample `count` distinct members (excluding `source`) uniformly.
[[nodiscard]] std::vector<NodeId> pick_members(const Graph& g, NodeId source,
                                               int count, net::Rng& rng);

/// Run one scenario on an existing topology: picks source + members from
/// `rng`, builds both trees (same join order), exercises each member's
/// worst-case failure under the configured policies. `oracle`, when
/// given, serves every SPF in the scenario (it must be bound to `g`);
/// sweeps reusing one topology across member sets share one oracle so
/// repeated sources/failures hit its cache.
[[nodiscard]] ScenarioResult run_scenario_on_graph(
    const Graph& g, const ScenarioParams& p, net::Rng& rng,
    net::RoutingOracle* oracle = nullptr);

/// Generate a topology per the params' model.
[[nodiscard]] Graph make_topology(const ScenarioParams& p, net::Rng& rng);

/// Run one scenario end-to-end: generates the topology first.
[[nodiscard]] ScenarioResult run_scenario(const ScenarioParams& p,
                                          net::Rng& rng);

/// Aggregates over a sweep cell (e.g. one D_thresh value): distributions of
/// the three relative metrics over scenarios, as the paper's error-bar
/// plots require.
struct SweepCell {
  Summary rd_relative;       ///< over scenario means (weight-based RD)
  Summary rd_relative_hops;  ///< over scenario means (new-links-based RD)
  Summary delay_relative;    ///< over scenario means
  Summary cost_relative;   ///< over scenarios
  double avg_degree = 0.0;
  int scenarios = 0;
  int invalid_members = 0;
  int fallback_joins = 0;
  int reshapes = 0;
};

/// The paper's experiment grid: `topologies` random graphs × `member_sets`
/// random member sets per graph (10 × 10 in §4.3.2).
[[nodiscard]] SweepCell run_sweep(const ScenarioParams& p, int topologies,
                                  int member_sets, std::uint64_t seed);

}  // namespace smrp::eval
