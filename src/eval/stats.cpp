#include "eval/stats.hpp"

#include <algorithm>
#include <cmath>

namespace smrp::eval {

double t_critical_95(int dof) {
  // Two-sided 95% quantiles; exact for the listed dof, interpolated in
  // between, 1.96 asymptotically.
  struct Entry {
    int dof;
    double t;
  };
  static constexpr Entry kTable[] = {
      {1, 12.706}, {2, 4.303}, {3, 3.182}, {4, 2.776}, {5, 2.571},
      {6, 2.447},  {7, 2.365}, {8, 2.306}, {9, 2.262}, {10, 2.228},
      {12, 2.179}, {15, 2.131}, {20, 2.086}, {25, 2.060}, {30, 2.042},
      {40, 2.021}, {60, 2.000}, {80, 1.990}, {100, 1.984}, {120, 1.980},
  };
  if (dof < 1) return 0.0;
  const Entry* prev = &kTable[0];
  for (const Entry& e : kTable) {
    if (dof == e.dof) return e.t;
    if (dof < e.dof) {
      // Linear interpolation in 1/dof, the natural scale for t quantiles.
      const double x0 = 1.0 / prev->dof;
      const double x1 = 1.0 / e.dof;
      const double x = 1.0 / dof;
      const double w = (x - x0) / (x1 - x0);
      return prev->t + w * (e.t - prev->t);
    }
    prev = &e;
  }
  // dof > 120: interpolate toward the normal quantile.
  const double w = 120.0 / dof;
  return 1.96 + w * (1.980 - 1.96);
}

Summary RunningStats::summary() const noexcept {
  Summary s;
  s.count = static_cast<int>(hist_.count());
  if (s.count == 0) return s;
  s.mean = hist_.mean();
  s.min = hist_.min();
  s.max = hist_.max();
  if (s.count > 1) {
    s.stddev = hist_.stddev();
    s.ci95_half = t_critical_95(s.count - 1) * s.stddev /
                  std::sqrt(static_cast<double>(s.count));
  }
  return s;
}

Summary summarize(std::span<const double> samples) {
  RunningStats acc;
  for (const double x : samples) acc.add(x);
  return acc.summary();
}

}  // namespace smrp::eval
