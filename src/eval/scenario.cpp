#include "eval/scenario.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "multicast/tree.hpp"
#include "smrp/query_scheme.hpp"
#include "smrp/tree_builder.hpp"
#include "spf/spf_tree_builder.hpp"
#include "spf/steiner_tree_builder.hpp"
#include "net/random_graphs.hpp"

namespace smrp::eval {

double ScenarioResult::mean_rd_relative() const {
  double sum = 0.0;
  int n = 0;
  for (const MemberComparison& m : members) {
    if (!m.valid) continue;
    sum += m.rd_relative();
    ++n;
  }
  return n > 0 ? sum / n : 0.0;
}

double ScenarioResult::mean_rd_relative_hops() const {
  double sum = 0.0;
  int n = 0;
  for (const MemberComparison& m : members) {
    if (!m.valid) continue;
    sum += m.rd_relative_hops();
    ++n;
  }
  return n > 0 ? sum / n : 0.0;
}

double ScenarioResult::mean_delay_relative() const {
  double sum = 0.0;
  int n = 0;
  for (const MemberComparison& m : members) {
    if (!m.valid) continue;
    sum += m.delay_relative();
    ++n;
  }
  return n > 0 ? sum / n : 0.0;
}

int ScenarioResult::valid_member_count() const {
  int n = 0;
  for (const MemberComparison& m : members) {
    if (m.valid) ++n;
  }
  return n;
}

std::vector<NodeId> pick_members(const Graph& g, NodeId source, int count,
                                 net::Rng& rng) {
  if (count >= g.node_count()) {
    throw std::invalid_argument("group larger than the network");
  }
  // Partial Fisher–Yates over the candidate pool.
  std::vector<NodeId> pool;
  pool.reserve(static_cast<std::size_t>(g.node_count()) - 1);
  for (NodeId n = 0; n < g.node_count(); ++n) {
    if (n != source) pool.push_back(n);
  }
  std::vector<NodeId> members;
  members.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const std::size_t j =
        static_cast<std::size_t>(i) +
        static_cast<std::size_t>(rng.below(pool.size() - static_cast<std::size_t>(i)));
    std::swap(pool[static_cast<std::size_t>(i)], pool[j]);
    members.push_back(pool[static_cast<std::size_t>(i)]);
  }
  return members;
}

namespace {

proto::RecoveryOutcome run_policy(RecoveryPolicy policy, const Graph& g,
                                  const mcast::MulticastTree& tree,
                                  NodeId member, const proto::Failure& failure,
                                  net::RoutingOracle& oracle) {
  switch (policy) {
    case RecoveryPolicy::kGlobalDetour:
      return proto::global_detour_recovery(g, tree, member, failure, &oracle);
    case RecoveryPolicy::kLocalDetour:
      return proto::local_detour_recovery(g, tree, member, failure, &oracle);
  }
  throw std::logic_error("unknown recovery policy");
}

/// The member's worst-case failure under the configured model; nullopt
/// when the model does not apply (a node-failure of the member itself).
std::optional<proto::Failure> worst_case_failure(
    FailureModel model, const mcast::MulticastTree& tree, NodeId member) {
  if (model == FailureModel::kWorstCaseLink) {
    return proto::Failure::of_link(
        proto::worst_case_failure_link(tree, member));
  }
  const NodeId victim = proto::worst_case_failure_node(tree, member);
  if (victim == member) return std::nullopt;
  return proto::Failure::of_node(victim);
}

/// SMRP construction with optional query-scheme joins (the builder's
/// full-knowledge join is the default path).
void smrp_join(proto::SmrpTreeBuilder& builder, NodeId member,
               bool use_query, int& fallbacks) {
  if (!use_query) {
    const proto::JoinOutcome out = builder.join(member);
    if (!out.joined) {
      throw std::runtime_error("SMRP join failed on a connected graph");
    }
    return;
  }
  // Query-scheme join: restricted candidate set, grafted manually through
  // the builder's tree is not possible — replicate via select + graft by
  // running the builder in query mode.
  const auto selection = proto::select_join_path_via_query(
      builder.graph(), builder.tree(), member, builder.spf_delay(member),
      builder.config(), &builder.oracle());
  if (!selection) {
    // Fall back to the full-knowledge join so the member is never refused.
    ++fallbacks;
    const proto::JoinOutcome out = builder.join(member);
    if (!out.joined) {
      throw std::runtime_error("SMRP join failed on a connected graph");
    }
    return;
  }
  if (selection->used_fallback) ++fallbacks;
  builder.join_along(member, selection->chosen.graft);
}

/// Uniform facade over the available reference protocols.
class BaselineFacade {
 public:
  BaselineFacade(BaselineKind kind, const Graph& g, NodeId source,
                 net::RoutingOracle* oracle) {
    if (kind == BaselineKind::kSpf) {
      spf_ = std::make_unique<baseline::SpfTreeBuilder>(g, source, oracle);
    } else {
      steiner_ =
          std::make_unique<baseline::SteinerTreeBuilder>(g, source, oracle);
    }
  }
  bool join(NodeId m) { return spf_ ? spf_->join(m) : steiner_->join(m); }
  [[nodiscard]] const mcast::MulticastTree& tree() const {
    return spf_ ? spf_->tree() : steiner_->tree();
  }

 private:
  std::unique_ptr<baseline::SpfTreeBuilder> spf_;
  std::unique_ptr<baseline::SteinerTreeBuilder> steiner_;
};

}  // namespace

ScenarioResult run_scenario_on_graph(const Graph& g, const ScenarioParams& p,
                                     net::Rng& rng,
                                     net::RoutingOracle* oracle) {
  ScenarioResult result;
  result.avg_degree = g.average_degree();

  // One oracle serves the whole scenario (both protocols + the failure
  // sweep); sweeps pass a per-topology one in so member sets share it.
  std::unique_ptr<net::RoutingOracle> owned_oracle;
  if (oracle == nullptr) {
    owned_oracle = std::make_unique<net::RoutingOracle>(g);
    oracle = owned_oracle.get();
  }

  const NodeId source = static_cast<NodeId>(rng.below(
      static_cast<std::uint64_t>(g.node_count())));
  const std::vector<NodeId> members =
      pick_members(g, source, p.group_size, rng);

  BaselineFacade spf(p.baseline, g, source, oracle);
  proto::SmrpTreeBuilder smrp(g, source, p.smrp, oracle);
  int query_fallbacks = 0;
  for (const NodeId m : members) {
    if (!spf.join(m)) {
      throw std::runtime_error("baseline join failed on a connected graph");
    }
    smrp_join(smrp, m, p.use_query_scheme, query_fallbacks);
  }

  result.cost_spf = spf.tree().total_cost();
  result.cost_smrp = smrp.tree().total_cost();
  result.fallback_joins = smrp.fallback_join_count() + query_fallbacks;
  result.reshape_count = smrp.total_reshapes();

  // The worst-case sweep below (two detour searches per member) leases
  // the oracle's pooled buffers; global detours hit its SPF cache.
  for (const NodeId m : members) {
    MemberComparison cmp;
    cmp.member = m;
    cmp.delay_spf = spf.tree().delay_to_source(m);
    cmp.delay_smrp = smrp.tree().delay_to_source(m);

    // Worst case per protocol, on the member's own tree path (§4.3.1).
    const auto fail_spf = worst_case_failure(p.failure_model, spf.tree(), m);
    const auto fail_smrp =
        worst_case_failure(p.failure_model, smrp.tree(), m);
    if (!fail_spf || !fail_smrp) {
      // Node-failure model and the member itself is the worst-case node.
      result.members.push_back(cmp);
      continue;
    }

    const proto::RecoveryOutcome spf_rec =
        run_policy(p.spf_policy, g, spf.tree(), m, *fail_spf, *oracle);
    const proto::RecoveryOutcome smrp_rec =
        run_policy(p.smrp_policy, g, smrp.tree(), m, *fail_smrp, *oracle);

    cmp.valid = spf_rec.recovered && smrp_rec.recovered &&
                spf_rec.disconnected && smrp_rec.disconnected &&
                spf_rec.recovery_distance > 0.0;
    cmp.rd_spf = spf_rec.recovery_distance;
    cmp.rd_smrp = smrp_rec.recovery_distance;
    cmp.rd_spf_hops = spf_rec.recovery_hops;
    cmp.rd_smrp_hops = smrp_rec.recovery_hops;
    result.members.push_back(cmp);
  }
  return result;
}

Graph make_topology(const ScenarioParams& p, net::Rng& rng) {
  switch (p.topology) {
    case TopologyModel::kWaxman: {
      net::WaxmanParams wax;
      wax.node_count = p.node_count;
      wax.alpha = p.alpha;
      wax.beta = p.beta;
      return net::waxman_graph(wax, rng);
    }
    case TopologyModel::kErdosRenyi: {
      net::ErdosRenyiParams er;
      er.node_count = p.node_count;
      er.edge_probability =
          p.target_degree / static_cast<double>(p.node_count - 1);
      return net::erdos_renyi_graph(er, rng);
    }
    case TopologyModel::kBarabasiAlbert: {
      net::BarabasiAlbertParams ba;
      ba.node_count = p.node_count;
      ba.edges_per_node =
          std::max(1, static_cast<int>(p.target_degree / 2.0 + 0.5));
      return net::barabasi_albert_graph(ba, rng);
    }
  }
  throw std::logic_error("unknown topology model");
}

ScenarioResult run_scenario(const ScenarioParams& p, net::Rng& rng) {
  const Graph g = make_topology(p, rng);
  return run_scenario_on_graph(g, p, rng);
}

SweepCell run_sweep(const ScenarioParams& p, int topologies, int member_sets,
                    std::uint64_t seed) {
  net::Rng root(seed);
  SweepCell cell;
  std::vector<double> rd_rel;
  std::vector<double> rd_rel_hops;
  std::vector<double> delay_rel;
  std::vector<double> cost_rel;
  double degree_sum = 0.0;

  for (int t = 0; t < topologies; ++t) {
    net::Rng topo_rng = root.fork();
    const Graph g = make_topology(p, topo_rng);
    // Member sets on the same topology share one oracle: sources and
    // worst-case failures repeat across sets, so the cache carries over.
    net::RoutingOracle oracle(g);
    for (int s = 0; s < member_sets; ++s) {
      net::Rng scenario_rng = topo_rng.fork();
      const ScenarioResult r = run_scenario_on_graph(g, p, scenario_rng,
                                                     &oracle);
      rd_rel.push_back(r.mean_rd_relative());
      rd_rel_hops.push_back(r.mean_rd_relative_hops());
      delay_rel.push_back(r.mean_delay_relative());
      cost_rel.push_back(r.cost_relative());
      degree_sum += r.avg_degree;
      cell.invalid_members +=
          static_cast<int>(r.members.size()) - r.valid_member_count();
      cell.fallback_joins += r.fallback_joins;
      cell.reshapes += r.reshape_count;
      ++cell.scenarios;
    }
  }
  cell.rd_relative = summarize(rd_rel);
  cell.rd_relative_hops = summarize(rd_rel_hops);
  cell.delay_relative = summarize(delay_rel);
  cell.cost_relative = summarize(cost_rel);
  cell.avg_degree = cell.scenarios > 0 ? degree_sum / cell.scenarios : 0.0;
  return cell;
}

}  // namespace smrp::eval
