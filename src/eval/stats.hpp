// Small statistics toolkit for the benches: summary statistics and the 95%
// confidence intervals the paper draws as error bars (Figs. 8–10).
//
// The accumulation itself lives in obs::Histogram (the repository's single
// Welford implementation and single percentile definition — see
// DESIGN.md §8); this layer only adds the t-distribution confidence
// interval the paper's figures need.
#pragma once

#include <span>
#include <vector>

#include "obs/metrics.hpp"

namespace smrp::eval {

struct Summary {
  int count = 0;
  double mean = 0.0;
  double stddev = 0.0;     ///< sample standard deviation (n-1 denominator)
  double ci95_half = 0.0;  ///< half-width of the 95% CI on the mean
  double min = 0.0;
  double max = 0.0;
};

/// Single-pass (Welford) summary of the samples. Empty input yields a
/// zeroed Summary with count 0.
[[nodiscard]] Summary summarize(std::span<const double> samples);

/// Two-sided 95% critical value of Student's t with `dof` degrees of
/// freedom (dof ≥ 1; large dof converges to 1.96).
[[nodiscard]] double t_critical_95(int dof);

/// Accumulator for streaming use: obs::Histogram's moments plus the CI.
class RunningStats {
 public:
  void add(double x) noexcept { hist_.record(x); }
  [[nodiscard]] Summary summary() const noexcept;
  [[nodiscard]] int count() const noexcept {
    return static_cast<int>(hist_.count());
  }
  [[nodiscard]] double mean() const noexcept { return hist_.mean(); }
  [[nodiscard]] double sum() const noexcept { return hist_.sum(); }
  /// The shared percentile definition, exposed for bench reporting.
  [[nodiscard]] double percentile(double q) const noexcept {
    return hist_.percentile(q);
  }

  /// Fold another accumulator in via the histogram's exact mergeable
  /// moments. The parallel experiment engine merges per-trial stats in
  /// trial order through this, so results are independent of how trials
  /// were scheduled across threads.
  void merge(const RunningStats& other) { hist_.merge(other.hist_); }

  [[nodiscard]] const obs::Histogram& histogram() const noexcept {
    return hist_;
  }

 private:
  obs::Histogram hist_;
};

}  // namespace smrp::eval
