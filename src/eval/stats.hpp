// Small statistics toolkit for the benches: summary statistics and the 95%
// confidence intervals the paper draws as error bars (Figs. 8–10).
#pragma once

#include <span>
#include <vector>

namespace smrp::eval {

struct Summary {
  int count = 0;
  double mean = 0.0;
  double stddev = 0.0;     ///< sample standard deviation (n-1 denominator)
  double ci95_half = 0.0;  ///< half-width of the 95% CI on the mean
  double min = 0.0;
  double max = 0.0;
};

/// Single-pass (Welford) summary of the samples. Empty input yields a
/// zeroed Summary with count 0.
[[nodiscard]] Summary summarize(std::span<const double> samples);

/// Two-sided 95% critical value of Student's t with `dof` degrees of
/// freedom (dof ≥ 1; large dof converges to 1.96).
[[nodiscard]] double t_critical_95(int dof);

/// Accumulator for streaming use.
class RunningStats {
 public:
  void add(double x) noexcept;
  [[nodiscard]] Summary summary() const noexcept;
  [[nodiscard]] int count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }

 private:
  int count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace smrp::eval
