// Deterministic parallel experiment engine (DESIGN.md §9).
//
// A bench describes its workload as N independent trials; the engine runs
// them on a fixed-size thread pool and folds the results back together so
// that the output is bit-identical at any thread count:
//
//  * each trial derives its own seed from the bench seed via splitmix64
//    (`trial_seed`), so trial i sees the same random stream no matter
//    which worker runs it or in which order;
//  * each trial records into its own TrialRecorder (no shared mutable
//    state on the hot path), and after the pool joins, per-trial
//    RunningStats are merged in trial-index order through the exact
//    mergeable moments of obs::Histogram;
//  * per-trial telemetry snapshots are buffered and exported in trial
//    order, never in completion order.
//
// The only thread-count-dependent outputs are the wall clock and the
// derived trials/sec, which `write_bench_json` confines to a single
// trailing "timing" line so consumers (and the determinism tests) can
// strip it and compare the rest byte for byte.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "eval/stats.hpp"
#include "obs/telemetry.hpp"

namespace smrp::eval {

/// Version tag of the machine-readable bench output; bump when the JSON
/// layout changes incompatibly.
inline constexpr std::string_view kBenchJsonSchema = "smrp.bench.v1";

/// Seed for trial `trial` of a bench run seeded with `bench_seed`:
/// splitmix64 of the golden-ratio sequence, the standard recipe for
/// statistically independent per-stream seeds from one root seed.
[[nodiscard]] std::uint64_t trial_seed(std::uint64_t bench_seed, int trial);

/// One buffered telemetry snapshot: what TelemetryExport::add would have
/// written immediately in a serial bench, captured for in-order export.
struct TelemetrySnapshot {
  std::string label;
  double now = 0.0;  ///< sim-time stamp of the snapshot
  std::unique_ptr<obs::Telemetry> telemetry;
};

/// Per-trial sink. Each trial owns exactly one recorder; recording never
/// synchronizes with other trials.
class TrialRecorder {
 public:
  /// Record one sample into the named series (created on first use).
  void add(std::string_view series, double value);

  /// Direct access to a series accumulator, for callers that cache it
  /// across an inner loop.
  RunningStats& series(std::string_view name);

  /// A telemetry bundle to instrument this trial with, or nullptr when
  /// the run does not collect telemetry (the usual nullable-Telemetry
  /// convention; callers guard on it). Snapshots surface in
  /// EngineResult::telemetry in trial order, then creation order.
  [[nodiscard]] obs::Telemetry* telemetry(std::string label);

  /// Stamp a bundle obtained from telemetry() with its snapshot time and
  /// close still-open spans. Call once per bundle, when its run ends.
  void close_telemetry(obs::Telemetry* t, double now);

 private:
  friend struct EngineAccess;

  std::map<std::string, RunningStats, std::less<>> series_;
  std::vector<TelemetrySnapshot> telemetry_;
  bool collect_telemetry_ = false;
  double sample_period_ = 0.0;  ///< gauge sampling period for new bundles
};

/// What a trial body receives.
struct TrialContext {
  int trial = 0;           ///< 0-based trial index
  std::uint64_t seed = 0;  ///< trial_seed(bench_seed, trial)
  int shards = 1;          ///< EngineOptions::shards, for within-trial DES
  TrialRecorder& recorder;
};

struct EngineOptions {
  std::uint64_t seed = 0;
  int trials = 1;
  /// Worker count; 0 means std::thread::hardware_concurrency(). The
  /// pool never outnumbers the trials, and `threads == 1` runs inline on
  /// the calling thread.
  int threads = 0;
  /// Within-trial shard count handed to trial bodies (DESIGN.md §15,
  /// §16): bodies that build a ShardedSimulator / sharded
  /// MultiSessionDriver read it off their TrialContext (the driver's
  /// workers all share one lock-striped RoutingOracle, so this scales
  /// threads, not caches). Purely advisory plumbing — the engine itself
  /// neither spawns nor limits shard workers.
  int shards = 1;
  bool collect_telemetry = false;
  /// Periodic gauge-sampling period (ms) applied to every telemetry
  /// bundle a trial creates; 0 (the default) leaves sampling off.
  double sample_period = 0.0;
};

struct EngineResult {
  std::uint64_t seed = 0;
  int trials = 0;
  int threads = 0;    ///< workers actually used
  double wall_ms = 0.0;
  std::map<std::string, RunningStats> series;
  std::vector<TelemetrySnapshot> telemetry;  ///< trial order

  /// The named series, or nullptr when no trial recorded into it.
  [[nodiscard]] const RunningStats* find(std::string_view name) const;
  /// Summary of the named series; a zeroed Summary (count 0) when absent.
  [[nodiscard]] Summary summary(std::string_view name) const;
};

/// Run `options.trials` independent trials of `body` and merge their
/// recorders. The body must confine all mutation to its TrialContext (and
/// RNGs seeded from ctx.seed): that is the whole determinism contract.
/// A trial that throws aborts the run; the first exception is rethrown
/// after the pool drains.
EngineResult run_trials(const EngineOptions& options,
                        const std::function<void(TrialContext&)>& body);

/// Typed key/value list for the "config" JSON object, preserving
/// insertion order so the file layout is stable.
class BenchConfig {
 public:
  void set(std::string key, double value);
  void set(std::string key, int value);
  void set(std::string key, std::int64_t value);
  void set(std::string key, bool value);
  void set(std::string key, std::string_view value);
  void set(std::string key, const char* value) {
    set(std::move(key), std::string_view(value));
  }

  [[nodiscard]] const std::vector<std::pair<std::string, std::string>>&
  entries() const noexcept {
    return entries_;
  }

 private:
  void put(std::string key, std::string rendered);
  std::vector<std::pair<std::string, std::string>> entries_;
};

/// Emit the versioned machine-readable bench report. Everything above the
/// final single-line "timing" object is a pure function of (experiment,
/// title, config, seed, trials, merged series) — byte-identical across
/// thread counts. Doubles print with shortest round-trip precision;
/// non-finite values print as null.
void write_bench_json(std::ostream& out, std::string_view experiment,
                      std::string_view title, const BenchConfig& config,
                      const EngineResult& result);

}  // namespace smrp::eval
