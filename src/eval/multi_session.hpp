// Multi-session scale driver (DESIGN.md §14): N concurrent multicast
// sessions over one topology, all routed through ONE shared RoutingOracle
// so that sessions drawing their sources from a common pool reuse each
// other's cached SPF snapshots instead of re-running Dijkstra per session.
//
// Workload model:
//   * session sizes  — Zipf over [min_session_size, max_session_size]
//                      (a few elephant sessions, a long tail of mice —
//                      the standard multicast group-size observation),
//   * churn          — per-session Poisson event count, each event a
//                      member join or leave with equal probability,
//   * sources        — drawn round-robin from a small pool (defaults to
//                      ids spread across the graph; bench_scale passes
//                      the transit-core gateways) so the oracle's
//                      per-source snapshots are shared across sessions.
//
// Engine choice per run: the full SMRP path-selection builder (one
// shortest-path search per join — faithful but superlinear in members ×
// graph size), or the SPF baseline builder (RFC 2362-style hop-toward-
// source joins off the shared source snapshot, O(path) per join) for the
// tiers where SMRP's per-join search is not the thing being measured.
// Everything is driven from one caller-provided Rng, so a (seed, params)
// pair reproduces the run bit-for-bit.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/graph.hpp"
#include "net/rng.hpp"
#include "net/routing_oracle.hpp"
#include "smrp/config.hpp"
#include "smrp/tree_builder.hpp"
#include "spf/spf_tree_builder.hpp"

namespace smrp::eval {

/// Which per-session join engine the driver runs.
enum class SessionEngine {
  kSmrp,  ///< SmrpTreeBuilder: §3.2.2 path selection + reshaping
  kSpf,   ///< SpfTreeBuilder: join along the shared source SPF snapshot
};

struct MultiSessionParams {
  int sessions = 32;
  /// Distinct sources the sessions cycle through (ignored when an
  /// explicit pool is passed to run()). Clamped to the node count.
  int source_pool = 16;
  /// Zipf(s) session sizes over [min_session_size, max_session_size]:
  /// P(size = min+k) ∝ (k+1)^-s.
  int min_session_size = 2;
  int max_session_size = 64;
  double zipf_exponent = 1.0;
  /// Mean of the per-session Poisson churn-event count; each event is a
  /// join of a fresh node or a leave of a current member (p = 1/2 each).
  double churn_events_per_session = 4.0;
  SessionEngine engine = SessionEngine::kSmrp;
  proto::SmrpConfig smrp{};
  /// Shard workers for run_seeded() (DESIGN.md §15, §16): sessions are
  /// dealt round-robin to this many workers, all routing through the
  /// driver's ONE lock-striped RoutingOracle. Session outcomes derive
  /// only from per-session RNG streams and the (deterministic) oracle
  /// answers, so every aggregate — including total oracle lookups — is
  /// byte-identical for any value; only the cache hit/miss split moves
  /// (a snapshot one worker computes is a hit for every other). Clamped
  /// to [1, sessions]; ignored by the legacy single-stream run().
  int shards = 1;
};

/// Everything the scale bench reports, all derived deterministically from
/// (topology, params, rng seed).
struct MultiSessionReport {
  int sessions = 0;
  /// Σ member_count over sessions after build + churn.
  std::int64_t aggregate_members = 0;
  std::int64_t join_ops = 0;   ///< successful joins (build + churn)
  std::int64_t leave_ops = 0;
  std::int64_t churn_events = 0;
  std::int64_t reshapes = 0;        ///< SMRP engine only
  std::int64_t fallback_joins = 0;  ///< SMRP engine only
  std::int64_t tree_links = 0;      ///< Σ links carrying some session
  double total_tree_cost = 0.0;     ///< Σ Cost_T over sessions
  /// Shared-oracle counters for the whole run; the cache-hit fraction is
  /// the "sessions share snapshots" claim, asserted by the tests.
  net::RoutingOracle::Stats oracle{};
};

/// Sample a Zipf-distributed value in [lo, hi]: P(lo+k) ∝ (k+1)^-s.
/// Exposed for tests; inverse-CDF over an O(hi-lo) table built per call
/// sequence is the driver's job, this is the one-shot reference form.
[[nodiscard]] int sample_zipf(net::Rng& rng, int lo, int hi, double exponent);

/// Sample Poisson(mean) via Knuth's product method (mean is small here).
[[nodiscard]] int sample_poisson(net::Rng& rng, double mean);

class MultiSessionDriver {
 public:
  /// The driver owns the oracle all sessions share; `g` must outlive it.
  MultiSessionDriver(const net::Graph& g, MultiSessionParams params);

  /// Build all sessions, run churn, and tear nothing down: the sessions
  /// stay live on the driver (peak-memory measurements want the full
  /// concurrent-session footprint resident). `source_pool`, when
  /// non-empty, supplies the session sources (cycled round-robin);
  /// otherwise `params.source_pool` ids evenly spread over the graph.
  MultiSessionReport run(net::Rng& rng,
                         const std::vector<net::NodeId>& source_pool = {});

  /// Sharded counterpart of run(): session i draws every random decision
  /// from its own stream (trial_seed(seed, i)), sessions are dealt
  /// round-robin to params.shards workers, and ALL workers route through
  /// the driver's shared lock-striped oracle — identical (source,
  /// exclusion) snapshots are computed once run-wide, not once per
  /// worker. All deterministic aggregates (members, joins, links, costs,
  /// oracle lookups) are byte-identical for any shard count — only the
  /// hit/miss split varies with scheduling. One driver runs exactly once
  /// (run() or run_seeded()).
  MultiSessionReport run_seeded(std::uint64_t seed,
                                const std::vector<net::NodeId>& source_pool = {});

  [[nodiscard]] net::RoutingOracle& oracle() noexcept { return oracle_; }
  [[nodiscard]] const MultiSessionParams& params() const noexcept {
    return params_;
  }
  [[nodiscard]] int session_count() const noexcept {
    return static_cast<int>(sessions_.size());
  }
  /// The session's tree, for validation in tests.
  [[nodiscard]] const mcast::MulticastTree& session_tree(int i) const;

 private:
  /// One live session under either engine.
  struct Session {
    std::unique_ptr<proto::SmrpTreeBuilder> smrp;
    std::unique_ptr<baseline::SpfTreeBuilder> spf;
    std::vector<net::NodeId> members;  ///< join order, for leave sampling
  };

  [[nodiscard]] bool try_join(Session& s, net::NodeId member,
                              MultiSessionReport& report);
  void leave(Session& s, std::size_t member_index,
             MultiSessionReport& report);
  /// Resolve the effective source pool (caller list or evenly spread ids).
  [[nodiscard]] std::vector<net::NodeId> resolve_pool(
      const std::vector<net::NodeId>& source_pool) const;
  /// Instantiate one session (engine + Zipf-sized build) and churn it,
  /// recording into `report` only — the sharded workers' unit of work.
  void build_and_churn(Session& s, net::NodeId source, net::Rng& rng,
                       net::RoutingOracle* oracle, MultiSessionReport& report);
  /// Fold the per-shard partial reports, the resident session state, and
  /// the shared oracle's counters into report_ (deterministic order:
  /// shard index, then session index).
  MultiSessionReport finalize(std::vector<MultiSessionReport> partials);

  const net::Graph* g_;
  MultiSessionParams params_;
  net::RoutingOracle oracle_;  ///< shared by run() and every run_seeded worker
  std::vector<Session> sessions_;
  std::vector<double> zipf_cdf_;  ///< cumulative, built once per driver
  MultiSessionReport report_;
};

}  // namespace smrp::eval
