// Fixed-width ASCII table rendering for the bench binaries, so every
// figure's data prints as the same kind of self-describing block.
#pragma once

#include <string>
#include <vector>

namespace smrp::eval {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append one row; cell count must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Render with aligned columns, a header rule, and a trailing newline.
  [[nodiscard]] std::string render() const;

  /// Format helpers used by the benches.
  static std::string fixed(double value, int decimals = 3);
  static std::string percent(double fraction, int decimals = 1);
  static std::string with_ci(double mean, double ci_half, int decimals = 3);
  static std::string percent_with_ci(double mean, double ci_half,
                                     int decimals = 1);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace smrp::eval
