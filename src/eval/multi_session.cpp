#include "eval/multi_session.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <thread>

#include "eval/engine.hpp"

namespace smrp::eval {

int sample_zipf(net::Rng& rng, int lo, int hi, double exponent) {
  if (lo > hi) throw std::invalid_argument("sample_zipf: lo > hi");
  const int n = hi - lo + 1;
  double total = 0.0;
  for (int k = 0; k < n; ++k) {
    total += std::pow(static_cast<double>(k + 1), -exponent);
  }
  double target = rng.uniform() * total;
  for (int k = 0; k < n; ++k) {
    target -= std::pow(static_cast<double>(k + 1), -exponent);
    if (target <= 0.0) return lo + k;
  }
  return hi;
}

int sample_poisson(net::Rng& rng, double mean) {
  if (mean <= 0.0) return 0;
  // Knuth's product method: fine for the small means used here (the loop
  // runs mean+O(√mean) times).
  const double limit = std::exp(-mean);
  int k = 0;
  double product = 1.0;
  do {
    ++k;
    product *= rng.uniform();
  } while (product > limit);
  return k - 1;
}

MultiSessionDriver::MultiSessionDriver(const net::Graph& g,
                                       MultiSessionParams params)
    : g_(&g), params_(params), oracle_(g) {
  if (params_.sessions < 1) {
    throw std::invalid_argument("MultiSessionParams.sessions must be >= 1");
  }
  if (params_.min_session_size < 1 ||
      params_.max_session_size < params_.min_session_size) {
    throw std::invalid_argument("bad session size range");
  }
  // One inverse-CDF table shared by every size draw.
  const int n = params_.max_session_size - params_.min_session_size + 1;
  zipf_cdf_.reserve(static_cast<std::size_t>(n));
  double total = 0.0;
  for (int k = 0; k < n; ++k) {
    total += std::pow(static_cast<double>(k + 1), -params_.zipf_exponent);
    zipf_cdf_.push_back(total);
  }
}

const mcast::MulticastTree& MultiSessionDriver::session_tree(int i) const {
  const Session& s = sessions_.at(static_cast<std::size_t>(i));
  return s.smrp ? s.smrp->tree() : s.spf->tree();
}

bool MultiSessionDriver::try_join(Session& s, net::NodeId member,
                                  MultiSessionReport& report) {
  const mcast::MulticastTree& tree = s.smrp ? s.smrp->tree() : s.spf->tree();
  if (member == tree.source() || tree.is_member(member)) return false;
  bool joined = false;
  if (s.smrp) {
    const proto::JoinOutcome out = s.smrp->join(member);
    joined = out.joined;
    if (out.used_fallback) ++report.fallback_joins;
    report.reshapes += out.reshapes_triggered;
  } else {
    joined = s.spf->join(member);
  }
  if (joined) {
    s.members.push_back(member);
    ++report.join_ops;
  }
  return joined;
}

void MultiSessionDriver::leave(Session& s, std::size_t member_index,
                               MultiSessionReport& report) {
  const net::NodeId member = s.members[member_index];
  if (s.smrp) {
    s.smrp->leave(member);
  } else {
    s.spf->leave(member);
  }
  s.members.erase(s.members.begin() +
                  static_cast<std::ptrdiff_t>(member_index));
  ++report.leave_ops;
}

std::vector<net::NodeId> MultiSessionDriver::resolve_pool(
    const std::vector<net::NodeId>& source_pool) const {
  if (!source_pool.empty()) return source_pool;
  const net::NodeId node_count = g_->node_count();
  const int want = std::min<int>(std::max(params_.source_pool, 1), node_count);
  std::vector<net::NodeId> pool;
  pool.reserve(static_cast<std::size_t>(want));
  for (int i = 0; i < want; ++i) {
    pool.push_back(static_cast<net::NodeId>(
        (static_cast<std::int64_t>(i) * node_count) / want));
  }
  return pool;
}

void MultiSessionDriver::build_and_churn(Session& s, net::NodeId source,
                                         net::Rng& rng,
                                         net::RoutingOracle* oracle,
                                         MultiSessionReport& report) {
  const net::NodeId node_count = g_->node_count();
  if (params_.engine == SessionEngine::kSmrp) {
    s.smrp = std::make_unique<proto::SmrpTreeBuilder>(*g_, source,
                                                      params_.smrp, oracle);
  } else {
    s.spf = std::make_unique<baseline::SpfTreeBuilder>(*g_, source, oracle);
  }
  // Zipf size via the shared CDF table.
  const double target = rng.uniform() * zipf_cdf_.back();
  int size = params_.min_session_size;
  for (std::size_t k = 0; k < zipf_cdf_.size(); ++k) {
    if (zipf_cdf_[k] >= target) {
      size = params_.min_session_size + static_cast<int>(k);
      break;
    }
  }
  int joined = 0;
  // Random distinct members; bounded retries so a tiny graph cannot
  // stall the build when the session size nears the node count.
  for (int attempt = 0; joined < size && attempt < 4 * size + 16; ++attempt) {
    const auto member = static_cast<net::NodeId>(
        rng.below(static_cast<std::uint64_t>(node_count)));
    if (try_join(s, member, report)) ++joined;
  }
  // Churn straight after the build, all off this session's own stream.
  const int events = sample_poisson(rng, params_.churn_events_per_session);
  for (int e = 0; e < events; ++e) {
    ++report.churn_events;
    const bool do_join = s.members.empty() || rng.uniform() < 0.5;
    if (do_join) {
      const auto member = static_cast<net::NodeId>(
          rng.below(static_cast<std::uint64_t>(node_count)));
      static_cast<void>(try_join(s, member, report));
    } else {
      leave(s, rng.below(s.members.size()), report);
    }
  }
}

MultiSessionReport MultiSessionDriver::finalize(
    std::vector<MultiSessionReport> partials) {
  report_ = MultiSessionReport{};
  report_.sessions = params_.sessions;
  for (const MultiSessionReport& p : partials) {
    report_.join_ops += p.join_ops;
    report_.leave_ops += p.leave_ops;
    report_.churn_events += p.churn_events;
    report_.reshapes += p.reshapes;
    report_.fallback_joins += p.fallback_joins;
  }
  for (const Session& s : sessions_) {
    const mcast::MulticastTree& tree =
        s.smrp ? s.smrp->tree() : s.spf->tree();
    report_.aggregate_members += tree.member_count();
    report_.tree_links += static_cast<std::int64_t>(tree.tree_links().size());
    report_.total_tree_cost += tree.total_cost();
  }
  report_.oracle += oracle_.stats();
  return report_;
}

MultiSessionReport MultiSessionDriver::run_seeded(
    std::uint64_t seed, const std::vector<net::NodeId>& source_pool) {
  if (!sessions_.empty()) {
    throw std::logic_error("MultiSessionDriver::run called twice");
  }
  if (g_->node_count() < 2) throw std::invalid_argument("graph too small");
  const std::vector<net::NodeId> pool = resolve_pool(source_pool);

  const int shards = std::clamp(params_.shards, 1, params_.sessions);
  sessions_.resize(static_cast<std::size_t>(params_.sessions));

  std::vector<MultiSessionReport> partials(
      static_cast<std::size_t>(shards));
  auto worker = [&](int w) {
    MultiSessionReport& local = partials[static_cast<std::size_t>(w)];
    // Round-robin deal: session i belongs to worker i % shards, and its
    // entire random stream is trial_seed(seed, i) — ownership, worker
    // count, and completion order leave no trace in the outcome. Every
    // worker routes through the driver's one lock-striped oracle, so an
    // SPF snapshot is computed once run-wide no matter which worker
    // needs it first (DESIGN.md §16).
    for (int i = w; i < params_.sessions; i += shards) {
      net::Rng rng(trial_seed(seed, i));
      build_and_churn(sessions_[static_cast<std::size_t>(i)],
                      pool[static_cast<std::size_t>(i) % pool.size()], rng,
                      &oracle_, local);
    }
  };

  if (shards == 1) {
    worker(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(shards));
    for (int w = 0; w < shards; ++w) threads.emplace_back(worker, w);
    for (std::thread& t : threads) t.join();
  }
  return finalize(std::move(partials));
}

MultiSessionReport MultiSessionDriver::run(
    net::Rng& rng, const std::vector<net::NodeId>& source_pool) {
  if (!sessions_.empty()) {
    throw std::logic_error("MultiSessionDriver::run called twice");
  }
  const net::NodeId node_count = g_->node_count();
  if (node_count < 2) throw std::invalid_argument("graph too small");
  const std::vector<net::NodeId> pool = resolve_pool(source_pool);

  report_ = MultiSessionReport{};
  report_.sessions = params_.sessions;
  sessions_.resize(static_cast<std::size_t>(params_.sessions));

  // Build phase: instantiate every session at its Zipf size.
  for (int i = 0; i < params_.sessions; ++i) {
    Session& s = sessions_[static_cast<std::size_t>(i)];
    const net::NodeId source = pool[static_cast<std::size_t>(i) % pool.size()];
    if (params_.engine == SessionEngine::kSmrp) {
      s.smrp = std::make_unique<proto::SmrpTreeBuilder>(*g_, source,
                                                        params_.smrp, &oracle_);
    } else {
      s.spf = std::make_unique<baseline::SpfTreeBuilder>(*g_, source, &oracle_);
    }
    // Zipf size via the shared CDF table.
    const double target = rng.uniform() * zipf_cdf_.back();
    int size = params_.min_session_size;
    for (std::size_t k = 0; k < zipf_cdf_.size(); ++k) {
      if (zipf_cdf_[k] >= target) {
        size = params_.min_session_size + static_cast<int>(k);
        break;
      }
    }
    int joined = 0;
    // Random distinct members; bounded retries so a tiny graph cannot
    // stall the build when the session size nears the node count.
    for (int attempt = 0; joined < size && attempt < 4 * size + 16;
         ++attempt) {
      const auto member = static_cast<net::NodeId>(
          rng.below(static_cast<std::uint64_t>(node_count)));
      if (try_join(s, member, report_)) ++joined;
    }
  }

  // Churn phase: independent Poisson event counts per session.
  for (Session& s : sessions_) {
    const int events = sample_poisson(rng, params_.churn_events_per_session);
    for (int e = 0; e < events; ++e) {
      ++report_.churn_events;
      const bool do_join = s.members.empty() || rng.uniform() < 0.5;
      if (do_join) {
        const auto member = static_cast<net::NodeId>(
            rng.below(static_cast<std::uint64_t>(node_count)));
        static_cast<void>(try_join(s, member, report_));
      } else {
        leave(s, rng.below(s.members.size()), report_);
      }
    }
  }

  // Aggregate the resident state.
  for (const Session& s : sessions_) {
    const mcast::MulticastTree& tree =
        s.smrp ? s.smrp->tree() : s.spf->tree();
    report_.aggregate_members += tree.member_count();
    report_.tree_links += static_cast<std::int64_t>(tree.tree_links().size());
    report_.total_tree_cost += tree.total_cost();
  }
  report_.oracle = oracle_.stats();
  return report_;
}

}  // namespace smrp::eval
