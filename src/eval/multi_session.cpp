#include "eval/multi_session.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace smrp::eval {

int sample_zipf(net::Rng& rng, int lo, int hi, double exponent) {
  if (lo > hi) throw std::invalid_argument("sample_zipf: lo > hi");
  const int n = hi - lo + 1;
  double total = 0.0;
  for (int k = 0; k < n; ++k) {
    total += std::pow(static_cast<double>(k + 1), -exponent);
  }
  double target = rng.uniform() * total;
  for (int k = 0; k < n; ++k) {
    target -= std::pow(static_cast<double>(k + 1), -exponent);
    if (target <= 0.0) return lo + k;
  }
  return hi;
}

int sample_poisson(net::Rng& rng, double mean) {
  if (mean <= 0.0) return 0;
  // Knuth's product method: fine for the small means used here (the loop
  // runs mean+O(√mean) times).
  const double limit = std::exp(-mean);
  int k = 0;
  double product = 1.0;
  do {
    ++k;
    product *= rng.uniform();
  } while (product > limit);
  return k - 1;
}

MultiSessionDriver::MultiSessionDriver(const net::Graph& g,
                                       MultiSessionParams params)
    : g_(&g), params_(params), oracle_(g) {
  if (params_.sessions < 1) {
    throw std::invalid_argument("MultiSessionParams.sessions must be >= 1");
  }
  if (params_.min_session_size < 1 ||
      params_.max_session_size < params_.min_session_size) {
    throw std::invalid_argument("bad session size range");
  }
  // One inverse-CDF table shared by every size draw.
  const int n = params_.max_session_size - params_.min_session_size + 1;
  zipf_cdf_.reserve(static_cast<std::size_t>(n));
  double total = 0.0;
  for (int k = 0; k < n; ++k) {
    total += std::pow(static_cast<double>(k + 1), -params_.zipf_exponent);
    zipf_cdf_.push_back(total);
  }
}

const mcast::MulticastTree& MultiSessionDriver::session_tree(int i) const {
  const Session& s = sessions_.at(static_cast<std::size_t>(i));
  return s.smrp ? s.smrp->tree() : s.spf->tree();
}

bool MultiSessionDriver::try_join(Session& s, net::NodeId member) {
  const mcast::MulticastTree& tree = s.smrp ? s.smrp->tree() : s.spf->tree();
  if (member == tree.source() || tree.is_member(member)) return false;
  bool joined = false;
  if (s.smrp) {
    const proto::JoinOutcome out = s.smrp->join(member);
    joined = out.joined;
    if (out.used_fallback) ++report_.fallback_joins;
    report_.reshapes += out.reshapes_triggered;
  } else {
    joined = s.spf->join(member);
  }
  if (joined) {
    s.members.push_back(member);
    ++report_.join_ops;
  }
  return joined;
}

void MultiSessionDriver::leave(Session& s, std::size_t member_index) {
  const net::NodeId member = s.members[member_index];
  if (s.smrp) {
    s.smrp->leave(member);
  } else {
    s.spf->leave(member);
  }
  s.members.erase(s.members.begin() +
                  static_cast<std::ptrdiff_t>(member_index));
  ++report_.leave_ops;
}

MultiSessionReport MultiSessionDriver::run(
    net::Rng& rng, const std::vector<net::NodeId>& source_pool) {
  if (!sessions_.empty()) {
    throw std::logic_error("MultiSessionDriver::run called twice");
  }
  const net::NodeId node_count = g_->node_count();
  if (node_count < 2) throw std::invalid_argument("graph too small");

  // Resolve the source pool: caller's list, or ids evenly spread.
  std::vector<net::NodeId> pool = source_pool;
  if (pool.empty()) {
    const int want =
        std::min<int>(std::max(params_.source_pool, 1), node_count);
    pool.reserve(static_cast<std::size_t>(want));
    for (int i = 0; i < want; ++i) {
      pool.push_back(static_cast<net::NodeId>(
          (static_cast<std::int64_t>(i) * node_count) / want));
    }
  }

  report_ = MultiSessionReport{};
  report_.sessions = params_.sessions;
  sessions_.resize(static_cast<std::size_t>(params_.sessions));

  // Build phase: instantiate every session at its Zipf size.
  for (int i = 0; i < params_.sessions; ++i) {
    Session& s = sessions_[static_cast<std::size_t>(i)];
    const net::NodeId source = pool[static_cast<std::size_t>(i) % pool.size()];
    if (params_.engine == SessionEngine::kSmrp) {
      s.smrp = std::make_unique<proto::SmrpTreeBuilder>(*g_, source,
                                                        params_.smrp, &oracle_);
    } else {
      s.spf = std::make_unique<baseline::SpfTreeBuilder>(*g_, source, &oracle_);
    }
    // Zipf size via the shared CDF table.
    const double target = rng.uniform() * zipf_cdf_.back();
    int size = params_.min_session_size;
    for (std::size_t k = 0; k < zipf_cdf_.size(); ++k) {
      if (zipf_cdf_[k] >= target) {
        size = params_.min_session_size + static_cast<int>(k);
        break;
      }
    }
    int joined = 0;
    // Random distinct members; bounded retries so a tiny graph cannot
    // stall the build when the session size nears the node count.
    for (int attempt = 0; joined < size && attempt < 4 * size + 16;
         ++attempt) {
      const auto member = static_cast<net::NodeId>(
          rng.below(static_cast<std::uint64_t>(node_count)));
      if (try_join(s, member)) ++joined;
    }
  }

  // Churn phase: independent Poisson event counts per session.
  for (Session& s : sessions_) {
    const int events = sample_poisson(rng, params_.churn_events_per_session);
    for (int e = 0; e < events; ++e) {
      ++report_.churn_events;
      const bool do_join = s.members.empty() || rng.uniform() < 0.5;
      if (do_join) {
        const auto member = static_cast<net::NodeId>(
            rng.below(static_cast<std::uint64_t>(node_count)));
        try_join(s, member);
      } else {
        leave(s, rng.below(s.members.size()));
      }
    }
  }

  // Aggregate the resident state.
  for (const Session& s : sessions_) {
    const mcast::MulticastTree& tree =
        s.smrp ? s.smrp->tree() : s.spf->tree();
    report_.aggregate_members += tree.member_count();
    report_.tree_links += static_cast<std::int64_t>(tree.tree_links().size());
    report_.total_tree_cost += tree.total_cost();
  }
  report_.oracle = oracle_.stats();
  return report_;
}

}  // namespace smrp::eval
