#include "eval/failure_sequence.hpp"

#include <algorithm>
#include <set>

#include "smrp/recovery.hpp"
#include "smrp/tree_builder.hpp"
#include "spf/spf_tree_builder.hpp"

namespace smrp::eval {

namespace {

double mean_member_delay(const mcast::MulticastTree& tree) {
  const auto members = tree.members();
  if (members.empty()) return 0.0;
  double total = 0.0;
  for (const net::NodeId m : members) total += tree.delay_to_source(m);
  return total / static_cast<double>(members.size());
}

}  // namespace

FailureSequenceResult run_failure_sequence(const FailureSequenceParams& p,
                                           net::Rng& rng) {
  net::WaxmanParams wax;
  wax.node_count = p.scenario.node_count;
  wax.alpha = p.scenario.alpha;
  wax.beta = p.scenario.beta;
  const net::Graph g = net::waxman_graph(wax, rng);

  const auto source = static_cast<net::NodeId>(
      rng.below(static_cast<std::uint64_t>(g.node_count())));
  const std::vector<net::NodeId> members =
      pick_members(g, source, p.scenario.group_size, rng);

  // One oracle for the whole sequence: each step's exclusion set is the
  // previous one plus the new victim, so the kGlobal per-member SPFs are
  // served by incremental repair of the step before's cached trees.
  net::RoutingOracle oracle(g);
  proto::SmrpTreeBuilder smrp_builder(g, source, p.scenario.smrp, &oracle);
  baseline::SpfTreeBuilder spf_builder(g, source, &oracle);
  for (const net::NodeId m : members) {
    smrp_builder.join(m);
    spf_builder.join(m);
  }
  mcast::MulticastTree smrp_tree = smrp_builder.tree();
  mcast::MulticastTree spf_tree = spf_builder.tree();

  FailureSequenceResult result;
  net::ExclusionSet dead(g);
  std::set<net::LinkId> dead_links;

  for (int step = 0; step < p.failures; ++step) {
    // Draw the next casualty from the links currently carrying traffic.
    std::set<net::LinkId> carrying;
    for (const net::LinkId l : smrp_tree.tree_links()) carrying.insert(l);
    for (const net::LinkId l : spf_tree.tree_links()) carrying.insert(l);
    for (const net::LinkId l : dead_links) carrying.erase(l);
    if (carrying.empty()) break;
    std::vector<net::LinkId> pool(carrying.begin(), carrying.end());
    const net::LinkId victim =
        pool[static_cast<std::size_t>(rng.below(pool.size()))];

    FailureStep record;
    record.failed_link = victim;

    const auto failure = proto::Failure::of_link(victim);
    const proto::SessionRepairReport smrp_report =
        proto::repair_session(g, smrp_tree, failure, proto::DetourPolicy::kLocal,
                              &dead, nullptr, &oracle);
    const proto::SessionRepairReport spf_report =
        proto::repair_session(g, spf_tree, failure,
                              proto::DetourPolicy::kGlobal, &dead, nullptr,
                              &oracle);

    dead.ban_link(victim);
    dead_links.insert(victim);

    record.lost_smrp = smrp_report.disconnected_members;
    record.lost_spf = spf_report.disconnected_members;
    record.rd_smrp = smrp_report.total_recovery_distance;
    record.rd_spf = spf_report.total_recovery_distance;
    record.unrecoverable_smrp = smrp_report.unrecoverable_members;
    record.unrecoverable_spf = spf_report.unrecoverable_members;
    record.mean_delay_smrp = mean_member_delay(smrp_tree);
    record.mean_delay_spf = mean_member_delay(spf_tree);
    result.total_rd_smrp += record.rd_smrp;
    result.total_rd_spf += record.rd_spf;
    result.steps.push_back(record);

    smrp_tree.validate();
    spf_tree.validate();
  }
  result.final_members_smrp = smrp_tree.member_count();
  result.final_members_spf = spf_tree.member_count();
  return result;
}

}  // namespace smrp::eval
