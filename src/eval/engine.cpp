#include "eval/engine.hpp"

#include <atomic>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <exception>
#include <limits>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <thread>

#include "net/rng.hpp"

namespace smrp::eval {

std::uint64_t trial_seed(std::uint64_t bench_seed, int trial) {
  // Offset the splitmix state by trial · γ (the same golden-ratio gamma
  // splitmix itself steps by), then mix once. Nearby bench seeds and
  // nearby trial indices land in unrelated streams.
  std::uint64_t state =
      bench_seed + static_cast<std::uint64_t>(trial) * 0x9e3779b97f4a7c15ULL;
  return net::splitmix64(state);
}

void TrialRecorder::add(std::string_view name, double value) {
  series(name).add(value);
}

RunningStats& TrialRecorder::series(std::string_view name) {
  const auto it = series_.find(name);
  if (it != series_.end()) return it->second;
  return series_.emplace(std::string(name), RunningStats{}).first->second;
}

obs::Telemetry* TrialRecorder::telemetry(std::string label) {
  if (!collect_telemetry_) return nullptr;
  TelemetrySnapshot& slot = telemetry_.emplace_back();
  slot.label = std::move(label);
  slot.telemetry = std::make_unique<obs::Telemetry>();
  if (sample_period_ > 0.0) slot.telemetry->enable_sampling(sample_period_);
  return slot.telemetry.get();
}

void TrialRecorder::close_telemetry(obs::Telemetry* t, double now) {
  if (t == nullptr) return;
  for (TelemetrySnapshot& slot : telemetry_) {
    if (slot.telemetry.get() == t) {
      slot.now = now;
      t->finish(now);
      return;
    }
  }
  throw std::invalid_argument(
      "close_telemetry: bundle does not belong to this recorder");
}

/// Private bridge into TrialRecorder for the engine itself.
struct EngineAccess {
  static void enable_telemetry(TrialRecorder& r, double sample_period) {
    r.collect_telemetry_ = true;
    r.sample_period_ = sample_period;
  }
  static void fold(EngineResult& out, TrialRecorder& r) {
    for (auto& [name, stats] : r.series_) {
      out.series[name].merge(stats);
    }
    for (TelemetrySnapshot& snap : r.telemetry_) {
      out.telemetry.push_back(std::move(snap));
    }
  }
};

const RunningStats* EngineResult::find(std::string_view name) const {
  // std::map<std::string, ...> without std::less<>: materialize the key.
  const auto it = series.find(std::string(name));
  return it == series.end() ? nullptr : &it->second;
}

Summary EngineResult::summary(std::string_view name) const {
  const RunningStats* s = find(name);
  return s != nullptr ? s->summary() : Summary{};
}

EngineResult run_trials(const EngineOptions& options,
                        const std::function<void(TrialContext&)>& body) {
  if (options.trials < 0) {
    throw std::invalid_argument("run_trials: negative trial count");
  }
  int threads = options.threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  if (threads > options.trials) threads = options.trials;
  if (threads < 1) threads = 1;

  std::vector<TrialRecorder> recorders(
      static_cast<std::size_t>(options.trials));
  if (options.collect_telemetry) {
    for (TrialRecorder& r : recorders) {
      EngineAccess::enable_telemetry(r, options.sample_period);
    }
  }

  const auto t0 = std::chrono::steady_clock::now();

  // Work-stealing by atomic counter: workers claim the next unclaimed
  // trial index. Which worker runs which trial is scheduling noise; the
  // per-trial recorders and the in-order fold below erase it.
  std::atomic<int> next{0};
  std::mutex failure_mutex;
  std::exception_ptr failure;

  const auto worker = [&]() {
    while (true) {
      const int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= options.trials) return;
      TrialContext ctx{i, trial_seed(options.seed, i),
                       options.shards < 1 ? 1 : options.shards,
                       recorders[static_cast<std::size_t>(i)]};
      try {
        body(ctx);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(failure_mutex);
        if (!failure) failure = std::current_exception();
        // Drain the remaining trials so every worker exits promptly.
        next.store(options.trials, std::memory_order_relaxed);
        return;
      }
    }
  };

  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  if (failure) std::rethrow_exception(failure);

  const auto t1 = std::chrono::steady_clock::now();

  EngineResult result;
  result.seed = options.seed;
  result.trials = options.trials;
  result.threads = threads;
  result.wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  for (TrialRecorder& r : recorders) EngineAccess::fold(result, r);
  return result;
}

// ---------------------------------------------------------------------------
// JSON emission

namespace {

/// Shortest round-trip decimal form (std::to_chars); non-finite values
/// become null, which JSON can actually carry.
std::string render_double(double value) {
  if (value != value || value == std::numeric_limits<double>::infinity() ||
      value == -std::numeric_limits<double>::infinity()) {
    return "null";
  }
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, value);
  if (ec != std::errc{}) return "null";
  return std::string(buf, ptr);
}

std::string render_string(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char esc[8];
          std::snprintf(esc, sizeof esc, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += esc;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace

void BenchConfig::put(std::string key, std::string rendered) {
  for (auto& [k, v] : entries_) {
    if (k == key) {
      v = std::move(rendered);
      return;
    }
  }
  entries_.emplace_back(std::move(key), std::move(rendered));
}

void BenchConfig::set(std::string key, double value) {
  put(std::move(key), render_double(value));
}
void BenchConfig::set(std::string key, int value) {
  put(std::move(key), std::to_string(value));
}
void BenchConfig::set(std::string key, std::int64_t value) {
  put(std::move(key), std::to_string(value));
}
void BenchConfig::set(std::string key, bool value) {
  put(std::move(key), value ? "true" : "false");
}
void BenchConfig::set(std::string key, std::string_view value) {
  put(std::move(key), render_string(value));
}

void write_bench_json(std::ostream& out, std::string_view experiment,
                      std::string_view title, const BenchConfig& config,
                      const EngineResult& result) {
  out << "{\n";
  out << "  \"schema\": " << render_string(kBenchJsonSchema) << ",\n";
  out << "  \"experiment\": " << render_string(experiment) << ",\n";
  out << "  \"title\": " << render_string(title) << ",\n";
  out << "  \"seed\": " << result.seed << ",\n";
  out << "  \"trials\": " << result.trials << ",\n";

  out << "  \"config\": {";
  bool first = true;
  for (const auto& [key, rendered] : config.entries()) {
    if (!first) out << ", ";
    first = false;
    out << render_string(key) << ": " << rendered;
  }
  out << "},\n";

  out << "  \"series\": {";
  first = true;
  for (const auto& [name, stats] : result.series) {
    if (!first) out << ",";
    first = false;
    const Summary s = stats.summary();
    out << "\n    " << render_string(name) << ": {"
        << "\"count\": " << s.count
        << ", \"sum\": " << render_double(stats.sum())
        << ", \"mean\": " << render_double(s.mean)
        << ", \"stddev\": " << render_double(s.stddev)
        << ", \"ci95_half\": " << render_double(s.ci95_half)
        << ", \"min\": " << render_double(s.min)
        << ", \"max\": " << render_double(s.max)
        << ", \"p50\": " << render_double(stats.percentile(0.50))
        << ", \"p90\": " << render_double(stats.percentile(0.90))
        << ", \"p99\": " << render_double(stats.percentile(0.99)) << "}";
  }
  out << "\n  },\n";

  // The one thread-count-dependent line, kept to a single line at the end
  // so determinism checks can strip it (grep -v '"timing"') and compare
  // the rest byte for byte.
  const double secs = result.wall_ms / 1000.0;
  const double rate = secs > 0.0 ? result.trials / secs : 0.0;
  out << "  \"timing\": {\"threads\": " << result.threads
      << ", \"wall_ms\": " << render_double(result.wall_ms)
      << ", \"trials_per_sec\": " << render_double(rate) << "}\n";
  out << "}\n";
}

}  // namespace smrp::eval
