#include "eval/script.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "net/random_graphs.hpp"
#include "net/waxman.hpp"
#include "obs/expect/checker.hpp"
#include "obs/jsonl.hpp"
#include "sim/fault_injection.hpp"
#include "smrp/harness.hpp"
#include "smrp/invariants.hpp"

namespace smrp::eval {

namespace {

[[noreturn]] void fail(int line, const std::string& what) {
  throw std::invalid_argument("scenario line " + std::to_string(line) + ": " +
                              what);
}

/// Parse "key=value" settings after a topology keyword.
std::map<std::string, double> parse_settings(std::istringstream& in,
                                             int line) {
  std::map<std::string, double> out;
  std::string token;
  while (in >> token) {
    const auto eq = token.find('=');
    if (eq == std::string::npos) fail(line, "expected key=value: " + token);
    try {
      out[token.substr(0, eq)] = std::stod(token.substr(eq + 1));
    } catch (const std::exception&) {
      fail(line, "bad numeric value in " + token);
    }
  }
  return out;
}

double take(std::map<std::string, double>& settings, const std::string& key,
            double fallback) {
  const auto it = settings.find(key);
  if (it == settings.end()) return fallback;
  const double v = it->second;
  settings.erase(it);
  return v;
}

}  // namespace

ScenarioScript ScenarioScript::parse(std::istream& in) {
  ScenarioScript script;
  bool saw_run = false;
  std::string raw;
  int line = 0;
  while (std::getline(in, raw)) {
    ++line;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    std::istringstream tokens(raw);
    std::string command;
    if (!(tokens >> command)) continue;  // blank/comment line

    if (command == "topology") {
      std::string model;
      if (!(tokens >> model)) fail(line, "topology needs a model");
      auto settings = parse_settings(tokens, line);
      script.node_count_ = static_cast<int>(take(settings, "n", 60));
      script.seed_ = static_cast<std::uint64_t>(take(settings, "seed", 1));
      if (model == "waxman") {
        script.topology_ = Topology::kWaxman;
        script.alpha_ = take(settings, "alpha", 0.2);
        script.beta_ = take(settings, "beta", 0.3);
      } else if (model == "erdos") {
        script.topology_ = Topology::kErdosRenyi;
        script.degree_ = take(settings, "degree", 6.0);
      } else if (model == "ba") {
        script.topology_ = Topology::kBarabasiAlbert;
        script.ba_m_ = static_cast<int>(take(settings, "m", 2));
      } else {
        fail(line, "unknown topology model: " + model);
      }
      if (!settings.empty()) {
        fail(line, "unknown setting: " + settings.begin()->first);
      }
    } else if (command == "mode") {
      std::string mode;
      if (!(tokens >> mode)) fail(line, "mode needs smrp|pim");
      if (mode == "smrp") {
        script.session_.mode = proto::SessionConfig::Mode::kSmrp;
      } else if (mode == "pim") {
        script.session_.mode = proto::SessionConfig::Mode::kPimSpf;
      } else {
        fail(line, "unknown mode: " + mode);
      }
    } else if (command == "dthresh") {
      if (!(tokens >> script.session_.smrp.d_thresh)) {
        fail(line, "dthresh needs a number");
      }
    } else if (command == "source") {
      if (!(tokens >> script.source_)) fail(line, "source needs a node id");
    } else if (command == "at") {
      ScriptEvent event;
      std::string action;
      if (!(tokens >> event.at >> action)) {
        fail(line, "at needs a time and an action");
      }
      if (event.at < 0) fail(line, "negative time");
      if (action == "join" || action == "leave" || action == "fail-node" ||
          action == "restore-node") {
        if (!(tokens >> event.a)) fail(line, action + " needs a node id");
        event.kind = action == "join"        ? ScriptEvent::Kind::kJoin
                     : action == "leave"     ? ScriptEvent::Kind::kLeave
                     : action == "fail-node" ? ScriptEvent::Kind::kFailNode
                                             : ScriptEvent::Kind::kRestoreNode;
      } else if (action == "fail-link" || action == "restore-link") {
        if (!(tokens >> event.a >> event.b)) {
          fail(line, action + " needs two node ids");
        }
        event.kind = action == "fail-link" ? ScriptEvent::Kind::kFailLink
                                           : ScriptEvent::Kind::kRestoreLink;
      } else if (action == "flap-link") {
        if (!(tokens >> event.a >> event.b >> event.hold)) {
          fail(line, "flap-link needs two node ids and a hold time");
        }
        if (event.hold <= 0) fail(line, "flap-link hold must be positive");
        event.kind = ScriptEvent::Kind::kFlapLink;
      } else if (action == "crash-node") {
        if (!(tokens >> event.a >> event.hold)) {
          fail(line, "crash-node needs a node id and a downtime");
        }
        if (event.hold <= 0) fail(line, "crash-node downtime must be positive");
        event.kind = ScriptEvent::Kind::kCrashRestart;
      } else if (action == "loss-burst") {
        if (!(tokens >> event.hold >> event.loss)) {
          fail(line, "loss-burst needs a duration and a probability");
        }
        tokens >> event.base_loss;  // optional restore level
        if (event.hold <= 0) fail(line, "loss-burst duration must be positive");
        if (event.loss < 0 || event.loss > 1 || event.base_loss < 0 ||
            event.base_loss > 1) {
          fail(line, "loss probabilities must be in [0, 1]");
        }
        event.kind = ScriptEvent::Kind::kLossBurst;
      } else if (action == "srlg-cut") {
        if (!(tokens >> event.srlg)) {
          fail(line, "srlg-cut needs a group name");
        }
        tokens >> event.hold;  // optional heal time; 0 = permanent
        if (event.hold < 0) fail(line, "srlg-cut heal time must be >= 0");
        event.kind = ScriptEvent::Kind::kSrlgCut;
      } else if (action == "audit") {
        event.kind = ScriptEvent::Kind::kAudit;
      } else if (action == "report") {
        event.kind = ScriptEvent::Kind::kReport;
      } else if (action == "stats") {
        event.kind = ScriptEvent::Kind::kStats;
      } else {
        fail(line, "unknown action: " + action);
      }
      script.events_.push_back(event);
    } else if (command == "trace-out") {
      if (!(tokens >> script.trace_path_)) {
        fail(line, "trace-out needs a file path");
      }
    } else if (command == "expect") {
      if (!(tokens >> script.expect_rules_)) {
        fail(line, "expect needs `core` or a rule-file path");
      }
    } else if (command == "sample-every") {
      if (!(tokens >> script.sample_period_) || script.sample_period_ <= 0) {
        fail(line, "sample-every needs a positive period (ms)");
      }
    } else if (command == "srlg") {
      std::string name;
      if (!(tokens >> name)) fail(line, "srlg needs a group name");
      if (script.srlgs_.count(name) != 0) {
        fail(line, "duplicate srlg group: " + name);
      }
      auto& group = script.srlgs_[name];
      std::string pair;
      while (tokens >> pair) {
        const auto dash = pair.find('-');
        if (dash == std::string::npos || dash == 0 ||
            dash + 1 >= pair.size()) {
          fail(line, "srlg links are endpoint pairs like 0-5, got: " + pair);
        }
        try {
          group.emplace_back(std::stoll(pair.substr(0, dash)),
                             std::stoll(pair.substr(dash + 1)));
        } catch (const std::exception&) {
          fail(line, "bad srlg endpoint in " + pair);
        }
      }
      if (group.empty()) fail(line, "srlg needs at least one link");
    } else if (command == "run") {
      if (!(tokens >> script.run_until_)) fail(line, "run needs a duration");
      saw_run = true;
    } else {
      fail(line, "unknown command: " + command);
    }
  }
  if (!saw_run) {
    throw std::invalid_argument("scenario: missing final `run <ms>`");
  }
  for (const ScriptEvent& e : script.events_) {
    if (e.at > script.run_until_) {
      throw std::invalid_argument("scenario: event after the run horizon");
    }
    if (e.kind == ScriptEvent::Kind::kSrlgCut &&
        script.srlgs_.count(e.srlg) == 0) {
      throw std::invalid_argument("scenario: undefined srlg group: " + e.srlg);
    }
  }
  std::stable_sort(
      script.events_.begin(), script.events_.end(),
      [](const ScriptEvent& x, const ScriptEvent& y) { return x.at < y.at; });
  return script;
}

ScenarioScript ScenarioScript::parse_string(const std::string& text) {
  std::istringstream in(text);
  return parse(in);
}

ScenarioScript::RunReport ScenarioScript::execute() const {
  net::Rng rng(seed_);
  net::Graph graph;
  switch (topology_) {
    case Topology::kWaxman: {
      net::WaxmanParams p;
      p.node_count = node_count_;
      p.alpha = alpha_;
      p.beta = beta_;
      graph = net::waxman_graph(p, rng);
      break;
    }
    case Topology::kErdosRenyi: {
      net::ErdosRenyiParams p;
      p.node_count = node_count_;
      p.edge_probability = degree_ / static_cast<double>(node_count_ - 1);
      graph = net::erdos_renyi_graph(p, rng);
      break;
    }
    case Topology::kBarabasiAlbert: {
      net::BarabasiAlbertParams p;
      p.node_count = node_count_;
      p.edges_per_node = ba_m_;
      graph = net::barabasi_albert_graph(p, rng);
      break;
    }
  }
  if (!graph.valid_node(source_)) {
    throw std::invalid_argument("scenario: source outside the topology");
  }

  proto::SimulationHarness harness(graph, source_, session_);
  // Telemetry is pure observation (attached runs are bit-identical to
  // detached ones), so attach whenever any directive wants to read it.
  const bool want_telemetry =
      !trace_path_.empty() || !expect_rules_.empty() || sample_period_ > 0.0 ||
      std::any_of(events_.begin(), events_.end(), [](const ScriptEvent& e) {
        return e.kind == ScriptEvent::Kind::kStats;
      });
  obs::Telemetry telemetry;
  if (sample_period_ > 0.0) telemetry.enable_sampling(sample_period_);
  if (want_telemetry) harness.attach_telemetry(&telemetry);
  // Online expectations (DESIGN.md §12): the checker taps the span/event
  // stream for the whole run, so attach before the clock moves.
  std::unique_ptr<obs::expect::ExpectationChecker> expect_checker;
  if (!expect_rules_.empty()) {
    expect_checker = std::make_unique<obs::expect::ExpectationChecker>(
        obs::expect::RuleSet::load(expect_rules_));
    expect_checker->attach(telemetry);
  }
  harness.start();

  RunReport report;
  std::vector<net::NodeId> members;
  const auto log = [&](sim::Time at, const std::string& text) {
    std::ostringstream line;
    line << "t=" << at << "ms: " << text;
    report.log.push_back(line.str());
  };

  const auto resolve_link = [&](const ScriptEvent& e) {
    const auto link = graph.link_between(e.a, e.b);
    if (!link) {
      throw std::invalid_argument("scenario: no link " + std::to_string(e.a) +
                                  "-" + std::to_string(e.b));
    }
    return *link;
  };

  // Chaos directives go through the fault-injection layer so the compound
  // faults (flap, crash/restart, burst) expand and heal on their own; the
  // controller must be armed before the clock moves.
  sim::FaultPlan plan;
  for (const ScriptEvent& e : events_) {
    switch (e.kind) {
      case ScriptEvent::Kind::kFlapLink:
        plan.flap_link(e.at, resolve_link(e), e.hold);
        break;
      case ScriptEvent::Kind::kCrashRestart:
        if (e.a == source_) {
          throw std::invalid_argument("scenario: refusing to crash the source");
        }
        plan.crash_restart(e.at, e.a, e.hold);
        break;
      case ScriptEvent::Kind::kLossBurst:
        plan.loss_burst(e.at, e.hold, e.loss, e.base_loss);
        break;
      case ScriptEvent::Kind::kSrlgCut: {
        std::vector<net::LinkId> group;
        for (const auto& [a, b] : srlgs_.at(e.srlg)) {
          const auto link = graph.link_between(a, b);
          if (!link) {
            throw std::invalid_argument(
                "scenario: srlg " + e.srlg + " has no link " +
                std::to_string(a) + "-" + std::to_string(b));
          }
          group.push_back(*link);
        }
        plan.srlg_cut(e.at, group, e.hold);
        break;
      }
      default:
        break;
    }
  }
  sim::ChaosController chaos(harness.simulator(), harness.network(), plan);
  if (!plan.actions().empty()) chaos.arm();
  const proto::InvariantChecker checker(harness.session(), harness.network());

  for (const ScriptEvent& e : events_) {
    harness.simulator().run_until(e.at);
    switch (e.kind) {
      case ScriptEvent::Kind::kJoin:
        harness.session().join(e.a);
        members.push_back(e.a);
        log(e.at, "join " + std::to_string(e.a));
        break;
      case ScriptEvent::Kind::kLeave:
        harness.session().leave(e.a);
        members.erase(std::remove(members.begin(), members.end(), e.a),
                      members.end());
        log(e.at, "leave " + std::to_string(e.a));
        break;
      case ScriptEvent::Kind::kFailLink:
        harness.network().set_link_up(resolve_link(e), false);
        log(e.at, "fail-link " + std::to_string(e.a) + "-" +
                      std::to_string(e.b));
        break;
      case ScriptEvent::Kind::kRestoreLink:
        harness.network().set_link_up(resolve_link(e), true);
        log(e.at, "restore-link " + std::to_string(e.a) + "-" +
                      std::to_string(e.b));
        break;
      case ScriptEvent::Kind::kFailNode:
        harness.network().set_node_up(e.a, false);
        log(e.at, "fail-node " + std::to_string(e.a));
        break;
      case ScriptEvent::Kind::kRestoreNode:
        harness.network().set_node_up(e.a, true);
        log(e.at, "restore-node " + std::to_string(e.a));
        break;
      case ScriptEvent::Kind::kFlapLink:
        log(e.at, "flap-link " + std::to_string(e.a) + "-" +
                      std::to_string(e.b) + " hold " + std::to_string(e.hold) +
                      "ms");
        break;
      case ScriptEvent::Kind::kCrashRestart:
        log(e.at, "crash-node " + std::to_string(e.a) + " downtime " +
                      std::to_string(e.hold) + "ms");
        break;
      case ScriptEvent::Kind::kLossBurst:
        log(e.at, "loss-burst " + std::to_string(e.loss) + " for " +
                      std::to_string(e.hold) + "ms");
        break;
      case ScriptEvent::Kind::kSrlgCut:
        log(e.at, "srlg-cut " + e.srlg + " (" +
                      std::to_string(srlgs_.at(e.srlg).size()) + " links" +
                      (e.hold > 0 ? ", heal " + std::to_string(e.hold) + "ms"
                                  : ", permanent") +
                      ")");
        break;
      case ScriptEvent::Kind::kAudit: {
        const proto::InvariantReport audit = checker.audit();
        if (audit.ok()) {
          log(e.at, "audit: invariants ok");
        } else {
          report.invariant_violations +=
              static_cast<int>(audit.violations.size());
          for (const std::string& v : audit.violations) {
            log(e.at, "audit: VIOLATION " + v);
          }
        }
        break;
      }
      case ScriptEvent::Kind::kStats: {
        const auto counter = [&](const std::string& name) {
          const auto& counters = telemetry.metrics.counters();
          const auto it = counters.find(name);
          return it != counters.end() ? it->second.value() : std::uint64_t{0};
        };
        std::uint64_t tx = 0;
        std::uint64_t drop = 0;
        for (const auto& [name, c] : telemetry.metrics.counters()) {
          if (name.rfind("smrp.sim.tx.", 0) == 0) tx += c.value();
          if (name.rfind("smrp.sim.drop.", 0) == 0) drop += c.value();
        }
        std::ostringstream text;
        text << "stats: events=" << counter("smrp.sim.events") << " tx=" << tx
             << " drop=" << drop
             << " repairs=" << counter("smrp.proto.repairs_started") << "/"
             << counter("smrp.proto.repairs_completed")
             << " spans=" << telemetry.spans.spans().size()
             << " open=" << telemetry.spans.open_count();
        log(e.at, text.str());
        break;
      }
      case ScriptEvent::Kind::kReport: {
        for (const net::NodeId m : members) {
          std::ostringstream text;
          text << "member " << m << " ";
          if (!harness.network().node_up(m)) {
            text << "is down";
          } else {
            const sim::Time last = harness.session().last_data_at(m);
            if (last < 0) {
              text << "never served";
            } else {
              text << "last data " << (e.at - last) << "ms ago";
            }
          }
          log(e.at, text.str());
        }
        break;
      }
    }
  }
  harness.simulator().run_until(run_until_);
  if (want_telemetry) {
    // Flush still-open spans as `truncated` — through the expect tap too,
    // so rules flag episodes the end of the run cut off.
    telemetry.finish(run_until_);
  }
  if (!trace_path_.empty()) {
    obs::write_jsonl_file(telemetry, run_until_, trace_path_, "scenario");
  }
  if (expect_checker != nullptr) {
    const obs::expect::ExpectReport expect = expect_checker->report();
    report.expect_violations = static_cast<int>(expect.total_violations());
    report.expect_table = expect.render();
    for (const obs::expect::RuleOutcome& rule : expect.rules) {
      if (rule.ok()) continue;
      log(run_until_, "expect: VIOLATION " + rule.name + " (" +
                          std::to_string(rule.violations) + "x, first " +
                          rule.first->to_string() + ")");
    }
    log(run_until_,
        "expect: " + std::to_string(expect.rules.size()) + " rules, " +
            std::to_string(expect.total_violations()) + " violations");
  }

  report.members_at_end = static_cast<int>(members.size());
  for (const net::NodeId m : members) {
    if (!harness.network().node_up(m)) continue;  // dead, not starved
    const sim::Time last = harness.session().last_data_at(m);
    const bool starved =
        last < 0 || run_until_ - last > 4 * session_.data_interval +
                                            2 * session_.refresh_interval;
    if (starved) ++report.starved_members_at_end;
  }
  report.repairs_completed = harness.session().repairs_completed();
  return report;
}

}  // namespace smrp::eval
