# Empty dependencies file for scripted_drill.
# This may be replaced when dependencies are built.
