file(REMOVE_RECURSE
  "CMakeFiles/scripted_drill.dir/scripted_drill.cpp.o"
  "CMakeFiles/scripted_drill.dir/scripted_drill.cpp.o.d"
  "scripted_drill"
  "scripted_drill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scripted_drill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
