file(REMOVE_RECURSE
  "CMakeFiles/smrp_explore.dir/smrp_explore.cpp.o"
  "CMakeFiles/smrp_explore.dir/smrp_explore.cpp.o.d"
  "smrp_explore"
  "smrp_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smrp_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
