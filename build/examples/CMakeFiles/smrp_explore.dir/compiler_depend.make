# Empty compiler generated dependencies file for smrp_explore.
# This may be replaced when dependencies are built.
