# Empty compiler generated dependencies file for hierarchical_domains.
# This may be replaced when dependencies are built.
