file(REMOVE_RECURSE
  "CMakeFiles/hierarchical_domains.dir/hierarchical_domains.cpp.o"
  "CMakeFiles/hierarchical_domains.dir/hierarchical_domains.cpp.o.d"
  "hierarchical_domains"
  "hierarchical_domains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hierarchical_domains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
