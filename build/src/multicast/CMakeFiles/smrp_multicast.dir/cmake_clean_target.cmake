file(REMOVE_RECURSE
  "libsmrp_multicast.a"
)
