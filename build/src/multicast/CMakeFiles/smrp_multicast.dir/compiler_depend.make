# Empty compiler generated dependencies file for smrp_multicast.
# This may be replaced when dependencies are built.
