
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/multicast/dot_export.cpp" "src/multicast/CMakeFiles/smrp_multicast.dir/dot_export.cpp.o" "gcc" "src/multicast/CMakeFiles/smrp_multicast.dir/dot_export.cpp.o.d"
  "/root/repo/src/multicast/metrics.cpp" "src/multicast/CMakeFiles/smrp_multicast.dir/metrics.cpp.o" "gcc" "src/multicast/CMakeFiles/smrp_multicast.dir/metrics.cpp.o.d"
  "/root/repo/src/multicast/tree.cpp" "src/multicast/CMakeFiles/smrp_multicast.dir/tree.cpp.o" "gcc" "src/multicast/CMakeFiles/smrp_multicast.dir/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/smrp_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
