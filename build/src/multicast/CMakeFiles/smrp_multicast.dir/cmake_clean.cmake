file(REMOVE_RECURSE
  "CMakeFiles/smrp_multicast.dir/dot_export.cpp.o"
  "CMakeFiles/smrp_multicast.dir/dot_export.cpp.o.d"
  "CMakeFiles/smrp_multicast.dir/metrics.cpp.o"
  "CMakeFiles/smrp_multicast.dir/metrics.cpp.o.d"
  "CMakeFiles/smrp_multicast.dir/tree.cpp.o"
  "CMakeFiles/smrp_multicast.dir/tree.cpp.o.d"
  "libsmrp_multicast.a"
  "libsmrp_multicast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smrp_multicast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
