file(REMOVE_RECURSE
  "CMakeFiles/smrp_hier.dir/hierarchical.cpp.o"
  "CMakeFiles/smrp_hier.dir/hierarchical.cpp.o.d"
  "CMakeFiles/smrp_hier.dir/subgraph.cpp.o"
  "CMakeFiles/smrp_hier.dir/subgraph.cpp.o.d"
  "libsmrp_hier.a"
  "libsmrp_hier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smrp_hier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
