# Empty compiler generated dependencies file for smrp_hier.
# This may be replaced when dependencies are built.
