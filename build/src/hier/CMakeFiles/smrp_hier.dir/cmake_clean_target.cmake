file(REMOVE_RECURSE
  "libsmrp_hier.a"
)
