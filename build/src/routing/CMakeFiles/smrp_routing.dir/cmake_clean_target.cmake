file(REMOVE_RECURSE
  "libsmrp_routing.a"
)
