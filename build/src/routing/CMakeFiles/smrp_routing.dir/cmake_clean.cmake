file(REMOVE_RECURSE
  "CMakeFiles/smrp_routing.dir/link_state.cpp.o"
  "CMakeFiles/smrp_routing.dir/link_state.cpp.o.d"
  "libsmrp_routing.a"
  "libsmrp_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smrp_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
