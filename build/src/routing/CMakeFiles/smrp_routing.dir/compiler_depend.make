# Empty compiler generated dependencies file for smrp_routing.
# This may be replaced when dependencies are built.
