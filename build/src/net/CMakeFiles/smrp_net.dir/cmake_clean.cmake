file(REMOVE_RECURSE
  "CMakeFiles/smrp_net.dir/graph.cpp.o"
  "CMakeFiles/smrp_net.dir/graph.cpp.o.d"
  "CMakeFiles/smrp_net.dir/paths.cpp.o"
  "CMakeFiles/smrp_net.dir/paths.cpp.o.d"
  "CMakeFiles/smrp_net.dir/random_graphs.cpp.o"
  "CMakeFiles/smrp_net.dir/random_graphs.cpp.o.d"
  "CMakeFiles/smrp_net.dir/shortest_path.cpp.o"
  "CMakeFiles/smrp_net.dir/shortest_path.cpp.o.d"
  "CMakeFiles/smrp_net.dir/transit_stub.cpp.o"
  "CMakeFiles/smrp_net.dir/transit_stub.cpp.o.d"
  "CMakeFiles/smrp_net.dir/waxman.cpp.o"
  "CMakeFiles/smrp_net.dir/waxman.cpp.o.d"
  "libsmrp_net.a"
  "libsmrp_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smrp_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
