file(REMOVE_RECURSE
  "libsmrp_net.a"
)
