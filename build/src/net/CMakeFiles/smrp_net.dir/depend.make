# Empty dependencies file for smrp_net.
# This may be replaced when dependencies are built.
