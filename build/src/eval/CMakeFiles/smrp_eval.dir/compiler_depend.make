# Empty compiler generated dependencies file for smrp_eval.
# This may be replaced when dependencies are built.
