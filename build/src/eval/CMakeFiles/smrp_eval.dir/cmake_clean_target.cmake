file(REMOVE_RECURSE
  "libsmrp_eval.a"
)
