file(REMOVE_RECURSE
  "CMakeFiles/smrp_eval.dir/failure_sequence.cpp.o"
  "CMakeFiles/smrp_eval.dir/failure_sequence.cpp.o.d"
  "CMakeFiles/smrp_eval.dir/scenario.cpp.o"
  "CMakeFiles/smrp_eval.dir/scenario.cpp.o.d"
  "CMakeFiles/smrp_eval.dir/script.cpp.o"
  "CMakeFiles/smrp_eval.dir/script.cpp.o.d"
  "CMakeFiles/smrp_eval.dir/stats.cpp.o"
  "CMakeFiles/smrp_eval.dir/stats.cpp.o.d"
  "CMakeFiles/smrp_eval.dir/table.cpp.o"
  "CMakeFiles/smrp_eval.dir/table.cpp.o.d"
  "libsmrp_eval.a"
  "libsmrp_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smrp_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
