# Empty compiler generated dependencies file for smrp_spf.
# This may be replaced when dependencies are built.
