file(REMOVE_RECURSE
  "CMakeFiles/smrp_spf.dir/dual_tree_builder.cpp.o"
  "CMakeFiles/smrp_spf.dir/dual_tree_builder.cpp.o.d"
  "CMakeFiles/smrp_spf.dir/spf_tree_builder.cpp.o"
  "CMakeFiles/smrp_spf.dir/spf_tree_builder.cpp.o.d"
  "CMakeFiles/smrp_spf.dir/steiner_tree_builder.cpp.o"
  "CMakeFiles/smrp_spf.dir/steiner_tree_builder.cpp.o.d"
  "libsmrp_spf.a"
  "libsmrp_spf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smrp_spf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
