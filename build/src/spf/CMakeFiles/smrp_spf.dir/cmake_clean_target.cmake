file(REMOVE_RECURSE
  "libsmrp_spf.a"
)
