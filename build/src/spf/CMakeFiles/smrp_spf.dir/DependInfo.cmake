
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spf/dual_tree_builder.cpp" "src/spf/CMakeFiles/smrp_spf.dir/dual_tree_builder.cpp.o" "gcc" "src/spf/CMakeFiles/smrp_spf.dir/dual_tree_builder.cpp.o.d"
  "/root/repo/src/spf/spf_tree_builder.cpp" "src/spf/CMakeFiles/smrp_spf.dir/spf_tree_builder.cpp.o" "gcc" "src/spf/CMakeFiles/smrp_spf.dir/spf_tree_builder.cpp.o.d"
  "/root/repo/src/spf/steiner_tree_builder.cpp" "src/spf/CMakeFiles/smrp_spf.dir/steiner_tree_builder.cpp.o" "gcc" "src/spf/CMakeFiles/smrp_spf.dir/steiner_tree_builder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/smrp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/multicast/CMakeFiles/smrp_multicast.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
