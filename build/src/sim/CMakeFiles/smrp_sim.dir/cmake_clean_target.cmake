file(REMOVE_RECURSE
  "libsmrp_sim.a"
)
