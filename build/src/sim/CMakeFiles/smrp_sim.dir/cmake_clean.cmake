file(REMOVE_RECURSE
  "CMakeFiles/smrp_sim.dir/network.cpp.o"
  "CMakeFiles/smrp_sim.dir/network.cpp.o.d"
  "CMakeFiles/smrp_sim.dir/simulator.cpp.o"
  "CMakeFiles/smrp_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/smrp_sim.dir/trace.cpp.o"
  "CMakeFiles/smrp_sim.dir/trace.cpp.o.d"
  "libsmrp_sim.a"
  "libsmrp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smrp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
