# Empty dependencies file for smrp_sim.
# This may be replaced when dependencies are built.
