
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/smrp/distributed.cpp" "src/smrp/CMakeFiles/smrp_core.dir/distributed.cpp.o" "gcc" "src/smrp/CMakeFiles/smrp_core.dir/distributed.cpp.o.d"
  "/root/repo/src/smrp/path_selection.cpp" "src/smrp/CMakeFiles/smrp_core.dir/path_selection.cpp.o" "gcc" "src/smrp/CMakeFiles/smrp_core.dir/path_selection.cpp.o.d"
  "/root/repo/src/smrp/query_scheme.cpp" "src/smrp/CMakeFiles/smrp_core.dir/query_scheme.cpp.o" "gcc" "src/smrp/CMakeFiles/smrp_core.dir/query_scheme.cpp.o.d"
  "/root/repo/src/smrp/recovery.cpp" "src/smrp/CMakeFiles/smrp_core.dir/recovery.cpp.o" "gcc" "src/smrp/CMakeFiles/smrp_core.dir/recovery.cpp.o.d"
  "/root/repo/src/smrp/tree_builder.cpp" "src/smrp/CMakeFiles/smrp_core.dir/tree_builder.cpp.o" "gcc" "src/smrp/CMakeFiles/smrp_core.dir/tree_builder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/smrp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/multicast/CMakeFiles/smrp_multicast.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/smrp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/smrp_routing.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
