file(REMOVE_RECURSE
  "CMakeFiles/smrp_core.dir/distributed.cpp.o"
  "CMakeFiles/smrp_core.dir/distributed.cpp.o.d"
  "CMakeFiles/smrp_core.dir/path_selection.cpp.o"
  "CMakeFiles/smrp_core.dir/path_selection.cpp.o.d"
  "CMakeFiles/smrp_core.dir/query_scheme.cpp.o"
  "CMakeFiles/smrp_core.dir/query_scheme.cpp.o.d"
  "CMakeFiles/smrp_core.dir/recovery.cpp.o"
  "CMakeFiles/smrp_core.dir/recovery.cpp.o.d"
  "CMakeFiles/smrp_core.dir/tree_builder.cpp.o"
  "CMakeFiles/smrp_core.dir/tree_builder.cpp.o.d"
  "libsmrp_core.a"
  "libsmrp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smrp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
