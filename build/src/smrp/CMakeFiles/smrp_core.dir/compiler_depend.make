# Empty compiler generated dependencies file for smrp_core.
# This may be replaced when dependencies are built.
