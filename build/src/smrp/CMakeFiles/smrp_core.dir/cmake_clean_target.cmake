file(REMOVE_RECURSE
  "libsmrp_core.a"
)
