file(REMOVE_RECURSE
  "CMakeFiles/test_hier.dir/hier/test_hierarchical.cpp.o"
  "CMakeFiles/test_hier.dir/hier/test_hierarchical.cpp.o.d"
  "CMakeFiles/test_hier.dir/hier/test_subgraph.cpp.o"
  "CMakeFiles/test_hier.dir/hier/test_subgraph.cpp.o.d"
  "test_hier"
  "test_hier.pdb"
  "test_hier[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
