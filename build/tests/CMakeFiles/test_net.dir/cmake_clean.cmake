file(REMOVE_RECURSE
  "CMakeFiles/test_net.dir/net/test_graph.cpp.o"
  "CMakeFiles/test_net.dir/net/test_graph.cpp.o.d"
  "CMakeFiles/test_net.dir/net/test_paths.cpp.o"
  "CMakeFiles/test_net.dir/net/test_paths.cpp.o.d"
  "CMakeFiles/test_net.dir/net/test_random_graphs.cpp.o"
  "CMakeFiles/test_net.dir/net/test_random_graphs.cpp.o.d"
  "CMakeFiles/test_net.dir/net/test_rng.cpp.o"
  "CMakeFiles/test_net.dir/net/test_rng.cpp.o.d"
  "CMakeFiles/test_net.dir/net/test_shortest_path.cpp.o"
  "CMakeFiles/test_net.dir/net/test_shortest_path.cpp.o.d"
  "CMakeFiles/test_net.dir/net/test_transit_stub.cpp.o"
  "CMakeFiles/test_net.dir/net/test_transit_stub.cpp.o.d"
  "CMakeFiles/test_net.dir/net/test_waxman.cpp.o"
  "CMakeFiles/test_net.dir/net/test_waxman.cpp.o.d"
  "test_net"
  "test_net.pdb"
  "test_net[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
