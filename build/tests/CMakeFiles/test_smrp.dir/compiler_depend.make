# Empty compiler generated dependencies file for test_smrp.
# This may be replaced when dependencies are built.
