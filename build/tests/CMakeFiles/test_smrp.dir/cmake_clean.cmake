file(REMOVE_RECURSE
  "CMakeFiles/test_smrp.dir/smrp/test_node_failure.cpp.o"
  "CMakeFiles/test_smrp.dir/smrp/test_node_failure.cpp.o.d"
  "CMakeFiles/test_smrp.dir/smrp/test_paper_walkthrough.cpp.o"
  "CMakeFiles/test_smrp.dir/smrp/test_paper_walkthrough.cpp.o.d"
  "CMakeFiles/test_smrp.dir/smrp/test_path_selection.cpp.o"
  "CMakeFiles/test_smrp.dir/smrp/test_path_selection.cpp.o.d"
  "CMakeFiles/test_smrp.dir/smrp/test_query_scheme.cpp.o"
  "CMakeFiles/test_smrp.dir/smrp/test_query_scheme.cpp.o.d"
  "CMakeFiles/test_smrp.dir/smrp/test_recovery.cpp.o"
  "CMakeFiles/test_smrp.dir/smrp/test_recovery.cpp.o.d"
  "CMakeFiles/test_smrp.dir/smrp/test_session_repair.cpp.o"
  "CMakeFiles/test_smrp.dir/smrp/test_session_repair.cpp.o.d"
  "CMakeFiles/test_smrp.dir/smrp/test_tree_builder.cpp.o"
  "CMakeFiles/test_smrp.dir/smrp/test_tree_builder.cpp.o.d"
  "test_smrp"
  "test_smrp.pdb"
  "test_smrp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_smrp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
