# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_multicast[1]_include.cmake")
include("/root/repo/build/tests/test_smrp[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_routing[1]_include.cmake")
include("/root/repo/build/tests/test_distributed[1]_include.cmake")
include("/root/repo/build/tests/test_hier[1]_include.cmake")
include("/root/repo/build/tests/test_spf[1]_include.cmake")
include("/root/repo/build/tests/test_eval[1]_include.cmake")
