file(REMOVE_RECURSE
  "../bench/bench_ablation_query"
  "../bench/bench_ablation_query.pdb"
  "CMakeFiles/bench_ablation_query.dir/bench_ablation_query.cpp.o"
  "CMakeFiles/bench_ablation_query.dir/bench_ablation_query.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
