# Empty compiler generated dependencies file for bench_ablation_query.
# This may be replaced when dependencies are built.
