# Empty compiler generated dependencies file for bench_fig10_group_size.
# This may be replaced when dependencies are built.
