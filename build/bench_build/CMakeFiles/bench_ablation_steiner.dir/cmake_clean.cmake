file(REMOVE_RECURSE
  "../bench/bench_ablation_steiner"
  "../bench/bench_ablation_steiner.pdb"
  "CMakeFiles/bench_ablation_steiner.dir/bench_ablation_steiner.cpp.o"
  "CMakeFiles/bench_ablation_steiner.dir/bench_ablation_steiner.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_steiner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
