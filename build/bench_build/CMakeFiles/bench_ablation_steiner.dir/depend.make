# Empty dependencies file for bench_ablation_steiner.
# This may be replaced when dependencies are built.
