file(REMOVE_RECURSE
  "../bench/bench_fig8_dthresh"
  "../bench/bench_fig8_dthresh.pdb"
  "CMakeFiles/bench_fig8_dthresh.dir/bench_fig8_dthresh.cpp.o"
  "CMakeFiles/bench_fig8_dthresh.dir/bench_fig8_dthresh.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_dthresh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
