# Empty compiler generated dependencies file for bench_fig8_dthresh.
# This may be replaced when dependencies are built.
