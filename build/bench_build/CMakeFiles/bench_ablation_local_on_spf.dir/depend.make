# Empty dependencies file for bench_ablation_local_on_spf.
# This may be replaced when dependencies are built.
