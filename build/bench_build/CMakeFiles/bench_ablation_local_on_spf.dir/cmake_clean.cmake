file(REMOVE_RECURSE
  "../bench/bench_ablation_local_on_spf"
  "../bench/bench_ablation_local_on_spf.pdb"
  "CMakeFiles/bench_ablation_local_on_spf.dir/bench_ablation_local_on_spf.cpp.o"
  "CMakeFiles/bench_ablation_local_on_spf.dir/bench_ablation_local_on_spf.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_local_on_spf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
