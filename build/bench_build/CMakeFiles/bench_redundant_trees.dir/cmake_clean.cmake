file(REMOVE_RECURSE
  "../bench/bench_redundant_trees"
  "../bench/bench_redundant_trees.pdb"
  "CMakeFiles/bench_redundant_trees.dir/bench_redundant_trees.cpp.o"
  "CMakeFiles/bench_redundant_trees.dir/bench_redundant_trees.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_redundant_trees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
