# Empty compiler generated dependencies file for bench_redundant_trees.
# This may be replaced when dependencies are built.
