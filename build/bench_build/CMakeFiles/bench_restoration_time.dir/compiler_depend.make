# Empty compiler generated dependencies file for bench_restoration_time.
# This may be replaced when dependencies are built.
