file(REMOVE_RECURSE
  "../bench/bench_restoration_time"
  "../bench/bench_restoration_time.pdb"
  "CMakeFiles/bench_restoration_time.dir/bench_restoration_time.cpp.o"
  "CMakeFiles/bench_restoration_time.dir/bench_restoration_time.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_restoration_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
