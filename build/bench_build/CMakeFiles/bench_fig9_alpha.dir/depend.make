# Empty dependencies file for bench_fig9_alpha.
# This may be replaced when dependencies are built.
