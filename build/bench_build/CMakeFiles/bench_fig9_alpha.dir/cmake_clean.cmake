file(REMOVE_RECURSE
  "../bench/bench_fig9_alpha"
  "../bench/bench_fig9_alpha.pdb"
  "CMakeFiles/bench_fig9_alpha.dir/bench_fig9_alpha.cpp.o"
  "CMakeFiles/bench_fig9_alpha.dir/bench_fig9_alpha.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_alpha.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
