# Empty compiler generated dependencies file for bench_failure_sequence.
# This may be replaced when dependencies are built.
