file(REMOVE_RECURSE
  "../bench/bench_failure_sequence"
  "../bench/bench_failure_sequence.pdb"
  "CMakeFiles/bench_failure_sequence.dir/bench_failure_sequence.cpp.o"
  "CMakeFiles/bench_failure_sequence.dir/bench_failure_sequence.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_failure_sequence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
