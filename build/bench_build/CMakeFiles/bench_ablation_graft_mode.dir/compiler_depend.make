# Empty compiler generated dependencies file for bench_ablation_graft_mode.
# This may be replaced when dependencies are built.
