file(REMOVE_RECURSE
  "../bench/bench_ablation_graft_mode"
  "../bench/bench_ablation_graft_mode.pdb"
  "CMakeFiles/bench_ablation_graft_mode.dir/bench_ablation_graft_mode.cpp.o"
  "CMakeFiles/bench_ablation_graft_mode.dir/bench_ablation_graft_mode.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_graft_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
