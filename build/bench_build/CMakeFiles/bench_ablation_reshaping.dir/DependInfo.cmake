
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_reshaping.cpp" "bench_build/CMakeFiles/bench_ablation_reshaping.dir/bench_ablation_reshaping.cpp.o" "gcc" "bench_build/CMakeFiles/bench_ablation_reshaping.dir/bench_ablation_reshaping.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/smrp_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/smrp/CMakeFiles/smrp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/spf/CMakeFiles/smrp_spf.dir/DependInfo.cmake"
  "/root/repo/build/src/hier/CMakeFiles/smrp_hier.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/smrp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/multicast/CMakeFiles/smrp_multicast.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/smrp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/smrp_routing.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
