file(REMOVE_RECURSE
  "../bench/bench_ablation_reshaping"
  "../bench/bench_ablation_reshaping.pdb"
  "CMakeFiles/bench_ablation_reshaping.dir/bench_ablation_reshaping.cpp.o"
  "CMakeFiles/bench_ablation_reshaping.dir/bench_ablation_reshaping.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_reshaping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
