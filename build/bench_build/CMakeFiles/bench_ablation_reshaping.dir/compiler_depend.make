# Empty compiler generated dependencies file for bench_ablation_reshaping.
# This may be replaced when dependencies are built.
