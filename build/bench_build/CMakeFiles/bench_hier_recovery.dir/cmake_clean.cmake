file(REMOVE_RECURSE
  "../bench/bench_hier_recovery"
  "../bench/bench_hier_recovery.pdb"
  "CMakeFiles/bench_hier_recovery.dir/bench_hier_recovery.cpp.o"
  "CMakeFiles/bench_hier_recovery.dir/bench_hier_recovery.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hier_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
