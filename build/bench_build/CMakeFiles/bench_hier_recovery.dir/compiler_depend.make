# Empty compiler generated dependencies file for bench_hier_recovery.
# This may be replaced when dependencies are built.
