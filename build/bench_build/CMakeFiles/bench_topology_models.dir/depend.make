# Empty dependencies file for bench_topology_models.
# This may be replaced when dependencies are built.
