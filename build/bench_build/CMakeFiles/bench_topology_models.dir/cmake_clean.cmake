file(REMOVE_RECURSE
  "../bench/bench_topology_models"
  "../bench/bench_topology_models.pdb"
  "CMakeFiles/bench_topology_models.dir/bench_topology_models.cpp.o"
  "CMakeFiles/bench_topology_models.dir/bench_topology_models.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_topology_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
