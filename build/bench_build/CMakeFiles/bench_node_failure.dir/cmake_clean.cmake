file(REMOVE_RECURSE
  "../bench/bench_node_failure"
  "../bench/bench_node_failure.pdb"
  "CMakeFiles/bench_node_failure.dir/bench_node_failure.cpp.o"
  "CMakeFiles/bench_node_failure.dir/bench_node_failure.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_node_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
