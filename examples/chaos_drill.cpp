// Chaos drill walkthrough: build a scripted FaultPlan against a live
// distributed session — link flaps on real tree links, a node
// crash/restart, a loss burst, and a k-cut partition that heals — then
// watch the protocol absorb it. The invariant checker audits the session
// throughout; the drill ends with the strict quiescent audit and a
// per-member service report.
//
//   $ ./build/examples/chaos_drill
//
// Everything is seeded: rerunning reproduces the same faults, the same
// repairs, the same timeline.
#include <algorithm>
#include <iostream>
#include <vector>

#include "eval/table.hpp"
#include "net/waxman.hpp"
#include "sim/fault_injection.hpp"
#include "smrp/harness.hpp"
#include "smrp/invariants.hpp"

int main() {
  using namespace smrp;
  net::Rng rng(20050628);

  net::WaxmanParams wax;
  wax.node_count = 40;
  const net::Graph g = net::waxman_graph(wax, rng);

  proto::SessionConfig config;  // hardened repair path is the default
  proto::SimulationHarness h(g, /*source=*/0, config);
  h.start();
  std::vector<net::NodeId> members;
  while (members.size() < 6) {
    const auto m = static_cast<net::NodeId>(1 + rng.below(39));
    if (std::find(members.begin(), members.end(), m) == members.end()) {
      h.session().join(m);
      members.push_back(m);
    }
  }
  h.simulator().run_until(1500.0);
  const auto snapshot = h.session().snapshot_tree();
  if (!snapshot) {
    std::cerr << "session did not settle\n";
    return 1;
  }
  std::cout << "t=1500ms: session settled, " << members.size()
            << " members, tree cost " << snapshot->total_cost() << "\n\n";

  // Script the drill against the tree the session actually built: flap
  // two of its links, crash a transit router, degrade the whole fabric,
  // and briefly partition one member away from everything else.
  sim::FaultPlan plan;
  std::vector<net::LinkId> tree_links = snapshot->tree_links();
  if (tree_links.size() >= 2) {
    plan.flap_link(2'000.0, tree_links[0], 600.0);
    plan.flap_link(2'300.0, tree_links[tree_links.size() / 2], 900.0);
  }
  for (const net::NodeId n : snapshot->on_tree_nodes()) {
    if (n != 0 && !snapshot->is_member(n)) {  // a pure transit router
      plan.crash_restart(3'500.0, n, 800.0);
      break;
    }
  }
  plan.loss_burst(5'000.0, 1'000.0, 0.15);
  plan.partition(6'500.0, sim::boundary_links(g, {members.front()}), 1'200.0);

  std::cout << "drill plan (" << plan.fault_count() << " faults):\n"
            << plan.describe() << "\n";

  sim::ChaosController chaos(h.simulator(), h.network(), plan);
  chaos.arm();

  // Live audits while the faults land: the checker tolerates mid-repair
  // churn but flags real corruption (cycles that persist, lost children,
  // SHR out of bounds).
  const proto::InvariantChecker checker(h.session(), h.network());
  int violations = 0;
  const sim::Time quiescent_at = plan.quiescent_time();
  for (sim::Time t = 1'500.0; t < quiescent_at; t += 250.0) {
    h.simulator().run_until(t);
    const proto::InvariantReport live = checker.audit();
    violations += static_cast<int>(live.violations.size());
    for (const std::string& v : live.violations) {
      std::cout << "t=" << t << "ms: VIOLATION " << v << "\n";
    }
  }

  // Give the protocol its own computable settling bound, then apply the
  // strict audit: structure, agreement, SHR == Eq. 2, and service to
  // every member the surviving topology still connects.
  const sim::Time bound = proto::service_restoration_bound(
      h.session().config(), routing::RoutingConfig{}, g);
  h.simulator().run_until(quiescent_at + bound);
  const proto::InvariantReport final_report =
      checker.audit_quiescent(quiescent_at);

  std::cout << "t=" << h.simulator().now() << "ms: drill drained ("
            << chaos.actions_applied() << " actions applied), "
            << "restoration bound " << eval::Table::fixed(bound, 0) << "ms\n";
  std::cout << "live audit violations during the drill: " << violations
            << "\n";
  std::cout << "quiescent audit: "
            << (final_report.ok() ? "clean" : final_report.to_string()) << "\n";
  std::cout << "repairs started " << h.session().repairs_started()
            << ", completed " << h.session().repairs_completed() << "\n\n";

  const sim::Time now = h.simulator().now();
  eval::Table table({"member", "status", "last data (ms ago)"});
  for (const net::NodeId m : members) {
    const sim::Time last = h.session().last_data_at(m);
    const bool fresh =
        last >= 0 && now - last <= h.session().config().upstream_timeout;
    table.add_row({std::to_string(m), fresh ? "served" : "STARVED",
                   last < 0 ? "never" : eval::Table::fixed(now - last, 1)});
  }
  std::cout << table.render();
  return final_report.ok() ? 0 : 1;
}
