// Interactive-ish exploration tool: run one fully-described scenario and
// dump everything — the two trees, per-node SHR state, and a per-member
// worst-case recovery table. Meant for poking at the protocol with
// different knobs without recompiling.
//
//   $ ./build/examples/smrp_explore --n 60 --ng 12 --alpha 0.25
//         --dthresh 0.4 --seed 7 --failures node
//
// Flags (all optional): --n <nodes> --ng <members> --alpha <a>
//   --beta <b> --dthresh <t> --seed <s> --failures link|node
//   --no-reshaping --query-scheme --baseline spf|steiner
#include <cstring>
#include <iostream>
#include <string>

#include "eval/scenario.hpp"
#include "eval/table.hpp"
#include "multicast/metrics.hpp"

namespace {

struct Options {
  smrp::eval::ScenarioParams params;
  std::uint64_t seed = 1;
};

bool parse(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) throw std::invalid_argument("missing value: " + flag);
      return argv[++i];
    };
    if (flag == "--n") {
      opt.params.node_count = std::stoi(next());
    } else if (flag == "--ng") {
      opt.params.group_size = std::stoi(next());
    } else if (flag == "--alpha") {
      opt.params.alpha = std::stod(next());
    } else if (flag == "--beta") {
      opt.params.beta = std::stod(next());
    } else if (flag == "--dthresh") {
      opt.params.smrp.d_thresh = std::stod(next());
    } else if (flag == "--seed") {
      opt.seed = std::stoull(next());
    } else if (flag == "--no-reshaping") {
      opt.params.smrp.enable_reshaping = false;
    } else if (flag == "--query-scheme") {
      opt.params.use_query_scheme = true;
    } else if (flag == "--failures") {
      const std::string v = next();
      opt.params.failure_model = v == "node"
                                     ? smrp::eval::FailureModel::kWorstCaseNode
                                     : smrp::eval::FailureModel::kWorstCaseLink;
    } else if (flag == "--baseline") {
      const std::string v = next();
      opt.params.baseline = v == "steiner"
                                ? smrp::eval::BaselineKind::kSteiner
                                : smrp::eval::BaselineKind::kSpf;
    } else if (flag == "--help" || flag == "-h") {
      return false;
    } else {
      std::cerr << "unknown flag: " << flag << "\n";
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace smrp;
  Options opt;
  try {
    if (!parse(argc, argv, opt)) {
      std::cout << "usage: smrp_explore [--n N] [--ng N_G] [--alpha a] "
                   "[--beta b]\n                    [--dthresh t] [--seed s] "
                   "[--failures link|node]\n                    "
                   "[--no-reshaping] [--query-scheme] "
                   "[--baseline spf|steiner]\n";
      return 0;
    }
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }

  net::Rng rng(opt.seed);
  const eval::ScenarioResult r = eval::run_scenario(opt.params, rng);

  std::cout << "scenario: N=" << opt.params.node_count
            << " N_G=" << opt.params.group_size
            << " alpha=" << opt.params.alpha
            << " D_thresh=" << opt.params.smrp.d_thresh
            << " seed=" << opt.seed
            << " avg_degree=" << eval::Table::fixed(r.avg_degree, 2) << "\n"
            << "trees: baseline cost " << eval::Table::fixed(r.cost_spf, 1)
            << ", SMRP cost " << eval::Table::fixed(r.cost_smrp, 1)
            << " (" << eval::Table::percent(r.cost_relative())
            << "), reshapes " << r.reshape_count << ", fallback joins "
            << r.fallback_joins << "\n\n";

  eval::Table table({"member", "RD base", "RD smrp", "RD_rel", "delay base",
                     "delay smrp", "delay_rel"});
  for (const eval::MemberComparison& m : r.members) {
    if (!m.valid) {
      table.add_row({std::to_string(m.member), "-", "-", "n/a", "-", "-",
                     "n/a"});
      continue;
    }
    table.add_row({std::to_string(m.member),
                   eval::Table::fixed(m.rd_spf, 1),
                   eval::Table::fixed(m.rd_smrp, 1),
                   eval::Table::percent(m.rd_relative()),
                   eval::Table::fixed(m.delay_spf, 1),
                   eval::Table::fixed(m.delay_smrp, 1),
                   eval::Table::percent(m.delay_relative())});
  }
  std::cout << table.render() << "\nscenario means: RD_rel "
            << eval::Table::percent(r.mean_rd_relative()) << " (weight), "
            << eval::Table::percent(r.mean_rd_relative_hops())
            << " (links), delay_rel "
            << eval::Table::percent(r.mean_delay_relative()) << "\n";
  return 0;
}
