// Hierarchical recovery architecture demo (§3.3.3): a transit-stub
// network with per-domain SMRP instances. Receivers live in stub domains;
// failures are repaired inside the recovery domain that owns them, and
// the output shows the confinement.
//
//   $ ./build/examples/hierarchical_domains
#include <iostream>

#include "eval/table.hpp"
#include "hier/hierarchical.hpp"
#include "net/transit_stub.hpp"

int main() {
  using namespace smrp;
  net::Rng rng(7);

  net::TransitStubParams params;
  params.transit_nodes = 5;
  params.stubs_per_transit = 2;
  params.stub_size = 4;
  const net::TransitStubTopology topo =
      net::generate_transit_stub(params, rng);
  std::cout << "transit-stub network: " << topo.graph.node_count()
            << " nodes, " << topo.domain_count() - 1
            << " stub domains around a " << params.transit_nodes
            << "-node core\n";

  hier::HierarchicalSession session(topo, /*source=*/0);
  // Two receivers in each of the first four stub domains.
  for (net::DomainId d = 1; d <= 4; ++d) {
    const auto& nodes = topo.nodes_of_domain[static_cast<std::size_t>(d)];
    session.join(nodes[nodes.size() - 1]);
    session.join(nodes[nodes.size() - 2]);
  }
  std::cout << session.member_count() << " receivers joined across 4 domains; "
            << "level-2 tree connects "
            << session.transit_tree().tree().member_count() << " agents\n\n";

  eval::Table delays({"receiver", "domain", "end-to-end delay"});
  for (net::NodeId n = 0; n < topo.graph.node_count(); ++n) {
    if (!session.is_member(n)) continue;
    delays.add_row(
        {std::to_string(n),
         std::to_string(topo.domain_of_node[static_cast<std::size_t>(n)]),
         eval::Table::fixed(session.delay_to_source(n), 1)});
  }
  std::cout << delays.render() << "\n";

  // Fail every link of the level-2 tree and every link of domain 1's tree;
  // show which recovery domain handles each and who is affected.
  eval::Table drills({"failed link", "owning domain", "members hit",
                      "members untouched", "repair distance"});
  int shown = 0;
  for (net::LinkId l = 0; l < topo.graph.link_count() && shown < 10; ++l) {
    const hier::HierRecoveryOutcome out = session.recover(l);
    if (!out.link_on_tree) continue;
    ++shown;
    const net::Link& link = topo.graph.link(l);
    drills.add_row(
        {std::to_string(link.a) + "-" + std::to_string(link.b),
         out.domain == net::kTransitDomain ? "transit core"
                                           : "stub " + std::to_string(out.domain),
         std::to_string(out.disconnected_members),
         std::to_string(out.unaffected_members),
         out.recovered ? eval::Table::fixed(out.recovery_distance, 1)
                       : "unrecoverable"});
  }
  std::cout << drills.render()
            << "\nevery repair stays inside the domain that owns the failed "
               "link; other domains never reconfigure.\n";
  return 0;
}
