// A QoS-sensitive video-conference scenario (the application class the
// paper's §3.1 motivates): participants come and go on a 100-node ISP
// topology; SMRP keeps reshaping the tree so that any participant losing
// its branch can be restored through a short local detour. The same
// churn is replayed against the SPF baseline for comparison.
//
//   $ ./build/examples/video_conference
#include <iostream>

#include "eval/table.hpp"
#include "multicast/metrics.hpp"
#include "net/waxman.hpp"
#include "smrp/recovery.hpp"
#include "smrp/tree_builder.hpp"
#include "spf/spf_tree_builder.hpp"

int main() {
  using namespace smrp;
  net::Rng rng(2005);

  net::WaxmanParams wax;
  wax.node_count = 100;
  const net::Graph g = net::waxman_graph(wax, rng);
  const net::NodeId studio = 0;  // conference source

  proto::SmrpConfig config;
  config.d_thresh = 0.3;
  proto::SmrpTreeBuilder smrp(g, studio, config);
  baseline::SpfTreeBuilder spf(g, studio);

  std::cout << "video conference on a " << g.node_count()
            << "-node ISP topology (avg degree "
            << eval::Table::fixed(g.average_degree(), 1) << ")\n\n";

  // Churn: 60 events, 2:1 join:leave, up to ~25 concurrent participants.
  std::vector<net::NodeId> participants;
  int reshapes = 0;
  for (int event = 0; event < 60; ++event) {
    const bool join = participants.size() < 5 || rng.uniform() < 0.66;
    if (join) {
      const auto who = static_cast<net::NodeId>(1 + rng.below(99));
      if (smrp.tree().is_member(who)) continue;
      const proto::JoinOutcome out = smrp.join(who);
      spf.join(who);
      participants.push_back(who);
      reshapes += out.reshapes_triggered;
    } else {
      const std::size_t idx = rng.below(participants.size());
      smrp.leave(participants[idx]);
      spf.leave(participants[idx]);
      participants.erase(participants.begin() +
                         static_cast<std::ptrdiff_t>(idx));
    }
  }
  // Periodic (Condition-II) maintenance pass, as timers would do.
  reshapes += smrp.reshape_pass();

  const mcast::TreeMetrics ms = mcast::measure(smrp.tree());
  const mcast::TreeMetrics mb = mcast::measure(spf.tree());
  eval::Table shape({"metric", "SMRP", "SPF baseline"});
  shape.add_row({"participants", std::to_string(smrp.tree().member_count()),
                 std::to_string(spf.tree().member_count())});
  shape.add_row({"tree cost", eval::Table::fixed(ms.total_cost, 0),
                 eval::Table::fixed(mb.total_cost, 0)});
  shape.add_row({"mean delay", eval::Table::fixed(ms.mean_member_delay, 0),
                 eval::Table::fixed(mb.mean_member_delay, 0)});
  shape.add_row({"mean SHR", eval::Table::fixed(ms.mean_member_shr, 2),
                 eval::Table::fixed(mb.mean_member_shr, 2)});
  shape.add_row({"max link sharing", std::to_string(ms.max_link_sharing),
                 std::to_string(mb.max_link_sharing)});
  std::cout << shape.render() << "(" << reshapes
            << " reshaping switches during the churn)\n\n";

  // Every participant's worst-case failure: who restores faster?
  eval::Table rec({"participant", "RD local on SMRP", "RD global on SPF",
                   "saved"});
  double saved_total = 0.0;
  int counted = 0;
  for (const net::NodeId p : smrp.tree().members()) {
    const net::LinkId f_smrp = proto::worst_case_failure_link(smrp.tree(), p);
    const net::LinkId f_spf = proto::worst_case_failure_link(spf.tree(), p);
    const auto local = proto::local_detour_recovery(g, smrp.tree(), p, f_smrp);
    const auto global = proto::global_detour_recovery(g, spf.tree(), p, f_spf);
    if (!local.recovered || !global.recovered) continue;
    const double saved = global.recovery_distance - local.recovery_distance;
    saved_total += global.recovery_distance > 0
                       ? saved / global.recovery_distance
                       : 0.0;
    ++counted;
    if (counted <= 8) {  // show a sample
      rec.add_row({std::to_string(p),
                   eval::Table::fixed(local.recovery_distance, 0),
                   eval::Table::fixed(global.recovery_distance, 0),
                   eval::Table::percent(
                       global.recovery_distance > 0
                           ? saved / global.recovery_distance
                           : 0.0)});
    }
  }
  std::cout << rec.render();
  if (counted > 0) {
    std::cout << "mean recovery-path reduction across all " << counted
              << " participants: "
              << eval::Table::percent(saved_total / counted) << "\n";
  }
  return 0;
}
