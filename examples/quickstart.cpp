// Quickstart: build an SMRP multicast tree on the paper's Figure-1
// topology, break the worst-case link, and recover via local detour —
// the whole public API in ~80 lines.
//
//   $ ./build/examples/quickstart
//   $ ./build/examples/quickstart --dot | dot -Tsvg > tree.svg
#include <cstring>
#include <iostream>

#include "multicast/dot_export.hpp"
#include "multicast/metrics.hpp"
#include "smrp/recovery.hpp"
#include "smrp/tree_builder.hpp"
#include "spf/spf_tree_builder.hpp"

int main(int argc, char** argv) {
  const bool dot_mode = argc > 1 && std::strcmp(argv[1], "--dot") == 0;
  using namespace smrp;

  // The 5-node network of the paper's Figure 1 (S=0, A=1, B=2, C=3, D=4).
  net::Graph g(5);
  g.add_link(0, 1, 1.0);                         // S–A
  g.add_link(0, 2, 1.0);                         // S–B
  g.add_link(1, 3, 1.0);                         // A–C
  const net::LinkId l_ad = g.add_link(1, 4, 1.0);  // A–D
  g.add_link(2, 4, 2.0);                         // B–D
  g.add_link(3, 4, 2.0);                         // C–D

  // 1. Build the multicast tree with SMRP (D_thresh = 0.3 by default).
  proto::SmrpTreeBuilder smrp(g, /*source=*/0);
  smrp.join(3);  // C
  smrp.join(4);  // D
  if (dot_mode) {
    mcast::to_dot(smrp.tree(), std::cout);
    return 0;
  }
  std::cout << "SMRP tree after C and D joined:\n";
  for (const net::NodeId m : smrp.tree().members()) {
    std::cout << "  member " << m << ": path";
    for (const net::NodeId hop : smrp.tree().path_to_source(m)) {
      std::cout << " " << hop;
    }
    std::cout << "  (delay " << smrp.tree().delay_to_source(m)
              << ", SHR " << smrp.tree().shr(m) << ")\n";
  }
  const mcast::TreeMetrics metrics = mcast::measure(smrp.tree());
  std::cout << "  tree cost " << metrics.total_cost << ", max link sharing "
            << metrics.max_link_sharing << "\n\n";

  // 2. A persistent failure hits D's on-tree link.
  std::cout << "link A-D fails...\n";
  const proto::RecoveryOutcome local =
      proto::local_detour_recovery(g, smrp.tree(), /*member=*/4, l_ad);
  const proto::RecoveryOutcome global =
      proto::global_detour_recovery(g, smrp.tree(), /*member=*/4, l_ad);
  std::cout << "  local detour:  reattach at " << local.reattach_node
            << ", recovery distance " << local.recovery_distance << " ("
            << local.recovery_hops << " new link(s))\n";
  std::cout << "  global detour: reattach at " << global.reattach_node
            << ", recovery distance " << global.recovery_distance << " ("
            << global.recovery_hops << " new link(s))\n\n";

  // 3. Apply the local repair and verify the tree is healthy again.
  mcast::MulticastTree repaired = smrp.tree();
  repaired.sever(l_ad);
  proto::apply_recovery(repaired, local);
  repaired.validate();
  std::cout << "repaired: member 4 now reaches the source via";
  for (const net::NodeId hop : repaired.path_to_source(4)) {
    std::cout << " " << hop;
  }
  std::cout << " (delay " << repaired.delay_to_source(4) << ")\n";
  return 0;
}
