// Packet-level failure drill on the full distributed stack: link-state
// unicast routing + SMRP session agents. A link is cut mid-session and
// the console shows the repair as it happens — detection, expanding-ring
// search, graft, and the data plane coming back.
//
//   $ ./build/examples/failure_drill            # timeline only
//   $ ./build/examples/failure_drill --trace    # plus the control-plane
//                                               # messages around the cut
#include <cstring>
#include <iostream>

#include "eval/table.hpp"
#include "net/waxman.hpp"
#include "sim/trace.hpp"
#include "smrp/harness.hpp"

int main(int argc, char** argv) {
  using namespace smrp;
  const bool want_trace =
      argc > 1 && std::strcmp(argv[1], "--trace") == 0;
  net::Rng rng(42);

  net::WaxmanParams wax;
  wax.node_count = 50;
  const net::Graph g = net::waxman_graph(wax, rng);

  proto::SessionConfig config;
  config.data_interval = 25.0;
  config.refresh_interval = 50.0;
  config.upstream_timeout = 100.0;
  proto::SimulationHarness h(g, /*source=*/0, config);
  h.start();

  std::vector<net::NodeId> members;
  while (members.size() < 8) {
    const auto m = static_cast<net::NodeId>(1 + rng.below(49));
    if (std::find(members.begin(), members.end(), m) == members.end()) {
      h.session().join(m);
      members.push_back(m);
    }
  }
  h.simulator().run_until(2000.0);

  const auto snapshot = h.session().snapshot_tree();
  if (!snapshot) {
    std::cerr << "session did not settle\n";
    return 1;
  }
  std::cout << "t=2000ms: session settled, " << members.size()
            << " members, tree cost " << snapshot->total_cost() << "\n";

  // Cut the busiest source-incident tree link that is not a bridge.
  net::LinkId victim = net::kNoLink;
  int worst = -1;
  for (const net::NodeId child : snapshot->children(0)) {
    const net::LinkId l = snapshot->parent_link(child);
    if (!g.connected_without(l)) continue;
    if (snapshot->subtree_members(child) > worst) {
      worst = snapshot->subtree_members(child);
      victim = l;
    }
  }
  if (victim == net::kNoLink) {
    std::cout << "no cuttable tree link near the source; done\n";
    return 0;
  }
  const auto survivors = snapshot->surviving_after_link(victim);
  std::cout << "t=2000ms: cutting link " << g.link(victim).a << "-"
            << g.link(victim).b << " (disconnects " << worst
            << " member(s))\n";
  // Capture the control-plane chatter around the cut.
  sim::Tracer tracer(512);
  if (want_trace) h.network().set_tracer(&tracer);
  h.network().set_link_up(victim, false);
  const sim::Time fail_at = h.simulator().now();

  // Watch the repair unfold.
  std::vector<net::NodeId> victims;
  for (const net::NodeId m : members) {
    if (!survivors[static_cast<std::size_t>(m)]) victims.push_back(m);
  }
  std::vector<char> reported(victims.size(), 0);
  std::vector<std::pair<sim::Time, net::NodeId>> timeline;
  for (sim::Time t = fail_at; t < fail_at + 5000.0; t += 25.0) {
    h.simulator().run_until(t);
    for (std::size_t i = 0; i < victims.size(); ++i) {
      if (reported[i]) continue;
      const sim::Time last = h.session().last_data_at(victims[i]);
      if (last > fail_at) {
        timeline.emplace_back(last, victims[i]);
        reported[i] = 1;
      }
    }
    if (std::all_of(reported.begin(), reported.end(),
                    [](char c) { return c != 0; })) {
      break;
    }
  }
  std::sort(timeline.begin(), timeline.end());
  for (const auto& [at, member] : timeline) {
    std::cout << "t=" << eval::Table::fixed(at, 1) << "ms: member " << member
              << " restored (" << eval::Table::fixed(at - fail_at, 1)
              << "ms after the cut)\n";
  }
  std::cout << "repairs started: " << h.session().repairs_started()
            << ", completed: " << h.session().repairs_completed() << "\n";
  if (want_trace) {
    h.network().set_tracer(nullptr);
    std::cout << "\nrepair control traffic (sampled):\n  REPAIR_QUERY sent: "
              << tracer.count_retained("REPAIR_QUERY", sim::TraceKind::kSend)
              << "\n  REPAIR_RESP sent:  "
              << tracer.count_retained("REPAIR_RESP", sim::TraceKind::kSend)
              << "\n  JOIN_REQ sent:     "
              << tracer.count_retained("JOIN_REQ", sim::TraceKind::kSend)
              << "\n  drops:             "
              << tracer.count(sim::TraceKind::kDrop) << "\n";
  }

  const auto after = h.session().snapshot_tree();
  if (after) {
    after->validate();
    std::cout << "post-repair tree is valid; cost " << after->total_cost()
              << " (was " << snapshot->total_cost() << ")\n";
  }
  return 0;
}
