// Run an ns-2-style scenario script against the full protocol stack.
//
//   $ ./build/examples/scripted_drill examples/scenarios/link_cut.smrp
//   $ ./build/examples/scripted_drill            # built-in demo scenario
//
// The script format is documented in src/eval/script.hpp.
#include <fstream>
#include <iostream>

#include "eval/script.hpp"

namespace {

constexpr const char* kDemoScenario = R"(# built-in demo
topology waxman n=60 alpha=0.2 seed=42
mode smrp
dthresh 0.3
source 0
at 0    join 7
at 0    join 19
at 50   join 33
at 50   join 41
at 2000 report
at 2100 fail-node 7      # a member's router dies
at 2100 fail-link 0 23   # and a source-side link goes with it
at 6000 report
run 8000
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace smrp;
  try {
    eval::ScenarioScript script = [&] {
      if (argc > 1) {
        std::ifstream file(argv[1]);
        if (!file) {
          throw std::invalid_argument(std::string("cannot open ") + argv[1]);
        }
        return eval::ScenarioScript::parse(file);
      }
      std::cout << "(no script given; running the built-in demo)\n\n";
      return eval::ScenarioScript::parse_string(kDemoScenario);
    }();

    const auto report = script.execute();
    for (const std::string& line : report.log) std::cout << line << "\n";
    std::cout << "\nend of run: " << report.members_at_end << " member(s), "
              << report.starved_members_at_end << " starved, "
              << report.repairs_completed << " repair(s) completed\n";
    if (report.expect_violations >= 0) {
      std::cout << "\n" << report.expect_table;
    }
    const bool ok =
        report.starved_members_at_end == 0 && report.expect_violations <= 0;
    return ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
