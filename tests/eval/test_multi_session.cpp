// Multi-session scale driver: determinism, workload-model sanity, and the
// load-bearing claim that sessions sharing a source pool actually share
// the oracle's SPF snapshots (cache hits across sessions).
#include <gtest/gtest.h>

#include <cstdint>

#include "eval/multi_session.hpp"
#include "net/transit_stub.hpp"
#include "net/waxman.hpp"

namespace smrp::eval {
namespace {

net::Graph small_waxman(std::uint64_t seed) {
  net::Rng rng(seed);
  net::WaxmanParams wax;
  wax.node_count = 80;
  return net::waxman_graph(wax, rng);
}

MultiSessionParams small_params(SessionEngine engine) {
  MultiSessionParams p;
  p.sessions = 12;
  p.source_pool = 4;
  p.min_session_size = 2;
  p.max_session_size = 16;
  p.churn_events_per_session = 3.0;
  p.engine = engine;
  return p;
}

TEST(MultiSessionDriver, BuildsLiveSessionsUnderBothEngines) {
  const net::Graph g = small_waxman(42);
  for (const SessionEngine engine :
       {SessionEngine::kSmrp, SessionEngine::kSpf}) {
    MultiSessionDriver driver(g, small_params(engine));
    net::Rng rng(7);
    const MultiSessionReport r = driver.run(rng);
    EXPECT_EQ(r.sessions, 12);
    EXPECT_EQ(driver.session_count(), 12);
    EXPECT_GT(r.aggregate_members, 0);
    EXPECT_GE(r.join_ops, r.aggregate_members);  // churn leaves shrink
    std::int64_t members = 0;
    for (int i = 0; i < driver.session_count(); ++i) {
      ASSERT_NO_THROW(driver.session_tree(i).validate()) << "session " << i;
      members += driver.session_tree(i).member_count();
    }
    EXPECT_EQ(members, r.aggregate_members);
  }
}

TEST(MultiSessionDriver, SameSeedSameReport) {
  const net::Graph g = small_waxman(43);
  for (const SessionEngine engine :
       {SessionEngine::kSmrp, SessionEngine::kSpf}) {
    MultiSessionReport a, b;
    {
      MultiSessionDriver driver(g, small_params(engine));
      net::Rng rng(99);
      a = driver.run(rng);
    }
    {
      MultiSessionDriver driver(g, small_params(engine));
      net::Rng rng(99);
      b = driver.run(rng);
    }
    EXPECT_EQ(a.aggregate_members, b.aggregate_members);
    EXPECT_EQ(a.join_ops, b.join_ops);
    EXPECT_EQ(a.leave_ops, b.leave_ops);
    EXPECT_EQ(a.churn_events, b.churn_events);
    EXPECT_EQ(a.tree_links, b.tree_links);
    EXPECT_DOUBLE_EQ(a.total_tree_cost, b.total_tree_cost);
    EXPECT_EQ(a.oracle.lookups, b.oracle.lookups);
    EXPECT_EQ(a.oracle.cache_hits, b.oracle.cache_hits);
  }
}

TEST(MultiSessionDriver, SharedSourcePoolSharesOracleSnapshots) {
  // 12 SPF-engine sessions over 4 sources: the source SPF tree is
  // computed at most once per source, every later session is a hit.
  const net::Graph g = small_waxman(44);
  MultiSessionDriver driver(g, small_params(SessionEngine::kSpf));
  net::Rng rng(5);
  const MultiSessionReport r = driver.run(rng);
  EXPECT_LE(r.oracle.full_runs, 4u);
  EXPECT_GT(r.oracle.cache_hits, 0u);
  EXPECT_EQ(r.oracle.lookups, r.oracle.cache_hits + r.oracle.cache_misses);
}

TEST(MultiSessionDriver, HonoursExplicitSourcePool) {
  net::Rng topo_rng(11);
  net::TransitStubParams params;  // small default transit-stub
  const net::TransitStubTopology topo =
      net::generate_transit_stub(params, topo_rng);
  MultiSessionParams p = small_params(SessionEngine::kSpf);
  p.sessions = 6;
  MultiSessionDriver driver(topo.graph, p);
  net::Rng rng(3);
  // Entry 0 is the (gateway-less) transit core; stub gateways start at 1.
  const std::vector<net::NodeId> pool = {topo.gateway_of_domain[1],
                                         topo.gateway_of_domain[2]};
  const MultiSessionReport r = driver.run(rng, pool);
  for (int i = 0; i < driver.session_count(); ++i) {
    const net::NodeId s = driver.session_tree(i).source();
    EXPECT_TRUE(s == pool[0] || s == pool[1]) << "session " << i;
  }
  EXPECT_GT(r.aggregate_members, 0);
}

TEST(MultiSessionDriver, RunTwiceThrows) {
  const net::Graph g = small_waxman(45);
  MultiSessionDriver driver(g, small_params(SessionEngine::kSpf));
  net::Rng rng(1);
  driver.run(rng);
  EXPECT_THROW(driver.run(rng), std::logic_error);
}

TEST(MultiSessionSampling, ZipfStaysInRangeAndSkewsSmall) {
  net::Rng rng(123);
  int small = 0;
  constexpr int kDraws = 4000;
  for (int i = 0; i < kDraws; ++i) {
    const int v = sample_zipf(rng, 2, 64, 1.0);
    ASSERT_GE(v, 2);
    ASSERT_LE(v, 64);
    if (v <= 8) ++small;
  }
  // With s = 1 over [2,64] the first seven values carry well over half
  // the mass; use a loose bound so the test is not a distribution fit.
  EXPECT_GT(small, kDraws / 2);
}

TEST(MultiSessionDriver, RunSeededIsShardInvariant) {
  // The DESIGN.md §15/§16 contract bench_scale's det_* gate rides on:
  // every deterministic aggregate is byte-identical for any shard count,
  // because session i's whole random stream is trial_seed(seed, i) and
  // the ONE shared lock-striped oracle answers every lookup with a pure
  // function of its key. Total lookups are deterministic too; only the
  // hit/miss split may move with worker scheduling (a key one worker
  // computes first is a hit for everyone else).
  const net::Graph g = small_waxman(44);
  for (const SessionEngine engine :
       {SessionEngine::kSmrp, SessionEngine::kSpf}) {
    MultiSessionReport base;
    {
      MultiSessionDriver driver(g, small_params(engine));
      base = driver.run_seeded(0xD5ULL);
    }
    EXPECT_GT(base.aggregate_members, 0);
    for (const int shards : {2, 3, 8}) {
      MultiSessionParams p = small_params(engine);
      p.shards = shards;
      MultiSessionDriver driver(g, p);
      const MultiSessionReport r = driver.run_seeded(0xD5ULL);
      EXPECT_EQ(r.aggregate_members, base.aggregate_members) << shards;
      EXPECT_EQ(r.join_ops, base.join_ops) << shards;
      EXPECT_EQ(r.leave_ops, base.leave_ops) << shards;
      EXPECT_EQ(r.churn_events, base.churn_events) << shards;
      EXPECT_EQ(r.tree_links, base.tree_links) << shards;
      EXPECT_EQ(r.reshapes, base.reshapes) << shards;
      EXPECT_EQ(r.fallback_joins, base.fallback_joins) << shards;
      EXPECT_EQ(r.total_tree_cost, base.total_tree_cost) << shards;
      EXPECT_EQ(r.oracle.lookups, base.oracle.lookups) << shards;
      // Shared-cache counter invariants hold exactly under contention,
      // and the dedup guarantee keeps misses within the single-shard
      // count (sharing can only convert misses into hits, never the
      // other way around).
      EXPECT_EQ(r.oracle.lookups, r.oracle.cache_hits + r.oracle.cache_misses)
          << shards;
      EXPECT_EQ(r.oracle.cache_misses,
                r.oracle.incremental_repairs + r.oracle.full_runs)
          << shards;
      EXPECT_LE(r.oracle.cache_misses, base.oracle.cache_misses) << shards;
      for (int i = 0; i < driver.session_count(); ++i) {
        ASSERT_NO_THROW(driver.session_tree(i).validate()) << "session " << i;
      }
    }
  }
}

TEST(MultiSessionDriver, RunSeededRunsOncePerDriver) {
  const net::Graph g = small_waxman(45);
  MultiSessionDriver driver(g, small_params(SessionEngine::kSpf));
  driver.run_seeded(1);
  EXPECT_THROW(driver.run_seeded(1), std::logic_error);
  net::Rng rng(1);
  EXPECT_THROW(driver.run(rng), std::logic_error);
}

TEST(MultiSessionSampling, PoissonMatchesMeanRoughly) {
  net::Rng rng(321);
  constexpr int kDraws = 8000;
  std::int64_t total = 0;
  for (int i = 0; i < kDraws; ++i) total += sample_poisson(rng, 4.0);
  const double mean = static_cast<double>(total) / kDraws;
  EXPECT_NEAR(mean, 4.0, 0.2);
  EXPECT_EQ(sample_poisson(rng, 0.0), 0);
}

}  // namespace
}  // namespace smrp::eval
