#include "eval/scenario.hpp"

#include <gtest/gtest.h>

#include <set>

namespace smrp::eval {
namespace {

TEST(PickMembers, DistinctAndExcludesSource) {
  net::Rng rng(1);
  net::WaxmanParams wax;
  wax.node_count = 30;
  const net::Graph g = net::waxman_graph(wax, rng);
  const auto members = pick_members(g, 7, 10, rng);
  EXPECT_EQ(members.size(), 10u);
  std::set<net::NodeId> unique(members.begin(), members.end());
  EXPECT_EQ(unique.size(), 10u);
  EXPECT_EQ(unique.count(7), 0u);
}

TEST(PickMembers, RejectsOversizedGroup) {
  net::Rng rng(2);
  net::WaxmanParams wax;
  wax.node_count = 10;
  const net::Graph g = net::waxman_graph(wax, rng);
  EXPECT_THROW(pick_members(g, 0, 10, rng), std::invalid_argument);
}

TEST(Scenario, ProducesComparisonPerMember) {
  net::Rng rng(3);
  ScenarioParams p;
  p.node_count = 60;
  p.group_size = 12;
  const ScenarioResult r = run_scenario(p, rng);
  EXPECT_EQ(r.members.size(), 12u);
  EXPECT_GT(r.cost_spf, 0.0);
  EXPECT_GT(r.cost_smrp, 0.0);
  EXPECT_GT(r.valid_member_count(), 0);
  for (const MemberComparison& m : r.members) {
    if (!m.valid) continue;
    EXPECT_GT(m.rd_spf, 0.0);
    EXPECT_GE(m.rd_smrp, 0.0);
    EXPECT_GT(m.delay_spf, 0.0);
    EXPECT_GT(m.delay_smrp, 0.0);
  }
}

TEST(Scenario, SmrpDelayNeverBelowSpf) {
  // The SPF tree gives every member its shortest-path delay, so the SMRP
  // delay can only be equal or larger.
  net::Rng rng(4);
  ScenarioParams p;
  p.node_count = 80;
  p.group_size = 20;
  const ScenarioResult r = run_scenario(p, rng);
  for (const MemberComparison& m : r.members) {
    EXPECT_GE(m.delay_smrp + 1e-9, m.delay_spf);
    EXPECT_GE(m.delay_relative(), -1e-12);
  }
  EXPECT_GE(r.cost_relative(), -1e-9);
}

TEST(Scenario, DeterministicUnderSameSeed) {
  ScenarioParams p;
  p.node_count = 50;
  p.group_size = 10;
  net::Rng a(42);
  net::Rng b(42);
  const ScenarioResult ra = run_scenario(p, a);
  const ScenarioResult rb = run_scenario(p, b);
  ASSERT_EQ(ra.members.size(), rb.members.size());
  for (std::size_t i = 0; i < ra.members.size(); ++i) {
    EXPECT_EQ(ra.members[i].member, rb.members[i].member);
    EXPECT_DOUBLE_EQ(ra.members[i].rd_spf, rb.members[i].rd_spf);
    EXPECT_DOUBLE_EQ(ra.members[i].rd_smrp, rb.members[i].rd_smrp);
  }
  EXPECT_DOUBLE_EQ(ra.cost_smrp, rb.cost_smrp);
}

TEST(Scenario, LocalOnSpfPolicyRuns) {
  net::Rng rng(5);
  ScenarioParams p;
  p.node_count = 60;
  p.group_size = 10;
  p.spf_policy = RecoveryPolicy::kLocalDetour;
  const ScenarioResult r = run_scenario(p, rng);
  EXPECT_GT(r.valid_member_count(), 0);
}

TEST(Scenario, QuerySchemeRuns) {
  net::Rng rng(6);
  ScenarioParams p;
  p.node_count = 60;
  p.group_size = 10;
  p.use_query_scheme = true;
  const ScenarioResult r = run_scenario(p, rng);
  EXPECT_EQ(r.members.size(), 10u);
  EXPECT_GT(r.valid_member_count(), 0);
}

TEST(Scenario, NodeFailureModelRuns) {
  net::Rng rng(8);
  ScenarioParams p;
  p.node_count = 60;
  p.group_size = 12;
  p.failure_model = FailureModel::kWorstCaseNode;
  const ScenarioResult r = run_scenario(p, rng);
  EXPECT_EQ(r.members.size(), 12u);
  // Some members may be their own worst-case node (invalid); the rest
  // must produce positive recovery distances.
  for (const MemberComparison& m : r.members) {
    if (m.valid) EXPECT_GT(m.rd_spf, 0.0);
  }
}

TEST(Scenario, SteinerBaselineCheaperTree) {
  net::Rng rng(9);
  ScenarioParams spf_params;
  spf_params.node_count = 60;
  spf_params.group_size = 15;
  ScenarioParams steiner_params = spf_params;
  steiner_params.baseline = BaselineKind::kSteiner;
  net::Rng rng2(9);
  const ScenarioResult with_spf = run_scenario(spf_params, rng);
  const ScenarioResult with_steiner = run_scenario(steiner_params, rng2);
  // Same seed → same topology/members; the Steiner baseline tree must
  // not cost more than the SPF baseline tree.
  EXPECT_LE(with_steiner.cost_spf, with_spf.cost_spf + 1e-9);
}

TEST(Scenario, TopologyModelsProduceConnectedGraphs) {
  for (const auto model :
       {TopologyModel::kWaxman, TopologyModel::kErdosRenyi,
        TopologyModel::kBarabasiAlbert}) {
    net::Rng rng(10);
    ScenarioParams p;
    p.node_count = 80;   // enough density for recoverable failures in all
    p.alpha = 0.3;       // three families (sparse Waxman corners can make
    p.group_size = 10;   // every source link a bridge, which is valid=0)
    p.topology = model;
    const ScenarioResult r = run_scenario(p, rng);
    EXPECT_EQ(r.members.size(), 10u);
    EXPECT_GT(r.valid_member_count(), 0);
  }
}

TEST(Sweep, AggregatesRequestedGrid) {
  ScenarioParams p;
  p.node_count = 50;
  p.group_size = 8;
  const SweepCell cell = run_sweep(p, 3, 2, 99);
  EXPECT_EQ(cell.scenarios, 6);
  EXPECT_EQ(cell.rd_relative.count, 6);
  EXPECT_EQ(cell.cost_relative.count, 6);
  EXPECT_GT(cell.avg_degree, 1.0);
}

TEST(Sweep, DeterministicUnderSameSeed) {
  ScenarioParams p;
  p.node_count = 50;
  p.group_size = 8;
  const SweepCell a = run_sweep(p, 2, 2, 1234);
  const SweepCell b = run_sweep(p, 2, 2, 1234);
  EXPECT_DOUBLE_EQ(a.rd_relative.mean, b.rd_relative.mean);
  EXPECT_DOUBLE_EQ(a.cost_relative.mean, b.cost_relative.mean);
}

TEST(Sweep, HigherDthreshBuysMoreRdReduction) {
  // The headline monotonicity of Fig. 8, as a regression guard (coarse
  // grid to stay fast).
  ScenarioParams lo;
  lo.node_count = 60;
  lo.group_size = 15;
  lo.smrp.d_thresh = 0.05;
  ScenarioParams hi = lo;
  hi.smrp.d_thresh = 0.5;
  const SweepCell cl = run_sweep(lo, 4, 3, 777);
  const SweepCell ch = run_sweep(hi, 4, 3, 777);
  EXPECT_GT(ch.rd_relative.mean, cl.rd_relative.mean);
  EXPECT_GT(ch.cost_relative.mean, cl.cost_relative.mean);
  EXPECT_GT(ch.delay_relative.mean, cl.delay_relative.mean);
}

}  // namespace
}  // namespace smrp::eval
