#include "eval/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace smrp::eval {
namespace {

TEST(Stats, EmptyInput) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_half, 0.0);
}

TEST(Stats, SingleSample) {
  const std::vector<double> xs{3.5};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 1);
  EXPECT_DOUBLE_EQ(s.mean, 3.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_half, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 3.5);
  EXPECT_DOUBLE_EQ(s.max, 3.5);
}

TEST(Stats, KnownSmallSample) {
  // {2, 4, 4, 4, 5, 5, 7, 9}: mean 5, sample stddev sqrt(32/7).
  const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 8);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(32.0 / 7.0), 1e-12);
  // CI half-width = t(7) * sd / sqrt(8), t(7) = 2.365.
  EXPECT_NEAR(s.ci95_half, 2.365 * s.stddev / std::sqrt(8.0), 1e-9);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(Stats, ConstantSamplesHaveZeroSpread) {
  const std::vector<double> xs(100, 1.25);
  const Summary s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.mean, 1.25);
  EXPECT_NEAR(s.stddev, 0.0, 1e-12);
  EXPECT_NEAR(s.ci95_half, 0.0, 1e-12);
}

TEST(Stats, TCriticalValuesExactAtTableEntries) {
  EXPECT_DOUBLE_EQ(t_critical_95(1), 12.706);
  EXPECT_DOUBLE_EQ(t_critical_95(5), 2.571);
  EXPECT_DOUBLE_EQ(t_critical_95(30), 2.042);
  EXPECT_DOUBLE_EQ(t_critical_95(120), 1.980);
}

TEST(Stats, TCriticalMonotoneDecreasing) {
  double prev = t_critical_95(1);
  for (int dof = 2; dof <= 200; ++dof) {
    const double t = t_critical_95(dof);
    EXPECT_LE(t, prev + 1e-12) << "dof " << dof;
    prev = t;
  }
  EXPECT_NEAR(t_critical_95(100000), 1.96, 1e-2);
}

TEST(Stats, TCriticalHandlesDegenerateDof) {
  EXPECT_DOUBLE_EQ(t_critical_95(0), 0.0);
  EXPECT_DOUBLE_EQ(t_critical_95(-3), 0.0);
}

TEST(Stats, RunningMatchesBatch) {
  std::vector<double> xs;
  RunningStats acc;
  double v = 0.1;
  for (int i = 0; i < 500; ++i) {
    v = v * 1.1 - static_cast<double>(i % 7);
    xs.push_back(v);
    acc.add(v);
    v = std::fmod(v, 50.0);
  }
  const Summary batch = summarize(xs);
  const Summary streaming = acc.summary();
  EXPECT_EQ(batch.count, streaming.count);
  EXPECT_NEAR(batch.mean, streaming.mean, 1e-9);
  EXPECT_NEAR(batch.stddev, streaming.stddev, 1e-9);
}

}  // namespace
}  // namespace smrp::eval
