#include "eval/engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <set>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "net/rng.hpp"

namespace smrp::eval {
namespace {

// A deterministic workload: every trial derives all samples from its own
// seed, the way real benches derive topologies and member sets.
void sample_body(TrialContext& ctx) {
  net::Rng rng(ctx.seed);
  for (int i = 0; i < 50; ++i) {
    ctx.recorder.add("uniform", rng.uniform());
    ctx.recorder.add("latency", 10.0 + 90.0 * rng.uniform());
  }
  ctx.recorder.add("trial_index", static_cast<double>(ctx.trial));
}

EngineResult run_sampled(int trials, int threads,
                         std::uint64_t seed = 20050628) {
  EngineOptions options;
  options.seed = seed;
  options.trials = trials;
  options.threads = threads;
  return run_trials(options, sample_body);
}

TEST(TrialSeed, IsDeterministicAndDistinct) {
  EXPECT_EQ(trial_seed(42, 0), trial_seed(42, 0));
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 256; ++i) seen.insert(trial_seed(42, i));
  EXPECT_EQ(seen.size(), 256u);
  // Different bench seeds give different trial streams.
  EXPECT_NE(trial_seed(42, 0), trial_seed(43, 0));
}

TEST(RunTrials, SingleTrialRecordsItsSeries) {
  const EngineResult res = run_sampled(1, 1);
  EXPECT_EQ(res.trials, 1);
  EXPECT_EQ(res.threads, 1);
  ASSERT_NE(res.find("uniform"), nullptr);
  EXPECT_EQ(res.find("uniform")->count(), 50);
  EXPECT_EQ(res.summary("latency").count, 50);
  EXPECT_EQ(res.find("missing"), nullptr);
  EXPECT_EQ(res.summary("missing").count, 0);
}

TEST(RunTrials, MergedMomentsAreIdenticalAcrossThreadCounts) {
  const EngineResult serial = run_sampled(12, 1);
  for (const int threads : {2, 4}) {
    const EngineResult parallel = run_sampled(12, threads);
    EXPECT_EQ(parallel.threads, threads);
    ASSERT_EQ(parallel.series.size(), serial.series.size());
    for (const auto& [name, stats] : serial.series) {
      SCOPED_TRACE(name);
      const RunningStats* other = parallel.find(name);
      ASSERT_NE(other, nullptr);
      // Bit-identical, not just approximately equal: the merge happens
      // in trial-index order regardless of completion order.
      const Summary a = stats.summary();
      const Summary b = other->summary();
      EXPECT_EQ(b.count, a.count);
      EXPECT_EQ(b.mean, a.mean);
      EXPECT_EQ(b.stddev, a.stddev);
      EXPECT_EQ(b.min, a.min);
      EXPECT_EQ(b.max, a.max);
      EXPECT_EQ(other->sum(), stats.sum());
      EXPECT_EQ(other->percentile(0.9), stats.percentile(0.9));
    }
  }
}

TEST(RunTrials, EveryTrialSeesItsOwnIndexAndSeed) {
  const EngineResult res = run_sampled(8, 4);
  // trial_index got one sample per trial: 0..7.
  const Summary s = res.summary("trial_index");
  EXPECT_EQ(s.count, 8);
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 7.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.5);
}

TEST(RunTrials, ThreadCountIsClampedToTrials) {
  const EngineResult res = run_sampled(2, 16);
  EXPECT_EQ(res.threads, 2);
  EXPECT_EQ(res.trials, 2);
}

TEST(RunTrials, ExceptionsPropagateAfterDraining) {
  EngineOptions options;
  options.trials = 6;
  options.threads = 3;
  std::atomic<int> started{0};
  EXPECT_THROW(run_trials(options,
                          [&](TrialContext& ctx) {
                            started.fetch_add(1);
                            if (ctx.trial == 2) {
                              throw std::runtime_error("trial blew up");
                            }
                          }),
               std::runtime_error);
  EXPECT_GE(started.load(), 1);
}

TEST(RunTrials, TelemetryIsNullUnlessCollected) {
  EngineOptions options;
  options.trials = 3;
  options.threads = 1;
  const EngineResult off = run_trials(options, [](TrialContext& ctx) {
    EXPECT_EQ(ctx.recorder.telemetry("t"), nullptr);
  });
  EXPECT_TRUE(off.telemetry.empty());

  options.collect_telemetry = true;
  options.threads = 3;
  const EngineResult on = run_trials(options, [](TrialContext& ctx) {
    obs::Telemetry* t =
        ctx.recorder.telemetry("trial" + std::to_string(ctx.trial));
    ASSERT_NE(t, nullptr);
    t->metrics.counter("samples").add(1 + ctx.trial);
    ctx.recorder.close_telemetry(t, 100.0 * (ctx.trial + 1));
  });
  // Snapshots surface in trial order, never completion order.
  ASSERT_EQ(on.telemetry.size(), 3u);
  EXPECT_EQ(on.telemetry[0].label, "trial0");
  EXPECT_EQ(on.telemetry[1].label, "trial1");
  EXPECT_EQ(on.telemetry[2].label, "trial2");
  EXPECT_DOUBLE_EQ(on.telemetry[2].now, 300.0);
  ASSERT_NE(on.telemetry[1].telemetry, nullptr);
}

TEST(BenchConfigTest, RendersTypedValuesInInsertionOrder) {
  BenchConfig config;
  config.set("node_count", 100);
  config.set("alpha", 0.25);
  config.set("reshaping", true);
  config.set("model", "waxman");
  config.set("big", static_cast<std::int64_t>(1) << 40);
  const auto& entries = config.entries();
  ASSERT_EQ(entries.size(), 5u);
  EXPECT_EQ(entries[0].first, "node_count");
  EXPECT_EQ(entries[0].second, "100");
  EXPECT_EQ(entries[1].second, "0.25");
  EXPECT_EQ(entries[2].second, "true");
  EXPECT_EQ(entries[3].second, "\"waxman\"");
  EXPECT_EQ(entries[4].second, "1099511627776");
}

TEST(BenchConfigTest, SettingAKeyTwiceOverwritesInPlace) {
  BenchConfig config;
  config.set("trials", 10);
  config.set("mode", "a");
  config.set("trials", 20);
  ASSERT_EQ(config.entries().size(), 2u);
  EXPECT_EQ(config.entries()[0].first, "trials");
  EXPECT_EQ(config.entries()[0].second, "20");
}

std::string json_without_timing(const EngineResult& res) {
  BenchConfig config;
  config.set("node_count", 100);
  std::ostringstream out;
  write_bench_json(out, "unit-test", "engine unit test", config, res);
  std::string text = out.str();
  // Drop every line mentioning "timing" — the only thread-count- and
  // wall-clock-dependent part of the report, by contract a single line.
  std::string kept;
  std::size_t pos = 0;
  int dropped = 0;
  while (pos < text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string line =
        text.substr(pos, eol == std::string::npos ? eol : eol - pos + 1);
    if (line.find("\"timing\"") == std::string::npos) {
      kept += line;
    } else {
      ++dropped;
    }
    if (eol == std::string::npos) break;
    pos = eol + 1;
  }
  EXPECT_EQ(dropped, 1);
  return kept;
}

TEST(WriteBenchJson, IsByteIdenticalAcrossThreadCountsModuloTiming) {
  const std::string serial = json_without_timing(run_sampled(10, 1));
  const std::string parallel = json_without_timing(run_sampled(10, 4));
  EXPECT_EQ(serial, parallel);
  // And it actually depends on the data: a different seed changes it.
  EXPECT_NE(serial, json_without_timing(run_sampled(10, 1, 7)));
}

TEST(WriteBenchJson, CarriesSchemaConfigAndSeriesKeys) {
  const EngineResult res = run_sampled(3, 1);
  BenchConfig config;
  config.set("node_count", 100);
  std::ostringstream out;
  write_bench_json(out, "unit-test", "engine unit test", config, res);
  const std::string text = out.str();
  for (const char* needle :
       {"\"schema\": \"smrp.bench.v1\"", "\"experiment\": \"unit-test\"",
        "\"config\"", "\"node_count\": 100", "\"seed\": 20050628",
        "\"trials\": 3", "\"series\"", "\"uniform\"", "\"latency\"",
        "\"count\"", "\"mean\"", "\"stddev\"", "\"ci95_half\"", "\"p50\"",
        "\"timing\"", "\"wall_ms\"", "\"trials_per_sec\""}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }
}

TEST(WriteBenchJson, NonFiniteValuesRenderAsNull) {
  EngineOptions options;
  options.trials = 1;
  const EngineResult res = run_trials(options, [](TrialContext& ctx) {
    ctx.recorder.add("inf", std::numeric_limits<double>::infinity());
  });
  BenchConfig config;
  std::ostringstream out;
  write_bench_json(out, "unit-test", "t", config, res);
  EXPECT_NE(out.str().find("null"), std::string::npos);
}

}  // namespace
}  // namespace smrp::eval
