#include "eval/script.hpp"

#include <gtest/gtest.h>

namespace smrp::eval {
namespace {

constexpr const char* kBasicScenario = R"(
# A small drill on the deterministic seed-7 Waxman graph.
topology waxman n=40 alpha=0.25 seed=7
mode smrp
dthresh 0.3
source 0
at 0    join 5
at 0    join 9
at 100  join 17
at 2500 report
run 4000
)";

TEST(ScenarioScript, ParsesBasicScenario) {
  const ScenarioScript script = ScenarioScript::parse_string(kBasicScenario);
  EXPECT_EQ(script.source(), 0);
  EXPECT_DOUBLE_EQ(script.run_until(), 4000.0);
  ASSERT_EQ(script.events().size(), 4u);
  EXPECT_EQ(script.events()[0].kind, ScriptEvent::Kind::kJoin);
  EXPECT_EQ(script.events()[3].kind, ScriptEvent::Kind::kReport);
}

TEST(ScenarioScript, EventsSortedByTime) {
  const ScenarioScript script = ScenarioScript::parse_string(R"(
topology waxman n=30 seed=1
at 500 join 3
at 100 join 4
run 1000
)");
  ASSERT_EQ(script.events().size(), 2u);
  EXPECT_EQ(script.events()[0].a, 4);
  EXPECT_EQ(script.events()[1].a, 3);
}

TEST(ScenarioScript, ExecutesAndServesMembers) {
  const ScenarioScript script = ScenarioScript::parse_string(kBasicScenario);
  const auto report = script.execute();
  EXPECT_EQ(report.members_at_end, 3);
  EXPECT_EQ(report.starved_members_at_end, 0);
  // The report directive logged one line per member plus the join lines.
  EXPECT_GE(report.log.size(), 6u);
}

TEST(ScenarioScript, FailureAndRepairScenario) {
  // Join on the Fig-1-like 5-node graph is too small for Waxman; use a
  // modest graph and cut a link on some member's path, then verify the
  // protocol kept everyone served by the end.
  const ScenarioScript script = ScenarioScript::parse_string(R"(
topology waxman n=40 alpha=0.3 seed=11
mode smrp
source 0
at 0    join 7
at 0    join 13
at 0    join 22
at 3000 fail-node 0   # dead source: everyone must starve...
at 4500 restore-node 0
run 9000
)");
  const auto report = script.execute();
  EXPECT_EQ(report.members_at_end, 3);
  // After the source comes back and soft state refreshes, members recover.
  EXPECT_EQ(report.starved_members_at_end, 0);
}

TEST(ScenarioScript, DeterministicExecution) {
  const ScenarioScript script = ScenarioScript::parse_string(kBasicScenario);
  const auto a = script.execute();
  const auto b = script.execute();
  EXPECT_EQ(a.log, b.log);
  EXPECT_EQ(a.starved_members_at_end, b.starved_members_at_end);
}

TEST(ScenarioScript, ParseErrorsCarryLineNumbers) {
  try {
    ScenarioScript::parse_string("topology waxman n=30\nbogus 1\nrun 100\n");
    FAIL() << "expected parse error";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(ScenarioScript, RejectsMissingRun) {
  EXPECT_THROW(ScenarioScript::parse_string("topology waxman n=30\n"),
               std::invalid_argument);
}

TEST(ScenarioScript, RejectsUnknownSettings) {
  EXPECT_THROW(
      ScenarioScript::parse_string("topology waxman n=30 bananas=1\nrun 10\n"),
      std::invalid_argument);
}

TEST(ScenarioScript, RejectsEventsPastHorizon) {
  EXPECT_THROW(ScenarioScript::parse_string(R"(
topology waxman n=30
at 500 join 3
run 100
)"),
               std::invalid_argument);
}

TEST(ScenarioScript, RejectsUnknownLink) {
  const ScenarioScript script = ScenarioScript::parse_string(R"(
topology ba n=30 m=2 seed=3
at 10 fail-link 0 29
run 100
)");
  // Node 29 attaches preferentially; a 0–29 link may or may not exist.
  // Either the script runs, or it reports the missing link cleanly.
  try {
    (void)script.execute();
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("no link"), std::string::npos);
  }
}

TEST(ScenarioScript, SupportsAllTopologyModels) {
  for (const char* line :
       {"topology waxman n=30 alpha=0.3 seed=2",
        "topology erdos n=30 degree=6 seed=2", "topology ba n=30 m=2 seed=2"}) {
    const std::string text = std::string(line) +
                             "\nsource 0\nat 0 join 5\nrun 1500\n";
    const auto report = ScenarioScript::parse_string(text).execute();
    EXPECT_EQ(report.members_at_end, 1) << line;
    EXPECT_EQ(report.starved_members_at_end, 0) << line;
  }
}

TEST(ScenarioScript, ChaosDirectivesParse) {
  const ScenarioScript script = ScenarioScript::parse_string(R"(
topology waxman n=40 seed=7
source 0
at 0    join 5
at 1000 flap-link 0 5 400
at 1500 crash-node 9 600
at 2000 loss-burst 1000 0.15 0.01
at 3500 audit
run 5000
)");
  ASSERT_EQ(script.events().size(), 5u);
  EXPECT_EQ(script.events()[1].kind, ScriptEvent::Kind::kFlapLink);
  EXPECT_DOUBLE_EQ(script.events()[1].hold, 400.0);
  EXPECT_EQ(script.events()[2].kind, ScriptEvent::Kind::kCrashRestart);
  EXPECT_EQ(script.events()[3].kind, ScriptEvent::Kind::kLossBurst);
  EXPECT_DOUBLE_EQ(script.events()[3].loss, 0.15);
  EXPECT_DOUBLE_EQ(script.events()[3].base_loss, 0.01);
  EXPECT_EQ(script.events()[4].kind, ScriptEvent::Kind::kAudit);
}

TEST(ScenarioScript, ChaosDrillRunsAndAuditsClean) {
  // Flap a member's link, crash/restart another node, end with an audit:
  // transient faults must heal on their own and leave the state clean.
  const auto report = ScenarioScript::parse_string(R"(
topology waxman n=40 alpha=0.3 seed=11
mode smrp
source 0
at 0    join 7
at 0    join 13
at 2000 crash-node 22 500
at 3000 loss-burst 800 0.10
at 7000 audit
at 7000 report
run 8000
)").execute();
  EXPECT_EQ(report.members_at_end, 2);
  EXPECT_EQ(report.starved_members_at_end, 0);
  EXPECT_EQ(report.invariant_violations, 0);
}

TEST(ScenarioScript, ChaosDirectiveValidation) {
  // Bad hold / probability values fail at parse time with line numbers.
  EXPECT_THROW(ScenarioScript::parse_string(
                   "topology waxman n=30\nat 10 flap-link 0 1 0\nrun 100\n"),
               std::invalid_argument);
  EXPECT_THROW(ScenarioScript::parse_string(
                   "topology waxman n=30\nat 10 loss-burst 100 1.5\nrun 500\n"),
               std::invalid_argument);
  EXPECT_THROW(ScenarioScript::parse_string(
                   "topology waxman n=30\nat 10 crash-node 4\nrun 100\n"),
               std::invalid_argument);
  // Crashing the source is refused at execute time.
  const ScenarioScript script = ScenarioScript::parse_string(
      "topology waxman n=30 seed=2\nsource 0\nat 10 crash-node 0 100\nrun "
      "500\n");
  EXPECT_THROW((void)script.execute(), std::invalid_argument);
}

TEST(ScenarioScript, ExpectAndSrlgDirectivesParse) {
  const ScenarioScript script = ScenarioScript::parse_string(R"(
topology waxman n=40 alpha=0.25 seed=7
source 0
expect core
srlg conduit 0-5 0-9
at 0    join 5
at 1500 srlg-cut conduit 800
at 3000 srlg-cut conduit
run 5000
)");
  EXPECT_EQ(script.expect_rules(), "core");
  ASSERT_EQ(script.events().size(), 3u);
  EXPECT_EQ(script.events()[1].kind, ScriptEvent::Kind::kSrlgCut);
  EXPECT_EQ(script.events()[1].srlg, "conduit");
  EXPECT_DOUBLE_EQ(script.events()[1].hold, 800.0);
  EXPECT_DOUBLE_EQ(script.events()[2].hold, 0.0);  // permanent
}

TEST(ScenarioScript, SrlgDirectiveValidation) {
  // Undefined group referenced by srlg-cut.
  EXPECT_THROW(ScenarioScript::parse_string(
                   "topology waxman n=30 seed=7\nat 10 srlg-cut ghost\n"
                   "run 100\n"),
               std::invalid_argument);
  // Bad endpoint-pair syntax.
  EXPECT_THROW(ScenarioScript::parse_string(
                   "topology waxman n=30 seed=7\nsrlg c 0:5\nrun 100\n"),
               std::invalid_argument);
  // Duplicate group name.
  EXPECT_THROW(ScenarioScript::parse_string(
                   "topology waxman n=30 seed=7\nsrlg c 0-5\nsrlg c 0-9\n"
                   "run 100\n"),
               std::invalid_argument);
  // Empty group.
  EXPECT_THROW(ScenarioScript::parse_string(
                   "topology waxman n=30 seed=7\nsrlg c\nrun 100\n"),
               std::invalid_argument);
  // Negative heal time.
  EXPECT_THROW(ScenarioScript::parse_string(
                   "topology waxman n=30 seed=7\nsrlg c 0-5\n"
                   "at 10 srlg-cut c -5\nrun 100\n"),
               std::invalid_argument);
}

TEST(ScenarioScript, SrlgCutExecutesAndHeals) {
  // Cut a source-side risk group at once (the link the example scenarios
  // flap); the protocol must keep everyone served after the group heals.
  const auto report = ScenarioScript::parse_string(R"(
topology waxman n=60 alpha=0.2 beta=0.3 seed=2005
mode smrp
source 0
srlg conduit 0-22
at 0    join 12
at 0    join 25
at 2000 srlg-cut conduit 1000
at 7000 report
run 8000
)").execute();
  EXPECT_EQ(report.members_at_end, 2);
  EXPECT_EQ(report.starved_members_at_end, 0);
  bool logged = false;
  for (const std::string& line : report.log) {
    if (line.find("srlg-cut conduit (1 links, heal") != std::string::npos) {
      logged = true;
    }
  }
  EXPECT_TRUE(logged);
}

TEST(ScenarioScript, ExpectDirectiveChecksTheCoreRulesetOnline) {
  const auto report = ScenarioScript::parse_string(R"(
topology waxman n=40 alpha=0.25 seed=7
mode smrp
source 0
expect core
at 0    join 5
at 0    join 9
at 2000 crash-node 9 500
at 6000 report
run 7000
)").execute();
  EXPECT_EQ(report.starved_members_at_end, 0);
  EXPECT_EQ(report.expect_violations, 0) << report.expect_table;
  EXPECT_NE(report.expect_table.find("expect: 11 rules"), std::string::npos);
  bool summarized = false;
  for (const std::string& line : report.log) {
    if (line.find("expect: 11 rules, 0 violations") != std::string::npos) {
      summarized = true;
    }
  }
  EXPECT_TRUE(summarized);
}

TEST(ScenarioScript, ScenariosWithoutExpectReportNoTable) {
  const auto report =
      ScenarioScript::parse_string(kBasicScenario).execute();
  EXPECT_EQ(report.expect_violations, -1);
  EXPECT_TRUE(report.expect_table.empty());
}

TEST(ScenarioScript, PimModeRuns) {
  const auto report = ScenarioScript::parse_string(R"(
topology waxman n=40 seed=5
mode pim
source 0
at 0 join 11
run 2500
)").execute();
  EXPECT_EQ(report.members_at_end, 1);
  EXPECT_EQ(report.starved_members_at_end, 0);
}

}  // namespace
}  // namespace smrp::eval
