#include "eval/table.hpp"

#include <gtest/gtest.h>

namespace smrp::eval {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "2.5"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| name   | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 2.5   |"), std::string::npos);
  EXPECT_NE(out.find("|--------|-------|"), std::string::npos);
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, RejectsEmptyHeaders) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, FixedFormatting) {
  EXPECT_EQ(Table::fixed(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fixed(-1.0, 0), "-1");
  EXPECT_EQ(Table::fixed(2.0, 3), "2.000");
}

TEST(Table, PercentFormatting) {
  EXPECT_EQ(Table::percent(0.2, 1), "20.0%");
  EXPECT_EQ(Table::percent(-0.055, 1), "-5.5%");
}

TEST(Table, CiFormatting) {
  EXPECT_EQ(Table::with_ci(1.5, 0.25, 2), "1.50 ± 0.25");
  EXPECT_EQ(Table::percent_with_ci(0.2, 0.01, 1), "20.0% ± 1.0%");
}

}  // namespace
}  // namespace smrp::eval
