#include "smrp/recovery.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "net/paths.hpp"
#include "net/waxman.hpp"
#include "smrp/tree_builder.hpp"
#include "spf/spf_tree_builder.hpp"
#include "testing_topologies.hpp"

namespace smrp::proto {
namespace {

using testing::Fig1Topology;

mcast::MulticastTree fig1_tree(const Fig1Topology& fig) {
  mcast::MulticastTree tree(fig.graph, fig.S);
  tree.graft(fig.C, {fig.C, fig.A, fig.S});
  tree.graft(fig.D, {fig.D, fig.A});
  return tree;
}

TEST(WorstCaseFailure, PicksSourceIncidentLink) {
  const Fig1Topology fig;
  const mcast::MulticastTree tree = fig1_tree(fig);
  EXPECT_EQ(worst_case_failure_link(tree, fig.C), fig.SA);
  EXPECT_EQ(worst_case_failure_link(tree, fig.D), fig.SA);
  EXPECT_THROW(static_cast<void>(worst_case_failure_link(tree, fig.B)),
               std::invalid_argument);
}

TEST(LocalDetour, UnaffectedMemberNeedsNoRecovery) {
  const Fig1Topology fig;
  mcast::MulticastTree tree(fig.graph, fig.S);
  tree.graft(fig.C, {fig.C, fig.A, fig.S});
  tree.graft(fig.D, {fig.D, fig.B, fig.S});
  const RecoveryOutcome out =
      local_detour_recovery(fig.graph, tree, fig.D, fig.SA);
  EXPECT_FALSE(out.disconnected);
  EXPECT_TRUE(out.recovered);
  EXPECT_DOUBLE_EQ(out.recovery_distance, 0.0);
  EXPECT_EQ(out.reattach_node, fig.D);
}

TEST(LocalDetour, FailsWhenFailureIsolatesMember) {
  // Chain 0–1–2: the only link into 2 is the tree link; no detour exists.
  net::Graph g(3);
  g.add_link(0, 1, 1.0);
  const net::LinkId last = g.add_link(1, 2, 1.0);
  mcast::MulticastTree tree(g, 0);
  tree.graft(2, {2, 1, 0});
  const RecoveryOutcome out = local_detour_recovery(g, tree, 2, last);
  EXPECT_TRUE(out.disconnected);
  EXPECT_FALSE(out.recovered);
}

TEST(GlobalDetour, FailsWhenFailureIsolatesMember) {
  net::Graph g(3);
  g.add_link(0, 1, 1.0);
  const net::LinkId last = g.add_link(1, 2, 1.0);
  mcast::MulticastTree tree(g, 0);
  tree.graft(2, {2, 1, 0});
  EXPECT_FALSE(global_detour_recovery(g, tree, 2, last).recovered);
}

TEST(Recovery, NonMemberCannotInitiate) {
  const Fig1Topology fig;
  const mcast::MulticastTree tree = fig1_tree(fig);
  EXPECT_THROW(local_detour_recovery(fig.graph, tree, fig.A, fig.SA),
               std::invalid_argument);
}

TEST(ApplyRecovery, RegraftsAfterSever) {
  const Fig1Topology fig;
  mcast::MulticastTree tree = fig1_tree(fig);
  const RecoveryOutcome rec =
      local_detour_recovery(fig.graph, tree, fig.D, fig.AD);
  ASSERT_TRUE(rec.recovered);
  tree.sever(fig.AD);
  apply_recovery(tree, rec);
  tree.validate();
  EXPECT_TRUE(tree.is_member(fig.D));
  EXPECT_EQ(tree.parent(fig.D), fig.C);
  EXPECT_DOUBLE_EQ(tree.delay_to_source(fig.D), rec.new_delay);
}

TEST(ApplyRecovery, FullSessionRepairAfterWorstCaseFailure) {
  // Fail L_SA on the Figure-1 tree: both members drop; repairing them in
  // sequence must yield a valid tree serving both again, with the second
  // repair allowed to ride on the first (neighbor-assisted recovery).
  const Fig1Topology fig;
  mcast::MulticastTree tree = fig1_tree(fig);
  const std::vector<RecoveryOutcome> plans = {
      local_detour_recovery(fig.graph, tree, fig.C, fig.SA),
      local_detour_recovery(fig.graph, tree, fig.D, fig.SA),
  };
  const auto lost = tree.sever(fig.SA);
  ASSERT_EQ(lost.size(), 2u);
  for (const RecoveryOutcome& plan : plans) {
    ASSERT_TRUE(plan.recovered);
    apply_recovery(tree, plan);
  }
  tree.validate();
  EXPECT_TRUE(tree.is_member(fig.C));
  EXPECT_TRUE(tree.is_member(fig.D));
  // The repaired tree must not use the dead link.
  for (const net::LinkId l : tree.tree_links()) EXPECT_NE(l, fig.SA);
}

TEST(ApplyRecovery, RejectsFailedPlans) {
  const Fig1Topology fig;
  mcast::MulticastTree tree = fig1_tree(fig);
  RecoveryOutcome bogus;
  bogus.recovered = false;
  EXPECT_THROW(apply_recovery(tree, bogus), std::invalid_argument);
}

// ---- Randomised recovery properties ---------------------------------------

class RecoveryProperty : public ::testing::TestWithParam<std::uint64_t> {};

// The tree references the graph by pointer, so the graph must live at a
// stable address for the scenario's lifetime.
struct BuiltScenario {
  std::unique_ptr<net::Graph> graph_holder;
  std::unique_ptr<mcast::MulticastTree> tree_holder;
  std::vector<net::NodeId> members;
  const net::Graph& graph;
  const mcast::MulticastTree& tree;
};

BuiltScenario build_random_scenario(std::uint64_t seed) {
  net::Rng rng(seed);
  net::WaxmanParams wax;
  wax.node_count = 60;
  auto graph = std::make_unique<net::Graph>(net::waxman_graph(wax, rng));
  SmrpTreeBuilder builder(*graph, 0);
  std::vector<net::NodeId> members;
  for (int i = 0; i < 15; ++i) {
    const auto m = static_cast<net::NodeId>(1 + rng.below(59));
    if (builder.tree().is_member(m)) continue;
    builder.join(m);
    members.push_back(m);
  }
  auto tree = std::make_unique<mcast::MulticastTree>(builder.tree());
  const net::Graph& graph_ref = *graph;
  const mcast::MulticastTree& tree_ref = *tree;
  return BuiltScenario{std::move(graph), std::move(tree), std::move(members),
                       graph_ref, tree_ref};
}

TEST_P(RecoveryProperty, RestorationAvoidsFailureAndEndsOnSurvivor) {
  const BuiltScenario sc = build_random_scenario(GetParam());
  for (const net::NodeId m : sc.members) {
    const net::LinkId failed = worst_case_failure_link(sc.tree, m);
    const auto survivors = sc.tree.surviving_after_link(failed);
    for (const bool local : {true, false}) {
      const RecoveryOutcome out =
          local ? local_detour_recovery(sc.graph, sc.tree, m, failed)
                : global_detour_recovery(sc.graph, sc.tree, m, failed);
      ASSERT_TRUE(out.disconnected);
      if (!out.recovered) continue;
      ASSERT_FALSE(out.restoration_path.empty());
      ASSERT_EQ(out.restoration_path.front(), m);
      ASSERT_EQ(out.restoration_path.back(), out.reattach_node);
      ASSERT_TRUE(survivors[static_cast<std::size_t>(out.reattach_node)]);
      // No hop of the restoration path uses the failed link.
      const auto links = net::path_links(sc.graph, out.restoration_path);
      for (const net::LinkId l : links) ASSERT_NE(l, failed);
      // Reported distance matches the path.
      ASSERT_NEAR(out.recovery_distance,
                  net::path_weight(sc.graph, out.restoration_path), 1e-9);
      ASSERT_EQ(out.recovery_hops,
                static_cast<int>(out.restoration_path.size()) - 1);
      // Only the reattach node is a survivor: every interior hop is new.
      for (std::size_t i = 0; i + 1 < out.restoration_path.size(); ++i) {
        ASSERT_FALSE(
            survivors[static_cast<std::size_t>(out.restoration_path[i])]);
      }
    }
  }
}

TEST_P(RecoveryProperty, LocalDetourIsNearestSurvivor) {
  const BuiltScenario sc = build_random_scenario(GetParam() ^ 0x5a5a);
  for (const net::NodeId m : sc.members) {
    const net::LinkId failed = worst_case_failure_link(sc.tree, m);
    const RecoveryOutcome out =
        local_detour_recovery(sc.graph, sc.tree, m, failed);
    if (!out.recovered) continue;
    // No survivor may be strictly closer than the chosen reattach node
    // (checked against unrestricted shortest paths, which lower-bound the
    // absorbing search the recovery uses).
    net::ExclusionSet excl(sc.graph);
    excl.ban_link(failed);
    const net::ShortestPathTree spf = net::dijkstra(sc.graph, m, excl);
    const auto survivors = sc.tree.surviving_after_link(failed);
    double best = net::kInfinity;
    for (net::NodeId n = 0; n < sc.graph.node_count(); ++n) {
      if (!survivors[static_cast<std::size_t>(n)]) continue;
      if (spf.reachable(n)) {
        best = std::min(best, spf.dist[static_cast<std::size_t>(n)]);
      }
    }
    ASSERT_NEAR(out.recovery_distance, best, 1e-9);
  }
}

TEST_P(RecoveryProperty, GlobalDetourFollowsPostFailureSpf) {
  const BuiltScenario sc = build_random_scenario(GetParam() ^ 0xa5a5);
  for (const net::NodeId m : sc.members) {
    const net::LinkId failed = worst_case_failure_link(sc.tree, m);
    const RecoveryOutcome out =
        global_detour_recovery(sc.graph, sc.tree, m, failed);
    if (!out.recovered) continue;
    net::ExclusionSet excl(sc.graph);
    excl.ban_link(failed);
    const net::ShortestPathTree spf = net::dijkstra(sc.graph, m, excl);
    // The restoration path must be a prefix of the new SPF path to the
    // source.
    const auto full = spf.path_from_source(sc.tree.source());
    ASSERT_LE(out.restoration_path.size(), full.size());
    for (std::size_t i = 0; i < out.restoration_path.size(); ++i) {
      ASSERT_EQ(out.restoration_path[i], full[i]);
    }
  }
}

TEST_P(RecoveryProperty, LocalNeverLongerThanGlobal) {
  // The local detour picks the *nearest* survivor; the global detour ends
  // on some survivor. Hence RD_local ≤ RD_global always.
  const BuiltScenario sc = build_random_scenario(GetParam() ^ 0x1111);
  for (const net::NodeId m : sc.members) {
    const net::LinkId failed = worst_case_failure_link(sc.tree, m);
    const RecoveryOutcome local =
        local_detour_recovery(sc.graph, sc.tree, m, failed);
    const RecoveryOutcome global =
        global_detour_recovery(sc.graph, sc.tree, m, failed);
    if (!local.recovered || !global.recovered) continue;
    ASSERT_LE(local.recovery_distance, global.recovery_distance + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecoveryProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace smrp::proto
