#include "smrp/query_scheme.hpp"

#include <gtest/gtest.h>

#include "net/paths.hpp"
#include "net/waxman.hpp"
#include "smrp/tree_builder.hpp"
#include "testing_topologies.hpp"

namespace smrp::proto {
namespace {

using testing::Fig1Topology;

mcast::MulticastTree fig1_tree(const Fig1Topology& fig) {
  mcast::MulticastTree tree(fig.graph, fig.S);
  tree.graft(fig.C, {fig.C, fig.A, fig.S});
  tree.graft(fig.D, {fig.D, fig.A});
  return tree;
}

TEST(QueryScheme, DiscoversOneCandidatePerNeighborRelay) {
  const Fig1Topology fig;
  const mcast::MulticastTree tree = fig1_tree(fig);
  SmrpConfig config;
  // B's neighbors are S (on-tree: direct candidate) and D (on-tree:
  // direct candidate).
  const auto candidates =
      enumerate_query_candidates(fig.graph, tree, fig.B, 1.0, config.d_thresh);
  ASSERT_EQ(candidates.size(), 2u);
  for (const auto& c : candidates) {
    EXPECT_TRUE(c.merge_node == fig.S || c.merge_node == fig.D);
    EXPECT_EQ(c.graft.front(), fig.B);
    EXPECT_EQ(c.graft.back(), c.merge_node);
    EXPECT_NEAR(net::path_weight(fig.graph, c.graft), c.graft_delay, 1e-9);
  }
}

TEST(QueryScheme, OffTreeNeighborRelaysTowardSource) {
  // G's only neighbors in Fig4 are F (off-tree) and B (off-tree): queries
  // travel along the relays' SPF paths until an on-tree node answers.
  const testing::Fig4Topology fig;
  mcast::MulticastTree tree(fig.graph, fig.S);
  tree.graft(fig.E, {fig.E, fig.D, fig.A, fig.S});
  SmrpConfig config;
  const auto candidates =
      enumerate_query_candidates(fig.graph, tree, fig.G, 5.0, config.d_thresh);
  ASSERT_FALSE(candidates.empty());
  for (const auto& c : candidates) {
    EXPECT_TRUE(tree.on_tree(c.merge_node));
    // Interior hops must all be off-tree (the first on-tree node answers).
    for (std::size_t i = 0; i + 1 < c.graft.size(); ++i) {
      EXPECT_FALSE(tree.on_tree(c.graft[i]));
    }
  }
}

TEST(QueryScheme, CandidateSetIsSubsetOfFullKnowledgeMerges) {
  net::Rng rng(99);
  net::WaxmanParams wax;
  wax.node_count = 50;
  const net::Graph g = net::waxman_graph(wax, rng);
  SmrpConfig config;
  SmrpTreeBuilder builder(g, 0, config);
  for (int i = 0; i < 10; ++i) {
    builder.join(static_cast<net::NodeId>(1 + rng.below(49)));
  }
  for (net::NodeId joiner = 1; joiner < g.node_count(); ++joiner) {
    if (builder.tree().on_tree(joiner)) continue;
    const double spf = builder.spf_delay(joiner);
    const auto query =
        enumerate_query_candidates(g, builder.tree(), joiner, spf,
                                   config.d_thresh);
    for (const auto& c : query) {
      ASSERT_TRUE(builder.tree().on_tree(c.merge_node));
      ASSERT_TRUE(net::is_simple_path(g, c.graft));
    }
  }
}

TEST(QueryScheme, SelectionRespectsCriterion) {
  const Fig1Topology fig;
  const mcast::MulticastTree tree = fig1_tree(fig);
  SmrpConfig config;
  config.d_thresh = 1.0;
  // B: SPF(S,B) = 1. Candidates: merge S (delay 1, SHR 0), merge D
  // (delay 2 + tree 2 = 4, SHR 3). Criterion must choose S.
  const auto sel =
      select_join_path_via_query(fig.graph, tree, fig.B, 1.0, config);
  ASSERT_TRUE(sel.has_value());
  EXPECT_EQ(sel->chosen.merge_node, fig.S);
  EXPECT_FALSE(sel->used_fallback);
}

TEST(QueryScheme, OnTreeJoinerSelfCandidate) {
  const Fig1Topology fig;
  const mcast::MulticastTree tree = fig1_tree(fig);
  SmrpConfig config;
  const auto candidates =
      enumerate_query_candidates(fig.graph, tree, fig.A, 1.0, config.d_thresh);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].merge_node, fig.A);
}

}  // namespace
}  // namespace smrp::proto
