#include "smrp/path_selection.hpp"

#include <gtest/gtest.h>

#include "net/paths.hpp"
#include "net/waxman.hpp"
#include "smrp/tree_builder.hpp"
#include "testing_topologies.hpp"

namespace smrp::proto {
namespace {

using testing::Fig1Topology;
using testing::Fig4Topology;

mcast::MulticastTree fig1_tree(const Fig1Topology& fig) {
  mcast::MulticastTree tree(fig.graph, fig.S);
  tree.graft(fig.C, {fig.C, fig.A, fig.S});
  tree.graft(fig.D, {fig.D, fig.A});
  return tree;
}

TEST(EnumerateCandidates, OneCandidatePerReachableMergeNode) {
  const Fig1Topology fig;
  const mcast::MulticastTree tree = fig1_tree(fig);
  SmrpConfig config;
  const double spf = 2.0;  // S–B = 1 then B... B joins: SPF(S,B) = 1
  const auto candidates =
      enumerate_candidates(fig.graph, tree, fig.B, 1.0, config);
  // B can reach S directly and D directly; A and C only through other
  // on-tree nodes (avoid-tree mode forbids that).
  ASSERT_EQ(candidates.size(), 2u);
  (void)spf;
  for (const auto& c : candidates) {
    EXPECT_TRUE(c.merge_node == fig.S || c.merge_node == fig.D);
    EXPECT_EQ(c.graft.front(), fig.B);
    EXPECT_EQ(c.graft.back(), c.merge_node);
  }
}

TEST(EnumerateCandidates, GraftNeverCrossesTreeEarly) {
  const Fig4Topology fig;
  mcast::MulticastTree tree(fig.graph, fig.S);
  tree.graft(fig.E, {fig.E, fig.D, fig.A, fig.S});
  SmrpConfig config;
  const auto candidates =
      enumerate_candidates(fig.graph, tree, fig.G, 5.0, config);
  for (const auto& c : candidates) {
    for (std::size_t i = 0; i + 1 < c.graft.size(); ++i) {
      EXPECT_FALSE(tree.on_tree(c.graft[i]) && c.graft[i] != fig.G)
          << "graft to " << c.merge_node << " crosses the tree early";
    }
    EXPECT_NEAR(net::path_weight(fig.graph, c.graft), c.graft_delay, 1e-9);
    EXPECT_NEAR(c.total_delay,
                c.graft_delay + tree.delay_to_source(c.merge_node), 1e-9);
  }
}

TEST(EnumerateCandidates, OnTreeJoinerJoinsInPlace) {
  const Fig1Topology fig;
  const mcast::MulticastTree tree = fig1_tree(fig);
  SmrpConfig config;
  const auto candidates =
      enumerate_candidates(fig.graph, tree, fig.A, 1.0, config);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].merge_node, fig.A);
  EXPECT_EQ(candidates[0].graft, (std::vector<net::NodeId>{fig.A}));
  EXPECT_DOUBLE_EQ(candidates[0].graft_delay, 0.0);
}

TEST(SelectPath, PicksMinimumShr) {
  SmrpConfig config;
  std::vector<JoinCandidate> candidates(2);
  candidates[0].merge_node = 1;
  candidates[0].shr = 5;
  candidates[0].total_delay = 1.0;
  candidates[0].within_bound = true;
  candidates[1].merge_node = 2;
  candidates[1].shr = 2;
  candidates[1].total_delay = 3.0;
  candidates[1].within_bound = true;
  const auto sel = select_path(candidates, 10.0, config);
  ASSERT_TRUE(sel.has_value());
  EXPECT_EQ(sel->chosen.merge_node, 2);
  EXPECT_FALSE(sel->used_fallback);
}

TEST(SelectPath, BreaksShrTiesByDelay) {
  SmrpConfig config;
  std::vector<JoinCandidate> candidates(2);
  candidates[0].merge_node = 1;
  candidates[0].shr = 2;
  candidates[0].total_delay = 4.0;
  candidates[0].within_bound = true;
  candidates[1].merge_node = 2;
  candidates[1].shr = 2;
  candidates[1].total_delay = 3.0;
  candidates[1].within_bound = true;
  const auto sel = select_path(candidates, 10.0, config);
  ASSERT_TRUE(sel.has_value());
  EXPECT_EQ(sel->chosen.merge_node, 2);
}

TEST(SelectPath, FallsBackToMinDelayWhenNothingFits) {
  SmrpConfig config;
  std::vector<JoinCandidate> candidates(2);
  candidates[0].merge_node = 1;
  candidates[0].shr = 0;
  candidates[0].total_delay = 9.0;
  candidates[0].within_bound = false;
  candidates[1].merge_node = 2;
  candidates[1].shr = 7;
  candidates[1].total_delay = 8.0;
  candidates[1].within_bound = false;
  const auto sel = select_path(candidates, 1.0, config);
  ASSERT_TRUE(sel.has_value());
  EXPECT_TRUE(sel->used_fallback);
  EXPECT_EQ(sel->chosen.merge_node, 2);  // min delay, SHR ignored
}

TEST(SelectPath, FallbackCanBeDisabled) {
  SmrpConfig config;
  config.fallback_when_infeasible = false;
  std::vector<JoinCandidate> candidates(1);
  candidates[0].within_bound = false;
  EXPECT_FALSE(select_path(candidates, 1.0, config).has_value());
  EXPECT_FALSE(select_path({}, 1.0, config).has_value());
}

TEST(SelectPath, EmptyCandidateListYieldsNothing) {
  SmrpConfig config;
  EXPECT_FALSE(select_path({}, 1.0, config).has_value());
}

// The criterion as a whole, on random instances: the chosen merge node
// must have minimal SHR among bound-satisfying candidates.
class SelectionProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SelectionProperty, ChosenMergeMinimisesShrWithinBound) {
  net::Rng rng(GetParam());
  net::WaxmanParams wax;
  wax.node_count = 40;
  const net::Graph g = net::waxman_graph(wax, rng);
  SmrpConfig config;
  SmrpTreeBuilder builder(g, 0, config);
  for (int i = 0; i < 12; ++i) {
    const auto member = static_cast<net::NodeId>(1 + rng.below(39));
    if (builder.tree().is_member(member)) continue;

    const auto candidates = enumerate_candidates(
        g, builder.tree(), member, builder.spf_delay(member), config);
    const auto sel =
        select_path(candidates, builder.spf_delay(member), config);
    ASSERT_TRUE(sel.has_value());
    if (!sel->used_fallback) {
      for (const auto& c : candidates) {
        if (!c.within_bound) continue;
        ASSERT_GE(c.shr, sel->chosen.shr);
      }
      ASSERT_LE(sel->chosen.total_delay,
                (1.0 + config.d_thresh) * builder.spf_delay(member) + 1e-6);
    }
    builder.join(member);
    builder.tree().validate();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SelectionProperty,
                         ::testing::Values(7, 14, 21, 28, 35));

}  // namespace
}  // namespace smrp::proto
