// End-to-end checks that the implementation reproduces every concrete
// walkthrough the paper gives on its illustrative topologies:
//   * Figure 1: recovery of D after L_AD fails (local detour D→C with
//     RD=2 vs the SPF global detour D→B→S with RD=3),
//   * Figure 2: the disjoint tree mitigates the L_SA failure,
//   * Figure 4: the join order E, G, F with D_thresh=0.3 builds exactly
//     the tree the paper draws, including G preferring the less-shared
//     path and F being bound-limited,
//   * Figure 5: F's arrival triggers E's Condition-I reshape to E→C→A→S.
#include <gtest/gtest.h>

#include "net/paths.hpp"
#include "smrp/recovery.hpp"
#include "smrp/tree_builder.hpp"
#include "spf/spf_tree_builder.hpp"
#include "testing_topologies.hpp"

namespace smrp::proto {
namespace {

using testing::Fig1Topology;
using testing::Fig4Topology;

TEST(PaperFig1, SpfTreeAndShr) {
  const Fig1Topology fig;
  baseline::SpfTreeBuilder spf(fig.graph, fig.S);
  ASSERT_TRUE(spf.join(fig.C));
  ASSERT_TRUE(spf.join(fig.D));
  // "the original multicast tree is constructed ... using SPF".
  EXPECT_EQ(spf.tree().parent(fig.C), fig.A);
  EXPECT_EQ(spf.tree().parent(fig.D), fig.A);
  // §3.1: SHR(S,C) = 3.
  EXPECT_EQ(spf.tree().shr(fig.C), 3);
}

TEST(PaperFig1, LocalDetourBeatsGlobalDetourForD) {
  const Fig1Topology fig;
  baseline::SpfTreeBuilder spf(fig.graph, fig.S);
  spf.join(fig.C);
  spf.join(fig.D);

  // "Suppose the on-tree link L_AD fails."
  const RecoveryOutcome local =
      local_detour_recovery(fig.graph, spf.tree(), fig.D, fig.AD);
  const RecoveryOutcome global =
      global_detour_recovery(fig.graph, spf.tree(), fig.D, fig.AD);

  ASSERT_TRUE(local.disconnected);
  ASSERT_TRUE(local.recovered);
  // "path D→C→A→S is preferred ... only link L_CD needs to be brought
  //  into the multicast tree ... RD_D = 2."
  EXPECT_EQ(local.reattach_node, fig.C);
  EXPECT_EQ(local.restoration_path,
            (std::vector<net::NodeId>{fig.D, fig.C}));
  EXPECT_DOUBLE_EQ(local.recovery_distance, 2.0);
  EXPECT_EQ(local.recovery_hops, 1);

  // "a new path D→B→S is constructed" by the SPF protocols.
  ASSERT_TRUE(global.recovered);
  EXPECT_EQ(global.reattach_node, fig.S);
  EXPECT_EQ(global.restoration_path,
            (std::vector<net::NodeId>{fig.D, fig.B, fig.S}));
  EXPECT_DOUBLE_EQ(global.recovery_distance, 3.0);

  // The tradeoff the paper highlights: local detour has the shorter
  // recovery path but the larger end-to-end delay.
  EXPECT_LT(local.recovery_distance, global.recovery_distance);
  EXPECT_GT(local.new_delay, global.new_delay);
}

TEST(PaperFig2, DisjointTreeLimitsLsaFailureToOneMember) {
  const Fig1Topology fig;
  mcast::MulticastTree tree(fig.graph, fig.S);
  // Figure 2's tree: C via A, D via B — no shared links.
  tree.graft(fig.C, {fig.C, fig.A, fig.S});
  tree.graft(fig.D, {fig.D, fig.B, fig.S});

  const auto alive = tree.surviving_after_link(fig.SA);
  // "at most one member suffers the service disruption".
  EXPECT_FALSE(alive[fig.C]);
  EXPECT_TRUE(alive[fig.D]);

  // "C can quickly restore its service by connecting to its non-faulty
  //  neighbor node D."
  const RecoveryOutcome rec =
      local_detour_recovery(fig.graph, tree, fig.C, fig.SA);
  ASSERT_TRUE(rec.recovered);
  EXPECT_EQ(rec.reattach_node, fig.D);
  EXPECT_EQ(rec.restoration_path, (std::vector<net::NodeId>{fig.C, fig.D}));
}

class PaperFig4 : public ::testing::Test {
 protected:
  Fig4Topology fig;
  SmrpConfig config;

  PaperFig4() {
    config.d_thresh = 0.3;
    config.reshape_shr_delta = 2;
  }
};

TEST_F(PaperFig4, JoinWalkthroughBuildsThePaperTree) {
  SmrpTreeBuilder builder(fig.graph, fig.S, config);

  // E joins first: "the join procedure of E is trivial, and it selects
  // the shortest path" E→D→A→S.
  const JoinOutcome e = builder.join(fig.E);
  ASSERT_TRUE(e.joined);
  EXPECT_FALSE(e.used_fallback);
  EXPECT_EQ(e.merge_node, fig.S);
  EXPECT_EQ(builder.tree().path_to_source(fig.E),
            (std::vector<net::NodeId>{fig.E, fig.D, fig.A, fig.S}));
  // "node D has SHR(S,D) = 2".
  EXPECT_EQ(builder.tree().shr(fig.D), 2);

  // G joins: "G chooses path G→B→S even though path G→F→D→A→S has
  // shorter end-to-end delay."
  const JoinOutcome g = builder.join(fig.G);
  ASSERT_TRUE(g.joined);
  EXPECT_FALSE(g.used_fallback);
  EXPECT_EQ(g.merge_node, fig.S);
  EXPECT_EQ(builder.tree().path_to_source(fig.G),
            (std::vector<net::NodeId>{fig.G, fig.B, fig.S}));
  // Sanity: the rejected path really is shorter end-to-end.
  EXPECT_LT(net::path_weight(fig.graph, {fig.G, fig.F, fig.D, fig.A, fig.S}),
            net::path_weight(fig.graph, {fig.G, fig.B, fig.S}));

  // F joins: "receiver F selects path F→D→A→S. F does not choose path
  // F→B→S and path F→G→B→S because their path lengths exceed the bound."
  const double bound = (1.0 + config.d_thresh) * builder.spf_delay(fig.F);
  EXPECT_GT(net::path_weight(fig.graph, {fig.F, fig.B, fig.S}), bound);
  EXPECT_GT(net::path_weight(fig.graph, {fig.F, fig.G, fig.B, fig.S}), bound);

  SmrpConfig no_reshape = config;
  no_reshape.enable_reshaping = false;
  SmrpTreeBuilder plain(fig.graph, fig.S, no_reshape);
  plain.join(fig.E);
  plain.join(fig.G);
  const JoinOutcome f = plain.join(fig.F);
  ASSERT_TRUE(f.joined);
  EXPECT_EQ(f.merge_node, fig.D);
  EXPECT_EQ(plain.tree().path_to_source(fig.F),
            (std::vector<net::NodeId>{fig.F, fig.D, fig.A, fig.S}));
  // "SHR(S,D) is increased from 2 to 4 after F joined".
  EXPECT_EQ(plain.tree().shr(fig.D), 4);
}

TEST_F(PaperFig4, Figure5ReshapeMovesEtoCA) {
  SmrpTreeBuilder builder(fig.graph, fig.S, config);
  builder.join(fig.E);
  builder.join(fig.G);
  // F's arrival raises SHR(S,D) by 2 and must trigger E's Condition-I
  // reshape: "E completes another path selection process by selecting
  // path E→C→A→S" whose merge node A has the smaller (adjusted) SHR.
  const JoinOutcome f = builder.join(fig.F);
  ASSERT_TRUE(f.joined);
  EXPECT_EQ(f.reshapes_triggered, 1);
  EXPECT_EQ(builder.tree().path_to_source(fig.E),
            (std::vector<net::NodeId>{fig.E, fig.C, fig.A, fig.S}));
  EXPECT_EQ(builder.tree().role(fig.C), mcast::NodeRole::kRelay);
  // After the switch D serves only F.
  EXPECT_EQ(builder.tree().subtree_members(fig.D), 1);
  builder.tree().validate();
}

TEST_F(PaperFig4, NoReshapeWithoutConditionOneTrigger) {
  SmrpConfig strict = config;
  strict.reshape_shr_delta = 5;  // F's +2 growth no longer qualifies
  SmrpTreeBuilder builder(fig.graph, fig.S, strict);
  builder.join(fig.E);
  builder.join(fig.G);
  const JoinOutcome f = builder.join(fig.F);
  EXPECT_EQ(f.reshapes_triggered, 0);
  EXPECT_EQ(builder.tree().path_to_source(fig.E),
            (std::vector<net::NodeId>{fig.E, fig.D, fig.A, fig.S}));
}

TEST_F(PaperFig4, ConditionTwoPassFindsTheSameImprovement) {
  // With Condition I disabled entirely, a periodic Condition-II pass must
  // still discover E's better position.
  SmrpConfig no_auto = config;
  no_auto.enable_reshaping = false;
  SmrpTreeBuilder builder(fig.graph, fig.S, no_auto);
  builder.join(fig.E);
  builder.join(fig.G);
  builder.join(fig.F);
  EXPECT_EQ(builder.tree().parent(fig.E), fig.D);
  const int switches = builder.reshape_pass();
  EXPECT_EQ(switches, 1);
  EXPECT_EQ(builder.tree().path_to_source(fig.E),
            (std::vector<net::NodeId>{fig.E, fig.C, fig.A, fig.S}));
  // A second pass is quiescent.
  EXPECT_EQ(builder.reshape_pass(), 0);
}

}  // namespace
}  // namespace smrp::proto
