// Randomized chaos soak: a seeded 50-fault plan (link flaps, two node
// crash/restarts, one loss burst) against a full protocol stack on a 3x3
// grid. The run must reach quiescence with the invariant checker finding
// zero violations — live audits throughout, the strict quiescent audit at
// the end — and every member the surviving topology still connects to the
// source receiving data. The same drill against the pre-hardening
// protocol (SessionConfig::hardened = false) fails, which is the
// regression guarantee this suite exists for.
#include <gtest/gtest.h>

#include <algorithm>

#include "sim/fault_injection.hpp"
#include "smrp/harness.hpp"
#include "smrp/invariants.hpp"
#include "testing_topologies.hpp"

namespace smrp::proto {
namespace {

constexpr std::uint64_t kSoakSeed = 20050628;  // DSN'05 publication date

/// Unit-weight ring of `n` nodes. Sparse on purpose: when a tree link
/// flaps, the only detour is the long way around — often farther than the
/// ring-search budget — so the drill exercises the routed-join fallback
/// and partition stranding, not just the easy local repairs a dense grid
/// always offers.
net::Graph soak_ring(int n) {
  net::Graph g(n);
  for (net::NodeId i = 0; i < n; ++i) {
    g.add_link(i, (i + 1) % n, 1.0);
  }
  return g;
}

struct SoakResult {
  InvariantReport quiescent;
  std::vector<std::string> live_violations;
  bool plan_drained = false;
  int starving_members = 0;
};

/// Run the standard 50-fault soak: 47 link flaps + 2 node crash/restarts
/// + 1 loss burst on a 12-node ring, members at 3/6/9, source at 0.
SoakResult run_soak(bool hardened, std::uint64_t seed = kSoakSeed) {
  const net::Graph g = soak_ring(12);
  const net::NodeId source = 0;
  const std::vector<net::NodeId> members{3, 6, 9};

  SessionConfig config;
  config.hardened = hardened;
  // Keep the ring search short of the worst-case detour (up to 11 hops
  // around) so exhausting it is a scenario the plan actually produces.
  config.max_repair_ttl = 4;
  SimulationHarness h(g, source, config);

  sim::FaultPlan::RandomParams params;
  params.link_flaps = 47;
  params.node_restarts = 2;
  params.loss_bursts = 1;
  params.start = 2'000.0;   // let the session settle first
  params.window = 20'000.0;
  params.protected_nodes = {source};
  net::Rng rng(seed);
  const sim::FaultPlan plan = sim::FaultPlan::randomized(g, params, rng);
  EXPECT_EQ(plan.fault_count(), 50);

  sim::ChaosController chaos(h.simulator(), h.network(), plan);
  h.start();
  for (const net::NodeId m : members) h.session().join(m);
  chaos.arm();

  const InvariantChecker checker(h.session(), h.network());
  SoakResult result;

  // Drive through the fault window with live audits every 100ms.
  const sim::Time quiescent_at = plan.quiescent_time();
  for (sim::Time t = 100.0; t < quiescent_at; t += 100.0) {
    h.simulator().run_until(t);
    const InvariantReport live = checker.audit();
    for (const std::string& v : live.violations) {
      result.live_violations.push_back("t=" + std::to_string(t) + ": " + v);
    }
  }

  // Let the protocol settle past its own computable restoration bound,
  // then apply the strict audit.
  const sim::Time bound = service_restoration_bound(
      h.session().config(), routing::RoutingConfig{}, g);
  h.simulator().run_until(quiescent_at + bound);
  result.plan_drained = chaos.quiescent();
  result.quiescent = checker.audit_quiescent(quiescent_at);

  // Independent service check (not via the checker): every member in the
  // source's surviving component gets fresh data.
  const sim::Time now = h.simulator().now();
  for (const net::NodeId m : members) {
    if (!h.network().node_up(m)) continue;
    const sim::Time last = h.session().last_data_at(m);
    if (last < quiescent_at ||
        now - last > h.session().config().upstream_timeout) {
      ++result.starving_members;
    }
  }
  return result;
}

TEST(ChaosSoak, HardenedProtocolSurvivesFiftyFaults) {
  const SoakResult result = run_soak(/*hardened=*/true);
  EXPECT_TRUE(result.plan_drained);
  EXPECT_TRUE(result.live_violations.empty())
      << result.live_violations.front();
  EXPECT_TRUE(result.quiescent.ok()) << result.quiescent.to_string();
  EXPECT_EQ(result.starving_members, 0);
}

TEST(ChaosSoak, LegacyProtocolFailsTheSameDrill) {
  // The pre-hardening protocol trusts stale soft state across a
  // crash-restart and gives up ring searches silently; under the same
  // 50-fault plan it ends with members dark or state inconsistent.
  const SoakResult result = run_soak(/*hardened=*/false);
  const bool failed = !result.quiescent.ok() || result.starving_members > 0 ||
                      !result.live_violations.empty();
  EXPECT_TRUE(failed)
      << "the legacy protocol unexpectedly survived the chaos drill; the "
         "hardened path is no longer load-bearing";
}

TEST(ChaosSoak, SoakIsDeterministicInTheSeed) {
  const SoakResult a = run_soak(/*hardened=*/true);
  const SoakResult b = run_soak(/*hardened=*/true);
  EXPECT_EQ(a.quiescent.violations, b.quiescent.violations);
  EXPECT_EQ(a.live_violations, b.live_violations);
  EXPECT_EQ(a.starving_members, b.starving_members);
}

TEST(ChaosSoak, HardenedSurvivesAcrossSeeds) {
  for (const std::uint64_t seed : {1ull, 7ull, 1234ull}) {
    const SoakResult result = run_soak(/*hardened=*/true, seed);
    EXPECT_TRUE(result.quiescent.ok())
        << "seed " << seed << ": " << result.quiescent.to_string();
    EXPECT_EQ(result.starving_members, 0) << "seed " << seed;
  }
}

TEST(ChaosSoak, OracleCountersBalanceThroughTheSoak) {
  // Same drill as the hardened soak, but with telemetry attached: the
  // session's RoutingOracle must publish balanced cache counters (every
  // lookup is exactly one hit or one miss, every miss exactly one
  // incremental repair or one full run) no matter what the fault plan
  // does to the topology underneath it.
  const net::Graph g = soak_ring(12);
  SessionConfig config;
  config.max_repair_ttl = 4;
  SimulationHarness h(g, 0, config);
  obs::Telemetry telemetry;
  h.attach_telemetry(&telemetry);

  sim::FaultPlan::RandomParams params;
  params.link_flaps = 47;
  params.node_restarts = 2;
  params.loss_bursts = 1;
  params.start = 2'000.0;
  params.window = 20'000.0;
  params.protected_nodes = {net::NodeId{0}};
  net::Rng rng(kSoakSeed);
  sim::ChaosController chaos(h.simulator(), h.network(),
                             sim::FaultPlan::randomized(g, params, rng));
  h.start();
  for (const net::NodeId m : {3, 6, 9}) h.session().join(m);
  chaos.arm();
  h.simulator().run_until(chaos.quiescent_time() + 5'000.0);

  auto& m = telemetry.metrics;
  const std::uint64_t lookups = m.counter("smrp.routing.lookups").value();
  const std::uint64_t hits = m.counter("smrp.routing.cache_hit").value();
  const std::uint64_t misses = m.counter("smrp.routing.cache_miss").value();
  const std::uint64_t incremental =
      m.counter("smrp.routing.cache_incremental").value();
  const std::uint64_t fallback =
      m.counter("smrp.routing.cache_fallback").value();
  EXPECT_GT(lookups, 0u);  // the soak actually routed through the oracle
  EXPECT_EQ(lookups, hits + misses);
  EXPECT_EQ(misses, incremental + fallback);
}

TEST(ChaosSoak, NonceStateStaysBoundedThroughTheSoak) {
  const net::Graph g = testing::grid3x3();
  SessionConfig config;
  SimulationHarness h(g, 0, config);
  sim::FaultPlan::RandomParams params;
  params.link_flaps = 60;  // repair-heavy plan: lots of ring floods
  params.node_restarts = 0;
  params.loss_bursts = 0;
  params.start = 1'000.0;
  params.window = 30'000.0;
  params.protected_nodes = {0};
  net::Rng rng(kSoakSeed);
  sim::ChaosController chaos(h.simulator(), h.network(),
                             sim::FaultPlan::randomized(g, params, rng));
  h.start();
  for (const net::NodeId m : {2, 6, 8}) h.session().join(m);
  chaos.arm();
  h.simulator().run_until(chaos.quiescent_time() + 2'000.0);
  for (net::NodeId n = 0; n < g.node_count(); ++n) {
    EXPECT_LE(h.session().seen_nonce_count(n), DistributedSession::kSeenNonceCap)
        << "node " << n;
  }
}

}  // namespace
}  // namespace smrp::proto
