// Hardening tests for the distributed stack: tree reshaping in the
// message-passing protocol, transient message loss, router (node)
// failures, and membership churn while the session is live.
#include <gtest/gtest.h>

#include "net/waxman.hpp"
#include "smrp/harness.hpp"
#include "testing_topologies.hpp"

namespace smrp::proto {
namespace {

using testing::Fig4Topology;

TEST(DistributedReshaping, ReproducesFigure5InTheProtocol) {
  // The paper's Fig.-5 story, but executed by message-passing agents: E
  // joins via D; after F's arrival raises SHR(S,D), E's Condition-I
  // reshape must move it to E→C→A→S.
  const Fig4Topology fig;
  SessionConfig config;
  config.smrp.d_thresh = 0.3;
  config.smrp.reshape_shr_delta = 2;
  SimulationHarness h(fig.graph, fig.S, config);
  h.start();
  h.session().join(fig.E);
  h.simulator().run_until(1500.0);
  EXPECT_EQ(h.session().parent_of(fig.E), fig.D);

  h.session().join(fig.G);
  h.simulator().run_until(3000.0);
  h.session().join(fig.F);
  h.simulator().run_until(8000.0);

  EXPECT_GE(h.session().reshapes_performed(), 1);
  EXPECT_EQ(h.session().parent_of(fig.E), fig.C);
  EXPECT_EQ(h.session().parent_of(fig.C), fig.A);
  // Everyone still receives data after the switch.
  for (const net::NodeId m : {fig.E, fig.F, fig.G}) {
    EXPECT_LE(8000.0 - h.session().last_data_at(m), 150.0) << "member " << m;
  }
  const auto snapshot = h.session().snapshot_tree();
  ASSERT_TRUE(snapshot.has_value());
  ASSERT_NO_THROW(snapshot->validate());
}

TEST(DistributedReshaping, DisabledMeansNoSwitches) {
  const Fig4Topology fig;
  SessionConfig config;
  config.smrp.enable_reshaping = false;
  SimulationHarness h(fig.graph, fig.S, config);
  h.start();
  h.session().join(fig.E);
  h.session().join(fig.G);
  h.session().join(fig.F);
  h.simulator().run_until(8000.0);
  EXPECT_EQ(h.session().reshapes_performed(), 0);
  EXPECT_EQ(h.session().parent_of(fig.E), fig.D);
}

TEST(DistributedRobustness, SurvivesTransientMessageLoss) {
  net::Rng rng(11);
  net::WaxmanParams wax;
  wax.node_count = 40;
  const net::Graph g = net::waxman_graph(wax, rng);
  sim::NetworkConfig lossy;
  lossy.loss_probability = 0.05;  // 5% of every transmission vanishes
  SimulationHarness h(g, 0, SessionConfig{}, routing::RoutingConfig{}, lossy);
  h.start();
  std::vector<net::NodeId> members;
  for (int i = 0; i < 8; ++i) {
    const auto m = static_cast<net::NodeId>(1 + rng.below(39));
    if (std::find(members.begin(), members.end(), m) == members.end()) {
      h.session().join(m);
      members.push_back(m);
    }
  }
  h.simulator().run_until(6000.0);
  // Soft state + periodic refreshes must keep everyone served despite the
  // loss (individual gaps may exceed one data interval).
  for (const net::NodeId m : members) {
    ASSERT_GE(h.session().last_data_at(m), 0.0) << "member " << m;
    EXPECT_LE(6000.0 - h.session().last_data_at(m), 500.0) << "member " << m;
  }
  EXPECT_GT(h.network().messages_dropped(), 0u);
}

TEST(DistributedRobustness, RepairsAroundDeadRouter) {
  const testing::Fig1Topology fig;
  SimulationHarness h(fig.graph, fig.S);
  h.start();
  h.session().join(fig.C);
  h.session().join(fig.D);
  h.simulator().run_until(2000.0);
  ASSERT_EQ(h.session().parent_of(fig.C), fig.A);
  ASSERT_EQ(h.session().parent_of(fig.D), fig.A);

  h.network().set_node_up(fig.A, false);  // the shared router dies
  h.simulator().run_until(8000.0);
  for (const net::NodeId m : {fig.C, fig.D}) {
    EXPECT_LE(8000.0 - h.session().last_data_at(m), 200.0)
        << "member " << m << " not restored after node failure";
    // The restored path cannot run through the dead router.
    net::NodeId cur = m;
    int guard = 0;
    while (cur != fig.S && cur != net::kNoNode && ++guard < 10) {
      EXPECT_NE(cur, fig.A);
      cur = h.session().parent_of(cur);
    }
  }
}

TEST(DistributedRobustness, ChurnWhileRunning) {
  net::Rng rng(23);
  net::WaxmanParams wax;
  wax.node_count = 40;
  const net::Graph g = net::waxman_graph(wax, rng);
  SimulationHarness h(g, 0);
  h.start();

  std::vector<net::NodeId> present;
  sim::Time t = 0.0;
  for (int event = 0; event < 30; ++event) {
    t += 200.0;
    h.simulator().run_until(t);
    if (present.size() < 3 || rng.uniform() < 0.6) {
      const auto m = static_cast<net::NodeId>(1 + rng.below(39));
      if (std::find(present.begin(), present.end(), m) != present.end()) {
        continue;
      }
      h.session().join(m);
      present.push_back(m);
    } else {
      const std::size_t idx = rng.below(present.size());
      h.session().leave(present[idx]);
      present.erase(present.begin() + static_cast<std::ptrdiff_t>(idx));
    }
  }
  h.simulator().run_until(t + 3000.0);
  for (const net::NodeId m : present) {
    EXPECT_TRUE(h.session().is_member(m));
    EXPECT_LE((t + 3000.0) - h.session().last_data_at(m), 200.0)
        << "member " << m;
  }
  const auto snapshot = h.session().snapshot_tree();
  ASSERT_TRUE(snapshot.has_value());
  ASSERT_NO_THROW(snapshot->validate());
  EXPECT_EQ(snapshot->member_count(), static_cast<int>(present.size()));
}

TEST(DistributedRobustness, LinkFlapHeals) {
  const testing::Fig1Topology fig;
  SimulationHarness h(fig.graph, fig.S);
  h.start();
  h.session().join(fig.D);
  h.simulator().run_until(1500.0);
  // Flap the on-tree link a few times; the session must end up healthy.
  for (int flap = 0; flap < 3; ++flap) {
    h.network().set_link_up(fig.AD, false);
    h.simulator().run_until(h.simulator().now() + 1200.0);
    h.network().set_link_up(fig.AD, true);
    h.simulator().run_until(h.simulator().now() + 1200.0);
  }
  const sim::Time now = h.simulator().now();
  EXPECT_LE(now - h.session().last_data_at(fig.D), 200.0);
}

}  // namespace
}  // namespace smrp::proto
