// Integration tests of the distributed protocol stack: joins build a
// served tree, SHR state converges to Eq. 2, failures are repaired —
// locally under SMRP, only after unicast reconvergence under PIM — and
// the local repair restores service faster.
#include "smrp/distributed.hpp"

#include <gtest/gtest.h>

#include "net/waxman.hpp"
#include "smrp/harness.hpp"
#include "testing_topologies.hpp"

namespace smrp::proto {
namespace {

using testing::Fig1Topology;

constexpr sim::Time kSettle = 2000.0;

TEST(DistributedSession, MembersReceiveData) {
  const Fig1Topology fig;
  SimulationHarness h(fig.graph, fig.S);
  h.start();
  h.session().join(fig.C);
  h.session().join(fig.D);
  h.simulator().run_until(kSettle);
  for (const net::NodeId m : {fig.C, fig.D}) {
    EXPECT_TRUE(h.session().is_member(m));
    EXPECT_GE(h.session().last_data_at(m), 0.0);
    EXPECT_LE(kSettle - h.session().last_data_at(m), 100.0)
        << "member " << m << " starved";
  }
}

TEST(DistributedSession, SnapshotMatchesAValidTree) {
  const Fig1Topology fig;
  SimulationHarness h(fig.graph, fig.S);
  h.start();
  h.session().join(fig.C);
  h.session().join(fig.D);
  h.simulator().run_until(kSettle);
  const auto snapshot = h.session().snapshot_tree();
  ASSERT_TRUE(snapshot.has_value());
  ASSERT_NO_THROW(snapshot->validate());
  EXPECT_TRUE(snapshot->is_member(fig.C));
  EXPECT_TRUE(snapshot->is_member(fig.D));
}

TEST(DistributedSession, BelievedShrConvergesToEq2) {
  const Fig1Topology fig;
  SimulationHarness h(fig.graph, fig.S);
  h.start();
  h.session().join(fig.C);
  h.session().join(fig.D);
  h.simulator().run_until(kSettle);
  const auto snapshot = h.session().snapshot_tree();
  ASSERT_TRUE(snapshot.has_value());
  for (const net::NodeId n : snapshot->on_tree_nodes()) {
    EXPECT_EQ(h.session().believed_shr(n), snapshot->shr(n))
        << "node " << n;
  }
}

TEST(DistributedSession, LeavePrunesBranch) {
  const Fig1Topology fig;
  SimulationHarness h(fig.graph, fig.S);
  h.start();
  h.session().join(fig.C);
  h.session().join(fig.D);
  h.simulator().run_until(kSettle);
  h.session().leave(fig.D);
  h.simulator().run_until(kSettle + 1500.0);
  EXPECT_FALSE(h.session().is_member(fig.D));
  EXPECT_FALSE(h.session().on_tree(fig.D));
  // C keeps receiving.
  EXPECT_LE((kSettle + 1500.0) - h.session().last_data_at(fig.C), 100.0);
}

TEST(DistributedSession, SmrpLocalRepairRestoresService) {
  const Fig1Topology fig;
  SimulationHarness h(fig.graph, fig.S);
  h.start();
  h.session().join(fig.C);
  h.session().join(fig.D);
  h.simulator().run_until(kSettle);
  // Worst case for D on the shared tree: cut L_AD.
  h.network().set_link_up(fig.AD, false);
  h.simulator().run_until(kSettle + 5000.0);
  EXPECT_GE(h.session().repairs_started(), 1);
  EXPECT_GE(h.session().repairs_completed(), 1);
  const sim::Time now = kSettle + 5000.0;
  EXPECT_LE(now - h.session().last_data_at(fig.D), 200.0)
      << "D not restored";
  // The repaired snapshot avoids the dead link.
  const auto snapshot = h.session().snapshot_tree();
  ASSERT_TRUE(snapshot.has_value());
  for (const net::LinkId l : snapshot->tree_links()) EXPECT_NE(l, fig.AD);
}

TEST(DistributedSession, PimModeRestoresAfterReconvergence) {
  const Fig1Topology fig;
  SessionConfig config;
  config.mode = SessionConfig::Mode::kPimSpf;
  SimulationHarness h(fig.graph, fig.S, config);
  h.start();
  h.session().join(fig.C);
  h.session().join(fig.D);
  h.simulator().run_until(kSettle);
  ASSERT_LE(kSettle - h.session().last_data_at(fig.D), 100.0);
  h.network().set_link_up(fig.AD, false);
  h.simulator().run_until(kSettle + 8000.0);
  const sim::Time now = kSettle + 8000.0;
  EXPECT_LE(now - h.session().last_data_at(fig.D), 300.0)
      << "D not restored via global detour";
}

/// The paper's headline comparison, measured end-to-end in the DES: the
/// time from the cut to the first payload delivered again at the victim.
sim::Time measure_restoration(SessionConfig::Mode mode) {
  const Fig1Topology fig;
  SessionConfig config;
  config.mode = mode;
  SimulationHarness h(fig.graph, fig.S, config);
  h.start();
  h.session().join(fig.C);
  h.session().join(fig.D);
  h.simulator().run_until(kSettle);
  h.network().set_link_up(fig.AD, false);
  const sim::Time fail_at = h.simulator().now();
  // Run until D hears data newer than the failure.
  sim::Time horizon = fail_at;
  while (horizon < fail_at + 20000.0) {
    horizon += 50.0;
    h.simulator().run_until(horizon);
    if (h.session().last_data_at(fig.D) > fail_at) {
      return h.session().last_data_at(fig.D) - fail_at;
    }
  }
  return -1.0;
}

TEST(DistributedSession, LocalRepairBeatsGlobalRejoin) {
  const sim::Time smrp = measure_restoration(SessionConfig::Mode::kSmrp);
  const sim::Time pim = measure_restoration(SessionConfig::Mode::kPimSpf);
  ASSERT_GT(smrp, 0.0);
  ASSERT_GT(pim, 0.0);
  // SMRP repairs locally, without waiting for OSPF-like reconvergence.
  EXPECT_LT(smrp, pim);
}

TEST(DistributedSession, RandomTopologyFullStack) {
  net::Rng rng(2024);
  net::WaxmanParams wax;
  wax.node_count = 40;
  const net::Graph g = net::waxman_graph(wax, rng);
  SimulationHarness h(g, 0);
  h.start();
  std::vector<net::NodeId> members;
  for (int i = 0; i < 8; ++i) {
    const auto m = static_cast<net::NodeId>(1 + rng.below(39));
    h.session().join(m);
    members.push_back(m);
  }
  h.simulator().run_until(3000.0);
  for (const net::NodeId m : members) {
    EXPECT_GE(h.session().last_data_at(m), 0.0) << "member " << m;
    EXPECT_LE(3000.0 - h.session().last_data_at(m), 150.0) << "member " << m;
  }
  const auto snapshot = h.session().snapshot_tree();
  ASSERT_TRUE(snapshot.has_value());
  ASSERT_NO_THROW(snapshot->validate());
}

}  // namespace
}  // namespace smrp::proto
