// Node-failure recovery (§1 includes incapacitated nodes in the failure
// model): worst-case node selection and both detour policies around a
// dead router.
#include <gtest/gtest.h>

#include <memory>

#include "net/paths.hpp"
#include "net/waxman.hpp"
#include "smrp/recovery.hpp"
#include "smrp/tree_builder.hpp"
#include "testing_topologies.hpp"

namespace smrp::proto {
namespace {

using testing::Fig1Topology;

mcast::MulticastTree fig1_tree(const Fig1Topology& fig) {
  mcast::MulticastTree tree(fig.graph, fig.S);
  tree.graft(fig.C, {fig.C, fig.A, fig.S});
  tree.graft(fig.D, {fig.D, fig.A});
  return tree;
}

TEST(NodeFailure, WorstCaseNodeIsSourcesChild) {
  const Fig1Topology fig;
  const mcast::MulticastTree tree = fig1_tree(fig);
  EXPECT_EQ(worst_case_failure_node(tree, fig.C), fig.A);
  EXPECT_EQ(worst_case_failure_node(tree, fig.D), fig.A);
}

TEST(NodeFailure, LocalDetourRoutesAroundDeadRouter) {
  const Fig1Topology fig;
  const mcast::MulticastTree tree = fig1_tree(fig);
  // A dies: C and D both lose service; survivors = {S}. D's detour must
  // not touch A.
  const RecoveryOutcome out =
      local_detour_recovery(fig.graph, tree, fig.D, Failure::of_node(fig.A));
  ASSERT_TRUE(out.disconnected);
  ASSERT_TRUE(out.recovered);
  EXPECT_EQ(out.reattach_node, fig.S);
  EXPECT_EQ(out.restoration_path,
            (std::vector<net::NodeId>{fig.D, fig.B, fig.S}));
  for (const net::NodeId hop : out.restoration_path) EXPECT_NE(hop, fig.A);
}

TEST(NodeFailure, GlobalDetourAvoidsDeadRouter) {
  const Fig1Topology fig;
  const mcast::MulticastTree tree = fig1_tree(fig);
  const RecoveryOutcome out =
      global_detour_recovery(fig.graph, tree, fig.C, Failure::of_node(fig.A));
  ASSERT_TRUE(out.recovered);
  for (const net::NodeId hop : out.restoration_path) EXPECT_NE(hop, fig.A);
  // C's only A-free route runs C–D–B–S; it grafts at the source.
  EXPECT_EQ(out.reattach_node, fig.S);
}

TEST(NodeFailure, FailedNodeCannotRecoverItself) {
  const Fig1Topology fig;
  const mcast::MulticastTree tree = fig1_tree(fig);
  EXPECT_THROW(
      local_detour_recovery(fig.graph, tree, fig.C, Failure::of_node(fig.C)),
      std::invalid_argument);
}

TEST(NodeFailure, UnaffectedMemberStaysPut) {
  const Fig1Topology fig;
  mcast::MulticastTree tree(fig.graph, fig.S);
  tree.graft(fig.C, {fig.C, fig.A, fig.S});
  tree.graft(fig.D, {fig.D, fig.B, fig.S});
  const RecoveryOutcome out =
      local_detour_recovery(fig.graph, tree, fig.D, Failure::of_node(fig.A));
  EXPECT_FALSE(out.disconnected);
  EXPECT_TRUE(out.recovered);
}

// --- Edge cases around whole-session node-failure repair --------------------

TEST(NodeFailureEdge, MemberLosesItsDirectParent) {
  // Figure-2 style disjoint tree: C under A, D under B. A — C's direct
  // parent — dies; D's branch is untouched and C reattaches to it.
  const Fig1Topology fig;
  mcast::MulticastTree tree(fig.graph, fig.S);
  tree.graft(fig.C, {fig.C, fig.A, fig.S});
  tree.graft(fig.D, {fig.D, fig.B, fig.S});
  const SessionRepairReport report = repair_session(
      fig.graph, tree, Failure::of_node(fig.A), DetourPolicy::kLocal);
  EXPECT_EQ(report.disconnected_members, 1);
  EXPECT_EQ(report.repaired_members, 1);
  tree.validate();
  EXPECT_FALSE(tree.on_tree(fig.A));
  ASSERT_EQ(report.outcomes.size(), 1u);
  EXPECT_EQ(report.outcomes[0].member, fig.C);
  EXPECT_EQ(report.outcomes[0].reattach_node, fig.D);
  EXPECT_DOUBLE_EQ(report.outcomes[0].recovery_distance, 2.0);  // C–D
  EXPECT_EQ(tree.path_to_source(fig.C),
            (std::vector<net::NodeId>{fig.C, fig.D, fig.B, fig.S}));
  // The survivor kept its branch exactly.
  EXPECT_EQ(tree.path_to_source(fig.D),
            (std::vector<net::NodeId>{fig.D, fig.B, fig.S}));
}

TEST(NodeFailureEdge, SourcesOnlyChildDies) {
  // On the SPF tree S–A–{C,D}, A is the source's only child: its death
  // takes the entire distribution structure down to just {S}. The session
  // must rebuild from scratch through B — nearest victim (D, via D–B–S
  // at 3) first, then C assisted by D's fresh branch (C–D at 2).
  const Fig1Topology fig;
  mcast::MulticastTree tree = fig1_tree(fig);
  ASSERT_EQ(tree.children(fig.S).to_vector(), (std::vector<net::NodeId>{fig.A}));
  const SessionRepairReport report = repair_session(
      fig.graph, tree, Failure::of_node(fig.A), DetourPolicy::kLocal);
  EXPECT_EQ(report.disconnected_members, 2);
  EXPECT_EQ(report.repaired_members, 2);
  tree.validate();
  EXPECT_EQ(tree.children(fig.S).to_vector(), (std::vector<net::NodeId>{fig.B}));
  ASSERT_EQ(report.outcomes.size(), 2u);
  EXPECT_EQ(report.outcomes[0].member, fig.D);
  EXPECT_DOUBLE_EQ(report.outcomes[0].recovery_distance, 3.0);
  EXPECT_EQ(report.outcomes[1].member, fig.C);
  EXPECT_DOUBLE_EQ(report.outcomes[1].recovery_distance, 2.0);
  for (const net::NodeId m : {fig.C, fig.D}) {
    for (const net::NodeId hop : tree.path_to_source(m)) {
      EXPECT_NE(hop, fig.A);
    }
  }
}

TEST(NodeFailureEdge, AccumulatedFailuresNarrowTheDetourChoices) {
  // Multi-failure accumulation: link C–D already failed earlier, then
  // node A dies. D still detours via B, but C — whose only A-free escape
  // was C–D — is now physically cut off.
  const Fig1Topology fig;
  mcast::MulticastTree tree = fig1_tree(fig);
  net::ExclusionSet dead(fig.graph);
  dead.ban_link(fig.CD);
  const SessionRepairReport report = repair_session(
      fig.graph, tree, Failure::of_node(fig.A), DetourPolicy::kLocal, &dead);
  EXPECT_EQ(report.disconnected_members, 2);
  EXPECT_EQ(report.repaired_members, 1);
  EXPECT_EQ(report.unrecoverable_members, 1);
  tree.validate();
  ASSERT_EQ(report.outcomes.size(), 1u);
  EXPECT_EQ(report.outcomes[0].member, fig.D);
  EXPECT_EQ(report.outcomes[0].restoration_path,
            (std::vector<net::NodeId>{fig.D, fig.B, fig.S}));
  EXPECT_TRUE(tree.is_member(fig.D));
  EXPECT_FALSE(tree.is_member(fig.C));
}

TEST(NodeFailureEdge, AccumulatedNodeFailuresCanStrandEveryone) {
  // B died earlier, now A dies too: with both transit routers gone the
  // members have no physical path left; the repair must report them
  // unrecoverable and leave a valid (source-only) tree.
  const Fig1Topology fig;
  mcast::MulticastTree tree = fig1_tree(fig);
  net::ExclusionSet dead(fig.graph);
  dead.ban_node(fig.B);
  const SessionRepairReport report = repair_session(
      fig.graph, tree, Failure::of_node(fig.A), DetourPolicy::kLocal, &dead);
  EXPECT_EQ(report.disconnected_members, 2);
  EXPECT_EQ(report.repaired_members, 0);
  EXPECT_EQ(report.unrecoverable_members, 2);
  tree.validate();
  EXPECT_EQ(tree.member_count(), 0);
  EXPECT_TRUE(tree.on_tree_nodes() ==
              std::vector<net::NodeId>{fig.S});
}

class NodeFailureProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NodeFailureProperty, RestorationAvoidsTheDeadNode) {
  net::Rng rng(GetParam());
  net::WaxmanParams wax;
  wax.node_count = 60;
  auto g = std::make_unique<net::Graph>(net::waxman_graph(wax, rng));
  SmrpTreeBuilder builder(*g, 0);
  std::vector<net::NodeId> members;
  for (int i = 0; i < 15; ++i) {
    const auto m = static_cast<net::NodeId>(1 + rng.below(59));
    if (builder.tree().is_member(m)) continue;
    builder.join(m);
    members.push_back(m);
  }
  for (const net::NodeId m : members) {
    const net::NodeId dead = worst_case_failure_node(builder.tree(), m);
    if (dead == m) continue;
    const auto survivors = builder.tree().surviving_after_node(dead);
    for (const bool local : {true, false}) {
      const Failure failure = Failure::of_node(dead);
      const RecoveryOutcome out =
          local ? local_detour_recovery(*g, builder.tree(), m, failure)
                : global_detour_recovery(*g, builder.tree(), m, failure);
      ASSERT_TRUE(out.disconnected);
      if (!out.recovered) continue;
      for (const net::NodeId hop : out.restoration_path) {
        ASSERT_NE(hop, dead);
      }
      ASSERT_TRUE(survivors[static_cast<std::size_t>(out.reattach_node)]);
      ASSERT_NEAR(out.recovery_distance,
                  net::path_weight(*g, out.restoration_path), 1e-9);
    }
  }
}

TEST_P(NodeFailureProperty, NodeFailureDisconnectsAtLeastAsMuchAsItsLinks) {
  net::Rng rng(GetParam() ^ 0x77);
  net::WaxmanParams wax;
  wax.node_count = 50;
  auto g = std::make_unique<net::Graph>(net::waxman_graph(wax, rng));
  SmrpTreeBuilder builder(*g, 0);
  for (int i = 0; i < 12; ++i) {
    builder.join(static_cast<net::NodeId>(1 + rng.below(49)));
  }
  const auto& tree = builder.tree();
  for (const net::NodeId n : tree.on_tree_nodes()) {
    if (n == tree.source()) continue;
    const auto by_node = tree.surviving_after_node(n);
    const auto by_link = tree.surviving_after_link(tree.parent_link(n));
    for (net::NodeId v = 0; v < g->node_count(); ++v) {
      // Everything the parent-link cut kills, the node failure kills too.
      if (!by_link[static_cast<std::size_t>(v)]) {
        ASSERT_FALSE(by_node[static_cast<std::size_t>(v)] && v != n)
            << "node " << n << " victim " << v;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NodeFailureProperty,
                         ::testing::Values(3, 6, 9, 12, 15));

}  // namespace
}  // namespace smrp::proto
