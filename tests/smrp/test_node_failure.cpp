// Node-failure recovery (§1 includes incapacitated nodes in the failure
// model): worst-case node selection and both detour policies around a
// dead router.
#include <gtest/gtest.h>

#include <memory>

#include "net/paths.hpp"
#include "net/waxman.hpp"
#include "smrp/recovery.hpp"
#include "smrp/tree_builder.hpp"
#include "testing_topologies.hpp"

namespace smrp::proto {
namespace {

using testing::Fig1Topology;

mcast::MulticastTree fig1_tree(const Fig1Topology& fig) {
  mcast::MulticastTree tree(fig.graph, fig.S);
  tree.graft(fig.C, {fig.C, fig.A, fig.S});
  tree.graft(fig.D, {fig.D, fig.A});
  return tree;
}

TEST(NodeFailure, WorstCaseNodeIsSourcesChild) {
  const Fig1Topology fig;
  const mcast::MulticastTree tree = fig1_tree(fig);
  EXPECT_EQ(worst_case_failure_node(tree, fig.C), fig.A);
  EXPECT_EQ(worst_case_failure_node(tree, fig.D), fig.A);
}

TEST(NodeFailure, LocalDetourRoutesAroundDeadRouter) {
  const Fig1Topology fig;
  const mcast::MulticastTree tree = fig1_tree(fig);
  // A dies: C and D both lose service; survivors = {S}. D's detour must
  // not touch A.
  const RecoveryOutcome out =
      local_detour_recovery(fig.graph, tree, fig.D, Failure::of_node(fig.A));
  ASSERT_TRUE(out.disconnected);
  ASSERT_TRUE(out.recovered);
  EXPECT_EQ(out.reattach_node, fig.S);
  EXPECT_EQ(out.restoration_path,
            (std::vector<net::NodeId>{fig.D, fig.B, fig.S}));
  for (const net::NodeId hop : out.restoration_path) EXPECT_NE(hop, fig.A);
}

TEST(NodeFailure, GlobalDetourAvoidsDeadRouter) {
  const Fig1Topology fig;
  const mcast::MulticastTree tree = fig1_tree(fig);
  const RecoveryOutcome out =
      global_detour_recovery(fig.graph, tree, fig.C, Failure::of_node(fig.A));
  ASSERT_TRUE(out.recovered);
  for (const net::NodeId hop : out.restoration_path) EXPECT_NE(hop, fig.A);
  // C's only A-free route runs C–D–B–S; it grafts at the source.
  EXPECT_EQ(out.reattach_node, fig.S);
}

TEST(NodeFailure, FailedNodeCannotRecoverItself) {
  const Fig1Topology fig;
  const mcast::MulticastTree tree = fig1_tree(fig);
  EXPECT_THROW(
      local_detour_recovery(fig.graph, tree, fig.C, Failure::of_node(fig.C)),
      std::invalid_argument);
}

TEST(NodeFailure, UnaffectedMemberStaysPut) {
  const Fig1Topology fig;
  mcast::MulticastTree tree(fig.graph, fig.S);
  tree.graft(fig.C, {fig.C, fig.A, fig.S});
  tree.graft(fig.D, {fig.D, fig.B, fig.S});
  const RecoveryOutcome out =
      local_detour_recovery(fig.graph, tree, fig.D, Failure::of_node(fig.A));
  EXPECT_FALSE(out.disconnected);
  EXPECT_TRUE(out.recovered);
}

class NodeFailureProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NodeFailureProperty, RestorationAvoidsTheDeadNode) {
  net::Rng rng(GetParam());
  net::WaxmanParams wax;
  wax.node_count = 60;
  auto g = std::make_unique<net::Graph>(net::waxman_graph(wax, rng));
  SmrpTreeBuilder builder(*g, 0);
  std::vector<net::NodeId> members;
  for (int i = 0; i < 15; ++i) {
    const auto m = static_cast<net::NodeId>(1 + rng.below(59));
    if (builder.tree().is_member(m)) continue;
    builder.join(m);
    members.push_back(m);
  }
  for (const net::NodeId m : members) {
    const net::NodeId dead = worst_case_failure_node(builder.tree(), m);
    if (dead == m) continue;
    const auto survivors = builder.tree().surviving_after_node(dead);
    for (const bool local : {true, false}) {
      const Failure failure = Failure::of_node(dead);
      const RecoveryOutcome out =
          local ? local_detour_recovery(*g, builder.tree(), m, failure)
                : global_detour_recovery(*g, builder.tree(), m, failure);
      ASSERT_TRUE(out.disconnected);
      if (!out.recovered) continue;
      for (const net::NodeId hop : out.restoration_path) {
        ASSERT_NE(hop, dead);
      }
      ASSERT_TRUE(survivors[static_cast<std::size_t>(out.reattach_node)]);
      ASSERT_NEAR(out.recovery_distance,
                  net::path_weight(*g, out.restoration_path), 1e-9);
    }
  }
}

TEST_P(NodeFailureProperty, NodeFailureDisconnectsAtLeastAsMuchAsItsLinks) {
  net::Rng rng(GetParam() ^ 0x77);
  net::WaxmanParams wax;
  wax.node_count = 50;
  auto g = std::make_unique<net::Graph>(net::waxman_graph(wax, rng));
  SmrpTreeBuilder builder(*g, 0);
  for (int i = 0; i < 12; ++i) {
    builder.join(static_cast<net::NodeId>(1 + rng.below(49)));
  }
  const auto& tree = builder.tree();
  for (const net::NodeId n : tree.on_tree_nodes()) {
    if (n == tree.source()) continue;
    const auto by_node = tree.surviving_after_node(n);
    const auto by_link = tree.surviving_after_link(tree.parent_link(n));
    for (net::NodeId v = 0; v < g->node_count(); ++v) {
      // Everything the parent-link cut kills, the node failure kills too.
      if (!by_link[static_cast<std::size_t>(v)]) {
        ASSERT_FALSE(by_node[static_cast<std::size_t>(v)] && v != n)
            << "node " << n << " victim " << v;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NodeFailureProperty,
                         ::testing::Values(3, 6, 9, 12, 15));

}  // namespace
}  // namespace smrp::proto
