#include "smrp/tree_builder.hpp"

#include <gtest/gtest.h>

#include "net/waxman.hpp"
#include "testing_topologies.hpp"

namespace smrp::proto {
namespace {

using testing::Fig1Topology;

TEST(SmrpTreeBuilder, SourceCannotJoin) {
  const Fig1Topology fig;
  SmrpTreeBuilder builder(fig.graph, fig.S);
  EXPECT_THROW(builder.join(fig.S), std::invalid_argument);
}

TEST(SmrpTreeBuilder, JoinIsIdempotent) {
  const Fig1Topology fig;
  SmrpTreeBuilder builder(fig.graph, fig.S);
  ASSERT_TRUE(builder.join(fig.C).joined);
  const JoinOutcome again = builder.join(fig.C);
  EXPECT_TRUE(again.joined);
  EXPECT_EQ(builder.tree().member_count(), 1);
}

TEST(SmrpTreeBuilder, UnreachableMemberIsRefused) {
  net::Graph g(3);
  g.add_link(0, 1, 1.0);
  SmrpTreeBuilder builder(g, 0);
  EXPECT_FALSE(builder.join(2).joined);
  EXPECT_EQ(builder.tree().member_count(), 0);
}

TEST(SmrpTreeBuilder, FirstJoinTakesSpfPath) {
  const Fig1Topology fig;
  SmrpTreeBuilder builder(fig.graph, fig.S);
  builder.join(fig.D);
  EXPECT_EQ(builder.tree().path_to_source(fig.D),
            (std::vector<net::NodeId>{fig.D, fig.A, fig.S}));
  EXPECT_DOUBLE_EQ(builder.tree().delay_to_source(fig.D),
                   builder.spf_delay(fig.D));
}

TEST(SmrpTreeBuilder, SecondJoinPrefersLessSharedPath) {
  const Fig1Topology fig;
  SmrpTreeBuilder builder(fig.graph, fig.S);  // default D_thresh = 0.3
  builder.join(fig.C);  // C → A → S
  SmrpConfig wide;
  wide.d_thresh = 1.0;  // admit the B detour
  SmrpTreeBuilder builder2(fig.graph, fig.S, wide);
  builder2.join(fig.C);
  builder2.join(fig.D);
  // With a generous bound D merges at the source via B (SHR 0) instead of
  // sharing A (SHR 1): the Figure-2 disjoint tree.
  EXPECT_EQ(builder2.tree().path_to_source(fig.D),
            (std::vector<net::NodeId>{fig.D, fig.B, fig.S}));
}

TEST(SmrpTreeBuilder, TightBoundForcesSharedPath) {
  const Fig1Topology fig;
  SmrpConfig tight;
  tight.d_thresh = 0.0;
  SmrpTreeBuilder builder(fig.graph, fig.S, tight);
  builder.join(fig.C);
  builder.join(fig.D);
  // D's only bound-satisfying path is its SPF path through A.
  EXPECT_EQ(builder.tree().path_to_source(fig.D),
            (std::vector<net::NodeId>{fig.D, fig.A, fig.S}));
  EXPECT_EQ(builder.fallback_join_count(), 0);
}

TEST(SmrpTreeBuilder, LeaveRemovesMemberAndBaseline) {
  const Fig1Topology fig;
  SmrpTreeBuilder builder(fig.graph, fig.S);
  builder.join(fig.C);
  builder.join(fig.D);
  builder.leave(fig.C);
  builder.tree().validate();
  EXPECT_FALSE(builder.tree().is_member(fig.C));
  EXPECT_EQ(builder.tree().member_count(), 1);
}

TEST(SmrpTreeBuilder, JoinAlongExplicitGraft) {
  const Fig1Topology fig;
  SmrpTreeBuilder builder(fig.graph, fig.S);
  const JoinOutcome out =
      builder.join_along(fig.D, {fig.D, fig.B, fig.S});
  EXPECT_TRUE(out.joined);
  EXPECT_EQ(out.merge_node, fig.S);
  EXPECT_EQ(builder.tree().parent(fig.D), fig.B);
  builder.tree().validate();
}

TEST(SmrpTreeBuilder, JoinAlongEmptyGraftIsRejected) {
  const Fig1Topology fig;
  SmrpTreeBuilder builder(fig.graph, fig.S);
  const JoinOutcome out = builder.join_along(fig.D, {});
  EXPECT_FALSE(out.joined);
  EXPECT_FALSE(builder.tree().is_member(fig.D));
  EXPECT_EQ(builder.tree().member_count(), 0);
  builder.tree().validate();
}

TEST(SmrpTreeBuilder, JoinAlongOffTreeEndpointIsRejected) {
  const Fig1Topology fig;
  SmrpTreeBuilder builder(fig.graph, fig.S);
  // B is reachable but not on the (so far trivial) tree: the graft never
  // reaches the session and must be refused, not spliced into thin air.
  const JoinOutcome out = builder.join_along(fig.D, {fig.D, fig.B});
  EXPECT_FALSE(out.joined);
  EXPECT_FALSE(builder.tree().is_member(fig.D));
  builder.tree().validate();
  // A well-formed graft for the same member still works afterwards.
  EXPECT_TRUE(builder.join_along(fig.D, {fig.D, fig.B, fig.S}).joined);
  builder.tree().validate();
}

TEST(SmrpTreeBuilder, JoinAlongSingletonOffTreeGraftIsRejected) {
  const Fig1Topology fig;
  SmrpTreeBuilder builder(fig.graph, fig.S);
  const JoinOutcome out = builder.join_along(fig.D, {fig.D});
  EXPECT_FALSE(out.joined);
  EXPECT_FALSE(builder.tree().is_member(fig.D));
}

TEST(GraftRewalksAttachment, RecognisesSingleAndMultiHopRewalks) {
  const Fig1Topology fig;
  SmrpTreeBuilder builder(fig.graph, fig.S);
  ASSERT_TRUE(builder.join_along(fig.D, {fig.D, fig.A, fig.S}).joined);
  const MulticastTree& tree = builder.tree();
  // D currently attaches via D–A–S.
  EXPECT_TRUE(graft_rewalks_attachment(tree, fig.D, {fig.D, fig.A}));
  EXPECT_TRUE(graft_rewalks_attachment(tree, fig.D, {fig.D, fig.A, fig.S}));
  // A genuinely different attachment is not a re-walk.
  EXPECT_FALSE(graft_rewalks_attachment(tree, fig.D, {fig.D, fig.B, fig.S}));
  // Degenerate grafts, or ones that do not start at the member, are not.
  EXPECT_FALSE(graft_rewalks_attachment(tree, fig.D, {}));
  EXPECT_FALSE(graft_rewalks_attachment(tree, fig.D, {fig.D}));
  EXPECT_FALSE(graft_rewalks_attachment(tree, fig.D, {fig.A, fig.S}));
  // Walking past the root cannot be a re-walk of the upstream chain.
  EXPECT_FALSE(
      graft_rewalks_attachment(tree, fig.D, {fig.D, fig.A, fig.S, fig.B}));
}

// ---- Randomised properties -------------------------------------------------

struct ChurnCase {
  std::uint64_t seed;
  double d_thresh;
};

class BuilderProperty : public ::testing::TestWithParam<ChurnCase> {};

TEST_P(BuilderProperty, DelayBoundHoldsForNonFallbackJoins) {
  const auto [seed, d_thresh] = GetParam();
  net::Rng rng(seed);
  net::WaxmanParams wax;
  wax.node_count = 60;
  const net::Graph g = net::waxman_graph(wax, rng);
  SmrpConfig config;
  config.d_thresh = d_thresh;
  SmrpTreeBuilder builder(g, 0, config);

  for (int i = 0; i < 25; ++i) {
    const auto member = static_cast<net::NodeId>(1 + rng.below(59));
    if (builder.tree().is_member(member)) continue;
    const JoinOutcome out = builder.join(member);
    ASSERT_TRUE(out.joined);
    if (!out.used_fallback) {
      // The bound must hold at join time...
      EXPECT_LE(out.total_delay,
                (1.0 + d_thresh) * builder.spf_delay(member) + 1e-6);
    }
    builder.tree().validate();
  }
  // ...and every member's delay stays bounded after reshaping, because
  // reshaping only accepts bound-satisfying candidates.
  for (const net::NodeId m : builder.tree().members()) {
    const double bound = (1.0 + d_thresh) * builder.spf_delay(m) + 1e-6;
    if (builder.fallback_join_count() == 0) {
      EXPECT_LE(builder.tree().delay_to_source(m), bound) << "member " << m;
    }
  }
}

TEST_P(BuilderProperty, ChurnKeepsTreeValid) {
  const auto [seed, d_thresh] = GetParam();
  net::Rng rng(seed ^ 0xc0ffee);
  net::WaxmanParams wax;
  wax.node_count = 50;
  const net::Graph g = net::waxman_graph(wax, rng);
  SmrpConfig config;
  config.d_thresh = d_thresh;
  SmrpTreeBuilder builder(g, 0, config);

  std::vector<net::NodeId> members;
  for (int step = 0; step < 120; ++step) {
    if (members.empty() || rng.uniform() < 0.6) {
      const auto m = static_cast<net::NodeId>(1 + rng.below(49));
      if (builder.tree().is_member(m)) continue;
      ASSERT_TRUE(builder.join(m).joined);
      members.push_back(m);
    } else {
      const std::size_t idx = rng.below(members.size());
      builder.leave(members[idx]);
      members.erase(members.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    ASSERT_NO_THROW(builder.tree().validate()) << "step " << step;
  }
}

TEST_P(BuilderProperty, ReshapeToFixpointNeverWorsensMeanShr) {
  const auto [seed, d_thresh] = GetParam();
  net::Rng rng(seed ^ 0xbeef);
  net::WaxmanParams wax;
  wax.node_count = 60;
  const net::Graph g = net::waxman_graph(wax, rng);
  SmrpConfig config;
  config.d_thresh = d_thresh;
  config.enable_reshaping = false;  // build naively, then reshape once
  SmrpTreeBuilder builder(g, 0, config);
  for (int i = 0; i < 20; ++i) {
    builder.join(static_cast<net::NodeId>(1 + rng.below(59)));
  }
  const auto mean_shr = [&]() {
    double total = 0;
    for (const net::NodeId m : builder.tree().members()) {
      total += builder.tree().shr(m);
    }
    return total / builder.tree().member_count();
  };
  const double before = mean_shr();
  builder.reshape_to_fixpoint();
  builder.tree().validate();
  EXPECT_LE(mean_shr(), before + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, BuilderProperty,
    ::testing::Values(ChurnCase{1, 0.1}, ChurnCase{2, 0.3}, ChurnCase{3, 0.5},
                      ChurnCase{4, 0.3}, ChurnCase{5, 1.0}));

}  // namespace
}  // namespace smrp::proto
