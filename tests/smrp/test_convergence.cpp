// End-to-end convergence detection (DESIGN.md §13) under the standard
// 50-fault chaos soak: every outage the protocol restored must carry a
// `convergence` child span confirming the restoration in-protocol, the
// confirmation must never be early (detected_ms >= total_ms), and the
// detection machinery — including the opt-in adaptive triggers — must be
// pure computation on protocol state: seeded runs are bit-identical with
// telemetry attached or detached.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "obs/telemetry.hpp"
#include "sim/fault_injection.hpp"
#include "smrp/harness.hpp"
#include "smrp/invariants.hpp"

namespace smrp::proto {
namespace {

constexpr std::uint64_t kSoakSeed = 20050628;  // DSN'05 publication date

net::Graph soak_ring(int n) {
  net::Graph g(n);
  for (net::NodeId i = 0; i < n; ++i) {
    g.add_link(i, (i + 1) % n, 1.0);
  }
  return g;
}

const std::vector<net::NodeId> kMembers{3, 6, 9};

/// Everything the protocol computed that an observer could compare:
/// bit-identity across telemetry attach states is judged on this.
struct ProtocolDigest {
  std::size_t events_processed = 0;
  double end_time = 0.0;
  std::uint64_t detections = 0;
  bool converged = false;
  std::vector<double> last_data_ms;
};

/// The standard 50-fault soak (tests/smrp/test_chaos.cpp), optionally
/// observed. Returns the protocol-side digest; the telemetry bundle (when
/// given) is finished at end-of-run so spans are flushed for scanning.
ProtocolDigest run_soak(const SessionConfig& config,
                        obs::Telemetry* telemetry) {
  const net::Graph g = soak_ring(12);
  SimulationHarness h(g, /*source=*/0, config);
  if (telemetry != nullptr) h.attach_telemetry(telemetry);

  sim::FaultPlan::RandomParams params;
  params.link_flaps = 47;
  params.node_restarts = 2;
  params.loss_bursts = 1;
  params.start = 2'000.0;
  params.window = 20'000.0;
  params.protected_nodes = {0};
  net::Rng rng(kSoakSeed);
  sim::ChaosController chaos(h.simulator(), h.network(),
                             sim::FaultPlan::randomized(g, params, rng));
  h.start();
  for (const net::NodeId m : kMembers) h.session().join(m);
  chaos.arm();

  const sim::Time bound = service_restoration_bound(
      h.session().config(), routing::RoutingConfig{}, g);
  h.simulator().run_until(chaos.quiescent_time() + bound);

  ProtocolDigest digest;
  digest.events_processed = h.simulator().processed();
  digest.end_time = h.simulator().now();
  digest.detections = h.session().convergence_detections();
  digest.converged = h.session().convergence_detected();
  for (const net::NodeId m : kMembers) {
    digest.last_data_ms.push_back(h.session().last_data_at(m));
  }
  if (telemetry != nullptr) telemetry->finish(digest.end_time);
  return digest;
}

SessionConfig soak_config() {
  SessionConfig config;
  config.max_repair_ttl = 4;  // exhaustion + fallback are reachable
  return config;
}

TEST(ConvergenceSoak, EveryRestoredOutageIsConfirmedInProtocolNeverEarly) {
  obs::Telemetry telemetry;
  run_soak(soak_config(), &telemetry);

  // Scan the flushed trace: restored (ok-closed) outages on one side,
  // convergence confirmations keyed by their outage parent on the other.
  std::set<obs::SpanId> restored;
  std::map<obs::SpanId, const obs::Span*> confirmations;
  for (const obs::Span& span : telemetry.spans.spans()) {
    if (span.kind == "outage" && span.status == obs::SpanStatus::kOk) {
      restored.insert(span.id);
    }
    if (span.kind == "convergence") {
      // One confirmation per episode: a duplicate would mean the
      // detector re-confirmed an already-paired outage.
      EXPECT_EQ(confirmations.count(span.parent), 0u);
      confirmations[span.parent] = &span;
    }
  }
  ASSERT_GT(restored.size(), 0u) << "the soak restored no outages; the "
                                    "coverage claim would be vacuous";

  // 100% coverage: the acceptance bar is every restored outage, not most.
  for (const obs::SpanId outage : restored) {
    const auto it = confirmations.find(outage);
    ASSERT_NE(it, confirmations.end())
        << "restored outage span " << outage
        << " was never confirmed in-protocol";
    const obs::Span& conv = *it->second;
    EXPECT_EQ(conv.status, obs::SpanStatus::kOk);
    const double* total = conv.attr("total_ms");
    const double* detected = conv.attr("detected_ms");
    const double* skew = conv.attr("skew_ms");
    ASSERT_NE(total, nullptr);
    ASSERT_NE(detected, nullptr);
    ASSERT_NE(skew, nullptr);
    // Never early: the source cannot honestly claim a restoration before
    // the omniscient clock says it happened.
    EXPECT_GE(*detected, *total);
    EXPECT_EQ(*skew, *detected - *total);
    EXPECT_GE(*skew, 0.0);
  }
  // Every confirmation points at a real restored outage (no orphans).
  for (const auto& [parent, conv] : confirmations) {
    EXPECT_EQ(restored.count(parent), 1u)
        << "convergence span " << conv->id
        << " confirms a span that is not a restored outage";
  }
}

TEST(ConvergenceSoak, QuietSessionDeclaresTheFirstEpoch) {
  // No faults at all: once the joins settle, the wave reaches the source
  // and the first epoch is declared — detection is not outage-triggered,
  // it is a standing verdict over the refresh traffic.
  const net::Graph g = soak_ring(12);
  SimulationHarness h(g, /*source=*/0, soak_config());
  h.start();
  for (const net::NodeId m : kMembers) h.session().join(m);
  h.simulator().run_until(8'000.0);
  EXPECT_TRUE(h.session().convergence_detected());
  EXPECT_GE(h.session().convergence_detections(), 1u);
}

TEST(ConvergenceSoak, AdaptiveTriggersSurviveTheSoak) {
  // The adaptive mode changes protocol behaviour (early ring aborts,
  // gated reshapes), so it gets its own pass through the invariant
  // checker and the service check — same drill as the hardened baseline.
  SessionConfig config = soak_config();
  config.adaptive_triggers = true;

  const net::Graph g = soak_ring(12);
  SimulationHarness h(g, /*source=*/0, config);
  sim::FaultPlan::RandomParams params;
  params.link_flaps = 47;
  params.node_restarts = 2;
  params.loss_bursts = 1;
  params.start = 2'000.0;
  params.window = 20'000.0;
  params.protected_nodes = {0};
  net::Rng rng(kSoakSeed);
  const sim::FaultPlan plan = sim::FaultPlan::randomized(g, params, rng);
  sim::ChaosController chaos(h.simulator(), h.network(), plan);
  h.start();
  for (const net::NodeId m : kMembers) h.session().join(m);
  chaos.arm();
  const InvariantChecker checker(h.session(), h.network());
  const sim::Time bound = service_restoration_bound(
      h.session().config(), routing::RoutingConfig{}, g);
  h.simulator().run_until(plan.quiescent_time() + bound);

  const InvariantReport report = checker.audit_quiescent(
      plan.quiescent_time());
  EXPECT_TRUE(report.ok()) << report.to_string();
  const sim::Time now = h.simulator().now();
  for (const net::NodeId m : kMembers) {
    if (!h.network().node_up(m)) continue;
    const sim::Time last = h.session().last_data_at(m);
    EXPECT_GT(last, plan.quiescent_time()) << "member " << m << " is dark";
    EXPECT_LE(now - last, h.session().config().upstream_timeout)
        << "member " << m << " is starving";
  }
}

TEST(ConvergenceSoak, DetectionIsBitIdenticalAttachedOrDetached) {
  // The detector (and the adaptive triggers acting on it) is pure
  // computation on protocol state — no events, no randomness. Attaching
  // telemetry must therefore not move a single simulator event, in either
  // the baseline or the adaptive configuration.
  for (const bool adaptive : {false, true}) {
    SessionConfig config = soak_config();
    config.adaptive_triggers = adaptive;
    obs::Telemetry telemetry;
    const ProtocolDigest observed = run_soak(config, &telemetry);
    const ProtocolDigest blind = run_soak(config, nullptr);
    EXPECT_EQ(observed.events_processed, blind.events_processed)
        << "adaptive=" << adaptive;
    EXPECT_EQ(observed.end_time, blind.end_time);
    EXPECT_EQ(observed.detections, blind.detections);
    EXPECT_EQ(observed.converged, blind.converged);
    EXPECT_EQ(observed.last_data_ms, blind.last_data_ms);
    EXPECT_GT(observed.detections, 0u);
  }
}

TEST(ConvergenceSoak, AdaptiveModeActuallyFiresUnderTheSoak) {
  // A/B honesty check: if the soak never exercises an adaptive fallback
  // or a converged-gated reshape, the A/B bench compares identical runs.
  // Divergence in the digest is the cheapest proof the knob is live.
  SessionConfig baseline = soak_config();
  SessionConfig adaptive = soak_config();
  adaptive.adaptive_triggers = true;
  const ProtocolDigest a = run_soak(baseline, nullptr);
  const ProtocolDigest b = run_soak(adaptive, nullptr);
  EXPECT_NE(a.events_processed, b.events_processed)
      << "adaptive triggers never changed the run; the A/B comparison "
         "is vacuous";
}

}  // namespace
}  // namespace smrp::proto
