// The expectations gate over the standard 50-fault chaos soak
// (tests/smrp/test_chaos.cpp): the hardened protocol satisfies the full
// core ruleset online, the online judgement and the offline replay of the
// run's own JSONL export are byte-identical, and each seeded protocol
// mutation — the pre-hardening legacy path, the forward-everything guard
// drop, and the ring-budget-ignoring repair — trips at least one rule.
// This is what makes the ruleset load-bearing: a rule no mutant can
// violate would be dead weight.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "obs/expect/offline.hpp"
#include "obs/expect/rules.hpp"
#include "obs/jsonl.hpp"
#include "obs/telemetry.hpp"
#include "sim/fault_injection.hpp"
#include "smrp/harness.hpp"
#include "smrp/invariants.hpp"

namespace smrp::proto {
namespace {

constexpr std::uint64_t kSoakSeed = 20050628;  // DSN'05 publication date

net::Graph soak_ring(int n) {
  net::Graph g(n);
  for (net::NodeId i = 0; i < n; ++i) {
    g.add_link(i, (i + 1) % n, 1.0);
  }
  return g;
}

struct GateRun {
  obs::expect::ExpectReport report;  ///< online judgement
  std::string jsonl;                 ///< the run's own export
  double end_time = 0.0;
};

/// The standard 50-fault soak with the core ruleset tapped online and the
/// telemetry exported at end-of-run, under an arbitrary SessionConfig.
GateRun run_gated_soak(const SessionConfig& config) {
  const net::Graph g = soak_ring(12);
  const net::NodeId source = 0;
  const std::vector<net::NodeId> members{3, 6, 9};

  obs::Telemetry telemetry;
  obs::expect::ExpectationChecker checker(
      obs::expect::RuleSet::smrp_core());
  checker.attach(telemetry);

  SimulationHarness h(g, source, config);
  h.attach_telemetry(&telemetry);

  sim::FaultPlan::RandomParams params;
  params.link_flaps = 47;
  params.node_restarts = 2;
  params.loss_bursts = 1;
  params.start = 2'000.0;
  params.window = 20'000.0;
  params.protected_nodes = {source};
  net::Rng rng(kSoakSeed);
  sim::ChaosController chaos(h.simulator(), h.network(),
                             sim::FaultPlan::randomized(g, params, rng));
  h.start();
  for (const net::NodeId m : members) h.session().join(m);
  chaos.arm();

  const sim::Time bound = service_restoration_bound(
      h.session().config(), routing::RoutingConfig{}, g);
  h.simulator().run_until(chaos.quiescent_time() + bound);

  GateRun run;
  run.end_time = h.simulator().now();
  telemetry.finish(run.end_time);  // flush open spans through the tap
  run.report = checker.report();
  std::ostringstream out;
  obs::JsonlSink sink(out);
  sink.write_snapshot(telemetry, run.end_time, "soak");
  run.jsonl = out.str();
  return run;
}

SessionConfig soak_config() {
  SessionConfig config;
  config.max_repair_ttl = 4;  // exhaustion + fallback are reachable
  return config;
}

/// Rules with at least one violation, by name.
std::vector<std::string> violated_rules(const obs::expect::ExpectReport& r) {
  std::vector<std::string> names;
  for (const obs::expect::RuleOutcome& rule : r.rules) {
    if (!rule.ok()) names.push_back(rule.name);
  }
  return names;
}

bool violates(const obs::expect::ExpectReport& report,
              std::string_view rule_name) {
  for (const obs::expect::RuleOutcome& rule : report.rules) {
    if (rule.name == rule_name) return !rule.ok();
  }
  return false;
}

TEST(ExpectationsGate, HardenedSoakPassesTheFullCoreRuleset) {
  const GateRun run = run_gated_soak(soak_config());
  EXPECT_TRUE(run.report.ok()) << run.report.render();

  // The pass is not vacuous: the soak exercised the episode rules and the
  // per-message rules alike.
  const auto checked = [&](std::string_view name) -> std::uint64_t {
    for (const obs::expect::RuleOutcome& rule : run.report.rules) {
      if (rule.name == name) return rule.checked;
    }
    return 0;
  };
  EXPECT_GT(checked("outage-resolves"), 0u);
  EXPECT_GT(checked("repair-resolves"), 0u);
  EXPECT_GT(checked("ring-within-budget"), 0u);
  EXPECT_GT(checked("outage-has-recovery"), 0u);
  EXPECT_GT(checked("forward-on-tree"), 0u);
  EXPECT_GT(checked("no-duplicate-delivery"), 0u);
}

TEST(ExpectationsGate, OnlineAndOfflineReportsAreByteIdentical) {
  const GateRun run = run_gated_soak(soak_config());
  std::istringstream replay(run.jsonl);
  const obs::expect::OfflineResult offline = obs::expect::check_stream(
      replay, obs::expect::RuleSet::smrp_core());
  ASSERT_EQ(offline.runs.size(), 1u);
  EXPECT_EQ(offline.runs[0].run, "soak");
  EXPECT_EQ(offline.runs[0].report.render(), run.report.render());
}

TEST(ExpectationsGate, LegacyProtocolTripsTheRuleset) {
  // The pre-hardening protocol gives up ring searches silently and trusts
  // stale state across restarts: under the soak it strands members, whose
  // outage spans the end-of-run flush then truncates.
  SessionConfig config = soak_config();
  config.hardened = false;
  const GateRun run = run_gated_soak(config);
  EXPECT_FALSE(run.report.ok())
      << "the legacy mutant passed the core ruleset; the expectations "
         "gate is no longer load-bearing";
  EXPECT_TRUE(violates(run.report, "outage-resolves"))
      << run.report.render();
}

TEST(ExpectationsGate, ForwardEverythingMutantTripsTheForwardRules) {
  // Dropping the on-tree/from-parent acceptance guard floods payloads to
  // every neighbor; the forward events record the ground truth and the
  // flag rules catch it on the first off-tree hop.
  SessionConfig config = soak_config();
  config.mutations.forward_off_tree = true;
  const GateRun run = run_gated_soak(config);
  EXPECT_FALSE(run.report.ok());
  EXPECT_TRUE(violates(run.report, "forward-on-tree") ||
              violates(run.report, "forward-from-parent"))
      << run.report.render();
}

TEST(ExpectationsGate, RingBudgetMutantTripsTheBudgetRule) {
  // Ignoring max_repair_ttl keeps the expanding-ring search widening past
  // the configured cap; every ring span carries its ttl and the cap, so
  // the attr-le rule catches the first over-budget flood.
  SessionConfig config = soak_config();
  config.mutations.ignore_ring_budget = true;
  const GateRun run = run_gated_soak(config);
  EXPECT_TRUE(violates(run.report, "ring-within-budget"))
      << run.report.render();
}

TEST(ExpectationsGate, MutantViolationsReplayIdenticallyOffline) {
  // The byte-identical guarantee holds for failing runs too — CI's
  // offline trace gate must agree with the online one about violations,
  // not just about clean passes.
  SessionConfig config = soak_config();
  config.mutations.ignore_ring_budget = true;
  const GateRun run = run_gated_soak(config);
  std::istringstream replay(run.jsonl);
  const obs::expect::OfflineResult offline = obs::expect::check_stream(
      replay, obs::expect::RuleSet::smrp_core());
  ASSERT_EQ(offline.runs.size(), 1u);
  EXPECT_EQ(offline.runs[0].report.render(), run.report.render());
  EXPECT_EQ(violated_rules(offline.runs[0].report),
            violated_rules(run.report));
}

}  // namespace
}  // namespace smrp::proto
