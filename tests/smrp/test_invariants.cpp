// Invariant-checker tests: steady-state sessions audit clean, the
// quiescent audit catches real protocol failures (legacy give-up leaving
// a reachable member dark), and the hardened repair path fixes exactly
// those failures (routed-join fallback, partition stranding + rejoin).
#include "smrp/invariants.hpp"

#include <gtest/gtest.h>

#include "sim/fault_injection.hpp"
#include "smrp/harness.hpp"
#include "testing_topologies.hpp"

namespace smrp::proto {
namespace {

using testing::Fig1Topology;

/// Unit-weight ring of `n` nodes: the one topology where a local detour
/// can be arbitrarily far away (the long way around the ring).
net::Graph ring_graph(int n) {
  net::Graph g(n);
  for (net::NodeId i = 0; i < n; ++i) {
    g.add_link(i, (i + 1) % n, 1.0);
  }
  return g;
}

TEST(InvariantChecker, SteadyStateAuditsClean) {
  const Fig1Topology fig;
  SimulationHarness h(fig.graph, fig.S);
  h.start();
  h.session().join(fig.C);
  h.session().join(fig.D);
  h.simulator().run_until(3'000.0);

  const InvariantChecker checker(h.session(), h.network());
  const InvariantReport live = checker.audit();
  EXPECT_TRUE(live.ok()) << live.to_string();
  const InvariantReport quiescent = checker.audit_quiescent(0.0);
  EXPECT_TRUE(quiescent.ok()) << quiescent.to_string();
}

TEST(InvariantChecker, LiveAuditToleratesChurn) {
  const Fig1Topology fig;
  SimulationHarness h(fig.graph, fig.S);
  h.start();
  h.session().join(fig.C);
  h.session().join(fig.D);
  h.fail_link_at(fig.AD, 2'000.0);
  const InvariantChecker checker(h.session(), h.network());
  // Audit every 50ms straight through failure detection and repair.
  for (sim::Time t = 100.0; t <= 5'000.0; t += 50.0) {
    h.simulator().run_until(t);
    const InvariantReport report = checker.audit();
    EXPECT_TRUE(report.ok()) << "t=" << t << ": " << report.to_string();
  }
}

// The A/B pair at the heart of the hardening: a ring where the only
// surviving detour is farther than max_repair_ttl hops. The legacy
// protocol floods rings forever and never restores service — which the
// quiescent audit reports — while the hardened protocol falls back to a
// routed join and audits clean.
class RingGiveUp : public ::testing::Test {
 protected:
  static constexpr net::NodeId kSource = 0;
  static constexpr net::NodeId kMember = 5;
  static constexpr sim::Time kCutAt = 2'000.0;

  InvariantReport run(bool hardened) {
    const net::Graph g = ring_graph(10);
    SessionConfig config;
    config.hardened = hardened;
    config.max_repair_ttl = 4;  // the way around the ring is 5 hops
    SimulationHarness h(g, kSource, config);
    h.start();
    h.session().join(kMember);
    // Cut the member's upstream link 4–5: the nearest serving node the
    // other way around (the source itself) is beyond the ring budget.
    const auto link = g.link_between(4, 5);
    h.fail_link_at(*link, kCutAt);

    const sim::Time bound = service_restoration_bound(
        h.session().config(), routing::RoutingConfig{}, g);
    h.simulator().run_until(kCutAt + bound);
    const InvariantChecker checker(h.session(), h.network());
    return checker.audit_quiescent(kCutAt);
  }
};

TEST_F(RingGiveUp, LegacyProtocolLeavesReachableMemberDark) {
  const InvariantReport report = run(/*hardened=*/false);
  EXPECT_FALSE(report.ok())
      << "legacy give-up should strand the member beyond the ring budget";
}

TEST_F(RingGiveUp, HardenedProtocolFallsBackToRoutedJoin) {
  const InvariantReport report = run(/*hardened=*/true);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(InvariantChecker, PartitionStrandsThenHealsMember) {
  const Fig1Topology fig;
  SessionConfig config;
  config.max_repair_ttl = 2;  // exhaust the ring search quickly
  SimulationHarness h(fig.graph, fig.S, config);
  h.start();
  h.session().join(fig.C);
  h.session().join(fig.D);

  // Isolate D completely from 2000ms to 5000ms.
  const std::vector<net::LinkId> cut =
      sim::boundary_links(fig.graph, {Fig1Topology::D});
  for (const net::LinkId l : cut) {
    h.fail_link_at(l, 2'000.0);
    h.restore_link_at(l, 5'000.0);
  }

  h.simulator().run_until(4'500.0);
  EXPECT_TRUE(h.session().is_stranded(fig.D))
      << "D should give up flooding once the IGP confirms the partition";
  // Stranded is not a violation while D really is cut off.
  const InvariantChecker checker(h.session(), h.network());
  EXPECT_TRUE(checker.audit().ok()) << checker.audit().to_string();

  const sim::Time bound = service_restoration_bound(
      h.session().config(), routing::RoutingConfig{}, fig.graph);
  h.simulator().run_until(5'000.0 + bound);
  EXPECT_FALSE(h.session().is_stranded(fig.D));
  const InvariantReport report = checker.audit_quiescent(5'000.0);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(ServiceRestorationBound, IsFiniteAndScalesWithTheConfig) {
  const Fig1Topology fig;
  const SessionConfig config;
  const routing::RoutingConfig routing;
  const sim::Time bound =
      service_restoration_bound(config, routing, fig.graph);
  EXPECT_GT(bound, 0.0);
  EXPECT_LT(bound, 60'000.0);  // stays practical for test budgets

  SessionConfig deeper = config;
  deeper.max_repair_ttl = config.max_repair_ttl * 4;
  EXPECT_GT(service_restoration_bound(deeper, routing, fig.graph), bound);

  const net::Graph bigger(4 * fig.graph.node_count());
  EXPECT_GT(service_restoration_bound(config, routing, bigger), bound);
}

}  // namespace
}  // namespace smrp::proto
