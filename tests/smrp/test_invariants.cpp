// Invariant-checker tests: steady-state sessions audit clean, the
// quiescent audit catches real protocol failures (legacy give-up leaving
// a reachable member dark), and the hardened repair path fixes exactly
// those failures (routed-join fallback, partition stranding + rejoin).
#include "smrp/invariants.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "sim/fault_injection.hpp"
#include "smrp/harness.hpp"
#include "testing_topologies.hpp"

namespace smrp::proto {
namespace {

using testing::Fig1Topology;

/// Unit-weight ring of `n` nodes: the one topology where a local detour
/// can be arbitrarily far away (the long way around the ring).
net::Graph ring_graph(int n) {
  net::Graph g(n);
  for (net::NodeId i = 0; i < n; ++i) {
    g.add_link(i, (i + 1) % n, 1.0);
  }
  return g;
}

TEST(InvariantChecker, SteadyStateAuditsClean) {
  const Fig1Topology fig;
  SimulationHarness h(fig.graph, fig.S);
  h.start();
  h.session().join(fig.C);
  h.session().join(fig.D);
  h.simulator().run_until(3'000.0);

  const InvariantChecker checker(h.session(), h.network());
  const InvariantReport live = checker.audit();
  EXPECT_TRUE(live.ok()) << live.to_string();
  const InvariantReport quiescent = checker.audit_quiescent(0.0);
  EXPECT_TRUE(quiescent.ok()) << quiescent.to_string();
}

TEST(InvariantChecker, LiveAuditToleratesChurn) {
  const Fig1Topology fig;
  SimulationHarness h(fig.graph, fig.S);
  h.start();
  h.session().join(fig.C);
  h.session().join(fig.D);
  h.fail_link_at(fig.AD, 2'000.0);
  const InvariantChecker checker(h.session(), h.network());
  // Audit every 50ms straight through failure detection and repair.
  for (sim::Time t = 100.0; t <= 5'000.0; t += 50.0) {
    h.simulator().run_until(t);
    const InvariantReport report = checker.audit();
    EXPECT_TRUE(report.ok()) << "t=" << t << ": " << report.to_string();
  }
}

// The A/B pair at the heart of the hardening: a ring where the only
// surviving detour is farther than max_repair_ttl hops. The legacy
// protocol floods rings forever and never restores service — which the
// quiescent audit reports — while the hardened protocol falls back to a
// routed join and audits clean.
class RingGiveUp : public ::testing::Test {
 protected:
  static constexpr net::NodeId kSource = 0;
  static constexpr net::NodeId kMember = 5;
  static constexpr sim::Time kCutAt = 2'000.0;

  InvariantReport run(bool hardened) {
    const net::Graph g = ring_graph(10);
    SessionConfig config;
    config.hardened = hardened;
    config.max_repair_ttl = 4;  // the way around the ring is 5 hops
    SimulationHarness h(g, kSource, config);
    h.start();
    h.session().join(kMember);
    // Cut the member's upstream link 4–5: the nearest serving node the
    // other way around (the source itself) is beyond the ring budget.
    const auto link = g.link_between(4, 5);
    h.fail_link_at(*link, kCutAt);

    const sim::Time bound = service_restoration_bound(
        h.session().config(), routing::RoutingConfig{}, g);
    h.simulator().run_until(kCutAt + bound);
    const InvariantChecker checker(h.session(), h.network());
    return checker.audit_quiescent(kCutAt);
  }
};

TEST_F(RingGiveUp, LegacyProtocolLeavesReachableMemberDark) {
  const InvariantReport report = run(/*hardened=*/false);
  EXPECT_FALSE(report.ok())
      << "legacy give-up should strand the member beyond the ring budget";
}

TEST_F(RingGiveUp, HardenedProtocolFallsBackToRoutedJoin) {
  const InvariantReport report = run(/*hardened=*/true);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(InvariantChecker, PartitionStrandsThenHealsMember) {
  const Fig1Topology fig;
  SessionConfig config;
  config.max_repair_ttl = 2;  // exhaust the ring search quickly
  SimulationHarness h(fig.graph, fig.S, config);
  h.start();
  h.session().join(fig.C);
  h.session().join(fig.D);

  // Isolate D completely from 2000ms to 5000ms.
  const std::vector<net::LinkId> cut =
      sim::boundary_links(fig.graph, {Fig1Topology::D});
  for (const net::LinkId l : cut) {
    h.fail_link_at(l, 2'000.0);
    h.restore_link_at(l, 5'000.0);
  }

  h.simulator().run_until(4'500.0);
  EXPECT_TRUE(h.session().is_stranded(fig.D))
      << "D should give up flooding once the IGP confirms the partition";
  // Stranded is not a violation while D really is cut off.
  const InvariantChecker checker(h.session(), h.network());
  EXPECT_TRUE(checker.audit().ok()) << checker.audit().to_string();

  const sim::Time bound = service_restoration_bound(
      h.session().config(), routing::RoutingConfig{}, fig.graph);
  h.simulator().run_until(5'000.0 + bound);
  EXPECT_FALSE(h.session().is_stranded(fig.D));
  const InvariantReport report = checker.audit_quiescent(5'000.0);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

// Negative suite: the checker must actually detect every invariant it
// claims to check. Each test runs a healthy session to steady state,
// corrupts exactly one aspect of the raw protocol state through the
// test-only backdoor, and asserts the matching violation message appears.
// Without these, a checker that silently stopped checking something would
// keep passing every positive test above.
class InvariantNegative : public ::testing::Test {
 protected:
  InvariantNegative()
      : harness_(fig_.graph, fig_.S) {
    harness_.start();
    harness_.session().join(Fig1Topology::C);
    harness_.session().join(Fig1Topology::D);
    harness_.simulator().run_until(3'000.0);
  }

  /// The steady state really is clean before each test corrupts it.
  void assert_clean_baseline() {
    const InvariantChecker checker(harness_.session(), harness_.network());
    ASSERT_TRUE(checker.audit_quiescent(0.0).ok());
  }

  [[nodiscard]] InvariantReport audit() {
    const InvariantChecker checker(harness_.session(), harness_.network());
    return checker.audit();
  }
  [[nodiscard]] InvariantReport audit_quiescent() {
    const InvariantChecker checker(harness_.session(), harness_.network());
    return checker.audit_quiescent(0.0);
  }

  static void expect_violation(const InvariantReport& report,
                               const std::string& needle) {
    EXPECT_FALSE(report.ok()) << "expected a violation matching: " << needle;
    bool found = false;
    for (const std::string& v : report.violations) {
      if (v.find(needle) != std::string::npos) found = true;
    }
    EXPECT_TRUE(found) << "no violation matching \"" << needle
                       << "\" in:\n" << report.to_string();
  }

  Fig1Topology fig_;
  SimulationHarness harness_;
};

TEST_F(InvariantNegative, SourceClaimsAParent) {
  assert_clean_baseline();
  harness_.session().agent_state_for_tests(Fig1Topology::S).parent =
      Fig1Topology::A;
  expect_violation(audit(), "source claims a parent");
}

TEST_F(InvariantNegative, ParentWithoutOnTree) {
  assert_clean_baseline();
  auto& state = harness_.session().agent_state_for_tests(Fig1Topology::B);
  state.parent = Fig1Topology::S;
  state.on_tree = false;
  expect_violation(audit(), "has a parent but is not on-tree");
}

TEST_F(InvariantNegative, ParentIsNotAGraphNeighbor) {
  assert_clean_baseline();
  // D's only neighbors are A, B and C; the source is not adjacent.
  auto& state = harness_.session().agent_state_for_tests(Fig1Topology::D);
  state.parent = Fig1Topology::S;
  expect_violation(audit(), "is not a graph neighbor");
}

TEST_F(InvariantNegative, ChildIsNotAGraphNeighbor) {
  assert_clean_baseline();
  auto& state = harness_.session().agent_state_for_tests(Fig1Topology::S);
  state.children[Fig1Topology::D] = {};  // S–D are not adjacent
  expect_violation(audit(), "child " + std::to_string(Fig1Topology::D) +
                                " is not a graph neighbor");
}

TEST_F(InvariantNegative, NonceStateOverCap) {
  assert_clean_baseline();
  auto& state = harness_.session().agent_state_for_tests(Fig1Topology::B);
  for (std::uint64_t nonce = 0;
       nonce <= DistributedSession::kSeenNonceCap; ++nonce) {
    state.seen_nonces.insert(nonce);
    state.nonce_order.push_back(nonce);
  }
  expect_violation(audit(), "repair nonces (cap");
}

TEST_F(InvariantNegative, NegativeShr) {
  assert_clean_baseline();
  auto& state = harness_.session().agent_state_for_tests(Fig1Topology::D);
  state.shr_upstream = -7;
  expect_violation(audit(), "believes a negative SHR");
}

TEST_F(InvariantNegative, ParentCycle) {
  assert_clean_baseline();
  // A 2-cycle over a real edge (A–D); tolerated live, hard at quiescence.
  auto& a = harness_.session().agent_state_for_tests(Fig1Topology::A);
  auto& d = harness_.session().agent_state_for_tests(Fig1Topology::D);
  a.on_tree = true;
  a.parent = Fig1Topology::D;
  d.on_tree = true;
  d.parent = Fig1Topology::A;
  EXPECT_TRUE(audit().ok()) << "live audit must tolerate transient cycles";
  expect_violation(audit_quiescent(), "parent cycle through");
}

TEST_F(InvariantNegative, ReachableMemberOffTree) {
  assert_clean_baseline();
  auto& state = harness_.session().agent_state_for_tests(Fig1Topology::C);
  state.on_tree = false;
  state.parent = net::kNoNode;
  expect_violation(audit_quiescent(), "is a reachable member but off-tree");
}

TEST_F(InvariantNegative, StrandedDespiteALivePath) {
  assert_clean_baseline();
  harness_.session().agent_state_for_tests(Fig1Topology::D).stranded = true;
  expect_violation(audit_quiescent(), "is stranded despite a live path");
}

TEST_F(InvariantNegative, ChainOrphans) {
  assert_clean_baseline();
  // D's upstream loses ITS parent: the member's chain no longer reaches
  // the source.
  const net::NodeId upstream =
      harness_.session().parent_of(Fig1Topology::D);
  ASSERT_NE(upstream, net::kNoNode);
  ASSERT_NE(upstream, Fig1Topology::S);
  harness_.session().agent_state_for_tests(upstream).parent = net::kNoNode;
  expect_violation(audit_quiescent(), "chain orphans at");
}

TEST_F(InvariantNegative, ChainCrossesADeadHop) {
  assert_clean_baseline();
  const net::NodeId upstream =
      harness_.session().parent_of(Fig1Topology::D);
  const auto link = fig_.graph.link_between(Fig1Topology::D, upstream);
  ASSERT_TRUE(link.has_value());
  harness_.network().set_link_up(*link, false);
  expect_violation(audit_quiescent(), "chain crosses a dead hop at");
}

TEST_F(InvariantNegative, ParentDoesNotListItsChild) {
  assert_clean_baseline();
  const net::NodeId upstream =
      harness_.session().parent_of(Fig1Topology::D);
  harness_.session().agent_state_for_tests(upstream).children.erase(
      Fig1Topology::D);
  expect_violation(audit_quiescent(), "does not list its child");
}

TEST_F(InvariantNegative, RetainsDeadChild) {
  assert_clean_baseline();
  const net::NodeId upstream =
      harness_.session().parent_of(Fig1Topology::D);
  harness_.network().set_node_up(Fig1Topology::D, false);
  // The corrupt claim: the upstream keeps forwarding to a dead node.
  ASSERT_NE(harness_.session()
                .agent_state_for_tests(upstream)
                .children.count(Fig1Topology::D),
            0u);
  expect_violation(audit_quiescent(), "retains dead child");
}

TEST_F(InvariantNegative, ChildClaimsADifferentParent) {
  assert_clean_baseline();
  const net::NodeId upstream =
      harness_.session().parent_of(Fig1Topology::D);
  // D defects to another neighbor while the old upstream still lists it.
  for (const net::NodeId other : {Fig1Topology::A, Fig1Topology::B,
                                  Fig1Topology::C}) {
    if (other == upstream) continue;
    harness_.session().agent_state_for_tests(Fig1Topology::D).parent = other;
    break;
  }
  expect_violation(audit_quiescent(),
                   "which claims a different parent");
}

TEST_F(InvariantNegative, NoDataSinceQuiescence) {
  assert_clean_baseline();
  harness_.session().agent_state_for_tests(Fig1Topology::C).last_data = -1.0;
  const InvariantChecker checker(harness_.session(), harness_.network());
  expect_violation(checker.audit_quiescent(1'000.0),
                   "has received no data since quiescence");
}

TEST_F(InvariantNegative, ShrDisagreesWithTheTree) {
  assert_clean_baseline();
  auto& state = harness_.session().agent_state_for_tests(Fig1Topology::D);
  state.shr_upstream += 5;
  expect_violation(audit_quiescent(), "but the tree computes");
}

TEST_F(InvariantNegative, NoConsistentTreeSnapshot) {
  assert_clean_baseline();
  // A member whose parent chain dead-ends off the source makes the
  // distributed state impossible to express as an analytic tree.
  auto& state = harness_.session().agent_state_for_tests(Fig1Topology::C);
  state.parent = net::kNoNode;
  expect_violation(audit_quiescent(),
                   "no consistent tree snapshot at quiescence");
}

TEST(ServiceRestorationBound, IsFiniteAndScalesWithTheConfig) {
  const Fig1Topology fig;
  const SessionConfig config;
  const routing::RoutingConfig routing;
  const sim::Time bound =
      service_restoration_bound(config, routing, fig.graph);
  EXPECT_GT(bound, 0.0);
  EXPECT_LT(bound, 60'000.0);  // stays practical for test budgets

  SessionConfig deeper = config;
  deeper.max_repair_ttl = config.max_repair_ttl * 4;
  EXPECT_GT(service_restoration_bound(deeper, routing, fig.graph), bound);

  const net::Graph bigger(4 * fig.graph.node_count());
  EXPECT_GT(service_restoration_bound(config, routing, bigger), bound);
}

}  // namespace
}  // namespace smrp::proto
