// Whole-session repair (repair_session) and multi-failure sequences.
#include <gtest/gtest.h>

#include <memory>

#include "eval/failure_sequence.hpp"
#include "net/shortest_path.hpp"
#include "net/waxman.hpp"
#include "smrp/recovery.hpp"
#include "smrp/tree_builder.hpp"
#include "testing_topologies.hpp"

namespace smrp::proto {
namespace {

using testing::Fig1Topology;

mcast::MulticastTree fig1_tree(const Fig1Topology& fig) {
  mcast::MulticastTree tree(fig.graph, fig.S);
  tree.graft(fig.C, {fig.C, fig.A, fig.S});
  tree.graft(fig.D, {fig.D, fig.A});
  return tree;
}

TEST(RepairSession, RepairsEveryVictimOfAWorstCaseCut) {
  const Fig1Topology fig;
  mcast::MulticastTree tree = fig1_tree(fig);
  const SessionRepairReport report = repair_session(
      fig.graph, tree, Failure::of_link(fig.SA), DetourPolicy::kLocal);
  EXPECT_EQ(report.disconnected_members, 2);
  EXPECT_EQ(report.repaired_members, 2);
  EXPECT_EQ(report.unrecoverable_members, 0);
  tree.validate();
  EXPECT_TRUE(tree.is_member(fig.C));
  EXPECT_TRUE(tree.is_member(fig.D));
  for (const net::LinkId l : tree.tree_links()) EXPECT_NE(l, fig.SA);
}

TEST(RepairSession, NearestFirstOrderAndNeighborAssist) {
  const Fig1Topology fig;
  mcast::MulticastTree tree = fig1_tree(fig);
  const SessionRepairReport report = repair_session(
      fig.graph, tree, Failure::of_link(fig.SA), DetourPolicy::kLocal);
  // Round 1: with L_SA dead, C's best detour costs 5 (C–D–B–S) while D's
  // costs 3 (D–B–S), so D repairs first. Round 2: D's restored branch
  // assists C, whose repair is now just C–D at cost 2 — cheaper than any
  // option it had alone. This is the neighbor-assisted recovery of §1.
  ASSERT_EQ(report.outcomes.size(), 2u);
  EXPECT_EQ(report.outcomes[0].member, fig.D);
  EXPECT_DOUBLE_EQ(report.outcomes[0].recovery_distance, 3.0);
  EXPECT_EQ(report.outcomes[1].member, fig.C);
  EXPECT_DOUBLE_EQ(report.outcomes[1].recovery_distance, 2.0);
  EXPECT_EQ(report.outcomes[1].reattach_node, fig.D);
}

TEST(RepairSession, GlobalPolicyAlsoHeals) {
  const Fig1Topology fig;
  mcast::MulticastTree tree = fig1_tree(fig);
  const SessionRepairReport report = repair_session(
      fig.graph, tree, Failure::of_link(fig.SA), DetourPolicy::kGlobal);
  EXPECT_EQ(report.repaired_members, 2);
  tree.validate();
}

TEST(RepairSession, NodeFailureRepair) {
  const Fig1Topology fig;
  mcast::MulticastTree tree = fig1_tree(fig);
  const SessionRepairReport report = repair_session(
      fig.graph, tree, Failure::of_node(fig.A), DetourPolicy::kLocal);
  EXPECT_EQ(report.disconnected_members, 2);
  EXPECT_EQ(report.repaired_members, 2);
  tree.validate();
  // Nothing may route through the dead router A.
  EXPECT_FALSE(tree.on_tree(fig.A));
  for (const net::NodeId m : {fig.C, fig.D}) {
    for (const net::NodeId hop : tree.path_to_source(m)) {
      EXPECT_NE(hop, fig.A);
    }
  }
}

TEST(RepairSession, CountsUnrecoverableMembers) {
  // Chain 0–1–2: cutting 1–2 strands member 2 permanently.
  net::Graph g(3);
  g.add_link(0, 1, 1.0);
  const net::LinkId last = g.add_link(1, 2, 1.0);
  mcast::MulticastTree tree(g, 0);
  tree.graft(2, {2, 1, 0});
  const SessionRepairReport report =
      repair_session(g, tree, Failure::of_link(last));
  EXPECT_EQ(report.disconnected_members, 1);
  EXPECT_EQ(report.repaired_members, 0);
  EXPECT_EQ(report.unrecoverable_members, 1);
  tree.validate();
  EXPECT_EQ(tree.member_count(), 0);
}

TEST(RepairSession, RespectsPreviouslyFailedLinks) {
  const Fig1Topology fig;
  mcast::MulticastTree tree = fig1_tree(fig);
  // With C–D already dead, D's local detour after losing A–D cannot use
  // it and must fall back to D–B–S.
  net::ExclusionSet dead(fig.graph);
  dead.ban_link(fig.CD);
  const SessionRepairReport report = repair_session(
      fig.graph, tree, Failure::of_link(fig.AD), DetourPolicy::kLocal, &dead);
  ASSERT_EQ(report.repaired_members, 1);
  EXPECT_EQ(report.outcomes[0].restoration_path,
            (std::vector<net::NodeId>{fig.D, fig.B, fig.S}));
}

TEST(SeverNode, DropsSubtreeAndReportsRecoverableMembers) {
  const Fig1Topology fig;
  mcast::MulticastTree tree = fig1_tree(fig);
  const auto lost = tree.sever_node(fig.A);
  tree.validate();
  EXPECT_EQ(lost, (std::vector<net::NodeId>{fig.C, fig.D}));
  EXPECT_FALSE(tree.on_tree(fig.A));
  EXPECT_EQ(tree.member_count(), 0);
}

TEST(SeverNode, DeadMemberIsNotListedForRecovery) {
  const Fig1Topology fig;
  mcast::MulticastTree tree = fig1_tree(fig);
  const auto lost = tree.sever_node(fig.C);  // a member dies itself
  tree.validate();
  EXPECT_TRUE(lost.empty());
  EXPECT_EQ(tree.member_count(), 1);  // D keeps its service
  EXPECT_TRUE(tree.is_member(fig.D));
}

TEST(SeverNode, OffTreeNodeIsNoOp) {
  const Fig1Topology fig;
  mcast::MulticastTree tree = fig1_tree(fig);
  EXPECT_TRUE(tree.sever_node(fig.B).empty());
  EXPECT_EQ(tree.member_count(), 2);
}

class RepairSessionProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(RepairSessionProperty, TreeValidAndFailureFreeAfterEveryRepair) {
  net::Rng rng(GetParam());
  net::WaxmanParams wax;
  wax.node_count = 60;
  auto g = std::make_unique<net::Graph>(net::waxman_graph(wax, rng));
  SmrpTreeBuilder builder(*g, 0);
  for (int i = 0; i < 15; ++i) {
    builder.join(static_cast<net::NodeId>(1 + rng.below(59)));
  }
  mcast::MulticastTree tree = builder.tree();
  const int members_before = tree.member_count();

  // Fail the busiest source-incident link.
  net::LinkId victim = net::kNoLink;
  int worst = -1;
  for (const net::NodeId child : tree.children(0)) {
    if (tree.subtree_members(child) > worst) {
      worst = tree.subtree_members(child);
      victim = tree.parent_link(child);
    }
  }
  ASSERT_NE(victim, net::kNoLink);
  const SessionRepairReport report =
      repair_session(*g, tree, Failure::of_link(victim));
  tree.validate();
  EXPECT_EQ(report.disconnected_members,
            report.repaired_members + report.unrecoverable_members);
  EXPECT_EQ(tree.member_count(),
            members_before - report.unrecoverable_members);
  for (const net::LinkId l : tree.tree_links()) EXPECT_NE(l, victim);
}

// repair_session caches one absorbing search per lost member and updates
// each cached candidate only against the nodes the latest repair grafted.
// This replays the pre-optimization algorithm — a full recompute of every
// pending member's detour before every round — and checks the optimized
// pass picked the exact same nearest member, reattach point, and distance
// each round.
TEST_P(RepairSessionProperty, CachedRepairMatchesPerRoundFullRecompute) {
  net::Rng rng(GetParam() + 1000);
  net::WaxmanParams wax;
  wax.node_count = 40;
  auto g = std::make_unique<net::Graph>(net::waxman_graph(wax, rng));
  SmrpTreeBuilder builder(*g, 0);
  for (int i = 0; i < 12; ++i) {
    builder.join(static_cast<net::NodeId>(1 + rng.below(39)));
  }
  const mcast::MulticastTree original = builder.tree();

  net::LinkId victim = net::kNoLink;
  int worst = -1;
  for (const net::NodeId child : original.children(0)) {
    if (original.subtree_members(child) > worst) {
      worst = original.subtree_members(child);
      victim = original.parent_link(child);
    }
  }
  ASSERT_NE(victim, net::kNoLink);

  mcast::MulticastTree fast = original;
  const SessionRepairReport report = repair_session(
      *g, fast, Failure::of_link(victim), DetourPolicy::kLocal);

  mcast::MulticastTree ref = original;
  const std::vector<net::NodeId> lost = ref.sever(victim);
  std::vector<char> pending(static_cast<std::size_t>(g->node_count()), 0);
  for (const net::NodeId m : lost) pending[static_cast<std::size_t>(m)] = 1;
  net::ExclusionSet excluded(*g);
  excluded.ban_link(victim);

  const auto rejoin_in_place = [&] {
    for (const net::NodeId m : lost) {
      if (pending[static_cast<std::size_t>(m)] && ref.on_tree(m)) {
        ref.graft(m, {m});
        pending[static_cast<std::size_t>(m)] = 0;
      }
    }
  };
  const auto best_for = [&](net::NodeId member, double& dist,
                            net::NodeId& reattach) {
    std::vector<char> on_tree(static_cast<std::size_t>(g->node_count()), 0);
    for (const net::NodeId n : ref.on_tree_nodes()) {
      on_tree[static_cast<std::size_t>(n)] = 1;
    }
    const net::ShortestPathTree search =
        net::dijkstra_absorbing(*g, member, on_tree, excluded);
    reattach = net::kNoNode;
    for (const net::NodeId n : ref.on_tree_nodes()) {
      if (!search.reachable(n)) continue;
      if (reattach == net::kNoNode ||
          search.dist[static_cast<std::size_t>(n)] <
              search.dist[static_cast<std::size_t>(reattach)]) {
        reattach = n;
      }
    }
    if (reattach == net::kNoNode) return false;
    dist = search.dist[static_cast<std::size_t>(reattach)];
    return true;
  };

  for (const RecoveryOutcome& out : report.outcomes) {
    rejoin_in_place();
    net::NodeId expect_member = net::kNoNode;
    net::NodeId expect_at = net::kNoNode;
    double expect_dist = 0.0;
    for (const net::NodeId m : lost) {
      if (!pending[static_cast<std::size_t>(m)]) continue;
      double d = 0.0;
      net::NodeId at = net::kNoNode;
      if (!best_for(m, d, at)) continue;
      if (expect_member == net::kNoNode || d < expect_dist) {
        expect_member = m;
        expect_dist = d;
        expect_at = at;
      }
    }
    ASSERT_NE(expect_member, net::kNoNode);
    EXPECT_EQ(out.member, expect_member);
    EXPECT_EQ(out.reattach_node, expect_at);
    EXPECT_DOUBLE_EQ(out.recovery_distance, expect_dist);
    apply_recovery(ref, out);
    pending[static_cast<std::size_t>(out.member)] = 0;
  }
  rejoin_in_place();
  EXPECT_EQ(fast.member_count(), ref.member_count());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RepairSessionProperty,
                         ::testing::Values(10, 20, 30, 40));

}  // namespace
}  // namespace smrp::proto

namespace smrp::eval {
namespace {

TEST(FailureSequence, RunsAndStaysConsistent) {
  FailureSequenceParams params;
  params.scenario.node_count = 60;
  params.scenario.group_size = 12;
  params.failures = 4;
  net::Rng rng(99);
  const FailureSequenceResult r = run_failure_sequence(params, rng);
  EXPECT_LE(static_cast<int>(r.steps.size()), 4);
  EXPECT_GE(r.final_members_smrp, 0);
  double total = 0.0;
  for (const FailureStep& s : r.steps) {
    EXPECT_GE(s.rd_smrp, 0.0);
    EXPECT_GE(s.lost_smrp, 0);
    total += s.rd_smrp;
  }
  EXPECT_DOUBLE_EQ(total, r.total_rd_smrp);
}

TEST(FailureSequence, DeterministicUnderSeed) {
  FailureSequenceParams params;
  params.scenario.node_count = 50;
  params.scenario.group_size = 10;
  params.failures = 3;
  net::Rng a(7);
  net::Rng b(7);
  const FailureSequenceResult ra = run_failure_sequence(params, a);
  const FailureSequenceResult rb = run_failure_sequence(params, b);
  ASSERT_EQ(ra.steps.size(), rb.steps.size());
  for (std::size_t i = 0; i < ra.steps.size(); ++i) {
    EXPECT_EQ(ra.steps[i].failed_link, rb.steps[i].failed_link);
    EXPECT_DOUBLE_EQ(ra.steps[i].rd_smrp, rb.steps[i].rd_smrp);
  }
}

}  // namespace
}  // namespace smrp::eval
