#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <limits>
#include <vector>

namespace smrp::sim {
namespace {

TEST(Simulator, StartsAtZeroAndIdle) {
  Simulator s;
  EXPECT_DOUBLE_EQ(s.now(), 0.0);
  EXPECT_TRUE(s.idle());
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule(30.0, [&] { order.push_back(3); });
  s.schedule(10.0, [&] { order.push_back(1); });
  s.schedule(20.0, [&] { order.push_back(2); });
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(s.now(), 30.0);
}

TEST(Simulator, SimultaneousEventsFifo) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule(5.0, [&order, i] { order.push_back(i); });
  }
  s.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator s;
  int fired = 0;
  s.schedule(10.0, [&] { ++fired; });
  s.schedule(20.0, [&] { ++fired; });
  s.schedule(30.0, [&] { ++fired; });
  EXPECT_EQ(s.run_until(20.0), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(s.now(), 20.0);
  EXPECT_EQ(s.pending(), 1u);
  s.run_until(100.0);
  EXPECT_EQ(fired, 3);
  EXPECT_DOUBLE_EQ(s.now(), 100.0);  // clock advances to the horizon
}

TEST(Simulator, HandlersCanScheduleMoreEvents) {
  Simulator s;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) s.schedule(1.0, chain);
  };
  s.schedule(1.0, chain);
  s.run_all();
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(s.now(), 5.0);
}

TEST(Simulator, CancelPreventsFiring) {
  Simulator s;
  bool fired = false;
  const EventId id = s.schedule(10.0, [&] { fired = true; });
  s.cancel(id);
  s.run_all();
  EXPECT_FALSE(fired);
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Simulator, CancelIsIdempotentAndIgnoresUnknownIds) {
  Simulator s;
  const EventId id = s.schedule(1.0, [] {});
  s.cancel(id);
  s.cancel(id);
  s.cancel(424242);
  EXPECT_EQ(s.pending(), 0u);
  s.run_all();
}

TEST(Simulator, CancelAfterFiringIsNoOp) {
  Simulator s;
  const EventId id = s.schedule(1.0, [] {});
  s.run_all();
  s.cancel(id);
  EXPECT_EQ(s.pending(), 0u);
  // A new event must still work.
  bool fired = false;
  s.schedule(1.0, [&] { fired = true; });
  s.run_all();
  EXPECT_TRUE(fired);
}

TEST(Simulator, RejectsPastAndNegative) {
  Simulator s;
  s.schedule(5.0, [] {});
  s.run_all();
  EXPECT_THROW(s.schedule(-1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(s.schedule_at(1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(s.schedule(1.0, {}), std::invalid_argument);
}

TEST(Simulator, RejectsNonFiniteTimes) {
  // Regression: NaN delays passed the old `delay < 0` check and corrupted
  // the queue ordering silently (NaN compares false against everything);
  // infinities park events the clock can never reach. Both must throw.
  Simulator s;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(s.schedule(nan, [] {}), std::invalid_argument);
  EXPECT_THROW(s.schedule(inf, [] {}), std::invalid_argument);
  EXPECT_THROW(s.schedule_at(nan, [] {}), std::invalid_argument);
  EXPECT_THROW(s.schedule_at(inf, [] {}), std::invalid_argument);
  EXPECT_THROW(s.schedule_at(-inf, [] {}), std::invalid_argument);
  EXPECT_EQ(s.pending(), 0u);
  // The simulator is untouched by the rejected calls.
  bool fired = false;
  s.schedule(1.0, [&] { fired = true; });
  s.run_all();
  EXPECT_TRUE(fired);
}

TEST(Simulator, StaleIdAfterSlotReuseIsNoOp) {
  // EventIds are generation-tagged slot handles: once an event fires, its
  // slot is recycled and a later event may occupy it. Cancelling with the
  // old id must not touch the new tenant.
  Simulator s;
  const EventId old_id = s.schedule(1.0, [] {});
  s.run_all();
  bool fired = false;
  const EventId new_id = s.schedule(1.0, [&] { fired = true; });
  EXPECT_NE(old_id, new_id);  // same slot, different generation
  s.cancel(old_id);           // stale: must be a no-op
  EXPECT_EQ(s.pending(), 1u);
  s.run_all();
  EXPECT_TRUE(fired);
}

TEST(Simulator, PoolRecyclesSlotsInsteadOfGrowing) {
  // The slab only grows to the peak number of simultaneously pending
  // events; a long run of sequential timers keeps reusing one slot.
  Simulator s;
  for (int i = 0; i < 1000; ++i) {
    s.schedule(1.0, [] {});
    s.run_all();
  }
  const auto stats = s.pool_stats();
  EXPECT_LE(stats.slots, 4u);
  EXPECT_EQ(stats.heap_actions, 0u) << "protocol-sized captures must stay SBO";
}

TEST(Simulator, OversizedCapturesFallBackToHeapButStillFire) {
  Simulator s;
  std::array<char, 200> big{};
  big[0] = 42;
  char seen = 0;
  s.schedule(1.0, [big, &seen] { seen = big[0]; });
  s.run_all();
  EXPECT_EQ(seen, 42);
  EXPECT_EQ(s.pool_stats().heap_actions, 1u);
}

TEST(Simulator, WheelRolloverPreservesOrderAcrossHorizon) {
  // Events far beyond the near-wheel horizon (~1 s) start in the overflow
  // heap and must cascade back into the wheel in exact (time, insertion)
  // order, including ties dead on bucket boundaries.
  Simulator s;
  std::vector<int> order;
  s.schedule(5000.0, [&] { order.push_back(4); });   // far heap
  s.schedule(1024.0, [&] { order.push_back(2); });   // horizon boundary
  s.schedule(1024.0, [&] { order.push_back(3); });   // FIFO tie at boundary
  s.schedule(0.25, [&] { order.push_back(0); });     // first bucket
  s.schedule(1023.75, [&] { order.push_back(1); });  // last near bucket
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_DOUBLE_EQ(s.now(), 5000.0);
}

TEST(Simulator, CancelDuringFireOfSimultaneousEvent) {
  // Cancel-during-fire reentrancy: an event firing at time T cancels a
  // sibling scheduled at the same T (already sitting in the ready run).
  Simulator s;
  bool sibling_fired = false;
  EventId sibling = kNoEvent;
  s.schedule(5.0, [&] { s.cancel(sibling); });
  sibling = s.schedule(5.0, [&] { sibling_fired = true; });
  s.run_all();
  EXPECT_FALSE(sibling_fired);
  EXPECT_EQ(s.processed(), 1u);
  EXPECT_TRUE(s.idle());
}

TEST(Simulator, ActionMaySchedulePastEventsAtNow) {
  // A handler may schedule at exactly now() (delay 0) and the event fires
  // within the same drain, after every already-pending same-time event.
  Simulator s;
  std::vector<int> order;
  s.schedule(5.0, [&] {
    order.push_back(0);
    s.schedule(0.0, [&] { order.push_back(2); });
  });
  s.schedule(5.0, [&] { order.push_back(1); });
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Simulator, RunAllHonoursEventCap) {
  Simulator s;
  std::function<void()> forever = [&] { s.schedule(1.0, forever); };
  s.schedule(1.0, forever);
  const std::size_t fired = s.run_all(1000);
  EXPECT_EQ(fired, 1000u);
}

TEST(Simulator, CancelledBacklogStaysBounded) {
  // Regression: cancelled far-future events used to linger in the queue
  // (and a side set) until the clock reached them. A 10k-event
  // schedule/cancel churn — the pattern of retry timers under chaos —
  // must keep the internal backlog within a small factor of the live
  // event count.
  Simulator s;
  for (int i = 0; i < 10'000; ++i) {
    const EventId id = s.schedule(1e9 + i, [] {});  // far future
    s.cancel(id);
    EXPECT_LE(s.queue_depth(), 2 * s.pending() + 64) << "iteration " << i;
  }
  EXPECT_EQ(s.pending(), 0u);
  EXPECT_LE(s.queue_depth(), 64u);
  // The simulator still works normally afterwards.
  bool fired = false;
  s.schedule(1.0, [&] { fired = true; });
  s.run_until(2.0);
  EXPECT_TRUE(fired);
}

TEST(Simulator, CancelChurnWithLiveEventsStaysBounded) {
  Simulator s;
  int fired = 0;
  for (int round = 0; round < 100; ++round) {
    std::vector<EventId> ids;
    for (int i = 0; i < 100; ++i) {
      ids.push_back(s.schedule(1e6 + i, [] {}));
    }
    for (const EventId id : ids) s.cancel(id);
    s.schedule(1.0, [&] { ++fired; });
    s.run_until(s.now() + 2.0);
    EXPECT_LE(s.queue_depth(), 2 * s.pending() + 64);
  }
  EXPECT_EQ(fired, 100);
}

TEST(Simulator, ProcessedCountsFiredEvents) {
  Simulator s;
  for (int i = 0; i < 7; ++i) s.schedule(i, [] {});
  s.run_all();
  EXPECT_EQ(s.processed(), 7u);
}

}  // namespace
}  // namespace smrp::sim
