#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace smrp::sim {
namespace {

TEST(Simulator, StartsAtZeroAndIdle) {
  Simulator s;
  EXPECT_DOUBLE_EQ(s.now(), 0.0);
  EXPECT_TRUE(s.idle());
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule(30.0, [&] { order.push_back(3); });
  s.schedule(10.0, [&] { order.push_back(1); });
  s.schedule(20.0, [&] { order.push_back(2); });
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(s.now(), 30.0);
}

TEST(Simulator, SimultaneousEventsFifo) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule(5.0, [&order, i] { order.push_back(i); });
  }
  s.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator s;
  int fired = 0;
  s.schedule(10.0, [&] { ++fired; });
  s.schedule(20.0, [&] { ++fired; });
  s.schedule(30.0, [&] { ++fired; });
  EXPECT_EQ(s.run_until(20.0), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(s.now(), 20.0);
  EXPECT_EQ(s.pending(), 1u);
  s.run_until(100.0);
  EXPECT_EQ(fired, 3);
  EXPECT_DOUBLE_EQ(s.now(), 100.0);  // clock advances to the horizon
}

TEST(Simulator, HandlersCanScheduleMoreEvents) {
  Simulator s;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) s.schedule(1.0, chain);
  };
  s.schedule(1.0, chain);
  s.run_all();
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(s.now(), 5.0);
}

TEST(Simulator, CancelPreventsFiring) {
  Simulator s;
  bool fired = false;
  const EventId id = s.schedule(10.0, [&] { fired = true; });
  s.cancel(id);
  s.run_all();
  EXPECT_FALSE(fired);
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Simulator, CancelIsIdempotentAndIgnoresUnknownIds) {
  Simulator s;
  const EventId id = s.schedule(1.0, [] {});
  s.cancel(id);
  s.cancel(id);
  s.cancel(424242);
  EXPECT_EQ(s.pending(), 0u);
  s.run_all();
}

TEST(Simulator, CancelAfterFiringIsNoOp) {
  Simulator s;
  const EventId id = s.schedule(1.0, [] {});
  s.run_all();
  s.cancel(id);
  EXPECT_EQ(s.pending(), 0u);
  // A new event must still work.
  bool fired = false;
  s.schedule(1.0, [&] { fired = true; });
  s.run_all();
  EXPECT_TRUE(fired);
}

TEST(Simulator, RejectsPastAndNegative) {
  Simulator s;
  s.schedule(5.0, [] {});
  s.run_all();
  EXPECT_THROW(s.schedule(-1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(s.schedule_at(1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(s.schedule(1.0, {}), std::invalid_argument);
}

TEST(Simulator, RunAllHonoursEventCap) {
  Simulator s;
  std::function<void()> forever = [&] { s.schedule(1.0, forever); };
  s.schedule(1.0, forever);
  const std::size_t fired = s.run_all(1000);
  EXPECT_EQ(fired, 1000u);
}

TEST(Simulator, CancelledBacklogStaysBounded) {
  // Regression: cancelled far-future events used to linger in the queue
  // (and a side set) until the clock reached them. A 10k-event
  // schedule/cancel churn — the pattern of retry timers under chaos —
  // must keep the internal backlog within a small factor of the live
  // event count.
  Simulator s;
  for (int i = 0; i < 10'000; ++i) {
    const EventId id = s.schedule(1e9 + i, [] {});  // far future
    s.cancel(id);
    EXPECT_LE(s.queue_depth(), 2 * s.pending() + 64) << "iteration " << i;
  }
  EXPECT_EQ(s.pending(), 0u);
  EXPECT_LE(s.queue_depth(), 64u);
  // The simulator still works normally afterwards.
  bool fired = false;
  s.schedule(1.0, [&] { fired = true; });
  s.run_until(2.0);
  EXPECT_TRUE(fired);
}

TEST(Simulator, CancelChurnWithLiveEventsStaysBounded) {
  Simulator s;
  int fired = 0;
  for (int round = 0; round < 100; ++round) {
    std::vector<EventId> ids;
    for (int i = 0; i < 100; ++i) {
      ids.push_back(s.schedule(1e6 + i, [] {}));
    }
    for (const EventId id : ids) s.cancel(id);
    s.schedule(1.0, [&] { ++fired; });
    s.run_until(s.now() + 2.0);
    EXPECT_LE(s.queue_depth(), 2 * s.pending() + 64);
  }
  EXPECT_EQ(fired, 100);
}

TEST(Simulator, ProcessedCountsFiredEvents) {
  Simulator s;
  for (int i = 0; i < 7; ++i) s.schedule(i, [] {});
  s.run_all();
  EXPECT_EQ(s.processed(), 7u);
}

}  // namespace
}  // namespace smrp::sim
