#include "sim/fault_injection.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "net/rng.hpp"
#include "testing_topologies.hpp"

namespace smrp::sim {
namespace {

using testing::Fig1Topology;

TEST(FaultPlanTest, BuilderExpandsCompoundFaults) {
  FaultPlan plan;
  plan.cut_link(100.0, 2)
      .flap_link(200.0, 3, 50.0)
      .crash_restart(300.0, 1, 400.0)
      .loss_burst(500.0, 250.0, 0.2);
  EXPECT_EQ(plan.fault_count(), 4);
  // cut=1 action, flap=2, crash_restart=2, burst=2.
  EXPECT_EQ(plan.actions().size(), 7u);
  EXPECT_DOUBLE_EQ(plan.quiescent_time(), 750.0);

  const auto& acts = plan.actions();
  EXPECT_EQ(acts[0].kind, FaultAction::Kind::kLinkDown);
  EXPECT_EQ(acts[1].kind, FaultAction::Kind::kLinkDown);
  EXPECT_EQ(acts[2].kind, FaultAction::Kind::kLinkUp);
  EXPECT_DOUBLE_EQ(acts[2].at, 250.0);
  EXPECT_EQ(acts[3].kind, FaultAction::Kind::kNodeDown);
  EXPECT_EQ(acts[4].kind, FaultAction::Kind::kNodeUp);
  EXPECT_DOUBLE_EQ(acts[4].at, 700.0);
  EXPECT_DOUBLE_EQ(acts[5].loss_probability, 0.2);
  EXPECT_DOUBLE_EQ(acts[6].loss_probability, 0.0);
}

TEST(FaultPlanTest, RejectsBadArguments) {
  FaultPlan plan;
  EXPECT_THROW(plan.cut_link(-1.0, 0), std::invalid_argument);
  EXPECT_THROW(plan.flap_link(0.0, 0, -5.0), std::invalid_argument);
  EXPECT_THROW(plan.loss_burst(0.0, 10.0, 1.0), std::invalid_argument);
  EXPECT_THROW(plan.partition(0.0, {}, 10.0), std::invalid_argument);
}

TEST(FaultPlanTest, SrlgCutFailsTheGroupAtomicallyAndHeals) {
  // A shared-risk link group is ONE fault: every link in the group goes
  // down at the same instant (one conduit cut takes all its fibers) and,
  // with a heal time, comes back together.
  FaultPlan plan;
  plan.srlg_cut(2'000.0, {1, 4, 7}, 300.0);
  EXPECT_EQ(plan.fault_count(), 1);
  EXPECT_EQ(plan.actions().size(), 6u);
  for (const FaultAction& a : plan.actions()) {
    if (a.kind == FaultAction::Kind::kLinkDown) {
      EXPECT_DOUBLE_EQ(a.at, 2'000.0);
    } else {
      ASSERT_EQ(a.kind, FaultAction::Kind::kLinkUp);
      EXPECT_DOUBLE_EQ(a.at, 2'300.0);
    }
  }
  EXPECT_DOUBLE_EQ(plan.quiescent_time(), 2'300.0);
}

TEST(FaultPlanTest, SrlgCutWithoutHealIsPermanent) {
  FaultPlan plan;
  plan.srlg_cut(500.0, {0, 2});
  EXPECT_EQ(plan.fault_count(), 1);
  EXPECT_EQ(plan.actions().size(), 2u);
  for (const FaultAction& a : plan.actions()) {
    EXPECT_EQ(a.kind, FaultAction::Kind::kLinkDown);
  }
}

TEST(FaultPlanTest, SrlgCutRejectsEmptyGroup) {
  FaultPlan plan;
  EXPECT_THROW(plan.srlg_cut(0.0, {}), std::invalid_argument);
}

TEST(ChaosControllerTest, SrlgCutDropsAndRestoresTheWholeGroup) {
  const Fig1Topology topo;
  Simulator simulator;
  SimNetwork network(simulator, topo.graph);

  FaultPlan plan;
  plan.srlg_cut(100.0, {topo.AD, topo.BD, topo.CD}, 200.0);
  ChaosController chaos(simulator, network, plan);
  chaos.arm();

  simulator.run_until(150.0);
  EXPECT_FALSE(network.link_up(topo.AD));
  EXPECT_FALSE(network.link_up(topo.BD));
  EXPECT_FALSE(network.link_up(topo.CD));

  simulator.run_until(350.0);
  EXPECT_TRUE(network.link_up(topo.AD));
  EXPECT_TRUE(network.link_up(topo.BD));
  EXPECT_TRUE(network.link_up(topo.CD));
  EXPECT_TRUE(chaos.quiescent());
}

TEST(FaultPlanTest, PartitionHealsEveryCutLink) {
  FaultPlan plan;
  plan.partition(1'000.0, {0, 1, 2}, 500.0);
  EXPECT_EQ(plan.fault_count(), 1);
  EXPECT_EQ(plan.actions().size(), 6u);
  int downs = 0;
  int ups = 0;
  for (const FaultAction& a : plan.actions()) {
    if (a.kind == FaultAction::Kind::kLinkDown) {
      EXPECT_DOUBLE_EQ(a.at, 1'000.0);
      ++downs;
    } else if (a.kind == FaultAction::Kind::kLinkUp) {
      EXPECT_DOUBLE_EQ(a.at, 1'500.0);
      ++ups;
    }
  }
  EXPECT_EQ(downs, 3);
  EXPECT_EQ(ups, 3);
}

TEST(FaultPlanTest, BoundaryLinksIsolateTheSide) {
  const Fig1Topology topo;
  // {D} is cut off by AD, BD, CD.
  const std::vector<net::LinkId> cut =
      boundary_links(topo.graph, {Fig1Topology::D});
  std::vector<net::LinkId> expected{topo.AD, topo.BD, topo.CD};
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(cut, expected);
  // {S, A} boundary: SB, AC, AD.
  const std::vector<net::LinkId> cut2 =
      boundary_links(topo.graph, {Fig1Topology::S, Fig1Topology::A});
  std::vector<net::LinkId> expected2{topo.SB, topo.AC, topo.AD};
  std::sort(expected2.begin(), expected2.end());
  EXPECT_EQ(cut2, expected2);
}

TEST(FaultPlanTest, RandomizedIsDeterministicInTheSeed) {
  const Fig1Topology topo;
  FaultPlan::RandomParams params;
  params.link_flaps = 10;
  params.link_cuts = 1;
  params.node_restarts = 2;
  params.protected_nodes = {Fig1Topology::S};

  net::Rng rng_a(42);
  net::Rng rng_b(42);
  const FaultPlan a = FaultPlan::randomized(topo.graph, params, rng_a);
  const FaultPlan b = FaultPlan::randomized(topo.graph, params, rng_b);
  EXPECT_EQ(a.describe(), b.describe());
  EXPECT_EQ(a.actions().size(), b.actions().size());

  net::Rng rng_c(43);
  const FaultPlan c = FaultPlan::randomized(topo.graph, params, rng_c);
  EXPECT_NE(a.describe(), c.describe());
}

TEST(FaultPlanTest, RandomizedNeverCrashesProtectedNodes) {
  const Fig1Topology topo;
  FaultPlan::RandomParams params;
  params.link_flaps = 0;
  params.node_restarts = 8;
  params.loss_bursts = 0;
  params.protected_nodes = {Fig1Topology::S, Fig1Topology::A};
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    net::Rng rng(seed);
    const FaultPlan plan = FaultPlan::randomized(topo.graph, params, rng);
    for (const FaultAction& a : plan.actions()) {
      if (a.kind == FaultAction::Kind::kNodeDown ||
          a.kind == FaultAction::Kind::kNodeUp) {
        EXPECT_NE(a.node, Fig1Topology::S);
        EXPECT_NE(a.node, Fig1Topology::A);
      }
    }
  }
}

TEST(FaultPlanTest, RandomizedCutsPreserveConnectivity) {
  const Fig1Topology topo;
  FaultPlan::RandomParams params;
  params.link_flaps = 0;
  params.node_restarts = 0;
  params.loss_bursts = 0;
  params.link_cuts = 2;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    net::Rng rng(seed);
    const FaultPlan plan = FaultPlan::randomized(topo.graph, params, rng);
    // Re-check: removing every permanently cut link keeps the graph whole.
    std::vector<net::LinkId> cut;
    for (const FaultAction& a : plan.actions()) {
      if (a.kind == FaultAction::Kind::kLinkDown) cut.push_back(a.link);
    }
    // All cuts are permanent in this parameterisation.
    for (const net::LinkId l : cut) {
      EXPECT_TRUE(topo.graph.connected_without(l));
    }
  }
}

TEST(ChaosControllerTest, AppliesActionsAtTheirScheduledTimes) {
  const Fig1Topology topo;
  Simulator simulator;
  SimNetwork network(simulator, topo.graph);

  FaultPlan plan;
  plan.flap_link(100.0, topo.AD, 150.0)
      .crash_restart(120.0, Fig1Topology::B, 80.0)
      .loss_burst(300.0, 100.0, 0.25);
  ChaosController chaos(simulator, network, plan);
  chaos.arm();

  simulator.run_until(110.0);
  EXPECT_FALSE(network.link_up(topo.AD));
  EXPECT_TRUE(network.node_up(Fig1Topology::B));

  simulator.run_until(150.0);
  EXPECT_FALSE(network.node_up(Fig1Topology::B));

  simulator.run_until(210.0);
  EXPECT_TRUE(network.node_up(Fig1Topology::B));  // restarted at 200
  EXPECT_FALSE(network.link_up(topo.AD));         // heals at 250

  simulator.run_until(260.0);
  EXPECT_TRUE(network.link_up(topo.AD));

  simulator.run_until(350.0);
  EXPECT_DOUBLE_EQ(network.loss_probability(), 0.25);
  EXPECT_FALSE(chaos.quiescent());

  simulator.run_until(500.0);
  EXPECT_DOUBLE_EQ(network.loss_probability(), 0.0);
  EXPECT_TRUE(chaos.quiescent());
  EXPECT_EQ(chaos.actions_applied(), 6);
  EXPECT_EQ(chaos.log().size(), 6u);
}

TEST(ChaosControllerTest, ValidatesPlanAgainstTopology) {
  const Fig1Topology topo;
  Simulator simulator;
  SimNetwork network(simulator, topo.graph);

  FaultPlan bad_link;
  bad_link.cut_link(10.0, 99);
  EXPECT_THROW(ChaosController(simulator, network, bad_link),
               std::out_of_range);

  FaultPlan bad_node;
  bad_node.crash_node(10.0, 99);
  EXPECT_THROW(ChaosController(simulator, network, bad_node),
               std::out_of_range);
}

TEST(ChaosControllerTest, RefusesDoubleArmAndPastActions) {
  const Fig1Topology topo;
  Simulator simulator;
  SimNetwork network(simulator, topo.graph);

  FaultPlan plan;
  plan.cut_link(50.0, topo.SA);
  ChaosController chaos(simulator, network, plan);
  chaos.arm();
  EXPECT_THROW(chaos.arm(), std::logic_error);

  simulator.run_until(100.0);
  ChaosController late(simulator, network, plan);
  EXPECT_THROW(late.arm(), std::logic_error);
}

}  // namespace
}  // namespace smrp::sim
