#include "sim/network.hpp"

#include <gtest/gtest.h>

#include "obs/telemetry.hpp"
#include "testing_topologies.hpp"

namespace smrp::sim {
namespace {

struct Received {
  Time at;
  NodeId from;
  Message message;
};

struct Fixture {
  net::Graph graph = testing::grid3x3();
  Simulator simulator;
  SimNetwork network{simulator, graph};
  std::vector<std::vector<Received>> inbox;

  Fixture() {
    inbox.resize(static_cast<std::size_t>(graph.node_count()));
    for (NodeId n = 0; n < graph.node_count(); ++n) {
      network.set_handler(n, [this, n](NodeId from, const Message& m) {
        inbox[static_cast<std::size_t>(n)].push_back(
            Received{simulator.now(), from, m});
      });
    }
  }
};

TEST(SimNetwork, DeliversToAdjacentNode) {
  Fixture f;
  ASSERT_TRUE(f.network.send(0, 1, DataMsg{7}));
  f.simulator.run_all();
  ASSERT_EQ(f.inbox[1].size(), 1u);
  EXPECT_EQ(f.inbox[1][0].from, 0);
  EXPECT_EQ(std::get<DataMsg>(f.inbox[1][0].message).seq, 7u);
}

TEST(SimNetwork, DeliveryLatencyMatchesConfig) {
  Fixture f;
  const net::LinkId link = f.graph.link_between(0, 1).value();
  f.network.send(0, 1, HelloMsg{});
  f.simulator.run_all();
  ASSERT_EQ(f.inbox[1].size(), 1u);
  EXPECT_DOUBLE_EQ(f.inbox[1][0].at, f.network.link_latency(link));
}

TEST(SimNetwork, RefusesNonAdjacentSend) {
  Fixture f;
  EXPECT_FALSE(f.network.send(0, 8, HelloMsg{}));  // opposite corners
  f.simulator.run_all();
  EXPECT_TRUE(f.inbox[8].empty());
  EXPECT_EQ(f.network.messages_dropped(), 1u);
}

TEST(SimNetwork, DownLinkLosesInFlightMessage) {
  Fixture f;
  const net::LinkId link = f.graph.link_between(0, 1).value();
  f.network.send(0, 1, HelloMsg{});
  // Cut the link before the message lands.
  f.simulator.schedule(f.network.link_latency(link) / 2,
                       [&] { f.network.set_link_up(link, false); });
  f.simulator.run_all();
  EXPECT_TRUE(f.inbox[1].empty());
  EXPECT_EQ(f.network.messages_delivered(), 0u);
  EXPECT_EQ(f.network.messages_dropped(), 1u);
}

TEST(SimNetwork, DownLinkStillDownAtSendTimeDropsAtDelivery) {
  Fixture f;
  const net::LinkId link = f.graph.link_between(0, 1).value();
  f.network.set_link_up(link, false);
  EXPECT_TRUE(f.network.send(0, 1, HelloMsg{}));  // sender can't know yet
  f.simulator.run_all();
  EXPECT_TRUE(f.inbox[1].empty());
}

TEST(SimNetwork, DownReceiverLosesMessage) {
  Fixture f;
  f.network.set_node_up(1, false);
  f.network.send(0, 1, HelloMsg{});
  f.simulator.run_all();
  EXPECT_TRUE(f.inbox[1].empty());
}

TEST(SimNetwork, DownSenderCannotSend) {
  Fixture f;
  f.network.set_node_up(0, false);
  EXPECT_FALSE(f.network.send(0, 1, HelloMsg{}));
}

TEST(SimNetwork, RestoredLinkCarriesTrafficAgain) {
  Fixture f;
  const net::LinkId link = f.graph.link_between(0, 1).value();
  f.network.set_link_up(link, false);
  f.network.set_link_up(link, true);
  f.network.send(0, 1, HelloMsg{});
  f.simulator.run_all();
  EXPECT_EQ(f.inbox[1].size(), 1u);
}

TEST(SimNetwork, BroadcastReachesAllNeighbors) {
  Fixture f;
  EXPECT_EQ(f.network.broadcast(4, HelloMsg{}), 4);  // grid centre
  f.simulator.run_all();
  for (const NodeId n : {1, 3, 5, 7}) {
    EXPECT_EQ(f.inbox[static_cast<std::size_t>(n)].size(), 1u);
  }
  EXPECT_TRUE(f.inbox[0].empty());
}

TEST(SimNetwork, DownSenderBroadcastCountsOneBatchDrop) {
  // Regression: a down sender's broadcast used to run the whole neighbor
  // loop and count one drop per neighbor, skewing the drop counters under
  // node failure. It now short-circuits to a single batch drop.
  Fixture f;
  obs::Telemetry telemetry;
  f.network.set_telemetry(&telemetry);
  f.network.set_node_up(4, false);
  EXPECT_EQ(f.network.broadcast(4, HelloMsg{}), 0);
  f.simulator.run_all();
  EXPECT_EQ(f.network.messages_sent(), 0u);
  EXPECT_EQ(f.network.messages_dropped(), 1u);
  EXPECT_EQ(telemetry.metrics.counter("smrp.sim.drop.HELLO").value(), 1u);
  EXPECT_EQ(telemetry.metrics.counter("smrp.sim.tx.HELLO").value(), 0u);
  for (const NodeId n : {1, 3, 5, 7}) {
    EXPECT_TRUE(f.inbox[static_cast<std::size_t>(n)].empty());
  }
}

TEST(SimNetwork, BroadcastSharesOneEnvelopeAcrossNeighbors) {
  Fixture f;
  EXPECT_EQ(f.network.broadcast(4, DataMsg{9}), 4);
  // One pooled envelope carries the whole fan-out.
  EXPECT_EQ(f.network.pool_stats().envelopes, 1u);
  EXPECT_EQ(f.network.pool_stats().free, 0u);
  f.simulator.run_all();
  for (const NodeId n : {1, 3, 5, 7}) {
    ASSERT_EQ(f.inbox[static_cast<std::size_t>(n)].size(), 1u);
    EXPECT_EQ(std::get<DataMsg>(
                  f.inbox[static_cast<std::size_t>(n)][0].message).seq,
              9u);
  }
  // All references released: the slot is back on the freelist.
  EXPECT_EQ(f.network.pool_stats().free, 1u);
}

TEST(SimNetwork, EnvelopePoolRecyclesAcrossSends) {
  Fixture f;
  for (int i = 0; i < 100; ++i) {
    f.network.send(0, 1, DataMsg{static_cast<std::uint64_t>(i)});
    f.simulator.run_all();
  }
  // Sequential sends reuse one slot; the slab never grows past the peak
  // number of simultaneously in-flight messages.
  EXPECT_EQ(f.network.pool_stats().envelopes, 1u);
  ASSERT_EQ(f.inbox[1].size(), 100u);
  EXPECT_EQ(std::get<DataMsg>(f.inbox[1].back().message).seq, 99u);
}

TEST(SimNetwork, InFlightEnvelopeSurvivesReentrantSends) {
  // A handler that sends while holding the delivered payload by const
  // reference must not have it invalidated by pool growth.
  Fixture f;
  std::vector<std::uint64_t> forwarded;
  f.network.set_handler(1, [&](NodeId, const Message& m) {
    const auto& data = std::get<DataMsg>(m);
    for (int burst = 0; burst < 8; ++burst) {
      f.network.send(1, 2, DataMsg{data.seq + 100});  // grows the pool
    }
    forwarded.push_back(std::get<DataMsg>(m).seq);  // reread after growth
  });
  f.network.send(0, 1, DataMsg{7});
  f.simulator.run_all();
  ASSERT_EQ(forwarded, (std::vector<std::uint64_t>{7}));
  ASSERT_EQ(f.inbox[2].size(), 8u);
  EXPECT_EQ(std::get<DataMsg>(f.inbox[2][0].message).seq, 107u);
}

TEST(SimNetwork, StatsAreConsistent) {
  Fixture f;
  f.network.send(0, 1, HelloMsg{});
  f.network.send(1, 2, HelloMsg{});
  f.network.send(0, 8, HelloMsg{});  // refused
  f.simulator.run_all();
  EXPECT_EQ(f.network.messages_sent(), 2u);
  EXPECT_EQ(f.network.messages_delivered(), 2u);
  EXPECT_EQ(f.network.messages_dropped(), 1u);
}

}  // namespace
}  // namespace smrp::sim
