// Differential suite for the sharded conservative DES (DESIGN.md §15).
//
// Three equivalence contracts, each checked bit-for-bit:
//   1. shards=1 facade ≡ the sequential wheel (pure delegation) — the
//      same randomized schedule/cancel/run scripts the wheel-vs-reference
//      suite uses, across many seeds plus a ≥1e6-event soak.
//   2. sequential Simulator+SimNetwork ≡ ShardedSimNetwork at K>1 on a
//      lossless transit-stub workload: identical per-node delivery logs,
//      identical counters, identical final clock — windows and cross-shard
//      queues are pure plumbing.
//   3. fixed K is reproducible: repeated runs (and any worker-thread
//      count) give byte-identical logs, counters, and telemetry.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <tuple>
#include <vector>

#include "net/graph.hpp"
#include "net/rng.hpp"
#include "net/transit_stub.hpp"
#include "obs/telemetry.hpp"
#include "sim/differential_script.hpp"
#include "sim/network.hpp"
#include "sim/sharded.hpp"
#include "sim/simulator.hpp"

namespace smrp::sim {
namespace {

using difftest::Driver;
using difftest::Script;
using difftest::make_script;

// ---------------------------------------------------------------------
// Contract 1: shards=1 facade is the sequential wheel, byte for byte.
// ---------------------------------------------------------------------

void expect_facade_matches_wheel(const Script& script) {
  Driver<Simulator> wheel(script);
  Driver<ShardedSimulator> facade(script, 1);
  wheel.run();
  facade.run();

  ASSERT_EQ(wheel.log.size(), facade.log.size());
  for (std::size_t i = 0; i < wheel.log.size(); ++i) {
    ASSERT_EQ(wheel.log[i].first, facade.log[i].first)
        << "firing order diverged at position " << i;
    ASSERT_EQ(wheel.log[i].second, facade.log[i].second)
        << "firing time diverged at position " << i;
  }
  EXPECT_EQ(wheel.sim.processed(), facade.sim.processed());
  EXPECT_EQ(wheel.sim.pending(), facade.sim.pending());
  EXPECT_EQ(wheel.sim.now(), facade.sim.now());
  // Pure delegation: no windows, no stalls.
  EXPECT_EQ(facade.sim.windows(), 0u);
  EXPECT_EQ(facade.sim.stalls(), 0u);
}

TEST(ShardedFacade, OneShardMatchesWheelAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    expect_facade_matches_wheel(make_script(seed, 4'000));
  }
}

TEST(ShardedFacade, OneShardMillionEventSoakMatchesWheel) {
  const Script script = make_script(0xC0FFEEULL, 1'000'000);
  ASSERT_GE(script.event_count, 1'000'000u);
  expect_facade_matches_wheel(script);
}

TEST(ShardedFacade, OneShardTelemetryIsByteIdentical) {
  const Script script = make_script(7, 20'000);
  obs::Telemetry wheel_t;
  obs::Telemetry facade_t;
  wheel_t.enable_sampling(5.0);
  facade_t.enable_sampling(5.0);

  Driver<Simulator> wheel(script);
  Driver<ShardedSimulator> facade(script, 1);
  wheel.sim.set_telemetry(&wheel_t);
  facade.sim.set_telemetry(&facade_t);
  wheel.run();
  facade.run();
  facade.sim.merge_telemetry();  // no-op with one shard

  ASSERT_EQ(wheel_t.metrics.counters().size(),
            facade_t.metrics.counters().size());
  for (const auto& [name, counter] : wheel_t.metrics.counters()) {
    SCOPED_TRACE(name);
    EXPECT_EQ(counter.value(), facade_t.metrics.counters().at(name).value());
  }
  ASSERT_EQ(wheel_t.samples().size(), facade_t.samples().size());
  for (std::size_t i = 0; i < wheel_t.samples().size(); ++i) {
    EXPECT_EQ(wheel_t.samples()[i].t, facade_t.samples()[i].t);
    EXPECT_EQ(wheel_t.samples()[i].name, facade_t.samples()[i].name);
    EXPECT_EQ(wheel_t.samples()[i].value, facade_t.samples()[i].value);
  }
}

// ---------------------------------------------------------------------
// Contract 2/3: network-level workload harness. A deterministic relay
// flood: each injected message carries (ttl, id, hop) packed into the
// DataMsg seq; every receipt logs (when, from, seq) and, while ttl > 0,
// forwards to a neighbor picked by a fixed hash of (id, hop, node) — so
// the full delivery schedule is a pure function of topology and seeds.
// ---------------------------------------------------------------------

struct Delivery {
  double when;
  NodeId at;
  NodeId from;
  std::uint64_t seq;
};

bool operator==(const Delivery& a, const Delivery& b) {
  return a.when == b.when && a.at == b.at && a.from == b.from && a.seq == b.seq;
}

constexpr std::uint64_t pack_seq(std::uint64_t ttl, std::uint64_t id,
                                 std::uint64_t hop) {
  return (ttl << 48) | (id << 16) | hop;
}

/// Adapters give the harness one shape over both data planes.
struct SequentialFabric {
  Simulator sim;
  SimNetwork net;
  SequentialFabric(const net::Graph& g, NetworkConfig cfg) : net(sim, g, cfg) {}
  double now(NodeId) { return sim.now(); }
  void run_all() { sim.run_all(50'000'000); }
};

struct ShardedFabric {
  ShardedSimNetwork net;
  ShardedFabric(const net::Graph& g, ShardPlan plan, NetworkConfig cfg)
      : net(g, std::move(plan), cfg) {}
  double now(NodeId n) { return net.simulator_of(n).now(); }
  void run_all() { net.sim().run_all(50'000'000); }
};

template <typename Fabric>
struct FloodHarness {
  explicit FloodHarness(const net::Graph& g, Fabric& f) : graph(g), fabric(f) {
    for (NodeId n = 0; n < graph.node_count(); ++n) {
      f.net.set_handler(n, [this, n](NodeId from, const Message& m) {
        on_receive(n, from, m);
      });
    }
  }

  void on_receive(NodeId n, NodeId from, const Message& m) {
    const auto* data = std::get_if<DataMsg>(&m);
    if (data == nullptr) return;
    log.push_back(Delivery{fabric.now(n), n, from, data->seq});
    const std::uint64_t ttl = data->seq >> 48;
    if (ttl == 0) return;
    const std::uint64_t id = (data->seq >> 16) & 0xffffffffULL;
    const std::uint64_t hop = data->seq & 0xffffULL;
    const auto nbrs = graph.neighbors(n);
    const auto pick = (id * 31 + hop * 7 + static_cast<std::uint64_t>(n)) %
                      nbrs.size();
    fabric.net.send(n, nbrs[pick].neighbor,
                    DataMsg{pack_seq(ttl - 1, id, hop + 1)});
  }

  /// Inject `count` relay chains from sources spread over the graph.
  void inject(std::uint64_t count, std::uint64_t ttl) {
    for (std::uint64_t i = 0; i < count; ++i) {
      const NodeId src = static_cast<NodeId>(
          (i * 17) % static_cast<std::uint64_t>(graph.node_count()));
      const auto nbrs = graph.neighbors(src);
      fabric.net.send(src, nbrs[i % nbrs.size()].neighbor,
                      DataMsg{pack_seq(ttl, i, 0)});
    }
  }

  /// Delivery order within one timestamp differs between a single global
  /// wheel and per-shard wheels; the *set* of deliveries is the contract.
  void sort_log() {
    std::sort(log.begin(), log.end(), [](const Delivery& a, const Delivery& b) {
      return std::tie(a.when, a.at, a.from, a.seq) <
             std::tie(b.when, b.at, b.from, b.seq);
    });
  }

  const net::Graph& graph;
  Fabric& fabric;
  std::vector<Delivery> log;
};

net::TransitStubTopology make_topology(std::uint64_t seed) {
  net::TransitStubParams params;
  params.transit_nodes = 4;
  params.stubs_per_transit = 2;
  params.stub_size = 6;
  net::Rng rng(seed);
  return net::generate_transit_stub(params, rng);
}

ShardPlan plan_for(const net::TransitStubTopology& topo, int shards) {
  return build_shard_plan(topo.domain_of_node, shards);
}

void expect_same_deliveries(const std::vector<Delivery>& a,
                            const std::vector<Delivery>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i] == b[i])
        << "delivery " << i << " diverged: (" << a[i].when << ", " << a[i].at
        << ", " << a[i].from << ", " << a[i].seq << ") vs (" << b[i].when
        << ", " << b[i].at << ", " << b[i].from << ", " << b[i].seq << ")";
  }
}

TEST(ShardedNetworkDifferential, LosslessFloodMatchesSequentialWheel) {
  const auto topo = make_topology(0xABCDULL);
  const NetworkConfig cfg;  // loss 0: per-shard RNG streams never drawn

  SequentialFabric seq(topo.graph, cfg);
  FloodHarness<SequentialFabric> seq_h(topo.graph, seq);
  seq_h.inject(64, 40);
  seq.run_all();

  ShardedFabric shd(topo.graph, plan_for(topo, 4), cfg);
  ASSERT_EQ(shd.net.shard_count(), 4);
  ASSERT_GT(shd.net.lookahead(), 0.0);
  ASSERT_LT(shd.net.lookahead(), std::numeric_limits<double>::infinity());
  FloodHarness<ShardedFabric> shd_h(topo.graph, shd);
  shd_h.inject(64, 40);
  shd.run_all();

  seq_h.sort_log();
  shd_h.sort_log();
  expect_same_deliveries(seq_h.log, shd_h.log);

  EXPECT_EQ(seq.net.messages_sent(), shd.net.messages_sent());
  EXPECT_EQ(seq.net.messages_delivered(), shd.net.messages_delivered());
  EXPECT_EQ(seq.net.messages_dropped(), 0u);
  EXPECT_EQ(shd.net.messages_dropped(), 0u);
  // The transit-stub chains genuinely crossed shards, and the final
  // facade clock is the global last event time — same as the one wheel.
  EXPECT_GT(shd.net.cross_messages(), 0u);
  EXPECT_GT(shd.net.sim().windows(), 0u);
  EXPECT_EQ(seq.sim.now(), shd.net.sim().now());
  // Conservation on both planes.
  EXPECT_EQ(shd.net.messages_sent(),
            shd.net.messages_delivered() + shd.net.messages_dropped());
}

TEST(ShardedNetworkDifferential, GlobalFaultInjectionMatchesSequential) {
  const auto topo = make_topology(0x5EEDULL);
  const NetworkConfig cfg;
  // Cut one stub's access link mid-flood at a time no event can collide
  // with (latencies are sums of Euclidean weights).
  const NodeId gw = topo.gateway_of_domain[1];
  const NodeId stub_entry = topo.nodes_of_domain[1].front();
  const LinkId cut = [&] {
    for (const auto& adj : topo.graph.neighbors(gw)) {
      if (topo.domain_of_node[static_cast<std::size_t>(adj.neighbor)] == 1) {
        return adj.link;
      }
    }
    return net::kNoLink;
  }();
  ASSERT_NE(cut, net::kNoLink);
  (void)stub_entry;
  const double cut_time = 7.777;

  SequentialFabric seq(topo.graph, cfg);
  FloodHarness<SequentialFabric> seq_h(topo.graph, seq);
  seq_h.inject(48, 60);
  seq.sim.schedule_at(cut_time, [&] { seq.net.set_link_up(cut, false); });
  seq.run_all();

  ShardedFabric shd(topo.graph, plan_for(topo, 3), cfg);
  FloodHarness<ShardedFabric> shd_h(topo.graph, shd);
  shd_h.inject(48, 60);
  shd.net.sim().schedule_global(cut_time,
                                [&] { shd.net.set_link_up(cut, false); });
  shd.run_all();

  EXPECT_FALSE(seq.net.link_up(cut));
  EXPECT_FALSE(shd.net.link_up(cut));
  // The cut dropped in-flight traffic in both worlds, identically.
  EXPECT_GT(seq.net.messages_dropped(), 0u);
  EXPECT_EQ(seq.net.messages_sent(), shd.net.messages_sent());
  EXPECT_EQ(seq.net.messages_delivered(), shd.net.messages_delivered());
  EXPECT_EQ(seq.net.messages_dropped(), shd.net.messages_dropped());
  seq_h.sort_log();
  shd_h.sort_log();
  expect_same_deliveries(seq_h.log, shd_h.log);
}

TEST(ShardedNetworkDifferential, FixedShardCountIsReproducible) {
  const auto topo = make_topology(0xF00DULL);
  NetworkConfig cfg;
  cfg.loss_probability = 0.05;  // per-shard loss streams in play

  auto run_once = [&](int threads) {
    ShardedFabric shd(topo.graph, plan_for(topo, 3), cfg);
    shd.net.sim().set_threads(threads);
    FloodHarness<ShardedFabric> h(topo.graph, shd);
    h.inject(64, 50);
    shd.run_all();
    h.sort_log();
    return std::tuple<std::vector<Delivery>, std::uint64_t, std::uint64_t,
                      std::uint64_t, std::uint64_t>(
        h.log, shd.net.messages_delivered(), shd.net.messages_dropped(),
        shd.net.cross_messages(), shd.net.sim().windows());
  };

  const auto first = run_once(1);
  const auto again = run_once(1);
  const auto threaded = run_once(3);
  EXPECT_GT(std::get<2>(first), 0u) << "loss stream never fired";
  expect_same_deliveries(std::get<0>(first), std::get<0>(again));
  expect_same_deliveries(std::get<0>(first), std::get<0>(threaded));
  EXPECT_EQ(std::get<1>(first), std::get<1>(again));
  EXPECT_EQ(std::get<1>(first), std::get<1>(threaded));
  EXPECT_EQ(std::get<2>(first), std::get<2>(threaded));
  EXPECT_EQ(std::get<3>(first), std::get<3>(threaded));
  EXPECT_EQ(std::get<4>(first), std::get<4>(threaded));
}

TEST(ShardedNetwork, TelemetryMergeFoldsShardBundles) {
  const auto topo = make_topology(0xBEEFULL);
  ShardedFabric shd(topo.graph, plan_for(topo, 3), NetworkConfig{});
  obs::Telemetry telemetry;
  telemetry.enable_sampling(5.0);
  shd.net.set_telemetry(&telemetry);
  FloodHarness<ShardedFabric> h(topo.graph, shd);
  h.inject(32, 40);
  shd.run_all();
  shd.net.merge_telemetry();

  const auto& counters = telemetry.metrics.counters();
  // Facade-owned counters.
  EXPECT_EQ(counters.at("smrp.sim.shard_windows").value(),
            shd.net.sim().windows());
  EXPECT_EQ(counters.at("smrp.sim.shard_stalls").value(),
            shd.net.sim().stalls());
  EXPECT_EQ(counters.at("smrp.sim.shard_cross_msgs").value(),
            shd.net.cross_messages());
  // Shard counters folded additively under their own names: every fired
  // event across all wheels lands in one smrp.sim.events.
  std::size_t processed = 0;
  for (int s = 0; s < shd.net.shard_count(); ++s) {
    processed += shd.net.simulator(s).processed();
  }
  EXPECT_EQ(counters.at("smrp.sim.events").value(), processed);
  EXPECT_EQ(counters.at("smrp.sim.rx.DATA").value(),
            shd.net.messages_delivered());
  // Gauges arrive renamed per shard — never blended.
  const auto& gauges = telemetry.metrics.gauges();
  for (int s = 0; s < shd.net.shard_count(); ++s) {
    const std::string suffix = ".shard" + std::to_string(s);
    EXPECT_TRUE(gauges.count("smrp.sim.pool_events" + suffix)) << suffix;
    EXPECT_TRUE(gauges.count("smrp.sim.pool_envelopes" + suffix)) << suffix;
  }
  EXPECT_EQ(gauges.count("smrp.sim.pool_events"), 0u);
  // Per-shard gauge samples got retagged and re-sorted chronologically.
  bool saw_shard_sample = false;
  double prev_t = -1.0;
  for (const auto& s : telemetry.samples()) {
    EXPECT_GE(s.t, prev_t);
    prev_t = s.t;
    if (s.name.find(".shard") != std::string::npos) saw_shard_sample = true;
  }
  EXPECT_TRUE(saw_shard_sample);
}

TEST(ShardedSimulatorFacade, PoolStatsSumAndClockSemantics) {
  const auto topo = make_topology(0x1234ULL);
  ShardedFabric shd(topo.graph, plan_for(topo, 3), NetworkConfig{});
  FloodHarness<ShardedFabric> h(topo.graph, shd);
  h.inject(32, 30);
  shd.run_all();

  auto& sim = shd.net.sim();
  Simulator::PoolStats expected{};
  for (int s = 0; s < sim.shard_count(); ++s) {
    const auto stats = sim.shard(s).pool_stats();
    expected.slots += stats.slots;
    expected.free_slots += stats.free_slots;
    expected.heap_actions += stats.heap_actions;
  }
  const auto summed = sim.pool_stats();
  EXPECT_EQ(summed.slots, expected.slots);
  EXPECT_EQ(summed.free_slots, expected.free_slots);
  EXPECT_EQ(summed.heap_actions, expected.heap_actions);

  SimNetwork::PoolStats net_expected{};
  for (int s = 0; s < shd.net.shard_count(); ++s) {
    const auto stats = shd.net.network(s).pool_stats();
    net_expected.envelopes += stats.envelopes;
    net_expected.free += stats.free;
  }
  EXPECT_EQ(shd.net.pool_stats().envelopes, net_expected.envelopes);
  EXPECT_EQ(shd.net.pool_stats().free, net_expected.free);

  // Facade clock: run_until advances to the horizon even when idle, and
  // schedule_at refuses the past — same contract as the wheel.
  EXPECT_TRUE(sim.idle());
  const Time before = sim.now();
  sim.run_until(before + 100.0);
  EXPECT_EQ(sim.now(), before + 100.0);
  EXPECT_THROW(sim.schedule_at(before, [] {}), std::invalid_argument);
  EXPECT_NO_THROW(sim.schedule_global(sim.now() + 1.0, [] {}));
  EXPECT_THROW(
      sim.schedule_global(std::numeric_limits<Time>::infinity(), [] {}),
      std::invalid_argument);
}

TEST(ShardedSimulatorFacade, StallsCountIdleShardWindows) {
  // Two shards, all traffic on shard 0 → every window stalls shard 1.
  ShardedSimulator sim(2, /*lookahead=*/1.0);
  int fired = 0;
  for (int i = 0; i < 8; ++i) {
    sim.shard(0).schedule(static_cast<Time>(i) * 10.0, [&] { ++fired; });
  }
  sim.run_all();
  EXPECT_EQ(fired, 8);
  EXPECT_GT(sim.windows(), 0u);
  EXPECT_GE(sim.stalls(), sim.windows());  // shard 1 idle in every window
  EXPECT_EQ(sim.processed(), 8u);
  EXPECT_EQ(sim.pending(), 0u);
}

}  // namespace
}  // namespace smrp::sim
