#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "sim/network.hpp"
#include "testing_topologies.hpp"

namespace smrp::sim {
namespace {

TEST(Trace, MessageNamesCoverEveryAlternative) {
  EXPECT_EQ(message_name(HelloMsg{}), "HELLO");
  EXPECT_EQ(message_name(LsaMsg{}), "LSA");
  EXPECT_EQ(message_name(JoinReqMsg{}), "JOIN_REQ");
  EXPECT_EQ(message_name(JoinAckMsg{}), "JOIN_ACK");
  EXPECT_EQ(message_name(LeaveReqMsg{}), "LEAVE_REQ");
  EXPECT_EQ(message_name(StateRefreshMsg{}), "STATE_REFRESH");
  EXPECT_EQ(message_name(ShrUpdateMsg{}), "SHR_UPDATE");
  EXPECT_EQ(message_name(DataMsg{}), "DATA");
  EXPECT_EQ(message_name(RepairQueryMsg{}), "REPAIR_QUERY");
  EXPECT_EQ(message_name(RepairRespMsg{}), "REPAIR_RESP");
}

TEST(Trace, RecordsSendAndDeliver) {
  const net::Graph g = testing::grid3x3();
  Simulator simulator;
  SimNetwork network(simulator, g);
  network.set_handler(1, [](NodeId, const Message&) {});
  Tracer tracer;
  network.set_tracer(&tracer);

  network.send(0, 1, DataMsg{1});
  simulator.run_all();
  EXPECT_EQ(tracer.count(TraceKind::kSend), 1u);
  EXPECT_EQ(tracer.count(TraceKind::kDeliver), 1u);
  EXPECT_EQ(tracer.count(TraceKind::kDrop), 0u);
  ASSERT_EQ(tracer.events().size(), 2u);
  EXPECT_EQ(tracer.events()[0].message, "DATA");
  EXPECT_EQ(tracer.events()[1].kind, TraceKind::kDeliver);
}

TEST(Trace, RecordsDropsOnDownLink) {
  const net::Graph g = testing::grid3x3();
  Simulator simulator;
  SimNetwork network(simulator, g);
  network.set_handler(1, [](NodeId, const Message&) {});
  Tracer tracer;
  network.set_tracer(&tracer);

  network.set_link_up(g.link_between(0, 1).value(), false);
  network.send(0, 1, HelloMsg{});
  simulator.run_all();
  EXPECT_EQ(tracer.count(TraceKind::kSend), 1u);
  EXPECT_EQ(tracer.count(TraceKind::kDrop), 1u);
  EXPECT_EQ(tracer.count(TraceKind::kDeliver), 0u);
}

TEST(Trace, BoundedRetention) {
  Tracer tracer(/*capacity=*/3);
  for (int i = 0; i < 10; ++i) {
    tracer.record(TraceEvent{static_cast<Time>(i), TraceKind::kSend, 0, 1,
                             "DATA"});
  }
  EXPECT_EQ(tracer.events().size(), 3u);
  EXPECT_EQ(tracer.count(TraceKind::kSend), 10u);  // totals keep counting
  EXPECT_DOUBLE_EQ(tracer.events().front().at, 7.0);
}

TEST(Trace, ClearResetsRetainedWindowAndLifetimeCounts) {
  Tracer tracer;
  tracer.record(TraceEvent{0, TraceKind::kSend, 0, 1, "DATA"});
  tracer.record(TraceEvent{1, TraceKind::kDeliver, 0, 1, "DATA"});
  tracer.record(TraceEvent{2, TraceKind::kDrop, 0, 1, "DATA"});
  tracer.clear();
  EXPECT_TRUE(tracer.events().empty());
  // Regression: clear() used to leave the lifetime counters behind, so
  // count() reported stale totals for the next measurement window.
  EXPECT_EQ(tracer.count(TraceKind::kSend), 0u);
  EXPECT_EQ(tracer.count(TraceKind::kDeliver), 0u);
  EXPECT_EQ(tracer.count(TraceKind::kDrop), 0u);
  tracer.record(TraceEvent{3, TraceKind::kSend, 0, 1, "DATA"});
  EXPECT_EQ(tracer.count(TraceKind::kSend), 1u);
}

TEST(Trace, CountRetainedFiltersByNameAndKind) {
  Tracer tracer;
  tracer.record(TraceEvent{0, TraceKind::kSend, 0, 1, "DATA"});
  tracer.record(TraceEvent{1, TraceKind::kDeliver, 0, 1, "DATA"});
  tracer.record(TraceEvent{2, TraceKind::kSend, 0, 1, "HELLO"});
  EXPECT_EQ(tracer.count_retained("DATA", TraceKind::kSend), 1u);
  EXPECT_EQ(tracer.count_retained("DATA", TraceKind::kDeliver), 1u);
  EXPECT_EQ(tracer.count_retained("LSA", TraceKind::kSend), 0u);
}

TEST(Trace, PrintsOneLinePerEvent) {
  Tracer tracer;
  tracer.record(TraceEvent{5.0, TraceKind::kSend, 2, 3, "JOIN_REQ"});
  std::ostringstream out;
  tracer.print(out);
  EXPECT_EQ(out.str(), "5ms send 2->3 JOIN_REQ\n");
}

}  // namespace
}  // namespace smrp::sim
