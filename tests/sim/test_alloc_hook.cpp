// Zero-allocation proof for the event core's steady state. This file
// installs a counting global operator new/delete (binary-wide, so the
// counters simply tick in the background for the other suites in this
// binary) and pins the hot paths to zero allocations per event once the
// pools have warmed up:
//   - schedule/cancel/fire timer churn (slab + freelist + 64B SBO actions)
//   - SimNetwork DataMsg dispatch and broadcast (pooled envelopes)
// Under ASan/TSan the allocator is the sanitizer's, so the raw counter
// assertions are skipped there and the pool-stats invariants (no slab
// growth, no SBO overflow) carry the test instead.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "sim/network.hpp"
#include "sim/sharded.hpp"
#include "sim/simulator.hpp"
#include "testing_topologies.hpp"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define SMRP_ALLOC_HOOK_ACTIVE 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define SMRP_ALLOC_HOOK_ACTIVE 0
#else
#define SMRP_ALLOC_HOOK_ACTIVE 1
#endif
#else
#define SMRP_ALLOC_HOOK_ACTIVE 1
#endif

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

#if SMRP_ALLOC_HOOK_ACTIVE

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}

void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

#endif  // SMRP_ALLOC_HOOK_ACTIVE

namespace smrp::sim {
namespace {

std::uint64_t allocation_count() {
  return g_allocations.load(std::memory_order_relaxed);
}

TEST(AllocHook, SteadyStateTimerChurnAllocatesNothing) {
  Simulator s;
  // Warm-up: reach the peak concurrent-event footprint so the slab,
  // freelist, and the ready/far heap storage are all at capacity.
  auto churn = [&](int rounds) {
    for (int i = 0; i < rounds; ++i) {
      const EventId keep = s.schedule(0.25 + (i % 7) * 0.5, [] {});
      const EventId drop = s.schedule(2000.0 + i, [] {});  // far heap
      s.schedule(0.1, [&s] { s.schedule(0.2, [] {}); });   // reentrant
      s.cancel(drop);
      s.run_until(s.now() + 1.0);
      (void)keep;
    }
  };
  churn(2000);
  const auto warm = s.pool_stats();

  const std::uint64_t before = allocation_count();
  churn(2000);
  const std::uint64_t after = allocation_count();
  const auto steady = s.pool_stats();

  EXPECT_EQ(steady.slots, warm.slots) << "slab grew after warm-up";
  EXPECT_EQ(steady.heap_actions, 0u) << "an action overflowed the 64B SBO";
#if SMRP_ALLOC_HOOK_ACTIVE
  EXPECT_EQ(after - before, 0u)
      << "steady-state schedule/cancel/fire path allocated";
#else
  (void)before;
  (void)after;
#endif
}

TEST(AllocHook, MessageDispatchAndBroadcastAllocateNothing) {
  net::Graph graph = testing::grid3x3();
  Simulator simulator;
  SimNetwork network(simulator, graph);
  std::uint64_t received = 0;
  for (NodeId n = 0; n < graph.node_count(); ++n) {
    network.set_handler(
        n, [&received](NodeId, const Message&) { ++received; });
  }
  auto flood = [&](int rounds) {
    for (int i = 0; i < rounds; ++i) {
      network.send(0, 1, DataMsg{static_cast<std::uint64_t>(i)});
      network.send(4, 5, DataMsg{static_cast<std::uint64_t>(i)});
      network.broadcast(4, DataMsg{static_cast<std::uint64_t>(i)});
      simulator.run_all();
    }
  };
  flood(500);
  const auto warm_env = network.pool_stats();
  const auto warm_sim = simulator.pool_stats();

  const std::uint64_t before = allocation_count();
  flood(500);
  const std::uint64_t after = allocation_count();

  EXPECT_GT(received, 0u);
  EXPECT_EQ(network.pool_stats().envelopes, warm_env.envelopes)
      << "envelope slab grew after warm-up";
  EXPECT_EQ(simulator.pool_stats().slots, warm_sim.slots);
  EXPECT_EQ(simulator.pool_stats().heap_actions, 0u)
      << "a dispatch closure overflowed the 64B SBO";
#if SMRP_ALLOC_HOOK_ACTIVE
  EXPECT_EQ(after - before, 0u) << "per-hop dispatch allocated";
#else
  (void)before;
  (void)after;
#endif
}

TEST(AllocHook, ShardedPoolStatsSumAndSteadyState) {
  // Three shards over the 3x3 grid (rows as groups). The facade pool
  // gauges must be the exact sum of the per-shard pools at every
  // checkpoint, and the sharded steady state — window loop, SPSC cross
  // queues, drain sort, deliver_at closures — must allocate nothing once
  // the slabs and queue capacities have reached their peaks.
  net::Graph graph = testing::grid3x3();
  const ShardPlan plan = build_shard_plan({0, 0, 0, 1, 1, 1, 2, 2, 2}, 3);
  ShardedSimNetwork network(graph, plan);
  std::uint64_t received = 0;
  for (NodeId n = 0; n < graph.node_count(); ++n) {
    network.set_handler(
        n, [&received](NodeId, const Message&) { ++received; });
  }

  auto expect_pool_sums = [&] {
    Simulator::PoolStats sim_sum{};
    SimNetwork::PoolStats env_sum{};
    for (int s = 0; s < network.shard_count(); ++s) {
      const auto ss = network.simulator(s).pool_stats();
      sim_sum.slots += ss.slots;
      sim_sum.free_slots += ss.free_slots;
      sim_sum.heap_actions += ss.heap_actions;
      const auto es = network.network(s).pool_stats();
      env_sum.envelopes += es.envelopes;
      env_sum.free += es.free;
    }
    const auto facade_sim = network.sim().pool_stats();
    EXPECT_EQ(facade_sim.slots, sim_sum.slots);
    EXPECT_EQ(facade_sim.free_slots, sim_sum.free_slots);
    EXPECT_EQ(facade_sim.heap_actions, sim_sum.heap_actions);
    const auto facade_env = network.pool_stats();
    EXPECT_EQ(facade_env.envelopes, env_sum.envelopes);
    EXPECT_EQ(facade_env.free, env_sum.free);
  };

  auto flood = [&](int rounds) {
    for (int i = 0; i < rounds; ++i) {
      network.send(0, 1, DataMsg{static_cast<std::uint64_t>(i)});  // local
      network.send(2, 5, DataMsg{static_cast<std::uint64_t>(i)});  // cross
      network.send(4, 7, DataMsg{static_cast<std::uint64_t>(i)});  // cross
      network.broadcast(4, DataMsg{static_cast<std::uint64_t>(i)});
      network.sim().run_all();
    }
  };
  flood(500);
  expect_pool_sums();
  const auto warm_env = network.pool_stats();
  const auto warm_sim = network.sim().pool_stats();

  const std::uint64_t before = allocation_count();
  flood(500);
  const std::uint64_t after = allocation_count();

  EXPECT_GT(received, 0u);
  EXPECT_GT(network.cross_messages(), 0u);
  expect_pool_sums();
  EXPECT_EQ(network.pool_stats().envelopes, warm_env.envelopes)
      << "sharded envelope slabs grew after warm-up";
  EXPECT_EQ(network.sim().pool_stats().slots, warm_sim.slots);
  EXPECT_EQ(network.sim().pool_stats().heap_actions, 0u)
      << "a sharded dispatch closure overflowed the 64B SBO";
#if SMRP_ALLOC_HOOK_ACTIVE
  EXPECT_EQ(after - before, 0u) << "sharded steady state allocated";
#else
  (void)before;
  (void)after;
#endif
}

}  // namespace
}  // namespace smrp::sim
