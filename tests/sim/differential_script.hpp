// Shared randomized schedule/cancel/run script machinery for the event-core
// differential suites: the sequential wheel vs the retained reference heap
// (test_simulator_differential.cpp) and the sharded facade vs the
// sequential wheel (test_sharded_sim.cpp) drive identical scripts through
// both cores and require bit-identical outcomes.
//
// The script generator leans on the wheel's weak spots on purpose:
// simultaneous-time FIFO ties, delays dead on bucket boundaries, the
// ~1 s near-horizon rollover where events cascade from the far heap,
// cancel churn (live, stale, and cancel-during-fire), and reentrant
// scheduling from inside actions.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "net/rng.hpp"

namespace smrp::sim::difftest {

struct Op {
  enum class Type : std::uint8_t { kSchedule, kCancel, kRunUntil };
  Type type = Type::kSchedule;
  double value = 0.0;        ///< delay (schedule) or horizon step (run)
  std::uint32_t target = 0;  ///< event ordinal (own for schedule, victim
                             ///< for cancel)
  std::uint32_t nested_start = 0;  ///< ops executed inside the action
  std::uint32_t nested_count = 0;
};

struct Script {
  std::vector<Op> ops;
  std::uint32_t top_count = 0;   ///< ops[0, top_count) run at top level
  std::uint32_t event_count = 0;
};

/// Delay mixture biased toward the wheel's structural boundaries.
inline double pick_delay(net::Rng& rng) {
  const double r = rng.uniform();
  if (r < 0.10) return 0.0;  // immediate: same-time FIFO ties
  if (r < 0.30) {
    // Exact bucket multiples (width 0.5 ms): boundary ties.
    return 0.5 * static_cast<double>(rng.below(64));
  }
  if (r < 0.55) return rng.uniform() * 2.0;       // inside the first buckets
  if (r < 0.75) return rng.uniform() * 100.0;     // mid-wheel
  if (r < 0.90) return 1000.0 + rng.uniform() * 60.0;  // horizon rollover
  return rng.uniform() * 5000.0;                  // far overflow heap
}

inline Script make_script(std::uint64_t seed, std::uint32_t min_events) {
  net::Rng rng(seed);
  Script script;
  // Top-level ops first; nested ranges are appended past top_count and
  // referenced by index, so the layout stays one flat vector.
  std::vector<Op> nested;
  std::vector<Op> top;
  while (script.event_count < min_events) {
    const double r = rng.uniform();
    Op op;
    if (r < 0.70 || script.event_count == 0) {
      op.type = Op::Type::kSchedule;
      op.value = pick_delay(rng);
      op.target = script.event_count++;
      if (rng.uniform() < 0.30) {
        op.nested_count = 1 + static_cast<std::uint32_t>(rng.below(2));
        op.nested_start = static_cast<std::uint32_t>(nested.size());
        for (std::uint32_t i = 0; i < op.nested_count; ++i) {
          Op sub;
          if (rng.uniform() < 0.70) {
            sub.type = Op::Type::kSchedule;
            sub.value = pick_delay(rng);
            sub.target = script.event_count++;
          } else {
            sub.type = Op::Type::kCancel;
            sub.target =
                static_cast<std::uint32_t>(rng.below(script.event_count));
          }
          nested.push_back(sub);
        }
      }
    } else if (r < 0.90) {
      op.type = Op::Type::kCancel;
      op.target = static_cast<std::uint32_t>(rng.below(script.event_count));
    } else {
      op.type = Op::Type::kRunUntil;
      op.value = rng.uniform() * 20.0;
    }
    top.push_back(op);
  }
  script.top_count = static_cast<std::uint32_t>(top.size());
  script.ops = std::move(top);
  // Rebase nested indices past the top-level ops.
  for (Op& op : script.ops) {
    if (op.nested_count != 0) op.nested_start += script.top_count;
  }
  script.ops.insert(script.ops.end(), nested.begin(), nested.end());
  return script;
}

/// Runs a script against one simulator type and records every firing as
/// (event ordinal, firing time) — the byte-comparable outcome. `Sim` only
/// needs the shared core surface: schedule / cancel / run_until /
/// run_all / now / processed / pending.
template <typename Sim>
struct Driver {
  explicit Driver(const Script& s) : script(s) {
    ids.assign(script.event_count, 0);
  }

  template <typename... Args>
  explicit Driver(const Script& s, Args&&... args)
      : script(s), sim(std::forward<Args>(args)...) {
    ids.assign(script.event_count, 0);
  }

  void exec(std::uint32_t index) {
    const Op& op = script.ops[index];
    switch (op.type) {
      case Op::Type::kSchedule:
        ids[op.target] = sim.schedule(op.value, [this, index] {
          const Op& self = script.ops[index];
          log.emplace_back(self.target, sim.now());
          for (std::uint32_t i = 0; i < self.nested_count; ++i) {
            exec(self.nested_start + i);
          }
        });
        break;
      case Op::Type::kCancel:
        // May be live, already fired (stale id), or not yet scheduled
        // (id still 0 == kNoEvent): all must be harmless no-ops.
        sim.cancel(ids[op.target]);
        break;
      case Op::Type::kRunUntil:
        sim.run_until(sim.now() + op.value);
        break;
    }
  }

  void run() {
    for (std::uint32_t i = 0; i < script.top_count; ++i) exec(i);
    sim.run_all(20'000'000);
  }

  const Script& script;
  Sim sim;
  std::vector<std::uint64_t> ids;
  std::vector<std::pair<std::uint32_t, double>> log;
};

}  // namespace smrp::sim::difftest
