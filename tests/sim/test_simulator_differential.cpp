// Differential property test for the timing-wheel event core: drive the
// production Simulator and the retained reference heap implementation
// (src/sim/reference_simulator.hpp — the exact pre-wheel code) through
// identical randomized schedule/cancel/run scripts and require
// bit-identical firing order, firing times, and final clock state.
// The script machinery is shared with the sharded-facade differential
// suite (differential_script.hpp); the soak pushes ≥1e6 events through
// both cores.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "sim/differential_script.hpp"
#include "sim/reference_simulator.hpp"
#include "sim/simulator.hpp"

namespace smrp::sim {
namespace {

using difftest::Driver;
using difftest::Script;
using difftest::make_script;

void expect_identical_outcomes(const Script& script) {
  Driver<Simulator> wheel(script);
  Driver<ReferenceSimulator> reference(script);
  wheel.run();
  reference.run();

  ASSERT_EQ(wheel.log.size(), reference.log.size());
  for (std::size_t i = 0; i < wheel.log.size(); ++i) {
    ASSERT_EQ(wheel.log[i].first, reference.log[i].first)
        << "firing order diverged at position " << i;
    // Bit-identical times: both cores compute when = now + delay through
    // the same arithmetic, so == (not near) is the contract.
    ASSERT_EQ(wheel.log[i].second, reference.log[i].second)
        << "firing time diverged at position " << i;
  }
  EXPECT_EQ(wheel.sim.processed(), reference.sim.processed());
  EXPECT_EQ(wheel.sim.pending(), reference.sim.pending());
  EXPECT_EQ(wheel.sim.pending(), 0u);
  EXPECT_EQ(wheel.sim.now(), reference.sim.now());
}

TEST(SimulatorDifferential, ManySeedsMatchReferenceExactly) {
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    expect_identical_outcomes(make_script(seed, 5'000));
  }
}

TEST(SimulatorDifferential, MillionEventChurnSoakMatchesReference) {
  // The acceptance-scale soak: ≥1e6 events with cancel churn, rollover
  // boundaries, ties, and reentrancy, bit-identical end to end.
  const Script script = make_script(0x5EEDF00DULL, 1'000'000);
  ASSERT_GE(script.event_count, 1'000'000u);
  expect_identical_outcomes(script);
}

TEST(SimulatorDifferential, QueueDepthStaysBoundedUnderScriptChurn) {
  // The wheel frees cancelled bucket residents immediately and compacts
  // dead heap residents, so the backlog tracks the live count just like
  // the reference's compaction contract.
  const Script script = make_script(99, 50'000);
  Driver<Simulator> wheel(script);
  for (std::uint32_t i = 0; i < script.top_count; ++i) {
    wheel.exec(i);
    ASSERT_LE(wheel.sim.queue_depth(), 2 * wheel.sim.pending() + 64);
  }
  wheel.sim.run_all(20'000'000);
  EXPECT_EQ(wheel.sim.pending(), 0u);
}

}  // namespace
}  // namespace smrp::sim
