// Shared fixture topologies, including concrete realisations of the
// paper's illustrative figures. Node letters map to dense ids.
#pragma once

#include "net/graph.hpp"

namespace smrp::testing {

using net::Graph;
using net::NodeId;

/// Figure 1/2 topology (5 nodes). Weights are chosen so that every claim
/// the paper makes about the figure holds:
///  * SPF multicast tree for members {C, D}: S–A–C and S–A–D,
///  * SHR(S,C) = 3 on that tree (Eq. 1 example in §3.1),
///  * after L_AD fails, D's local detour is D→C (RD = 2) and the
///    SPF/global detour is D→B→S (RD = 3, longer),
///  * the disjoint Figure-2 tree routes D via B.
struct Fig1Topology {
  static constexpr NodeId S = 0;
  static constexpr NodeId A = 1;
  static constexpr NodeId B = 2;
  static constexpr NodeId C = 3;
  static constexpr NodeId D = 4;

  Graph graph{5};
  net::LinkId SA, SB, AC, AD, BD, CD;

  Fig1Topology() {
    SA = graph.add_link(S, A, 1.0);
    SB = graph.add_link(S, B, 1.0);
    AC = graph.add_link(A, C, 1.0);
    AD = graph.add_link(A, D, 1.0);
    BD = graph.add_link(B, D, 2.0);
    CD = graph.add_link(C, D, 2.0);
  }
};

/// Figure 4/5 topology (8 nodes). Weights are chosen so that the paper's
/// entire join-and-reshape walkthrough holds with D_thresh = 0.3:
///  * E (first member) joins along its SPF path E→D→A→S; SHR(S,D) = 2,
///  * G prefers merging at the source via G→B→S (SHR 0) even though
///    G→F→D→A→S is shorter end-to-end,
///  * F joins F→D→A→S; F→B→S and F→G→B→S break the delay bound;
///    afterwards SHR(S,D) = 4,
///  * E's Condition-I reshape then moves it to E→C→A→S (merge node A).
struct Fig4Topology {
  static constexpr NodeId S = 0;
  static constexpr NodeId A = 1;
  static constexpr NodeId B = 2;
  static constexpr NodeId C = 3;
  static constexpr NodeId D = 4;
  static constexpr NodeId E = 5;
  static constexpr NodeId F = 6;
  static constexpr NodeId G = 7;

  Graph graph{8};
  net::LinkId SA, AD, DE, DF, FG, GB, BS, AC, CE, FB;

  Fig4Topology() {
    SA = graph.add_link(S, A, 2.0);
    AD = graph.add_link(A, D, 1.0);
    DE = graph.add_link(D, E, 1.0);
    DF = graph.add_link(D, F, 1.0);
    FG = graph.add_link(F, G, 1.0);
    GB = graph.add_link(G, B, 3.0);
    BS = graph.add_link(B, S, 3.0);
    AC = graph.add_link(A, C, 1.0);
    CE = graph.add_link(C, E, 1.2);
    FB = graph.add_link(F, B, 4.0);
  }
};

/// A 3x3 grid with unit weights: predictable shortest paths for exercising
/// algorithms where hand-checking matters.
///
///   0 - 1 - 2
///   |   |   |
///   3 - 4 - 5
///   |   |   |
///   6 - 7 - 8
inline Graph grid3x3() {
  Graph g(9);
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      const NodeId n = r * 3 + c;
      if (c < 2) g.add_link(n, n + 1, 1.0);
      if (r < 2) g.add_link(n, n + 3, 1.0);
    }
  }
  return g;
}

}  // namespace smrp::testing
